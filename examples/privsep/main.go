// Privilege-separation example: the §2.1 pattern U3 (qmail/OpenSSH) — a
// privileged master holds a secret and forks an unprivileged worker per
// untrusted session. A worker driven into wild pointer dereferences by
// hostile input crashes in its own capability-bounded region; the master
// and its secret are untouched, and service continues.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ufork"
	"ufork/internal/apps/privsep"
)

func main() {
	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationFull, // adversarial trust model (§3.6)
		Cores:     2,
	})
	if _, err := sys.Main(run); err != nil {
		log.Fatal(err)
	}
	sys.Run()
}

func run(p *ufork.Proc) {
	secret := bytes.Repeat([]byte{0x42}, 32)
	master, err := privsep.NewMaster(p, secret)
	if err != nil {
		log.Fatal(err)
	}

	sessions := []struct {
		label string
		input []byte
	}{
		{"valid login", secret},
		{"wrong password", []byte("guess-123")},
		{"hostile exploit", append([]byte("EVIL:"), 0x00, 0x00, 0x00, 0x01, 0x00, 0x00)},
		{"valid login again", secret},
	}
	for _, s := range sessions {
		res, intact, err := master.RunSession(s.input)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "denied"
		if res.Authenticated {
			verdict = "granted"
		}
		if res.Compromised {
			verdict = "worker crashed (capability fault) — contained"
		}
		fmt.Printf("%-18s -> %-45s secret intact: %v\n", s.label, verdict, intact)
		if !intact {
			log.Fatal("isolation breach!")
		}
	}
	fmt.Println("the master survived every session with its secret confined to its region")
}
