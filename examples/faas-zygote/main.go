// FaaS-Zygote example: the §5.1 serverless use-case — a MicroPython-style
// interpreter is warmed once in a Zygote μprocess, then every "request"
// forks the Zygote and runs the function in the child on a warm runtime.
package main

import (
	"fmt"
	"log"

	"ufork"
	"ufork/internal/alloc"
	"ufork/internal/minipy"
)

// handler is the deployed "function": note it closes over module state
// (the warm counter base) that the Zygote initialised once.
const handler = `
import math

base = 1000

def handler(request_id):
    acc = 0.0
    for i in range(200):
        acc += math.sqrt(i) * math.sin(i)
    return base + request_id + acc / 1000
`

func main() {
	spec := ufork.HelloWorldSpec()
	spec.Name = "zygote"
	spec.HeapPages = 2048
	spec.AllocMetaPages = 32

	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationFull,
		Cores:     4, // 1 coordinator + 3 function cores, the Fig. 6 setup
		Spec:      &spec,
	})
	if _, err := sys.Main(run); err != nil {
		log.Fatal(err)
	}
	sys.Run()
}

func run(p *ufork.Proc) {
	k := p.Kernel()

	// Zygote warm-up: compile once, install the runtime into μprocess
	// memory. This cost is paid exactly once.
	t0 := p.Now()
	program, err := minipy.Compile(handler)
	check(err)
	a := alloc.Attach(p)
	check(a.Init())
	rt, err := minipy.Install(p, a, program)
	check(err)
	_, err = rt.RunMain()
	check(err)
	fmt.Printf("zygote warmed in %v\n", p.Now()-t0)

	// Serve 8 requests, 3 in flight, each in a forked child on the warm
	// runtime — no recompilation, no reinstallation.
	const requests = 8
	inflight := 0
	served := 0
	for id := 0; id < requests; id++ {
		if inflight == 3 {
			_, status, err := k.Wait(p)
			check(err)
			if status == 0 {
				served++
			}
			inflight--
		}
		reqID := float64(id)
		_, err := k.Fork(p, func(c *ufork.Proc) {
			ck := c.Kernel()
			crt, err := minipy.Attach(c) // attach to the inherited, relocated runtime
			if err != nil {
				ck.Exit(c, 1)
			}
			v, err := crt.Call(program, "handler", reqID)
			if err != nil {
				ck.Exit(c, 1)
			}
			fmt.Printf("  request %2.0f -> %.4f (pid %d, fork latency %v)\n",
				reqID, v, ck.Getpid(c), c.Parent.LastFork.Latency)
			ck.Exit(c, 0)
		})
		check(err)
		inflight++
	}
	for inflight > 0 {
		_, status, err := k.Wait(p)
		check(err)
		if status == 0 {
			served++
		}
		inflight--
	}
	fmt.Printf("served %d/%d requests in %v of virtual time\n", served, requests, p.Now())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
