// Redis-snapshot example: the §5.1 use-case — a key-value store triggers a
// background save (BGSAVE) by forking; the snapshot child serializes the
// database while the parent keeps serving writes, and copy-on-pointer-
// access keeps the child's memory footprint tiny because the big value
// blobs stay shared.
package main

import (
	"fmt"
	"log"

	"ufork"
	"ufork/internal/alloc"
	"ufork/internal/apps/kvstore"
)

const (
	keys     = 64
	valBytes = 16 * 1024
)

func main() {
	spec := ufork.HelloWorldSpec()
	spec.Name = "redis"
	spec.HeapPages = 4096
	spec.AllocMetaPages = 64

	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationNone, // Redis's trusted snapshot pattern (§3.6)
		Cores:     2,
		Spec:      &spec,
	})
	if _, err := sys.Main(run); err != nil {
		log.Fatal(err)
	}
	sys.Run()
}

func run(p *ufork.Proc) {
	k := p.Kernel()
	a := alloc.Attach(p)
	check(a.Init())
	store, err := kvstore.Init(p, a, 256)
	check(err)

	// Populate ~1 MB of values.
	val := make([]byte, valBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < keys; i++ {
		check(store.Set(fmt.Sprintf("user:%04d", i), val))
	}
	n, _ := store.Count()
	fmt.Printf("populated %d keys (%d KB of values)\n", n, keys*valBytes/1024)

	// BGSAVE: fork a snapshot child.
	t0 := p.Now()
	stats, err := store.BGSave("/dump.rdb")
	check(err)
	fmt.Printf("BGSAVE fork latency: %v (%d PTEs, %d pages copied eagerly)\n",
		stats.Latency, stats.PTEsCopied, stats.ProactivePages)

	// The parent keeps serving: overwrite every key while the child saves.
	for i := 0; i < keys; i++ {
		check(store.Set(fmt.Sprintf("user:%04d", i), make([]byte, valBytes)))
	}
	check(store.Reap())
	fmt.Printf("save completed in %v of virtual time\n", p.Now()-t0)

	// The dump holds the values from fork time — not the overwrites.
	ino, ok := k.VFS().Lookup("/dump.rdb")
	if !ok {
		log.Fatal("dump missing")
	}
	dump, err := kvstore.LoadDump(ino.Data)
	check(err)
	sample := dump["user:0000"]
	fmt.Printf("dump: %d keys, %d bytes; user:0000[1] = %d (pre-overwrite value: 1)\n",
		len(dump), len(ino.Data), sample[1])
	if sample[1] != 1 {
		log.Fatal("snapshot saw a post-fork write: fork semantics violated")
	}
	fmt.Println("snapshot is a consistent fork-time image — BGSAVE semantics hold")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
