// Quickstart: boot a μFork system, fork a μprocess, and watch the
// single-address-space mechanics at work — the child lands in its own
// region, its pointers are relocated, and copy-on-pointer-access keeps
// the copies lazy.
package main

import (
	"fmt"
	"log"

	"ufork"
)

func main() {
	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationFull,
		Cores:     2,
	})

	if _, err := sys.Main(run); err != nil {
		log.Fatal(err)
	}
	sys.Run()
}

func run(p *ufork.Proc) {
	k := p.Kernel()

	// Build a tiny object graph in the parent's heap: a pointer (CHERI
	// capability) at heap+0 referring to a node at heap+4096.
	node, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 4096).SetBounds(64)
	check(err)
	check(p.Store(node, 0, []byte("hello from the parent")))
	check(p.StoreCap(p.HeapCap, 0, node))

	fmt.Printf("parent: pid=%d region=[%#x,%#x)\n", k.Getpid(p), p.Region.Base, p.Region.Top())

	pid, err := k.Fork(p, func(c *ufork.Proc) {
		ck := c.Kernel()
		fmt.Printf("child:  pid=%d region=[%#x,%#x)  (a different region, same address space)\n",
			ck.Getpid(c), c.Region.Base, c.Region.Top())

		// Loading the pointer triggers the CoPA fault: the page is copied
		// and the capability relocated into the child's region.
		ptr, err := c.LoadCap(c.HeapCap, 0)
		check(err)
		fmt.Printf("child:  pointer now targets %#x (inside my region: %v)\n",
			ptr.Addr(), c.Region.Contains(ptr.Addr()))

		buf := make([]byte, 21)
		check(c.Load(ptr, 0, buf))
		fmt.Printf("child:  dereferenced -> %q\n", buf)

		// Writes stay private to the child.
		check(c.Store(ptr, 0, []byte("child overwrote this!")))
		ck.Exit(c, 0)
	})
	check(err)

	_, status, err := k.Wait(p)
	check(err)
	fmt.Printf("parent: reaped pid=%d status=%d after %v of virtual time\n", pid, status, p.Now())

	// The parent's data is untouched by the child's write.
	buf := make([]byte, 21)
	check(p.Load(node, 0, buf))
	fmt.Printf("parent: my node still reads %q\n", buf)
	fmt.Printf("parent: last fork latency %v, %d PTEs copied, %d pages copied eagerly\n",
		p.LastFork.Latency, p.LastFork.PTEsCopied, p.LastFork.ProactivePages)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
