// Nginx-workers example: the §5.1 multi-worker use-case — a master process
// forks long-lived workers that accept from a shared listening socket and
// serve static files; even on a single core, extra workers overlap each
// other's socket waits.
package main

import (
	"fmt"
	"log"

	"ufork"
	"ufork/internal/apps/httpd"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

func main() {
	spec := ufork.HelloWorldSpec()
	spec.Name = "nginx"
	spec.HeapPages = 256

	sys := ufork.NewSystem(ufork.Options{
		Strategy:  ufork.CoPA,
		Isolation: ufork.IsolationFault, // the Nginx trust model (§3.6)
		Cores:     1,                    // big-kernel-lock single-core deployment (§4.5)
		Spec:      &spec,
	})
	sys.K.VFS().WriteFile("/index.html", make([]byte, 16*1024))

	if _, err := sys.Main(run); err != nil {
		log.Fatal(err)
	}
	sys.Run()
}

func run(p *ufork.Proc) {
	k := p.Kernel()
	srv, err := httpd.Start(p, 3)
	check(err)
	fmt.Printf("master pid=%d forked %d workers: %v\n", k.Getpid(p), len(srv.Workers), srv.Workers)

	// Drive a burst of requests from client pseudo-processes (off-core:
	// they model wrk on another machine).
	const clients = 4
	const perClient = 25
	rfd, wfd, err := k.Pipe(p)
	check(err)
	doneEnd, err := p.FDs.Get(wfd)
	check(err)
	for cNum := 0; cNum < clients; cNum++ {
		_, err := k.Spawn(clientSpec(), p.Now(), func(cp *ufork.Proc) {
			cp.Task.Offcore = true
			dwfd := cp.FDs.Install(doneEnd)
			for i := 0; i < perClient; i++ {
				if _, err := httpd.DoRequest(cp, srv.Listener, "/index.html"); err != nil {
					break
				}
			}
			_, _ = k.Write(cp, dwfd, []byte{1})
		})
		check(err)
	}
	buf := make([]byte, 1)
	for cNum := 0; cNum < clients; cNum++ {
		_, err := k.Read(p, rfd, buf)
		check(err)
	}
	check(srv.Shutdown(p))

	fmt.Printf("served %d requests total in %v of virtual time\n", srv.TotalServed(), p.Now())
	for i, n := range srv.Served {
		fmt.Printf("  worker %d served %d\n", i, n)
	}
	rate := float64(srv.TotalServed()) / (float64(p.Now()) / float64(sim.Second))
	fmt.Printf("≈ %.0f req/s on one core with 3 workers\n", rate)
}

func clientSpec() kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "client",
		TextPages: 4, RodataPages: 1, GOTPages: 1, DataPages: 1,
		AllocMetaPages: 1, HeapPages: 8, StackPages: 4, TLSPages: 1,
		GOTEntries: 8,
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
