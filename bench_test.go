// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§5). Each benchmark regenerates its experiment through the harness in
// internal/bench and reports the headline simulated metrics via b.ReportMetric
// (virtual-time results are deterministic; the Go benchmark numbers measure
// the simulator's host-side cost). Run with:
//
//	go test -bench=. -benchmem
//
// For the paper's full parameters (100 MB databases, 1000 spawns, 100k pipe
// exchanges) use: go test -bench=. -benchmem -paperscale
package ufork_test

import (
	"flag"
	"testing"

	"ufork/internal/bench"
	"ufork/internal/sim"
)

var paperScale = flag.Bool("paperscale", false, "run experiments at the paper's full parameters")

func redisSizes() []uint64 {
	if *paperScale {
		return bench.RedisSizesFull
	}
	return bench.RedisSizesQuick
}

// BenchmarkTable1 regenerates the design-space comparison (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) < 10 {
			b.Fatalf("table 1 has %d rows", len(rows))
		}
	}
}

// redisRows runs the Redis sweep once per benchmark invocation and caches
// the result across the Fig. 3/4/5 benchmarks of one process.
var redisCache []bench.RedisRow

func redisRows(b *testing.B) []bench.RedisRow {
	b.Helper()
	if redisCache == nil {
		rows, err := bench.RedisSweep(redisSizes())
		if err != nil {
			b.Fatal(err)
		}
		redisCache = rows
	}
	return redisCache
}

func maxDB(rows []bench.RedisRow) uint64 {
	var m uint64
	for _, r := range rows {
		if r.DBBytes > m {
			m = r.DBBytes
		}
	}
	return m
}

func redisCell(b *testing.B, rows []bench.RedisRow, id bench.SystemID) bench.RedisRow {
	b.Helper()
	size := maxDB(rows)
	for _, r := range rows {
		if r.System == id && r.DBBytes == size {
			return r
		}
	}
	b.Fatalf("missing cell %s/%d", id, size)
	return bench.RedisRow{}
}

// BenchmarkFig3RedisSave regenerates Figure 3 (overall save times).
func BenchmarkFig3RedisSave(b *testing.B) {
	var rows []bench.RedisRow
	for i := 0; i < b.N; i++ {
		redisCache = nil
		rows = redisRows(b)
	}
	u := redisCell(b, rows, bench.SysUForkCoPA)
	p := redisCell(b, rows, bench.SysPosix)
	b.ReportMetric(float64(u.SaveTime)/1e6, "uFork-save-ms")
	b.ReportMetric(float64(p.SaveTime)/1e6, "CheriBSD-save-ms")
}

// BenchmarkFig4RedisForkLatency regenerates Figure 4 (fork latency).
func BenchmarkFig4RedisForkLatency(b *testing.B) {
	var rows []bench.RedisRow
	for i := 0; i < b.N; i++ {
		rows = redisRows(b)
	}
	u := redisCell(b, rows, bench.SysUForkCoPA)
	p := redisCell(b, rows, bench.SysPosix)
	f := redisCell(b, rows, bench.SysUForkFull)
	b.ReportMetric(float64(u.ForkLatency)/1e3, "uFork-fork-us")
	b.ReportMetric(float64(p.ForkLatency)/1e3, "CheriBSD-fork-us")
	b.ReportMetric(float64(f.ForkLatency)/1e3, "fullcopy-fork-us")
}

// BenchmarkFig5RedisMemory regenerates Figure 5 (forked-process memory).
func BenchmarkFig5RedisMemory(b *testing.B) {
	var rows []bench.RedisRow
	for i := 0; i < b.N; i++ {
		rows = redisRows(b)
	}
	u := redisCell(b, rows, bench.SysUForkCoPA)
	c := redisCell(b, rows, bench.SysUForkCoA)
	p := redisCell(b, rows, bench.SysPosix)
	b.ReportMetric(float64(u.ChildMem)/(1<<20), "uFork-child-MB")
	b.ReportMetric(float64(c.ChildMem)/(1<<20), "CoA-child-MB")
	b.ReportMetric(float64(p.ChildMem)/(1<<20), "CheriBSD-child-MB")
}

// BenchmarkFig6FaaSThroughput regenerates Figure 6 (function throughput).
func BenchmarkFig6FaaSThroughput(b *testing.B) {
	window := 100 * sim.Millisecond
	if *paperScale {
		window = sim.Second
	}
	var rows []bench.FaaSRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.FaaSSweep(window)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == bench.SysUForkCoPA && r.WorkerCores == 3 {
			b.ReportMetric(r.ThroughputPerSec, "uFork-3core-func/s")
		}
		if r.System == bench.SysPosix && r.WorkerCores == 3 {
			b.ReportMetric(r.ThroughputPerSec, "CheriBSD-3core-func/s")
		}
	}
}

// BenchmarkFig7NginxThroughput regenerates Figure 7 (HTTP throughput).
func BenchmarkFig7NginxThroughput(b *testing.B) {
	window := 30 * sim.Millisecond
	if *paperScale {
		window = 250 * sim.Millisecond
	}
	var rows []bench.NginxRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.NginxSweep(window)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == bench.SysUForkCoPA && r.Workers == 3 && r.Cores == 1 {
			b.ReportMetric(r.ThroughputPerSec, "uFork-3w-1core-req/s")
		}
		if r.System == bench.SysPosix && r.Workers == 3 && r.Cores == 1 {
			b.ReportMetric(r.ThroughputPerSec, "CheriBSD-3w-1core-req/s")
		}
	}
}

// BenchmarkFig8HelloWorld regenerates Figure 8 (hello-world fork latency
// and per-process memory).
func BenchmarkFig8HelloWorld(b *testing.B) {
	var rows []bench.HelloRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.HelloWorld()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case bench.SysUForkCoPA:
			b.ReportMetric(float64(r.ForkLatency)/1e3, "uFork-fork-us")
		case bench.SysPosix:
			b.ReportMetric(float64(r.ForkLatency)/1e3, "CheriBSD-fork-us")
		case bench.SysVMClone:
			b.ReportMetric(float64(r.ForkLatency)/1e3, "Nephele-fork-us")
		}
	}
}

// BenchmarkFig9Unixbench regenerates Figure 9 (Spawn and Context1).
func BenchmarkFig9Unixbench(b *testing.B) {
	spawns, ctx1 := bench.SpawnItersQuick, uint64(bench.Context1TargetQuik)
	if *paperScale {
		spawns, ctx1 = bench.SpawnItersFull, uint64(bench.Context1TargetFull)
	}
	var rows []bench.UnixbenchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Unixbench(spawns, ctx1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case bench.SysUForkCoPA:
			b.ReportMetric(float64(r.Spawn)/1e6, "uFork-spawn-ms")
			b.ReportMetric(float64(r.Context1)/1e6, "uFork-ctx1-ms")
		case bench.SysPosix:
			b.ReportMetric(float64(r.Spawn)/1e6, "CheriBSD-spawn-ms")
			b.ReportMetric(float64(r.Context1)/1e6, "CheriBSD-ctx1-ms")
		}
	}
}

// BenchmarkAblationCopyStrategy regenerates the §5.2 CoPA/CoA/full-copy
// comparison at the largest database size.
func BenchmarkAblationCopyStrategy(b *testing.B) {
	var rows []bench.RedisRow
	for i := 0; i < b.N; i++ {
		rows = redisRows(b)
	}
	copa := redisCell(b, rows, bench.SysUForkCoPA)
	coa := redisCell(b, rows, bench.SysUForkCoA)
	full := redisCell(b, rows, bench.SysUForkFull)
	b.ReportMetric(float64(full.ForkLatency)/float64(copa.ForkLatency), "full/CoPA-latency-x")
	b.ReportMetric(float64(coa.ForkLatency)/float64(copa.ForkLatency), "CoA/CoPA-latency-x")
	b.ReportMetric(float64(coa.ChildMem)/float64(copa.ChildMem), "CoA/CoPA-memory-x")
}

// BenchmarkAblationTocttou regenerates the §4.4 TOCTTOU cost analysis.
func BenchmarkAblationTocttou(b *testing.B) {
	var rows []bench.RedisRow
	for i := 0; i < b.N; i++ {
		rows = redisRows(b)
	}
	base := redisCell(b, rows, bench.SysUForkCoPA)
	toct := redisCell(b, rows, bench.SysUForkTocttou)
	over := 100 * (float64(toct.SaveTime)/float64(base.SaveTime) - 1)
	b.ReportMetric(over, "tocttou-save-%")
}
