package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultBuckets are the fixed latency bucket upper bounds in virtual
// nanoseconds: a 1-2-5 series from 1 ns to 1000 s. Everything above the
// last bound lands in an implicit overflow bucket.
var DefaultBuckets = func() []uint64 {
	var b []uint64
	for decade := uint64(1); decade <= 100_000_000_000; decade *= 10 {
		b = append(b, decade, 2*decade, 5*decade)
	}
	return append(b, 1_000_000_000_000)
}()

// Histogram is a fixed-bucket latency histogram. Observations and reads
// are lock-free; Summary is a best-effort consistent view (exact whenever
// no Observe races it, which is always true in the single-running-task
// simulation).
type Histogram struct {
	bounds []uint64        // ascending upper bounds (inclusive)
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // MaxUint64 until first observation
	max    atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds; nil selects DefaultBuckets.
func NewHistogram(bounds []uint64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Percentile returns the q-quantile (0 < q <= 1) under nearest-rank
// semantics over the bucket boundaries: the upper bound of the bucket
// containing the ⌈q·n⌉-th smallest observation, clamped to the observed
// [min, max]. When every observation lands exactly on a bucket bound —
// the case for sim-clock costs, which are sums of fixed model constants
// chosen near the 1-2-5 series — the result is exact.
func (h *Histogram) Percentile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			var v uint64
			if i < len(h.bounds) {
				v = h.bounds[i]
			} else {
				v = h.Max() // overflow bucket
			}
			return clamp(v, h.Min(), h.Max())
		}
	}
	return h.Max()
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxUint64)
	h.max.Store(0)
}

// Buckets returns the bucket upper bounds and the cumulative observation
// counts up to each bound, with one final cumulative entry for the +Inf
// overflow bucket — the Prometheus exposition form.
func (h *Histogram) Buckets() (bounds []uint64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// HistSummary is the exported percentile summary of a histogram.
type HistSummary struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
}

// Summary captures count, sum, min/max and the p50/p90/p99/p99.9
// quantiles.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(0.50),
		P90:   h.Percentile(0.90),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
	}
}
