package obs

import (
	"math"
	"testing"
)

// unitBounds returns bucket bounds 1..n with step 1, so every integer
// observation lands exactly on its own bound and percentiles are exact.
func unitBounds(n int) []uint64 {
	b := make([]uint64, n)
	for i := range b {
		b[i] = uint64(i + 1)
	}
	return b
}

func TestHistogramExactPercentiles(t *testing.T) {
	// Uniform 1..1000, one observation per value: the ⌈q·n⌉-th smallest
	// observation is exactly q·1000.
	h := NewHistogram(unitBounds(1000))
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	if got := h.Sum(); got != 1000*1001/2 {
		t.Fatalf("Sum = %d, want %d", got, 1000*1001/2)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{
		{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000}, {0.001, 1},
	} {
		if got := h.Percentile(tc.q); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got, want := h.Min(), uint64(1); got != want {
		t.Errorf("Min = %d, want %d", got, want)
	}
	if got, want := h.Max(), uint64(1000); got != want {
		t.Errorf("Max = %d, want %d", got, want)
	}
}

func TestHistogramSkewedDistribution(t *testing.T) {
	// 90 fast observations at 10, 9 at 50, 1 at 100 (n=100): p50 and p90
	// land in the fast bucket, p99 in the middle one, max-only beyond.
	h := NewHistogram(unitBounds(100))
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(100)
	if got := h.Percentile(0.50); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Percentile(0.90); got != 10 {
		t.Errorf("p90 = %d, want 10 (rank 90 of 100 is the last fast observation)", got)
	}
	if got := h.Percentile(0.99); got != 50 {
		t.Errorf("p99 = %d, want 50", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
}

func TestHistogramSingleValueClamped(t *testing.T) {
	// A constant latency observed through the coarse default buckets: every
	// percentile must clamp to the one observed value, not a bucket bound.
	h := NewHistogram(nil)
	for i := 0; i < 10; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Percentile(q); got != 42 {
			t.Errorf("Percentile(%v) = %d, want 42 (clamped to observed)", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]uint64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(1000) // beyond the last bound: overflow bucket
	if got := h.Percentile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (overflow reports Max)", got)
	}
	if got := h.Max(); got != 1000 {
		t.Errorf("Max = %d, want 1000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Errorf("empty histogram must report zeros: count=%d min=%d max=%d p50=%d",
			h.Count(), h.Min(), h.Max(), h.Percentile(0.5))
	}
	s := h.Summary()
	if s != (HistSummary{}) {
		t.Errorf("empty Summary = %+v, want zero value", s)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(unitBounds(10))
	h.Observe(3)
	h.Observe(7)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("Reset left state: %+v", h.Summary())
	}
	// The histogram must be reusable after Reset.
	h.Observe(5)
	if got := h.Percentile(0.5); got != 5 {
		t.Errorf("post-Reset p50 = %d, want 5", got)
	}
}

func TestHistogramSummaryMatchesPercentiles(t *testing.T) {
	h := NewHistogram(unitBounds(100))
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Summary()
	want := HistSummary{Count: 100, Sum: 100 * 101 / 2, Min: 1, Max: 100, P50: 50, P90: 90, P99: 99, P999: 100}
	if s != want {
		t.Errorf("Summary = %+v, want %+v", s, want)
	}
}

func TestHistogramDefaultBucketsAscending(t *testing.T) {
	for i := 1; i < len(DefaultBuckets); i++ {
		if DefaultBuckets[i] <= DefaultBuckets[i-1] {
			t.Fatalf("DefaultBuckets not ascending at %d: %d <= %d",
				i, DefaultBuckets[i], DefaultBuckets[i-1])
		}
	}
	if DefaultBuckets[0] != 1 {
		t.Errorf("DefaultBuckets[0] = %d, want 1", DefaultBuckets[0])
	}
	if last := DefaultBuckets[len(DefaultBuckets)-1]; last != 1_000_000_000_000 {
		t.Errorf("last bound = %d, want 1e12", last)
	}
}

func TestHistogramMinMaxCAS(t *testing.T) {
	// Min starts at MaxUint64 sentinel; a single huge observation must not
	// confuse min/max tracking.
	h := NewHistogram(nil)
	h.Observe(math.MaxUint64 / 2)
	h.Observe(1)
	if h.Min() != 1 || h.Max() != math.MaxUint64/2 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}
