package obs

import "testing"

// The disabled-path benchmarks prove the acceptance criterion that a
// compiled-in probe costs effectively nothing when observability is off:
// each disabled probe is one atomic load and a branch, well under 5 ns/op
// on any modern machine (the enabled variants are included for contrast).
//
//	go test -bench Disabled -benchtime 100000000x ./internal/obs

// BenchmarkDisabledSyscallProbe is the exact shape of the probe on the
// kernel's syscall dispatch path: guard, then (skipped) span begin/end.
func BenchmarkDisabledSyscallProbe(b *testing.B) {
	Disable()
	tr := NewTracer(64)
	var spans int
	for i := 0; i < b.N; i++ {
		if On() {
			sp := tr.Begin(1, 1, "write", "syscall", uint64(i))
			sp.End(uint64(i + 1))
			spans++
		}
	}
	if spans != 0 {
		b.Fatal("disabled probe took the enabled path")
	}
}

// BenchmarkDisabledHistogramProbe is the fork-latency observation site.
func BenchmarkDisabledHistogramProbe(b *testing.B) {
	Disable()
	reg := NewRegistry()
	for i := 0; i < b.N; i++ {
		if On() {
			reg.Histogram("fork.latency").Observe(uint64(i))
		}
	}
}

// BenchmarkDisabledSpanBegin measures the inert-span fallback itself: the
// Begin call made without a guard (nil-or-disabled check inside).
func BenchmarkDisabledSpanBegin(b *testing.B) {
	Disable()
	tr := NewTracer(64)
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(1, 1, "write", "syscall", uint64(i))
		sp.End(uint64(i + 1))
	}
	if got := len(tr.Events()); got != 0 {
		b.Fatalf("disabled tracer recorded %d events", got)
	}
}

// BenchmarkCounterInc is the always-on path: kernel.Stats counters are
// plain atomics with no enable guard, replacing the old bare uint64s.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkEnabledSpan is the contrast case: the full enabled-path cost of
// one begin/end pair through the ring buffer.
func BenchmarkEnabledSpan(b *testing.B) {
	Enable()
	b.Cleanup(Disable)
	tr := NewTracer(1 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(1, 1, "write", "syscall", uint64(i))
		sp.End(uint64(i + 1))
	}
}

// BenchmarkEnabledHistogramObserve is the enabled fork-latency site with
// the histogram handle held (the recommended hot-path shape).
func BenchmarkEnabledHistogramObserve(b *testing.B) {
	Enable()
	b.Cleanup(Disable)
	h := NewHistogram(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) % 1_000_000)
	}
}
