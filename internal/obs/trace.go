package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefaultTraceEvents is the default ring-buffer capacity: enough for every
// fork in a full benchmark sweep while bounding memory for long runs.
const DefaultTraceEvents = 1 << 18

// Arg is one key/value annotation on a trace event. Args are a slice, not
// a map, so event serialization is deterministic (golden-file testable).
type Arg struct {
	Key string
	Val uint64
}

// A is a convenience constructor for Arg.
func A(key string, val uint64) Arg { return Arg{Key: key, Val: val} }

// Event is one trace record. Phase follows the Chrome trace_event
// vocabulary: 'X' complete (has Dur), 'i' instant.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    uint64 // virtual ns
	Dur   uint64 // virtual ns ('X' only)
	PID   int
	TID   int
	Args  []Arg
}

type openSpan struct {
	serial uint64
	name   string
}

// Tracer records spans and instant events into a fixed-capacity ring
// buffer; when the ring wraps, the oldest events are dropped (counted in
// Dropped). Timestamps are caller-provided sim-clock nanoseconds, so the
// tracer itself never perturbs virtual time.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest event
	n       int // live events
	serial  uint64
	dropped uint64
	// open tracks per-(pid,tid) begin/end pairing: spans on one thread
	// must close LIFO for the trace to nest.
	open      map[uint64][]openSpan
	mispaired uint64
	procName  map[int]string
	thrName   map[uint64]string
}

// NewTracer creates a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		buf:      make([]Event, 0, capacity),
		open:     make(map[uint64][]openSpan),
		procName: make(map[int]string),
		thrName:  make(map[uint64]string),
	}
}

func threadKey(pid, tid int) uint64 { return uint64(uint32(pid))<<32 | uint64(uint32(tid)) }

// SetProcName names a pid for the exported trace.
func (t *Tracer) SetProcName(pid int, name string) {
	t.mu.Lock()
	t.procName[pid] = name
	t.mu.Unlock()
}

// SetThreadName names a (pid, tid) track for the exported trace.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.mu.Lock()
	t.thrName[threadKey(pid, tid)] = name
	t.mu.Unlock()
}

// push appends an event, evicting the oldest when full. Caller holds mu.
func (t *Tracer) push(ev Event) {
	if t.n < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % cap(t.buf)
	t.dropped++
}

// Span is an in-flight interval returned by Begin. The zero value is
// inert: End on it is a no-op, which is what Begin returns when tracing
// is off so call sites need no second guard.
type Span struct {
	tr     *Tracer
	serial uint64
	name   string
	cat    string
	pid    int
	tid    int
	start  uint64
}

// Active reports whether the span will record anything on End.
func (s Span) Active() bool { return s.tr != nil }

// Begin opens a span at sim-time ts. Spans on the same (pid, tid) must be
// ended in LIFO order; violations are counted in Mispaired.
func (t *Tracer) Begin(pid, tid int, name, cat string, ts uint64) Span {
	if t == nil || Disabled() {
		return Span{}
	}
	t.mu.Lock()
	t.serial++
	sp := Span{tr: t, serial: t.serial, name: name, cat: cat, pid: pid, tid: tid, start: ts}
	key := threadKey(pid, tid)
	t.open[key] = append(t.open[key], openSpan{serial: sp.serial, name: name})
	t.mu.Unlock()
	return sp
}

// End closes the span at sim-time ts, recording a complete ('X') event.
func (s Span) End(ts uint64, args ...Arg) {
	if s.tr == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	key := threadKey(s.pid, s.tid)
	stack := t.open[key]
	if n := len(stack); n > 0 && stack[n-1].serial == s.serial {
		t.open[key] = stack[:n-1]
	} else {
		// Out-of-order end: drop this span (and anything above it) from
		// the pairing stack and count the violation.
		t.mispaired++
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].serial == s.serial {
				t.open[key] = stack[:i]
				break
			}
		}
	}
	dur := uint64(0)
	if ts > s.start {
		dur = ts - s.start
	}
	t.push(Event{Name: s.name, Cat: s.cat, Phase: 'X', TS: s.start, Dur: dur,
		PID: s.pid, TID: s.tid, Args: args})
	t.mu.Unlock()
}

// Complete records a closed interval directly, bypassing pairing — used
// for phase breakdowns reconstructed from accumulated costs, where begin
// and end are known at once.
func (t *Tracer) Complete(pid, tid int, name, cat string, ts, dur uint64, args ...Arg) {
	if t == nil || Disabled() {
		return
	}
	t.mu.Lock()
	t.push(Event{Name: name, Cat: cat, Phase: 'X', TS: ts, Dur: dur,
		PID: pid, TID: tid, Args: args})
	t.mu.Unlock()
}

// Instant records a point event.
func (t *Tracer) Instant(pid, tid int, name, cat string, ts uint64, args ...Arg) {
	if t == nil || Disabled() {
		return
	}
	t.mu.Lock()
	t.push(Event{Name: name, Cat: cat, Phase: 'i', TS: ts,
		PID: pid, TID: tid, Args: args})
	t.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%cap(t.buf)])
	}
	return out
}

// OpenSpans returns the number of begun-but-not-ended spans.
func (t *Tracer) OpenSpans() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.open {
		n += len(s)
	}
	return n
}

// Mispaired returns the number of LIFO-pairing violations observed.
func (t *Tracer) Mispaired() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mispaired
}

// Dropped returns the number of events evicted by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all events and pairing state (names are kept).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.start, t.n = 0, 0
	t.dropped, t.mispaired, t.serial = 0, 0, 0
	t.open = make(map[uint64][]openSpan)
}

// WriteChromeTrace serializes the buffer in the Chrome trace_event JSON
// object format ({"traceEvents": [...]}), loadable in chrome://tracing
// and Perfetto. Virtual nanoseconds map to trace microseconds with three
// decimals, so 1 ns of sim time is 0.001 µs on the timeline. Output is
// deterministic: metadata first (sorted), then events oldest-first.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	procs := make([]int, 0, len(t.procName))
	for pid := range t.procName {
		procs = append(procs, pid)
	}
	sort.Ints(procs)
	thrs := make([]uint64, 0, len(t.thrName))
	for key := range t.thrName {
		thrs = append(thrs, key)
	}
	sort.Slice(thrs, func(i, j int) bool { return thrs[i] < thrs[j] })
	events := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		events = append(events, t.buf[(t.start+i)%cap(t.buf)])
	}
	type named struct {
		pid, tid int
		name     string
	}
	var meta []named
	for _, pid := range procs {
		meta = append(meta, named{pid: pid, tid: -1, name: t.procName[pid]})
	}
	for _, key := range thrs {
		meta = append(meta, named{pid: int(int32(key >> 32)), tid: int(int32(key)), name: t.thrName[key]})
	}
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for _, m := range meta {
		sep()
		if m.tid < 0 {
			fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":%s}}",
				m.pid, strconv.Quote(m.name))
		} else {
			fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
				m.pid, m.tid, strconv.Quote(m.name))
		}
	}
	for _, ev := range events {
		sep()
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"ts\":%s,\"pid\":%d,\"tid\":%d",
			strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ev.Phase, usec(ev.TS), ev.PID, ev.TID)
		if ev.Phase == 'X' {
			fmt.Fprintf(bw, ",\"dur\":%s", usec(ev.Dur))
		}
		if ev.Phase == 'i' {
			bw.WriteString(",\"s\":\"t\"")
		}
		if len(ev.Args) > 0 {
			bw.WriteString(",\"args\":{")
			for i, a := range ev.Args {
				if i > 0 {
					bw.WriteString(",")
				}
				fmt.Fprintf(bw, "%s:%d", strconv.Quote(a.Key), a.Val)
			}
			bw.WriteString("}")
		}
		bw.WriteString("}")
	}
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// usec formats virtual nanoseconds as microseconds with ns precision.
func usec(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1000.0, 'f', 3, 64)
}
