package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, which is what lets kernel.Stats embed counters directly in
// place of the old bare uint64 fields.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Gauge is an atomic instantaneous value (e.g. live μprocess count).
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.n.Store(0) }

// Registry is a named collection of counters, gauges and histograms.
// Lookups take a mutex; the returned instruments are lock-free, so hot
// paths should hold on to them (or guard lookups behind obs.On()).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket bounds on first use (nil means DefaultBuckets). Bounds are fixed
// at creation; later calls ignore the argument.
func (r *Registry) HistogramWith(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (the instruments stay
// registered, so held references remain valid). Benchmark harnesses call
// this between iterations so counts cannot leak across runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Snapshot is a point-in-time copy of every instrument, suitable for JSON
// emission alongside benchmark results.
type Snapshot struct {
	Counters   map[string]uint64      `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSummary, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys are emitted in
// sorted order by encoding/json, so output is deterministic).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders the snapshot as a human-readable sorted listing.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter    %-44s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge      %-44s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram  %-44s n=%d sum=%d min=%d p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
			n, h.Count, h.Sum, h.Min, h.P50, h.P90, h.P99, h.P999, h.Max)
	}
	return b.String()
}

// Histograms returns the registered histograms by name: a copied map over
// the shared (lock-free) instruments, for exporters that need bucket-level
// detail a Snapshot flattens away.
func (r *Registry) Histograms() map[string]*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		out[name] = h
	}
	return out
}
