package flight

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DumpTail is the number of trailing events panic/failure paths print by
// default: enough history to see the syscalls, faults, and frame traffic
// leading into a crash without drowning the repro line.
const DumpTail = 64

// WriteText writes the last n events (n < 0 means all) as human-readable
// text, one event per line, oldest first, preceded by a header naming how
// much history was kept and dropped.
func (r *Recorder) WriteText(w io.Writer, n int) error {
	evs := r.Tail(n)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "flight recorder: last %d of %d events (%d dropped by ring wrap)\n",
		len(evs), r.Seq(), r.Dropped())
	fmt.Fprintf(bw, "%12s  %s\n", "virtual-ns", "event")
	for _, e := range evs {
		bw.WriteString(e.Format())
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// TextDump returns WriteText output as a string (the form failure paths
// append below their repro line).
func (r *Recorder) TextDump(n int) string {
	var b strings.Builder
	_ = r.WriteText(&b, n)
	return b.String()
}

// WriteChromeTrace serializes the last n events (n < 0 means all) as
// Chrome trace_event JSON instant events, loadable in chrome://tracing or
// Perfetto alongside (or instead of) the obs tracer's span view. Virtual
// nanoseconds map to trace microseconds with three decimals.
func (r *Recorder) WriteChromeTrace(w io.Writer, n int) error {
	evs := r.Tail(n)
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	for i, e := range evs {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, "{\"name\":%s,\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,"+
			"\"args\":{\"seq\":%d,\"a0\":%d,\"a1\":%d,\"a2\":%d}}",
			strconv.Quote(e.Kind.String()), usec(e.TS), e.PID, e.PID,
			e.Seq, e.Args[0], e.Args[1], e.Args[2])
	}
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// usec formats virtual nanoseconds as microseconds with ns precision.
func usec(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1000.0, 'f', 3, 64)
}
