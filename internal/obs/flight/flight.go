// Package flight implements the kernel flight recorder: an always-on
// capable, fixed-capacity, sharded ring buffer of compact binary kernel
// events. Where the obs tracer is an opt-in, span-structured view for
// offline timeline analysis, the flight recorder is the post-mortem plane:
// cheap enough to leave running under production traffic, bounded in
// memory, and dumped — as human-readable text or a Chrome trace — the
// moment a panic, invariant violation, or chaos-fuzzer divergence needs
// the event history that led up to it.
//
// Design constraints, in order:
//
//  1. Zero-allocation append. An Event is a fixed-size value written in
//     place into a preallocated ring; Emit never allocates, on any path.
//  2. Cheap when off. A disabled Emit is one atomic load and a branch —
//     pinned under 10 ns/event by the benchmarks next to the obs
//     disabled-path suite.
//  3. Race-safe and shard-scalable. Events are sharded by PID so kernels
//     driven from concurrent host goroutines contend only within a shard;
//     a global atomic sequence number preserves total order across shards.
//  4. Deterministic. Timestamps are virtual (sim-clock) nanoseconds and
//     the sequence counter is per-recorder, so the same seeded run
//     produces a byte-identical dump — a chaos repro line replays not just
//     the failure but its entire event history.
package flight

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies one flight-recorder event. The argument meanings are
// fixed per kind (documented on each constant) so dumps decode without any
// side table.
type Kind uint8

const (
	// KindSyscall is syscall entry. Args: syscall number.
	KindSyscall Kind = iota
	// KindSysRet is syscall exit. Args: syscall number, latency (virtual ns).
	KindSysRet
	// KindForkStart marks fork-engine entry. Args: none.
	KindForkStart
	// KindForkDone marks a completed fork. Args: child PID, pages copied,
	// capabilities relocated.
	KindForkDone
	// KindFault is a taken page fault. Args: vm.FaultKind, faulting VA.
	KindFault
	// KindFaultDone is a resolved page fault. Args: vm.FaultKind, pages
	// copied by the resolution, capabilities relocated by the resolution.
	KindFaultDone
	// KindFrameAlloc is a physical-frame allocation. Args: PFN.
	KindFrameAlloc
	// KindFrameFree is a physical-frame free. Args: PFN.
	KindFrameFree
	// KindCtxSwitch is one scheduler context switch. Args: switch cost
	// (virtual ns).
	KindCtxSwitch
	// KindProcSpawn is μprocess creation. Args: parent PID.
	KindProcSpawn
	// KindProcExit is μprocess termination. Args: exit status.
	KindProcExit
	// KindMark is a harness annotation (e.g. a chaos invariant audit).
	// Args: caller-defined.
	KindMark
	// KindFrameOwnerChange is a CoW/CoA/CoPA sharing break that transferred
	// exclusive frame ownership to the faulting μprocess. Args: the frame
	// now exclusively owned, the break mode (1=CoW, 2=CoA, 3=CoPA), and the
	// shared ancestor frame the owner split from (equal to the owned frame
	// for an in-place CoA adoption).
	KindFrameOwnerChange
	// KindLockWait is a contended lock acquisition that stalled the
	// caller. Args: wait (virtual ns), syscall number being entered.
	KindLockWait
	// KindDispatch is a core grant that had to queue behind busy cores.
	// Args: queueing delay (virtual ns).
	KindDispatch
	// KindTraceStart is a causal trace origin: an op minted a trace ID on
	// this μprocess. Args: trace ID.
	KindTraceStart
	// KindTraceEdge is a causal handoff that pulled another μprocess into
	// a trace. Args: trace ID, edge kind (0=fork, 1=pipe, 2=signal), peer
	// PID (the child/reader/target that joined).
	KindTraceEdge
	// KindTraceEnd is a completed causal trace. Args: trace ID, root-span
	// latency (virtual ns).
	KindTraceEnd
	numKinds
)

var kindNames = [numKinds]string{
	"syscall", "sysret", "fork-start", "fork-done", "fault", "fault-done",
	"frame-alloc", "frame-free", "ctx-switch", "proc-spawn", "proc-exit",
	"mark", "frame-owner", "lock-wait", "dispatch",
	"trace-start", "trace-edge", "trace-end",
}

// ownerChangeModes decodes KindFrameOwnerChange's mode argument.
var ownerChangeModes = [...]string{"?", "cow", "coa", "copa"}

// traceEdgeNames decodes KindTraceEdge's edge-kind argument (mirroring
// causal.EdgeKind; flight cannot import causal without inverting the
// dependency).
var traceEdgeNames = [...]string{"fork", "pipe", "signal"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one compact binary flight record: 48 bytes, no pointers, no
// per-event allocation.
type Event struct {
	TS   uint64 // virtual ns
	Seq  uint64 // global order across shards (1-based)
	PID  int32
	Kind Kind
	Args [3]uint64
}

// Format renders the event as one line of the text dump.
func (e Event) Format() string {
	switch e.Kind {
	case KindSyscall:
		return fmt.Sprintf("%12d  pid=%-3d syscall     no=%d", e.TS, e.PID, e.Args[0])
	case KindSysRet:
		return fmt.Sprintf("%12d  pid=%-3d sysret      no=%d lat=%dns", e.TS, e.PID, e.Args[0], e.Args[1])
	case KindForkStart:
		return fmt.Sprintf("%12d  pid=%-3d fork-start", e.TS, e.PID)
	case KindForkDone:
		return fmt.Sprintf("%12d  pid=%-3d fork-done   child=%d pages=%d relocs=%d", e.TS, e.PID, e.Args[0], e.Args[1], e.Args[2])
	case KindFault:
		return fmt.Sprintf("%12d  pid=%-3d fault       kind=%d va=%#x", e.TS, e.PID, e.Args[0], e.Args[1])
	case KindFaultDone:
		return fmt.Sprintf("%12d  pid=%-3d fault-done  kind=%d copied=%d relocs=%d", e.TS, e.PID, e.Args[0], e.Args[1], e.Args[2])
	case KindFrameAlloc:
		return fmt.Sprintf("%12d  pid=%-3d frame-alloc pfn=%d", e.TS, e.PID, e.Args[0])
	case KindFrameFree:
		return fmt.Sprintf("%12d  pid=%-3d frame-free  pfn=%d", e.TS, e.PID, e.Args[0])
	case KindCtxSwitch:
		return fmt.Sprintf("%12d  pid=%-3d ctx-switch  cost=%dns", e.TS, e.PID, e.Args[0])
	case KindProcSpawn:
		return fmt.Sprintf("%12d  pid=%-3d proc-spawn  parent=%d", e.TS, e.PID, e.Args[0])
	case KindProcExit:
		return fmt.Sprintf("%12d  pid=%-3d proc-exit   status=%d", e.TS, e.PID, e.Args[0])
	case KindMark:
		return fmt.Sprintf("%12d  pid=%-3d mark        a0=%d a1=%d a2=%d", e.TS, e.PID, e.Args[0], e.Args[1], e.Args[2])
	case KindFrameOwnerChange:
		mode := "?"
		if e.Args[1] < uint64(len(ownerChangeModes)) {
			mode = ownerChangeModes[e.Args[1]]
		}
		return fmt.Sprintf("%12d  pid=%-3d frame-owner pfn=%d mode=%s from=%d", e.TS, e.PID, e.Args[0], mode, e.Args[2])
	case KindLockWait:
		return fmt.Sprintf("%12d  pid=%-3d lock-wait   wait=%dns no=%d", e.TS, e.PID, e.Args[0], e.Args[1])
	case KindDispatch:
		return fmt.Sprintf("%12d  pid=%-3d dispatch    wait=%dns", e.TS, e.PID, e.Args[0])
	case KindTraceStart:
		return fmt.Sprintf("%12d  pid=%-3d trace-start id=%d", e.TS, e.PID, e.Args[0])
	case KindTraceEdge:
		edge := "?"
		if e.Args[1] < uint64(len(traceEdgeNames)) {
			edge = traceEdgeNames[e.Args[1]]
		}
		return fmt.Sprintf("%12d  pid=%-3d trace-edge  id=%d kind=%s peer=%d", e.TS, e.PID, e.Args[0], edge, e.Args[2])
	case KindTraceEnd:
		return fmt.Sprintf("%12d  pid=%-3d trace-end   id=%d lat=%dns", e.TS, e.PID, e.Args[0], e.Args[1])
	default:
		return fmt.Sprintf("%12d  pid=%-3d %v a0=%d a1=%d a2=%d", e.TS, e.PID, e.Kind, e.Args[0], e.Args[1], e.Args[2])
	}
}

// Defaults for the process-wide recorder: 8 shards × 4096 events bounds
// memory at ~1.5 MiB while holding the last ~32k kernel events.
const (
	DefaultShards   = 8
	DefaultPerShard = 4096
)

// shard is one ring. The mutex serializes writers hashing to the same
// shard; the buffer is written in place, never grown.
type shard struct {
	mu   sync.Mutex
	buf  []Event
	next int // next write index
	n    int // live events (saturates at len(buf))
	_    [4]uint64
}

// Recorder is a sharded fixed-capacity event ring. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Recorder struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	dropped atomic.Uint64
	shards  []shard
	mask    uint64
}

// New creates a recorder with the given shard count (rounded up to a power
// of two, minimum 1) each holding perShard events.
func New(shards, perShard int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if perShard < 1 {
		perShard = 1
	}
	r := &Recorder{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, perShard)
	}
	return r
}

// Default is the process-wide recorder, shared by kernels constructed
// without an explicit recorder. Disabled until armed (by -serve, a chaos
// harness, or Enable): production deployments run it always-on; unit-test
// and benchmark kernels pay only the disabled-path probe.
var Default = New(DefaultShards, DefaultPerShard)

// Enable arms the recorder.
func (r *Recorder) Enable() { r.enabled.Store(true) }

// Disable stops recording (buffered events are kept).
func (r *Recorder) Disable() { r.enabled.Store(false) }

// On reports whether the recorder is armed: one atomic load, the hot-path
// probe call sites may use to skip argument marshalling.
func (r *Recorder) On() bool { return r != nil && r.enabled.Load() }

// Emit appends one event. When the recorder is nil or disabled this is a
// single atomic load and branch; when enabled it is a shard-mutex
// acquisition and an in-place 48-byte write — no allocation on any path.
func (r *Recorder) Emit(ts uint64, pid int32, kind Kind, a0, a1, a2 uint64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	seq := r.seq.Add(1)
	s := &r.shards[uint64(uint32(pid))&r.mask]
	s.mu.Lock()
	if s.n == len(s.buf) {
		r.dropped.Add(1)
	} else {
		s.n++
	}
	s.buf[s.next] = Event{TS: ts, Seq: seq, PID: pid, Kind: kind, Args: [3]uint64{a0, a1, a2}}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
	}
	s.mu.Unlock()
}

// Len returns the number of buffered events across all shards.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += s.n
		s.mu.Unlock()
	}
	return n
}

// Dropped returns the number of events evicted by ring wrap-around.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Seq returns the number of events ever emitted.
func (r *Recorder) Seq() uint64 { return r.seq.Load() }

// Reset discards all buffered events and restarts the sequence counter.
// The enabled switch is left as is.
func (r *Recorder) Reset() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.next, s.n = 0, 0
		s.mu.Unlock()
	}
	r.seq.Store(0)
	r.dropped.Store(0)
}

// Snapshot returns every buffered event in global (sequence) order. The
// per-shard rings are drained under their mutexes and merged; the result
// is a fresh slice safe to hold across further emission.
func (r *Recorder) Snapshot() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		start := s.next - s.n
		if start < 0 {
			start += len(s.buf)
		}
		for j := 0; j < s.n; j++ {
			out = append(out, s.buf[(start+j)%len(s.buf)])
		}
		s.mu.Unlock()
	}
	// Restore global order via the sequence number; dump paths are cold.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Tail returns the last n events in global order (all of them when fewer
// are buffered).
func (r *Recorder) Tail(n int) []Event {
	evs := r.Snapshot()
	if n >= 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
