package flight

import (
	"strings"
	"sync"
	"testing"
)

// drain returns the snapshot's (seq, kind) pairs for compact assertions.
func seqs(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, e := range evs {
		out[i] = e.Seq
	}
	return out
}

func TestEmitDisabledRecordsNothing(t *testing.T) {
	r := New(2, 8)
	r.Emit(1, 1, KindSyscall, 0, 0, 0)
	if r.Len() != 0 || r.Seq() != 0 {
		t.Fatalf("disabled recorder buffered events: len=%d seq=%d", r.Len(), r.Seq())
	}
	var nilRec *Recorder
	nilRec.Emit(1, 1, KindSyscall, 0, 0, 0) // must not panic
	if nilRec.On() {
		t.Fatal("nil recorder reports On")
	}
}

func TestSnapshotGlobalOrder(t *testing.T) {
	r := New(4, 16)
	r.Enable()
	// Interleave emits across pids (→ different shards); the snapshot must
	// come back in emission order regardless of shard layout.
	for i := 0; i < 32; i++ {
		r.Emit(uint64(i), int32(i%7), KindMark, uint64(i), 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 32 {
		t.Fatalf("snapshot has %d events, want 32", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("snapshot out of order at %d: seqs %v", i, seqs(evs))
		}
		if e.Args[0] != uint64(i) {
			t.Fatalf("event %d payload corrupted: %+v", i, e)
		}
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	r := New(1, 8) // single shard, tiny ring
	r.Enable()
	for i := 0; i < 20; i++ {
		r.Emit(uint64(i), 1, KindMark, uint64(i), 0, 0)
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d events, want capacity 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", r.Dropped())
	}
	evs := r.Snapshot()
	for i, e := range evs {
		if want := uint64(12 + i); e.Args[0] != want {
			t.Fatalf("after wrap, event %d = %d, want %d (ring must keep the newest)", i, e.Args[0], want)
		}
	}
}

func TestTail(t *testing.T) {
	r := New(2, 32)
	r.Enable()
	for i := 0; i < 10; i++ {
		r.Emit(uint64(i), int32(i), KindMark, uint64(i), 0, 0)
	}
	tail := r.Tail(3)
	if len(tail) != 3 || tail[0].Args[0] != 7 || tail[2].Args[0] != 9 {
		t.Fatalf("Tail(3) = %v", seqs(tail))
	}
	if got := len(r.Tail(-1)); got != 10 {
		t.Fatalf("Tail(-1) returned %d events, want all 10", got)
	}
	if got := len(r.Tail(100)); got != 10 {
		t.Fatalf("Tail(100) returned %d events, want 10", got)
	}
}

func TestReset(t *testing.T) {
	r := New(2, 8)
	r.Enable()
	for i := 0; i < 20; i++ {
		r.Emit(0, int32(i), KindMark, 0, 0, 0)
	}
	r.Reset()
	if r.Len() != 0 || r.Seq() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left state: len=%d seq=%d dropped=%d", r.Len(), r.Seq(), r.Dropped())
	}
	if !r.On() {
		t.Fatal("Reset cleared the enable switch")
	}
	r.Emit(1, 1, KindSyscall, 2, 0, 0)
	if r.Len() != 1 || r.Snapshot()[0].Seq != 1 {
		t.Fatal("recorder unusable after Reset")
	}
}

// TestConcurrentWriters hammers all shards from racing goroutines: run
// under -race, this is the shard-safety proof. Total order must still be
// strict and gap-free over the surviving window.
func TestConcurrentWriters(t *testing.T) {
	r := New(4, 256)
	r.Enable()
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(uint64(i), int32(w), KindMark, uint64(w), uint64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	if r.Seq() != writers*per {
		t.Fatalf("seq = %d, want %d", r.Seq(), writers*per)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not strictly ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestShardRoundsToPowerOfTwo(t *testing.T) {
	r := New(5, 4)
	if len(r.shards) != 8 {
		t.Fatalf("New(5, _) made %d shards, want 8", len(r.shards))
	}
	r.Enable()
	// Negative pids must hash to a valid shard, not panic.
	r.Emit(0, -3, KindMark, 0, 0, 0)
	if r.Len() != 1 {
		t.Fatal("negative pid event lost")
	}
}

func TestTextDumpFormat(t *testing.T) {
	r := New(1, 64)
	r.Enable()
	r.Emit(100, 1, KindSyscall, 3, 0, 0)
	r.Emit(250, 1, KindFault, 2, 0xdeadb000, 0)
	r.Emit(300, 1, KindFaultDone, 2, 1, 4)
	r.Emit(400, 1, KindSysRet, 3, 300, 0)
	dump := r.TextDump(DumpTail)
	if !strings.HasPrefix(dump, "flight recorder: last 4 of 4 events (0 dropped by ring wrap)\n") {
		t.Fatalf("dump header wrong:\n%s", dump)
	}
	for _, want := range []string{
		"syscall     no=3",
		"fault       kind=2 va=0xdeadb000",
		"fault-done  kind=2 copied=1 relocs=4",
		"sysret      no=3 lat=300ns",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	lines := strings.Split(strings.TrimRight(dump, "\n"), "\n")
	if len(lines) != 6 { // header + column header + 4 events
		t.Fatalf("dump has %d lines, want 6:\n%s", len(lines), dump)
	}
}

func TestChromeTraceDump(t *testing.T) {
	r := New(1, 16)
	r.Enable()
	r.Emit(1000, 2, KindForkStart, 0, 0, 0)
	r.Emit(2500, 2, KindForkDone, 3, 10, 7)
	var b strings.Builder
	if err := r.WriteChromeTrace(&b, -1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`{"traceEvents":[`,
		`"name":"fork-start"`,
		`"name":"fork-done"`,
		`"ts":1.000`,
		`"ts":2.500`,
		`"displayTimeUnit":"ns"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("Kind %d has no name", k)
		}
		// Every kind must render without falling into the default case's
		// raw a0/a1/a2 form unintentionally (Format never panics).
		_ = Event{Kind: k}.Format()
	}
	if s := Kind(200).String(); s != "kind(200)" {
		t.Fatalf("out-of-range Kind string = %q", s)
	}
}
