package flight

import (
	"sync/atomic"
	"testing"
)

// The disabled-path benchmark sits beside the obs disabled-path suite and
// pins the flight recorder's acceptance criterion: a compiled-in Emit on a
// disabled recorder is one atomic load and a branch — under 10 ns/event on
// any modern machine. TestDisabledEmitUnder10ns enforces the bound in the
// normal test run, not just under -bench.
//
//	go test -bench Disabled ./internal/obs/flight

// BenchmarkDisabledEmit is the exact shape of every kernel emit point with
// the recorder off (the unit-test and production-default configuration).
func BenchmarkDisabledEmit(b *testing.B) {
	r := New(DefaultShards, 64)
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), 1, KindSyscall, 3, 0, 0)
	}
	if r.Len() != 0 {
		b.Fatal("disabled Emit buffered an event")
	}
}

// BenchmarkDisabledGuardedEmit is the guarded form hot paths use to skip
// argument marshalling: On() check plus the skipped call.
func BenchmarkDisabledGuardedEmit(b *testing.B) {
	r := New(DefaultShards, 64)
	for i := 0; i < b.N; i++ {
		if r.On() {
			r.Emit(uint64(i), 1, KindSyscall, 3, 0, 0)
		}
	}
}

// BenchmarkEnabledEmit is the contrast case: the full sharded-ring append.
func BenchmarkEnabledEmit(b *testing.B) {
	r := New(DefaultShards, 4096)
	r.Enable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), int32(i&7), KindSyscall, 3, 0, 0)
	}
}

// TestDisabledEmitUnder10ns pins the <10ns/event disabled-path bound as a
// plain test so CI enforces it on every run. The 10x margin over the
// typical sub-ns cost absorbs noisy shared runners.
func TestDisabledEmitUnder10ns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation breaks the timing bound")
	}
	r := New(DefaultShards, 64)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Emit(uint64(i), 1, KindSyscall, 3, 0, 0)
		}
	})
	if ns := res.NsPerOp(); ns >= 10 {
		t.Fatalf("disabled Emit costs %d ns/event, want <10", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled Emit allocates %d objects/event, want 0", allocs)
	}
	// The enabled path must be allocation-free too (ring append in place).
	r.Enable()
	var sink atomic.Uint64
	enabled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Emit(uint64(i), 1, KindSyscall, 3, 0, 0)
		}
		sink.Store(r.Seq())
	})
	if allocs := enabled.AllocsPerOp(); allocs != 0 {
		t.Fatalf("enabled Emit allocates %d objects/event, want 0", allocs)
	}
}
