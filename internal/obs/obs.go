// Package obs is the kernel-wide observability layer: a low-overhead,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// latency histograms with percentile summaries) and a span tracer whose
// events carry monotonic sim-clock timestamps and export to Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto.
//
// Design constraints, in order:
//
//  1. Off by default. The whole layer sits behind one global switch; a
//     disabled hot-path probe is a single atomic load and branch, far
//     below benchmark noise (see obs_bench_test.go).
//  2. Zero virtual-time cost. Instrumentation never calls Advance/Work on
//     the simulation clock, so enabling tracing cannot perturb measured
//     results — the trace of a run and the run itself describe the same
//     timeline.
//  3. Race-safe. Counters and histograms are plain atomics; the trace
//     ring buffer takes a mutex only on the enabled path. `go test -race`
//     covers the whole package.
//
// Typical hot-path shape:
//
//	if obs.On() {
//		sp := k.Obs.Tracer.Begin(pid, tid, "fork", "kernel", now)
//		defer sp.End(later)
//	}
package obs

import (
	"fmt"
	"os"
	"sync/atomic"
)

// enabled is the single global switch. All span/histogram instrumentation
// sites check it before touching any obs state.
var enabled atomic.Bool

// Enable turns the observability layer on globally.
func Enable() { enabled.Store(true) }

// Disable turns the observability layer off globally (the default).
func Disable() { enabled.Store(false) }

// On reports whether the observability layer is enabled. This is the
// hot-path probe: one atomic load.
func On() bool { return enabled.Load() }

// Disabled is the nop-path predicate: true (the default) means every
// instrumentation site must fall through without allocating or locking.
func Disabled() bool { return !enabled.Load() }

// Obs bundles one registry and one tracer — the handle a kernel instance
// carries so experiments can run side by side without sharing state.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// New returns a fresh Obs with an empty registry and a default-capacity
// tracer.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(DefaultTraceEvents)}
}

// Default is the process-wide Obs. Kernels constructed without an explicit
// Obs share it, which is what lets `ufork-bench -metrics` aggregate counts
// across every kernel an experiment sweep boots.
var Default = New()

// WriteTraceFile writes the tracer's Chrome trace_event JSON to path.
func (o *Obs) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace %s: %w", path, err)
	}
	return f.Close()
}

// WriteMetricsFile writes a JSON snapshot of the registry to path.
func (o *Obs) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Reg.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write metrics %s: %w", path, err)
	}
	return f.Close()
}
