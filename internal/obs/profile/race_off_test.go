//go:build !race

package profile

// raceEnabled reports whether the race detector is compiled in; timing
// bounds are meaningless under its instrumentation.
const raceEnabled = false
