package profile

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ufork/internal/sim"
)

func testStack(cpu int32, pid int32, sys, phase string) Stack {
	return Stack{CPU: cpu, PID: pid, Proc: "kvsrv", Sys: sys, Phase: phase}
}

// TestQuantization: sub-quantum charges accumulate in the residual and
// emit one tick per boundary crossed; the stack on the CPU at the
// crossing owns the whole tick.
func TestQuantization(t *testing.T) {
	pl := New(100)
	pl.Enable()
	a := testStack(0, 1, "fork", "fork:ptecopy")
	b := testStack(0, 1, "", "")
	pl.Add(a, KindRun, 0, 70)  // residual 70
	pl.Add(b, KindRun, 0, 70)  // crosses 100: b owns the tick, residual 40
	pl.Add(a, KindRun, 0, 260) // crosses 200 and 300: a owns 3 ticks, residual 0
	snap := pl.Snapshot()
	got := map[string]uint64{}
	for _, sc := range snap.Stacks {
		got[sc.Stack.Key()] = sc.Samples
	}
	if got[a.Key()] != 3 || got[b.Key()] != 1 {
		t.Fatalf("tick ownership = %v, want a=3 b=1", got)
	}
	if pl.Samples() != 4 {
		t.Fatalf("Samples() = %d, want 4", pl.Samples())
	}
	if err := pl.CheckExact(); err != nil {
		t.Fatal(err)
	}
	if pl.ChargedNS(0, KindRun) != 400 || pl.SampledNS(0, KindRun) != 400 {
		t.Fatalf("charged/sampled = %d/%d, want 400/400",
			pl.ChargedNS(0, KindRun), pl.SampledNS(0, KindRun))
	}
}

// TestExactSumPerKind: kinds keep independent accumulators and the
// identity charged == sampled + residual holds per (cpu, kind).
func TestExactSumPerKind(t *testing.T) {
	pl := New(1000)
	pl.Enable()
	st := testStack(1, 2, "read", "")
	pl.Add(st, KindRun, 1, 2500)
	pl.Add(st, KindLatency, 1, 999)
	pl.Add(st, KindLockWait, 1, 1001)
	if err := pl.CheckExact(); err != nil {
		t.Fatal(err)
	}
	if pl.SampledNS(1, KindRun) != 2000 || pl.SampledNS(1, KindLatency) != 0 || pl.SampledNS(1, KindLockWait) != 1000 {
		t.Fatalf("sampled per kind = %d/%d/%d", pl.SampledNS(1, KindRun),
			pl.SampledNS(1, KindLatency), pl.SampledNS(1, KindLockWait))
	}
	if pl.ChargedNS(1, KindLatency) != 999 {
		t.Fatalf("latency charged = %d, want 999", pl.ChargedNS(1, KindLatency))
	}
}

// TestCheckExactSabotage proves the checker actually fires: corrupting
// any leg of the accounting identity must produce an error.
func TestCheckExactSabotage(t *testing.T) {
	mk := func() *Plane {
		pl := New(100)
		pl.Enable()
		pl.Add(testStack(0, 1, "", ""), KindRun, 0, 250)
		return pl
	}
	if err := mk().CheckExact(); err != nil {
		t.Fatalf("healthy plane fails CheckExact: %v", err)
	}
	sabotages := []struct {
		name string
		f    func(*Plane)
	}{
		{"lost charged time", func(pl *Plane) { pl.cpus[0].charged[KindRun] -= 30 }},
		{"invented sampled time", func(pl *Plane) { pl.cpus[0].sampled[KindRun] += 100 }},
		{"overflowing residual", func(pl *Plane) {
			pl.cpus[0].residual[KindRun] += 200
			pl.cpus[0].charged[KindRun] += 200
		}},
		{"dropped sample bucket", func(pl *Plane) {
			for st := range pl.buckets {
				delete(pl.buckets, st)
			}
		}},
		{"skewed sample counter", func(pl *Plane) { pl.samples.Add(1) }},
	}
	for _, s := range sabotages {
		pl := mk()
		s.f(pl)
		if err := pl.CheckExact(); err == nil {
			t.Errorf("%s: CheckExact did not fire", s.name)
		}
	}
}

// TestFoldedDeterministic: insertion order must not leak into the
// folded output — two differently-ordered but identical charge
// sequences render byte-identically.
func TestFoldedDeterministic(t *testing.T) {
	stacks := []Stack{
		testStack(0, 1, "fork", "fork:scan"),
		testStack(1, 2, "write", "lock:tmem"),
		testStack(0, 3, "", "fault:cow"),
		testStack(2, 1, "", ""),
	}
	build := func(order []int) *Plane {
		pl := New(10)
		pl.Enable()
		for _, i := range order {
			pl.Add(stacks[i], KindRun, int(stacks[i].CPU), 100)
		}
		return pl
	}
	a := build([]int{0, 1, 2, 3}).Folded()
	b := build([]int{3, 2, 1, 0}).Folded()
	if a != b {
		t.Fatalf("folded output depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	want := "cpu0;proc:kvsrv[1];syscall:fork;phase:fork:scan 100\n" +
		"cpu0;proc:kvsrv[3];phase:fault:cow 100\n" +
		"cpu1;proc:kvsrv[2];syscall:write;phase:lock:tmem 100\n" +
		"cpu2;proc:kvsrv[1] 100\n"
	if a != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", a, want)
	}
}

// TestTopRender: hottest stack first, shares sum to 100%.
func TestTopRender(t *testing.T) {
	pl := New(10)
	pl.Enable()
	pl.Add(testStack(0, 1, "fork", ""), KindRun, 0, 30)
	pl.Add(testStack(0, 2, "", ""), KindRun, 0, 10)
	out := pl.RenderTop(1)
	if !strings.Contains(out, "4 samples") {
		t.Fatalf("missing sample count header:\n%s", out)
	}
	if !strings.Contains(out, "75.00%") || strings.Contains(out, "25.00%") {
		t.Fatalf("top-1 should keep only the 75%% stack:\n%s", out)
	}
	if empty := New(10).RenderTop(5); !strings.Contains(empty, "no samples") {
		t.Fatalf("empty render = %q", empty)
	}
}

// TestDiff: signed deltas, sorted by |delta| descending, stacks unique
// to either side included.
func TestDiff(t *testing.T) {
	before := New(10)
	before.Enable()
	after := New(10)
	after.Enable()
	shrink := testStack(0, 1, "fork", "fork:eagercopy")
	grow := testStack(0, 1, "fork", "fork:ptecopy")
	gone := testStack(0, 2, "read", "")
	born := testStack(0, 3, "write", "")
	before.Add(shrink, KindRun, 0, 500)
	before.Add(grow, KindRun, 0, 100)
	before.Add(gone, KindRun, 0, 50)
	after.Add(shrink, KindRun, 0, 100)
	after.Add(grow, KindRun, 0, 300)
	after.Add(born, KindRun, 0, 40)
	ds := Diff(before.Snapshot(), after.Snapshot())
	if len(ds) != 4 {
		t.Fatalf("diff has %d stacks, want 4", len(ds))
	}
	if ds[0].Stack != shrink || ds[0].DeltaNS != -400 {
		t.Fatalf("largest delta = %+v, want shrink -400", ds[0])
	}
	if ds[1].Stack != grow || ds[1].DeltaNS != +200 {
		t.Fatalf("second delta = %+v, want grow +200", ds[1])
	}
	out := RenderDiff(ds, 2, "bkl", "smp")
	if !strings.Contains(out, "-400") || !strings.Contains(out, "+200") {
		t.Fatalf("rendered diff missing signed deltas:\n%s", out)
	}
	if strings.Contains(out, "read") {
		t.Fatalf("top-2 diff should drop the small stacks:\n%s", out)
	}
}

// TestPprofDeterministic: the gzip blob is byte-identical across
// identical snapshots.
func TestPprofDeterministic(t *testing.T) {
	mk := func() []byte {
		pl := New(10)
		pl.Enable()
		pl.Add(testStack(0, 1, "fork", "fork:reserve"), KindRun, 0, 100)
		pl.Add(testStack(1, 2, "", ""), KindLatency, 1, 40)
		var b bytes.Buffer
		if err := pl.WritePprof(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("pprof output differs across identical runs")
	}
}

// TestPprofParses feeds the blob to the real `go tool pprof -top` and
// checks the synthetic frames survive the round trip. Skipped when the
// go tool is unavailable.
func TestPprofParses(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	pl := New(10)
	pl.Enable()
	pl.Add(testStack(0, 1, "fork", "fork:ptecopy"), KindRun, 0, 300)
	pl.Add(testStack(0, 1, "", ""), KindRun, 0, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.pb.gz")
	var b bytes.Buffer
	if err := pl.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount=10", path)
	cmd.Env = append(os.Environ(), "PPROF_NO_BROWSER=1", "HOME="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("go tool pprof unavailable: %v\n%s", err, out)
	}
	for _, frag := range []string{"phase:fork:ptecopy", "syscall:fork", "proc:kvsrv[1]"} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("pprof -top output missing %q:\n%s", frag, out)
		}
	}
}

// TestDisabledPath pins the disabled-path cost: one atomic load, ≤5ns,
// zero allocations — same budget as the flight and causal planes.
func TestDisabledPath(t *testing.T) {
	if testing.Short() {
		t.Skip("timing bound, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing bound meaningless under the race detector")
	}
	pl := New(0)
	st := testStack(0, 1, "fork", "")
	cases := []struct {
		name string
		f    func(b *testing.B)
	}{
		{"disabled On", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pl.On() {
					b.Fatal("plane should be disabled")
				}
			}
		}},
		{"nil-plane On", func(b *testing.B) {
			var nilPl *Plane
			for i := 0; i < b.N; i++ {
				if nilPl.On() {
					b.Fatal("nil plane should be off")
				}
			}
		}},
		{"disabled Add", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl.Add(st, KindRun, 0, 100)
			}
		}},
	}
	for _, c := range cases {
		r := testing.Benchmark(c.f)
		if ns := r.NsPerOp(); ns > 5 {
			t.Errorf("%s: %d ns/op, budget is 5", c.name, ns)
		}
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op, budget is 0", c.name, a)
		}
	}
	if pl.Samples() != 0 {
		t.Fatal("disabled plane recorded samples")
	}
}

func BenchmarkDisabledAdd(b *testing.B) {
	pl := New(0)
	st := testStack(0, 1, "", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Add(st, KindRun, 0, 100)
	}
}

func BenchmarkArmedAdd(b *testing.B) {
	pl := New(sim.Time(100))
	pl.Enable()
	st := testStack(0, 1, "read", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pl.Add(st, KindRun, 0, 70)
	}
}
