// Package profile is the deterministic virtual-time sampling profiler.
//
// The kernel charges every on-core compute slot, off-core latency, and
// lock wait to the plane as (stack, kind, cpu, duration) intervals; the
// plane converts them into samples at a fixed virtual-time quantum using
// a residual accumulator per (cpu, kind) — the stack charged when the
// accumulated time crosses a quantum boundary owns the whole tick,
// exactly like a tick-based kernel profiler. Because sampling consumes
// the same durations the engine already charged and never touches task
// clocks, profiles are byte-deterministic and arming the plane cannot
// move the simulated timeline.
//
// Design constraints, shared with the flight/causal planes:
//
//  1. The disabled path is one atomic load — no locks, no allocation —
//     pinned ≤5ns / 0 allocs by tests.
//  2. Sampling never advances a virtual clock; goldens stay
//     byte-identical whether the plane is armed or not.
//  3. Accounting is exact: per (cpu, kind), sampled time plus the
//     residual equals the charged time to the nanosecond, so the total
//     sampled time per CPU matches the engine's recorded busy time
//     within one quantum. CheckExact verifies the identity.
//  4. Exports are deterministic: stacks, string tables, and samples are
//     emitted in sorted order.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ufork/internal/sim"
)

// DefaultQuantum is the sampling period when New is given zero: one
// sample per 10µs of charged virtual time per (cpu, kind).
const DefaultQuantum = 10 * sim.Microsecond

// Kind classifies the charge a sample was cut from. Run is on-core
// compute (Work/Book slots), Latency is off-core time the kernel charges
// to a task (device waits, fork/fault engine phases), LockWait is time
// spent queued on a kernel lock.
type Kind int

const (
	KindRun Kind = iota
	KindLatency
	KindLockWait
	NumKinds
)

var kindNames = [NumKinds]string{"run", "latency", "lock-wait"}

func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Stack is the synthetic call stack attached to a sample, assembled from
// the kernel's existing attribution state. The zero value of a field
// omits its frame: Sys is empty outside syscalls, Phase is empty outside
// fork/fault/lock windows.
type Stack struct {
	CPU   int32
	PID   int32
	Proc  string // program name, e.g. "kvsrv"
	Sys   string // syscall name while inside a syscall, else ""
	Phase string // "fork:<phase>", "fault:<copy-mode>", "lock:<site>", or ""
}

// Key renders the folded-stack form: semicolon-joined frames, root
// first — `cpu0;proc:kvsrv[3];syscall:fork;phase:fork:ptecopy`.
func (st Stack) Key() string {
	return strings.Join(st.Frames(), ";")
}

// Frames returns the stack frames root-first.
func (st Stack) Frames() []string {
	f := make([]string, 0, 4)
	f = append(f, fmt.Sprintf("cpu%d", st.CPU))
	f = append(f, fmt.Sprintf("proc:%s[%d]", st.Proc, st.PID))
	if st.Sys != "" {
		f = append(f, "syscall:"+st.Sys)
	}
	if st.Phase != "" {
		f = append(f, "phase:"+st.Phase)
	}
	return f
}

// cpuAcct is the exact per-CPU ledger: for each kind, the virtual time
// charged, the part already emitted as samples, and the residual still
// accumulating toward the next quantum boundary. Invariant (CheckExact):
// charged == sampled + residual, residual < quantum.
type cpuAcct struct {
	charged  [NumKinds]uint64
	sampled  [NumKinds]uint64
	residual [NumKinds]uint64
}

// Plane is the profiler. One plane may aggregate across several kernel
// boots (like the causal plane, ArmProfile does not reset it), which is
// how sweep-wide profiles and cross-run diffs are built.
type Plane struct {
	enabled atomic.Bool
	samples atomic.Uint64 // total ticks emitted; the armed-vs-idle discriminator
	quantum sim.Time

	mu      sync.Mutex
	cpus    []cpuAcct
	buckets map[Stack]uint64 // tick counts per stack
}

// New creates a disabled plane sampling every quantum nanoseconds of
// charged virtual time; quantum 0 selects DefaultQuantum.
func New(quantum sim.Time) *Plane {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &Plane{quantum: quantum, buckets: make(map[Stack]uint64)}
}

// On reports whether the plane is armed. Nil-safe: the disabled and
// nil-plane paths are a pointer test plus one atomic load.
func (pl *Plane) On() bool { return pl != nil && pl.enabled.Load() }

// Enable arms the plane.
func (pl *Plane) Enable() { pl.enabled.Store(true) }

// Disable stops sampling; accumulated samples remain exportable.
func (pl *Plane) Disable() { pl.enabled.Store(false) }

// Quantum returns the sampling period.
func (pl *Plane) Quantum() sim.Time { return pl.quantum }

// Samples returns the total number of ticks emitted so far.
func (pl *Plane) Samples() uint64 {
	if pl == nil {
		return 0
	}
	return pl.samples.Load()
}

// Add charges d nanoseconds of kind time on cpu to stack st, emitting
// one sample per quantum boundary the (cpu, kind) accumulator crosses.
// The stack on the CPU at the crossing owns the whole tick.
func (pl *Plane) Add(st Stack, kind Kind, cpu int, d sim.Time) {
	if !pl.On() || d == 0 {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for cpu >= len(pl.cpus) {
		pl.cpus = append(pl.cpus, cpuAcct{})
	}
	c := &pl.cpus[cpu]
	c.charged[kind] += uint64(d)
	c.residual[kind] += uint64(d)
	q := uint64(pl.quantum)
	if n := c.residual[kind] / q; n > 0 {
		c.residual[kind] -= n * q
		c.sampled[kind] += n * q
		pl.buckets[st] += n
		pl.samples.Add(n)
	}
}

// Reset clears all samples and accounting; the armed state is kept.
func (pl *Plane) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.cpus = nil
	pl.buckets = make(map[Stack]uint64)
	pl.samples.Store(0)
}

// CheckExact verifies the accounting identity on every (cpu, kind):
// charged == sampled + residual and residual < quantum. A non-nil error
// means the sampler lost or invented time.
func (pl *Plane) CheckExact() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var ticks uint64
	for cpu := range pl.cpus {
		c := &pl.cpus[cpu]
		for k := Kind(0); k < NumKinds; k++ {
			if c.residual[k] >= uint64(pl.quantum) {
				return fmt.Errorf("profile: cpu%d %s residual %d ≥ quantum %d",
					cpu, k, c.residual[k], pl.quantum)
			}
			if c.sampled[k]+c.residual[k] != c.charged[k] {
				return fmt.Errorf("profile: cpu%d %s sampled %d + residual %d != charged %d",
					cpu, k, c.sampled[k], c.residual[k], c.charged[k])
			}
			if c.sampled[k]%uint64(pl.quantum) != 0 {
				return fmt.Errorf("profile: cpu%d %s sampled %d not a multiple of quantum %d",
					cpu, k, c.sampled[k], pl.quantum)
			}
			ticks += c.sampled[k] / uint64(pl.quantum)
		}
	}
	var bucketTicks uint64
	for _, n := range pl.buckets {
		bucketTicks += n
	}
	if bucketTicks != ticks {
		return fmt.Errorf("profile: bucket ticks %d != per-cpu sampled ticks %d", bucketTicks, ticks)
	}
	if got := pl.samples.Load(); got != ticks {
		return fmt.Errorf("profile: sample counter %d != per-cpu sampled ticks %d", got, ticks)
	}
	return nil
}

// CPUAcct is the exported per-CPU accounting row of a Snapshot.
type CPUAcct struct {
	Charged  [NumKinds]uint64 `json:"charged"`
	Sampled  [NumKinds]uint64 `json:"sampled"`
	Residual [NumKinds]uint64 `json:"residual"`
}

// ChargedNS returns the total virtual time charged on cpu for kind —
// for Run this equals the scheduler's recorded core-busy time.
func (pl *Plane) ChargedNS(cpu int, kind Kind) uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if cpu >= len(pl.cpus) {
		return 0
	}
	return pl.cpus[cpu].charged[kind]
}

// SampledNS returns the virtual time emitted as samples on cpu for kind.
func (pl *Plane) SampledNS(cpu int, kind Kind) uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if cpu >= len(pl.cpus) {
		return 0
	}
	return pl.cpus[cpu].sampled[kind]
}

// StackCount is one aggregated stack with its tick count.
type StackCount struct {
	Stack   Stack
	Samples uint64
}

// Snapshot is a consistent, sorted copy of the plane's state.
type Snapshot struct {
	Quantum sim.Time
	Samples uint64
	Stacks  []StackCount // sorted by folded key
	CPUs    []CPUAcct
}

// Snapshot copies the plane state with stacks sorted by folded key.
func (pl *Plane) Snapshot() Snapshot {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	s := Snapshot{Quantum: pl.quantum, Samples: pl.samples.Load()}
	s.Stacks = make([]StackCount, 0, len(pl.buckets))
	for st, n := range pl.buckets {
		s.Stacks = append(s.Stacks, StackCount{Stack: st, Samples: n})
	}
	sort.Slice(s.Stacks, func(i, j int) bool {
		return s.Stacks[i].Stack.Key() < s.Stacks[j].Stack.Key()
	})
	s.CPUs = make([]CPUAcct, len(pl.cpus))
	for i := range pl.cpus {
		s.CPUs[i] = CPUAcct{
			Charged:  pl.cpus[i].charged,
			Sampled:  pl.cpus[i].sampled,
			Residual: pl.cpus[i].residual,
		}
	}
	return s
}
