package profile

import (
	"compress/gzip"
	"io"
	"sort"
)

// WritePprof emits the profile as a gzip-compressed pprof profile.proto
// blob parseable by `go tool pprof`. The encoding is hand-rolled
// protobuf wire format (the schema is small and stable), so no
// third-party dependency is needed. Two sample values are emitted per
// stack: tick count and virtual nanoseconds. Output is deterministic:
// the string table, functions, locations, and samples are derived from
// the sorted snapshot and time_nanos is fixed at zero.
func (s Snapshot) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(s.pprofBytes()); err != nil {
		return err
	}
	return zw.Close()
}

// WritePprof emits the plane's current samples; see Snapshot.WritePprof.
func (pl *Plane) WritePprof(w io.Writer) error { return pl.Snapshot().WritePprof(w) }

// pprof profile.proto field numbers (github.com/google/pprof).
const (
	profSampleType  = 1
	profSample      = 2
	profLocation    = 4
	profFunction    = 5
	profStringTable = 6
	profPeriodType  = 11
	profPeriod      = 12

	vtType = 1 // ValueType.type
	vtUnit = 2 // ValueType.unit

	sampleLocationID = 1
	sampleValue      = 2

	locationID   = 1
	locationLine = 4

	lineFunctionID = 1

	functionID   = 1
	functionName = 2
)

func (s Snapshot) pprofBytes() []byte {
	// Intern every unique frame string; ids are 1-based in sorted order
	// so the output is independent of map iteration.
	frameSet := make(map[string]bool)
	for _, sc := range s.Stacks {
		for _, f := range sc.Stack.Frames() {
			frameSet[f] = true
		}
	}
	frames := make([]string, 0, len(frameSet))
	for f := range frameSet {
		frames = append(frames, f)
	}
	sort.Strings(frames)
	frameID := make(map[string]uint64, len(frames))
	for i, f := range frames {
		frameID[f] = uint64(i + 1)
	}

	strs := newStringTable()
	var out pbuf

	// sample_type: (samples, count) and (virtualtime, nanoseconds).
	out.message(profSampleType, valueType(strs, "samples", "count"))
	out.message(profSampleType, valueType(strs, "virtualtime", "nanoseconds"))

	// samples: location ids leaf-first, values [ticks, ns].
	for _, sc := range s.Stacks {
		fs := sc.Stack.Frames()
		var sm pbuf
		var locs pbuf
		for i := len(fs) - 1; i >= 0; i-- { // leaf first
			locs.varint(frameID[fs[i]])
		}
		sm.bytes(sampleLocationID, locs.b) // packed uint64
		var vals pbuf
		vals.varint(sc.Samples)
		vals.varint(sc.Samples * uint64(s.Quantum))
		sm.bytes(sampleValue, vals.b) // packed int64
		out.bytes(profSample, sm.b)
	}

	// locations and functions: one of each per unique frame, id == frame id.
	for i, f := range frames {
		id := uint64(i + 1)
		var line pbuf
		line.uvarint(lineFunctionID, id)
		var loc pbuf
		loc.uvarint(locationID, id)
		loc.bytes(locationLine, line.b)
		out.bytes(profLocation, loc.b)

		var fn pbuf
		fn.uvarint(functionID, id)
		fn.uvarint(functionName, strs.id(f))
		out.bytes(profFunction, fn.b)
	}

	out.message(profPeriodType, valueType(strs, "virtualtime", "nanoseconds"))
	out.uvarint(profPeriod, uint64(s.Quantum))

	// The string table is emitted last so interning above can keep
	// growing it; protobuf field order is free, decoders do not care.
	for _, str := range strs.list {
		out.str(profStringTable, str)
	}
	return out.b
}

func valueType(strs *stringTable, typ, unit string) []byte {
	var b pbuf
	b.uvarint(vtType, strs.id(typ))
	b.uvarint(vtUnit, strs.id(unit))
	return b.b
}

// stringTable interns strings with index 0 reserved for "".
type stringTable struct {
	list []string
	idx  map[string]uint64
}

func newStringTable() *stringTable {
	return &stringTable{list: []string{""}, idx: map[string]uint64{"": 0}}
}

func (s *stringTable) id(str string) uint64 {
	if id, ok := s.idx[str]; ok {
		return id
	}
	id := uint64(len(s.list))
	s.list = append(s.list, str)
	s.idx[str] = id
	return id
}

// pbuf is a minimal protobuf wire-format encoder.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uvarint emits a varint-typed field, omitted when zero (proto3 default).
func (p *pbuf) uvarint(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.varint(v)
}

// bytes emits a length-delimited field (submessage or packed scalars).
func (p *pbuf) bytes(field int, b []byte) {
	p.key(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// message emits a submessage even when empty.
func (p *pbuf) message(field int, b []byte) { p.bytes(field, b) }

func (p *pbuf) str(field int, s string) {
	p.key(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}
