package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFolded emits the profile as folded-stack text — one line per
// stack, `frame;frame;... <weight>`, weight in virtual nanoseconds —
// the input format of flamegraph.pl and speedscope. Lines are sorted by
// stack key, so identical runs produce byte-identical output.
func (s Snapshot) WriteFolded(w io.Writer) error {
	for _, sc := range s.Stacks {
		if _, err := fmt.Fprintf(w, "%s %d\n", sc.Stack.Key(), sc.Samples*uint64(s.Quantum)); err != nil {
			return err
		}
	}
	return nil
}

// Folded renders WriteFolded to a string.
func (s Snapshot) Folded() string {
	var b strings.Builder
	s.WriteFolded(&b)
	return b.String()
}

// Folded renders the plane's current samples as folded-stack text.
func (pl *Plane) Folded() string { return pl.Snapshot().Folded() }

// RenderTop renders the n hottest stacks as a text table with absolute
// virtual time and share of all samples. n <= 0 means all stacks.
func (s Snapshot) RenderTop(n int) string {
	stacks := make([]StackCount, len(s.Stacks))
	copy(stacks, s.Stacks)
	sort.Slice(stacks, func(i, j int) bool {
		if stacks[i].Samples != stacks[j].Samples {
			return stacks[i].Samples > stacks[j].Samples
		}
		return stacks[i].Stack.Key() < stacks[j].Stack.Key()
	})
	if n > 0 && len(stacks) > n {
		stacks = stacks[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top virtual-time stacks (%d samples × %v quantum)\n", s.Samples, s.Quantum)
	if s.Samples == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %7s  %14s  %s\n", "share", "time", "stack")
	for _, sc := range stacks {
		ns := sc.Samples * uint64(s.Quantum)
		share := 100 * float64(sc.Samples) / float64(s.Samples)
		fmt.Fprintf(&b, "  %6.2f%%  %14d  %s\n", share, ns, sc.Stack.Key())
	}
	return b.String()
}

// RenderTop renders the plane's n hottest stacks.
func (pl *Plane) RenderTop(n int) string { return pl.Snapshot().RenderTop(n) }

// StackDelta is one signed per-stack difference between two profiles.
type StackDelta struct {
	Stack    Stack
	BeforeNS uint64
	AfterNS  uint64
	DeltaNS  int64 // AfterNS - BeforeNS
}

// Diff subtracts profile before from profile after, returning the signed
// virtual-time delta for every stack present in either, sorted by
// absolute delta descending (ties by stack key). Quanta may differ; the
// comparison is in nanoseconds.
func Diff(before, after Snapshot) []StackDelta {
	merged := make(map[Stack]*StackDelta)
	for _, sc := range before.Stacks {
		merged[sc.Stack] = &StackDelta{Stack: sc.Stack, BeforeNS: sc.Samples * uint64(before.Quantum)}
	}
	for _, sc := range after.Stacks {
		d := merged[sc.Stack]
		if d == nil {
			d = &StackDelta{Stack: sc.Stack}
			merged[sc.Stack] = d
		}
		d.AfterNS = sc.Samples * uint64(after.Quantum)
	}
	out := make([]StackDelta, 0, len(merged))
	for _, d := range merged {
		d.DeltaNS = int64(d.AfterNS) - int64(d.BeforeNS)
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].DeltaNS), abs64(out[j].DeltaNS)
		if ai != aj {
			return ai > aj
		}
		return out[i].Stack.Key() < out[j].Stack.Key()
	})
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderDiff renders the n largest signed stack deltas as a text table.
// n <= 0 means all.
func RenderDiff(deltas []StackDelta, n int, beforeLabel, afterLabel string) string {
	if n > 0 && len(deltas) > n {
		deltas = deltas[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile diff: %s → %s (virtual ns per stack)\n", beforeLabel, afterLabel)
	if len(deltas) == 0 {
		b.WriteString("  (no differing stacks)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %14s  %14s  %14s  %s\n", "delta", beforeLabel, afterLabel, "stack")
	for _, d := range deltas {
		fmt.Fprintf(&b, "  %+14d  %14d  %14d  %s\n", d.DeltaNS, d.BeforeNS, d.AfterNS, d.Stack.Key())
	}
	return b.String()
}
