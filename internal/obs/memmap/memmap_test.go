package memmap

import (
	"sync"
	"testing"

	"ufork/internal/tmem"
)

func TestDisabledIsNoOp(t *testing.T) {
	pl := New()
	pl.OnAlloc(1, 1, 0, OriginImage)
	pl.OnMap(1, 1)
	pl.OnCopy(2, 1)
	pl.OwnerChange(1, 2, 1)
	if pl.LiveFrames() != 0 {
		t.Fatalf("disabled plane tracked %d frames", pl.LiveFrames())
	}
	if _, ok := pl.FrameRefs(1); ok {
		t.Fatal("disabled plane tracked a frame ref")
	}
	var nilPlane *Plane
	nilPlane.OnAlloc(1, 1, 0, OriginImage) // must not panic
	if nilPlane.LiveFrames() != 0 || nilPlane.OwnerChanges() != 0 {
		t.Fatal("nil plane reported state")
	}
}

func TestLifecycleAndOrigins(t *testing.T) {
	pl := New()
	pl.Enable()
	pl.OnAlloc(10, 1, 0, OriginImage)
	pl.OnAlloc(11, 2, 1, OriginEager)
	pl.OnAlloc(12, 2, 1, OriginDemand)
	pl.Reclassify(12, OriginCoW)
	pl.OnCopy(12, 10)
	if pl.LiveFrames() != 3 {
		t.Fatalf("LiveFrames = %d, want 3", pl.LiveFrames())
	}
	snap := pl.Snapshot(16)
	if snap.LiveByOrigin["image"] != 1 || snap.LiveByOrigin["eager"] != 1 || snap.LiveByOrigin["cow"] != 1 {
		t.Fatalf("live by origin = %v", snap.LiveByOrigin)
	}
	if snap.LiveByOrigin["demand"] != 0 || snap.AllocsByOrigin["demand"] != 0 {
		t.Fatalf("reclassify left demand residue: %v / %v", snap.LiveByOrigin, snap.AllocsByOrigin)
	}
	var cow *FrameLine
	for i := range snap.Frames {
		if snap.Frames[i].PFN == 12 {
			cow = &snap.Frames[i]
		}
	}
	if cow == nil || cow.Parent != 10 || cow.Origin != "cow" {
		t.Fatalf("cow frame lineage = %+v", cow)
	}
	pl.OnFree(12)
	if pl.LiveFrames() != 2 {
		t.Fatalf("LiveFrames after free = %d, want 2", pl.LiveFrames())
	}
	if _, ok := pl.FrameRefs(12); ok {
		t.Fatal("freed frame still tracked")
	}
}

func TestRSSPSSUSSDerivation(t *testing.T) {
	pl := New()
	pl.Enable()
	pl.OnSpawn(1, 0, "parent", 0)
	pl.OnSpawn(2, 1, "child", 1)
	// Frame 100: shared by both. Frame 101: exclusive to pid 1.
	// Frame 102: exclusive to pid 2.
	for _, f := range []tmem.PFN{100, 101, 102} {
		pl.OnAlloc(f, 1, 0, OriginImage)
	}
	pl.OnMap(1, 100)
	pl.OnMap(2, 100)
	pl.OnMap(1, 101)
	pl.OnMap(2, 102)

	snap := pl.Snapshot(0)
	if len(snap.Procs) != 2 {
		t.Fatalf("procs = %d, want 2", len(snap.Procs))
	}
	p1, p2 := snap.Procs[0], snap.Procs[1]
	const pg = tmem.PageSize
	if p1.RSSBytes != 2*pg || p1.USSBytes != pg || p1.SharedPages != 1 {
		t.Fatalf("p1 = %+v", p1)
	}
	if p1.PSSBytes != pg+pg/2 {
		t.Fatalf("p1 PSS = %d, want %d", p1.PSSBytes, pg+pg/2)
	}
	if p2.PSSBytes != pg+pg/2 || p2.USSBytes != pg {
		t.Fatalf("p2 = %+v", p2)
	}
	if len(p1.Children) != 1 || p1.Children[0] != 2 {
		t.Fatalf("p1 children = %v", p1.Children)
	}
	// ΣPSS over the tree equals total mapped frames.
	if p1.PSSBytes+p2.PSSBytes != 3*pg {
		t.Fatalf("ΣPSS = %d, want %d", p1.PSSBytes+p2.PSSBytes, 3*pg)
	}

	// Sharing break: pid 2 replaces its view of 100 with a private copy.
	pl.OnAlloc(103, 2, 1, OriginCoW)
	pl.OnCopy(103, 100)
	pl.OnUnmap(2, 100)
	pl.OnMap(2, 103)
	pl.OwnerChange(103, 2, 1)
	if pl.OwnerChanges() != 1 {
		t.Fatalf("OwnerChanges = %d", pl.OwnerChanges())
	}
	snap = pl.Snapshot(0)
	p1, p2 = snap.Procs[0], snap.Procs[1]
	if p1.USSBytes != 2*pg || p2.USSBytes != 2*pg || p1.SharedPages != 0 {
		t.Fatalf("after break: p1=%+v p2=%+v", p1, p2)
	}

	pl.OnExit(2)
	if got := len(pl.Snapshot(0).Procs); got != 1 {
		t.Fatalf("procs after exit = %d", got)
	}
}

func TestConcurrentCopyObservers(t *testing.T) {
	pl := New()
	pl.Enable()
	for i := tmem.PFN(0); i < 128; i++ {
		pl.OnAlloc(i, 1, 0, OriginEager)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := tmem.PFN(0); i < 128; i++ {
				pl.OnCopy(i, tmem.PFN(w))
				pl.Snapshot(4)
			}
		}(w)
	}
	wg.Wait()
	if pl.LiveFrames() != 128 {
		t.Fatalf("LiveFrames = %d", pl.LiveFrames())
	}
}
