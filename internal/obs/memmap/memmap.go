// Package memmap implements the memory-provenance plane: a kernel-wide,
// always-snapshotable record of where every live physical frame came from
// and who maps it. Where the flight recorder answers "what happened", this
// plane answers the paper's central memory question — "who is sharing what,
// and which copy mode materialized each frame" — the data behind a Linux
// smaps/pagemap view of a fork tree.
//
// The plane mirrors three event streams the kernel feeds it:
//
//   - frame lifecycle (tmem alloc/free): each allocation is stamped with
//     the allocating μprocess, its fork generation, and the Origin — which
//     copy mode (image load, eager fork copy, CoW, CoA, CoPA, demand map,
//     shm) materialized the frame;
//   - frame lineage (tmem CopyFrame): a copied frame records its source
//     frame, so a CoW break's private copy points back at the shared
//     ancestor frame it split from;
//   - mapping structure (vm Map/Unmap/MakePrivate in the shared address
//     space): per-frame reference counts and per-μprocess mapping sets,
//     from which RSS (frames mapped), PSS (shared frames divided by
//     mapping count), and USS (exclusively mapped) derive.
//
// Everything is guarded by one mutex: most events arrive from the kernel's
// simulation goroutine, but CopyFrame fans out across host worker
// goroutines on the fork eager-copy path, and the telemetry server
// snapshots from an HTTP goroutine mid-run. A disabled plane costs its
// callers one atomic load per probe.
package memmap

import (
	"sort"
	"sync"
	"sync/atomic"

	"ufork/internal/tmem"
)

// Origin classifies which mechanism materialized a physical frame — the
// §3.8 copy-mode taxonomy extended with the non-fork allocation sites.
type Origin uint8

const (
	// OriginUnknown is an allocation outside any classified kernel phase.
	OriginUnknown Origin = iota
	// OriginImage is a program-image page mapped at load time.
	OriginImage
	// OriginEager is a frame physically copied during a fork call (eager
	// and proactive copies).
	OriginEager
	// OriginCoW is a private copy made by a write-fault resolution.
	OriginCoW
	// OriginCoA is a frame whose ownership a Copy-on-Access resolution
	// transferred by adopting the last reference (reclassified in place —
	// adoption allocates nothing).
	OriginCoA
	// OriginCoPA is a copy made by a capability-load fault resolution
	// (copy-and-relocate, §3.8).
	OriginCoPA
	// OriginDemand is a demand-mapped frame (fault-time mapping that
	// neither copied nor adopted, e.g. the monolithic baseline's heap).
	OriginDemand
	// OriginShm is a POSIX shared-memory object frame.
	OriginShm
	numOrigins
)

var originNames = [numOrigins]string{
	"unknown", "image", "eager", "cow", "coa", "copa", "demand", "shm",
}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return "origin?"
}

// frameRec is the provenance record of one live frame.
type frameRec struct {
	owner     int32 // allocating μprocess PID
	gen       uint16
	origin    Origin
	hasParent bool
	parent    tmem.PFN // source frame of the copy that produced this one
	refs      int32    // PTE references in the observed address space
}

// procRec tracks one μprocess's mapping set for RSS/PSS/USS derivation.
type procRec struct {
	pid    int32
	ppid   int32
	name   string
	gen    int
	frames map[tmem.PFN]int32 // pfn → this process's mapping count
}

// Plane is the provenance store. The zero value is usable and disabled;
// Enable arms it. All methods are safe for concurrent use and no-ops while
// disabled.
type Plane struct {
	enabled atomic.Bool

	mu     sync.Mutex
	frames map[tmem.PFN]*frameRec
	procs  map[int32]*procRec

	liveByOrigin   [numOrigins]int
	allocsByOrigin [numOrigins]uint64
	ownerChanges   uint64
}

// New creates an empty, disabled plane.
func New() *Plane {
	return &Plane{
		frames: make(map[tmem.PFN]*frameRec),
		procs:  make(map[int32]*procRec),
	}
}

// Enable arms the plane.
func (pl *Plane) Enable() { pl.enabled.Store(true) }

// On reports whether the plane is armed: the one-atomic-load probe call
// sites use to skip argument marshalling.
func (pl *Plane) On() bool { return pl != nil && pl.enabled.Load() }

// Reset discards all state (the enabled switch is untouched). The kernel
// calls it when the plane is re-armed onto a freshly booted kernel, whose
// frame numbers restart from zero.
func (pl *Plane) Reset() {
	if pl == nil {
		return
	}
	pl.mu.Lock()
	pl.frames = make(map[tmem.PFN]*frameRec)
	pl.procs = make(map[int32]*procRec)
	pl.liveByOrigin = [numOrigins]int{}
	pl.allocsByOrigin = [numOrigins]uint64{}
	pl.ownerChanges = 0
	pl.mu.Unlock()
}

// OnAlloc records a frame allocation attributed to pid at fork generation
// gen, materialized by origin.
func (pl *Plane) OnAlloc(pfn tmem.PFN, pid int32, gen int, origin Origin) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	pl.frames[pfn] = &frameRec{owner: pid, gen: uint16(gen), origin: origin}
	pl.liveByOrigin[origin]++
	pl.allocsByOrigin[origin]++
	pl.mu.Unlock()
}

// OnFree retires a frame's record.
func (pl *Plane) OnFree(pfn tmem.PFN) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[pfn]; ok {
		pl.liveByOrigin[fr.origin]--
		delete(pl.frames, pfn)
	}
	pl.mu.Unlock()
}

// OnCopy records lineage: dst was materialized by physically copying src.
// Called from parallel fork workers, hence under the mutex.
func (pl *Plane) OnCopy(dst, src tmem.PFN) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[dst]; ok {
		fr.hasParent, fr.parent = true, src
	}
	pl.mu.Unlock()
}

// OnMap records that pid gained a PTE reference to pfn.
func (pl *Plane) OnMap(pid int32, pfn tmem.PFN) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[pfn]; ok {
		fr.refs++
	}
	pr := pl.procs[pid]
	if pr == nil {
		pr = &procRec{pid: pid, frames: make(map[tmem.PFN]int32)}
		pl.procs[pid] = pr
	}
	pr.frames[pfn]++
	pl.mu.Unlock()
}

// OnUnmap records that pid dropped a PTE reference to pfn.
func (pl *Plane) OnUnmap(pid int32, pfn tmem.PFN) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[pfn]; ok && fr.refs > 0 {
		fr.refs--
	}
	if pr, ok := pl.procs[pid]; ok {
		if n := pr.frames[pfn]; n > 1 {
			pr.frames[pfn] = n - 1
		} else {
			delete(pr.frames, pfn)
		}
	}
	pl.mu.Unlock()
}

// Reclassify refines a frame's origin after the fault outcome is known:
// fault-time allocations are provisionally OriginDemand until the kernel
// classifies the resolution as CoW or CoPA.
func (pl *Plane) Reclassify(pfn tmem.PFN, origin Origin) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[pfn]; ok && fr.origin != origin {
		pl.liveByOrigin[fr.origin]--
		pl.allocsByOrigin[fr.origin]--
		fr.origin = origin
		pl.liveByOrigin[origin]++
		pl.allocsByOrigin[origin]++
	}
	pl.mu.Unlock()
}

// OwnerChange records that a CoW/CoA/CoPA break transferred exclusive
// ownership of pfn to pid at generation gen.
func (pl *Plane) OwnerChange(pfn tmem.PFN, pid int32, gen int) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	if fr, ok := pl.frames[pfn]; ok {
		fr.owner, fr.gen = pid, uint16(gen)
	}
	pl.ownerChanges++
	pl.mu.Unlock()
}

// OnSpawn records a μprocess entering the fork tree.
func (pl *Plane) OnSpawn(pid, ppid int32, name string, gen int) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	pr := pl.procs[pid]
	if pr == nil {
		pr = &procRec{pid: pid, frames: make(map[tmem.PFN]int32)}
		pl.procs[pid] = pr
	}
	pr.ppid, pr.name, pr.gen = ppid, name, gen
	pl.mu.Unlock()
}

// OnExit drops a μprocess from the tree (its mappings are gone by the time
// the kernel's terminate path reports the exit).
func (pl *Plane) OnExit(pid int32) {
	if !pl.On() {
		return
	}
	pl.mu.Lock()
	delete(pl.procs, pid)
	pl.mu.Unlock()
}

// LiveFrames returns the number of frames the plane currently tracks. The
// invariant checker cross-checks it against tmem's allocation count.
func (pl *Plane) LiveFrames() int {
	if pl == nil {
		return 0
	}
	pl.mu.Lock()
	n := len(pl.frames)
	pl.mu.Unlock()
	return n
}

// FrameRefs returns the PTE reference count the plane has observed for
// pfn, and whether the frame is tracked at all.
func (pl *Plane) FrameRefs(pfn tmem.PFN) (int, bool) {
	if pl == nil {
		return 0, false
	}
	pl.mu.Lock()
	fr, ok := pl.frames[pfn]
	refs := 0
	if ok {
		refs = int(fr.refs)
	}
	pl.mu.Unlock()
	return refs, ok
}

// OwnerChanges returns the cumulative count of sharing breaks that
// transferred frame ownership.
func (pl *Plane) OwnerChanges() uint64 {
	if pl == nil {
		return 0
	}
	pl.mu.Lock()
	n := pl.ownerChanges
	pl.mu.Unlock()
	return n
}

// ProcNode is one μprocess in a Snapshot's fork tree, with its derived
// smaps aggregates.
type ProcNode struct {
	PID         int32   `json:"pid"`
	PPID        int32   `json:"ppid"`
	Name        string  `json:"name"`
	Gen         int     `json:"gen"`
	RSSBytes    uint64  `json:"rss_bytes"`
	PSSBytes    uint64  `json:"pss_bytes"`
	USSBytes    uint64  `json:"uss_bytes"`
	SharedPages int     `json:"shared_pages"`
	Children    []int32 `json:"children,omitempty"`
}

// FrameLine is one frame's provenance in a Snapshot (bounded sample for
// the JSON view).
type FrameLine struct {
	PFN    uint64 `json:"pfn"`
	Owner  int32  `json:"owner"`
	Gen    int    `json:"gen"`
	Origin string `json:"origin"`
	Parent int64  `json:"parent_pfn"` // -1 when the frame was not copied
	Refs   int32  `json:"refs"`
}

// Snapshot is a consistent copy of the plane, safe to hold and serialize
// while the simulation continues.
type Snapshot struct {
	LiveFrames     int               `json:"live_frames"`
	LiveByOrigin   map[string]int    `json:"live_by_origin"`
	AllocsByOrigin map[string]uint64 `json:"allocs_by_origin_total"`
	OwnerChanges   uint64            `json:"owner_changes_total"`
	Procs          []ProcNode        `json:"procs"`
	Frames         []FrameLine       `json:"frames,omitempty"`
}

// pssShift is the fixed-point precision of PSS accumulation: integer
// arithmetic keeps snapshot sums deterministic regardless of map
// iteration order.
const pssShift = 20

// Snapshot derives the fork-tree view under the mutex. maxFrames bounds
// the per-frame lineage sample (0 omits it entirely; the per-proc
// aggregates always cover every frame).
func (pl *Plane) Snapshot(maxFrames int) Snapshot {
	snap := Snapshot{
		LiveByOrigin:   make(map[string]int),
		AllocsByOrigin: make(map[string]uint64),
	}
	if pl == nil {
		return snap
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	snap.LiveFrames = len(pl.frames)
	snap.OwnerChanges = pl.ownerChanges
	for o := Origin(0); o < numOrigins; o++ {
		if pl.liveByOrigin[o] != 0 {
			snap.LiveByOrigin[o.String()] = pl.liveByOrigin[o]
		}
		if pl.allocsByOrigin[o] != 0 {
			snap.AllocsByOrigin[o.String()] = pl.allocsByOrigin[o]
		}
	}
	for _, pr := range pl.procs {
		node := ProcNode{PID: pr.pid, PPID: pr.ppid, Name: pr.name, Gen: pr.gen}
		var pssFP uint64
		for pfn, count := range pr.frames {
			node.RSSBytes += uint64(count) * tmem.PageSize
			refs := count
			if fr, ok := pl.frames[pfn]; ok && fr.refs > refs {
				refs = fr.refs
			}
			pssFP += uint64(count) * ((tmem.PageSize << pssShift) / uint64(refs))
			if refs == count {
				node.USSBytes += uint64(count) * tmem.PageSize
			} else {
				node.SharedPages += int(count)
			}
		}
		node.PSSBytes = pssFP >> pssShift
		snap.Procs = append(snap.Procs, node)
	}
	sort.Slice(snap.Procs, func(i, j int) bool { return snap.Procs[i].PID < snap.Procs[j].PID })
	for i := range snap.Procs {
		for j := range snap.Procs {
			if snap.Procs[j].PPID == snap.Procs[i].PID && snap.Procs[j].PID != snap.Procs[i].PID {
				snap.Procs[i].Children = append(snap.Procs[i].Children, snap.Procs[j].PID)
			}
		}
	}
	if maxFrames > 0 {
		pfns := make([]tmem.PFN, 0, len(pl.frames))
		for pfn := range pl.frames {
			pfns = append(pfns, pfn)
		}
		sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
		if len(pfns) > maxFrames {
			pfns = pfns[:maxFrames]
		}
		for _, pfn := range pfns {
			fr := pl.frames[pfn]
			line := FrameLine{
				PFN: uint64(pfn), Owner: fr.owner, Gen: int(fr.gen),
				Origin: fr.origin.String(), Parent: -1, Refs: fr.refs,
			}
			if fr.hasParent {
				line.Parent = int64(fr.parent)
			}
			snap.Frames = append(snap.Frames, line)
		}
	}
	return snap
}
