package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// withObs enables the layer for one test and restores the default off
// state afterwards.
func withObs(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestSpanNesting(t *testing.T) {
	withObs(t)
	tr := NewTracer(16)

	outer := tr.Begin(1, 1, "fork", "syscall", 100)
	inner := tr.Begin(1, 1, "relocation-scan", "fork", 200)
	if tr.OpenSpans() != 2 {
		t.Fatalf("OpenSpans = %d, want 2", tr.OpenSpans())
	}
	inner.End(300)
	outer.End(400)

	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d, want 0", tr.OpenSpans())
	}
	if tr.Mispaired() != 0 {
		t.Errorf("Mispaired = %d, want 0", tr.Mispaired())
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Inner ends first so it is recorded first; nesting in the viewer comes
	// from timestamp containment: [200,300) ⊂ [100,400).
	if evs[0].Name != "relocation-scan" || evs[0].TS != 200 || evs[0].Dur != 100 {
		t.Errorf("inner = %+v", evs[0])
	}
	if evs[1].Name != "fork" || evs[1].TS != 100 || evs[1].Dur != 300 {
		t.Errorf("outer = %+v", evs[1])
	}
	if !(evs[1].TS <= evs[0].TS && evs[0].TS+evs[0].Dur <= evs[1].TS+evs[1].Dur) {
		t.Errorf("inner [%d,%d) not contained in outer [%d,%d)",
			evs[0].TS, evs[0].TS+evs[0].Dur, evs[1].TS, evs[1].TS+evs[1].Dur)
	}
}

func TestSpanMispairing(t *testing.T) {
	withObs(t)
	tr := NewTracer(16)

	a := tr.Begin(1, 1, "a", "t", 0)
	b := tr.Begin(1, 1, "b", "t", 10)
	a.End(20) // out of order: b is still open
	if tr.Mispaired() != 1 {
		t.Errorf("Mispaired = %d, want 1", tr.Mispaired())
	}
	// Ending a unwound b from the pairing stack too.
	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d, want 0 after unwind", tr.OpenSpans())
	}
	b.End(30) // its stack entry is gone: a second violation
	if tr.Mispaired() != 2 {
		t.Errorf("Mispaired = %d, want 2", tr.Mispaired())
	}
	// Both events are still recorded — mispairing is diagnosed, not dropped.
	if got := len(tr.Events()); got != 2 {
		t.Errorf("events = %d, want 2", got)
	}
}

func TestSpanThreadsIndependent(t *testing.T) {
	withObs(t)
	tr := NewTracer(16)

	// Interleaved spans on different (pid,tid) tracks are not mispaired.
	a := tr.Begin(1, 1, "a", "t", 0)
	b := tr.Begin(2, 7, "b", "t", 5)
	a.End(10)
	b.End(15)
	if tr.Mispaired() != 0 {
		t.Errorf("Mispaired = %d, want 0 across threads", tr.Mispaired())
	}
}

func TestSpanDisabledInert(t *testing.T) {
	Disable()
	tr := NewTracer(16)
	sp := tr.Begin(1, 1, "a", "t", 0)
	if sp.Active() {
		t.Fatal("Begin while disabled returned an active span")
	}
	sp.End(10)
	tr.Complete(1, 1, "c", "t", 0, 5)
	tr.Instant(1, 1, "i", "t", 0)
	if got := len(tr.Events()); got != 0 {
		t.Errorf("disabled tracer recorded %d events", got)
	}
	// The zero-value span is safe too (what call sites hold before Begin).
	var zero Span
	zero.End(99)
	// A nil tracer must also be inert: kernels without obs pass nil around.
	var nilTr *Tracer
	nilTr.Begin(1, 1, "a", "t", 0).End(1)
	nilTr.Complete(1, 1, "c", "t", 0, 1)
}

func TestRingEviction(t *testing.T) {
	withObs(t)
	tr := NewTracer(2)
	tr.Complete(1, 1, "e0", "t", 0, 1)
	tr.Complete(1, 1, "e1", "t", 10, 1)
	tr.Complete(1, 1, "e2", "t", 20, 1)
	if tr.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Name != "e1" || evs[1].Name != "e2" {
		t.Errorf("ring contents = %+v, want [e1 e2]", evs)
	}
}

func TestTracerReset(t *testing.T) {
	withObs(t)
	tr := NewTracer(4)
	tr.Begin(1, 1, "open", "t", 0) // deliberately left open
	tr.Complete(1, 1, "done", "t", 0, 1)
	tr.Reset()
	if len(tr.Events()) != 0 || tr.OpenSpans() != 0 || tr.Dropped() != 0 || tr.Mispaired() != 0 {
		t.Errorf("Reset left state: events=%d open=%d dropped=%d mispaired=%d",
			len(tr.Events()), tr.OpenSpans(), tr.Dropped(), tr.Mispaired())
	}
}

// buildGoldenTrace assembles a small deterministic trace exercising every
// serialized feature: metadata, nested spans, args, instant events,
// multiple tracks, sub-microsecond timestamps.
func buildGoldenTrace() *Tracer {
	tr := NewTracer(64)
	tr.SetProcName(1, "redis (pid 1)")
	tr.SetProcName(2, "redis (pid 2)")
	tr.SetThreadName(1, 1, "task-1")
	tr.SetThreadName(2, 2, "task-2")

	fork := tr.Begin(1, 1, "fork:uFork/CoPA", "syscall", 1000)
	tr.Complete(1, 1, "reserve", "fork", 1000, 0, A("region-base", 0x40000000), A("region-size", 0x200000))
	tr.Complete(1, 1, "pte-copy", "fork", 1000, 220, A("ptes", 180))
	tr.Complete(1, 1, "eager-copy", "fork", 1220, 3300, A("pages", 12), A("proactive", 12))
	tr.Complete(1, 1, "relocation-scan", "fork", 2420, 2100, A("caps", 96))
	fork.End(51814, A("child-pid", 2))
	tr.Instant(1, 1, "ctx-switch", "sched", 52000)
	fault := tr.Begin(2, 2, "fault:cap-load", "vm", 60000)
	tr.Complete(2, 2, "copy+relocate", "fault", 60100, 777, A("pages-copied", 1), A("caps", 3))
	fault.End(61500, A("va", 0x40011008))
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	withObs(t)
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/obs` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestWriteChromeTraceWellFormed(t *testing.T) {
	withObs(t)
	var buf bytes.Buffer
	if err := buildGoldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Dur  *float64        `json:"dur"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var m, x, i int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			m++
		case "X":
			x++
			if ev.Dur == nil {
				t.Errorf("X event %q missing dur", ev.Name)
			}
		case "i":
			i++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if m != 4 || x != 7 || i != 1 {
		t.Errorf("phase counts M/X/i = %d/%d/%d, want 4/7/1", m, x, i)
	}
	// 1000 virtual ns must serialize as 1.000 trace µs.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "fork:uFork/CoPA" && ev.TS != 1.0 {
			t.Errorf("fork span ts = %v µs, want 1.000", ev.TS)
		}
	}
}
