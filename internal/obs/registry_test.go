package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("forks")
	c1.Inc()
	if c2 := r.Counter("forks"); c2 != c1 {
		t.Error("Counter returned a different instance for the same name")
	}
	if r.Counter("forks").Value() != 1 {
		t.Error("count lost across lookups")
	}
	g := r.Gauge("live")
	g.Add(3)
	g.Add(-1)
	if r.Gauge("live").Value() != 2 {
		t.Error("gauge lost across lookups")
	}
	h1 := r.Histogram("lat")
	if h2 := r.HistogramWith("lat", []uint64{1, 2}); h2 != h1 {
		t.Error("HistogramWith created a second histogram under an existing name")
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("syscalls").Add(40)
	r.Gauge("live").Set(-7)
	r.Histogram("fork.latency").Observe(200)

	s := r.Snapshot()
	if s.Counters["syscalls"] != 40 {
		t.Errorf("snapshot counter = %d, want 40", s.Counters["syscalls"])
	}
	if s.Gauges["live"] != -7 {
		t.Errorf("snapshot gauge = %d, want -7", s.Gauges["live"])
	}
	if hs := s.Histograms["fork.latency"]; hs.Count != 1 || hs.Min != 200 {
		t.Errorf("snapshot histogram = %+v", hs)
	}

	// Snapshot is a copy: later increments must not appear in it.
	r.Counter("syscalls").Inc()
	if s.Counters["syscalls"] != 40 {
		t.Error("snapshot aliases live counter")
	}

	held := r.Counter("syscalls")
	r.Reset()
	if held.Value() != 0 {
		t.Error("Reset did not zero a held counter reference")
	}
	s2 := r.Snapshot()
	if s2.Counters["syscalls"] != 0 || s2.Gauges["live"] != 0 || s2.Histograms["fork.latency"].Count != 0 {
		t.Errorf("post-Reset snapshot = %+v", s2)
	}
}

func TestSnapshotWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("lat").Observe(5)
	var one, two bytes.Buffer
	if err := r.Snapshot().WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("WriteJSON not deterministic across calls")
	}
	var round Snapshot
	if err := json.Unmarshal(one.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["a"] != 1 || round.Counters["b"] != 2 {
		t.Errorf("round-tripped counters = %v", round.Counters)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("live").Set(4)
	r.Histogram("lat").Observe(10)
	text := r.Snapshot().Text()
	if !strings.Contains(text, "a.first") || !strings.Contains(text, "z.last") ||
		!strings.Contains(text, "live") || !strings.Contains(text, "p99") {
		t.Errorf("Text() missing entries:\n%s", text)
	}
	if strings.Index(text, "a.first") > strings.Index(text, "z.last") {
		t.Error("Text() counters not sorted")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; its
// real assertions are the -race run in CI plus the exact final counts.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(uint64(i%7) + 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestTracerConcurrent exercises the ring buffer and pairing maps from
// several goroutines for the -race CI run.
func TestTracerConcurrent(t *testing.T) {
	withObs(t)
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Begin(w, w, "op", "t", uint64(i))
				tr.Instant(w, w, "tick", "t", uint64(i))
				sp.End(uint64(i + 1))
			}
		}()
	}
	wg.Wait()
	if tr.Mispaired() != 0 {
		t.Errorf("Mispaired = %d, want 0 (per-thread stacks are independent)", tr.Mispaired())
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d, want 0", tr.OpenSpans())
	}
}
