package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SegJSON, SpanJSON, EdgeJSON, TraceJSON, GroupJSON, and Snapshot are the
// wire shapes of the /traces telemetry endpoint.
type SpanJSON struct {
	PID     int32     `json:"pid"`
	Proc    string    `json:"proc"`
	Root    bool      `json:"root"`
	StartNS uint64    `json:"start_ns"`
	DurNS   uint64    `json:"dur_ns"`
	Segs    []Segment `json:"segs"`
}

// EdgeJSON is one causal handoff on the wire.
type EdgeJSON struct {
	Kind    string `json:"kind"`
	FromPID int32  `json:"from_pid"`
	ToPID   int32  `json:"to_pid"`
	AtNS    uint64 `json:"at_ns"`
}

// TraceJSON is one finished exemplar on the wire.
type TraceJSON struct {
	ID        uint64     `json:"id"`
	Group     string     `json:"group"`
	Op        string     `json:"op"`
	StartNS   uint64     `json:"start_ns"`
	DurNS     uint64     `json:"dur_ns"`
	Cause     string     `json:"cause"`
	CauseFrac float64    `json:"cause_frac"`
	Spans     []SpanJSON `json:"spans"`
	Edges     []EdgeJSON `json:"edges"`
}

// GroupJSON is one exemplar group (a YCSB cell or stress window).
type GroupJSON struct {
	Group  string      `json:"group"`
	Traces []TraceJSON `json:"traces"`
}

// Snapshot is the plane's full observable state: lifetime counters plus
// the per-group exemplar reservoirs.
type Snapshot struct {
	Started   uint64            `json:"started"`
	Finished  uint64            `json:"finished"`
	Edges     map[string]uint64 `json:"edges"`
	Exemplars int               `json:"exemplars"`
	Groups    []GroupJSON       `json:"groups"`
}

func traceJSON(tr *Trace) TraceJSON {
	tj := TraceJSON{
		ID: uint64(tr.ID), Group: tr.Group, Op: tr.Op,
		StartNS: uint64(tr.Start), DurNS: uint64(tr.Dur()),
		Cause: tr.Cause, CauseFrac: tr.CauseFrac,
	}
	for _, s := range tr.Spans {
		tj.Spans = append(tj.Spans, SpanJSON{
			PID: s.PID, Proc: s.Proc, Root: s.root,
			StartNS: uint64(s.Start), DurNS: uint64(s.End - s.Start),
			Segs: s.Segs,
		})
	}
	for _, e := range tr.Edges {
		tj.Edges = append(tj.Edges, EdgeJSON{
			Kind: e.Kind.String(), FromPID: e.FromPID, ToPID: e.ToPID, AtNS: uint64(e.At),
		})
	}
	return tj
}

// Snapshot captures counters and up to k exemplars per group (k <= 0
// means all retained). Finished traces are immutable, so the snapshot
// aliases them safely.
func (pl *Plane) Snapshot(k int) Snapshot {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	snap := Snapshot{
		Started: pl.started, Finished: pl.finished,
		Edges: make(map[string]uint64, NumEdgeKinds),
	}
	for i := EdgeKind(0); i < NumEdgeKinds; i++ {
		snap.Edges[i.String()] = pl.edges[i]
	}
	names := make([]string, 0, len(pl.groups))
	for name := range pl.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		traces := pl.groups[name]
		if k > 0 && len(traces) > k {
			traces = traces[:k]
		}
		gj := GroupJSON{Group: name}
		for _, tr := range traces {
			gj.Traces = append(gj.Traces, traceJSON(tr))
			snap.Exemplars++
		}
		snap.Groups = append(snap.Groups, gj)
	}
	return snap
}

// top returns the k slowest finished exemplars across every group,
// duration-descending. Caller holds pl.mu.
func (pl *Plane) top(k int) []*Trace {
	var all []*Trace
	for _, g := range pl.groups {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dur() != all[j].Dur() {
			return all[i].Dur() > all[j].Dur()
		}
		return all[i].ID < all[j].ID
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

func dur(ns uint64) string { return time.Duration(ns).String() }

// RenderTop renders the k slowest exemplars as text trace trees — the
// block an SLO-breach report or chaos failure dump appends so the reader
// sees where the tail went instead of just that it existed. Nil-safe;
// empty when nothing finished.
func (pl *Plane) RenderTop(k int) string {
	if pl == nil {
		return ""
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	top := pl.top(k)
	if len(top) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "causal exemplars — top %d slow-op traces\n", len(top))
	for _, tr := range top {
		fmt.Fprintf(&b, "trace #%d group=%s op=%s dur=%s cause=%s %d%%\n",
			tr.ID, tr.Group, tr.Op, dur(uint64(tr.Dur())), tr.Cause, int(tr.CauseFrac*100+0.5))
		// The root first, then joined spans in edge order, each named by
		// the edge kind that pulled it into the tree.
		for i, s := range tr.Spans {
			prefix := "  "
			if i > 0 {
				kind := "join"
				for _, e := range tr.Edges {
					if e.ToPID == s.PID {
						kind = e.Kind.String()
						break
					}
				}
				prefix = fmt.Sprintf("  └─%s→ ", kind)
			}
			fmt.Fprintf(&b, "%s%s[%d] %s: %s\n", prefix, s.Proc, s.PID,
				dur(uint64(s.End-s.Start)), renderSegs(s.Segs))
		}
	}
	return b.String()
}

// renderSegs renders a span's critical path as "label dur → label dur".
func renderSegs(segs []Segment) string {
	if len(segs) == 0 {
		return "(no segments)"
	}
	parts := make([]string, len(segs))
	for i, seg := range segs {
		parts[i] = fmt.Sprintf("%s %s", seg.Label, dur(seg.DurNS))
	}
	return strings.Join(parts, " → ")
}

// chromeEvent is one Chrome trace_event record; the ph field selects the
// shape ("X" complete, "s"/"f" flow, "M" metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  int32          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts virtual ns to the float microseconds Chrome expects.
func usec(ns uint64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the k slowest exemplars (k <= 0 for all) as
// Chrome trace_event JSON: each trace is its own process group, each
// μprocess a row inside it, segments as complete events, and flow arrows
// binding fork/pipe/signal edges across rows. Open with chrome://tracing
// or Perfetto.
func (pl *Plane) WriteChromeTrace(w io.Writer, k int) error {
	pl.mu.Lock()
	top := pl.top(k)
	pl.mu.Unlock()
	var events []chromeEvent
	for _, tr := range top {
		pid := uint64(tr.ID)
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("trace #%d %s op=%s cause=%s", tr.ID, tr.Group, tr.Op, tr.Cause)},
		})
		for _, s := range tr.Spans {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: s.PID,
				Args: map[string]any{"name": fmt.Sprintf("%s[%d]", s.Proc, s.PID)},
			})
			// Segments tile the span from its start: cumulative offsets are
			// virtual-time exact.
			for _, seg := range s.Segs {
				events = append(events, chromeEvent{
					Name: seg.Label, Ph: "X",
					TS: usec(uint64(s.Start) + seg.StartNS), Dur: usec(seg.DurNS),
					PID: pid, TID: s.PID,
				})
			}
		}
		for i, e := range tr.Edges {
			id := fmt.Sprintf("%d.%d", tr.ID, i)
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Ph: "s", TS: usec(uint64(e.At)), PID: pid, TID: e.FromPID, ID: id,
			})
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Ph: "f", BP: "e", TS: usec(uint64(e.At)), PID: pid, TID: e.ToPID, ID: id,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	})
}
