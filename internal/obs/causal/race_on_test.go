//go:build race

package causal

// raceEnabled reports whether the race detector is compiled in; timing
// bounds are meaningless under its instrumentation.
const raceEnabled = true
