package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ufork/internal/sim"
)

// del builds a delay snapshot in taxonomy order.
func del(run, runnable, blocked, latency, lockWait sim.Time) [sim.NumDelayKinds]sim.Time {
	return [sim.NumDelayKinds]sim.Time{run, runnable, blocked, latency, lockWait}
}

// segSum totals a span's segment durations.
func segSum(segs []Segment) uint64 {
	var total uint64
	for _, seg := range segs {
		total += seg.DurNS
	}
	return total
}

// TestCheckpointTiling pins the exact-attribution invariant: per-bucket
// deltas tile [Start, End] with cumulative offsets and no residue, and
// adjacent same-label segments merge.
func TestCheckpointTiling(t *testing.T) {
	pl := New(0)
	pl.Enable()
	s := pl.Begin("g", "op", 1, "proc", 100, del(0, 0, 0, 0, 0))
	if s == nil || !s.Root() || !s.Active() {
		t.Fatal("Begin on an enabled plane must return a live root span")
	}

	// +30 run, +20 runnable over [100,150].
	s.Checkpoint(150, del(30, 20, 0, 0, 0))
	// +30 run, +20 runnable, +10 lock-wait over [150,210].
	s.Checkpoint(210, del(60, 40, 0, 0, 10))
	// Final flush with nothing new is a no-op.
	s.Checkpoint(210, del(60, 40, 0, 0, 10))
	pl.Close(s, 210)

	want := []Segment{
		{Label: "run", StartNS: 0, DurNS: 30},
		{Label: "runnable", StartNS: 30, DurNS: 20},
		{Label: "run", StartNS: 50, DurNS: 30},
		{Label: "runnable", StartNS: 80, DurNS: 20},
		{Label: "lock-wait", StartNS: 100, DurNS: 10},
	}
	if len(s.Segs) != len(want) {
		t.Fatalf("got %d segments %v, want %d", len(s.Segs), s.Segs, len(want))
	}
	for i, seg := range s.Segs {
		if seg != want[i] {
			t.Errorf("seg[%d] = %+v, want %+v", i, seg, want[i])
		}
	}
	if got, elapsed := segSum(s.Segs), uint64(210-100); got != elapsed {
		t.Fatalf("segments sum to %d, want exact op latency %d", got, elapsed)
	}
	if s.Active() {
		t.Fatal("closed root span still reports Active")
	}
}

// TestCheckpointMerge verifies consecutive same-label flushes collapse
// into one segment.
func TestCheckpointMerge(t *testing.T) {
	pl := New(0)
	pl.Enable()
	s := pl.Begin("g", "op", 1, "p", 0, del(0, 0, 0, 0, 0))
	s.Checkpoint(10, del(10, 0, 0, 0, 0))
	s.Checkpoint(25, del(25, 0, 0, 0, 0))
	if len(s.Segs) != 1 || s.Segs[0] != (Segment{Label: "run", StartNS: 0, DurNS: 25}) {
		t.Fatalf("same-label segments did not merge: %v", s.Segs)
	}
}

// TestCheckpointAsSiteLabel verifies a site label overrides exactly one
// bucket's delta while the others keep their defaults.
func TestCheckpointAsSiteLabel(t *testing.T) {
	pl := New(0)
	pl.Enable()
	s := pl.Begin("g", "op", 1, "p", 0, del(0, 0, 0, 0, 0))
	s.CheckpointAs(sim.DelayLockWait, "lock:tmem", 50, del(10, 0, 0, 0, 40))
	want := []Segment{
		{Label: "run", StartNS: 0, DurNS: 10},
		{Label: "lock:tmem", StartNS: 10, DurNS: 40},
	}
	for i, seg := range s.Segs {
		if seg != want[i] {
			t.Errorf("seg[%d] = %+v, want %+v", i, seg, want[i])
		}
	}
	// A second contended site must not merge into the first.
	s.CheckpointAs(sim.DelayLockWait, "lock:bkl", 70, del(10, 0, 0, 0, 60))
	if last := s.Segs[len(s.Segs)-1]; last.Label != "lock:bkl" || last.DurNS != 20 {
		t.Fatalf("distinct lock sites merged: %v", s.Segs)
	}
}

// TestRelabelWindow pins the fault-window protocol: Mark fences merging,
// RelabelWindow rewrites only default-labeled segments after the mark,
// and nested site labels inside the window survive.
func TestRelabelWindow(t *testing.T) {
	pl := New(0)
	pl.Enable()
	s := pl.Begin("g", "op", 1, "p", 0, del(0, 0, 0, 0, 0))

	// Pre-fault run time.
	s.Checkpoint(10, del(10, 0, 0, 0, 0))
	mark := s.Mark()

	// Inside the window: run (handler work) then a contended tmem lock.
	s.CheckpointAs(sim.DelayLockWait, "lock:tmem", 22, del(17, 0, 0, 0, 5))
	// More handler run time after the lock.
	s.Checkpoint(30, del(25, 0, 0, 0, 5))
	s.RelabelWindow(mark, "fault:cow")

	want := []Segment{
		{Label: "run", StartNS: 0, DurNS: 10},
		{Label: "fault:cow", StartNS: 10, DurNS: 7},
		{Label: "lock:tmem", StartNS: 17, DurNS: 5},
		{Label: "fault:cow", StartNS: 22, DurNS: 8},
	}
	if len(s.Segs) != len(want) {
		t.Fatalf("got %d segments %v, want %d", len(s.Segs), s.Segs, len(want))
	}
	for i, seg := range s.Segs {
		if seg != want[i] {
			t.Errorf("seg[%d] = %+v, want %+v", i, seg, want[i])
		}
	}
	if segSum(s.Segs) != 30 {
		t.Fatalf("relabel broke the tiling: %v", s.Segs)
	}

	// A second fault window with no nested sites compacts to one segment,
	// and the pre-window run segment is never absorbed.
	mark2 := s.Mark()
	s.Checkpoint(34, del(29, 0, 0, 0, 5))
	s.Checkpoint(40, del(29, 6, 0, 0, 5))
	s.RelabelWindow(mark2, "fault:coa")
	last := s.Segs[len(s.Segs)-1]
	if last.Label != "fault:coa" || last.DurNS != 10 {
		t.Fatalf("window did not compact to one fault segment: %v", s.Segs)
	}
	if s.Segs[len(s.Segs)-2].Label != "fault:cow" {
		t.Fatalf("relabel bled into the previous window: %v", s.Segs)
	}
}

// TestReservoirKeepsSlowest verifies the per-group reservoir retains
// exactly the K slowest finished traces, duration-descending.
func TestReservoirKeepsSlowest(t *testing.T) {
	pl := New(2)
	pl.Enable()
	for _, d := range []sim.Time{10, 30, 20, 5} {
		s := pl.Begin("cell", "op", 1, "p", 0, del(0, 0, 0, 0, 0))
		s.Checkpoint(d, del(d, 0, 0, 0, 0))
		pl.Close(s, d)
	}
	snap := pl.Snapshot(0)
	if snap.Started != 4 || snap.Finished != 4 {
		t.Fatalf("counters started=%d finished=%d, want 4/4", snap.Started, snap.Finished)
	}
	if snap.Exemplars != 2 || len(snap.Groups) != 1 {
		t.Fatalf("reservoir kept %d exemplars in %d groups, want 2 in 1", snap.Exemplars, len(snap.Groups))
	}
	got := snap.Groups[0].Traces
	if got[0].DurNS != 30 || got[1].DurNS != 20 {
		t.Fatalf("reservoir kept durations %d,%d, want 30,20", got[0].DurNS, got[1].DurNS)
	}
}

// TestClassifier pins the root-cause verdict: dominant merged label and
// its share of op latency.
func TestClassifier(t *testing.T) {
	pl := New(0)
	pl.Enable()
	s := pl.Begin("g", "op", 1, "p", 0, del(0, 0, 0, 0, 0))
	s.CheckpointAs(sim.DelayLockWait, "lock:tmem", 70, del(30, 0, 0, 0, 40))
	s.CheckpointAs(sim.DelayLockWait, "lock:tmem", 100, del(40, 0, 0, 0, 60))
	pl.Close(s, 100)
	tr := s.tr
	if tr.Cause != "lock:tmem" {
		t.Fatalf("cause = %q, want lock:tmem", tr.Cause)
	}
	if tr.CauseFrac != 0.6 {
		t.Fatalf("cause frac = %v, want 0.6", tr.CauseFrac)
	}
}

// TestJoinAdoptLifecycle covers the propagation API: fork joins, pipe
// adoption, freezing of open members at root close, and the staleness
// rules that keep dead contexts from resurrecting.
func TestJoinAdoptLifecycle(t *testing.T) {
	pl := New(0)
	pl.Enable()
	root := pl.Begin("g", "op", 1, "parent", 0, del(0, 0, 0, 0, 0))
	child := pl.Join(root, EdgeFork, 2, "child", 10, del(0, 0, 0, 0, 0))
	if child == nil || child.Root() {
		t.Fatal("Join must return a live non-root span")
	}
	child.Checkpoint(25, del(15, 0, 0, 0, 0))

	reader := pl.Adopt(root.Trace(), EdgePipe, 1, 3, "reader", 12, del(0, 0, 0, 0, 0))
	if reader == nil {
		t.Fatal("Adopt of a live trace returned nil")
	}

	root.Checkpoint(40, del(40, 0, 0, 0, 0))
	pl.Close(root, 40)

	// Open members freeze at their last checkpoint; everything is dead now.
	if child.Active() || !child.closed || child.End != 25 {
		t.Fatalf("open member not frozen at lastNow: closed=%v end=%d", child.closed, child.End)
	}
	if root.Trace() != 0 || child.Trace() != 0 {
		t.Fatal("dead spans must report trace 0 (stale stamps adopt nothing)")
	}
	if pl.Adopt(1, EdgePipe, 1, 4, "late", 50, del(0, 0, 0, 0, 0)) != nil {
		t.Fatal("Adopt of a finished trace must return nil")
	}
	if pl.Join(root, EdgeFork, 5, "late", 50, del(0, 0, 0, 0, 0)) != nil {
		t.Fatal("Join on a dead parent must return nil")
	}

	snap := pl.Snapshot(0)
	tr := snap.Groups[0].Traces[0]
	if len(tr.Spans) != 3 || len(tr.Edges) != 2 {
		t.Fatalf("trace has %d spans / %d edges, want 3/2", len(tr.Spans), len(tr.Edges))
	}
	if tr.Edges[0].Kind != "fork" || tr.Edges[1].Kind != "pipe" {
		t.Fatalf("edge kinds = %v", tr.Edges)
	}
	if snap.Edges["fork"] != 1 || snap.Edges["pipe"] != 1 || snap.Edges["signal"] != 0 {
		t.Fatalf("edge counters = %v", snap.Edges)
	}
}

// TestRenderTop checks the text trace tree an SLO-breach report embeds.
func TestRenderTop(t *testing.T) {
	pl := New(0)
	if pl.RenderTop(3) != "" {
		t.Fatal("empty plane must render empty")
	}
	pl.Enable()
	root := pl.Begin("ycsb/a", "op", 1, "kv", 0, del(0, 0, 0, 0, 0))
	child := pl.Join(root, EdgeFork, 2, "bgsave", 5, del(0, 0, 0, 0, 0))
	child.Checkpoint(9, del(4, 0, 0, 0, 0))
	pl.Close(child, 9)
	root.CheckpointAs(sim.DelayLockWait, "lock:tmem", 20, del(8, 0, 0, 0, 12))
	pl.Close(root, 20)

	out := pl.RenderTop(3)
	for _, want := range []string{
		"top 1 slow-op traces",
		"trace #1 group=ycsb/a op=op",
		"cause=lock:tmem 60%",
		"kv[1]",
		"└─fork→ bgsave[2]",
		"lock:tmem 12ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTop missing %q in:\n%s", want, out)
		}
	}
}

// TestChromeExport verifies the export is valid JSON with per-segment
// complete events and a flow-arrow pair per causal edge.
func TestChromeExport(t *testing.T) {
	pl := New(0)
	pl.Enable()
	root := pl.Begin("g", "op", 1, "kv", 100, del(0, 0, 0, 0, 0))
	child := pl.Join(root, EdgeFork, 2, "bgsave", 110, del(0, 0, 0, 0, 0))
	child.Checkpoint(120, del(10, 0, 0, 0, 0))
	root.Checkpoint(150, del(50, 0, 0, 0, 0))
	pl.Close(root, 150)

	var buf bytes.Buffer
	if err := pl.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int32   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	if counts["X"] == 0 || counts["M"] < 3 {
		t.Fatalf("missing segment or metadata events: %v", counts)
	}
	if counts["s"] != 1 || counts["f"] != 1 {
		t.Fatalf("fork edge must emit one s/f flow pair, got %v", counts)
	}
}

// TestDisabledAndNilSafety covers the zero-cost-off contract's semantics:
// every entry point tolerates nil planes and nil spans.
func TestDisabledAndNilSafety(t *testing.T) {
	var nilPlane *Plane
	if nilPlane.On() || nilPlane.Started() != 0 || nilPlane.RenderTop(5) != "" {
		t.Fatal("nil plane must read as off and empty")
	}
	pl := New(0)
	if s := pl.Begin("g", "op", 1, "p", 0, del(0, 0, 0, 0, 0)); s != nil {
		t.Fatal("Begin on a disabled plane must return nil")
	}
	var s *Span
	s.Checkpoint(10, del(0, 0, 0, 0, 0)) // must not panic
	s.CheckpointAs(sim.DelayRun, "x", 10, del(0, 0, 0, 0, 0))
	s.RelabelWindow(s.Mark(), "x")
	pl.Close(s, 10)
	if s.Active() || s.Trace() != 0 || s.Root() {
		t.Fatal("nil span must be inert")
	}
}

// TestDisabledPathUnder5ns pins the acceptance bound: with tracing off,
// the origin-site probe (nil-safe On) and the hook-site probe (nil span
// checkpoint) each cost ≤5 ns and zero allocations. Mirrors flight's
// disabled-emit gate.
func TestDisabledPathUnder5ns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation breaks the timing bound")
	}
	pl := New(0) // constructed but never enabled
	var sink bool
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = pl.On()
		}
	})
	if ns := res.NsPerOp(); ns > 5 {
		t.Fatalf("disabled On() costs %d ns/probe, want ≤5", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled On() allocates %d objects/probe, want 0", allocs)
	}
	_ = sink

	var nilPlane *Plane
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = nilPlane.On()
		}
	})
	if ns := res.NsPerOp(); ns > 5 {
		t.Fatalf("nil-plane On() costs %d ns/probe, want ≤5", ns)
	}

	// The kernel hook shape: a nil span's checkpoint guard.
	var s *Span
	d := del(0, 0, 0, 0, 0)
	res = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Checkpoint(sim.Time(i), d)
		}
	})
	if ns := res.NsPerOp(); ns > 5 {
		t.Fatalf("nil-span Checkpoint costs %d ns/probe, want ≤5", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("nil-span Checkpoint allocates %d objects/probe, want 0", allocs)
	}
}

// BenchmarkDisabledOn is the origin-site probe with the plane off.
func BenchmarkDisabledOn(b *testing.B) {
	pl := New(0)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = pl.On()
	}
	_ = sink
}

// BenchmarkNilSpanCheckpoint is the kernel hook-site probe when untraced.
func BenchmarkNilSpanCheckpoint(b *testing.B) {
	var s *Span
	d := del(0, 0, 0, 0, 0)
	for i := 0; i < b.N; i++ {
		s.Checkpoint(sim.Time(i), d)
	}
}
