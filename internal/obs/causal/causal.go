// Package causal implements the request-tracing plane: a trace ID is
// minted at each request/op origin (a YCSB op issue, an httpd driver
// request, a kvstore BGSAVE cycle), carried through the kernel across
// fork parent→child edges, pipe writer→reader handoffs, and signal
// delivery, and accumulates per-trace critical-path segments reusing the
// delay taxonomy the sim engine already keeps (run, runnable, lock-wait
// per site, fault-service per copy-mode, pipe/net/child block).
//
// Where the flight recorder answers "what happened lately" and lockstat
// answers "which lock is hot in aggregate", this plane answers "why was
// THIS op slow": every finished trace knows exactly where its virtual
// time went, segment durations tile the op's latency with no gap or
// overlap (the same exact-partition identity the delay taxonomy proves
// against task lifetime), and a bounded reservoir keeps the K slowest
// complete traces per group so an SLO breach ships its own exemplars.
//
// Design constraints, in order:
//
//  1. Zero cost when off. A kernel without an armed plane pays one nil
//     check per hook; Plane.On and Span.Active are nil-safe, and the
//     disabled path is pinned ≤5 ns by the benchmark beside flight's.
//  2. No virtual-time perturbation. Arming the plane never advances a
//     clock, so goldens stay byte-identical with tracing always on.
//  3. Exact attribution. Segments are per-bucket deltas of the owning
//     task's delay counters between checkpoints; their sum over a root
//     span equals the op's recorded latency exactly, by construction.
//  4. Bounded memory. Live traces die with their root span; finished
//     traces survive only through the per-group K-slowest reservoir.
package causal

import (
	"sync"
	"sync/atomic"

	"ufork/internal/sim"
)

// TraceID identifies one trace. Zero is "no trace" (the pipe-stamp and
// signal-carriage null value); the plane mints IDs from 1.
type TraceID uint64

// EdgeKind classifies one causal handoff between μprocesses.
type EdgeKind uint8

// Causal edge kinds: a fork parent→child, a pipe writer→reader handoff,
// and a signal sender→receiver delivery.
const (
	EdgeFork EdgeKind = iota
	EdgePipe
	EdgeSignal
	NumEdgeKinds
)

var edgeNames = [NumEdgeKinds]string{"fork", "pipe", "signal"}

func (e EdgeKind) String() string {
	if int(e) < len(edgeNames) {
		return edgeNames[e]
	}
	return "?"
}

// bucketNames are the default segment labels, one per delay-taxonomy
// bucket. Kernel hooks refine them in place: lock-wait deltas become
// "lock:<site>", blocked deltas "block:<cause>", and the fault window's
// unattributed deltas "fault:<copy-mode>".
var bucketNames = [sim.NumDelayKinds]string{
	"run", "runnable", "blocked", "latency", "lock-wait",
}

// defaultLabel reports whether label is an unrefined bucket name (the
// relabel candidates inside a fault window — site-labeled lock:*/block:*
// segments a nested hook already attributed are left alone).
func defaultLabel(label string) bool {
	for _, n := range bucketNames {
		if label == n {
			return true
		}
	}
	return false
}

// Segment is one critical-path interval of a span: a contiguous slice of
// the span's virtual time attributed to one cause. Segments tile the
// span exactly — starts are cumulative and durations sum to the span's.
type Segment struct {
	Label   string `json:"label"`
	StartNS uint64 `json:"start_ns"`
	DurNS   uint64 `json:"dur_ns"`
}

// Edge is one recorded causal handoff.
type Edge struct {
	Kind    EdgeKind
	FromPID int32
	ToPID   int32
	At      sim.Time
}

// Span is one μprocess's participation in a trace: the root span is the
// origin op itself; forked children, pipe readers, and signal targets
// join with their own spans. All span mutation happens on the simulation
// goroutine; a span becomes immutable when its trace finishes.
type Span struct {
	tr    *Trace
	PID   int32
	Proc  string
	Start sim.Time
	End   sim.Time
	Segs  []Segment
	root  bool

	// lastNow/lastDel are the checkpoint cursor: the task clock and delay
	// snapshot the last flush ran at. Per-bucket deltas against lastDel
	// tile [lastNow, now] exactly, which is what makes segment sums equal
	// elapsed time with no residue.
	lastNow sim.Time
	lastDel [sim.NumDelayKinds]sim.Time

	// fence blocks segment merging across a Mark boundary, so a fault
	// window's relabel can never bleed into pre-window time.
	fence  int
	closed bool
}

// Trace is one causal tree: a root span plus every span that joined via
// a fork, pipe, or signal edge. Finished traces are immutable.
type Trace struct {
	ID    TraceID
	Group string
	Op    string
	Start sim.Time
	End   sim.Time
	Spans []*Span // Spans[0] is the root
	Edges []Edge

	// Cause is the classifier verdict: the dominant merged segment of the
	// root span and its share of the op latency.
	Cause     string
	CauseFrac float64
}

// Dur returns the trace's root-span duration — the op latency.
func (tr *Trace) Dur() sim.Time { return tr.End - tr.Start }

// DefaultK is the exemplar reservoir depth: slow-trace capture wants the
// worst handful per group, not a corpus.
const DefaultK = 5

// Plane is the trace-context plane. Construct with New; arm per kernel
// via kernel.ArmCausal. Structural operations (Begin/Join/Adopt/Edge/
// finish/Snapshot) lock the plane mutex because the telemetry server
// reads counters and finished traces from an HTTP goroutine; span
// checkpoints are lock-free, touched only by the owning task.
type Plane struct {
	enabled atomic.Bool

	mu       sync.Mutex
	nextID   uint64
	started  uint64
	finished uint64
	edges    [NumEdgeKinds]uint64
	live     map[TraceID]*Trace
	groups   map[string][]*Trace // K-slowest finished traces per group
	k        int
}

// New creates a plane keeping the k slowest complete traces per group
// (k <= 0 selects DefaultK). Disabled until Enable.
func New(k int) *Plane {
	if k <= 0 {
		k = DefaultK
	}
	return &Plane{
		live:   make(map[TraceID]*Trace),
		groups: make(map[string][]*Trace),
		k:      k,
	}
}

// Enable arms the plane.
func (pl *Plane) Enable() { pl.enabled.Store(true) }

// Disable stops new trace creation (live traces still finish).
func (pl *Plane) Disable() { pl.enabled.Store(false) }

// On reports whether the plane is armed: nil-safe, one atomic load — the
// probe every origin site pays when tracing is off.
func (pl *Plane) On() bool { return pl != nil && pl.enabled.Load() }

// Started returns the number of traces ever begun (telemetry's
// armed-versus-idle discriminator, like flight's Seq).
func (pl *Plane) Started() uint64 {
	if pl == nil {
		return 0
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.started
}

// Reset drops all live and finished traces and restarts the counters.
// The enabled switch is left as is.
func (pl *Plane) Reset() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.nextID, pl.started, pl.finished = 0, 0, 0
	pl.edges = [NumEdgeKinds]uint64{}
	pl.live = make(map[TraceID]*Trace)
	pl.groups = make(map[string][]*Trace)
}

// newSpan builds a span with its checkpoint cursor primed at (now,
// delays), so the first flush attributes only time after the join.
func newSpan(tr *Trace, pid int32, proc string, root bool, now sim.Time, delays [sim.NumDelayKinds]sim.Time) *Span {
	return &Span{tr: tr, PID: pid, Proc: proc, Start: now, root: root, lastNow: now, lastDel: delays}
}

// Begin mints a trace and its root span for the op starting now on pid.
// Returns nil when the plane is disabled.
func (pl *Plane) Begin(group, op string, pid int32, proc string, now sim.Time, delays [sim.NumDelayKinds]sim.Time) *Span {
	if !pl.On() {
		return nil
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.nextID++
	pl.started++
	tr := &Trace{ID: TraceID(pl.nextID), Group: group, Op: op, Start: now, End: now - 1}
	s := newSpan(tr, pid, proc, true, now, delays)
	tr.Spans = append(tr.Spans, s)
	pl.live[tr.ID] = tr
	return s
}

// Join attaches a new span for pid to parent's trace (a fork child or
// signal target entering the causal tree) and records the edge. Returns
// nil when parent is nil or its trace already finished.
func (pl *Plane) Join(parent *Span, kind EdgeKind, pid int32, proc string, now sim.Time, delays [sim.NumDelayKinds]sim.Time) *Span {
	if parent == nil || parent.Dead() {
		return nil
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	tr := parent.tr
	if _, ok := pl.live[tr.ID]; !ok {
		return nil
	}
	s := newSpan(tr, pid, proc, false, now, delays)
	tr.Spans = append(tr.Spans, s)
	tr.Edges = append(tr.Edges, Edge{Kind: kind, FromPID: parent.PID, ToPID: pid, At: now})
	pl.edges[kind]++
	return s
}

// Adopt attaches a new span for pid to the live trace id (a pipe reader
// picking up the writer's stamp, a signal target picking up the
// sender's) and records the edge. Returns nil when the trace already
// finished — a stale stamp adopts nothing.
func (pl *Plane) Adopt(id TraceID, kind EdgeKind, fromPID, pid int32, proc string, now sim.Time, delays [sim.NumDelayKinds]sim.Time) *Span {
	if id == 0 {
		return nil
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	tr, ok := pl.live[id]
	if !ok {
		return nil
	}
	s := newSpan(tr, pid, proc, false, now, delays)
	tr.Spans = append(tr.Spans, s)
	tr.Edges = append(tr.Edges, Edge{Kind: kind, FromPID: fromPID, ToPID: pid, At: now})
	pl.edges[kind]++
	return s
}

// Close ends s at now. Closing a non-root span merely freezes it; closing
// the root finishes the whole trace: every still-open member span is
// frozen where its last checkpoint left it, the classifier runs, and the
// trace competes for its group's exemplar reservoir. Callers flush a
// final Checkpoint first so the root's segments tile [Start, now] exactly.
func (pl *Plane) Close(s *Span, now sim.Time) {
	if s == nil || s.closed {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	s.End = now
	s.closed = true
	if !s.root {
		return
	}
	tr := s.tr
	tr.End = now
	for _, m := range tr.Spans {
		if !m.closed {
			m.End = m.lastNow
			m.closed = true
		}
	}
	tr.Cause, tr.CauseFrac = classify(s)
	delete(pl.live, tr.ID)
	pl.finished++
	pl.offer(tr)
}

// offer inserts a finished trace into its group's K-slowest reservoir.
// Caller holds pl.mu.
func (pl *Plane) offer(tr *Trace) {
	g := pl.groups[tr.Group]
	g = append(g, tr)
	// Insertion-sort the newcomer into duration-descending order; the
	// slice is at most k+1 long.
	for i := len(g) - 1; i > 0 && g[i].Dur() > g[i-1].Dur(); i-- {
		g[i], g[i-1] = g[i-1], g[i]
	}
	if len(g) > pl.k {
		g = g[:pl.k]
	}
	pl.groups[tr.Group] = g
}

// classify returns the dominant merged segment label of the root span
// and its fraction of the op latency — the one-line root cause an SLO
// breach report prints.
func classify(root *Span) (string, float64) {
	total := root.End - root.Start
	if total <= 0 || len(root.Segs) == 0 {
		return "run", 0
	}
	byLabel := make(map[string]uint64, len(root.Segs))
	for _, seg := range root.Segs {
		byLabel[seg.Label] += seg.DurNS
	}
	best, bestDur := "run", uint64(0)
	for label, dur := range byLabel {
		if dur > bestDur || (dur == bestDur && label < best) {
			best, bestDur = label, dur
		}
	}
	return best, float64(bestDur) / float64(total)
}

// Trace returns the span's trace ID (the pipe-stamp / signal-carriage
// value). Nil-safe; zero for a dead span.
func (s *Span) Trace() TraceID {
	if s == nil || s.Dead() {
		return 0
	}
	return s.tr.ID
}

// Active reports whether s is a live span: nil-safe, the hot-path probe.
func (s *Span) Active() bool { return s != nil && !s.closed && !s.tr.Spans[0].closed }

// Dead reports whether s can no longer accumulate (closed itself, or its
// trace's root already ended). Nil spans are dead.
func (s *Span) Dead() bool { return s == nil || s.closed || s.tr.Spans[0].closed }

// Root reports whether s is its trace's origin span.
func (s *Span) Root() bool { return s != nil && s.root }

// Checkpoint flushes the per-bucket delay deltas accrued since the last
// checkpoint as segments with their default bucket labels. delays is the
// owning task's current Delays() snapshot; deltas tile [lastNow, now]
// exactly because the engine attributes every clock advance to exactly
// one bucket.
func (s *Span) Checkpoint(now sim.Time, delays [sim.NumDelayKinds]sim.Time) {
	s.flush(now, delays, -1, "")
}

// CheckpointAs flushes like Checkpoint but labels kind's delta with the
// given site label (e.g. the lock-wait delta of a contended acquisition
// as "lock:tmem", a pipe sleep's blocked delta as "block:pipe"). The
// other buckets keep their defaults.
func (s *Span) CheckpointAs(kind sim.DelayKind, label string, now sim.Time, delays [sim.NumDelayKinds]sim.Time) {
	s.flush(now, delays, kind, label)
}

func (s *Span) flush(now sim.Time, delays [sim.NumDelayKinds]sim.Time, kind sim.DelayKind, label string) {
	if s == nil || s.closed {
		return
	}
	for k := sim.DelayKind(0); k < sim.NumDelayKinds; k++ {
		d := delays[k] - s.lastDel[k]
		if d <= 0 {
			continue
		}
		lab := bucketNames[k]
		if k == kind && label != "" {
			lab = label
		}
		s.append(lab, uint64(d))
	}
	s.lastDel = delays
	s.lastNow = now
}

// append adds one segment, merging into the previous one when the labels
// match and no Mark fence intervenes. Starts are cumulative, keeping the
// tiling exact.
func (s *Span) append(label string, dur uint64) {
	if n := len(s.Segs); n > s.fence && s.Segs[n-1].Label == label {
		s.Segs[n-1].DurNS += dur
		return
	}
	start := uint64(0)
	if n := len(s.Segs); n > 0 {
		start = s.Segs[n-1].StartNS + s.Segs[n-1].DurNS
	}
	s.Segs = append(s.Segs, Segment{Label: label, StartNS: start, DurNS: dur})
}

// Mark records the current segment boundary (callers checkpoint first)
// and fences merging across it, returning the index RelabelWindow takes.
// The fault path brackets its service window with Mark/RelabelWindow:
// the copy mode is only known after the handler runs.
func (s *Span) Mark() int {
	if s == nil {
		return 0
	}
	s.fence = len(s.Segs)
	return s.fence
}

// RelabelWindow rewrites every default-labeled segment from mark onward
// to the given label, then re-merges neighbors. Site-labeled segments a
// nested hook attributed inside the window (lock:*, block:*) are left
// intact — a fault that stalled on the tmem lock shows both causes.
func (s *Span) RelabelWindow(mark int, label string) {
	if s == nil || s.closed || mark >= len(s.Segs) {
		return
	}
	if mark < 0 {
		mark = 0
	}
	for i := mark; i < len(s.Segs); i++ {
		if defaultLabel(s.Segs[i].Label) {
			s.Segs[i].Label = label
		}
	}
	// Compact the window: adjacent same-label segments merge (within the
	// window only, so pre-window attribution is never disturbed).
	out := s.Segs[:mark]
	for _, seg := range s.Segs[mark:] {
		if n := len(out); n > mark && out[n-1].Label == seg.Label {
			out[n-1].DurNS += seg.DurNS
			continue
		}
		out = append(out, seg)
	}
	s.Segs = out
	if s.fence > len(s.Segs) {
		s.fence = len(s.Segs)
	}
}
