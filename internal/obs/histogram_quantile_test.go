package obs

import "testing"

// The quantile edges the latency gates lean on: p99.9 over sparse
// populations, single-bucket histograms, the empty histogram, and values
// landing exactly on (or beyond) bucket bounds. The SLO plane compares
// these numbers against hard ceilings, so the edge semantics — nearest
// rank, clamped to the observed [min, max] — are load-bearing.

// TestPercentileEmpty: every quantile of an empty histogram is 0, never
// a bucket bound or stale min sentinel.
func TestPercentileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Percentile(q); got != 0 {
			t.Errorf("empty Percentile(%v) = %d, want 0", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P999 != 0 {
		t.Errorf("empty Summary = %+v, want all zero", s)
	}
}

// TestPercentileSingleBucket: when every observation is the same value,
// every quantile is that value — the bucket's upper bound must clamp
// down to the observed max, and q<=0 must clamp up to the observed min.
func TestPercentileSingleBucket(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 7; i++ {
		h.Observe(150) // interior of the (100, 200] bucket
	}
	for _, q := range []float64{-1, 0, 0.001, 0.5, 0.99, 0.999, 1} {
		if got := h.Percentile(q); got != 150 {
			t.Errorf("single-value Percentile(%v) = %d, want 150", q, got)
		}
	}
}

// TestPercentileSparseTail: nearest-rank p99.9 over a population far
// smaller than 1000 selects the maximum — rank ⌈0.999·n⌉ = n — so a
// single outlier must dominate the reported tail, not be averaged away.
func TestPercentileSparseTail(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 9; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000) // the one outlier
	if got := h.Percentile(0.999); got != 1_000_000 {
		t.Errorf("sparse p99.9 = %d, want the outlier 1000000", got)
	}
	if got := h.Percentile(0.90); got != 100 {
		t.Errorf("sparse p90 = %d, want 100", got)
	}
	// Rank arithmetic at the step: 10 observations, q=0.9 → rank 9 (the
	// last 100), q=0.901 → rank 10 (the outlier).
	if got := h.Percentile(0.901); got != 1_000_000 {
		t.Errorf("p90.1 = %d, want the outlier 1000000", got)
	}
}

// TestPercentileBucketBoundary: observations exactly on an inclusive
// upper bound stay in that bucket, and the reported quantile is exact;
// one observation just past the bound moves to the next bucket, whose
// reported bound clamps to the observed max.
func TestPercentileBucketBoundary(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 4; i++ {
		h.Observe(200) // exactly the (100, 200] upper bound
	}
	if got := h.Percentile(0.5); got != 200 {
		t.Errorf("on-bound p50 = %d, want exactly 200", got)
	}
	h.Observe(201) // first value of the (200, 500] bucket
	if got := h.Percentile(1); got != 201 {
		t.Errorf("p100 = %d, want bucket bound 500 clamped to max 201", got)
	}
	if got := h.Percentile(0.5); got != 200 {
		t.Errorf("p50 after boundary straddle = %d, want 200", got)
	}
}

// TestPercentileOverflowBucket: values beyond the last bound land in the
// implicit overflow bucket, whose quantile reads back as the observed
// max instead of an invented +Inf bound.
func TestPercentileOverflowBucket(t *testing.T) {
	h := NewHistogram([]uint64{10, 20})
	h.Observe(5)
	h.Observe(12345) // overflow
	h.Observe(99999) // overflow, max
	for _, tc := range []struct {
		q    float64
		want uint64
	}{
		{0.33, 10}, // rank 1: the ≤10 bucket's bound
		// Ranks 2 and 3 both land in the overflow bucket, whose only
		// honest answer is the observed max — never an invented bound.
		{0.5, 99999},
		{0.999, 99999},
		{1, 99999},
	} {
		if got := h.Percentile(tc.q); got != tc.want {
			t.Errorf("overflow Percentile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

// TestPercentileMinClamp: a bucket's upper bound can overshoot every
// observation in it; the quantile must clamp into [min, max].
func TestPercentileMinClamp(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(101) // (100, 200] bucket: bound 200 overshoots
	h.Observe(102)
	if got := h.Percentile(0.5); got != 102 {
		t.Errorf("overshoot p50 = %d, want clamp to max 102", got)
	}
	if got := h.Percentile(0); got != 101 {
		t.Errorf("q=0 = %d, want min 101", got)
	}
}
