// Package invariant audits a running kernel against the global
// conservation laws the μFork design depends on. It is the third pillar of
// the chaos harness: fault injection and fuzzing perturb the kernel,
// Check proves the perturbation broke nothing.
//
// The laws audited, and where they come from:
//
//   - Frame conservation (no leak, no double-own): every physical frame is
//     either on the free list or reachable through exactly one page
//     descriptor, whose reference count equals the number of PTEs (across
//     all address spaces) plus shared-memory registry roots that hold it.
//     Fork engines juggle frames across regions and abort paths; a frame
//     that escapes this accounting is lost until reboot.
//   - Tag-plane consistency: per frame, the cached tag population count
//     matches the packed bitset, and every tagged granule carries a tagged
//     capability whose cursor/base agree with the data bytes — the silent
//     tag-loss failure mode CHERI porting studies warn about.
//   - Capability confinement (monotonicity at region granularity, §4.2):
//     under isolation, no unsealed capability reachable by a μprocess —
//     register file or stored in a non-pending page of its region —
//     extends beyond its region. Pages still pending relocation are
//     exempt by design: they hold ancestor-region capabilities that the
//     copy machinery must relocate before the child can load them.
//   - Region disjointness (Fig. 1): live μprocess regions never overlap
//     each other or the kernel region in the single address space.
//   - CoW/CoA/CoPA PTE legality: a frame referenced by more than one PTE
//     is mapped read-only everywhere (except explicit shared-memory
//     mappings); a PTE with the fault-on-capability-load bit, or with no
//     permissions at all, must be tracked as pending relocation by its
//     owning μprocess; pending pages are mapped and inside their region.
//   - No orphan mappings: every mapped page of the shared address space
//     belongs to the kernel region or a live μprocess region.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"ufork/internal/cap"
	"ufork/internal/kernel"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// Violations is the error type Check returns: every broken invariant, in
// deterministic order.
type Violations struct {
	List []string
}

func (v *Violations) Error() string {
	const max = 20
	n := len(v.List)
	shown := v.List
	if n > max {
		shown = shown[:max]
	}
	s := fmt.Sprintf("%d invariant violation(s):\n  %s", n, strings.Join(shown, "\n  "))
	if n > max {
		s += fmt.Sprintf("\n  ... and %d more", n-max)
	}
	return s
}

type checker struct {
	k    *kernel.Kernel
	list []string
}

func (c *checker) failf(format string, args ...any) {
	c.list = append(c.list, fmt.Sprintf(format, args...))
}

// Check audits kernel k and returns a *Violations error when any invariant
// is broken, nil otherwise. It is read-only and deterministic: safe to
// call between any two syscalls of a simulation (from within a task, or
// after Run returns).
func Check(k *kernel.Kernel) error {
	c := &checker{k: k}
	c.frameConservation()
	procs := c.sortedProcs()
	entries, pages := c.walkAddressSpaces(procs)
	c.ownership(entries, pages)
	c.tagPlane()
	c.pteLegality(entries, procs)
	c.pssConservation(entries, procs)
	c.memmapPlane(entries)
	c.regions(procs)
	c.procState(procs)
	if len(c.list) == 0 {
		return nil
	}
	sort.Strings(c.list)
	return &Violations{List: c.list}
}

// sortedProcs returns every process (live and zombie) in PID order, for
// deterministic iteration.
func (c *checker) sortedProcs() []*kernel.Proc {
	m := c.k.Procs()
	pids := make([]kernel.PID, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]*kernel.Proc, len(pids))
	for i, pid := range pids {
		out[i] = m[pid]
	}
	return out
}

// frameConservation: allocated + free must cover the whole bank.
func (c *checker) frameConservation() {
	mem := c.k.Mem
	if got := mem.Allocated() + mem.FreeFrames(); got != mem.NumFrames() {
		c.failf("frame conservation: allocated %d + free %d = %d != %d total frames",
			mem.Allocated(), mem.FreeFrames(), got, mem.NumFrames())
	}
}

// walkEntry is one observed PTE.
type walkEntry struct {
	as  *vm.AddressSpace
	vpn vm.VPN
	pte *vm.PTE
}

// walkAddressSpaces snapshots every PTE of every distinct address space
// and returns the entries plus the per-descriptor observed reference
// counts.
func (c *checker) walkAddressSpaces(procs []*kernel.Proc) ([]walkEntry, map[*vm.Page]int) {
	seen := make(map[*vm.AddressSpace]bool)
	var ases []*vm.AddressSpace
	add := func(as *vm.AddressSpace) {
		if as != nil && !seen[as] {
			seen[as] = true
			ases = append(ases, as)
		}
	}
	add(c.k.SharedAS)
	for _, p := range procs {
		add(p.AS)
	}
	var entries []walkEntry
	pages := make(map[*vm.Page]int)
	for _, as := range ases {
		for _, vpn := range as.VPNs() {
			pte := as.Lookup(vpn)
			entries = append(entries, walkEntry{as: as, vpn: vpn, pte: pte})
			pages[pte.Page]++
		}
	}
	return entries, pages
}

// ownership: each PFN held by exactly one descriptor, each descriptor's
// reference count equal to its observed PTE count (plus shm registry
// roots), every allocated frame reachable, every referenced frame
// allocated.
func (c *checker) ownership(entries []walkEntry, pages map[*vm.Page]int) {
	mem := c.k.Mem
	owner := make(map[tmem.PFN]*vm.Page, len(pages))
	for _, e := range entries {
		page := e.pte.Page
		if prev, ok := owner[page.PFN]; ok && prev != page {
			c.failf("frame double-owned: pfn %d reachable through two distinct page descriptors", page.PFN)
		} else {
			owner[page.PFN] = page
		}
	}
	// Shared-memory objects are additional roots: their pages stay
	// allocated while unmapped (refs 0), and mapped shm pages must use the
	// registry's own descriptor.
	shmPages := make(map[*vm.Page]bool)
	for _, obj := range c.k.ShmObjects() {
		for _, page := range obj.Pages() {
			shmPages[page] = true
			if prev, ok := owner[page.PFN]; ok && prev != page {
				c.failf("frame double-owned: shm %q pfn %d also reachable through a foreign descriptor", obj.Name, page.PFN)
			} else {
				owner[page.PFN] = page
			}
			if page.Refs != pages[page] {
				c.failf("refcount drift: shm %q pfn %d has Refs=%d but %d PTEs reference it",
					obj.Name, page.PFN, page.Refs, pages[page])
			}
		}
	}
	for page, observed := range pages {
		if shmPages[page] {
			continue // already checked, including the unmapped-refs-0 case
		}
		if page.Refs != observed {
			c.failf("refcount drift: pfn %d has Refs=%d but %d PTEs reference it", page.PFN, page.Refs, observed)
		}
	}
	// Leak and dangling checks.
	mem.ForEachAllocated(func(pfn tmem.PFN) {
		if owner[pfn] == nil {
			c.failf("frame leaked: pfn %d allocated but reachable from no page table or shm object", pfn)
		}
	})
	for pfn := range owner {
		if _, err := mem.CountTags(pfn); err != nil {
			c.failf("dangling mapping: pfn %d referenced by a PTE or shm object but not allocated", pfn)
		}
	}
}

// tagPlane: audit every allocated frame's tag/capability consistency.
func (c *checker) tagPlane() {
	mem := c.k.Mem
	mem.ForEachAllocated(func(pfn tmem.PFN) {
		if err := mem.AuditFrame(pfn); err != nil {
			c.failf("tag plane: %v", err)
		}
	})
}

// ownerOf returns the live process whose region contains va.
func ownerOf(procs []*kernel.Proc, as *vm.AddressSpace, va uint64) *kernel.Proc {
	for _, p := range procs {
		if !p.Exited() && p.AS == as && p.Region.Contains(va) {
			return p
		}
	}
	return nil
}

// pteLegality: the CoW/CoA/CoPA state machine, shared-page write
// protection, and orphan-mapping detection.
func (c *checker) pteLegality(entries []walkEntry, procs []*kernel.Proc) {
	shm := make(map[*vm.Page]bool)
	for _, obj := range c.k.ShmObjects() {
		for _, page := range obj.Pages() {
			shm[page] = true
		}
	}
	for _, e := range entries {
		va := uint64(e.vpn) * vm.PageSize
		if e.pte.Page.Refs > 1 && e.pte.Prot&vm.ProtWrite != 0 && !shm[e.pte.Page] {
			c.failf("writable shared page: vpn %#x maps pfn %d (refs=%d) with write permission outside shm",
				e.vpn, e.pte.Page.PFN, e.pte.Page.Refs)
		}
		owner := ownerOf(procs, e.as, va)
		if e.pte.Prot&vm.ProtCapLoadFault != 0 {
			if owner == nil || !owner.Pending.Contains(e.vpn) {
				c.failf("CoPA state: vpn %#x has fault-on-cap-load set but is not pending relocation", e.vpn)
			}
		}
		if e.pte.Prot == 0 {
			if owner == nil || !owner.Pending.Contains(e.vpn) {
				c.failf("CoA state: vpn %#x mapped with no permissions but not pending relocation", e.vpn)
			}
		}
		if e.as == c.k.SharedAS && owner == nil && !c.k.KernelRegion.Contains(va) {
			c.failf("orphan mapping: vpn %#x mapped in the shared address space but inside no live region", e.vpn)
		}
	}
}

// pssConservation: the proportional-set-size decomposition conserves
// frames. Every frame reachable from a live μprocess region must have its
// reference count fully explained by those live mappings (each PTE is a
// 1/Refs share, so the shares of one frame sum to exactly one frame), and
// the distinct frames so reachable — plus unmapped shared-memory frames,
// which the registry roots — must account for every allocated frame.
// Together these make ΣPSS across live μprocesses equal the live frame
// population, the conservation law the smaps plane advertises.
func (c *checker) pssConservation(entries []walkEntry, procs []*kernel.Proc) {
	if !c.k.Machine.SingleAddressSpace {
		return
	}
	observed := make(map[*vm.Page]int)
	for _, e := range entries {
		va := uint64(e.vpn) * vm.PageSize
		if c.k.KernelRegion.Contains(va) {
			continue
		}
		if ownerOf(procs, e.as, va) == nil {
			continue // reported as an orphan mapping already
		}
		observed[e.pte.Page]++
	}
	for page, n := range observed {
		if page.Refs != n {
			c.failf("pss conservation: pfn %d split across %d live-μprocess PTEs but Refs=%d — its PSS shares do not sum to one frame",
				page.PFN, n, page.Refs)
		}
	}
	unmappedShm := 0
	for _, obj := range c.k.ShmObjects() {
		for _, page := range obj.Pages() {
			if page.Refs == 0 {
				unmappedShm++
			}
		}
	}
	if got := len(observed) + unmappedShm; got != c.k.Mem.Allocated() {
		c.failf("pss conservation: ΣPSS accounts for %d distinct frames (+%d unmapped shm) but the allocator holds %d",
			len(observed), unmappedShm, c.k.Mem.Allocated())
	}
}

// memmapPlane: when the memory-provenance plane is armed, its ledger must
// agree with ground truth frame-for-frame — same live-frame population as
// the allocator, and per-frame mapping counts equal to the page tables'.
func (c *checker) memmapPlane(entries []walkEntry) {
	pl := c.k.Memmap
	if !pl.On() || !c.k.Machine.SingleAddressSpace {
		return
	}
	if live := pl.LiveFrames(); live != c.k.Mem.Allocated() {
		c.failf("memmap plane: ledger tracks %d live frames but the allocator holds %d", live, c.k.Mem.Allocated())
	}
	counts := make(map[tmem.PFN]int)
	for _, e := range entries {
		if e.as == c.k.SharedAS {
			counts[e.pte.Page.PFN]++
		}
	}
	for pfn, n := range counts {
		refs, ok := pl.FrameRefs(pfn)
		if !ok {
			c.failf("memmap plane: pfn %d is mapped but absent from the ledger", pfn)
			continue
		}
		if refs != n {
			c.failf("memmap plane: pfn %d has %d PTEs but the ledger records %d references", pfn, n, refs)
		}
	}
}

// regions: live-region disjointness in the single address space.
func (c *checker) regions(procs []*kernel.Proc) {
	if !c.k.Machine.SingleAddressSpace {
		return
	}
	type owned struct {
		r   kernel.Region
		pid kernel.PID
	}
	var rs []owned
	rs = append(rs, owned{c.k.KernelRegion, 0})
	for _, p := range procs {
		if !p.Exited() {
			rs = append(rs, owned{p.Region, p.PID})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r.Base < rs[j].r.Base })
	for i := 1; i < len(rs); i++ {
		if rs[i].r.Base < rs[i-1].r.Top() {
			c.failf("region overlap: [%#x,%#x) (pid %d) overlaps [%#x,%#x) (pid %d)",
				rs[i-1].r.Base, rs[i-1].r.Top(), rs[i-1].pid,
				rs[i].r.Base, rs[i].r.Top(), rs[i].pid)
		}
	}
}

// procState: per-process pending-set sanity and capability confinement.
func (c *checker) procState(procs []*kernel.Proc) {
	for _, p := range procs {
		if p.Exited() {
			continue
		}
		p.Pending.Range(func(vpn vm.VPN) bool {
			va := uint64(vpn) * vm.PageSize
			if !p.Region.Contains(va) {
				c.failf("pending outside region: pid %d tracks vpn %#x beyond [%#x,%#x)",
					p.PID, vpn, p.Region.Base, p.Region.Top())
			} else if p.AS.Lookup(vpn) == nil {
				c.failf("pending unmapped: pid %d tracks vpn %#x with no PTE", p.PID, vpn)
			}
			return true
		})
		if c.k.Iso == kernel.IsolationNone {
			continue
		}
		c.registerConfinement(p)
		c.storedCapConfinement(p)
	}
}

// registerConfinement: no unsealed register capability of p may exceed its
// region (§4.2: "no parent capability ever leaks to the child").
func (c *checker) registerConfinement(p *kernel.Proc) {
	named := []struct {
		name string
		c    cap.Capability
	}{
		{"DDC", p.DDC}, {"PCC", p.PCC}, {"StackCap", p.StackCap},
		{"HeapCap", p.HeapCap}, {"GOTCap", p.GOTCap}, {"MetaCap", p.MetaCap},
		{"DataCap", p.DataCap}, {"TLSCap", p.TLSCap},
	}
	for _, nc := range named {
		c.confined(p, nc.name, nc.c)
	}
	for i, rc := range p.Regs {
		c.confined(p, fmt.Sprintf("Reg[%d]", i), rc)
	}
}

func (c *checker) confined(p *kernel.Proc, what string, cp cap.Capability) {
	if !cp.Tag() || cp.IsSealed() {
		return // untagged values and sealed sentries carry no usable authority
	}
	if cp.Base() < p.Region.Base || cp.Top() > p.Region.Top() {
		c.failf("capability escape: pid %d %s [%#x,%#x) exceeds region [%#x,%#x)",
			p.PID, what, cp.Base(), cp.Top(), p.Region.Base, p.Region.Top())
	}
}

// storedCapConfinement scans the frames of p's region: every capability
// stored in a page that is NOT pending relocation must already be confined
// to p's region. Pending pages legitimately hold ancestor capabilities;
// shm pages are shared data, not part of the image.
func (c *checker) storedCapConfinement(p *kernel.Proc) {
	shm := make(map[tmem.PFN]bool)
	for _, obj := range c.k.ShmObjects() {
		for _, page := range obj.Pages() {
			shm[page.PFN] = true
		}
	}
	mem := c.k.Mem
	p.AS.RangeVPNs(vm.VPNOf(p.Region.Base), vm.VPNOf(p.Region.Top()-1)+1, func(vpn vm.VPN, pte *vm.PTE) {
		if p.Pending.Contains(vpn) || shm[pte.Page.PFN] {
			return
		}
		_ = mem.ForEachTagged(pte.Page.PFN, func(off uint64) error {
			stored, err := mem.LoadCap(pte.Page.PFN, off)
			if err != nil {
				c.failf("stored cap load: pid %d vpn %#x+%#x: %v", p.PID, vpn, off, err)
				return nil
			}
			c.confined(p, fmt.Sprintf("mem[%#x+%#x]", uint64(vpn)*vm.PageSize, off), stored)
			return nil
		})
	})
}
