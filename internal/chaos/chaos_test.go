package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ufork/internal/chaos/invariant"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/tmem"
)

var allModes = []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull}
var allIsos = []kernel.IsolationLevel{kernel.IsolationNone, kernel.IsolationFault, kernel.IsolationFull}

// TestRandomSchedulesClean is the acceptance matrix: 10k-op seeded random
// schedules across every copy mode × isolation level, no fault injection,
// with periodic and final invariant audits. Any divergence between kernel
// and shadow model, any invariant violation, or any leaked frame fails.
func TestRandomSchedulesClean(t *testing.T) {
	maxOps := 10000
	if testing.Short() {
		maxOps = 1500
	}
	for _, mode := range allModes {
		for _, iso := range allIsos {
			t.Run(fmt.Sprintf("%s/%s", mode, iso), func(t *testing.T) {
				cfg := Config{Mode: mode, Iso: iso, Seed: 1, MaxOps: maxOps, ProgBytes: 4 * maxOps}
				res, err := Run(cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 || res.Checks == 0 {
					t.Fatalf("degenerate run: %+v", res)
				}
				t.Logf("ops=%d forks=%d maxLive=%d checks=%d", res.Ops, res.Forks, res.MaxLive, res.Checks)
			})
		}
	}
}

// TestRandomSchedulesUnderFire repeats the matrix with every fault class
// armed. Injected failures are tolerated; divergence, invariant
// violations, and frame leaks still are not.
func TestRandomSchedulesUnderFire(t *testing.T) {
	maxOps := 6000
	if testing.Short() {
		maxOps = 1500
	}
	for _, mode := range allModes {
		for _, iso := range allIsos {
			t.Run(fmt.Sprintf("%s/%s", mode, iso), func(t *testing.T) {
				cfg := Config{Mode: mode, Iso: iso, Seed: 2, Plan: Aggressive(),
					MaxOps: maxOps, ProgBytes: 4 * maxOps}
				res, err := Run(cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Injected) == 0 {
					t.Fatalf("aggressive plan injected nothing: %+v", res)
				}
				t.Logf("ops=%d forks=%d injected=%v", res.Ops, res.Forks, res.Injected)
			})
		}
	}
}

// TestChaosSMP runs the seeded random-schedule matrix on the split-lock
// SMP machine: every isolation level, clean and under the aggressive
// fault plan, with the fine-grained lock plane and per-CPU frame caches
// live underneath the differential fuzzer and the invariant audits
// (including the frame conservation law, which must count cached frames
// as free). A same-seed replay must also stay deterministic on SMP —
// the lock plane is virtual, so handoff order is part of the schedule.
func TestChaosSMP(t *testing.T) {
	maxOps := 6000
	if testing.Short() {
		maxOps = 1500
	}
	for _, iso := range allIsos {
		for _, aggressive := range []bool{false, true} {
			name := fmt.Sprintf("%s/clean", iso)
			if aggressive {
				name = fmt.Sprintf("%s/aggressive", iso)
			}
			t.Run(name, func(t *testing.T) {
				cfg := Config{Mode: core.CopyOnPointerAccess, Iso: iso, Seed: 11, SMP: true,
					MaxOps: maxOps, ProgBytes: 4 * maxOps}
				if aggressive {
					cfg.Plan = Aggressive()
				}
				if !strings.Contains(cfg.Repro(), "smp=true") {
					t.Fatalf("repro line does not carry the SMP flag: %s", cfg.Repro())
				}
				res, err := Run(cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 || res.Checks == 0 {
					t.Fatalf("degenerate run: %+v", res)
				}
				res2, err2 := Run(cfg, nil)
				if err2 != nil || !reflect.DeepEqual(res, res2) {
					t.Fatalf("SMP run does not replay from its seed:\n  %+v\n  %+v (err %v)", res, res2, err2)
				}
				t.Logf("ops=%d forks=%d maxLive=%d checks=%d injected=%v",
					res.Ops, res.Forks, res.MaxLive, res.Checks, res.Injected)
			})
		}
	}
}

// TestDeterminism: the whole harness — program generation, fault
// schedule, simulation — must replay identically from the seed.
func TestDeterminism(t *testing.T) {
	cfg := Config{Mode: core.CopyOnPointerAccess, Iso: kernel.IsolationFull,
		Seed: 42, Plan: Aggressive(), MaxOps: 3000, ProgBytes: 12000}
	r1, err1 := Run(cfg, nil)
	r2, err2 := Run(cfg, nil)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed, different results:\n  %+v\n  %+v", r1, r2)
	}
	if fmt.Sprint(err1) != fmt.Sprint(err2) {
		t.Fatalf("same seed, different errors:\n  %v\n  %v", err1, err2)
	}
}

// TestSeedVariety: different seeds must exercise different schedules —
// otherwise the fuzzer is a fixed regression test in disguise.
func TestSeedVariety(t *testing.T) {
	cfg := Config{Mode: core.CopyOnAccess, Iso: kernel.IsolationFault,
		Seed: 7, Plan: Aggressive(), MaxOps: 2000, ProgBytes: 8000}
	r1, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	r2, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1, r2) {
		t.Fatalf("seeds 7 and 8 produced identical results: %+v", r1)
	}
}

// mutationKernel boots a kernel, runs body inside a root μprocess, and
// returns the invariant-audit error captured by body.
func mutationKernel(t *testing.T, mode core.CopyMode, body func(k *kernel.Kernel, p *kernel.Proc) error) error {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(mode),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 14,
	})
	var audit error
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		audit = body(k, p)
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	k.Run()
	return audit
}

// TestMutationSkipTagCopyCaught is the required mutation smoke test:
// deliberately breaking the tag-plane copy during fork must be caught by
// the invariant checker. CopyFull forces eager CopyFrame of every page —
// including the GOT's 96 capabilities — so dropping tag words leaves the
// tag plane inconsistent (stale ntags, untagged capability granules).
func TestMutationSkipTagCopyCaught(t *testing.T) {
	audit := mutationKernel(t, core.CopyFull, func(k *kernel.Kernel, p *kernel.Proc) error {
		k.Mem.SetHooks(&tmem.Hooks{SkipTagCopy: true})
		if _, err := k.Fork(p, func(cp *kernel.Proc) {}); err != nil {
			t.Fatalf("fork: %v", err)
		}
		return invariant.Check(k)
	})
	if audit == nil {
		t.Fatal("invariant checker missed a skipped tag-plane copy")
	}
	if !strings.Contains(audit.Error(), "tag") {
		t.Fatalf("violation does not implicate the tag plane: %v", audit)
	}
}

// TestMutationTagFlipCaught: a single flipped tag-plane bit — silent
// capability forgery or destruction — must be caught, and un-flipping it
// must restore a clean audit.
func TestMutationTagFlipCaught(t *testing.T) {
	audit := mutationKernel(t, core.CopyOnPointerAccess, func(k *kernel.Kernel, p *kernel.Proc) error {
		if err := invariant.Check(k); err != nil {
			t.Fatalf("clean kernel fails audit: %v", err)
		}
		var pfn tmem.PFN
		k.Mem.ForEachAllocated(func(f tmem.PFN) { pfn = f })
		k.Mem.InjectTagFlip(pfn, 5)
		flipped := invariant.Check(k)
		k.Mem.InjectTagFlip(pfn, 5) // undo
		if err := invariant.Check(k); err != nil {
			t.Fatalf("audit still dirty after un-flip: %v", err)
		}
		return flipped
	})
	if audit == nil {
		t.Fatal("invariant checker missed a flipped tag bit")
	}
}

// runMutated runs cfg with the tag-copy mutation armed underneath the
// harness: every fork silently drops the tag plane.
func runMutated(cfg Config) (Result, error) {
	cfg.mutate = func(k *kernel.Kernel) {
		k.Mem.SetHooks(&tmem.Hooks{SkipTagCopy: true})
	}
	return Run(cfg, nil)
}

// TestFailureCarriesRepro: when the harness does find a divergence, the
// error must carry the one-line repro. Force one by arming the tag-copy
// mutation underneath an otherwise-normal fuzz run.
func TestFailureCarriesRepro(t *testing.T) {
	cfg := Config{Mode: core.CopyFull, Iso: kernel.IsolationFull, Seed: 3,
		MaxOps: 1500, ProgBytes: 6000, CheckEvery: 25}
	errs := make([]error, 2)
	for i := range errs {
		_, errs[i] = runMutated(cfg)
	}
	if errs[0] == nil {
		t.Fatal("mutated run passed; harness has no teeth")
	}
	if !strings.Contains(errs[0].Error(), "repro: "+cfg.Repro()) {
		t.Fatalf("failure lacks repro line: %v", errs[0])
	}
	if errs[0].Error() != errs[1].Error() {
		t.Fatalf("failure does not replay deterministically:\n  %v\n  %v", errs[0], errs[1])
	}
}

// TestFailureCarriesFlightDump: a harness failure must embed the flight
// recorder's tail — the last events before the divergence — below the
// repro line, in strict emission order. Combined with the byte-identical
// replay check above, this makes the dump itself a deterministic function
// of the printed seed.
func TestFailureCarriesFlightDump(t *testing.T) {
	cfg := Config{Mode: core.CopyFull, Iso: kernel.IsolationFull, Seed: 3,
		MaxOps: 1500, ProgBytes: 6000, CheckEvery: 25}
	res, err := runMutated(cfg)
	if err == nil {
		t.Fatal("mutated run passed; harness has no teeth")
	}
	msg := err.Error()
	reproAt := strings.Index(msg, "repro: "+cfg.Repro())
	dumpAt := strings.Index(msg, "flight recorder: last ")
	if dumpAt < 0 {
		t.Fatalf("failure lacks flight dump:\n%s", msg)
	}
	if reproAt < 0 || dumpAt < reproAt {
		t.Fatalf("flight dump must follow the repro line:\n%s", msg)
	}
	if res.Flight == nil {
		t.Fatal("Result.Flight not populated on failure")
	}
	evs := res.Flight.Snapshot()
	if len(evs) == 0 {
		t.Fatal("flight recorder captured no events before the failure")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("flight events out of order at %d: seq %d then %d",
				i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	// Every formatted tail line must actually appear in the error text: the
	// dump is the recorder's tail, not a re-rendering from other state.
	tail := res.Flight.Tail(5)
	for _, e := range tail {
		if !strings.Contains(msg, e.Format()) {
			t.Fatalf("dump missing tail event %q:\n%s", e.Format(), msg)
		}
	}
}
