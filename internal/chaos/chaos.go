// Package chaos is the deterministic robustness harness: seeded fault
// injection, a syscall-sequence fuzzer over the real kernel surface, and
// (via the invariant subpackage) a kernel-wide conservation-law audit.
//
// Everything is driven by one seed. The injector draws its schedule from a
// seeded PRNG, the program generator derives op streams from seeded bytes,
// and the simulation itself is a deterministic discrete-event engine — so
// any failure replays, bit for bit, from the one-line seed it prints.
package chaos

import (
	"math/rand"

	"ufork/internal/kernel"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// Plan sets the injection rates of one chaos run. Each "Every" field is a
// 1-in-N probability per opportunity; zero disables that fault class.
type Plan struct {
	// AllocFailEvery fails 1-in-N frame allocations with ErrOutOfMemory:
	// physical-memory exhaustion at arbitrary points (mid-fork, mid-fault,
	// mid-load).
	AllocFailEvery int
	// SyscallErrEvery fails 1-in-N fallible syscalls at entry with
	// kernel.ErrInterrupted: the EINTR storm.
	SyscallErrEvery int
	// MapFailEvery fails 1-in-N PTE installs with vm.ErrInjected.
	MapFailEvery int
	// SpuriousFaultEvery turns 1-in-N safe write translations into a
	// spurious write-protect fault the handler must resolve idempotently.
	SpuriousFaultEvery int
	// PoisonFreed fills freed frames with a poison pattern so any
	// use-after-free reads garbage instead of plausible stale data.
	PoisonFreed bool
}

// Aggressive returns a plan with every fault class armed at rates that
// fire many times per thousand-op program.
func Aggressive() Plan {
	return Plan{
		AllocFailEvery:     211,
		SyscallErrEvery:    37,
		MapFailEvery:       257,
		SpuriousFaultEvery: 61,
		PoisonFreed:        true,
	}
}

// Injector is a seed-deterministic fault schedule. Arm wires it into a
// kernel's tmem, vm, and syscall interception points; every decision
// comes from the seeded PRNG, so identical (seed, plan, workload) triples
// replay identical fault schedules.
//
// All hook sites run on the single executing simulation task (frame
// allocation, PTE install, translation, and syscall entry are serial even
// when eager fork copies fan across host workers), so the PRNG needs no
// locking and the draw order is deterministic.
type Injector struct {
	rng  *rand.Rand
	plan Plan
	// counts tallies fired injections by class.
	counts map[string]int
	// Spurious-fault re-entrancy damper: never fire twice in a row on the
	// same page, so the handler's resolve-and-retry always converges
	// instead of tripping the kernel's fault-loop backstop.
	lastSpuriousVPN vm.VPN
	spuriousFired   bool
}

// NewInjector creates an injector drawing its schedule from seed.
func NewInjector(seed int64, plan Plan) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		plan:   plan,
		counts: make(map[string]int),
	}
}

// Arm wires the injector into k: syscall failures on the kernel, frame
// faults on its physical memory, and map/translate faults on the shared
// address space (single-address-space machines; the multi-AS baselines
// create per-process address spaces the harness does not chase).
// Call after the root process is spawned so the initial image always
// loads, and before Run.
func (in *Injector) Arm(k *kernel.Kernel) {
	k.Chaos = in
	k.Mem.SetHooks(&tmem.Hooks{
		FailAlloc:   in.failAlloc,
		PoisonFreed: in.plan.PoisonFreed,
	})
	if k.SharedAS != nil {
		k.SharedAS.SetHooks(&vm.Hooks{
			FailMap:       in.failMap,
			SpuriousFault: in.spuriousFault,
		})
	}
}

// Counts returns the injections fired so far, by class.
func (in *Injector) Counts() map[string]int { return in.counts }

// Fired returns the total number of injections fired.
func (in *Injector) Fired() int {
	n := 0
	for _, v := range in.counts {
		n += v
	}
	return n
}

// fire draws one 1-in-n decision. n <= 0 never fires.
func (in *Injector) fire(n int) bool {
	return n > 0 && in.rng.Intn(n) == 0
}

func (in *Injector) failAlloc() bool {
	if in.fire(in.plan.AllocFailEvery) {
		in.counts["alloc-fail"]++
		return true
	}
	return false
}

func (in *Injector) failMap(vpn vm.VPN) bool {
	if in.fire(in.plan.MapFailEvery) {
		in.counts["map-fail"]++
		return true
	}
	return false
}

func (in *Injector) spuriousFault(vpn vm.VPN) bool {
	if in.spuriousFired && in.lastSpuriousVPN == vpn {
		// The retry after the handler resolved the injected fault: let it
		// through, whatever the dice say.
		in.spuriousFired = false
		return false
	}
	if in.fire(in.plan.SpuriousFaultEvery) {
		in.counts["spurious-fault"]++
		in.lastSpuriousVPN = vpn
		in.spuriousFired = true
		return true
	}
	return false
}

// SyscallError implements kernel.SyscallFailer.
func (in *Injector) SyscallError(name string) error {
	if in.fire(in.plan.SyscallErrEvery) {
		in.counts["syscall-"+name]++
		return kernel.ErrInterrupted
	}
	return nil
}
