package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ufork/internal/cap"
	"ufork/internal/chaos/invariant"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
	"ufork/internal/obs/profile"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// Config describes one chaos run: a copy mode × isolation level, a seed,
// and an injection plan. The same Config + program replays the same run.
type Config struct {
	Mode core.CopyMode
	Iso  kernel.IsolationLevel
	// Seed drives the fault-injection schedule and, when no explicit
	// program is given, the program generator.
	Seed int64
	Plan Plan
	// Frames sizes physical memory; 0 selects 1<<14 (64 MiB).
	Frames int
	// MaxOps is the global op budget across all μprocesses; 0 selects 4096.
	MaxOps int
	// CheckEvery runs the kernel-wide invariant audit every N executed ops;
	// 0 selects 97. Negative disables periodic audits (the final audit
	// always runs).
	CheckEvery int
	// ProgBytes sizes the generated program when Run receives a nil
	// program; 0 selects 2048.
	ProgBytes int
	// SMP runs the program on the split-lock machine (model.UForkSMP)
	// instead of the BKL machine: same costs, fine-grained lock hierarchy,
	// per-CPU frame caches. The shadow model is lock-agnostic, so the same
	// programs verify both configurations.
	SMP bool
	// TraceGroup names the causal plane's exemplar reservoir for this run
	// (the stress soak labels each cell window); "" derives
	// "chaos/<mode>/<iso>" from the configuration.
	TraceGroup string
	// mutate, when set (tests only), sabotages the kernel after arming so
	// the harness can prove it catches deliberately broken kernels.
	mutate func(k *kernel.Kernel)
}

// Repro returns the one-line reproduction string every failure carries.
func (cfg Config) Repro() string {
	return fmt.Sprintf("mode=%s iso=%s seed=%d smp=%v plan=%+v", cfg.Mode, cfg.Iso, cfg.Seed, cfg.SMP, cfg.Plan)
}

// Result summarises one chaos run.
type Result struct {
	Ops      int // ops executed across all μprocesses
	Forks    int // successful forks
	MaxLive  int // peak simultaneous μprocesses
	Checks   int // invariant audits that ran (all passed if error is nil)
	Injected map[string]int
	// ProcStats is the per-μprocess accounting of every process the run
	// created, captured at each process's end of life (PID order).
	ProcStats []kernel.ProcStat
	// Flight is the run's private flight recorder. Every failure error
	// already embeds its tail; tests and the stress soak can inspect the
	// full event history.
	Flight *flight.Recorder
}

// Opcodes of the syscall-sequence interpreter. Programs are raw bytes —
// fuzzer-friendly: every byte string is a valid program.
const (
	opHeapWrite = iota
	opHeapVerify
	opCapStore
	opCapVerify
	opDerefWrite
	opDerefVerify
	opFork
	opWait
	opPipeNew
	opPipeWrite
	opPipeRead
	opSbrk
	opSignal
	opYield
	opGetpid
	opAudit
	numOps
)

// Interpreter limits: bound depth, width, and I/O so no schedule can
// deadlock the deterministic engine or exhaust the host.
const (
	maxForkDepth  = 3
	maxLiveProcs  = 10
	maxTotalForks = 48
	maxPipes      = 8
	pipeHighWater = 32 << 10 // stay below the 64 KiB pipe capacity: writes never block
)

// Run executes a chaos program against a freshly booted μFork kernel and
// verifies it against a shadow model. A nil prog generates cfg.ProgBytes
// of seeded random program. The returned error carries cfg.Repro() — the
// one line needed to replay the failure.
func Run(cfg Config, prog []byte) (Result, error) {
	if cfg.Frames == 0 {
		cfg.Frames = 1 << 14
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 4096
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 97
	}
	if cfg.ProgBytes == 0 {
		cfg.ProgBytes = 2048
	}
	if prog == nil {
		rng := rand.New(rand.NewSource(cfg.Seed))
		prog = make([]byte, cfg.ProgBytes)
		for i := range prog {
			prog[i] = byte(rng.Intn(256))
		}
	}

	// Every run records into a fresh private flight recorder (enabled from
	// the first event, per-run sequence counter) so the dump a failure
	// prints is a pure function of the repro line.
	fr := flight.New(flight.DefaultShards, flight.DefaultPerShard)
	fr.Enable()

	eng := core.New(cfg.Mode)
	machine := model.UFork(2)
	if cfg.SMP {
		machine = model.UForkSMP(2)
	}
	k := kernel.New(kernel.Config{
		Machine:   machine,
		Engine:    eng,
		Isolation: cfg.Iso,
		Frames:    cfg.Frames,
		Flight:    fr,
	})
	// Arm the memory-provenance plane before the first allocation: the
	// invariant audit cross-checks its ledger against the page tables and
	// the allocator, so coverage must be complete from frame zero. If the
	// live telemetry server already armed one (kernel.TrackNew fires
	// inside kernel.New), keep it — /memmap then shows the soak live.
	if k.Memmap == nil {
		pl := memmap.New()
		pl.Enable()
		k.ArmMemmap(pl)
	}
	// Arm causal tracing the same way: keep the live telemetry plane when
	// Track installed one, else a private per-run plane — a failure dump
	// then always carries the run's slowest classified trace trees.
	if k.Causal == nil {
		cpl := causal.New(0)
		cpl.Enable()
		k.ArmCausal(cpl)
	}
	// And the profiler: a failure dump then names the stacks the run's
	// virtual time went to, next to where the tail latency came from.
	if k.Profile == nil {
		ppl := profile.New(0)
		ppl.Enable()
		k.ArmProfile(ppl)
	}
	traceGroup := cfg.TraceGroup
	if traceGroup == "" {
		traceGroup = fmt.Sprintf("chaos/%s/%s", cfg.Mode, cfg.Iso)
	}
	h := &harness{cfg: cfg, k: k, opsLeft: cfg.MaxOps, live: 1, maxLive: 1}
	in := NewInjector(cfg.Seed, cfg.Plan)
	h.in = in

	// fail appends the top classified slow-op trace trees, the profiler's
	// top virtual-time stacks, and the flight-recorder tail below the
	// formatted failure (which always ends with the one-line repro), so
	// every failure ships with where the time went — by trace and by
	// stack — and the kernel event history that led up to it.
	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		if trees := k.Causal.RenderTop(3); trees != "" {
			msg += "\n" + trees
		}
		if k.Profile.Samples() > 0 {
			msg += "\n" + k.Profile.RenderTop(5)
		}
		return fmt.Errorf("%s\n%s", msg, fr.TextDump(flight.DumpTail))
	}

	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// The root program is one traced op: forked children join with
		// fork edges, so the run's exemplar is its whole process tree.
		k.TraceBegin(p, traceGroup, "chaos-program")
		ps := &procState{h: h, p: p, prog: prog, sh: newShadow(p)}
		ps.run()
		k.TraceEnd(p)
	})
	if err != nil {
		return Result{}, fail("chaos: root spawn: %v [repro: %s]", err, cfg.Repro())
	}
	// Arm after the root image is loaded: the initial load always
	// succeeds, everything after runs under fire.
	in.Arm(k)
	if cfg.mutate != nil {
		cfg.mutate(k)
	}

	runErr := runGuarded(k)

	res := Result{
		Ops:       cfg.MaxOps - h.opsLeft,
		Forks:     h.forks,
		MaxLive:   h.maxLive,
		Checks:    h.checks,
		Injected:  in.Counts(),
		ProcStats: h.procStats,
		Flight:    fr,
	}
	sort.Slice(res.ProcStats, func(i, j int) bool { return res.ProcStats[i].PID < res.ProcStats[j].PID })
	if runErr != nil {
		return res, fail("chaos: %v [repro: %s]", runErr, cfg.Repro())
	}
	// Final audits: the invariant sweep over the quiesced kernel, and
	// whole-system frame reclamation — every μprocess has terminated, so
	// every frame must be back on the free list.
	h.checks++
	if err := invariant.Check(k); err != nil {
		return res, fail("chaos: post-run %v [repro: %s]", err, cfg.Repro())
	}
	if n := k.Mem.Allocated(); n != 0 {
		return res, fail("chaos: post-run frame leak: %d frames still allocated [repro: %s]", n, cfg.Repro())
	}
	if len(h.failures) > 0 {
		sort.Strings(h.failures)
		return res, fail("chaos: %d divergence(s):\n  %s\n[repro: %s]",
			len(h.failures), h.failures[0], cfg.Repro())
	}
	return res, nil
}

// runGuarded drives the simulation, converting an engine panic (deadlock,
// kernel bug tripped by injection) into an error instead of killing the
// whole test binary without a repro line.
func runGuarded(k *kernel.Kernel) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	k.Run()
	return nil
}

// harness is the per-run global state shared by all μprocesses.
type harness struct {
	cfg       Config
	k         *kernel.Kernel
	in        *Injector
	opsLeft   int
	live      int
	maxLive   int
	forks     int
	checks    int
	pipes     []*pipeState
	failures  []string
	procStats []kernel.ProcStat
}

func (h *harness) failf(format string, args ...any) {
	h.failures = append(h.failures, fmt.Sprintf(format, args...))
}

// tolerable reports whether err is an expected consequence of the armed
// fault plan (or of genuine resource exhaustion the plan provoked), as
// opposed to a divergence.
func tolerable(err error) bool {
	return errors.Is(err, tmem.ErrOutOfMemory) ||
		errors.Is(err, vm.ErrInjected) ||
		errors.Is(err, kernel.ErrInterrupted)
}

// pipeState tracks one pipe. Only the creating μprocess reads (within one
// sequential task, tracked outstanding bytes are always really buffered,
// so guarded reads never block); any μprocess holding the write end may
// write, guarded below the capacity so writes never block either.
type pipeState struct {
	rfd, wfd    int
	reader      kernel.PID
	outstanding int
	dead        bool
}

// shadow is the per-μprocess reference model: heap bytes, abstract
// capabilities as region-relative (offset, length) pairs, the brk
// watermark, pipe-end bookkeeping, and signal counters. Fork deep-copies
// it, exactly as fork copies the real image — except that the abstract
// capabilities are region-relative, so relocation correctness is verified
// by comparing the real (relocated) capability against the child's own
// region base.
type shadow struct {
	heap    []byte
	caps    map[uint64]capTarget
	brk     int
	known   map[int]bool // pipe indices whose fds this μprocess inherited
	closedR map[int]bool
	closedW map[int]bool
	sigSent int
	sigGot  int
	sigArm  bool
}

// capTarget is the abstract value of a stored capability: heap-relative
// target offset and length. Region-independent, hence fork-portable.
type capTarget struct {
	off uint64
	len uint64
}

func newShadow(p *kernel.Proc) *shadow {
	return &shadow{
		heap:    make([]byte, uint64(p.Layout.Pages[kernel.SegHeap])*vm.PageSize),
		caps:    make(map[uint64]capTarget),
		brk:     p.BrkPages,
		known:   make(map[int]bool),
		closedR: make(map[int]bool),
		closedW: make(map[int]bool),
	}
}

func (sh *shadow) clone() *shadow {
	c := &shadow{
		heap:    append([]byte(nil), sh.heap...),
		caps:    make(map[uint64]capTarget, len(sh.caps)),
		brk:     sh.brk,
		known:   make(map[int]bool, len(sh.known)),
		closedR: make(map[int]bool, len(sh.closedR)),
		closedW: make(map[int]bool, len(sh.closedW)),
	}
	for k, v := range sh.caps {
		c.caps[k] = v
	}
	for k, v := range sh.known {
		c.known[k] = v
	}
	for k, v := range sh.closedR {
		c.closedR[k] = v
	}
	for k, v := range sh.closedW {
		c.closedW[k] = v
	}
	return c
}

// clearCaps drops shadow capabilities overlapping [off, off+n): byte
// writes destroy capability validity (the tag-clearing rule).
func (sh *shadow) clearCaps(off, n uint64) {
	first := off &^ 15
	for g := first; g < off+n; g += cap.GranuleSize {
		delete(sh.caps, g)
	}
}

// sortedCapOffsets returns the shadow capability offsets in ascending
// order: map iteration order must never influence op decisions.
func (sh *shadow) sortedCapOffsets() []uint64 {
	offs := make([]uint64, 0, len(sh.caps))
	for off := range sh.caps {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// procState is one μprocess executing its slice of the program.
type procState struct {
	h     *harness
	p     *kernel.Proc
	prog  []byte
	pos   int
	depth int
	sh    *shadow
}

// Byte-stream readers. Exhaustion returns zero, which ends the run loop.
func (ps *procState) rd8() uint64 {
	if ps.pos >= len(ps.prog) {
		return 0
	}
	b := ps.prog[ps.pos]
	ps.pos++
	return uint64(b)
}

func (ps *procState) rd16() uint64 { return ps.rd8()<<8 | ps.rd8() }

func (ps *procState) heapLen() uint64 {
	return uint64(ps.p.Layout.Pages[kernel.SegHeap]) * vm.PageSize
}

func (ps *procState) heapBase() uint64 {
	return ps.p.Layout.SegBase(ps.p.Region.Base, kernel.SegHeap)
}

// run interprets the μprocess's program slice, then performs the
// end-of-life differential audit.
func (ps *procState) run() {
	h := ps.h
	for ps.pos < len(ps.prog) && h.opsLeft > 0 {
		h.opsLeft--
		op := int(ps.rd8()) % numOps
		ps.step(op)
		if h.cfg.CheckEvery > 0 && (h.cfg.MaxOps-h.opsLeft)%h.cfg.CheckEvery == 0 {
			h.checks++
			if err := invariant.Check(h.k); err != nil {
				h.failf("mid-run (op %d, pid %d) %v", h.cfg.MaxOps-h.opsLeft, ps.p.PID, err)
			}
		}
	}
	ps.finish()
	h.procStats = append(h.procStats, ps.p.Stat())
	h.live--
}

func (ps *procState) step(op int) {
	switch op {
	case opHeapWrite:
		ps.heapWrite()
	case opHeapVerify:
		ps.heapVerify()
	case opCapStore:
		ps.capStore()
	case opCapVerify:
		ps.capVerify()
	case opDerefWrite:
		ps.deref(true)
	case opDerefVerify:
		ps.deref(false)
	case opFork:
		ps.fork()
	case opWait:
		ps.wait()
	case opPipeNew:
		ps.pipeNew()
	case opPipeWrite:
		ps.pipeWrite()
	case opPipeRead:
		ps.pipeRead()
	case opSbrk:
		ps.sbrk()
	case opSignal:
		ps.signal()
	case opYield:
		ps.h.k.Yield(ps.p)
	case opGetpid:
		if got := ps.h.k.Getpid(ps.p); got != ps.p.PID {
			ps.h.failf("pid %d: getpid returned %d", ps.p.PID, got)
		}
	case opAudit:
		ps.h.checks++
		if err := invariant.Check(ps.h.k); err != nil {
			ps.h.failf("audit op (pid %d) %v", ps.p.PID, err)
		}
	}
}

// span picks a granule-aligned (off, n) window inside the heap that stays
// within one page, so each access is atomic with respect to injected
// faults (no partially applied multi-page write to model).
func (ps *procState) span() (off, n uint64) {
	off = ps.rd16() % ps.heapLen() &^ 15
	n = 16 * (1 + ps.rd8()%16)
	if rem := vm.PageSize - off%vm.PageSize; n > rem {
		n = rem
	}
	if rem := ps.heapLen() - off; n > rem {
		n = rem
	}
	return off, n
}

func (ps *procState) heapWrite() {
	off, n := ps.span()
	fill := byte(ps.rd8())
	buf := bytes.Repeat([]byte{fill}, int(n))
	if err := ps.p.Store(ps.p.HeapCap, off, buf); err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: heap write [%#x,+%d): %v", ps.p.PID, off, n, err)
		}
		return
	}
	copy(ps.sh.heap[off:], buf)
	ps.sh.clearCaps(off, n)
}

func (ps *procState) heapVerify() {
	off, n := ps.span()
	buf := make([]byte, n)
	if err := ps.p.Load(ps.p.HeapCap, off, buf); err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: heap read [%#x,+%d): %v", ps.p.PID, off, n, err)
		}
		return
	}
	ps.compareHeap(off, buf)
}

// compareHeap checks buf (read from [off, off+len)) against the shadow,
// skipping granules that hold capabilities: under CoPA a plain data read
// of an unrelocated pointer legitimately observes the parent's address
// bytes (the paper's documented CoPA caveat — only capability loads
// trap), so pointer bytes are compared through capVerify instead.
func (ps *procState) compareHeap(off uint64, buf []byte) {
	for g := off &^ 15; g < off+uint64(len(buf)); g += cap.GranuleSize {
		if _, isCap := ps.sh.caps[g]; isCap {
			continue
		}
		lo, hi := g, g+cap.GranuleSize
		if lo < off {
			lo = off
		}
		if end := off + uint64(len(buf)); hi > end {
			hi = end
		}
		if !bytes.Equal(buf[lo-off:hi-off], ps.sh.heap[lo:hi]) {
			ps.h.failf("pid %d: heap divergence at [%#x,%#x): got %x want %x",
				ps.p.PID, lo, hi, buf[lo-off:hi-off], ps.sh.heap[lo:hi])
			return
		}
	}
}

func (ps *procState) capStore() {
	hl := ps.heapLen()
	a := ps.rd16() % hl &^ 15
	b := ps.rd16() % hl &^ 15
	l := 16 * (1 + ps.rd8()%255)
	if b+l > hl {
		l = hl - b
	}
	c, err := ps.p.HeapCap.SetAddr(ps.heapBase() + b).SetBounds(l)
	if err != nil {
		ps.h.failf("pid %d: derive heap cap off=%#x len=%d: %v", ps.p.PID, b, l, err)
		return
	}
	if err := ps.p.StoreCap(ps.p.HeapCap, a, c); err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: cap store at %#x: %v", ps.p.PID, a, err)
		}
		return
	}
	ps.sh.caps[a] = capTarget{off: b, len: l}
}

func (ps *procState) capVerify() {
	a := ps.rd16() % ps.heapLen() &^ 15
	c, err := ps.p.LoadCap(ps.p.HeapCap, a)
	if err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: cap load at %#x: %v", ps.p.PID, a, err)
		}
		return
	}
	want, ok := ps.sh.caps[a]
	if !ok {
		if c.Tag() {
			ps.h.failf("pid %d: cap load at %#x: tagged capability where shadow has none", ps.p.PID, a)
		}
		return
	}
	// The capability must have followed the μprocess across every fork:
	// cursor, base, and length all region-relative intact (§3.5 step 2 /
	// §4.2 relocation transparency).
	if !c.Tag() {
		ps.h.failf("pid %d: cap load at %#x: tag lost (shadow expects target %#x+%d)", ps.p.PID, a, want.off, want.len)
		return
	}
	wantAddr := ps.heapBase() + want.off
	if c.Addr() != wantAddr || c.Base() != wantAddr || c.Len() != want.len {
		ps.h.failf("pid %d: cap load at %#x: got addr=%#x base=%#x len=%d, want addr=base=%#x len=%d",
			ps.p.PID, a, c.Addr(), c.Base(), c.Len(), wantAddr, want.len)
	}
}

// deref loads a stored capability and accesses memory THROUGH it: the
// end-to-end proof that relocated pointers reference the child's own copy.
func (ps *procState) deref(write bool) {
	offs := ps.sh.sortedCapOffsets()
	if len(offs) == 0 {
		return
	}
	a := offs[ps.rd8()%uint64(len(offs))]
	want := ps.sh.caps[a]
	c, err := ps.p.LoadCap(ps.p.HeapCap, a)
	if err != nil || !c.Tag() {
		if err != nil && !tolerable(err) {
			ps.h.failf("pid %d: deref cap load at %#x: %v", ps.p.PID, a, err)
		}
		return
	}
	d := (ps.rd16() % want.len) &^ 15
	n := 16 * (1 + ps.rd8()%8)
	tgt := want.off + d
	if rem := want.len - d; n > rem {
		n = rem &^ 15
	}
	if rem := vm.PageSize - tgt%vm.PageSize; n > rem {
		n = rem
	}
	if n == 0 {
		return
	}
	if write {
		fill := byte(ps.rd8())
		buf := bytes.Repeat([]byte{fill}, int(n))
		if err := ps.p.Store(c, d, buf); err != nil {
			if !tolerable(err) {
				ps.h.failf("pid %d: deref write via %#x to %#x: %v", ps.p.PID, a, tgt, err)
			}
			return
		}
		copy(ps.sh.heap[tgt:], buf)
		ps.sh.clearCaps(tgt, n)
		return
	}
	buf := make([]byte, n)
	if err := ps.p.Load(c, d, buf); err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: deref read via %#x from %#x: %v", ps.p.PID, a, tgt, err)
		}
		return
	}
	ps.compareHeap(tgt, buf)
}

func (ps *procState) fork() {
	h := ps.h
	if ps.depth >= maxForkDepth || h.live >= maxLiveProcs || h.forks >= maxTotalForks {
		return
	}
	// Carve the child's program slice out of the parent's remainder.
	childLen := int(ps.rd16() % 1024)
	if rem := len(ps.prog) - ps.pos; childLen > rem {
		childLen = rem
	}
	childProg := ps.prog[ps.pos : ps.pos+childLen]
	ps.pos += childLen
	// Snapshot the shadow before the call: fork itself must not change the
	// parent-visible image, and the child model is the parent model frozen
	// at the fork instant.
	snap := ps.sh.clone()
	depth := ps.depth + 1
	_, err := h.k.Fork(ps.p, func(cp *kernel.Proc) {
		cs := &procState{h: h, p: cp, prog: childProg, depth: depth, sh: snap}
		cs.run()
	})
	if err != nil {
		if !tolerable(err) {
			h.failf("pid %d: fork: %v", ps.p.PID, err)
		}
		return
	}
	h.forks++
	h.live++
	if h.live > h.maxLive {
		h.maxLive = h.live
	}
}

func (ps *procState) wait() {
	if len(ps.p.Children()) == 0 {
		if _, _, err := ps.h.k.Wait(ps.p); !errors.Is(err, kernel.ErrNoChildren) && !tolerable(err) {
			ps.h.failf("pid %d: wait with no children: %v", ps.p.PID, err)
		}
		return
	}
	// Children always terminate (finite programs, no unbounded blocking),
	// so this wait cannot deadlock.
	if _, _, err := ps.h.k.Wait(ps.p); err != nil && !tolerable(err) {
		ps.h.failf("pid %d: wait: %v", ps.p.PID, err)
	}
}

func (ps *procState) pipeNew() {
	h := ps.h
	if len(h.pipes) >= maxPipes {
		return
	}
	r, w, err := h.k.Pipe(ps.p)
	if err != nil {
		if !tolerable(err) {
			h.failf("pid %d: pipe: %v", ps.p.PID, err)
		}
		return
	}
	idx := len(h.pipes)
	h.pipes = append(h.pipes, &pipeState{rfd: r, wfd: w, reader: ps.p.PID})
	ps.sh.known[idx] = true
}

// pickPipe returns a pipe index this μprocess inherited fds for, or -1.
func (ps *procState) pickPipe() int {
	var idxs []int
	for i := range ps.h.pipes {
		if ps.sh.known[i] {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[ps.rd8()%uint64(len(idxs))]
}

func (ps *procState) pipeWrite() {
	i := ps.pickPipe()
	if i < 0 {
		return
	}
	st := ps.h.pipes[i]
	n := int(1 + ps.rd8()%255)
	if st.dead || ps.sh.closedW[i] || st.outstanding+n > pipeHighWater {
		return
	}
	buf := bytes.Repeat([]byte{byte(i)}, n)
	got, err := ps.h.k.Write(ps.p, st.wfd, buf)
	if err != nil {
		if errors.Is(err, kernel.ErrPipeClosed) {
			st.dead = true
			return
		}
		if !tolerable(err) {
			ps.h.failf("pid %d: pipe %d write: %v", ps.p.PID, i, err)
		}
		return
	}
	if got != n {
		ps.h.failf("pid %d: pipe %d short write: %d of %d", ps.p.PID, i, got, n)
		return
	}
	st.outstanding += n
}

func (ps *procState) pipeRead() {
	i := ps.pickPipe()
	if i < 0 {
		return
	}
	st := ps.h.pipes[i]
	// Only the creator reads: within its sequential task, tracked
	// outstanding bytes are guaranteed buffered, so the read never blocks.
	if st.reader != ps.p.PID || ps.sh.closedR[i] || st.outstanding == 0 {
		return
	}
	n := st.outstanding
	if n > 2048 {
		n = 2048
	}
	buf := make([]byte, n)
	got, err := ps.h.k.Read(ps.p, st.rfd, buf)
	if err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: pipe %d read: %v", ps.p.PID, i, err)
		}
		return
	}
	if got != n {
		ps.h.failf("pid %d: pipe %d short read: %d of %d buffered", ps.p.PID, i, got, n)
		return
	}
	st.outstanding -= got
}

func (ps *procState) sbrk() {
	pages := int(ps.rd8()%8) - 3
	pred := ps.sh.brk+pages > ps.p.Layout.Pages[kernel.SegHeap]
	err := ps.h.k.Sbrk(ps.p, pages)
	if errors.Is(err, kernel.ErrInterrupted) {
		return // no work done on either side
	}
	if pred != (err != nil) {
		ps.h.failf("pid %d: sbrk(%d) at brk=%d: got err=%v, shadow predicted failure=%v",
			ps.p.PID, pages, ps.sh.brk, err, pred)
		return
	}
	if err == nil {
		ps.sh.brk += pages
		if ps.p.BrkPages != ps.sh.brk {
			ps.h.failf("pid %d: brk divergence: kernel %d shadow %d", ps.p.PID, ps.p.BrkPages, ps.sh.brk)
		}
	}
}

func (ps *procState) signal() {
	h := ps.h
	if !ps.sh.sigArm {
		// Handlers are per-process state and do not survive fork here, so
		// every μprocess arms its own.
		err := h.k.Sigaction(ps.p, kernel.SIGUSR1, func(*kernel.Proc, kernel.Signal) {
			ps.sh.sigGot++
		})
		if err != nil {
			h.failf("pid %d: sigaction: %v", ps.p.PID, err)
			return
		}
		ps.sh.sigArm = true
		return
	}
	if err := h.k.SignalPID(ps.p, ps.p.PID, kernel.SIGUSR1); err != nil {
		h.failf("pid %d: self-signal: %v", ps.p.PID, err)
		return
	}
	ps.sh.sigSent++
}

// finish performs the end-of-life differential audit: a final kernel entry
// flushes pending signals, then the entire heap and every stored
// capability are verified against the shadow.
func (ps *procState) finish() {
	ps.h.k.Getpid(ps.p) // flush pending signal deliveries
	// Refresh the smaps gauges so the end-of-life ProcStat snapshot carries
	// this μprocess's final footprint, and sanity-check the decomposition.
	if r, err := ps.h.k.Smaps(ps.p, 0); err != nil {
		if !tolerable(err) {
			ps.h.failf("pid %d: smaps: %v", ps.p.PID, err)
		}
	} else if r.Total.USSBytes > r.Total.PSSBytes || r.Total.PSSBytes > r.Total.RSSBytes {
		ps.h.failf("pid %d: smaps ordering violated: uss=%d pss=%d rss=%d",
			ps.p.PID, r.Total.USSBytes, r.Total.PSSBytes, r.Total.RSSBytes)
	}
	if ps.sh.sigGot != ps.sh.sigSent {
		ps.h.failf("pid %d: signal divergence: delivered %d of %d sent", ps.p.PID, ps.sh.sigGot, ps.sh.sigSent)
	}
	hl := ps.heapLen()
	buf := make([]byte, vm.PageSize)
	for off := uint64(0); off < hl; off += vm.PageSize {
		if err := ps.p.Load(ps.p.HeapCap, off, buf); err != nil {
			if !tolerable(err) {
				ps.h.failf("pid %d: final heap read at %#x: %v", ps.p.PID, off, err)
			}
			continue
		}
		ps.compareHeap(off, buf)
	}
	for _, a := range ps.sh.sortedCapOffsets() {
		want := ps.sh.caps[a]
		c, err := ps.p.LoadCap(ps.p.HeapCap, a)
		if err != nil {
			if !tolerable(err) {
				ps.h.failf("pid %d: final cap load at %#x: %v", ps.p.PID, a, err)
			}
			continue
		}
		wantAddr := ps.heapBase() + want.off
		if !c.Tag() || c.Addr() != wantAddr || c.Len() != want.len {
			ps.h.failf("pid %d: final cap at %#x: got tag=%v addr=%#x len=%d, want addr=%#x len=%d",
				ps.p.PID, a, c.Tag(), c.Addr(), c.Len(), wantAddr, want.len)
		}
	}
}
