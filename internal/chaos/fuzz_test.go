package chaos

import (
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
)

// modeFor / isoFor derive a copy mode and isolation level from fuzz input
// so the fuzzer explores the full matrix, not one fixed cell.
func modeFor(x uint64) core.CopyMode        { return allModes[x%uint64(len(allModes))] }
func isoFor(x uint64) kernel.IsolationLevel { return allIsos[x%uint64(len(allIsos))] }

// FuzzSyscalls feeds arbitrary byte programs to the syscall-sequence
// interpreter with no fault injection: every input must either run clean
// or be rejected — any shadow-model divergence, invariant violation,
// frame leak, or panic is a finding.
func FuzzSyscalls(f *testing.F) {
	f.Add(int64(1), []byte{6, 0, 64, 2, 0, 16, 0, 32, 0, 64, 3, 0, 16, 7, 15})
	f.Add(int64(2), []byte("fork-and-scribble: \x06\x00\x40\x00\x11\x22\x33\x44\x07"))
	f.Add(int64(3), []byte{8, 9, 0, 100, 10, 11, 4, 12, 5})
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		if len(prog) == 0 || len(prog) > 8192 {
			t.Skip()
		}
		cfg := Config{
			Mode:   modeFor(uint64(seed)),
			Iso:    isoFor(uint64(seed) >> 8),
			Seed:   seed,
			MaxOps: 1200,
		}
		if _, err := Run(cfg, prog); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzFaultSchedule fuzzes the injection plan itself alongside the
// program: arbitrary fault rates (including "every single opportunity")
// must never corrupt kernel state — only produce tolerated errors.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(11), uint16(3), uint16(5), uint16(7), uint16(9), true, []byte{6, 0, 32, 0, 1, 2, 3, 7})
	f.Add(int64(12), uint16(1), uint16(1), uint16(1), uint16(1), false, []byte{6, 6, 6, 7, 7, 7})
	f.Fuzz(func(t *testing.T, seed int64, alloc, sys, mp, spur uint16, poison bool, prog []byte) {
		if len(prog) == 0 || len(prog) > 4096 {
			t.Skip()
		}
		cfg := Config{
			Mode: modeFor(uint64(seed)),
			Iso:  isoFor(uint64(seed) >> 8),
			Seed: seed,
			Plan: Plan{
				AllocFailEvery:     int(alloc % 512),
				SyscallErrEvery:    int(sys % 512),
				MapFailEvery:       int(mp % 512),
				SpuriousFaultEvery: int(spur % 512),
				PoisonFreed:        poison,
			},
			MaxOps: 800,
		}
		if _, err := Run(cfg, prog); err != nil {
			t.Fatal(err)
		}
	})
}
