package chaos

import (
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/obs/memmap"
	"ufork/internal/tmem"
)

// The provenance-plane invariants must have teeth: a kernel that leaks a
// frame out of the PSS decomposition, or whose plane ledger drifts from
// ground truth, must be caught by the audit with a named violation.

// TestInvariantCatchesPSSLeak: an allocation that never reaches a page
// table breaks ΣPSS == live frames.
func TestInvariantCatchesPSSLeak(t *testing.T) {
	cfg := Config{Mode: core.CopyOnAccess, Iso: kernel.IsolationFull, Seed: 11,
		MaxOps: 400, ProgBytes: 1500, CheckEvery: 50}
	cfg.mutate = func(k *kernel.Kernel) { _, _ = k.Mem.AllocFrame() }
	_, err := Run(cfg, nil)
	if err == nil {
		t.Fatal("kernel leaking a frame passed the audit; pss invariant has no teeth")
	}
	if !strings.Contains(err.Error(), "pss conservation") {
		t.Fatalf("failure does not name the pss conservation law:\n%v", err)
	}
}

// TestInvariantCatchesPlaneDrift: a provenance ledger that records a frame
// the allocator never handed out must be flagged against ground truth.
func TestInvariantCatchesPlaneDrift(t *testing.T) {
	cfg := Config{Mode: core.CopyOnPointerAccess, Iso: kernel.IsolationFull, Seed: 12,
		MaxOps: 400, ProgBytes: 1500, CheckEvery: 50}
	cfg.mutate = func(k *kernel.Kernel) {
		k.Memmap.OnAlloc(tmem.PFN(1<<20), 1, 0, memmap.OriginUnknown)
	}
	_, err := Run(cfg, nil)
	if err == nil {
		t.Fatal("kernel with a drifted provenance ledger passed the audit")
	}
	if !strings.Contains(err.Error(), "memmap plane") {
		t.Fatalf("failure does not name the memmap plane cross-check:\n%v", err)
	}
}
