package minipy

import (
	"fmt"
	"math"
	"strconv"

	"ufork/internal/cap"
)

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Value kinds. Every minipy value is a 32-byte record: kind, float64
// payload, and (for heap kinds) a capability to the object body. Records
// live in simulated memory — variable cells, list elements — so forking a
// warm interpreter exercises relocation on the whole object graph.
const (
	kNum uint64 = iota
	kStr
	kList
	kNone
)

// valueSize is the in-memory footprint of one value record:
// [kind u64 | f64 bits u64 | object capability (16 B)].
const valueSize = 2 * cap.GranuleSize

// Record field offsets.
const (
	valKindOff = 0
	valNumOff  = 8
	valObjOff  = cap.GranuleSize
)

// Value is the host-side view of a minipy value. For heap kinds, obj
// points at the object body in simulated memory.
type Value struct {
	kind uint64
	num  float64
	obj  cap.Capability
}

// Num builds a numeric value.
func Num(f float64) Value { return Value{kind: kNum, num: f} }

// None is the null value.
func None() Value { return Value{kind: kNone} }

// IsNum reports whether the value is numeric.
func (v Value) IsNum() bool { return v.kind == kNum }

// IsStr reports whether the value is a string.
func (v Value) IsStr() bool { return v.kind == kStr }

// IsList reports whether the value is a list.
func (v Value) IsList() bool { return v.kind == kList }

// Float returns the numeric payload (0 for non-numbers).
func (v Value) Float() float64 {
	if v.kind == kNum {
		return v.num
	}
	return 0
}

// Truthy implements Python truthiness: nonzero numbers, nonempty
// strings/lists.
func (rt *Runtime) truthy(v Value) (bool, error) {
	switch v.kind {
	case kNum:
		return v.num != 0, nil
	case kNone:
		return false, nil
	case kStr, kList:
		n, err := rt.objLen(v)
		return n > 0, err
	case kDict:
		n, err := rt.p.LoadU64(v.obj, dictCountOff)
		return n > 0, err
	default:
		return false, fmt.Errorf("minipy: bad value kind %d", v.kind)
	}
}

// String object layout: [len u64 | pad u64 | bytes...].
// List object layout:   [len u64 | cap u64 | elems capability], where the
// elems block is an array of 32-byte value records.
const (
	objLenOff    = 0
	objCapOff    = 8  // list capacity
	strBytesOff  = 16 // string payload start
	listElemsOff = 16 // capability to the elements block
)

// objLen reads a heap object's length field.
func (rt *Runtime) objLen(v Value) (uint64, error) {
	return rt.p.LoadU64(v.obj, objLenOff)
}

// NewString allocates a string value in the runtime's simulated memory —
// the way host-side callers (tests, embedders) build string arguments.
func (rt *Runtime) NewString(str string) (Value, error) { return rt.newStr([]byte(str)) }

// newStr allocates a string object holding b.
func (rt *Runtime) newStr(b []byte) (Value, error) {
	blk, err := rt.a.Alloc(uint64(strBytesOff + len(b)))
	if err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreU64(blk, objLenOff, uint64(len(b))); err != nil {
		return Value{}, err
	}
	if len(b) > 0 {
		if err := rt.p.Store(blk, strBytesOff, b); err != nil {
			return Value{}, err
		}
	}
	return Value{kind: kStr, obj: blk}, nil
}

// strBytes reads a string object's payload.
func (rt *Runtime) strBytes(v Value) ([]byte, error) {
	n, err := rt.objLen(v)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if n > 0 {
		if err := rt.p.Load(v.obj, strBytesOff, b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// newList allocates a list with the given elements.
func (rt *Runtime) newList(elems []Value) (Value, error) {
	capacity := len(elems)
	if capacity < 4 {
		capacity = 4
	}
	hdr, err := rt.a.Alloc(uint64(listElemsOff + cap.GranuleSize))
	if err != nil {
		return Value{}, err
	}
	arr, err := rt.a.Alloc(uint64(capacity) * valueSize)
	if err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreU64(hdr, objLenOff, uint64(len(elems))); err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreU64(hdr, objCapOff, uint64(capacity)); err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreCap(hdr, listElemsOff, arr); err != nil {
		return Value{}, err
	}
	for i, e := range elems {
		if err := rt.storeValueAt(arr, uint64(i)*valueSize, e); err != nil {
			return Value{}, err
		}
	}
	return Value{kind: kList, obj: hdr}, nil
}

// listElems loads the elements-array capability.
func (rt *Runtime) listElems(v Value) (cap.Capability, error) {
	return rt.p.LoadCap(v.obj, listElemsOff)
}

// listIndex reads element i with bounds and negative-index handling.
func (rt *Runtime) listIndex(v Value, idx float64) (Value, error) {
	n, err := rt.objLen(v)
	if err != nil {
		return Value{}, err
	}
	i, err := normIndex(idx, n)
	if err != nil {
		return Value{}, err
	}
	arr, err := rt.listElems(v)
	if err != nil {
		return Value{}, err
	}
	return rt.loadValueAt(arr, i*valueSize)
}

// listStore writes element i.
func (rt *Runtime) listStore(v Value, idx float64, e Value) error {
	n, err := rt.objLen(v)
	if err != nil {
		return err
	}
	i, err := normIndex(idx, n)
	if err != nil {
		return err
	}
	arr, err := rt.listElems(v)
	if err != nil {
		return err
	}
	return rt.storeValueAt(arr, i*valueSize, e)
}

// listAppend grows the list by one element, doubling the elements block
// when full (the allocator churn a real interpreter produces).
func (rt *Runtime) listAppend(v Value, e Value) error {
	n, err := rt.objLen(v)
	if err != nil {
		return err
	}
	capacity, err := rt.p.LoadU64(v.obj, objCapOff)
	if err != nil {
		return err
	}
	arr, err := rt.listElems(v)
	if err != nil {
		return err
	}
	if n == capacity {
		newCap := capacity * 2
		newArr, err := rt.a.Alloc(newCap * valueSize)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			ev, err := rt.loadValueAt(arr, i*valueSize)
			if err != nil {
				return err
			}
			if err := rt.storeValueAt(newArr, i*valueSize, ev); err != nil {
				return err
			}
		}
		if err := rt.a.Free(arr); err != nil {
			return err
		}
		if err := rt.p.StoreCap(v.obj, listElemsOff, newArr); err != nil {
			return err
		}
		if err := rt.p.StoreU64(v.obj, objCapOff, newCap); err != nil {
			return err
		}
		arr = newArr
	}
	if err := rt.storeValueAt(arr, n*valueSize, e); err != nil {
		return err
	}
	return rt.p.StoreU64(v.obj, objLenOff, n+1)
}

// strIndex returns the 1-character string at idx.
func (rt *Runtime) strIndex(v Value, idx float64) (Value, error) {
	n, err := rt.objLen(v)
	if err != nil {
		return Value{}, err
	}
	i, err := normIndex(idx, n)
	if err != nil {
		return Value{}, err
	}
	b := make([]byte, 1)
	if err := rt.p.Load(v.obj, strBytesOff+i, b); err != nil {
		return Value{}, err
	}
	return rt.newStr(b)
}

// normIndex applies Python index semantics (negatives from the end).
func normIndex(idx float64, n uint64) (uint64, error) {
	i := int64(idx)
	if i < 0 {
		i += int64(n)
	}
	if i < 0 || uint64(i) >= n {
		return 0, fmt.Errorf("minipy: index %d out of range (len %d)", int64(idx), n)
	}
	return uint64(i), nil
}

// loadValueAt reads one 32-byte value record from simulated memory. The
// capability load in the object slot is exactly the access CoPA's barrier
// intercepts in forked children.
func (rt *Runtime) loadValueAt(base cap.Capability, off uint64) (Value, error) {
	kind, err := rt.p.LoadU64(base, off+valKindOff)
	if err != nil {
		return Value{}, err
	}
	bits, err := rt.p.LoadU64(base, off+valNumOff)
	if err != nil {
		return Value{}, err
	}
	v := Value{kind: kind, num: f64frombits(bits)}
	if kind == kStr || kind == kList || kind == kDict {
		obj, err := rt.p.LoadCap(base, off+valObjOff)
		if err != nil {
			return Value{}, err
		}
		if !obj.Tag() {
			return Value{}, fmt.Errorf("minipy: corrupt object reference")
		}
		v.obj = obj
	}
	return v, nil
}

// storeValueAt writes one 32-byte value record.
func (rt *Runtime) storeValueAt(base cap.Capability, off uint64, v Value) error {
	if err := rt.p.StoreU64(base, off+valKindOff, v.kind); err != nil {
		return err
	}
	if err := rt.p.StoreU64(base, off+valNumOff, f64bits(v.num)); err != nil {
		return err
	}
	return rt.p.StoreCap(base, off+valObjOff, v.obj)
}

// Format renders a value the way print does.
func (rt *Runtime) Format(v Value) (string, error) {
	switch v.kind {
	case kNum:
		return strconv.FormatFloat(v.num, 'g', -1, 64), nil
	case kNone:
		return "None", nil
	case kStr:
		b, err := rt.strBytes(v)
		return string(b), err
	case kList:
		n, err := rt.objLen(v)
		if err != nil {
			return "", err
		}
		s := "["
		for i := uint64(0); i < n; i++ {
			e, err := rt.listIndex(v, float64(i))
			if err != nil {
				return "", err
			}
			fs, err := rt.Format(e)
			if err != nil {
				return "", err
			}
			if e.kind == kStr {
				fs = "'" + fs + "'"
			}
			if i > 0 {
				s += ", "
			}
			s += fs
		}
		return s + "]", nil
	case kDict:
		return rt.formatDict(v)
	default:
		return "", fmt.Errorf("minipy: bad value kind %d", v.kind)
	}
}
