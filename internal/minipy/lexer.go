// Package minipy is a small Python-subset interpreter standing in for
// MicroPython in the FaaS experiments (§5.1).
//
// The pipeline is conventional — lexer → recursive-descent parser → stack
// bytecode — but the runtime is not: the compiled program blob, the global
// environment, every variable cell, and every heap object (strings, lists,
// dictionaries) live in *simulated* μprocess memory, allocated through the
// capability-bounded heap allocator. Forking a warm interpreter (the
// Zygote pattern) therefore exercises exactly the machinery the paper
// describes: environment tables, list element arrays and dict buckets are
// pages full of capabilities that μFork must relocate, while the bytecode
// and string-literal pages are plain data that CoPA lets parent and
// children share.
package minipy

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokName
	tokNumber
	tokString
	tokOp      // operators and punctuation
	tokKeyword // def, return, for, while, if, elif, else, in, import, pass, break, continue, and, or, not, True, False, None
)

var keywords = map[string]bool{
	"def": true, "return": true, "for": true, "while": true, "if": true,
	"elif": true, "else": true, "in": true, "import": true, "pass": true,
	"break": true, "continue": true, "and": true, "or": true, "not": true,
	"True": true, "False": true, "None": true, "from": true, "as": true,
	"global": true,
}

// token is one lexical unit.
type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "EOF"
	case tokNewline:
		return "NEWLINE"
	case tokIndent:
		return "INDENT"
	case tokDedent:
		return "DEDENT"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with its line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minipy: line %d: %s", e.Line, e.Msg)
}

// lex tokenizes source, emitting INDENT/DEDENT via the usual indentation
// stack.
func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		// Strip comments.
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		if strings.TrimSpace(raw) == "" {
			continue // blank lines produce no tokens
		}
		// Indentation.
		indent := 0
		for _, r := range raw {
			if r == ' ' {
				indent++
			} else if r == '\t' {
				indent += 8
			} else {
				break
			}
		}
		cur := indents[len(indents)-1]
		switch {
		case indent > cur:
			indents = append(indents, indent)
			toks = append(toks, token{kind: tokIndent, line: line})
		case indent < cur:
			for len(indents) > 1 && indents[len(indents)-1] > indent {
				indents = indents[:len(indents)-1]
				toks = append(toks, token{kind: tokDedent, line: line})
			}
			if indents[len(indents)-1] != indent {
				return nil, &SyntaxError{line, "inconsistent indentation"}
			}
		}
		body := strings.TrimLeft(raw, " \t")
		if err := lexLine(body, line, &toks); err != nil {
			return nil, err
		}
		toks = append(toks, token{kind: tokNewline, line: line})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{kind: tokDedent, line: len(lines)})
	}
	toks = append(toks, token{kind: tokEOF, line: len(lines)})
	return toks, nil
}

// twoCharOps are the multi-byte operators, longest match first.
var twoCharOps = []string{"**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/="}

func lexLine(s string, line int, toks *[]token) error {
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isNameStart(c):
			j := i + 1
			for j < len(s) && isNameChar(s[j]) {
				j++
			}
			word := s[i:j]
			kind := tokName
			if keywords[word] {
				kind = tokKeyword
			}
			*toks = append(*toks, token{kind: kind, text: word, line: line})
			i = j
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i
			seenDot, seenExp := false, false
			for j < len(s) {
				d := s[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
				} else if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < len(s) && (s[j] == '+' || s[j] == '-') {
						j++
					}
				} else {
					break
				}
			}
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return &SyntaxError{line, "bad number " + s[i:j]}
			}
			*toks = append(*toks, token{kind: tokNumber, text: s[i:j], num: v, line: line})
			i = j
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < len(s) && s[j] != q {
				j++
			}
			if j >= len(s) {
				return &SyntaxError{line, "unterminated string"}
			}
			*toks = append(*toks, token{kind: tokString, text: s[i+1 : j], line: line})
			i = j + 1
		default:
			matched := false
			for _, op := range twoCharOps {
				if strings.HasPrefix(s[i:], op) {
					*toks = append(*toks, token{kind: tokOp, text: op, line: line})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%()[]{},:.<>=", rune(c)) {
				*toks = append(*toks, token{kind: tokOp, text: string(c), line: line})
				i++
			} else {
				return &SyntaxError{line, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}
