package minipy_test

import (
	"strings"
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/minipy"
)

// evalString runs src and returns str(result) computed in the VM.
func evalString(t *testing.T, src string) string {
	t.Helper()
	var got string
	withRuntime(t, src+"\ndef get_result_str():\n    return str(result)\n",
		func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
			idx, ok := pr.FuncIndex("get_result_str")
			if !ok {
				t.Fatal("helper missing")
			}
			v, err := rt.CallValue(idx)
			if err != nil {
				t.Fatalf("get_result_str: %v", err)
			}
			s, err := rt.Format(v)
			if err != nil {
				t.Fatalf("format: %v", err)
			}
			got = s
		})
	return got
}

func TestStringLiteralsAndConcat(t *testing.T) {
	cases := []struct{ src, want string }{
		{`result = "hello"`, "hello"},
		{`result = "foo" + "bar"`, "foobar"},
		{`result = "a" + "b" + "c"`, "abc"},
		{`x = "rep"` + "\n" + `result = x + x`, "reprep"},
	}
	for _, tc := range cases {
		if got := evalString(t, tc.src); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestStringOps(t *testing.T) {
	src := `
s = "capability"
result = 0
if s == "capability":
    result += 1
if s != "pointer":
    result += 10
if "abc" < "abd":
    result += 100
result += len(s)
result += ord("A")
` + resultFooter
	// 1 + 10 + 100 + 10 + 65 = 186
	if got := evalGlobal(t, src); got != 186 {
		t.Fatalf("got %v, want 186", got)
	}
}

func TestStringIndexAndChr(t *testing.T) {
	src := `result = "xyz"[1] + chr(33)`
	if got := evalString(t, src); got != "y!" {
		t.Fatalf("got %q", got)
	}
}

func TestListBasics(t *testing.T) {
	src := `
xs = [10, 20, 30]
xs[1] = 21
xs.append(40)
result = len(xs) * 1000 + xs[0] + xs[1] + xs[2] + xs[3]
` + resultFooter
	// 4*1000 + 10+21+30+40 = 4101
	if got := evalGlobal(t, src); got != 4101 {
		t.Fatalf("got %v, want 4101", got)
	}
}

func TestListGrowthAcrossCapacity(t *testing.T) {
	src := `
xs = []
for i in range(50):
    xs.append(i * i)
total = 0
for i in range(len(xs)):
    total += xs[i]
result = total
` + resultFooter
	// sum of i^2 for i in 0..49 = 49*50*99/6 = 40425
	if got := evalGlobal(t, src); got != 40425 {
		t.Fatalf("got %v, want 40425", got)
	}
}

func TestListOfStringsAndNesting(t *testing.T) {
	src := `
words = ["fork", "in", "one", "space"]
nested = [[1, 2], [3, 4]]
result = words[0] + "-" + words[3] + str(nested[1][0])
`
	if got := evalString(t, src); got != "fork-space3" {
		t.Fatalf("got %q", got)
	}
}

func TestListConcatAndPop(t *testing.T) {
	src := `
a = [1, 2]
b = [3]
c = a + b
last = c.pop()
result = len(c) * 100 + last
` + resultFooter
	if got := evalGlobal(t, src); got != 203 {
		t.Fatalf("got %v, want 203", got)
	}
}

func TestNegativeIndex(t *testing.T) {
	src := `
xs = [5, 6, 7]
result = xs[-1] * 10 + ord("hi"[-1])
` + resultFooter
	// 7*10 + 'i'(105) = 175
	if got := evalGlobal(t, src); got != 175 {
		t.Fatalf("got %v, want 175", got)
	}
}

func TestIndexOutOfRangeErrors(t *testing.T) {
	withRuntime(t, `
def boom():
    xs = [1]
    return xs[5]
`, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		if _, err := rt.Call(pr, "boom"); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("got %v, want out-of-range", err)
		}
	})
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		`result = "a" + 1`,
		`result = [1] + "x"`,
		`result = 5[0]`,
		`x = 3` + "\n" + `x.append(1)`,
	}
	for _, src := range bad {
		src := src
		withRuntime(t, "def run_bad():\n"+indent(src)+"\n    return 0\n",
			func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
				if _, err := rt.Call(pr, "run_bad"); err == nil {
					t.Errorf("%q should fail at runtime", src)
				}
			})
	}
}

func indent(src string) string {
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}

// TestObjectGraphSurvivesFork is the headline property: a zygote builds a
// nested list-of-strings object graph; each forked child walks AND mutates
// its own relocated copy, and the zygote's graph stays intact. This drives
// μFork's relocation over pages dense with value records: list headers,
// element arrays, string bodies — every one a capability chain.
func TestObjectGraphSurvivesFork(t *testing.T) {
	src := `
graph = []
for i in range(20):
    inner = []
    inner.append("node" + str(i))
    inner.append(i * 1.5)
    graph.append(inner)

def checksum():
    total = 0
    for i in range(len(graph)):
        total += ord(graph[i][0][0]) + graph[i][1]
    return total

def mutate_graph():
    global graph
    for i in range(len(graph)):
        graph[i][1] = 0
    graph.append(["extra", -1])
    return len(graph)
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		base, err := rt.Call(pr, "checksum")
		if err != nil {
			t.Fatalf("zygote checksum: %v", err)
		}
		for i := 0; i < 3; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				crt, err := minipy.Attach(c)
				if err != nil {
					t.Errorf("child attach: %v", err)
					return
				}
				got, err := crt.Call(pr, "checksum")
				if err != nil {
					t.Errorf("child checksum: %v", err)
					return
				}
				if got != base {
					t.Errorf("child graph checksum %v != zygote %v", got, base)
					return
				}
				n, err := crt.Call(pr, "mutate_graph")
				if err != nil {
					t.Errorf("child mutate: %v", err)
					return
				}
				if n != 21 {
					t.Errorf("child graph len %v after mutate", n)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
			// After each child, the zygote's graph is unchanged.
			got, err := rt.Call(pr, "checksum")
			if err != nil {
				t.Fatalf("zygote recheck: %v", err)
			}
			if got != base {
				t.Fatalf("zygote graph corrupted by child %d: %v != %v", i, got, base)
			}
		}
	})
}

// TestStringLiteralsSharedAcrossFork: literal strings are capabilities
// into the program blob; children read them from CoPA-shared pages without
// per-child copies of the text.
func TestStringLiteralsSharedAcrossFork(t *testing.T) {
	src := `
def greet():
    return "greetings from the single address space"

def greet_len():
    return len(greet())
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			crt, err := minipy.Attach(c)
			if err != nil {
				t.Errorf("attach: %v", err)
				return
			}
			idx, _ := pr.FuncIndex("greet")
			v, err := crt.CallValue(idx)
			if err != nil {
				t.Errorf("child greet: %v", err)
				return
			}
			s, err := crt.Format(v)
			if err != nil {
				t.Errorf("format: %v", err)
				return
			}
			if s != "greetings from the single address space" {
				t.Errorf("child literal = %q", s)
			}
			if n, err := crt.Call(pr, "greet_len"); err != nil || n != 39 {
				t.Errorf("len = %v, %v", n, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPrintFormatsObjects(t *testing.T) {
	src := `
print("hello")
print([1, "two", [3]])
print(4.5)
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		of, err := p.FDs.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		console, ok := of.File.(*kernel.Console)
		if !ok {
			t.Fatal("stdout is not the console")
		}
		want := "hello\n[1, 'two', [3]]\n4.5\n"
		if string(console.Out) != want {
			t.Fatalf("stdout = %q, want %q", console.Out, want)
		}
	})
}
