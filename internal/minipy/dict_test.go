package minipy_test

import (
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/minipy"
)

func TestDictBasics(t *testing.T) {
	src := `
d = {"one": 1, "two": 2}
d["three"] = 3
d["one"] = 10
result = d["one"] + d["two"] + d["three"] + len(d) * 1000
` + resultFooter
	// 10 + 2 + 3 + 3000 = 3015
	if got := evalGlobal(t, src); got != 3015 {
		t.Fatalf("got %v, want 3015", got)
	}
}

func TestDictNumericKeys(t *testing.T) {
	src := `
d = {}
for i in range(20):
    d[i] = i * i
total = 0
for i in range(20):
    total += d[i]
result = total + len(d)
` + resultFooter
	// sum i^2 for 0..19 = 2470; +20 = 2490
	if got := evalGlobal(t, src); got != 2490 {
		t.Fatalf("got %v, want 2490", got)
	}
}

func TestDictGrowthRehash(t *testing.T) {
	// Push well past the initial 8 buckets to force several rehashes.
	src := `
d = {}
for i in range(200):
    d["key" + str(i)] = i
total = 0
for i in range(200):
    total += d["key" + str(i)]
result = total + len(d) * 10000
` + resultFooter
	// sum 0..199 = 19900; + 200*10000 = 2019900
	if got := evalGlobal(t, src); got != 2019900 {
		t.Fatalf("got %v, want 2019900", got)
	}
}

func TestDictGetAndKeys(t *testing.T) {
	src := `
d = {"a": 1}
missing = d.get("zzz")
present = d.get("a")
ks = d.keys()
result = present * 100 + len(ks)
if missing:
    result += 1000000
` + resultFooter
	// present=1 → 100 + 1 key = 101; missing is None (falsy)
	if got := evalGlobal(t, src); got != 101 {
		t.Fatalf("got %v, want 101", got)
	}
}

func TestDictMixedValues(t *testing.T) {
	src := `
d = {"name": "redis", "keys": [1, 2, 3]}
result = d["name"] + str(len(d["keys"]))
`
	if got := evalString(t, src); got != "redis3" {
		t.Fatalf("got %q", got)
	}
}

func TestDictErrors(t *testing.T) {
	withRuntime(t, `
def missing_key():
    d = {"x": 1}
    return d["y"]

def bad_key():
    d = {}
    d[[1]] = 2
    return 0
`, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		if _, err := rt.Call(pr, "missing_key"); err == nil {
			t.Error("missing key should error")
		}
		if _, err := rt.Call(pr, "bad_key"); err == nil {
			t.Error("unhashable key should error")
		}
	})
}

// TestDictSurvivesFork: a dictionary built in the zygote is fully usable
// (relocated bucket arrays, keys and values) in forked children, and
// child mutations stay private.
func TestDictSurvivesFork(t *testing.T) {
	src := `
config = {"port": 8080, "host": "localhost", "workers": 3}

def lookup(k):
    return config.get(k)

def mutate():
    global config
    config["port"] = 9999
    config["extra"] = 1
    return len(config)
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		for i := 0; i < 2; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				crt, err := minipy.Attach(c)
				if err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				idx, _ := pr.FuncIndex("lookup")
				hv, err := crt.CallValue(idx, strArg(t, crt, "host"))
				if err != nil {
					t.Errorf("child lookup: %v", err)
					return
				}
				s, err := crt.Format(hv)
				if err != nil || s != "localhost" {
					t.Errorf("child host = %q, %v", s, err)
					return
				}
				if n, err := crt.Call(pr, "mutate"); err != nil || n != 4 {
					t.Errorf("child mutate: %v %v", n, err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		// Zygote unchanged: still 3 entries, port still 8080.
		idx, _ := pr.FuncIndex("lookup")
		pv, err := rt.CallValue(idx, strArg(t, rt, "port"))
		if err != nil || pv.Float() != 8080 {
			t.Fatalf("zygote port = %v, %v", pv.Float(), err)
		}
	})
}

// strArg builds a string Value in the runtime's memory for use as a call
// argument.
func strArg(t *testing.T, rt *minipy.Runtime, s string) minipy.Value {
	t.Helper()
	v, err := rt.NewString(s)
	if err != nil {
		t.Fatalf("NewString: %v", err)
	}
	return v
}
