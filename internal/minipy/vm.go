package minipy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ufork/internal/alloc"
	"ufork/internal/cap"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// OpCost is the virtual CPU time one bytecode operation takes. It anchors
// FunctionBench float_operation at roughly a millisecond for the loop
// counts the FaaS experiment uses (Fig. 6 calibration).
const OpCost = 15 * sim.Nanosecond

// costBatch is how many ops accumulate before the VM books core time.
const costBatch = 1024

// Errors reported by the runtime.
var (
	ErrHalted     = errors.New("minipy: execution limit exceeded")
	ErrStack      = errors.New("minipy: stack error")
	ErrNoRuntime  = errors.New("minipy: no runtime installed in this process")
	ErrBadProgram = errors.New("minipy: malformed program blob")
)

// Blob layout, all little-endian u64 fields:
//
//	magic | nfuncs | nconsts | nglobals | nstrings |
//	per-func: codeOff codeLen nparams nlocals |
//	consts (f64 bits) |
//	per-string object: len u64, pad u64, bytes (padded to 16) |
//	bytecode bytes
//
// The string-pool entries use the runtime string-object layout, so literal
// strings are capabilities into the (read-shared) blob — zero-copy and
// relocated with everything else.
const blobMagic = 0x7570795f6d696e6a

// tlsRootOff is where the runtime root capability lives in TLS; the fork
// relocation machinery is what keeps this valid in children.
const tlsRootOff = 0

// Runtime is a per-μprocess interpreter instance. All mutable interpreter
// state — the program blob, the global environment, every variable cell —
// lives in simulated memory, so POSIX fork duplicates a warm interpreter
// exactly as the Zygote pattern requires (§5.1 "Function as a Service").
type Runtime struct {
	p  *kernel.Proc
	a  *alloc.Allocator
	pr *decodedProgram

	globalEnv cap.Capability // capability-array block: one cap per global
	blobCap   cap.Capability // the installed program blob

	pendingOps int
}

// decodedProgram is the host-side decode of the blob (read back from
// simulated memory, so children decode their own copy/shared pages).
type decodedProgram struct {
	funcs   []decodedFunc
	consts  []float64
	strOffs []strEntry // blob-relative offsets of pooled string objects
}

type strEntry struct {
	off uint64 // offset of the string OBJECT (len header) within the blob
	ln  uint64
}

type decodedFunc struct {
	nparams int
	nlocals int
	code    []byte
}

// Install compiles nothing — it takes an already compiled Program, writes
// its blob and environment into the process's simulated memory, and plants
// the runtime root capability in TLS. Call once in the Zygote.
func Install(p *kernel.Proc, a *alloc.Allocator, pr *Program) (*Runtime, error) {
	blob := encodeBlob(pr)
	blobCap, err := a.Alloc(uint64(len(blob)))
	if err != nil {
		return nil, err
	}
	if err := p.Store(blobCap, 0, blob); err != nil {
		return nil, err
	}
	// Global environment: a block of capabilities, one cell per global.
	envCap, err := makeEnv(p, a, pr.NGlobals)
	if err != nil {
		return nil, err
	}
	// Root block: blob cap + global env cap.
	root, err := a.Alloc(2 * cap.GranuleSize)
	if err != nil {
		return nil, err
	}
	if err := p.StoreCap(root, 0, blobCap); err != nil {
		return nil, err
	}
	if err := p.StoreCap(root, cap.GranuleSize, envCap); err != nil {
		return nil, err
	}
	if err := p.StoreCap(p.TLSCap, tlsRootOff, root); err != nil {
		return nil, err
	}
	return Attach(p)
}

// Attach binds a Runtime to a process whose TLS carries a runtime root —
// either installed directly or inherited (and relocated) through fork.
func Attach(p *kernel.Proc) (*Runtime, error) {
	root, err := p.LoadCap(p.TLSCap, tlsRootOff)
	if err != nil {
		return nil, err
	}
	if !root.Tag() {
		return nil, ErrNoRuntime
	}
	blobCap, err := p.LoadCap(root, 0)
	if err != nil {
		return nil, err
	}
	envCap, err := p.LoadCap(root, cap.GranuleSize)
	if err != nil {
		return nil, err
	}
	// Bulk-read the blob: plain data reads, shared under CoPA.
	blob := make([]byte, blobCap.Len())
	if err := p.Load(blobCap, 0, blob); err != nil {
		return nil, err
	}
	pr, err := decodeBlob(blob)
	if err != nil {
		return nil, err
	}
	return &Runtime{p: p, a: alloc.Attach(p), pr: pr, globalEnv: envCap, blobCap: blobCap}, nil
}

// makeEnv allocates an environment block of n capability slots, each
// pointing at a fresh 32-byte value cell (kind | number | object cap).
func makeEnv(p *kernel.Proc, a *alloc.Allocator, n int) (cap.Capability, error) {
	if n == 0 {
		n = 1
	}
	env, err := a.Alloc(uint64(n) * cap.GranuleSize)
	if err != nil {
		return cap.Null(), err
	}
	for i := 0; i < n; i++ {
		cell, err := a.Alloc(valueSize)
		if err != nil {
			return cap.Null(), err
		}
		if err := p.StoreU64(cell, valKindOff, kNone); err != nil {
			return cap.Null(), err
		}
		if err := p.StoreCap(env, uint64(i)*cap.GranuleSize, cell); err != nil {
			return cap.Null(), err
		}
	}
	return env, nil
}

func encodeBlob(pr *Program) []byte {
	var out []byte
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		out = append(out, b[:]...)
	}
	u64(blobMagic)
	u64(uint64(len(pr.Funcs)))
	u64(uint64(len(pr.Consts)))
	u64(uint64(pr.NGlobals))
	u64(uint64(len(pr.Strings)))
	codeOff := 0
	for _, f := range pr.Funcs {
		u64(uint64(codeOff))
		u64(uint64(len(f.Code)))
		u64(uint64(f.NParams))
		u64(uint64(f.NLocals))
		codeOff += len(f.Code)
	}
	for _, c := range pr.Consts {
		u64(math.Float64bits(c))
	}
	for _, str := range pr.Strings {
		// Runtime string-object layout: len | pad | bytes, granule padded.
		u64(uint64(len(str)))
		u64(0)
		out = append(out, str...)
		for len(out)%16 != 0 {
			out = append(out, 0)
		}
	}
	for _, f := range pr.Funcs {
		out = append(out, f.Code...)
	}
	return out
}

func decodeBlob(blob []byte) (*decodedProgram, error) {
	if len(blob) < 32 {
		return nil, ErrBadProgram
	}
	pos := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(blob[pos:])
		pos += 8
		return v
	}
	if u64() != blobMagic {
		return nil, ErrBadProgram
	}
	nfuncs := int(u64())
	nconsts := int(u64())
	_ = int(u64()) // nglobals: env block already sized
	nstrings := int(u64())
	type fhdr struct{ off, ln, np, nl int }
	if len(blob) < pos+nfuncs*32+nconsts*8 {
		return nil, ErrBadProgram
	}
	hdrs := make([]fhdr, nfuncs)
	for i := range hdrs {
		hdrs[i] = fhdr{int(u64()), int(u64()), int(u64()), int(u64())}
	}
	pr := &decodedProgram{consts: make([]float64, nconsts)}
	for i := range pr.consts {
		pr.consts[i] = math.Float64frombits(u64())
	}
	for i := 0; i < nstrings; i++ {
		objOff := uint64(pos)
		if pos+16 > len(blob) {
			return nil, ErrBadProgram
		}
		ln := u64()
		u64() // pad
		if pos+int(ln) > len(blob) {
			return nil, ErrBadProgram
		}
		pos += int(ln)
		for pos%16 != 0 {
			pos++
		}
		pr.strOffs = append(pr.strOffs, strEntry{off: objOff, ln: ln})
	}
	codeBase := pos
	for _, h := range hdrs {
		if codeBase+h.off+h.ln > len(blob) {
			return nil, ErrBadProgram
		}
		pr.funcs = append(pr.funcs, decodedFunc{
			nparams: h.np,
			nlocals: h.nl,
			code:    blob[codeBase+h.off : codeBase+h.off+h.ln],
		})
	}
	return pr, nil
}

// charge books accumulated op cost as CPU time.
func (rt *Runtime) charge(force bool) {
	if rt.pendingOps >= costBatch || (force && rt.pendingOps > 0) {
		rt.p.Compute(sim.Time(rt.pendingOps) * OpCost)
		rt.pendingOps = 0
	}
}

// RunMain executes the module body (function 0).
func (rt *Runtime) RunMain() (float64, error) {
	return rt.CallIndex(0)
}

// Call executes a named function with float arguments and returns a float
// result (legacy numeric API; see CallValue for object results).
func (rt *Runtime) Call(pr *Program, name string, args ...float64) (float64, error) {
	idx, ok := pr.FuncIndex(name)
	if !ok {
		return 0, fmt.Errorf("minipy: no function %q", name)
	}
	return rt.CallIndex(idx, args...)
}

// CallIndex executes function idx with numeric arguments.
func (rt *Runtime) CallIndex(idx int, args ...float64) (float64, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Num(a)
	}
	v, err := rt.CallValue(idx, vals...)
	if err != nil {
		return 0, err
	}
	return v.Float(), nil
}

// CallValue executes function idx with full values and returns the value.
func (rt *Runtime) CallValue(idx int, args ...Value) (Value, error) {
	v, err := rt.exec(idx, args, 0)
	rt.charge(true)
	return v, err
}

// maxDepth bounds recursion.
const maxDepth = 64

// exec runs one function activation. Locals live in a freshly allocated
// env block in simulated memory; the operand stack is register state
// (host-side), matching how a real VM keeps its value stack in registers
// and spill slots.
func (rt *Runtime) exec(idx int, args []Value, depth int) (Value, error) {
	if depth > maxDepth {
		return Value{}, fmt.Errorf("minipy: recursion too deep")
	}
	if idx >= len(rt.pr.funcs) {
		return Value{}, fmt.Errorf("minipy: bad function index %d", idx)
	}
	f := rt.pr.funcs[idx]
	if len(args) != f.nparams {
		return Value{}, fmt.Errorf("minipy: arity mismatch")
	}
	var env cap.Capability
	if f.nlocals > 0 {
		var err error
		env, err = makeEnv(rt.p, rt.a, f.nlocals)
		if err != nil {
			return Value{}, err
		}
		defer rt.freeEnv(env, f.nlocals)
		for i, a := range args {
			if err := rt.storeSlot(env, i, a); err != nil {
				return Value{}, err
			}
		}
	}

	code := f.code
	var stack [64]Value
	sp := 0
	push := func(v Value) error {
		if sp >= len(stack) {
			return ErrStack
		}
		stack[sp] = v
		sp++
		return nil
	}
	pop := func() (Value, error) {
		if sp == 0 {
			return Value{}, ErrStack
		}
		sp--
		return stack[sp], nil
	}
	popNum := func() (float64, error) {
		v, err := pop()
		if err != nil {
			return 0, err
		}
		if v.kind != kNum {
			return 0, fmt.Errorf("minipy: expected a number")
		}
		return v.num, nil
	}

	pc := 0
	steps := 0
	for pc < len(code) {
		steps++
		rt.pendingOps++
		if rt.pendingOps >= costBatch {
			rt.charge(false)
		}
		if steps > 200_000_000 {
			return Value{}, ErrHalted
		}
		op := code[pc]
		switch op {
		case opConst:
			i := int(binary.LittleEndian.Uint16(code[pc+1:]))
			if i >= len(rt.pr.consts) {
				return Value{}, ErrBadProgram
			}
			if err := push(Num(rt.pr.consts[i])); err != nil {
				return Value{}, err
			}
			pc += 3
		case opConstStr:
			i := int(binary.LittleEndian.Uint16(code[pc+1:]))
			if i >= len(rt.pr.strOffs) {
				return Value{}, ErrBadProgram
			}
			ent := rt.pr.strOffs[i]
			// A literal string is a bounded capability into the program
			// blob — immutable and shared, never copied per evaluation.
			obj, err := rt.blobCap.SetAddr(rt.blobCap.Base() + ent.off).
				SetBounds(strBytesOff + ent.ln)
			if err != nil {
				return Value{}, err
			}
			if err := push(Value{kind: kStr, obj: obj}); err != nil {
				return Value{}, err
			}
			pc += 3
		case opBuildDict:
			n := int(binary.LittleEndian.Uint16(code[pc+1:]))
			if sp < 2*n {
				return Value{}, ErrStack
			}
			dv, err := rt.newDict()
			if err != nil {
				return Value{}, err
			}
			sp -= 2 * n
			for i := 0; i < n; i++ {
				if err := rt.dictSet(dv, stack[sp+2*i], stack[sp+2*i+1]); err != nil {
					return Value{}, err
				}
			}
			if err := push(dv); err != nil {
				return Value{}, err
			}
			pc += 3
		case opBuildList:
			n := int(binary.LittleEndian.Uint16(code[pc+1:]))
			if sp < n {
				return Value{}, ErrStack
			}
			sp -= n
			elems := make([]Value, n)
			copy(elems, stack[sp:sp+n])
			lv, err := rt.newList(elems)
			if err != nil {
				return Value{}, err
			}
			if err := push(lv); err != nil {
				return Value{}, err
			}
			pc += 3
		case opIndex:
			iv, err := pop()
			if err != nil {
				return Value{}, err
			}
			ov, err := pop()
			if err != nil {
				return Value{}, err
			}
			var res Value
			switch ov.kind {
			case kDict:
				var found bool
				res, found, err = rt.dictGet(ov, iv)
				if err == nil && !found {
					err = fmt.Errorf("minipy: key error")
				}
			case kList:
				if iv.kind != kNum {
					return Value{}, fmt.Errorf("minipy: index must be a number")
				}
				res, err = rt.listIndex(ov, iv.num)
			case kStr:
				if iv.kind != kNum {
					return Value{}, fmt.Errorf("minipy: index must be a number")
				}
				res, err = rt.strIndex(ov, iv.num)
			default:
				err = fmt.Errorf("minipy: value is not indexable")
			}
			if err != nil {
				return Value{}, err
			}
			if err := push(res); err != nil {
				return Value{}, err
			}
			pc++
		case opStoreIndex:
			val, err := pop()
			if err != nil {
				return Value{}, err
			}
			iv, err := pop()
			if err != nil {
				return Value{}, err
			}
			ov, err := pop()
			if err != nil {
				return Value{}, err
			}
			switch {
			case ov.kind == kDict:
				if err := rt.dictSet(ov, iv, val); err != nil {
					return Value{}, err
				}
			case ov.kind == kList && iv.kind == kNum:
				if err := rt.listStore(ov, iv.num, val); err != nil {
					return Value{}, err
				}
			default:
				return Value{}, fmt.Errorf("minipy: invalid index assignment")
			}
			pc++
		case opMethod:
			mid, argc := code[pc+1], int(code[pc+2])
			if sp < argc+1 {
				return Value{}, ErrStack
			}
			sp -= argc
			margs := make([]Value, argc)
			copy(margs, stack[sp:sp+argc])
			recv, err := pop()
			if err != nil {
				return Value{}, err
			}
			res, err := rt.method(mid, recv, margs)
			if err != nil {
				return Value{}, err
			}
			if err := push(res); err != nil {
				return Value{}, err
			}
			pc += 3
		case opLoad, opStore:
			slot := int(binary.LittleEndian.Uint16(code[pc+1:]))
			tbl, sidx := env, slot
			if slot >= globalBase {
				tbl, sidx = rt.globalEnv, slot-globalBase
			}
			if op == opLoad {
				v, err := rt.loadSlot(tbl, sidx)
				if err != nil {
					return Value{}, err
				}
				if err := push(v); err != nil {
					return Value{}, err
				}
			} else {
				v, err := pop()
				if err != nil {
					return Value{}, err
				}
				if err := rt.storeSlot(tbl, sidx, v); err != nil {
					return Value{}, err
				}
			}
			pc += 3
		case opAdd:
			b, err := pop()
			if err != nil {
				return Value{}, err
			}
			a, err := pop()
			if err != nil {
				return Value{}, err
			}
			v, err := rt.add(a, b)
			if err != nil {
				return Value{}, err
			}
			if err := push(v); err != nil {
				return Value{}, err
			}
			pc++
		case opSub, opMul, opDiv, opFloorDiv, opMod, opPow:
			b, err := popNum()
			if err != nil {
				return Value{}, err
			}
			a, err := popNum()
			if err != nil {
				return Value{}, err
			}
			var v float64
			switch op {
			case opSub:
				v = a - b
			case opMul:
				v = a * b
			case opDiv:
				v = a / b
			case opFloorDiv:
				v = math.Floor(a / b)
			case opMod:
				v = math.Mod(a, b)
			case opPow:
				v = math.Pow(a, b)
			}
			if err := push(Num(v)); err != nil {
				return Value{}, err
			}
			pc++
		case opLT, opLE, opGT, opGE, opEQ, opNE:
			b, err := pop()
			if err != nil {
				return Value{}, err
			}
			a, err := pop()
			if err != nil {
				return Value{}, err
			}
			v, err := rt.compare(op, a, b)
			if err != nil {
				return Value{}, err
			}
			if err := push(Num(v)); err != nil {
				return Value{}, err
			}
			pc++
		case opNeg:
			v, err := popNum()
			if err != nil {
				return Value{}, err
			}
			if err := push(Num(-v)); err != nil {
				return Value{}, err
			}
			pc++
		case opNot:
			v, err := pop()
			if err != nil {
				return Value{}, err
			}
			tr, err := rt.truthy(v)
			if err != nil {
				return Value{}, err
			}
			if err := push(Num(b2f(!tr))); err != nil {
				return Value{}, err
			}
			pc++
		case opJmp:
			pc = int(binary.LittleEndian.Uint16(code[pc+1:]))
		case opJz:
			v, err := pop()
			if err != nil {
				return Value{}, err
			}
			tr, err := rt.truthy(v)
			if err != nil {
				return Value{}, err
			}
			if !tr {
				pc = int(binary.LittleEndian.Uint16(code[pc+1:]))
			} else {
				pc += 3
			}
		case opJzKeep, opJnzKeep:
			if sp == 0 {
				return Value{}, ErrStack
			}
			tr, err := rt.truthy(stack[sp-1])
			if err != nil {
				return Value{}, err
			}
			if (op == opJzKeep && !tr) || (op == opJnzKeep && tr) {
				pc = int(binary.LittleEndian.Uint16(code[pc+1:]))
			} else {
				pc += 3
			}
		case opPop:
			if _, err := pop(); err != nil {
				return Value{}, err
			}
			pc++
		case opCallB:
			id, argc := code[pc+1], int(code[pc+2])
			if sp < argc {
				return Value{}, ErrStack
			}
			sp -= argc
			v, err := rt.builtin(id, stack[sp:sp+argc])
			if err != nil {
				return Value{}, err
			}
			if err := push(v); err != nil {
				return Value{}, err
			}
			pc += 3
		case opCallF:
			fi := int(binary.LittleEndian.Uint16(code[pc+1:]))
			argc := int(code[pc+3])
			if sp < argc {
				return Value{}, ErrStack
			}
			sp -= argc
			callArgs := make([]Value, argc)
			copy(callArgs, stack[sp:sp+argc])
			v, err := rt.exec(fi, callArgs, depth+1)
			if err != nil {
				return Value{}, err
			}
			if err := push(v); err != nil {
				return Value{}, err
			}
			pc += 4
		case opRet:
			return pop()
		case opNop:
			pc++
		default:
			return Value{}, fmt.Errorf("%w: opcode %d at %d", ErrBadProgram, op, pc)
		}
	}
	return None(), nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// add implements + with Python-style overloading: numbers add, strings
// and lists concatenate.
func (rt *Runtime) add(a, b Value) (Value, error) {
	switch {
	case a.kind == kNum && b.kind == kNum:
		return Num(a.num + b.num), nil
	case a.kind == kStr && b.kind == kStr:
		ab, err := rt.strBytes(a)
		if err != nil {
			return Value{}, err
		}
		bb, err := rt.strBytes(b)
		if err != nil {
			return Value{}, err
		}
		return rt.newStr(append(ab, bb...))
	case a.kind == kList && b.kind == kList:
		an, err := rt.objLen(a)
		if err != nil {
			return Value{}, err
		}
		bn, err := rt.objLen(b)
		if err != nil {
			return Value{}, err
		}
		elems := make([]Value, 0, an+bn)
		for i := uint64(0); i < an; i++ {
			e, err := rt.listIndex(a, float64(i))
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, e)
		}
		for i := uint64(0); i < bn; i++ {
			e, err := rt.listIndex(b, float64(i))
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, e)
		}
		return rt.newList(elems)
	default:
		return Value{}, fmt.Errorf("minipy: unsupported operand types for +")
	}
}

// compare implements the comparison opcodes with numeric and string
// orderings.
func (rt *Runtime) compare(op byte, a, b Value) (float64, error) {
	if a.kind == kNum && b.kind == kNum {
		switch op {
		case opLT:
			return b2f(a.num < b.num), nil
		case opLE:
			return b2f(a.num <= b.num), nil
		case opGT:
			return b2f(a.num > b.num), nil
		case opGE:
			return b2f(a.num >= b.num), nil
		case opEQ:
			return b2f(a.num == b.num), nil
		case opNE:
			return b2f(a.num != b.num), nil
		}
	}
	if a.kind == kStr && b.kind == kStr {
		ab, err := rt.strBytes(a)
		if err != nil {
			return 0, err
		}
		bb, err := rt.strBytes(b)
		if err != nil {
			return 0, err
		}
		cmp := 0
		as, bs := string(ab), string(bb)
		if as < bs {
			cmp = -1
		} else if as > bs {
			cmp = 1
		}
		switch op {
		case opLT:
			return b2f(cmp < 0), nil
		case opLE:
			return b2f(cmp <= 0), nil
		case opGT:
			return b2f(cmp > 0), nil
		case opGE:
			return b2f(cmp >= 0), nil
		case opEQ:
			return b2f(cmp == 0), nil
		case opNE:
			return b2f(cmp != 0), nil
		}
	}
	// Mixed kinds: only equality is defined (always unequal).
	switch op {
	case opEQ:
		return 0, nil
	case opNE:
		return 1, nil
	}
	return 0, fmt.Errorf("minipy: unsupported comparison")
}

// method dispatches receiver methods (currently list.append / list.pop).
func (rt *Runtime) method(mid byte, recv Value, args []Value) (Value, error) {
	switch mid {
	case mAppend:
		if recv.kind != kList {
			return Value{}, fmt.Errorf("minipy: append on non-list")
		}
		if err := rt.listAppend(recv, args[0]); err != nil {
			return Value{}, err
		}
		return None(), nil
	case mGet:
		if recv.kind != kDict {
			return Value{}, fmt.Errorf("minipy: get on non-dict")
		}
		v, _, err := rt.dictGet(recv, args[0])
		return v, err
	case mKeys:
		if recv.kind != kDict {
			return Value{}, fmt.Errorf("minipy: keys on non-dict")
		}
		return rt.dictKeys(recv)
	case mPop:
		if recv.kind != kList {
			return Value{}, fmt.Errorf("minipy: pop on non-list")
		}
		n, err := rt.objLen(recv)
		if err != nil {
			return Value{}, err
		}
		if n == 0 {
			return Value{}, fmt.Errorf("minipy: pop from empty list")
		}
		v, err := rt.listIndex(recv, float64(n-1))
		if err != nil {
			return Value{}, err
		}
		if err := rt.p.StoreU64(recv.obj, objLenOff, n-1); err != nil {
			return Value{}, err
		}
		return v, nil
	default:
		return Value{}, fmt.Errorf("minipy: unknown method %d", mid)
	}
}

// loadSlot reads the value record a slot's cell holds.
func (rt *Runtime) loadSlot(env cap.Capability, slot int) (Value, error) {
	cell, err := rt.p.LoadCap(env, uint64(slot)*cap.GranuleSize)
	if err != nil {
		return Value{}, err
	}
	return rt.loadValueAt(cell, 0)
}

// storeSlot writes a value record into a slot's cell.
func (rt *Runtime) storeSlot(env cap.Capability, slot int, v Value) error {
	cell, err := rt.p.LoadCap(env, uint64(slot)*cap.GranuleSize)
	if err != nil {
		return err
	}
	return rt.storeValueAt(cell, 0, v)
}

func (rt *Runtime) freeEnv(env cap.Capability, n int) {
	for i := 0; i < n; i++ {
		cell, err := rt.p.LoadCap(env, uint64(i)*cap.GranuleSize)
		if err == nil && cell.Tag() {
			_ = rt.a.Free(cell)
		}
	}
	_ = rt.a.Free(env)
}

func (rt *Runtime) builtin(id byte, args []Value) (Value, error) {
	num := func(i int) (float64, error) {
		if args[i].kind != kNum {
			return 0, fmt.Errorf("minipy: builtin expects a number")
		}
		return args[i].num, nil
	}
	one := func() (float64, error) { return num(0) }
	n1 := func(f func(float64) float64) (Value, error) {
		v, err := one()
		if err != nil {
			return Value{}, err
		}
		return Num(f(v)), nil
	}
	switch id {
	case bSqrt:
		return n1(math.Sqrt)
	case bSin:
		return n1(math.Sin)
	case bCos:
		return n1(math.Cos)
	case bTan:
		return n1(math.Tan)
	case bAbs:
		return n1(math.Abs)
	case bFloor:
		return n1(math.Floor)
	case bCeil:
		return n1(math.Ceil)
	case bExp:
		return n1(math.Exp)
	case bLog:
		return n1(math.Log)
	case bPow:
		a, err := num(0)
		if err != nil {
			return Value{}, err
		}
		b, err := num(1)
		if err != nil {
			return Value{}, err
		}
		return Num(math.Pow(a, b)), nil
	case bMin, bMax:
		a, err := num(0)
		if err != nil {
			return Value{}, err
		}
		b, err := num(1)
		if err != nil {
			return Value{}, err
		}
		if id == bMin {
			return Num(math.Min(a, b)), nil
		}
		return Num(math.Max(a, b)), nil
	case bTime:
		return Num(float64(rt.p.Now()) / float64(sim.Second)), nil
	case bInt:
		return n1(math.Trunc)
	case bLen:
		switch args[0].kind {
		case kStr, kList:
			n, err := rt.objLen(args[0])
			if err != nil {
				return Value{}, err
			}
			return Num(float64(n)), nil
		case kDict:
			n, err := rt.p.LoadU64(args[0].obj, dictCountOff)
			if err != nil {
				return Value{}, err
			}
			return Num(float64(n)), nil
		default:
			return Value{}, fmt.Errorf("minipy: len of non-collection")
		}
	case bOrd:
		if args[0].kind != kStr {
			return Value{}, fmt.Errorf("minipy: ord expects a string")
		}
		b, err := rt.strBytes(args[0])
		if err != nil {
			return Value{}, err
		}
		if len(b) == 0 {
			return Value{}, fmt.Errorf("minipy: ord of empty string")
		}
		return Num(float64(b[0])), nil
	case bChr:
		v, err := one()
		if err != nil {
			return Value{}, err
		}
		return rt.newStr([]byte{byte(int(v))})
	case bStr:
		s, err := rt.Format(args[0])
		if err != nil {
			return Value{}, err
		}
		return rt.newStr([]byte(s))
	case bPrint:
		// print writes through the kernel: a real write(2) with its
		// syscall costs, landing on the process's stdout.
		line, err := rt.Format(args[0])
		if err != nil {
			return Value{}, err
		}
		if _, err := rt.p.Kernel().Write(rt.p, 1, []byte(line+"\n")); err != nil {
			return Value{}, err
		}
		return args[0], nil
	case 200: // float()
		v, err := one()
		if err != nil {
			return Value{}, err
		}
		return Num(v), nil
	default:
		return Value{}, fmt.Errorf("minipy: unknown builtin %d", id)
	}
}
