package minipy

import "fmt"

// --- AST ---

type expr interface{ isExpr() }

type numLit struct{ v float64 }
type strLit struct{ s string }
type listLit struct{ elems []expr }
type dictLit struct {
	keys, vals []expr
}
type nameRef struct{ name string }
type indexExpr struct {
	obj expr
	idx expr
}
type unary struct {
	op string
	x  expr
}
type binOp struct {
	op   string
	l, r expr
}
type boolOp struct {
	op   string // "and" | "or"
	l, r expr
}
type call struct {
	fn   string
	args []expr
}

func (numLit) isExpr()    {}
func (strLit) isExpr()    {}
func (listLit) isExpr()   {}
func (dictLit) isExpr()   {}
func (indexExpr) isExpr() {}
func (nameRef) isExpr()   {}
func (unary) isExpr()     {}
func (binOp) isExpr()     {}
func (boolOp) isExpr()    {}
func (call) isExpr()      {}

type stmt interface{ isStmt() }

type assign struct {
	name string
	op   string // "=", "+=", "-=", "*=", "/="
	val  expr
}
type exprStmt struct{ x expr }
type indexAssign struct {
	obj, idx, val expr
}
type returnStmt struct{ x expr } // nil x returns 0
type passStmt struct{}
type breakStmt struct{}
type continueStmt struct{}
type globalStmt struct{ names []string }
type ifStmt struct {
	cond expr
	then []stmt
	els  []stmt // may be nil
}
type whileStmt struct {
	cond expr
	body []stmt
}
type forStmt struct {
	name             string
	start, stop, stp expr // stp may be nil (defaults to 1)
	body             []stmt
}
type defStmt struct {
	name   string
	params []string
	body   []stmt
}

func (assign) isStmt()       {}
func (exprStmt) isStmt()     {}
func (indexAssign) isStmt()  {}
func (returnStmt) isStmt()   {}
func (passStmt) isStmt()     {}
func (breakStmt) isStmt()    {}
func (continueStmt) isStmt() {}
func (globalStmt) isStmt()   {}
func (ifStmt) isStmt()       {}
func (whileStmt) isStmt()    {}
func (forStmt) isStmt()      {}
func (defStmt) isStmt()      {}

// module is a parsed source file.
type module struct {
	body []stmt
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var body []stmt
	for !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body = append(body, s)
		}
	}
	return &module{body: body}, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atOp(text string) bool {
	return p.cur().kind == tokOp && p.cur().text == text
}

func (p *parser) atKw(text string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == text
}

func (p *parser) eatOp(text string) bool {
	if p.atOp(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKw(text string) bool {
	if p.atKw(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(text string) error {
	if !p.eatOp(text) {
		return p.errf("expected %q, got %v", text, p.cur())
	}
	return nil
}

func (p *parser) expectNewline() error {
	if !p.at(tokNewline) {
		return p.errf("expected end of line, got %v", p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{p.cur().line, fmt.Sprintf(format, args...)}
}

// statement parses one statement (possibly a compound one).
func (p *parser) statement() (stmt, error) {
	switch {
	case p.eatKw("import"), p.eatKw("from"):
		// Imports are accepted and ignored: builtins cover math/time.
		for !p.at(tokNewline) && !p.at(tokEOF) {
			p.pos++
		}
		if p.at(tokNewline) {
			p.pos++
		}
		return nil, nil
	case p.eatKw("pass"):
		return passStmt{}, p.expectNewline()
	case p.eatKw("break"):
		return breakStmt{}, p.expectNewline()
	case p.eatKw("continue"):
		return continueStmt{}, p.expectNewline()
	case p.eatKw("global"):
		var names []string
		for {
			if !p.at(tokName) {
				return nil, p.errf("expected name in global")
			}
			names = append(names, p.next().text)
			if !p.eatOp(",") {
				break
			}
		}
		return globalStmt{names}, p.expectNewline()
	case p.eatKw("return"):
		var x expr
		if !p.at(tokNewline) {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return returnStmt{x}, p.expectNewline()
	case p.atKw("def"):
		return p.defStatement()
	case p.atKw("if"):
		return p.ifStatement()
	case p.atKw("while"):
		return p.whileStatement()
	case p.atKw("for"):
		return p.forStatement()
	default:
		return p.simpleStatement()
	}
}

func (p *parser) simpleStatement() (stmt, error) {
	// assignment or expression statement
	if p.at(tokName) {
		save := p.pos
		name := p.next().text
		// Qualified names (math.sin) are only calls, not assign targets.
		if p.atOp("=") || p.atOp("+=") || p.atOp("-=") || p.atOp("*=") || p.atOp("/=") {
			op := p.next().text
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return assign{name: name, op: op, val: val}, p.expectNewline()
		}
		p.pos = save
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	// Index assignment: xs[i] = v (simple '=' only).
	if ix, ok := x.(indexExpr); ok && p.atOp("=") {
		p.pos++
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return indexAssign{obj: ix.obj, idx: ix.idx, val: val}, p.expectNewline()
	}
	return exprStmt{x}, p.expectNewline()
}

func (p *parser) defStatement() (stmt, error) {
	p.eatKw("def")
	if !p.at(tokName) {
		return nil, p.errf("expected function name")
	}
	name := p.next().text
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atOp(")") {
		if !p.at(tokName) {
			return nil, p.errf("expected parameter name")
		}
		params = append(params, p.next().text)
		if !p.eatOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return defStmt{name: name, params: params, body: body}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	p.next() // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.suite()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.atKw("elif") {
		s, err := p.ifStatement()
		if err != nil {
			return nil, err
		}
		els = []stmt{s}
	} else if p.eatKw("else") {
		els, err = p.suite()
		if err != nil {
			return nil, err
		}
	}
	return ifStmt{cond: cond, then: then, els: els}, nil
}

func (p *parser) whileStatement() (stmt, error) {
	p.eatKw("while")
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return whileStmt{cond: cond, body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.eatKw("for")
	if !p.at(tokName) {
		return nil, p.errf("expected loop variable")
	}
	name := p.next().text
	if !p.eatKw("in") {
		return nil, p.errf("expected 'in'")
	}
	if !p.at(tokName) || p.cur().text != "range" {
		return nil, p.errf("only 'for ... in range(...)' is supported")
	}
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	var start, stop, step expr
	start = numLit{0}
	stop = first
	if p.eatOp(",") {
		start = first
		stop, err = p.expr()
		if err != nil {
			return nil, err
		}
		if p.eatOp(",") {
			step, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return forStmt{name: name, start: start, stop: stop, stp: step, body: body}, nil
}

// suite parses ":" NEWLINE INDENT stmt+ DEDENT (or a same-line statement).
func (p *parser) suite() ([]stmt, error) {
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	if !p.at(tokNewline) {
		// single statement on the same line
		s, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		return []stmt{s}, nil
	}
	p.pos++
	if !p.at(tokIndent) {
		return nil, p.errf("expected indented block")
	}
	p.pos++
	var body []stmt
	for !p.at(tokDedent) && !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body = append(body, s)
		}
	}
	if p.at(tokDedent) {
		p.pos++
	}
	return body, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expr() (expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = boolOp{"or", l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = boolOp{"and", l, r}
	}
	return l, nil
}

func (p *parser) notExpr() (expr, error) {
	if p.eatKw("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return unary{"not", x}, nil
	}
	return p.comparison()
}

var compareOps = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true}

func (p *parser) comparison() (expr, error) {
	l, err := p.arith()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && compareOps[p.cur().text] {
		op := p.next().text
		r, err := p.arith()
		if err != nil {
			return nil, err
		}
		l = binOp{op, l, r}
	}
	return l, nil
}

func (p *parser) arith() (expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next().text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = binOp{op, l, r}
	}
	return l, nil
}

func (p *parser) term() (expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") || p.atOp("//") {
		op := p.next().text
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = binOp{op, l, r}
	}
	return l, nil
}

func (p *parser) factor() (expr, error) {
	if p.atOp("-") {
		p.pos++
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return unary{"-", x}, nil
	}
	if p.atOp("+") {
		p.pos++
		return p.factor()
	}
	return p.power()
}

func (p *parser) power() (expr, error) {
	base, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.eatOp("**") {
		exp, err := p.factor() // right associative
		if err != nil {
			return nil, err
		}
		return binOp{"**", base, exp}, nil
	}
	return base, nil
}

// postfix parses an atom followed by any number of [index] suffixes.
func (p *parser) postfix() (expr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.eatOp("[") {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		x = indexExpr{obj: x, idx: idx}
	}
	return x, nil
}

func (p *parser) atom() (expr, error) {
	switch {
	case p.eatOp("{"):
		var d dictLit
		for !p.atOp("}") {
			k, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.keys = append(d.keys, k)
			d.vals = append(d.vals, v)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return d, nil
	case p.eatOp("["):
		var elems []expr
		for !p.atOp("]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return listLit{elems}, nil
	case p.at(tokNumber):
		return numLit{p.next().num}, nil
	case p.eatKw("True"):
		return numLit{1}, nil
	case p.eatKw("False"), p.eatKw("None"):
		return numLit{0}, nil
	case p.at(tokString):
		return strLit{p.next().text}, nil
	case p.at(tokName):
		name := p.next().text
		// Qualified name: math.sin → "math.sin"
		for p.atOp(".") {
			p.pos++
			if !p.at(tokName) {
				return nil, p.errf("expected attribute name")
			}
			name += "." + p.next().text
		}
		if p.eatOp("(") {
			var args []expr
			for !p.atOp(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.eatOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call{fn: name, args: args}, nil
		}
		return nameRef{name}, nil
	case p.eatOp("("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expectOp(")")
	default:
		return nil, p.errf("unexpected token %v", p.cur())
	}
}
