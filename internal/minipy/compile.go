package minipy

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Opcodes of the stack VM.
const (
	opConst byte = iota // u16 const-pool index → push
	opLoad              // u16 slot → push cell value
	opStore             // u16 slot ← pop
	opAdd
	opSub
	opMul
	opDiv
	opFloorDiv
	opMod
	opPow
	opNeg
	opNot
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNE
	opJmp     // u16 absolute target
	opJz      // u16 target; pop, jump if zero
	opJnzKeep // u16 target; jump if nonzero keeping value (for `or`)
	opJzKeep  // u16 target; jump if zero keeping value (for `and`)
	opPop
	opCallB // u8 builtin id, u8 argc
	opCallF // u16 function index, u8 argc
	opRet
	opNop
	opConstStr   // u16 string-pool index → push string value
	opBuildList  // u16 element count → pop elements, push list
	opIndex      // pop idx, obj → push obj[idx]
	opStoreIndex // pop val, idx, obj → obj[idx] = val
	opMethod     // u8 method id, u8 argc: pop args, receiver
	opBuildDict  // u16 pair count → pop key/value pairs, push dict
)

// Method identifiers for opMethod.
const (
	mAppend byte = iota
	mPop
	mGet  // dict.get(key) → value or None
	mKeys // dict.keys() → list
)

// Builtin identifiers.
const (
	bSqrt byte = iota
	bSin
	bCos
	bTan
	bAbs
	bFloor
	bCeil
	bExp
	bLog
	bPow
	bMin
	bMax
	bTime  // virtual time in seconds
	bInt   // truncate
	bPrint // write the value to stdout through the kernel
	bLen   // length of a string or list
	bOrd   // first byte of a string
	bChr   // one-character string from a byte value
	bStr   // stringify
)

// builtinIDs resolves the callable names the subset supports. Both bare
// and math-qualified spellings are accepted.
var builtinIDs = map[string]byte{
	"sqrt": bSqrt, "math.sqrt": bSqrt,
	"sin": bSin, "math.sin": bSin,
	"cos": bCos, "math.cos": bCos,
	"tan": bTan, "math.tan": bTan,
	"abs": bAbs, "math.fabs": bAbs,
	"floor": bFloor, "math.floor": bFloor,
	"ceil": bCeil, "math.ceil": bCeil,
	"exp": bExp, "math.exp": bExp,
	"log": bLog, "math.log": bLog,
	"pow": bPow, "math.pow": bPow,
	"min": bMin, "max": bMax,
	"time": bTime, "time.time": bTime,
	"int": bInt, "float": bNop(),
	"print": bPrint,
	"len":   bLen, "ord": bOrd, "chr": bChr, "str": bStr,
}

// bNop maps float() to an identity builtin id; reuse bInt semantics minus
// truncation by giving it a distinct id.
func bNop() byte { return 200 }

// builtinArgc gives each builtin's expected arity.
var builtinArgc = map[byte]int{
	bSqrt: 1, bSin: 1, bCos: 1, bTan: 1, bAbs: 1, bFloor: 1, bCeil: 1,
	bExp: 1, bLog: 1, bPow: 2, bMin: 2, bMax: 2, bTime: 0, bInt: 1, 200: 1,
	bPrint: 1, bLen: 1, bOrd: 1, bChr: 1, bStr: 1,
}

// Func is one compiled function.
type Func struct {
	Name    string
	NParams int
	NLocals int // includes params
	Code    []byte
	// locals maps names to slots (params first); globals referenced from
	// the function resolve to global slots via globalRefs.
	locals map[string]int
}

// Program is a compiled module.
type Program struct {
	Funcs    []*Func // Funcs[0] is the module body ("__main__")
	Consts   []float64
	Strings  []string // string-literal pool
	NGlobals int
	globals  map[string]int
	funcIdx  map[string]int
}

// FuncIndex resolves a function name to its index.
func (pr *Program) FuncIndex(name string) (int, bool) {
	i, ok := pr.funcIdx[name]
	return i, ok
}

// GlobalSlot resolves a global variable name to its slot.
func (pr *Program) GlobalSlot(name string) (int, bool) {
	i, ok := pr.globals[name]
	return i, ok
}

// Compile parses and compiles a module.
func Compile(src string) (*Program, error) {
	mod, err := parse(src)
	if err != nil {
		return nil, err
	}
	pr := &Program{
		globals: map[string]int{},
		funcIdx: map[string]int{},
	}
	// Function 0 is the module body.
	main := &Func{Name: "__main__", locals: map[string]int{}}
	pr.Funcs = append(pr.Funcs, main)
	pr.funcIdx["__main__"] = 0

	// First pass: collect function definitions so forward calls resolve.
	var topLevel []stmt
	for _, s := range mod.body {
		if d, ok := s.(defStmt); ok {
			f := &Func{Name: d.name, NParams: len(d.params), locals: map[string]int{}}
			for _, prm := range d.params {
				f.locals[prm] = len(f.locals)
			}
			pr.funcIdx[d.name] = len(pr.Funcs)
			pr.Funcs = append(pr.Funcs, f)
		} else {
			topLevel = append(topLevel, s)
		}
	}
	// Second pass: compile bodies.
	for _, s := range mod.body {
		if d, ok := s.(defStmt); ok {
			f := pr.Funcs[pr.funcIdx[d.name]]
			c := &compiler{pr: pr, fn: f, isMain: false, globalDecl: map[string]bool{}}
			if err := c.block(d.body); err != nil {
				return nil, err
			}
			c.emit(opConst, c.constIdx(0))
			c.emitOp(opRet)
			f.NLocals = len(f.locals)
		}
	}
	cm := &compiler{pr: pr, fn: main, isMain: true, globalDecl: map[string]bool{}}
	if err := cm.block(topLevel); err != nil {
		return nil, err
	}
	cm.emit(opConst, cm.constIdx(0))
	cm.emitOp(opRet)
	main.NLocals = 0 // module body uses only globals
	pr.NGlobals = len(pr.globals)
	return pr, nil
}

// splitMethod splits "recv.meth" into its parts; multi-dot names (module
// qualifications) are not methods.
func splitMethod(fn string) (head, meth string, ok bool) {
	for i := 0; i < len(fn); i++ {
		if fn[i] == '.' {
			head, meth = fn[:i], fn[i+1:]
			for j := 0; j < len(meth); j++ {
				if meth[j] == '.' {
					return "", "", false
				}
			}
			return head, meth, head != "" && meth != ""
		}
	}
	return "", "", false
}

// compiler emits bytecode for one function.
type compiler struct {
	pr         *Program
	fn         *Func
	isMain     bool
	globalDecl map[string]bool
	breaks     []int // patch sites of innermost loop
	continues  []int
	loopDepth  int
}

func (c *compiler) emitOp(op byte) { c.fn.Code = append(c.fn.Code, op) }

func (c *compiler) emit(op byte, operand int) {
	c.fn.Code = append(c.fn.Code, op, byte(operand), byte(operand>>8))
}

func (c *compiler) emitCallB(id byte, argc int) {
	c.fn.Code = append(c.fn.Code, opCallB, id, byte(argc))
}

func (c *compiler) emitCallF(idx, argc int) {
	c.fn.Code = append(c.fn.Code, opCallF, byte(idx), byte(idx>>8), byte(argc))
}

// jump emits a jump with a placeholder target, returning the patch site.
func (c *compiler) jump(op byte) int {
	c.emit(op, 0)
	return len(c.fn.Code) - 2
}

func (c *compiler) patch(site int) {
	binary.LittleEndian.PutUint16(c.fn.Code[site:], uint16(len(c.fn.Code)))
}

func (c *compiler) patchTo(site, target int) {
	binary.LittleEndian.PutUint16(c.fn.Code[site:], uint16(target))
}

func (c *compiler) strIdx(v string) int {
	for i, x := range c.pr.Strings {
		if x == v {
			return i
		}
	}
	c.pr.Strings = append(c.pr.Strings, v)
	return len(c.pr.Strings) - 1
}

func (c *compiler) constIdx(v float64) int {
	for i, x := range c.pr.Consts {
		if x == v || (math.IsNaN(x) && math.IsNaN(v)) {
			return i
		}
	}
	c.pr.Consts = append(c.pr.Consts, v)
	return len(c.pr.Consts) - 1
}

// slotFor resolves a name for load/store. Slots ≥ globalBase refer to the
// global table; the VM splits on this.
const globalBase = 0x8000

func (c *compiler) slotFor(name string, store bool) int {
	if !c.isMain && !c.globalDecl[name] {
		if s, ok := c.fn.locals[name]; ok {
			return s
		}
		if store {
			s := len(c.fn.locals)
			c.fn.locals[name] = s
			return s
		}
		// Fall through to globals for reads of names never assigned
		// locally.
	}
	if s, ok := c.pr.globals[name]; ok {
		return globalBase + s
	}
	s := len(c.pr.globals)
	c.pr.globals[name] = s
	return globalBase + s
}

func (c *compiler) block(body []stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s stmt) error {
	switch s := s.(type) {
	case passStmt:
		return nil
	case globalStmt:
		for _, n := range s.names {
			c.globalDecl[n] = true
		}
		return nil
	case assign:
		if s.op != "=" {
			// augmented: load, op, store
			c.emit(opLoad, c.slotFor(s.name, false))
			if err := c.expr(s.val); err != nil {
				return err
			}
			switch s.op {
			case "+=":
				c.emitOp(opAdd)
			case "-=":
				c.emitOp(opSub)
			case "*=":
				c.emitOp(opMul)
			case "/=":
				c.emitOp(opDiv)
			}
		} else {
			if err := c.expr(s.val); err != nil {
				return err
			}
		}
		c.emit(opStore, c.slotFor(s.name, true))
		return nil
	case exprStmt:
		if err := c.expr(s.x); err != nil {
			return err
		}
		c.emitOp(opPop)
		return nil
	case indexAssign:
		if err := c.expr(s.obj); err != nil {
			return err
		}
		if err := c.expr(s.idx); err != nil {
			return err
		}
		if err := c.expr(s.val); err != nil {
			return err
		}
		c.emitOp(opStoreIndex)
		return nil
	case returnStmt:
		if s.x == nil {
			c.emit(opConst, c.constIdx(0))
		} else if err := c.expr(s.x); err != nil {
			return err
		}
		c.emitOp(opRet)
		return nil
	case breakStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("minipy: break outside loop")
		}
		c.breaks = append(c.breaks, c.jump(opJmp))
		return nil
	case continueStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("minipy: continue outside loop")
		}
		c.continues = append(c.continues, c.jump(opJmp))
		return nil
	case ifStmt:
		if err := c.expr(s.cond); err != nil {
			return err
		}
		jz := c.jump(opJz)
		if err := c.block(s.then); err != nil {
			return err
		}
		if len(s.els) > 0 {
			jend := c.jump(opJmp)
			c.patch(jz)
			if err := c.block(s.els); err != nil {
				return err
			}
			c.patch(jend)
		} else {
			c.patch(jz)
		}
		return nil
	case whileStmt:
		top := len(c.fn.Code)
		if err := c.expr(s.cond); err != nil {
			return err
		}
		jz := c.jump(opJz)
		savedB, savedC := c.breaks, c.continues
		c.breaks, c.continues = nil, nil
		c.loopDepth++
		if err := c.block(s.body); err != nil {
			return err
		}
		c.loopDepth--
		for _, site := range c.continues {
			c.patchTo(site, top)
		}
		c.emit(opJmp, top)
		c.patch(jz)
		for _, site := range c.breaks {
			c.patch(site)
		}
		c.breaks, c.continues = savedB, savedC
		return nil
	case forStmt:
		// Desugared: i = start; while i < stop: body; i += step
		slot := c.slotFor(s.name, true)
		if err := c.expr(s.start); err != nil {
			return err
		}
		c.emit(opStore, slot)
		// stop and step are evaluated once into hidden slots.
		stopSlot := c.slotFor(fmt.Sprintf("$stop%d", len(c.fn.Code)), true)
		if err := c.expr(s.stop); err != nil {
			return err
		}
		c.emit(opStore, stopSlot)
		stepSlot := c.slotFor(fmt.Sprintf("$step%d", len(c.fn.Code)), true)
		if s.stp == nil {
			c.emit(opConst, c.constIdx(1))
		} else if err := c.expr(s.stp); err != nil {
			return err
		}
		c.emit(opStore, stepSlot)
		top := len(c.fn.Code)
		c.emit(opLoad, slot)
		c.emit(opLoad, stopSlot)
		c.emitOp(opLT)
		jz := c.jump(opJz)
		savedB, savedC := c.breaks, c.continues
		c.breaks, c.continues = nil, nil
		c.loopDepth++
		if err := c.block(s.body); err != nil {
			return err
		}
		c.loopDepth--
		incr := len(c.fn.Code)
		for _, site := range c.continues {
			c.patchTo(site, incr)
		}
		c.emit(opLoad, slot)
		c.emit(opLoad, stepSlot)
		c.emitOp(opAdd)
		c.emit(opStore, slot)
		c.emit(opJmp, top)
		c.patch(jz)
		for _, site := range c.breaks {
			c.patch(site)
		}
		c.breaks, c.continues = savedB, savedC
		return nil
	case defStmt:
		return fmt.Errorf("minipy: nested def not supported")
	default:
		return fmt.Errorf("minipy: unknown statement %T", s)
	}
}

func (c *compiler) expr(x expr) error {
	switch x := x.(type) {
	case numLit:
		c.emit(opConst, c.constIdx(x.v))
		return nil
	case strLit:
		c.emit(opConstStr, c.strIdx(x.s))
		return nil
	case listLit:
		for _, e := range x.elems {
			if err := c.expr(e); err != nil {
				return err
			}
		}
		c.emit(opBuildList, len(x.elems))
		return nil
	case dictLit:
		for i := range x.keys {
			if err := c.expr(x.keys[i]); err != nil {
				return err
			}
			if err := c.expr(x.vals[i]); err != nil {
				return err
			}
		}
		c.emit(opBuildDict, len(x.keys))
		return nil
	case indexExpr:
		if err := c.expr(x.obj); err != nil {
			return err
		}
		if err := c.expr(x.idx); err != nil {
			return err
		}
		c.emitOp(opIndex)
		return nil
	case nameRef:
		c.emit(opLoad, c.slotFor(x.name, false))
		return nil
	case unary:
		if err := c.expr(x.x); err != nil {
			return err
		}
		if x.op == "-" {
			c.emitOp(opNeg)
		} else {
			c.emitOp(opNot)
		}
		return nil
	case boolOp:
		if err := c.expr(x.l); err != nil {
			return err
		}
		var site int
		if x.op == "and" {
			site = c.jump(opJzKeep)
		} else {
			site = c.jump(opJnzKeep)
		}
		c.emitOp(opPop)
		if err := c.expr(x.r); err != nil {
			return err
		}
		c.patch(site)
		return nil
	case binOp:
		if err := c.expr(x.l); err != nil {
			return err
		}
		if err := c.expr(x.r); err != nil {
			return err
		}
		ops := map[string]byte{
			"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "//": opFloorDiv,
			"%": opMod, "**": opPow, "<": opLT, "<=": opLE, ">": opGT,
			">=": opGE, "==": opEQ, "!=": opNE,
		}
		op, ok := ops[x.op]
		if !ok {
			return fmt.Errorf("minipy: unknown operator %q", x.op)
		}
		c.emitOp(op)
		return nil
	case call:
		// Method call: receiver.method(args) — receiver pushed first.
		if head, meth, ok := splitMethod(x.fn); ok {
			if _, isBuiltin := builtinIDs[x.fn]; !isBuiltin {
				var mid byte
				switch meth {
				case "append":
					mid = mAppend
					if len(x.args) != 1 {
						return fmt.Errorf("minipy: append takes 1 arg")
					}
				case "pop":
					mid = mPop
					if len(x.args) != 0 {
						return fmt.Errorf("minipy: pop takes no args")
					}
				case "get":
					mid = mGet
					if len(x.args) != 1 {
						return fmt.Errorf("minipy: get takes 1 arg")
					}
				case "keys":
					mid = mKeys
					if len(x.args) != 0 {
						return fmt.Errorf("minipy: keys takes no args")
					}
				default:
					return fmt.Errorf("minipy: unknown method %q", meth)
				}
				c.emit(opLoad, c.slotFor(head, false))
				for _, a := range x.args {
					if err := c.expr(a); err != nil {
						return err
					}
				}
				c.fn.Code = append(c.fn.Code, opMethod, mid, byte(len(x.args)))
				return nil
			}
		}
		for _, a := range x.args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		if id, ok := builtinIDs[x.fn]; ok {
			want := builtinArgc[id]
			if want >= 0 && len(x.args) != want {
				return fmt.Errorf("minipy: %s takes %d args, got %d", x.fn, want, len(x.args))
			}
			c.emitCallB(id, len(x.args))
			return nil
		}
		if idx, ok := c.pr.funcIdx[x.fn]; ok {
			f := c.pr.Funcs[idx]
			if len(x.args) != f.NParams {
				return fmt.Errorf("minipy: %s takes %d args, got %d", x.fn, f.NParams, len(x.args))
			}
			c.emitCallF(idx, len(x.args))
			return nil
		}
		return fmt.Errorf("minipy: unknown function %q", x.fn)
	default:
		return fmt.Errorf("minipy: unknown expression %T", x)
	}
}
