package minipy_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/minipy"
)

// FuzzCompile is the native fuzz entry for the compiler front end
// (lexer → parser → code generator): arbitrary source may be rejected
// with an error but must never panic. Seed corpus under
// testdata/fuzz/FuzzCompile; CI runs a short -fuzz smoke on it.
func FuzzCompile(f *testing.F) {
	f.Add("def f():\n    return 1 + 2 * 3\n")
	f.Add("for i in range(10):\n    if i % 2 == 0:\n        continue\n    break\n")
	f.Add("x = {1: \"a\", 2: \"b\"}\ny = x.get(1)\n")
	f.Add("def broken(:\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		_, _ = minipy.Compile(src)
	})
}

// TestCompileNeverPanics throws random token soup at the compiler: it may
// (and usually must) return an error, but it must never panic.
func TestCompileNeverPanics(t *testing.T) {
	tokens := []string{
		"def", "return", "for", "while", "if", "else", "elif", "in",
		"range", "break", "continue", "global", "import", "and", "or",
		"not", "x", "y", "foo", "math.sin", "0", "1", "3.14", `"str"`,
		"(", ")", "[", "]", "{", "}", ":", ",", "+", "-", "*", "/", "//",
		"%", "**", "==", "!=", "<", ">", "<=", ">=", "=", ".", "\n",
		"    ", "pass",
	}
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := r.Intn(40) + 1
		for i := 0; i < n; i++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			if r.Intn(4) == 0 {
				b.WriteString(" ")
			}
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("Compile panicked on seed %d: %v\nsource: %q", seed, rec, src)
				}
			}()
			_, _ = minipy.Compile(src)
		}()
	}
}

// TestDictDifferential drives the in-VM dictionary and a host Go map with
// the same random operation sequence and compares observations.
func TestDictDifferential(t *testing.T) {
	// The program exposes dict primitives to the host driver.
	src := `
d = {}

def dset(k, v):
    global d
    d[k] = v
    return len(d)

def dget(k):
    return d.get(k)

def dlen():
    return len(d)
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		r := rand.New(rand.NewSource(42))
		ref := map[float64]float64{}
		for i := 0; i < 300; i++ {
			key := float64(r.Intn(60))
			switch r.Intn(3) {
			case 0, 1: // set
				val := float64(r.Intn(1000))
				ref[key] = val
				n, err := rt.Call(pr, "dset", key, val)
				if err != nil {
					t.Fatalf("dset: %v", err)
				}
				if int(n) != len(ref) {
					t.Fatalf("op %d: len %v != ref %d", i, n, len(ref))
				}
			case 2: // get
				got, err := rt.Call(pr, "dget", key)
				if err != nil {
					t.Fatalf("dget: %v", err)
				}
				want, ok := ref[key]
				if !ok {
					want = 0 // None formats as numeric 0 through Call
				}
				if got != want {
					t.Fatalf("op %d: dget(%v) = %v, want %v", i, key, got, want)
				}
			}
		}
		n, err := rt.Call(pr, "dlen")
		if err != nil || int(n) != len(ref) {
			t.Fatalf("final len %v (%v) != %d", n, err, len(ref))
		}
	})
}

// TestDeepNesting pushes parser/VM recursion: deeply nested lists and
// parenthesized expressions behave or fail cleanly.
func TestDeepNesting(t *testing.T) {
	depth := 30
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	src := fmt.Sprintf("result = %s + 1\n%s", expr, resultFooter)
	if got := evalGlobal(t, src); got != 2 {
		t.Fatalf("nested parens = %v", got)
	}
	nested := strings.Repeat("[", 10) + "7" + strings.Repeat("]", 10)
	src2 := "x = " + nested + "\nresult = x" + strings.Repeat("[0]", 10) + "\n" + resultFooter
	if got := evalGlobal(t, src2); got != 7 {
		t.Fatalf("nested lists = %v", got)
	}
}
