package minipy_test

import (
	"math"
	"strings"
	"testing"

	"ufork/internal/alloc"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/minipy"
	"ufork/internal/model"
)

// faasSpec is a μprocess image big enough for interpreter workloads.
func faasSpec() kernel.ProgramSpec {
	s := kernel.HelloWorldSpec()
	s.Name = "minipy"
	s.HeapPages = 2048
	s.AllocMetaPages = 64
	return s
}

// withRuntime compiles src, installs it in a fresh μprocess, runs the
// module body and hands the runtime to fn.
func withRuntime(t *testing.T, src string, fn func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime)) {
	t.Helper()
	pr, err := minipy.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	if _, err := k.Spawn(faasSpec(), 0, func(p *kernel.Proc) {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			t.Errorf("alloc init: %v", err)
			return
		}
		rt, err := minipy.Install(p, a, pr)
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if _, err := rt.RunMain(); err != nil {
			t.Errorf("run main: %v", err)
			return
		}
		fn(k, p, pr, rt)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

// evalGlobal runs src and returns the final value of global `result`.
func evalGlobal(t *testing.T, src string) float64 {
	t.Helper()
	var got float64
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		v, err := rt.Call(pr, "get_result")
		if err != nil {
			t.Fatalf("get_result: %v", err)
		}
		got = v
	})
	return got
}

const resultFooter = "\ndef get_result():\n    return result\n"

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"10 // 4", 2},
		{"10 % 3", 1},
		{"2 ** 10", 1024},
		{"-5 + 3", -2},
		{"2 < 3", 1},
		{"3 < 2", 0},
		{"2 == 2 and 3 > 1", 1},
		{"0 or 7", 7},
		{"not 0", 1},
		{"1 <= 1", 1},
		{"4 != 4", 0},
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			got := evalGlobal(t, "result = "+tc.expr+resultFooter)
			if got != tc.want {
				t.Fatalf("%s = %v, want %v", tc.expr, got, tc.want)
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	src := `
result = 0
for i in range(10):
    if i % 2 == 0:
        result += i
    else:
        result += 1
` + resultFooter
	// evens 0+2+4+6+8 = 20, odds contribute 5 → 25
	if got := evalGlobal(t, src); got != 25 {
		t.Fatalf("got %v, want 25", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
result = 0
i = 0
while True:
    i += 1
    if i > 100:
        break
    if i % 3 != 0:
        continue
    result += i
` + resultFooter
	// multiples of 3 up to 99: 3+6+...+99 = 3*(1+..+33) = 1683
	if got := evalGlobal(t, src); got != 1683 {
		t.Fatalf("got %v, want 1683", got)
	}
}

func TestRangeVariants(t *testing.T) {
	src := `
result = 0
for i in range(2, 10):
    result += 1
for j in range(0, 10, 3):
    result += 100
` + resultFooter
	// 8 iterations + 4 iterations (0,3,6,9) * 100
	if got := evalGlobal(t, src); got != 408 {
		t.Fatalf("got %v, want 408", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

result = fib(15)
` + resultFooter
	if got := evalGlobal(t, src); got != 610 {
		t.Fatalf("fib(15) = %v, want 610", got)
	}
}

func TestGlobalsFromFunction(t *testing.T) {
	src := `
counter = 0

def bump():
    global counter
    counter = counter + 1
    return counter

bump()
bump()
result = bump()
` + resultFooter
	if got := evalGlobal(t, src); got != 3 {
		t.Fatalf("got %v, want 3", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `
import math
result = math.sqrt(16) + math.floor(2.7) + abs(-3) + max(1, 9) + min(4, 2)
` + resultFooter
	if got := evalGlobal(t, src); got != 4+2+3+9+2 {
		t.Fatalf("got %v", got)
	}
}

func TestFloatOperationBenchmark(t *testing.T) {
	// The FunctionBench-style workload the FaaS experiment executes.
	src := `
import math

def float_operation(n):
    x = 0.0
    for i in range(n):
        x += math.sin(i) * math.cos(i) + math.sqrt(i)
    return x
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		got, err := rt.Call(pr, "float_operation", 50)
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		want := 0.0
		for i := 0; i < 50; i++ {
			f := float64(i)
			want += math.Sin(f)*math.Cos(f) + math.Sqrt(f)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("float_operation(50) = %v, want %v", got, want)
		}
	})
}

func TestComputeTimeCharged(t *testing.T) {
	src := `
def spin(n):
    x = 0
    for i in range(n):
        x += i
    return x
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		t0 := p.Now()
		if _, err := rt.Call(pr, "spin", 5000); err != nil {
			t.Fatal(err)
		}
		if p.Now() == t0 {
			t.Fatal("interpretation must consume virtual CPU time")
		}
	})
}

// TestZygoteForkRunsWarmRuntime is the FaaS core property: a forked child
// attaches to the inherited (relocated) runtime and calls a function
// without recompiling or reinstalling anything.
func TestZygoteForkRunsWarmRuntime(t *testing.T) {
	src := `
import math
warm = 42

def handler(x):
    return warm + math.sqrt(x)
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		for i := 0; i < 3; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				crt, err := minipy.Attach(c)
				if err != nil {
					t.Errorf("child attach: %v", err)
					return
				}
				v, err := crt.Call(pr, "handler", 16)
				if err != nil {
					t.Errorf("child call: %v", err)
					return
				}
				if v != 46 {
					t.Errorf("child handler = %v, want 46 (warm state!)", v)
				}
			})
			if err != nil {
				t.Fatalf("fork: %v", err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatalf("wait: %v", err)
			}
		}
		// The zygote's own state is untouched by children.
		v, err := rt.Call(pr, "handler", 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			t.Fatalf("zygote handler = %v, want 42", v)
		}
	})
}

// TestChildGlobalWritesIsolated: a child mutating a global must not
// affect the zygote or sibling children.
func TestChildGlobalWritesIsolated(t *testing.T) {
	src := `
state = 1

def mutate():
    global state
    state = state * 10
    return state

def read_state():
    return state
`
	withRuntime(t, src, func(k *kernel.Kernel, p *kernel.Proc, pr *minipy.Program, rt *minipy.Runtime) {
		for i := 0; i < 2; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				crt, err := minipy.Attach(c)
				if err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				v, err := crt.Call(pr, "mutate")
				if err != nil {
					t.Errorf("mutate: %v", err)
					return
				}
				if v != 10 {
					t.Errorf("child state = %v, want 10 (fresh copy each fork)", v)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		v, err := rt.Call(pr, "read_state")
		if err != nil {
			t.Fatal(err)
		}
		if v != 1 {
			t.Fatalf("zygote state = %v, want 1 (children isolated)", v)
		}
	})
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"for x in y:\n    pass",    // non-range for
		"def f(:\n    pass",        // bad params
		"x = ",                     // missing rhs
		"if 1\n    pass",           // missing colon
		"x = 1 +",                  // dangling op
		"while True:\npass\nbreak", // break outside loop
		"y = unknown_fn(1)",        // unknown function
	}
	for _, src := range bad {
		if _, err := minipy.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestLexerIndentation(t *testing.T) {
	src := `
if 1:
    if 2:
        x = 1
    y = 2
z = 3
result = 1
` + resultFooter
	if got := evalGlobal(t, src); got != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := strings.Join([]string{
		"# leading comment",
		"result = 5  # trailing",
		"",
		"   ",
		"# done",
	}, "\n") + resultFooter
	if got := evalGlobal(t, src); got != 5 {
		t.Fatalf("got %v", got)
	}
}
