package minipy

import (
	"fmt"

	"ufork/internal/cap"
)

// kDict extends the value kinds of value.go with a hash map.
const kDict uint64 = 4

// Dict object layout:
//
//	header: [count u64 | nbuckets u64 | buckets capability]
//	buckets: nbuckets slots of 64 bytes — a key value record followed by
//	a value record; an empty slot has key kind kNone.
//
// Open addressing with linear probing; the table doubles at 3/4 load.
// Like lists and strings, every byte lives in simulated memory behind
// capabilities, so forked children inherit relocated dictionaries.
const (
	dictCountOff    = 0
	dictNBucketsOff = 8
	dictBucketsOff  = 16
	dictSlotSize    = 2 * valueSize
	dictMinBuckets  = 8
)

// IsDict reports whether the value is a dictionary.
func (v Value) IsDict() bool { return v.kind == kDict }

// newDict allocates an empty dictionary.
func (rt *Runtime) newDict() (Value, error) {
	hdr, err := rt.a.Alloc(dictBucketsOff + cap.GranuleSize)
	if err != nil {
		return Value{}, err
	}
	buckets, err := rt.newDictBuckets(dictMinBuckets)
	if err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreU64(hdr, dictCountOff, 0); err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreU64(hdr, dictNBucketsOff, dictMinBuckets); err != nil {
		return Value{}, err
	}
	if err := rt.p.StoreCap(hdr, dictBucketsOff, buckets); err != nil {
		return Value{}, err
	}
	return Value{kind: kDict, obj: hdr}, nil
}

// newDictBuckets allocates an empty bucket array (all keys kNone).
func (rt *Runtime) newDictBuckets(n uint64) (cap.Capability, error) {
	buckets, err := rt.a.Alloc(n * dictSlotSize)
	if err != nil {
		return cap.Null(), err
	}
	for i := uint64(0); i < n; i++ {
		if err := rt.storeValueAt(buckets, i*dictSlotSize, None()); err != nil {
			return cap.Null(), err
		}
	}
	return buckets, nil
}

// hashValue hashes a key (number or string) for bucket selection.
func (rt *Runtime) hashValue(k Value) (uint64, error) {
	switch k.kind {
	case kNum:
		h := f64bits(k.num)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return h, nil
	case kStr:
		b, err := rt.strBytes(k)
		if err != nil {
			return 0, err
		}
		h := uint64(14695981039346656037)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
		return h, nil
	default:
		return 0, fmt.Errorf("minipy: unhashable key type")
	}
}

// keysEqual compares two keys.
func (rt *Runtime) keysEqual(a, b Value) (bool, error) {
	if a.kind != b.kind {
		return false, nil
	}
	switch a.kind {
	case kNum:
		return a.num == b.num, nil
	case kStr:
		ab, err := rt.strBytes(a)
		if err != nil {
			return false, err
		}
		bb, err := rt.strBytes(b)
		if err != nil {
			return false, err
		}
		return string(ab) == string(bb), nil
	default:
		return false, nil
	}
}

// dictFindSlot probes for key, returning the byte offset of its slot (or
// of the first empty slot) in the bucket array.
func (rt *Runtime) dictFindSlot(buckets cap.Capability, nbuckets uint64, key Value) (off uint64, found bool, err error) {
	h, err := rt.hashValue(key)
	if err != nil {
		return 0, false, err
	}
	for i := uint64(0); i < nbuckets; i++ {
		idx := (h + i) % nbuckets
		slot := idx * dictSlotSize
		k, err := rt.loadValueAt(buckets, slot)
		if err != nil {
			return 0, false, err
		}
		if k.kind == kNone {
			return slot, false, nil
		}
		eq, err := rt.keysEqual(k, key)
		if err != nil {
			return 0, false, err
		}
		if eq {
			return slot, true, nil
		}
	}
	return 0, false, fmt.Errorf("minipy: dict table full")
}

// dictGet returns the value for key, or (None, false) when absent.
func (rt *Runtime) dictGet(d, key Value) (Value, bool, error) {
	nbuckets, err := rt.p.LoadU64(d.obj, dictNBucketsOff)
	if err != nil {
		return Value{}, false, err
	}
	buckets, err := rt.p.LoadCap(d.obj, dictBucketsOff)
	if err != nil {
		return Value{}, false, err
	}
	slot, found, err := rt.dictFindSlot(buckets, nbuckets, key)
	if err != nil || !found {
		return None(), false, err
	}
	v, err := rt.loadValueAt(buckets, slot+valueSize)
	return v, true, err
}

// dictSet inserts or replaces key.
func (rt *Runtime) dictSet(d, key, val Value) error {
	if key.kind != kNum && key.kind != kStr {
		return fmt.Errorf("minipy: unhashable key type")
	}
	count, err := rt.p.LoadU64(d.obj, dictCountOff)
	if err != nil {
		return err
	}
	nbuckets, err := rt.p.LoadU64(d.obj, dictNBucketsOff)
	if err != nil {
		return err
	}
	if 4*(count+1) > 3*nbuckets {
		if err := rt.dictGrow(d, nbuckets*2); err != nil {
			return err
		}
		nbuckets *= 2
	}
	buckets, err := rt.p.LoadCap(d.obj, dictBucketsOff)
	if err != nil {
		return err
	}
	slot, found, err := rt.dictFindSlot(buckets, nbuckets, key)
	if err != nil {
		return err
	}
	if err := rt.storeValueAt(buckets, slot, key); err != nil {
		return err
	}
	if err := rt.storeValueAt(buckets, slot+valueSize, val); err != nil {
		return err
	}
	if !found {
		return rt.p.StoreU64(d.obj, dictCountOff, count+1)
	}
	return nil
}

// dictGrow rehashes into a table of newN buckets.
func (rt *Runtime) dictGrow(d Value, newN uint64) error {
	oldN, err := rt.p.LoadU64(d.obj, dictNBucketsOff)
	if err != nil {
		return err
	}
	oldBuckets, err := rt.p.LoadCap(d.obj, dictBucketsOff)
	if err != nil {
		return err
	}
	newBuckets, err := rt.newDictBuckets(newN)
	if err != nil {
		return err
	}
	for i := uint64(0); i < oldN; i++ {
		k, err := rt.loadValueAt(oldBuckets, i*dictSlotSize)
		if err != nil {
			return err
		}
		if k.kind == kNone {
			continue
		}
		v, err := rt.loadValueAt(oldBuckets, i*dictSlotSize+valueSize)
		if err != nil {
			return err
		}
		slot, _, err := rt.dictFindSlot(newBuckets, newN, k)
		if err != nil {
			return err
		}
		if err := rt.storeValueAt(newBuckets, slot, k); err != nil {
			return err
		}
		if err := rt.storeValueAt(newBuckets, slot+valueSize, v); err != nil {
			return err
		}
	}
	if err := rt.a.Free(oldBuckets); err != nil {
		return err
	}
	if err := rt.p.StoreCap(d.obj, dictBucketsOff, newBuckets); err != nil {
		return err
	}
	return rt.p.StoreU64(d.obj, dictNBucketsOff, newN)
}

// dictKeys returns a list of the dictionary's keys.
func (rt *Runtime) dictKeys(d Value) (Value, error) {
	nbuckets, err := rt.p.LoadU64(d.obj, dictNBucketsOff)
	if err != nil {
		return Value{}, err
	}
	buckets, err := rt.p.LoadCap(d.obj, dictBucketsOff)
	if err != nil {
		return Value{}, err
	}
	var keys []Value
	for i := uint64(0); i < nbuckets; i++ {
		k, err := rt.loadValueAt(buckets, i*dictSlotSize)
		if err != nil {
			return Value{}, err
		}
		if k.kind != kNone {
			keys = append(keys, k)
		}
	}
	return rt.newList(keys)
}

// formatDict renders {'k': v, ...} for print/str.
func (rt *Runtime) formatDict(d Value) (string, error) {
	nbuckets, err := rt.p.LoadU64(d.obj, dictNBucketsOff)
	if err != nil {
		return "", err
	}
	buckets, err := rt.p.LoadCap(d.obj, dictBucketsOff)
	if err != nil {
		return "", err
	}
	s := "{"
	first := true
	for i := uint64(0); i < nbuckets; i++ {
		k, err := rt.loadValueAt(buckets, i*dictSlotSize)
		if err != nil {
			return "", err
		}
		if k.kind == kNone {
			continue
		}
		v, err := rt.loadValueAt(buckets, i*dictSlotSize+valueSize)
		if err != nil {
			return "", err
		}
		ks, err := rt.Format(k)
		if err != nil {
			return "", err
		}
		if k.kind == kStr {
			ks = "'" + ks + "'"
		}
		vs, err := rt.Format(v)
		if err != nil {
			return "", err
		}
		if v.kind == kStr {
			vs = "'" + vs + "'"
		}
		if !first {
			s += ", "
		}
		first = false
		s += ks + ": " + vs
	}
	return s + "}", nil
}
