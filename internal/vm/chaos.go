// Chaos-harness surface of the virtual-memory substrate: injectable PTE
// install failures and spurious page faults. Inert (one nil compare on the
// translate/map paths) unless a harness arms the hooks.
package vm

import "errors"

// ErrInjected marks a fault-injected mapping failure, so callers and the
// chaos harness can tell deliberate failures from real bugs.
var ErrInjected = errors.New("vm: injected PTE install failure")

// Hooks are the optional chaos interception points of one address space.
type Hooks struct {
	// FailMap, when non-nil, is consulted before every PTE install; a true
	// return fails the Map with ErrInjected and no state change, modelling
	// page-table allocation failure mid-fork or mid-load.
	FailMap func(vpn VPN) bool
	// SpuriousFault, when non-nil, may turn an otherwise-successful WRITE
	// translation of a writable, singly-referenced page into a spurious
	// write-protect fault. The fault handler must resolve it idempotently
	// (last-reference adopt) and the retried access must succeed — the
	// re-entrant fault path real TLBs exercise. The hook is only consulted
	// in exactly that safe shape, so a correct handler is semantically
	// invisible; a handler that double-copies or loses tags is not.
	SpuriousFault func(vpn VPN) bool
}

// SetHooks installs (or, with nil, removes) the chaos interception points.
func (as *AddressSpace) SetHooks(h *Hooks) { as.hooks = h }
