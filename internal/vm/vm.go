// Package vm implements the virtual-memory substrate: page tables with
// per-PTE permissions, reference-counted frame sharing, demand faults, and
// the Morello-style "fault on capability load" PTE bit that μFork's
// Copy-on-Pointer-Access strategy requires (§4.2).
//
// A single-address-space OS uses one AddressSpace shared by the kernel and
// every μprocess; a multi-address-space baseline (CheriBSD-like) creates
// one AddressSpace per process. All copy-on-write-style sharing is
// expressed with reference-counted Page descriptors: a write to a page with
// more than one reference triggers a copy, a write to the last reference
// simply takes ownership.
package vm

import (
	"errors"
	"fmt"
	"sort"

	"ufork/internal/obs"
	"ufork/internal/tmem"
)

// PageSize re-exports the frame size for convenience.
const PageSize = tmem.PageSize

// VPN is a virtual page number.
type VPN uint64

// VPNOf returns the virtual page number containing va.
func VPNOf(va uint64) VPN { return VPN(va / PageSize) }

// PageOff returns the offset of va within its page.
func PageOff(va uint64) uint64 { return va % PageSize }

// Prot is a PTE permission set.
type Prot uint8

const (
	// ProtRead permits data loads.
	ProtRead Prot = 1 << iota
	// ProtWrite permits data stores.
	ProtWrite
	// ProtExec permits instruction fetch.
	ProtExec
	// ProtCapLoadFault makes loads of tagged (capability) granules fault
	// while permitting plain data loads: the Morello load-side barrier bit
	// CoPA is built on. Plain reads proceed; a capability load traps so the
	// kernel can copy + relocate the page first.
	ProtCapLoadFault
)

// ProtRW is read+write.
const ProtRW = ProtRead | ProtWrite

// ProtRX is read+execute.
const ProtRX = ProtRead | ProtExec

// FaultKind classifies page faults.
type FaultKind int

const (
	// FaultNone means the access translated cleanly.
	FaultNone FaultKind = iota
	// FaultNotMapped means no PTE covers the address.
	FaultNotMapped
	// FaultNoRead means a load hit a page without ProtRead (Copy-on-Access
	// pages are mapped with no permissions at all).
	FaultNoRead
	// FaultWriteProtect means a store hit a read-only page (CoW/CoPA).
	FaultWriteProtect
	// FaultCapLoad means a capability load hit a ProtCapLoadFault page.
	FaultCapLoad
	// FaultNoExec means instruction fetch from a non-executable page.
	FaultNoExec
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotMapped:
		return "not-mapped"
	case FaultNoRead:
		return "no-read"
	case FaultWriteProtect:
		return "write-protect"
	case FaultCapLoad:
		return "cap-load"
	case FaultNoExec:
		return "no-exec"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault describes a page fault.
type Fault struct {
	Kind FaultKind
	VA   uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %v fault at %#x", f.Kind, f.VA)
}

// Access classifies a memory access for translation purposes.
type Access int

const (
	// AccRead is a plain data load.
	AccRead Access = iota
	// AccWrite is a data store.
	AccWrite
	// AccCapRead is a capability (tagged granule) load.
	AccCapRead
	// AccCapWrite is a capability store (a store for protection purposes).
	AccCapWrite
	// AccExec is instruction fetch.
	AccExec
)

// Page is a reference-counted descriptor of one physical frame. Multiple
// PTEs (across or within address spaces) may reference the same Page; the
// reference count drives copy-on-write decisions.
type Page struct {
	PFN  tmem.PFN
	Refs int
}

// PTE is a page-table entry.
type PTE struct {
	Page *Page
	Prot Prot
}

// Errors returned by mapping operations.
var (
	ErrAlreadyMapped = errors.New("vm: page already mapped")
	ErrNotMapped     = errors.New("vm: page not mapped")
)

// Page-table geometry: PTEs live in fixed 512-entry directory nodes keyed
// by vpn>>dirBits, like a real two-level radix table. Directories slab-
// allocate their PTEs (one allocation per 512 mappings instead of one per
// Map), empty directories return to a free pool, and range walks iterate
// directory slots in index order — naturally ascending, no sorting.
const (
	dirBits = 9
	dirSize = 1 << dirBits
	dirMask = dirSize - 1
)

// pageDir is one directory node. A slot is live iff its Page is non-nil;
// live counts them so the node can be pooled the moment it empties. A
// pooled node is always all-zero: every Unmap clears its slot.
type pageDir struct {
	ptes [dirSize]PTE
	live int
}

// AddressSpace is one page table. The zero value is not usable; call
// NewAddressSpace.
//
// *PTE pointers returned by Lookup/Translate/RangeVPNs point into
// directory storage and remain valid only until that mapping is unmapped.
type AddressSpace struct {
	mem  *tmem.Memory
	dirs map[VPN]*pageDir
	// mapped counts live PTEs across all directories.
	mapped int
	// dirPool recycles emptied directory nodes: fork/exit churn maps and
	// unmaps tens of thousands of pages and the node allocations dominated.
	dirPool []*pageDir
	// scratch is the reusable VPN snapshot buffer for range walks.
	scratch []VPN
	// lastKey/lastDir cache the most recent directory hit; sequential page
	// walks (copies, region scans) then skip the map lookup entirely.
	lastKey VPN
	lastDir *pageDir

	// Stats counts fault activity for experiment accounting.
	Stats Stats

	// hooks holds the optional chaos interception points; nil in production.
	hooks *Hooks

	// obs, when non-nil, observes page-table mutations (the memory-
	// provenance plane's mapping stream). Each mutation path pays one nil
	// check when no observer is installed.
	obs Observer
}

// Observer receives page-table mutation notifications. OnMap fires after a
// PTE is installed (the page's reference count already incremented);
// OnUnmap after a PTE is removed (reference count already decremented, the
// frame not yet freed); OnReplace when MakePrivate swaps a shared page for
// a private copy under an existing PTE. Callbacks run on the goroutine
// performing the mutation — the simulation goroutine.
type Observer interface {
	OnMap(vpn VPN, page *Page)
	OnUnmap(vpn VPN, page *Page)
	OnReplace(vpn VPN, old, new *Page)
}

// SetObserver installs o as the mutation observer; nil removes it.
func (as *AddressSpace) SetObserver(o Observer) { as.obs = o }

// numFaultKinds sizes the per-kind fault counter array.
const numFaultKinds = int(FaultNoExec) + 1

// Stats aggregates fault and copy counters per address space. Counters are
// atomic so concurrent host goroutines driving different kernels (and the
// race detector) see no data races, and Snapshot/Reset let harnesses drain
// them between benchmark iterations.
type Stats struct {
	faults        [numFaultKinds]obs.Counter
	PagesCopied   obs.Counter // frames duplicated by fault handling
	PagesAdopted  obs.Counter // last-reference pages taken over without a copy
	CapsRelocated obs.Counter // capabilities rewritten by relocation passes
}

// Fault returns the count of faults of the given kind.
func (s *Stats) Fault(kind FaultKind) uint64 {
	if int(kind) < 0 || int(kind) >= numFaultKinds {
		return 0
	}
	return s.faults[kind].Value()
}

// FaultTotal returns the count of all faults.
func (s *Stats) FaultTotal() uint64 {
	var n uint64
	for i := range s.faults {
		n += s.faults[i].Value()
	}
	return n
}

// Snapshot returns every nonzero counter as a name→value map.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range s.faults {
		if v := s.faults[i].Value(); v > 0 {
			out["fault."+FaultKind(i).String()] = v
		}
	}
	if v := s.PagesCopied.Value(); v > 0 {
		out["pages-copied"] = v
	}
	if v := s.PagesAdopted.Value(); v > 0 {
		out["pages-adopted"] = v
	}
	if v := s.CapsRelocated.Value(); v > 0 {
		out["caps-relocated"] = v
	}
	return out
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	for i := range s.faults {
		s.faults[i].Reset()
	}
	s.PagesCopied.Reset()
	s.PagesAdopted.Reset()
	s.CapsRelocated.Reset()
}

// NewAddressSpace creates an empty address space over physical memory mem.
func NewAddressSpace(mem *tmem.Memory) *AddressSpace {
	return &AddressSpace{
		mem:  mem,
		dirs: make(map[VPN]*pageDir),
	}
}

// Mem returns the backing physical memory.
func (as *AddressSpace) Mem() *tmem.Memory { return as.mem }

// MappedPages returns the number of mapped pages.
func (as *AddressSpace) MappedPages() int { return as.mapped }

// dir returns the directory node covering key (= vpn>>dirBits), creating
// one (from the pool when possible) if create is set.
func (as *AddressSpace) dir(key VPN, create bool) *pageDir {
	if as.lastDir != nil && as.lastKey == key {
		return as.lastDir
	}
	d := as.dirs[key]
	if d == nil {
		if !create {
			return nil
		}
		if n := len(as.dirPool); n > 0 {
			d = as.dirPool[n-1]
			as.dirPool[n-1] = nil
			as.dirPool = as.dirPool[:n-1]
		} else {
			d = &pageDir{}
		}
		as.dirs[key] = d
	}
	as.lastKey, as.lastDir = key, d
	return d
}

// Map installs a PTE for vpn referencing page with protection prot,
// incrementing the page's reference count.
func (as *AddressSpace) Map(vpn VPN, page *Page, prot Prot) error {
	if as.hooks != nil && as.hooks.FailMap != nil && as.hooks.FailMap(vpn) {
		return fmt.Errorf("%w: vpn %#x", ErrInjected, vpn)
	}
	d := as.dir(vpn>>dirBits, true)
	pte := &d.ptes[vpn&dirMask]
	if pte.Page != nil {
		return fmt.Errorf("%w: vpn %#x", ErrAlreadyMapped, vpn)
	}
	page.Refs++
	pte.Page, pte.Prot = page, prot
	d.live++
	as.mapped++
	if as.obs != nil {
		as.obs.OnMap(vpn, page)
	}
	return nil
}

// MapNew allocates a fresh zeroed frame, maps it at vpn and returns its
// page descriptor.
func (as *AddressSpace) MapNew(vpn VPN, prot Prot) (*Page, error) {
	pfn, err := as.mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	page := &Page{PFN: pfn}
	if err := as.Map(vpn, page, prot); err != nil {
		_ = as.mem.FreeFrame(pfn)
		return nil, err
	}
	return page, nil
}

// Unmap removes the PTE for vpn, dropping the page reference and freeing
// the frame when the last reference dies. A directory emptied by the unmap
// returns to the node pool.
func (as *AddressSpace) Unmap(vpn VPN) error {
	key := vpn >> dirBits
	d := as.dir(key, false)
	if d == nil || d.ptes[vpn&dirMask].Page == nil {
		return fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	pte := &d.ptes[vpn&dirMask]
	page := pte.Page
	*pte = PTE{}
	d.live--
	as.mapped--
	if d.live == 0 {
		delete(as.dirs, key)
		as.dirPool = append(as.dirPool, d)
		if as.lastDir == d {
			as.lastDir = nil
		}
	}
	page.Refs--
	if as.obs != nil {
		as.obs.OnUnmap(vpn, page)
	}
	if page.Refs == 0 {
		return as.mem.FreeFrame(page.PFN)
	}
	return nil
}

// Lookup returns the PTE for vpn, or nil when unmapped.
func (as *AddressSpace) Lookup(vpn VPN) *PTE {
	d := as.dir(vpn>>dirBits, false)
	if d == nil {
		return nil
	}
	if pte := &d.ptes[vpn&dirMask]; pte.Page != nil {
		return pte
	}
	return nil
}

// Protect replaces the protection bits of an existing mapping.
func (as *AddressSpace) Protect(vpn VPN, prot Prot) error {
	pte := as.Lookup(vpn)
	if pte == nil {
		return fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	pte.Prot = prot
	return nil
}

// Translate resolves va for the given access. On success it returns the
// backing PFN and in-page offset; on failure a *Fault describing why.
// Fault statistics are recorded.
func (as *AddressSpace) Translate(va uint64, acc Access) (tmem.PFN, uint64, *Fault) {
	pte := as.Lookup(VPNOf(va))
	if pte == nil {
		return as.fault(FaultNotMapped, va)
	}
	switch acc {
	case AccRead:
		if pte.Prot&ProtRead == 0 {
			return as.fault(FaultNoRead, va)
		}
	case AccCapRead:
		if pte.Prot&ProtRead == 0 {
			return as.fault(FaultNoRead, va)
		}
		if pte.Prot&ProtCapLoadFault != 0 {
			return as.fault(FaultCapLoad, va)
		}
	case AccWrite, AccCapWrite:
		if pte.Prot&ProtWrite == 0 {
			if pte.Prot&ProtRead == 0 && pte.Prot&ProtExec == 0 {
				return as.fault(FaultNoRead, va)
			}
			return as.fault(FaultWriteProtect, va)
		}
	case AccExec:
		if pte.Prot&ProtExec == 0 {
			return as.fault(FaultNoExec, va)
		}
	}
	// Spurious-fault injection fires only on the shape a last-reference
	// adopt resolves without semantic effect: a write to a writable,
	// privately-held page.
	if as.hooks != nil && as.hooks.SpuriousFault != nil &&
		(acc == AccWrite || acc == AccCapWrite) &&
		pte.Prot&ProtWrite != 0 && pte.Page.Refs == 1 &&
		as.hooks.SpuriousFault(VPNOf(va)) {
		return as.fault(FaultWriteProtect, va)
	}
	return pte.Page.PFN, PageOff(va), nil
}

func (as *AddressSpace) fault(kind FaultKind, va uint64) (tmem.PFN, uint64, *Fault) {
	as.Stats.faults[kind].Inc()
	return tmem.NoFrame, 0, &Fault{Kind: kind, VA: va}
}

// MakePrivate gives vpn its own private copy of the underlying frame if it
// is currently shared, or adopts the existing frame when this mapping holds
// the last reference. It returns the (possibly new) page descriptor and
// whether a physical copy happened. This is the CoW/CoA/CoPA resolution
// primitive.
func (as *AddressSpace) MakePrivate(vpn VPN, prot Prot) (*Page, bool, error) {
	pte := as.Lookup(vpn)
	if pte == nil {
		return nil, false, fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	if pte.Page.Refs == 1 {
		// Last reference: adopt in place, no copy needed.
		pte.Prot = prot
		as.Stats.PagesAdopted.Inc()
		return pte.Page, false, nil
	}
	pfn, err := as.mem.AllocFrameForCopy()
	if err != nil {
		return nil, false, err
	}
	if err := as.mem.CopyFrame(pfn, pte.Page.PFN); err != nil {
		_ = as.mem.FreeFrame(pfn)
		return nil, false, err
	}
	old := pte.Page
	old.Refs--
	pte.Page = &Page{PFN: pfn, Refs: 1}
	pte.Prot = prot
	as.Stats.PagesCopied.Inc()
	if as.obs != nil {
		as.obs.OnReplace(vpn, old, pte.Page)
	}
	return pte.Page, true, nil
}

// VPNs returns all mapped virtual page numbers in ascending order. Only
// the directory keys need sorting — a few dozen entries where the old flat
// table sorted every mapped page.
func (as *AddressSpace) VPNs() []VPN {
	keys := make([]VPN, 0, len(as.dirs))
	for k := range as.dirs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]VPN, 0, as.mapped)
	for _, k := range keys {
		d := as.dirs[k]
		for i := VPN(0); i < dirSize; i++ {
			if d.ptes[i].Page != nil {
				out = append(out, k<<dirBits|i)
			}
		}
	}
	return out
}

// snapshotRange collects the mapped VPNs of [startVPN, endVPN) in ascending
// order into as.scratch (taking ownership of the buffer, so a walk callback
// that itself walks this address space degrades to a fresh allocation
// rather than corruption) and returns it. Directory keys are probed
// sequentially — regions are contiguous, so the probe count is span/512.
func (as *AddressSpace) snapshotRange(startVPN, endVPN VPN) []VPN {
	scratch := as.scratch[:0]
	as.scratch = nil
	if startVPN >= endVPN || as.mapped == 0 {
		return scratch
	}
	startKey, endKey := startVPN>>dirBits, (endVPN-1)>>dirBits
	for key := startKey; key <= endKey; key++ {
		d := as.dirs[key]
		if d == nil {
			continue
		}
		lo, hi := VPN(0), VPN(dirSize)
		if key == startKey {
			lo = startVPN & dirMask
		}
		if key == endKey {
			hi = (endVPN-1)&dirMask + 1
		}
		for i := lo; i < hi; i++ {
			if d.ptes[i].Page != nil {
				scratch = append(scratch, key<<dirBits|i)
			}
		}
	}
	return scratch
}

// RangeVPNs calls fn for each mapped page in [startVPN, endVPN), in
// ascending order. The set of pages visited is snapshotted up front: fn may
// map and unmap pages (anywhere) without disturbing the walk, and a page fn
// unmaps is simply skipped when its turn comes.
func (as *AddressSpace) RangeVPNs(startVPN, endVPN VPN, fn func(VPN, *PTE)) {
	scratch := as.snapshotRange(startVPN, endVPN)
	for _, vpn := range scratch {
		if pte := as.Lookup(vpn); pte != nil {
			fn(vpn, pte)
		}
	}
	as.scratch = scratch[:0]
}

// RegionUsage summarises memory occupancy of a virtual address range.
type RegionUsage struct {
	MappedPages  int
	PrivatePages int // pages whose frame has exactly one reference
	SharedPages  int
	PRSSBytes    uint64 // proportional set size: 4 KiB / refs per page
	PrivateBytes uint64 // private pages × 4 KiB
}

// Usage computes occupancy statistics for the pages of [base, base+size).
func (as *AddressSpace) Usage(base, size uint64) RegionUsage {
	var u RegionUsage
	as.RangeVPNs(VPNOf(base), VPNOf(base+size-1)+1, func(_ VPN, pte *PTE) {
		u.MappedPages++
		if pte.Page.Refs == 1 {
			u.PrivatePages++
			u.PRSSBytes += PageSize
		} else {
			u.SharedPages++
			u.PRSSBytes += PageSize / uint64(pte.Page.Refs)
		}
	})
	u.PrivateBytes = uint64(u.PrivatePages) * PageSize
	return u
}

// UnmapRange unmaps every mapped page in [base, base+size).
func (as *AddressSpace) UnmapRange(base, size uint64) error {
	scratch := as.snapshotRange(VPNOf(base), VPNOf(base+size-1)+1)
	for _, vpn := range scratch {
		if err := as.Unmap(vpn); err != nil {
			as.scratch = scratch[:0]
			return err
		}
	}
	as.scratch = scratch[:0]
	return nil
}
