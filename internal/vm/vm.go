// Package vm implements the virtual-memory substrate: page tables with
// per-PTE permissions, reference-counted frame sharing, demand faults, and
// the Morello-style "fault on capability load" PTE bit that μFork's
// Copy-on-Pointer-Access strategy requires (§4.2).
//
// A single-address-space OS uses one AddressSpace shared by the kernel and
// every μprocess; a multi-address-space baseline (CheriBSD-like) creates
// one AddressSpace per process. All copy-on-write-style sharing is
// expressed with reference-counted Page descriptors: a write to a page with
// more than one reference triggers a copy, a write to the last reference
// simply takes ownership.
package vm

import (
	"errors"
	"fmt"
	"sort"

	"ufork/internal/obs"
	"ufork/internal/tmem"
)

// PageSize re-exports the frame size for convenience.
const PageSize = tmem.PageSize

// VPN is a virtual page number.
type VPN uint64

// VPNOf returns the virtual page number containing va.
func VPNOf(va uint64) VPN { return VPN(va / PageSize) }

// PageOff returns the offset of va within its page.
func PageOff(va uint64) uint64 { return va % PageSize }

// Prot is a PTE permission set.
type Prot uint8

const (
	// ProtRead permits data loads.
	ProtRead Prot = 1 << iota
	// ProtWrite permits data stores.
	ProtWrite
	// ProtExec permits instruction fetch.
	ProtExec
	// ProtCapLoadFault makes loads of tagged (capability) granules fault
	// while permitting plain data loads: the Morello load-side barrier bit
	// CoPA is built on. Plain reads proceed; a capability load traps so the
	// kernel can copy + relocate the page first.
	ProtCapLoadFault
)

// ProtRW is read+write.
const ProtRW = ProtRead | ProtWrite

// ProtRX is read+execute.
const ProtRX = ProtRead | ProtExec

// FaultKind classifies page faults.
type FaultKind int

const (
	// FaultNone means the access translated cleanly.
	FaultNone FaultKind = iota
	// FaultNotMapped means no PTE covers the address.
	FaultNotMapped
	// FaultNoRead means a load hit a page without ProtRead (Copy-on-Access
	// pages are mapped with no permissions at all).
	FaultNoRead
	// FaultWriteProtect means a store hit a read-only page (CoW/CoPA).
	FaultWriteProtect
	// FaultCapLoad means a capability load hit a ProtCapLoadFault page.
	FaultCapLoad
	// FaultNoExec means instruction fetch from a non-executable page.
	FaultNoExec
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotMapped:
		return "not-mapped"
	case FaultNoRead:
		return "no-read"
	case FaultWriteProtect:
		return "write-protect"
	case FaultCapLoad:
		return "cap-load"
	case FaultNoExec:
		return "no-exec"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault describes a page fault.
type Fault struct {
	Kind FaultKind
	VA   uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %v fault at %#x", f.Kind, f.VA)
}

// Access classifies a memory access for translation purposes.
type Access int

const (
	// AccRead is a plain data load.
	AccRead Access = iota
	// AccWrite is a data store.
	AccWrite
	// AccCapRead is a capability (tagged granule) load.
	AccCapRead
	// AccCapWrite is a capability store (a store for protection purposes).
	AccCapWrite
	// AccExec is instruction fetch.
	AccExec
)

// Page is a reference-counted descriptor of one physical frame. Multiple
// PTEs (across or within address spaces) may reference the same Page; the
// reference count drives copy-on-write decisions.
type Page struct {
	PFN  tmem.PFN
	Refs int
}

// PTE is a page-table entry.
type PTE struct {
	Page *Page
	Prot Prot
}

// Errors returned by mapping operations.
var (
	ErrAlreadyMapped = errors.New("vm: page already mapped")
	ErrNotMapped     = errors.New("vm: page not mapped")
)

// AddressSpace is one page table. The zero value is not usable; call
// NewAddressSpace.
type AddressSpace struct {
	mem   *tmem.Memory
	table map[VPN]*PTE

	// Stats counts fault activity for experiment accounting.
	Stats Stats
}

// numFaultKinds sizes the per-kind fault counter array.
const numFaultKinds = int(FaultNoExec) + 1

// Stats aggregates fault and copy counters per address space. Counters are
// atomic so concurrent host goroutines driving different kernels (and the
// race detector) see no data races, and Snapshot/Reset let harnesses drain
// them between benchmark iterations.
type Stats struct {
	faults        [numFaultKinds]obs.Counter
	PagesCopied   obs.Counter // frames duplicated by fault handling
	PagesAdopted  obs.Counter // last-reference pages taken over without a copy
	CapsRelocated obs.Counter // capabilities rewritten by relocation passes
}

// Fault returns the count of faults of the given kind.
func (s *Stats) Fault(kind FaultKind) uint64 {
	if int(kind) < 0 || int(kind) >= numFaultKinds {
		return 0
	}
	return s.faults[kind].Value()
}

// FaultTotal returns the count of all faults.
func (s *Stats) FaultTotal() uint64 {
	var n uint64
	for i := range s.faults {
		n += s.faults[i].Value()
	}
	return n
}

// Snapshot returns every nonzero counter as a name→value map.
func (s *Stats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range s.faults {
		if v := s.faults[i].Value(); v > 0 {
			out["fault."+FaultKind(i).String()] = v
		}
	}
	if v := s.PagesCopied.Value(); v > 0 {
		out["pages-copied"] = v
	}
	if v := s.PagesAdopted.Value(); v > 0 {
		out["pages-adopted"] = v
	}
	if v := s.CapsRelocated.Value(); v > 0 {
		out["caps-relocated"] = v
	}
	return out
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	for i := range s.faults {
		s.faults[i].Reset()
	}
	s.PagesCopied.Reset()
	s.PagesAdopted.Reset()
	s.CapsRelocated.Reset()
}

// NewAddressSpace creates an empty address space over physical memory mem.
func NewAddressSpace(mem *tmem.Memory) *AddressSpace {
	return &AddressSpace{
		mem:   mem,
		table: make(map[VPN]*PTE),
	}
}

// Mem returns the backing physical memory.
func (as *AddressSpace) Mem() *tmem.Memory { return as.mem }

// MappedPages returns the number of mapped pages.
func (as *AddressSpace) MappedPages() int { return len(as.table) }

// Map installs a PTE for vpn referencing page with protection prot,
// incrementing the page's reference count.
func (as *AddressSpace) Map(vpn VPN, page *Page, prot Prot) error {
	if _, ok := as.table[vpn]; ok {
		return fmt.Errorf("%w: vpn %#x", ErrAlreadyMapped, vpn)
	}
	page.Refs++
	as.table[vpn] = &PTE{Page: page, Prot: prot}
	return nil
}

// MapNew allocates a fresh zeroed frame, maps it at vpn and returns its
// page descriptor.
func (as *AddressSpace) MapNew(vpn VPN, prot Prot) (*Page, error) {
	pfn, err := as.mem.AllocFrame()
	if err != nil {
		return nil, err
	}
	page := &Page{PFN: pfn}
	if err := as.Map(vpn, page, prot); err != nil {
		_ = as.mem.FreeFrame(pfn)
		return nil, err
	}
	return page, nil
}

// Unmap removes the PTE for vpn, dropping the page reference and freeing
// the frame when the last reference dies.
func (as *AddressSpace) Unmap(vpn VPN) error {
	pte, ok := as.table[vpn]
	if !ok {
		return fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	delete(as.table, vpn)
	pte.Page.Refs--
	if pte.Page.Refs == 0 {
		return as.mem.FreeFrame(pte.Page.PFN)
	}
	return nil
}

// Lookup returns the PTE for vpn, or nil when unmapped.
func (as *AddressSpace) Lookup(vpn VPN) *PTE { return as.table[vpn] }

// Protect replaces the protection bits of an existing mapping.
func (as *AddressSpace) Protect(vpn VPN, prot Prot) error {
	pte, ok := as.table[vpn]
	if !ok {
		return fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	pte.Prot = prot
	return nil
}

// Translate resolves va for the given access. On success it returns the
// backing PFN and in-page offset; on failure a *Fault describing why.
// Fault statistics are recorded.
func (as *AddressSpace) Translate(va uint64, acc Access) (tmem.PFN, uint64, *Fault) {
	pte, ok := as.table[VPNOf(va)]
	if !ok {
		return as.fault(FaultNotMapped, va)
	}
	switch acc {
	case AccRead:
		if pte.Prot&ProtRead == 0 {
			return as.fault(FaultNoRead, va)
		}
	case AccCapRead:
		if pte.Prot&ProtRead == 0 {
			return as.fault(FaultNoRead, va)
		}
		if pte.Prot&ProtCapLoadFault != 0 {
			return as.fault(FaultCapLoad, va)
		}
	case AccWrite, AccCapWrite:
		if pte.Prot&ProtWrite == 0 {
			if pte.Prot&ProtRead == 0 && pte.Prot&ProtExec == 0 {
				return as.fault(FaultNoRead, va)
			}
			return as.fault(FaultWriteProtect, va)
		}
	case AccExec:
		if pte.Prot&ProtExec == 0 {
			return as.fault(FaultNoExec, va)
		}
	}
	return pte.Page.PFN, PageOff(va), nil
}

func (as *AddressSpace) fault(kind FaultKind, va uint64) (tmem.PFN, uint64, *Fault) {
	as.Stats.faults[kind].Inc()
	return tmem.NoFrame, 0, &Fault{Kind: kind, VA: va}
}

// MakePrivate gives vpn its own private copy of the underlying frame if it
// is currently shared, or adopts the existing frame when this mapping holds
// the last reference. It returns the (possibly new) page descriptor and
// whether a physical copy happened. This is the CoW/CoA/CoPA resolution
// primitive.
func (as *AddressSpace) MakePrivate(vpn VPN, prot Prot) (*Page, bool, error) {
	pte, ok := as.table[vpn]
	if !ok {
		return nil, false, fmt.Errorf("%w: vpn %#x", ErrNotMapped, vpn)
	}
	if pte.Page.Refs == 1 {
		// Last reference: adopt in place, no copy needed.
		pte.Prot = prot
		as.Stats.PagesAdopted.Inc()
		return pte.Page, false, nil
	}
	pfn, err := as.mem.AllocFrame()
	if err != nil {
		return nil, false, err
	}
	if err := as.mem.CopyFrame(pfn, pte.Page.PFN); err != nil {
		_ = as.mem.FreeFrame(pfn)
		return nil, false, err
	}
	pte.Page.Refs--
	pte.Page = &Page{PFN: pfn, Refs: 1}
	pte.Prot = prot
	as.Stats.PagesCopied.Inc()
	return pte.Page, true, nil
}

// VPNs returns all mapped virtual page numbers in ascending order.
func (as *AddressSpace) VPNs() []VPN {
	out := make([]VPN, 0, len(as.table))
	for vpn := range as.table {
		out = append(out, vpn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RangeVPNs calls fn for each mapped page in [startVPN, endVPN), in
// ascending order.
func (as *AddressSpace) RangeVPNs(startVPN, endVPN VPN, fn func(VPN, *PTE)) {
	for _, vpn := range as.VPNs() {
		if vpn >= startVPN && vpn < endVPN {
			fn(vpn, as.table[vpn])
		}
	}
}

// RegionUsage summarises memory occupancy of a virtual address range.
type RegionUsage struct {
	MappedPages  int
	PrivatePages int // pages whose frame has exactly one reference
	SharedPages  int
	PRSSBytes    uint64 // proportional set size: 4 KiB / refs per page
	PrivateBytes uint64 // private pages × 4 KiB
}

// Usage computes occupancy statistics for the pages of [base, base+size).
func (as *AddressSpace) Usage(base, size uint64) RegionUsage {
	var u RegionUsage
	as.RangeVPNs(VPNOf(base), VPNOf(base+size-1)+1, func(_ VPN, pte *PTE) {
		u.MappedPages++
		if pte.Page.Refs == 1 {
			u.PrivatePages++
			u.PRSSBytes += PageSize
		} else {
			u.SharedPages++
			u.PRSSBytes += PageSize / uint64(pte.Page.Refs)
		}
	})
	u.PrivateBytes = uint64(u.PrivatePages) * PageSize
	return u
}

// UnmapRange unmaps every mapped page in [base, base+size).
func (as *AddressSpace) UnmapRange(base, size uint64) error {
	start, end := VPNOf(base), VPNOf(base+size-1)+1
	for _, vpn := range as.VPNs() {
		if vpn >= start && vpn < end {
			if err := as.Unmap(vpn); err != nil {
				return err
			}
		}
	}
	return nil
}
