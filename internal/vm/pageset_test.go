package vm

import "testing"

func TestPageSetBasics(t *testing.T) {
	s := NewPageSet(100, 200)
	if s.Len() != 0 || s.Contains(100) {
		t.Fatal("new set not empty")
	}
	s.Add(100)
	s.Add(163) // last bit of the first word
	s.Add(164) // first bit of the second word
	s.Add(299) // last covered page
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Add(100) // duplicate add is idempotent
	if s.Len() != 4 {
		t.Fatalf("Len after dup add = %d, want 4", s.Len())
	}
	for _, vpn := range []VPN{100, 163, 164, 299} {
		if !s.Contains(vpn) {
			t.Fatalf("missing vpn %d", vpn)
		}
	}
	if s.Contains(101) || s.Contains(99) || s.Contains(300) {
		t.Fatal("contains pages never added")
	}
	var got []VPN
	s.Range(func(vpn VPN) bool { got = append(got, vpn); return true })
	want := []VPN{100, 163, 164, 299}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	s.Remove(163)
	s.Remove(163) // idempotent
	s.Remove(99)  // out of range: no-op
	if s.Len() != 3 || s.Contains(163) {
		t.Fatalf("after removes: Len=%d Contains(163)=%v", s.Len(), s.Contains(163))
	}
}

func TestPageSetNil(t *testing.T) {
	var s *PageSet
	if s.Len() != 0 || s.Contains(5) {
		t.Fatal("nil set must be empty")
	}
	s.Remove(5) // no-op
	s.Range(func(VPN) bool { t.Fatal("nil Range must not visit"); return false })
}

func TestPageSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add must panic")
		}
	}()
	NewPageSet(0, 64).Add(64)
}

func TestPageSetRangeEarlyStop(t *testing.T) {
	s := NewPageSet(0, 128)
	for i := 0; i < 10; i++ {
		s.Add(VPN(i * 7))
	}
	n := 0
	s.Range(func(VPN) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}
