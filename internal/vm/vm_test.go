package vm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ufork/internal/tmem"
)

func newAS(t *testing.T, frames int) *AddressSpace {
	t.Helper()
	return NewAddressSpace(tmem.New(frames))
}

func TestMapUnmap(t *testing.T) {
	as := newAS(t, 8)
	page, err := as.MapNew(5, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if page.Refs != 1 {
		t.Fatalf("refs = %d", page.Refs)
	}
	if err := as.Map(5, page, ProtRW); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("remap: %v", err)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("mapped = %d", as.MappedPages())
	}
	if err := as.Unmap(5); err != nil {
		t.Fatal(err)
	}
	if as.Mem().Allocated() != 0 {
		t.Fatal("frame leaked after last unmap")
	}
	if err := as.Unmap(5); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap: %v", err)
	}
}

func TestSharedRefcount(t *testing.T) {
	mem := tmem.New(8)
	as1 := NewAddressSpace(mem)
	as2 := NewAddressSpace(mem)
	page, err := as1.MapNew(1, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := as2.Map(7, page, ProtRead); err != nil {
		t.Fatal(err)
	}
	if page.Refs != 2 {
		t.Fatalf("refs = %d", page.Refs)
	}
	if err := as1.Unmap(1); err != nil {
		t.Fatal(err)
	}
	if page.Refs != 1 || mem.Allocated() != 1 {
		t.Fatalf("refs=%d allocated=%d", page.Refs, mem.Allocated())
	}
	if err := as2.Unmap(7); err != nil {
		t.Fatal(err)
	}
	if mem.Allocated() != 0 {
		t.Fatal("frame leaked")
	}
}

func TestTranslateFaults(t *testing.T) {
	as := newAS(t, 8)
	if _, err := as.MapNew(1, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapNew(2, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapNew(3, ProtRead|ProtCapLoadFault); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapNew(4, 0); err != nil { // CoA page: no access at all
		t.Fatal(err)
	}
	if _, err := as.MapNew(5, ProtRX); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		va   uint64
		acc  Access
		kind FaultKind
	}{
		{"read-ok", 1 * PageSize, AccRead, FaultNone},
		{"write-ro", 1 * PageSize, AccWrite, FaultWriteProtect},
		{"capwrite-ro", 1 * PageSize, AccCapWrite, FaultWriteProtect},
		{"write-ok", 2*PageSize + 100, AccWrite, FaultNone},
		{"capread-ok", 2 * PageSize, AccCapRead, FaultNone},
		{"capread-lcfault", 3 * PageSize, AccCapRead, FaultCapLoad},
		{"read-through-lcfault", 3 * PageSize, AccRead, FaultNone},
		{"coa-read", 4 * PageSize, AccRead, FaultNoRead},
		{"coa-write", 4 * PageSize, AccWrite, FaultNoRead},
		{"exec-ok", 5 * PageSize, AccExec, FaultNone},
		{"exec-data", 2 * PageSize, AccExec, FaultNoExec},
		{"unmapped", 99 * PageSize, AccRead, FaultNotMapped},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, fault := as.Translate(tc.va, tc.acc)
			got := FaultNone
			if fault != nil {
				got = fault.Kind
				if fault.VA != tc.va {
					t.Fatalf("fault VA = %#x, want %#x", fault.VA, tc.va)
				}
			}
			if got != tc.kind {
				t.Fatalf("fault = %v, want %v", got, tc.kind)
			}
		})
	}
	if as.Stats.Fault(FaultWriteProtect) != 2 {
		t.Fatalf("write-protect fault count = %d", as.Stats.Fault(FaultWriteProtect))
	}
}

func TestMakePrivateCopies(t *testing.T) {
	mem := tmem.New(8)
	parent := NewAddressSpace(mem)
	child := NewAddressSpace(mem)
	page, err := parent.MapNew(1, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteBytes(page.PFN, 0, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := child.Map(1, page, ProtRead); err != nil {
		t.Fatal(err)
	}

	newPage, copied, err := child.MakePrivate(1, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if !copied {
		t.Fatal("expected a physical copy for a shared page")
	}
	if newPage == page || newPage.Refs != 1 || page.Refs != 1 {
		t.Fatalf("bad descriptors: new=%+v old=%+v", newPage, page)
	}
	buf := make([]byte, 8)
	if err := mem.ReadBytes(newPage.PFN, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("copy content = %q", buf)
	}
	// The parent's frame is untouched by child writes.
	if err := mem.WriteBytes(newPage.PFN, 0, []byte("CHANGED!")); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadBytes(page.PFN, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatal("child write leaked into parent frame")
	}
	if child.Stats.PagesCopied.Value() != 1 {
		t.Fatalf("PagesCopied = %d", child.Stats.PagesCopied.Value())
	}
}

func TestMakePrivateAdoptsLastRef(t *testing.T) {
	as := newAS(t, 8)
	page, err := as.MapNew(1, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	got, copied, err := as.MakePrivate(1, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if copied {
		t.Fatal("sole reference must be adopted, not copied")
	}
	if got != page {
		t.Fatal("adoption must keep the same page")
	}
	if as.Stats.PagesAdopted.Value() != 1 {
		t.Fatalf("PagesAdopted = %d", as.Stats.PagesAdopted.Value())
	}
	// And the new protection applies.
	if _, _, fault := as.Translate(PageSize, AccWrite); fault != nil {
		t.Fatalf("write after adopt: %v", fault)
	}
}

func TestUsageAccounting(t *testing.T) {
	mem := tmem.New(16)
	as1 := NewAddressSpace(mem)
	as2 := NewAddressSpace(mem)
	// 2 private pages + 2 pages shared between the spaces.
	if _, err := as1.MapNew(0, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := as1.MapNew(1, ProtRW); err != nil {
		t.Fatal(err)
	}
	for vpn := VPN(2); vpn < 4; vpn++ {
		p, err := as1.MapNew(vpn, ProtRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := as2.Map(vpn, p, ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	u := as1.Usage(0, 4*PageSize)
	if u.MappedPages != 4 || u.PrivatePages != 2 || u.SharedPages != 2 {
		t.Fatalf("usage = %+v", u)
	}
	wantPRSS := uint64(2*PageSize + 2*PageSize/2)
	if u.PRSSBytes != wantPRSS {
		t.Fatalf("PRSS = %d, want %d", u.PRSSBytes, wantPRSS)
	}
	if u.PrivateBytes != 2*PageSize {
		t.Fatalf("private = %d", u.PrivateBytes)
	}
}

func TestUnmapRange(t *testing.T) {
	as := newAS(t, 16)
	for vpn := VPN(0); vpn < 8; vpn++ {
		if _, err := as.MapNew(vpn, ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.UnmapRange(2*PageSize, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 4 {
		t.Fatalf("mapped = %d", as.MappedPages())
	}
	for _, vpn := range []VPN{0, 1, 6, 7} {
		if as.Lookup(vpn) == nil {
			t.Fatalf("vpn %d should survive", vpn)
		}
	}
}

func TestRangeVPNsOrdered(t *testing.T) {
	as := newAS(t, 64)
	for _, vpn := range []VPN{9, 3, 27, 14, 1} {
		if _, err := as.MapNew(vpn, ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	var got []VPN
	as.RangeVPNs(0, 100, func(vpn VPN, _ *PTE) { got = append(got, vpn) })
	want := []VPN{1, 3, 9, 14, 27}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

// Property: under random map/unmap/share/privatize sequences, the allocated
// frame count always equals the number of distinct page descriptors
// referenced, and refcounts equal the number of referencing PTEs.
func TestRefcountInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := tmem.New(256)
		spaces := []*AddressSpace{NewAddressSpace(mem), NewAddressSpace(mem)}
		for i := 0; i < 200; i++ {
			as := spaces[r.Intn(2)]
			vpn := VPN(r.Intn(32))
			switch r.Intn(4) {
			case 0:
				if as.Lookup(vpn) == nil {
					if _, err := as.MapNew(vpn, ProtRW); err != nil {
						return false
					}
				}
			case 1:
				if as.Lookup(vpn) != nil {
					if err := as.Unmap(vpn); err != nil {
						return false
					}
				}
			case 2: // share a page into the other space
				other := spaces[0]
				if as == other {
					other = spaces[1]
				}
				if pte := as.Lookup(vpn); pte != nil && other.Lookup(vpn) == nil {
					if err := other.Map(vpn, pte.Page, ProtRead); err != nil {
						return false
					}
				}
			case 3:
				if as.Lookup(vpn) != nil {
					if _, _, err := as.MakePrivate(vpn, ProtRW); err != nil {
						return false
					}
				}
			}
		}
		// Check invariants.
		refs := make(map[*Page]int)
		for _, as := range spaces {
			for _, vpn := range as.VPNs() {
				refs[as.Lookup(vpn).Page]++
			}
		}
		for p, n := range refs {
			if p.Refs != n {
				return false
			}
		}
		return mem.Allocated() == len(refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
