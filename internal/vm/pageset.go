package vm

import (
	"fmt"
	"math/bits"
)

// PageSet is a fixed-range bitmap of virtual page numbers, indexed by
// page offset from a base VPN. μFork uses one per μprocess to track which
// region pages still hold ancestor-region capabilities awaiting relocation
// (Proc.Pending): a child region of even 256 MiB needs only 8 KiB of
// bitmap, against the per-entry allocation churn of the map[VPN]bool it
// replaces on the fork hot path.
//
// A nil *PageSet behaves as the empty set for queries and removals, which
// lets engines that never track pending relocations (the multi-address-
// space baselines) skip allocating one.
type PageSet struct {
	base  VPN
	words []uint64
	count int
}

// NewPageSet creates an empty set covering the npages pages starting at
// base.
func NewPageSet(base VPN, npages int) *PageSet {
	return &PageSet{base: base, words: make([]uint64, (npages+63)/64)}
}

// index converts vpn to a (word, bit) slot, reporting whether it is in
// range.
func (s *PageSet) index(vpn VPN) (int, uint64, bool) {
	if s == nil || vpn < s.base {
		return 0, 0, false
	}
	off := uint64(vpn - s.base)
	w := int(off / 64)
	if w >= len(s.words) {
		return 0, 0, false
	}
	return w, uint64(1) << (off % 64), true
}

// Add inserts vpn. Adding a page outside the covered range panics: the
// engine computes pending pages from the region that sized the set, so an
// out-of-range add is a bookkeeping bug.
func (s *PageSet) Add(vpn VPN) {
	w, bit, ok := s.index(vpn)
	if !ok {
		panic(fmt.Sprintf("vm: PageSet.Add(%#x) outside [%#x, %#x)", vpn, s.base, s.base+VPN(len(s.words)*64)))
	}
	if s.words[w]&bit == 0 {
		s.words[w] |= bit
		s.count++
	}
}

// Remove deletes vpn; removing an absent or out-of-range page is a no-op.
func (s *PageSet) Remove(vpn VPN) {
	w, bit, ok := s.index(vpn)
	if !ok {
		return
	}
	if s.words[w]&bit != 0 {
		s.words[w] &^= bit
		s.count--
	}
}

// Contains reports whether vpn is in the set.
func (s *PageSet) Contains(vpn VPN) bool {
	w, bit, ok := s.index(vpn)
	return ok && s.words[w]&bit != 0
}

// Len returns the number of pages in the set.
func (s *PageSet) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Range calls fn for every page in the set in ascending VPN order,
// stopping early if fn returns false.
func (s *PageSet) Range(fn func(VPN) bool) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			vpn := s.base + VPN(wi*64+bits.TrailingZeros64(w))
			w &= w - 1
			if !fn(vpn) {
				return
			}
		}
	}
}
