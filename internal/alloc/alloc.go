// Package alloc is a tinyalloc-style heap allocator that lives *inside*
// simulated μprocess memory.
//
// All allocator state — block descriptors, free/used lists, the arena
// watermark — resides in the μprocess's allocator-metadata segment, and
// every block pointer is stored as a CHERI capability. This is the fidelity
// point the paper's fork depends on: because the descriptors hold tagged
// capabilities, μFork's proactive copy of the metadata pages relocates them
// (§3.5 step 1), so the child's allocator immediately operates on the
// child's own heap.
//
// Per §4.1, allocations are 16-byte aligned and every returned capability
// is bounded to its block.
package alloc

import (
	"errors"
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/kernel"
	"ufork/internal/obs"
)

const (
	// headerSize is the metadata header: numBlocks, freshTop, freeHead,
	// usedHead (4 × u64, padded to a granule boundary).
	headerSize = 64
	// blockSize is one block descriptor: capability (16 B), size (8 B),
	// next link (8 B).
	blockSize = 32

	offNumBlocks = 0
	offFreshTop  = 8
	offFreeHead  = 16
	offUsedHead  = 24
)

// Errors returned by the allocator.
var (
	ErrOutOfMemory = errors.New("alloc: arena exhausted")
	ErrNoBlocks    = errors.New("alloc: block descriptor table full")
	ErrBadFree     = errors.New("alloc: free of unknown block")
)

// Allocator manages one μprocess heap. It holds no state of its own beyond
// the process handle: everything lives in simulated memory, which is what
// makes it fork-transparent.
type Allocator struct {
	p *kernel.Proc
}

// Attach binds an allocator view to a process. Call Init once on a freshly
// loaded image; a forked child attaches to already-initialised (and
// already-relocated) metadata.
func Attach(p *kernel.Proc) *Allocator { return &Allocator{p: p} }

// maxBlocks returns the descriptor table capacity.
func (a *Allocator) maxBlocks() uint64 {
	return (a.p.MetaCap.Len() - headerSize) / blockSize
}

// Init formats the metadata segment for an empty heap.
func (a *Allocator) Init() error {
	for _, off := range []uint64{offNumBlocks, offFreshTop, offFreeHead, offUsedHead} {
		if err := a.p.StoreU64(a.p.MetaCap, off, 0); err != nil {
			return err
		}
	}
	return nil
}

func (a *Allocator) blockOff(i uint64) uint64 { return headerSize + i*blockSize }

func (a *Allocator) loadBlock(i uint64) (c cap.Capability, size, next uint64, err error) {
	off := a.blockOff(i)
	if c, err = a.p.LoadCap(a.p.MetaCap, off); err != nil {
		return
	}
	if size, err = a.p.LoadU64(a.p.MetaCap, off+16); err != nil {
		return
	}
	next, err = a.p.LoadU64(a.p.MetaCap, off+24)
	return
}

func (a *Allocator) storeBlock(i uint64, c cap.Capability, size, next uint64) error {
	off := a.blockOff(i)
	if err := a.p.StoreCap(a.p.MetaCap, off, c); err != nil {
		return err
	}
	if err := a.p.StoreU64(a.p.MetaCap, off+16, size); err != nil {
		return err
	}
	return a.p.StoreU64(a.p.MetaCap, off+24, next)
}

// Alloc returns a bounded, 16-byte-aligned capability over n bytes of
// heap. The capability's bounds are exactly the block (CHERI allocator
// discipline, §4.1); sizes are rounded and bases aligned so the compressed
// bounds encoding represents them exactly — the adjustment the paper's
// tinyalloc port had to make.
func (a *Allocator) Alloc(n uint64) (cap.Capability, error) {
	if n == 0 {
		n = 1
	}
	n = (n + cap.GranuleSize - 1) &^ uint64(cap.GranuleSize-1)
	n = cap.RepresentableLength(n)
	align := cap.RepresentableAlign(n)
	if align < cap.GranuleSize {
		align = cap.GranuleSize
	}

	// First fit on the free list.
	prev := uint64(0)
	head, err := a.p.LoadU64(a.p.MetaCap, offFreeHead)
	if err != nil {
		return cap.Null(), err
	}
	for cur := head; cur != 0; {
		c, size, next, err := a.loadBlock(cur - 1)
		if err != nil {
			return cap.Null(), err
		}
		if size >= n && c.Addr()%align == 0 {
			// Unlink from free list, push onto used list.
			if prev == 0 {
				if err := a.p.StoreU64(a.p.MetaCap, offFreeHead, next); err != nil {
					return cap.Null(), err
				}
			} else {
				pc, psize, _, err := a.loadBlock(prev - 1)
				if err != nil {
					return cap.Null(), err
				}
				if err := a.storeBlock(prev-1, pc, psize, next); err != nil {
					return cap.Null(), err
				}
			}
			usedHead, err := a.p.LoadU64(a.p.MetaCap, offUsedHead)
			if err != nil {
				return cap.Null(), err
			}
			if err := a.storeBlock(cur-1, c, size, usedHead); err != nil {
				return cap.Null(), err
			}
			if err := a.p.StoreU64(a.p.MetaCap, offUsedHead, cur); err != nil {
				return cap.Null(), err
			}
			a.churn("alloc.reuse", size)
			return c, nil
		}
		prev, cur = cur, next
	}

	// Carve a fresh block from the arena top, aligned for representability.
	freshTop, err := a.p.LoadU64(a.p.MetaCap, offFreshTop)
	if err != nil {
		return cap.Null(), err
	}
	if rem := (a.p.HeapCap.Base() + freshTop) % align; rem != 0 {
		freshTop += align - rem
	}
	if freshTop+n > a.p.HeapCap.Len() {
		return cap.Null(), fmt.Errorf("%w: %d + %d > %d", ErrOutOfMemory, freshTop, n, a.p.HeapCap.Len())
	}
	numBlocks, err := a.p.LoadU64(a.p.MetaCap, offNumBlocks)
	if err != nil {
		return cap.Null(), err
	}
	if numBlocks >= a.maxBlocks() {
		return cap.Null(), ErrNoBlocks
	}
	c, err := a.p.HeapCap.SetAddr(a.p.HeapCap.Base() + freshTop).SetBounds(n)
	if err != nil {
		return cap.Null(), err
	}
	// Advance the brk watermark page by page (the kernel tracks heap use
	// for the demand-paging baseline's accounting).
	oldPages := int((freshTop + kernel.PageSize - 1) / kernel.PageSize)
	newPages := int((freshTop + n + kernel.PageSize - 1) / kernel.PageSize)
	if newPages > oldPages {
		if err := a.p.Kernel().Sbrk(a.p, newPages-oldPages); err != nil {
			return cap.Null(), err
		}
	}
	if err := a.p.StoreU64(a.p.MetaCap, offFreshTop, freshTop+n); err != nil {
		return cap.Null(), err
	}
	usedHead, err := a.p.LoadU64(a.p.MetaCap, offUsedHead)
	if err != nil {
		return cap.Null(), err
	}
	if err := a.storeBlock(numBlocks, c, n, usedHead); err != nil {
		return cap.Null(), err
	}
	if err := a.p.StoreU64(a.p.MetaCap, offUsedHead, numBlocks+1); err != nil {
		return cap.Null(), err
	}
	if err := a.p.StoreU64(a.p.MetaCap, offNumBlocks, numBlocks+1); err != nil {
		return cap.Null(), err
	}
	a.churn("alloc.fresh", n)
	return c, nil
}

// churn records allocator activity (op count + bytes) in the owning
// kernel's metrics registry when observability is on.
func (a *Allocator) churn(op string, bytes uint64) {
	if obs.Disabled() {
		return
	}
	reg := a.p.Kernel().Obs.Reg
	reg.Counter(op).Inc()
	reg.Counter(op + ".bytes").Add(bytes)
}

// Free returns a block to the free list. The block is identified by the
// capability's address.
func (a *Allocator) Free(c cap.Capability) error {
	prev := uint64(0)
	cur, err := a.p.LoadU64(a.p.MetaCap, offUsedHead)
	if err != nil {
		return err
	}
	for cur != 0 {
		bc, size, next, err := a.loadBlock(cur - 1)
		if err != nil {
			return err
		}
		if bc.Addr() == c.Addr() {
			// Unlink from used list.
			if prev == 0 {
				if err := a.p.StoreU64(a.p.MetaCap, offUsedHead, next); err != nil {
					return err
				}
			} else {
				pc, psize, pnext, err := a.loadBlock(prev - 1)
				if err != nil {
					return err
				}
				_ = pnext
				if err := a.storeBlock(prev-1, pc, psize, next); err != nil {
					return err
				}
			}
			freeHead, err := a.p.LoadU64(a.p.MetaCap, offFreeHead)
			if err != nil {
				return err
			}
			if err := a.storeBlock(cur-1, bc, size, freeHead); err != nil {
				return err
			}
			a.churn("alloc.free", size)
			return a.p.StoreU64(a.p.MetaCap, offFreeHead, cur)
		}
		prev, cur = cur, next
	}
	return fmt.Errorf("%w: %v", ErrBadFree, c)
}

// UsedBlocks walks the used list, returning each live block capability.
func (a *Allocator) UsedBlocks() ([]cap.Capability, error) {
	var out []cap.Capability
	cur, err := a.p.LoadU64(a.p.MetaCap, offUsedHead)
	if err != nil {
		return nil, err
	}
	for cur != 0 {
		c, _, next, err := a.loadBlock(cur - 1)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		cur = next
	}
	return out, nil
}

// ArenaUsed returns the high-water mark of arena consumption in bytes.
func (a *Allocator) ArenaUsed() (uint64, error) {
	return a.p.LoadU64(a.p.MetaCap, offFreshTop)
}
