package alloc_test

import (
	"errors"
	"math/rand"
	"testing"

	"ufork/internal/alloc"
	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

func withProc(t *testing.T, fn func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator)) {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			t.Errorf("init: %v", err)
			return
		}
		fn(k, p, a)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestAllocBoundsAndAlignment(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		c, err := a.Alloc(100)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if c.Addr()%cap.GranuleSize != 0 {
			t.Errorf("allocation not 16-byte aligned: %v", c)
		}
		if c.Len() != 112 { // 100 rounded up to 16
			t.Errorf("len = %d, want 112", c.Len())
		}
		// The capability is bounded: writing past the block fails.
		if err := p.Store(c, 0, make([]byte, 112)); err != nil {
			t.Errorf("in-bounds store: %v", err)
		}
		if err := p.Store(c, 112, []byte{1}); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("out-of-bounds store: got %v, want cap fault", err)
		}
	})
}

func TestAllocDistinctBlocks(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		seen := map[uint64]bool{}
		for i := 0; i < 50; i++ {
			c, err := a.Alloc(64)
			if err != nil {
				t.Fatalf("alloc %d: %v", i, err)
			}
			if seen[c.Addr()] {
				t.Fatalf("duplicate allocation at %#x", c.Addr())
			}
			seen[c.Addr()] = true
		}
		blocks, err := a.UsedBlocks()
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != 50 {
			t.Fatalf("used list has %d blocks, want 50", len(blocks))
		}
	})
}

func TestFreeAndReuse(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		c1, err := a.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(c1); err != nil {
			t.Fatalf("free: %v", err)
		}
		c2, err := a.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Addr() != c1.Addr() {
			t.Errorf("freed block not reused: %#x vs %#x", c2.Addr(), c1.Addr())
		}
		// Double free fails.
		if err := a.Free(c1); !errors.Is(err, alloc.ErrBadFree) {
			// c1 was reused by c2, so freeing it once more is legal; free
			// again to force the error.
			if err != nil {
				t.Fatalf("unexpected: %v", err)
			}
			if err := a.Free(c1); !errors.Is(err, alloc.ErrBadFree) {
				t.Errorf("double free: got %v", err)
			}
		}
	})
}

func TestArenaExhaustion(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		if _, err := a.Alloc(p.HeapCap.Len() * 2); !errors.Is(err, alloc.ErrOutOfMemory) {
			t.Errorf("oversize alloc: got %v", err)
		}
	})
}

func TestBrkTracksArena(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		before := p.BrkPages
		if _, err := a.Alloc(10 * kernel.PageSize); err != nil {
			t.Fatal(err)
		}
		if p.BrkPages < before+10 {
			t.Errorf("BrkPages = %d, want >= %d", p.BrkPages, before+10)
		}
	})
}

// TestAllocatorSurvivesFork is the critical property: the child's allocator
// operates on the child's heap because the metadata capabilities were
// relocated by the proactive copy (§3.5 step 1).
func TestAllocatorSurvivesFork(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		pc, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Store(pc, 0, []byte("parent-block")); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			ca := alloc.Attach(c)
			// The used list must enumerate the pre-fork block, relocated.
			blocks, err := ca.UsedBlocks()
			if err != nil {
				t.Errorf("child used blocks: %v", err)
				return
			}
			if len(blocks) != 1 {
				t.Errorf("child sees %d blocks, want 1", len(blocks))
				return
			}
			if !c.Region.Contains(blocks[0].Addr()) {
				t.Errorf("child block points at parent heap: %v", blocks[0])
				return
			}
			buf := make([]byte, 12)
			if err := c.Load(blocks[0], 0, buf); err != nil {
				t.Errorf("child block load: %v", err)
				return
			}
			if string(buf) != "parent-block" {
				t.Errorf("child block = %q", buf)
			}
			// New allocations in the child land in the child's heap and do
			// not disturb the parent.
			cc, err := ca.Alloc(64)
			if err != nil {
				t.Errorf("child alloc: %v", err)
				return
			}
			if !c.Region.Contains(cc.Addr()) {
				t.Errorf("child allocation outside child region: %v", cc)
			}
			if err := c.Store(cc, 0, []byte("child-block!")); err != nil {
				t.Errorf("child store: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		// Parent's allocator is undisturbed: still exactly one block.
		blocks, err := a.UsedBlocks()
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != 1 {
			t.Errorf("parent used list has %d blocks after child allocated", len(blocks))
		}
		buf := make([]byte, 12)
		if err := p.Load(pc, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "parent-block" {
			t.Errorf("parent block = %q", buf)
		}
	})
}

// Property-style stress: random alloc/free interleavings keep the used
// list consistent and blocks disjoint.
func TestAllocFreeStress(t *testing.T) {
	withProc(t, func(k *kernel.Kernel, p *kernel.Proc, a *alloc.Allocator) {
		r := rand.New(rand.NewSource(7))
		live := map[uint64]cap.Capability{}
		for i := 0; i < 300; i++ {
			if len(live) == 0 || r.Intn(3) != 0 {
				c, err := a.Alloc(uint64(r.Intn(500) + 1))
				if err != nil {
					t.Fatalf("alloc %d: %v", i, err)
				}
				if _, dup := live[c.Addr()]; dup {
					t.Fatalf("allocator returned live block %#x", c.Addr())
				}
				live[c.Addr()] = c
			} else {
				for addr, c := range live {
					if err := a.Free(c); err != nil {
						t.Fatalf("free: %v", err)
					}
					delete(live, addr)
					break
				}
			}
		}
		blocks, err := a.UsedBlocks()
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != len(live) {
			t.Fatalf("used list %d vs live %d", len(blocks), len(live))
		}
		// Disjointness check.
		for i, b1 := range blocks {
			for j, b2 := range blocks {
				if i == j {
					continue
				}
				if b1.Base() < b2.Top() && b2.Base() < b1.Top() {
					t.Fatalf("overlapping blocks %v and %v", b1, b2)
				}
			}
		}
	})
}
