// Lockstat: named, site-attributed lock instrumentation in the spirit of
// Solaris/Linux lockstat. A LockMeter hangs off a VLock (or shadows a
// subsystem the BKL serializes) and collects acquisition counts, wait and
// hold histograms, and a waiters high-water mark — the per-site evidence
// the BKL-splitting refactor needs. All observation reads the virtual
// clock and never mutates it, so arming lockstat cannot change a
// simulation's timeline.
package sim

import (
	"sort"
	"sync"
	"sync/atomic"

	"ufork/internal/obs"
)

// LockMeter collects lockstat for one named lock. All counters are atomic
// so the telemetry server snapshots them live; the waiters window is only
// mutated on the simulation goroutine. A nil *LockMeter is valid and
// inert: the disabled path is a single nil check (pinned ≤5 ns by
// BenchmarkDisabledLockMeter).
type LockMeter struct {
	name string
	site string

	acquired  atomic.Uint64
	contended atomic.Uint64
	waitTotal atomic.Uint64 // virtual ns lost waiting
	holdTotal atomic.Uint64 // virtual ns held

	waitHist *obs.Histogram
	holdHist *obs.Histogram

	// pending holds the grant times of contended acquisitions whose wait
	// window may still overlap new arrivals; the high-water mark is the
	// most waiters ever simultaneously queued.
	pending     []Time
	waitersHigh atomic.Int64
}

// Name returns the lock's registered name.
func (m *LockMeter) Name() string { return m.name }

// Site returns the code site the lock was registered for.
func (m *LockMeter) Site() string { return m.site }

// Acquisitions returns the total acquisition count.
func (m *LockMeter) Acquisitions() uint64 {
	if m == nil {
		return 0
	}
	return m.acquired.Load()
}

// ContendedCount returns acquisitions that had to wait.
func (m *LockMeter) ContendedCount() uint64 {
	if m == nil {
		return 0
	}
	return m.contended.Load()
}

// WaitHist returns the wait-time histogram (virtual ns).
func (m *LockMeter) WaitHist() *obs.Histogram { return m.waitHist }

// HoldHist returns the hold-time histogram (virtual ns).
func (m *LockMeter) HoldHist() *obs.Histogram { return m.holdHist }

// WaitersHighWater returns the most waiters ever queued at once.
func (m *LockMeter) WaitersHighWater() int64 {
	if m == nil {
		return 0
	}
	return m.waitersHigh.Load()
}

// onLock records one acquisition granted at virtual time now after wait ns
// of contention (0 = the lock was free). Nil-safe.
func (m *LockMeter) onLock(now, wait Time) {
	if m == nil {
		return
	}
	m.acquired.Add(1)
	if wait == 0 {
		return
	}
	m.contended.Add(1)
	m.waitTotal.Add(uint64(wait))
	m.waitHist.Observe(uint64(wait))
	// Waiters window: this waiter queued at now-wait and was granted at
	// now. Drop pending grants that happened before it queued; whatever
	// remains overlapped it.
	started := now - wait
	live := m.pending[:0]
	for _, grant := range m.pending {
		if grant > started {
			live = append(live, grant)
		}
	}
	m.pending = append(live, now)
	if n := int64(len(m.pending)); n > m.waitersHigh.Load() {
		m.waitersHigh.Store(n)
	}
}

// onUnlock records hold ns of critical-section time. Nil-safe.
func (m *LockMeter) onUnlock(hold Time) {
	if m == nil {
		return
	}
	m.holdTotal.Add(uint64(hold))
	m.holdHist.Observe(uint64(hold))
}

// Acquire counts one uncontended acquisition of a shadow lock — a
// subsystem the BKL already serializes (proc table, FD table, tmem), where
// there is no real VLock to bracket. Nil-safe.
func (m *LockMeter) Acquire(now Time) { m.onLock(now, 0) }

// ObserveHold credits d ns of critical-section time to a shadow lock.
// Nil-safe.
func (m *LockMeter) ObserveHold(d Time) { m.onUnlock(d) }

// LockStat is the JSON snapshot of one lock's statistics.
type LockStat struct {
	Name             string          `json:"name"`
	Site             string          `json:"site"`
	Acquisitions     uint64          `json:"acquisitions"`
	Contended        uint64          `json:"contended"`
	WaitTotalNS      uint64          `json:"wait_total_ns"`
	HoldTotalNS      uint64          `json:"hold_total_ns"`
	WaitersHighWater int64           `json:"waiters_high_water"`
	Wait             obs.HistSummary `json:"wait_ns"`
	Hold             obs.HistSummary `json:"hold_ns"`
}

// Stat returns the meter's snapshot.
func (m *LockMeter) Stat() LockStat {
	return LockStat{
		Name:             m.name,
		Site:             m.site,
		Acquisitions:     m.acquired.Load(),
		Contended:        m.contended.Load(),
		WaitTotalNS:      m.waitTotal.Load(),
		HoldTotalNS:      m.holdTotal.Load(),
		WaitersHighWater: m.waitersHigh.Load(),
		Wait:             m.waitHist.Summary(),
		Hold:             m.holdHist.Summary(),
	}
}

// LockTable is the registry of named lock meters — the kernel arms one
// via Kernel.ArmLockstat and the telemetry server snapshots it.
type LockTable struct {
	mu     sync.Mutex
	meters map[string]*LockMeter
	order  []*LockMeter
}

// NewLockTable creates an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{meters: map[string]*LockMeter{}}
}

// Meter returns the meter registered under name, creating it (with the
// given site attribution) on first use.
func (lt *LockTable) Meter(name, site string) *LockMeter {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if m, ok := lt.meters[name]; ok {
		return m
	}
	m := &LockMeter{
		name:     name,
		site:     site,
		waitHist: obs.NewHistogram(nil),
		holdHist: obs.NewHistogram(nil),
	}
	lt.meters[name] = m
	lt.order = append(lt.order, m)
	return m
}

// Reset drops every meter, so a table rearmed on a fresh kernel starts
// clean.
func (lt *LockTable) Reset() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.meters = map[string]*LockMeter{}
	lt.order = nil
}

// Meters returns the registered meters sorted by name.
func (lt *LockTable) Meters() []*LockMeter {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([]*LockMeter, len(lt.order))
	copy(out, lt.order)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot returns every lock's statistics, sorted by name.
func (lt *LockTable) Snapshot() []LockStat {
	ms := lt.Meters()
	out := make([]LockStat, len(ms))
	for i, m := range ms {
		out[i] = m.Stat()
	}
	return out
}
