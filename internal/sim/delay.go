package sim

// DelayKind classifies where a task's virtual time went. The engine
// attributes every clock advance to exactly one kind, so the kinds sum to
// Now()-StartAt() at any instant — run time plus every flavor of waiting
// is the task's whole lifetime, the same identity Linux delayacct keeps
// per task.
type DelayKind int

const (
	// DelayRun is on-core compute: Work and Book durations including the
	// context-switch surcharge (and off-core agents' modelled compute).
	DelayRun DelayKind = iota
	// DelayRunnable is time spent runnable but queued for a free core —
	// the scheduler's dispatch latency.
	DelayRunnable
	// DelayBlocked is parked time: pipe, socket-accept and wait(2) sleeps,
	// ended by another task's Unpark.
	DelayBlocked
	// DelayLatency is non-CPU latency charged via Advance: device and
	// network delays plus the machine model's fixed syscall path costs.
	DelayLatency
	// DelayLockWait is virtual time lost acquiring contended VLocks (the
	// big kernel lock, or the split locks once it is broken up). Strict
	// locks park their waiters, so the jump first lands in DelayBlocked
	// and is reclassified here on wake.
	DelayLockWait

	NumDelayKinds
)

var delayNames = [NumDelayKinds]string{
	"run", "runnable", "blocked", "latency", "lock-wait",
}

func (d DelayKind) String() string {
	if d < 0 || d >= NumDelayKinds {
		return "?"
	}
	return delayNames[d]
}

// StartAt returns the virtual time the task was created.
func (t *Task) StartAt() Time { return t.startAt }

// Delay returns the accumulated virtual time of one kind. Safe to call
// from any goroutine.
func (t *Task) Delay(k DelayKind) Time { return Time(t.delays[k].Load()) }

// Delays returns a snapshot of all delay kinds.
func (t *Task) Delays() [NumDelayKinds]Time {
	var out [NumDelayKinds]Time
	for k := range out {
		out[k] = Time(t.delays[k].Load())
	}
	return out
}

// Lifetime returns the task's age as the sum of its delay buckets — equal
// to Now()-StartAt() but readable from any goroutine (the clock itself is
// not atomic).
func (t *Task) Lifetime() Time {
	var sum Time
	for k := DelayKind(0); k < NumDelayKinds; k++ {
		sum += Time(t.delays[k].Load())
	}
	return sum
}

func (t *Task) addDelay(k DelayKind, d Time) {
	if d != 0 {
		t.delays[k].Add(uint64(d))
	}
}

// reclassify moves d of already-accumulated delay from one kind to
// another, preserving the lifetime identity. Strict VLocks use it to
// re-attribute a waiter's park jump from DelayBlocked to DelayLockWait.
func (t *Task) reclassify(from, to DelayKind, d Time) {
	if d == 0 {
		return
	}
	t.delays[from].Add(^uint64(d) + 1)
	t.delays[to].Add(uint64(d))
}
