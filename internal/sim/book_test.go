package sim

import "testing"

func TestBookOccupiesCore(t *testing.T) {
	// Two tasks booking on one core serialize, without switch surcharge.
	e := NewEngine(1)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("booker", 0, func(tk *Task) {
			tk.SwitchCost = 1000 // must NOT be charged by Book
			tk.Book(100)
			ends[i] = tk.Now()
		})
	}
	e.Run()
	lo, hi := ends[0], ends[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 100 || hi != 200 {
		t.Fatalf("ends = %v, want serialized [100 200] without surcharge", ends)
	}
}

func TestOffcoreDoesNotOccupyCore(t *testing.T) {
	// An offcore task's Work overlaps fully with an on-core task on a
	// single-core engine.
	e := NewEngine(1)
	var onEnd, offEnd Time
	e.Go("server", 0, func(tk *Task) {
		tk.Work(1000)
		onEnd = tk.Now()
	})
	e.Go("client", 0, func(tk *Task) {
		tk.Offcore = true
		tk.Work(1000)
		tk.Book(1000)
		offEnd = tk.Now()
	})
	e.Run()
	if onEnd != 1000 {
		t.Fatalf("server end = %d, want 1000 (no contention from offcore)", onEnd)
	}
	if offEnd != 2000 {
		t.Fatalf("client end = %d, want 2000 (its own clock advances)", offEnd)
	}
}

func TestAdvanceNeverOccupiesCore(t *testing.T) {
	// Advance (pure waiting) overlaps with another task's Work.
	e := NewEngine(1)
	var a, b Time
	e.Go("worker", 0, func(tk *Task) {
		tk.Work(500)
		a = tk.Now()
	})
	e.Go("waiter", 0, func(tk *Task) {
		tk.Advance(500)
		tk.Sync()
		b = tk.Now()
	})
	e.Run()
	if a != 500 || b != 500 {
		t.Fatalf("ends = %d/%d, want 500/500 (wait overlaps compute)", a, b)
	}
}
