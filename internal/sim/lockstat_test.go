package sim

import (
	"testing"
)

// TestLockMeterCountsAndWaitersHighWater drives the meter directly with a
// hand-built contention pattern whose deepest convoy is known: three
// waiters whose wait windows overlap, one that doesn't.
func TestLockMeterCountsAndWaitersHighWater(t *testing.T) {
	lt := NewLockTable()
	m := lt.Meter("bkl", "test.site")

	m.onLock(100, 0) // uncontended — never enters the window
	m.onLock(10, 10) // queued 0, granted 10
	m.onLock(20, 15) // queued 5: overlaps the first waiter
	m.onLock(30, 15) // queued 15: first waiter's grant (10) already past
	m.onLock(40, 28) // queued 12: overlaps grants 20 and 30
	m.onUnlock(7)
	m.onUnlock(9)

	if got := m.Acquisitions(); got != 5 {
		t.Fatalf("acquisitions = %d, want 5", got)
	}
	if got := m.ContendedCount(); got != 4 {
		t.Fatalf("contended = %d, want 4", got)
	}
	if got := m.WaitersHighWater(); got != 3 {
		t.Fatalf("waiters high-water = %d, want 3", got)
	}
	st := m.Stat()
	if st.WaitTotalNS != 10+15+15+28 {
		t.Fatalf("wait total = %d, want 68", st.WaitTotalNS)
	}
	if st.HoldTotalNS != 16 {
		t.Fatalf("hold total = %d, want 16", st.HoldTotalNS)
	}
	if st.Wait.Count != 4 || st.Hold.Count != 2 {
		t.Fatalf("hist counts = %d/%d, want 4/2", st.Wait.Count, st.Hold.Count)
	}
	if st.Name != "bkl" || st.Site != "test.site" {
		t.Fatalf("stat identity = %s@%s", st.Name, st.Site)
	}
}

// TestLockMeterNilInert pins the disabled-path contract: every probe and
// every accessor is nil-receiver safe.
func TestLockMeterNilInert(t *testing.T) {
	var m *LockMeter
	m.onLock(10, 5)
	m.onUnlock(3)
	m.Acquire(7)
	m.ObserveHold(2)
	if m.Acquisitions() != 0 || m.ContendedCount() != 0 || m.WaitersHighWater() != 0 {
		t.Fatal("nil meter reported non-zero stats")
	}
}

// TestLockTableRegistry pins create-on-first-use identity, name-sorted
// listing, and Reset.
func TestLockTableRegistry(t *testing.T) {
	lt := NewLockTable()
	a := lt.Meter("zeta", "z")
	if b := lt.Meter("zeta", "other-site"); b != a {
		t.Fatal("second Meter(zeta) returned a different meter")
	}
	lt.Meter("alpha", "a")
	ms := lt.Meters()
	if len(ms) != 2 || ms[0].Name() != "alpha" || ms[1].Name() != "zeta" {
		t.Fatalf("meters not name-sorted: %v", ms)
	}
	snap := lt.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alpha" || snap[0].Site != "a" {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	lt.Reset()
	if len(lt.Meters()) != 0 {
		t.Fatal("reset table still holds meters")
	}
}

// TestVLockMeterIntegration checks the VLock → meter plumbing against the
// engine's known serialization: two tasks on two cores, one critical
// section each, so the second waits exactly the first's hold time.
func TestVLockMeterIntegration(t *testing.T) {
	e := NewEngine(2)
	var l VLock
	lt := NewLockTable()
	l.SetMeter(lt.Meter("l", "test"))
	for i := 0; i < 2; i++ {
		e.Go("locker", 0, func(tk *Task) {
			l.Lock(tk)
			tk.Work(100)
			l.Unlock(tk)
		})
	}
	e.Run()

	m := lt.Meter("l", "test")
	if m.Acquisitions() != 2 || m.ContendedCount() != 1 {
		t.Fatalf("acquisitions/contended = %d/%d, want 2/1", m.Acquisitions(), m.ContendedCount())
	}
	if m.Acquisitions() != l.Acquired() || m.ContendedCount() != l.Contended() {
		t.Fatal("meter disagrees with the VLock's own counters")
	}
	st := m.Stat()
	if st.WaitTotalNS != 100 {
		t.Fatalf("wait total = %d, want 100 (the first holder's section)", st.WaitTotalNS)
	}
	if st.HoldTotalNS != 200 {
		t.Fatalf("hold total = %d, want 200", st.HoldTotalNS)
	}
	if st.WaitersHighWater != 1 {
		t.Fatalf("waiters high-water = %d, want 1", st.WaitersHighWater)
	}
}

// TestVLockStatsConcurrentRead is the regression test for the VLock
// counter data race: the telemetry server reads Acquired/Contended (and
// lock-table snapshots) from an HTTP goroutine while the simulation
// goroutine takes the lock. Run under -race this fails loudly if the
// counters ever regress to plain ints.
func TestVLockStatsConcurrentRead(t *testing.T) {
	e := NewEngine(2)
	var l VLock
	lt := NewLockTable()
	l.SetMeter(lt.Meter("l", "test"))
	const lockers, iters = 4, 500
	for i := 0; i < lockers; i++ {
		e.Go("locker", 0, func(tk *Task) {
			for j := 0; j < iters; j++ {
				l.Lock(tk)
				tk.Work(3)
				l.Unlock(tk)
			}
		})
	}
	done := make(chan struct{})
	reads := make(chan uint64, 1)
	go func() {
		var sink uint64
		for {
			select {
			case <-done:
				reads <- sink
				return
			default:
			}
			sink += l.Acquired() + l.Contended() + lt.Snapshot()[0].Acquisitions +
				uint64(lt.Snapshot()[0].WaitersHighWater)
		}
	}()
	e.Run()
	close(done)
	<-reads
	if got := l.Acquired(); got != lockers*iters {
		t.Fatalf("acquired = %d, want %d", got, lockers*iters)
	}
}

// TestSchedStatsSnapshot pins the scheduler telemetry on a fully loaded
// two-core engine: four equal compute tasks, so both cores are busy for
// the whole horizon and two dispatches waited.
func TestSchedStatsSnapshot(t *testing.T) {
	e := NewEngine(2)
	e.ArmSched(NewSchedStats(2))
	for i := 0; i < 4; i++ {
		e.Go("worker", 0, func(tk *Task) { tk.Work(100) })
	}
	e.Run()

	snap := e.Sched().Snapshot()
	if snap.Cores != 2 || len(snap.PerCore) != 2 {
		t.Fatalf("cores = %d/%d, want 2", snap.Cores, len(snap.PerCore))
	}
	if snap.HorizonNS != 200 {
		t.Fatalf("horizon = %d, want 200", snap.HorizonNS)
	}
	var busy uint64
	for _, c := range snap.PerCore {
		busy += c.BusyNS
		if c.Utilization != 1.0 {
			t.Fatalf("core %d utilization = %v, want 1.0", c.Core, c.Utilization)
		}
	}
	if busy != 400 {
		t.Fatalf("total busy = %d, want 400", busy)
	}
	if snap.DispatchWait.Count != 4 {
		t.Fatalf("dispatch observations = %d, want 4", snap.DispatchWait.Count)
	}
	if snap.DispatchWait.Max != 100 {
		t.Fatalf("max dispatch wait = %d, want 100", snap.DispatchWait.Max)
	}
	if snap.RunqDepth.Count == 0 || snap.RunqDepth.Max < 2 {
		t.Fatalf("runq depth summary %+v, want samples with max ≥ 2", snap.RunqDepth)
	}
}

// TestDelayTaxonomyPartitionsLifetime pins the engine-level identity the
// kernel's ProcStat inherits: every clock advance lands in exactly one
// delay bucket, so the buckets sum to Now() - StartAt().
func TestDelayTaxonomyPartitionsLifetime(t *testing.T) {
	// Three identical tasks on two cores: the third runnable-waits for a
	// core, and the first two race the VLock so one lock-waits.
	e := NewEngine(2)
	var l VLock
	tasks := make([]*Task, 0, 3)
	for i := 0; i < 3; i++ {
		tk := e.Go("worker", 5, func(tk *Task) {
			tk.Work(100)   // run (+ runnable-wait for the third task)
			tk.Advance(30) // latency
			l.Lock(tk)     // lock-wait for the section's loser
			tk.Work(20)    // run
			l.Unlock(tk)
			tk.AdvanceTo(tk.Now() + 40) // blocked
		})
		tasks = append(tasks, tk)
	}
	e.Run()
	var runnable, lockWait Time
	for i, tk := range tasks {
		var sum Time
		for _, d := range tk.Delays() {
			sum += d
		}
		if lifetime := tk.Now() - tk.StartAt(); sum != lifetime || tk.Lifetime() != lifetime {
			t.Fatalf("task %d: delay sum %d / Lifetime %d != Now-StartAt %d (delays %v)",
				i, sum, tk.Lifetime(), lifetime, tk.Delays())
		}
		if tk.Delay(DelayRun) != 120 {
			t.Fatalf("task %d: run = %d, want 120", i, tk.Delay(DelayRun))
		}
		if tk.Delay(DelayLatency) != 30 {
			t.Fatalf("task %d: latency = %d, want 30", i, tk.Delay(DelayLatency))
		}
		if tk.Delay(DelayBlocked) != 40 {
			t.Fatalf("task %d: blocked = %d, want 40", i, tk.Delay(DelayBlocked))
		}
		runnable += tk.Delay(DelayRunnable)
		lockWait += tk.Delay(DelayLockWait)
	}
	if runnable == 0 {
		t.Fatal("no runnable-wait recorded on a contended core")
	}
	if lockWait == 0 {
		t.Fatal("no lock-wait recorded on a contended VLock")
	}
}

// BenchmarkDisabledLockMeter pins the lockstat disabled path — the nil
// receiver check VLock.Lock/Unlock pay when no meter is armed — at
// effectively nothing (≤5 ns/op on any modern machine; see the CI bench
// gate).
//
//	go test -bench DisabledLockMeter -benchtime 100000000x ./internal/sim
func BenchmarkDisabledLockMeter(b *testing.B) {
	var m *LockMeter
	for i := 0; i < b.N; i++ {
		m.onLock(Time(i), 0)
		m.onUnlock(Time(i))
	}
	if m.Acquisitions() != 0 {
		b.Fatal("nil meter recorded acquisitions")
	}
}

// BenchmarkEnabledLockMeter is the contrast case: the armed uncontended
// fast path (counter add, no histogram observation).
func BenchmarkEnabledLockMeter(b *testing.B) {
	m := NewLockTable().Meter("bkl", "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.onLock(Time(i), 0)
		m.onUnlock(1)
	}
	if m.Acquisitions() != uint64(b.N) {
		b.Fatal("lost acquisitions")
	}
}
