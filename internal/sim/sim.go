// Package sim is a deterministic virtual-time discrete-event engine.
//
// Every μprocess (and every baseline process) runs as a Task: a goroutine
// whose progress is measured on a virtual clock in nanoseconds. Exactly one
// task executes at any real-time instant — the engine hands control back
// and forth over channels — so simulations are fully deterministic, yet
// tasks overlap in *virtual* time across a configurable number of CPU
// cores, which is how the multi-core throughput experiments (Figures 6 and
// 7) are reproduced.
//
// The model:
//
//   - Task.Work(d) books d nanoseconds of compute on the earliest-available
//     core (charging a context-switch cost when the core last ran a
//     different task — this is where multi-address-space TLB flush costs
//     surface);
//   - Task.Sync() is a causality point: the engine always resumes the
//     runnable task with the smallest clock, so cross-task interactions
//     (pipes, wait/exit, locks) observe a consistent global order;
//   - Task.Park()/Task.Unpark() implement blocking: a parked task resumes
//     no earlier than the waker's clock at wake time.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync/atomic"
)

// Time is virtual time in nanoseconds.
type Time uint64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

// state of a task.
type state int

const (
	stateNew state = iota
	stateRunnable
	stateRunning
	stateParked
	stateDone
)

// Task is one simulated thread of execution.
type Task struct {
	ID   int
	Name string

	// Tag is an opaque annotation the embedding kernel sets (the owning
	// μprocess PID); the engine threads it through to dispatch hooks and
	// flight events without knowing what it means.
	Tag int32

	eng    *Engine
	now    Time
	st     state
	resume chan struct{}
	fn     func(*Task)

	// startAt is the clock the task was created with. Every clock advance
	// is attributed to exactly one DelayKind, so at any instant
	// Now()-StartAt() equals the sum over delays — the identity the delay
	// accounting tests pin.
	startAt Time

	// delays is the per-kind delay taxonomy. Atomic because the telemetry
	// server reads them from an HTTP goroutine while the simulation
	// goroutine accumulates.
	delays [NumDelayKinds]atomic.Uint64

	// SwitchCost is charged by Work when this task lands on a core that
	// last ran a different task. The kernel sets it per machine model.
	SwitchCost Time

	// Offcore marks a task that models an external agent (e.g. a load
	// generator standing in for a client machine): its Work/Book calls
	// advance its clock without occupying any of the simulated CPU cores.
	Offcore bool

	// held is the stack of VLocks the task currently holds, in acquisition
	// order. The lock-ordering assertion validates new acquisitions against
	// it, and sleep sites release/re-acquire through it. Simulation
	// goroutine only.
	held []*VLock

	// lastCore is the core index the task most recently booked compute on;
	// the kernel uses it to attribute allocator traffic to a per-CPU frame
	// cache. Simulation goroutine only.
	lastCore int
}

// HeldLocks returns the locks the task currently holds, outermost first (a
// copy). Sleep sites snapshot it to re-acquire the same footprint after a
// wake.
func (t *Task) HeldLocks() []*VLock {
	if len(t.held) == 0 {
		return nil
	}
	return append([]*VLock(nil), t.held...)
}

// ReleaseAll unlocks every strict lock the task holds, innermost first.
// Idempotent: callers use it as a safety net on syscall exit and on the
// double-release paths of a task unwinding through a kill.
func (t *Task) ReleaseAll() {
	for len(t.held) > 0 {
		t.held[len(t.held)-1].Unlock(t)
	}
}

// LastCore returns the core index this task most recently booked compute
// on (zero before any booking; off-core tasks keep their last value).
func (t *Task) LastCore() int { return t.lastCore }

// Engine drives a set of tasks over virtual time.
type Engine struct {
	cores    *coreBank
	tasks    []*Task
	runq     runQueue
	toSched  chan *Task
	nextID   int
	running  *Task
	started  bool
	finished bool

	// sched, when armed via ArmSched, collects run-queue depth, dispatch
	// latency, and per-core utilization. Nil in production runs: every
	// observation site pays one pointer check.
	sched *SchedStats

	// OnDispatch, when non-nil, observes each on-core slot grant that had
	// to queue behind busy cores (wait > 0). Called on the simulation
	// goroutine with the granted task and its queueing delay; it must not
	// touch task clocks. Only consulted when sched is armed.
	OnDispatch func(t *Task, wait Time)

	// OnCharge, when non-nil, observes every charged interval of a
	// core-occupying task: on-core compute from Work/Book (DelayRun, with
	// the same busy value the scheduler stats record) and off-core
	// latency from Advance (DelayLatency, attributed to the task's last
	// core). Offcore tasks are skipped — they model external agents and
	// never occupy a simulated CPU. Called on the simulation goroutine
	// after the task's clock has advanced; it must not touch task clocks,
	// so installing it cannot change the simulated timeline. Unarmed
	// engines pay one nil check per charge.
	OnCharge func(t *Task, core int, kind DelayKind, d Time)
}

// NewEngine creates an engine with the given number of CPU cores.
func NewEngine(cores int) *Engine {
	if cores < 1 {
		panic("sim: need at least one core")
	}
	return &Engine{
		cores:   newCoreBank(cores),
		toSched: make(chan *Task),
	}
}

// Cores returns the number of simulated CPU cores.
func (e *Engine) Cores() int { return e.cores.n() }

// ArmSched attaches scheduler statistics collection. Arm before Run;
// collection never mutates task clocks, so arming cannot change the
// simulated timeline.
func (e *Engine) ArmSched(s *SchedStats) { e.sched = s }

// Sched returns the armed scheduler statistics, or nil.
func (e *Engine) Sched() *SchedStats { return e.sched }

// Now returns the virtual clock of the currently running task, or zero
// when the engine is idle (setup before Run, teardown after). The
// scheduler writes running before the resume-channel handoff and clears it
// after the task yields back, so a call made from inside the running task
// — the only caller — observes a stable pointer.
func (e *Engine) Now() Time {
	if t := e.running; t != nil {
		return t.now
	}
	return 0
}

// Go creates a task that will run fn starting at virtual time start. It
// may be called before Run or from within a running task (e.g. by fork).
func (e *Engine) Go(name string, start Time, fn func(*Task)) *Task {
	t := &Task{
		ID:      e.nextID,
		Name:    name,
		eng:     e,
		now:     start,
		startAt: start,
		st:      stateRunnable,
		resume:  make(chan struct{}),
		fn:      fn,
	}
	e.nextID++
	e.tasks = append(e.tasks, t)
	heap.Push(&e.runq, t)
	go t.body()
	return t
}

func (t *Task) body() {
	<-t.resume
	t.fn(t)
	t.st = stateDone
	t.eng.toSched <- t
}

// Run executes the simulation until every task has finished. It panics on
// deadlock (parked tasks with an empty run queue), printing a task dump —
// a deadlock is always a bug in the simulated kernel.
func (e *Engine) Run() {
	if e.started {
		panic("sim: engine reused")
	}
	e.started = true
	for e.runq.Len() > 0 {
		t := heap.Pop(&e.runq).(*Task)
		if s := e.sched; s != nil {
			s.RunqDepth.Observe(uint64(e.runq.Len()))
		}
		t.st = stateRunning
		e.running = t
		t.resume <- struct{}{}
		<-e.toSched
		e.running = nil
	}
	for _, t := range e.tasks {
		if t.st != stateDone {
			panic("sim: deadlock — " + e.dump())
		}
	}
	e.finished = true
}

func (e *Engine) dump() string {
	s := ""
	for _, t := range e.tasks {
		s += fmt.Sprintf("[task %d %q state=%d now=%v] ", t.ID, t.Name, t.st, t.now)
	}
	return s
}

// Now returns the task's virtual clock.
func (t *Task) Now() Time { return t.now }

// Advance moves the task's clock forward by d without consuming core time.
// Use it for latencies that do not occupy a CPU (e.g. simulated device or
// network delays); use Work for computation.
func (t *Task) Advance(d Time) {
	t.addDelay(DelayLatency, d)
	t.now += d
	if h := t.eng.OnCharge; h != nil && !t.Offcore && d > 0 {
		h(t, t.lastCore, DelayLatency, d)
	}
}

// AdvanceTo moves the clock forward to at least abs. Only Unpark calls it,
// so the jump is parked (blocked) time.
func (t *Task) AdvanceTo(abs Time) {
	if abs > t.now {
		t.addDelay(DelayBlocked, abs-t.now)
		t.now = abs
	}
}

// Sync is a causality point: the task re-enters the scheduler so that any
// other runnable task with a smaller clock executes first. Kernel entry
// points call this before touching shared state.
func (t *Task) Sync() {
	t.check()
	t.st = stateRunnable
	heap.Push(&t.eng.runq, t)
	t.eng.toSched <- t
	<-t.resume
	t.st = stateRunning
}

// Work books d nanoseconds of computation on the earliest-free core. The
// task's clock advances to the end of the booked slot, which may be later
// than now+d when all cores are busy — that is how core contention
// throttles throughput. A context-switch cost is charged when the core
// last ran a different task.
func (t *Task) Work(d Time) {
	t.Sync()
	if t.Offcore {
		t.addDelay(DelayRun, d)
		t.now += d
		return
	}
	ready := t.now
	start, core, switched := t.eng.cores.acquire(ready, t.ID)
	wait := start - ready
	if switched {
		start += t.SwitchCost
	}
	end := start + d
	t.eng.cores.release(core, end, t.ID)
	t.lastCore = core
	t.addDelay(DelayRunnable, wait)
	t.addDelay(DelayRun, end-ready-wait)
	t.noteDispatch(core, wait, end-ready-wait)
	t.now = end
	if h := t.eng.OnCharge; h != nil {
		h(t, core, DelayRun, end-ready-wait)
	}
}

// Book reserves d nanoseconds of CPU on the earliest-free core without the
// task-alternation surcharge — for scheduler work (context switches) whose
// cost the kernel computes itself. Unlike Advance, booked time occupies a
// core, so on a saturated core it does not overlap with other tasks' work.
func (t *Task) Book(d Time) {
	t.Sync()
	if t.Offcore {
		t.addDelay(DelayRun, d)
		t.now += d
		return
	}
	ready := t.now
	start, core, _ := t.eng.cores.acquire(ready, t.ID)
	wait := start - ready
	end := start + d
	t.eng.cores.release(core, end, t.ID)
	t.lastCore = core
	t.addDelay(DelayRunnable, wait)
	t.addDelay(DelayRun, d)
	t.noteDispatch(core, wait, d)
	t.now = end
	if h := t.eng.OnCharge; h != nil {
		h(t, core, DelayRun, d)
	}
}

// noteDispatch feeds one granted core slot to the armed scheduler stats
// and the dispatch hook. Unarmed engines pay one nil check.
func (t *Task) noteDispatch(core int, wait, busy Time) {
	s := t.eng.sched
	if s == nil {
		return
	}
	s.note(core, wait, busy, t.now+wait+busy)
	if wait > 0 && t.eng.OnDispatch != nil {
		t.eng.OnDispatch(t, wait)
	}
}

// Park blocks the task until another task calls Unpark on it. The task
// resumes with its clock advanced to at least the waker's clock.
func (t *Task) Park() {
	t.check()
	t.st = stateParked
	t.eng.toSched <- t
	<-t.resume
	t.st = stateRunning
}

// Unpark makes the parked target runnable no earlier than virtual time at.
// It must be called from a running task (or before Run starts). Unparking
// a task that is not parked panics: the simulated kernel must track
// waiter state precisely.
func (t *Task) Unpark(target *Task, at Time) {
	if target.st != stateParked {
		panic(fmt.Sprintf("sim: unpark of non-parked task %d (%q, state %d)", target.ID, target.Name, target.st))
	}
	target.AdvanceTo(at)
	target.st = stateRunnable
	heap.Push(&t.eng.runq, target)
}

// Parked reports whether the target is currently parked.
func (e *Engine) Parked(target *Task) bool { return target.st == stateParked }

func (t *Task) check() {
	if t.eng.running != t {
		panic(fmt.Sprintf("sim: task %d (%q) invoked engine op while not running", t.ID, t.Name))
	}
}

// --- run queue: min-heap on (clock, id) ---

type runQueue []*Task

func (q runQueue) Len() int { return len(q) }
func (q runQueue) Less(i, j int) bool {
	if q[i].now != q[j].now {
		return q[i].now < q[j].now
	}
	return q[i].ID < q[j].ID
}
func (q runQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *runQueue) Push(x interface{}) { *q = append(*q, x.(*Task)) }
func (q *runQueue) Pop() interface{} {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// --- core bank ---

type coreBank struct {
	freeAt []Time
	last   []int
}

func newCoreBank(n int) *coreBank {
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	return &coreBank{freeAt: make([]Time, n), last: last}
}

func (cb *coreBank) n() int { return len(cb.freeAt) }

// acquire returns the start time for a compute slot beginning no earlier
// than ready, the chosen core, and whether the core last ran another task.
// Preference order: a core this task already ran on that is free, then any
// free core, then the earliest-free core.
func (cb *coreBank) acquire(ready Time, taskID int) (Time, int, bool) {
	best := -1
	for i := range cb.freeAt {
		if cb.freeAt[i] <= ready && cb.last[i] == taskID {
			return ready, i, false
		}
		if best == -1 || cb.freeAt[i] < cb.freeAt[best] {
			best = i
		}
	}
	start := ready
	if cb.freeAt[best] > start {
		start = cb.freeAt[best]
	}
	return start, best, cb.last[best] != taskID && cb.last[best] != -1
}

func (cb *coreBank) release(core int, at Time, taskID int) {
	cb.freeAt[core] = at
	cb.last[core] = taskID
}

// --- virtual-time lock ---

// VLock is a virtual-time mutex with two operating modes.
//
// A zero-value VLock uses the legacy virtual-exclusion model that PR-6
// measured the big kernel lock with: acquisition delays the caller's clock
// until the previous holder's release clock (the freeAt jump). Critical
// sections that overlap in real time merge in virtual time, and a holder
// may park mid-section — an approximation that is exact for the BKL's
// whole-syscall sections and is kept byte-for-byte so every pre-split
// golden stays pinned.
//
// A VLock initialized with Init is strict: exactly one real-time holder, a
// FIFO waiter queue with direct handoff (a hot re-acquirer joins the tail
// and cannot starve queued tasks), recursive-acquire and wrong-holder
// panics, and — when rank is non-zero — a lock-ordering assertion against
// the acquiring task's held stack. The fine-grained kernel hierarchy uses
// strict locks exclusively; strict holders must not park while holding
// (sleep sites release and re-acquire via Task.HeldLocks).
//
// Counters are atomic: host-side readers (the telemetry server, parallel
// eager-copy workers' coordinator) sample them while the simulation
// goroutine holds the lock.
type VLock struct {
	name   string
	rank   int
	seq    int
	strict bool

	holder  *Task
	waiters []*Task

	freeAt    Time
	heldAt    Time
	acquired  atomic.Uint64
	contended atomic.Uint64
	m         *LockMeter
}

// Init names the lock and switches it to strict FIFO mode, placing it in
// the lock-ordering hierarchy at (rank, seq). A task may only acquire a
// ranked lock that orders strictly after every ranked lock it already
// holds: higher rank, or equal rank with a higher seq (how parent/child
// μprocess pairs are taken in ascending-PID canonical order). Rank 0 opts
// the lock out of ordering checks but keeps strict FIFO semantics.
func (l *VLock) Init(name string, rank, seq int) {
	l.name = name
	l.rank = rank
	l.seq = seq
	l.strict = true
}

// Name returns the lock's Init name ("" for a legacy zero-value lock).
func (l *VLock) Name() string { return l.name }

// Holder returns the task currently inside a strict lock's critical
// section, or nil. Always nil for legacy locks. Simulation goroutine only.
func (l *VLock) Holder() *Task { return l.holder }

// Acquired returns the total acquisition count.
func (l *VLock) Acquired() uint64 { return l.acquired.Load() }

// Contended returns the number of acquisitions that had to wait.
func (l *VLock) Contended() uint64 { return l.contended.Load() }

// SetMeter attaches lockstat metering to the lock (nil detaches). Set
// before the simulation runs; metering never mutates clocks.
func (l *VLock) SetMeter(m *LockMeter) { l.m = m }

// assertOrder is the debug ordering assertion: acquiring a ranked strict
// lock while holding one that does not order before it is a kernel bug,
// reported with both locks' names so the inverted pair is obvious.
func (l *VLock) assertOrder(t *Task) {
	for _, h := range t.held {
		if h.rank == 0 {
			continue
		}
		if l.rank < h.rank || (l.rank == h.rank && l.seq <= h.seq) {
			panic(fmt.Sprintf(
				"sim: lock order violation: task %d (%q) acquiring %s(rank %d, seq %d) while holding %s(rank %d, seq %d)",
				t.ID, t.Name, l.name, l.rank, l.seq, h.name, h.rank, h.seq))
		}
	}
}

// Lock acquires the lock at the caller's current clock. Legacy mode jumps
// the clock to the previous release time when contended; strict mode parks
// the caller in FIFO arrival order until the holder hands the lock off.
// Either way the wait is charged to the task's DelayLockWait bucket.
func (l *VLock) Lock(t *Task) {
	t.Sync()
	if l.strict && l.holder == t {
		panic(fmt.Sprintf("sim: task %d (%q) recursively acquiring lock %s", t.ID, t.Name, l.name))
	}
	if l.rank != 0 {
		l.assertOrder(t)
	}
	l.acquired.Add(1)
	var wait Time
	switch {
	case l.strict && l.holder != nil:
		// Strict and held: queue in arrival order and park. The releaser
		// designates us holder before unparking (direct handoff — no
		// barging), so on resume the section is ours. The park jump lands
		// in DelayBlocked; reclassify it as lock wait.
		l.waiters = append(l.waiters, t)
		t0 := t.now
		t.Park()
		wait = t.now - t0
		t.reclassify(DelayBlocked, DelayLockWait, wait)
	case !l.strict && l.freeAt > t.now:
		// Legacy virtual exclusion: serialize behind the previous
		// section's release clock.
		wait = l.freeAt - t.now
		t.addDelay(DelayLockWait, wait)
		t.now = l.freeAt
	}
	if wait > 0 {
		l.contended.Add(1)
	}
	if l.strict {
		l.holder = t
		t.held = append(t.held, l)
	}
	l.heldAt = t.now
	l.m.onLock(t.now, wait)
}

// Unlock releases the lock at the caller's current clock. A strict lock
// with queued waiters is handed directly to the head of the FIFO.
func (l *VLock) Unlock(t *Task) {
	if l.strict && l.holder != t {
		panic(fmt.Sprintf("sim: task %d (%q) unlocking lock %s it does not hold", t.ID, t.Name, l.name))
	}
	if t.now > l.freeAt {
		l.freeAt = t.now
	}
	// Hold time since the most recent acquisition. A legacy holder that
	// parks mid-section (pipe read under the BKL) can be overtaken in
	// virtual time; clamp instead of underflowing — the merged section is
	// still attributed to the lock deterministically.
	var hold Time
	if t.now > l.heldAt {
		hold = t.now - l.heldAt
	}
	l.m.onUnlock(hold)
	if !l.strict {
		return
	}
	for i := len(t.held) - 1; i >= 0; i-- {
		if t.held[i] == l {
			t.held = append(t.held[:i], t.held[i+1:]...)
			break
		}
	}
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters[len(l.waiters)-1] = nil
		l.waiters = l.waiters[:len(l.waiters)-1]
		l.holder = next
		t.Unpark(next, t.now)
	} else {
		l.holder = nil
	}
}

// --- wait queue ---

// WaitQueue is a FIFO of parked tasks, the building block for pipes,
// wait(2) and similar blocking kernel objects.
type WaitQueue struct {
	waiters []*Task
}

// Wait parks the calling task on the queue.
func (w *WaitQueue) Wait(t *Task) {
	w.waiters = append(w.waiters, t)
	t.Park()
}

// WakeOne unparks the first waiter (if any) at time at; it returns whether
// a task was woken.
func (w *WaitQueue) WakeOne(t *Task, at Time) bool {
	if len(w.waiters) == 0 {
		return false
	}
	target := w.waiters[0]
	w.waiters = w.waiters[1:]
	t.Unpark(target, at)
	return true
}

// WakeAll unparks every waiter at time at, in FIFO order.
func (w *WaitQueue) WakeAll(t *Task, at Time) int {
	n := len(w.waiters)
	// Deterministic order: FIFO, tie-broken by the heap on (clock, id).
	ws := w.waiters
	w.waiters = nil
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	for _, target := range ws {
		t.Unpark(target, at)
	}
	return n
}

// Empty reports whether no task is waiting.
func (w *WaitQueue) Empty() bool { return len(w.waiters) == 0 }
