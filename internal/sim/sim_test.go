package sim

import (
	"testing"
)

func TestSingleTaskClock(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.Go("solo", 0, func(tk *Task) {
		tk.Work(100)
		tk.Advance(50)
		tk.Work(25)
		end = tk.Now()
	})
	e.Run()
	if end != 175 {
		t.Fatalf("end = %d, want 175", end)
	}
}

func TestTwoTasksTwoCoresOverlap(t *testing.T) {
	// Two compute-bound tasks on two cores overlap fully in virtual time.
	e := NewEngine(2)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("worker", 0, func(tk *Task) {
			tk.Work(1000)
			ends[i] = tk.Now()
		})
	}
	e.Run()
	for i, end := range ends {
		if end != 1000 {
			t.Fatalf("task %d end = %d, want 1000 (parallel)", i, end)
		}
	}
}

func TestTwoTasksOneCoreSerialize(t *testing.T) {
	// On one core, the second task's compute is pushed back.
	e := NewEngine(1)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("worker", 0, func(tk *Task) {
			tk.Work(1000)
			ends[i] = tk.Now()
		})
	}
	e.Run()
	got := []Time{ends[0], ends[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if got[0] != 1000 || got[1] != 2000 {
		t.Fatalf("ends = %v, want [1000 2000]", got)
	}
}

func TestContextSwitchCost(t *testing.T) {
	// Two tasks alternating on one core pay the switch cost every segment;
	// a core that keeps running the same task does not.
	e := NewEngine(1)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("pingpong", 0, func(tk *Task) {
			tk.SwitchCost = 100
			for j := 0; j < 3; j++ {
				tk.Work(10)
			}
			ends[i] = tk.Now()
		})
	}
	e.Run()
	last := ends[0]
	if ends[1] > last {
		last = ends[1]
	}
	// 6 segments of 10ns; first lands on a cold core (no switch), the rest
	// alternate tasks, each paying 100ns: 6*10 + 5*100 = 560.
	if last != 560 {
		t.Fatalf("last end = %d, want 560", last)
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine(2)
	var consumerEnd Time
	var wq WaitQueue
	ready := false
	consumer := func(tk *Task) {
		tk.Work(10)
		for !ready {
			wq.Wait(tk)
		}
		consumerEnd = tk.Now()
	}
	producer := func(tk *Task) {
		tk.Work(500)
		ready = true
		wq.WakeOne(tk, tk.Now())
	}
	e.Go("consumer", 0, consumer)
	e.Go("producer", 0, producer)
	e.Run()
	if consumerEnd != 500 {
		t.Fatalf("consumer woke at %d, want 500 (producer's clock)", consumerEnd)
	}
}

func TestWakeAll(t *testing.T) {
	e := NewEngine(4)
	var wq WaitQueue
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", 0, func(tk *Task) {
			wq.Wait(tk)
			woken++
		})
	}
	e.Go("waker", 0, func(tk *Task) {
		tk.Work(100)
		// Let the waiters park first (their clocks are 0 < 100).
		tk.Sync()
		if n := wq.WakeAll(tk, tk.Now()); n != 3 {
			t.Errorf("WakeAll woke %d", n)
		}
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestVLockSerializes(t *testing.T) {
	e := NewEngine(4)
	var lock VLock
	ends := make([]Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Go("locker", 0, func(tk *Task) {
			lock.Lock(tk)
			tk.Advance(100) // critical section, no core booking for clarity
			lock.Unlock(tk)
			ends[i] = tk.Now()
		})
	}
	e.Run()
	seen := map[Time]bool{}
	for _, end := range ends {
		seen[end] = true
	}
	// Critical sections must have serialized: 100, 200, 300, 400.
	for _, want := range []Time{100, 200, 300, 400} {
		if !seen[want] {
			t.Fatalf("ends = %v, want serialized {100,200,300,400}", ends)
		}
	}
	if lock.Contended() != 3 {
		t.Fatalf("contended = %d, want 3", lock.Contended())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(2)
		var lock VLock
		ends := make([]Time, 6)
		for i := 0; i < 6; i++ {
			i := i
			e.Go("t", Time(i*7), func(tk *Task) {
				for j := 0; j < 5; j++ {
					tk.Work(Time(13 * (i + 1)))
					lock.Lock(tk)
					tk.Advance(5)
					lock.Unlock(tk)
				}
				ends[i] = tk.Now()
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1=%v run2=%v", a, b)
		}
	}
}

func TestSpawnFromRunningTask(t *testing.T) {
	e := NewEngine(2)
	var childEnd Time
	e.Go("parent", 0, func(tk *Task) {
		tk.Work(100)
		e.Go("child", tk.Now(), func(ck *Task) {
			ck.Work(50)
			childEnd = ck.Now()
		})
		tk.Work(10)
	})
	e.Run()
	if childEnd != 150 {
		t.Fatalf("child end = %d, want 150", childEnd)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine(1)
	var wq WaitQueue
	e.Go("stuck", 0, func(tk *Task) { wq.Wait(tk) })
	e.Run()
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:          "5ns",
		1500:       "1.500µs",
		2500000:    "2.500ms",
		3000000000: "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", uint64(in), got, want)
		}
	}
}
