package sim

import "testing"

// TestOnChargeHook: the charge hook sees every Work/Book/Advance
// interval of core-occupying tasks with the same busy values the
// scheduler stats record, and never sees Offcore tasks.
func TestOnChargeHook(t *testing.T) {
	e := NewEngine(2)
	e.ArmSched(NewSchedStats(2))
	type charge struct {
		name string
		core int
		kind DelayKind
		d    Time
	}
	var got []charge
	e.OnCharge = func(task *Task, core int, kind DelayKind, d Time) {
		got = append(got, charge{task.Name, core, kind, d})
	}
	e.Go("a", 0, func(task *Task) {
		task.Work(100)
		task.Book(50)
		task.Advance(30)
	})
	e.Go("ext", 0, func(task *Task) {
		task.Offcore = true
		task.Work(10)
		task.Advance(10)
	})
	e.Run()

	perKind := map[DelayKind]Time{}
	for _, c := range got {
		if c.name == "ext" {
			t.Fatalf("OnCharge saw Offcore task: %+v", c)
		}
		perKind[c.kind] += c.d
	}
	if perKind[DelayRun] != 150 || perKind[DelayLatency] != 30 {
		t.Fatalf("charged run=%d latency=%d, want 150/30", perKind[DelayRun], perKind[DelayLatency])
	}

	// The hook's run charges must equal the scheduler's recorded busy
	// time per core — same values, independent accumulators.
	var hookBusy [2]Time
	for _, c := range got {
		if c.kind == DelayRun {
			hookBusy[c.core] += c.d
		}
	}
	snap := e.Sched().Snapshot()
	for core, pc := range snap.PerCore {
		if Time(pc.BusyNS) != hookBusy[core] {
			t.Fatalf("core %d: sched busy %d != hook busy %d", core, pc.BusyNS, hookBusy[core])
		}
	}
}
