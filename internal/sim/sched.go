package sim

import (
	"sync/atomic"

	"ufork/internal/obs"
)

// runqDepthBuckets sizes the run-queue depth histogram: depth is a small
// integer, so power-of-two buckets resolve it fully.
var runqDepthBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// SchedStats collects scheduler telemetry: run-queue depth sampled at
// every dispatch, dispatch latency (virtual time a runnable task queued
// for a core), and per-core busy time. Armed via Engine.ArmSched; all
// fields are atomic so the telemetry server reads them live.
type SchedStats struct {
	// RunqDepth samples the number of runnable tasks left in the queue
	// each time the scheduler dispatches one.
	RunqDepth *obs.Histogram
	// DispatchWait is the virtual time between a task becoming ready to
	// compute and a core granting it a slot.
	DispatchWait *obs.Histogram

	busy    []obs.Counter // per-core busy virtual ns
	horizon atomic.Uint64 // latest slot end observed (utilization denominator)
}

// NewSchedStats creates stats sized for the given core count.
func NewSchedStats(cores int) *SchedStats {
	return &SchedStats{
		RunqDepth:    obs.NewHistogram(runqDepthBuckets),
		DispatchWait: obs.NewHistogram(nil),
		busy:         make([]obs.Counter, cores),
	}
}

// note records one granted core slot: wait ns queued, busy ns on core,
// ending at end. Called on the simulation goroutine.
func (s *SchedStats) note(core int, wait, busy, end Time) {
	s.DispatchWait.Observe(uint64(wait))
	s.busy[core].Add(uint64(busy))
	if v := uint64(end); v > s.horizon.Load() {
		s.horizon.Store(v)
	}
}

// CoreUtil is one core's utilization over the simulated horizon.
type CoreUtil struct {
	Core        int     `json:"core"`
	BusyNS      uint64  `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
}

// SchedSnapshot is the JSON view of the scheduler statistics.
type SchedSnapshot struct {
	Cores        int             `json:"cores"`
	HorizonNS    uint64          `json:"horizon_ns"`
	RunqDepth    obs.HistSummary `json:"runq_depth"`
	DispatchWait obs.HistSummary `json:"dispatch_wait_ns"`
	PerCore      []CoreUtil      `json:"per_core"`
}

// Snapshot returns the current scheduler statistics. Utilization is busy
// time over the latest observed slot end (1.0 = the core never idled).
func (s *SchedStats) Snapshot() SchedSnapshot {
	snap := SchedSnapshot{
		Cores:        len(s.busy),
		HorizonNS:    s.horizon.Load(),
		RunqDepth:    s.RunqDepth.Summary(),
		DispatchWait: s.DispatchWait.Summary(),
		PerCore:      make([]CoreUtil, len(s.busy)),
	}
	for i := range s.busy {
		u := CoreUtil{Core: i, BusyNS: s.busy[i].Value()}
		if snap.HorizonNS > 0 {
			u.Utilization = float64(u.BusyNS) / float64(snap.HorizonNS)
		}
		snap.PerCore[i] = u
	}
	return snap
}
