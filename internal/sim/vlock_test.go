package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestStrictFIFOFairness pins the no-barging guarantee of strict VLocks: a
// holder that releases and immediately re-acquires must queue behind every
// task that parked while it held the lock. With barging (the legacy
// freeAt model has no queue at all), the hot re-acquirer would win the
// race against the parked waiters and could starve them indefinitely.
func TestStrictFIFOFairness(t *testing.T) {
	eng := NewEngine(4)
	var l VLock
	l.Init("fifo", 0, 0)
	var order []string
	var taskA, taskB *Task
	eng.Go("H", 0, func(tk *Task) {
		l.Lock(tk)
		order = append(order, "H1")
		// Two Work slices: the second one's causality point (clock 10) lets
		// A and B run and park on the held lock, in arrival order.
		tk.Work(10)
		tk.Work(90)
		l.Unlock(tk)
		// Hot re-acquire: A and B are already queued; direct handoff made A
		// the holder at our release, so we must join the tail behind B.
		l.Lock(tk)
		order = append(order, "H2")
		l.Unlock(tk)
	})
	taskA = eng.Go("A", 1, func(tk *Task) {
		l.Lock(tk)
		order = append(order, "A")
		l.Unlock(tk)
	})
	taskB = eng.Go("B", 2, func(tk *Task) {
		l.Lock(tk)
		order = append(order, "B")
		l.Unlock(tk)
	})
	eng.Run()

	want := []string{"H1", "A", "B", "H2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want FIFO %v", order, want)
	}
	// A arrived at t=1 and was handed the lock at H's release (t=100); the
	// 99ns park must be charged to lock wait, not generic blocking. B got
	// the handoff from A at the same instant, so it waited 98ns.
	if got := taskA.Delay(DelayLockWait); got != 99 {
		t.Errorf("A's lock-wait delay = %v, want 99ns", got)
	}
	if got := taskA.Delay(DelayBlocked); got != 0 {
		t.Errorf("A's blocked delay = %v, want 0 (reclassified to lock wait)", got)
	}
	if got := taskB.Delay(DelayLockWait); got != 98 {
		t.Errorf("B's lock-wait delay = %v, want 98ns", got)
	}
	// A and B waited; H's re-acquire parked behind B but was granted at the
	// same virtual instant, so only two acquisitions count as contended.
	if l.Contended() != 2 {
		t.Errorf("contended = %d, want 2 (A and B)", l.Contended())
	}
	if l.Acquired() != 4 {
		t.Errorf("acquired = %d, want 4", l.Acquired())
	}
}

// TestStrictRecursiveAcquirePanics: strict locks are not reentrant; a
// recursive acquire is a kernel bug and must fail loudly.
func TestStrictRecursiveAcquirePanics(t *testing.T) {
	eng := NewEngine(1)
	var l VLock
	l.Init("rec", 0, 0)
	var msg string
	eng.Go("t", 0, func(tk *Task) {
		defer func() { msg = fmt.Sprint(recover()) }()
		l.Lock(tk)
		l.Lock(tk)
	})
	eng.Run()
	if !strings.Contains(msg, "recursively acquiring lock rec") {
		t.Fatalf("recursive acquire did not panic usefully: %q", msg)
	}
}

// TestStrictWrongHolderUnlockPanics: only the holder may release a strict
// lock, and the panic must name the lock.
func TestStrictWrongHolderUnlockPanics(t *testing.T) {
	eng := NewEngine(2)
	var l VLock
	l.Init("owned", 0, 0)
	var wq WaitQueue
	var msg string
	var holder *Task
	holder = eng.Go("holder", 0, func(tk *Task) {
		l.Lock(tk)
		wq.Wait(tk) // hold across the intruder's attempt
		l.Unlock(tk)
	})
	eng.Go("intruder", 10, func(tk *Task) {
		tk.Sync()
		if got := l.Holder(); got != holder {
			t.Errorf("holder = %v, want the holder task", got)
		}
		func() {
			defer func() { msg = fmt.Sprint(recover()) }()
			l.Unlock(tk)
		}()
		wq.WakeAll(tk, tk.Now())
	})
	eng.Run()
	if !strings.Contains(msg, "unlocking lock owned it does not hold") {
		t.Fatalf("wrong-holder unlock did not panic usefully: %q", msg)
	}
}

// TestLockOrderSabotage deliberately inverts the kernel's lock hierarchy —
// acquiring a rank-10 lock while holding a rank-20 one — and requires the
// ordering assertion to fire with both lock names in the message, so an
// inverted pair in a real kernel path is immediately attributable.
func TestLockOrderSabotage(t *testing.T) {
	eng := NewEngine(1)
	var inner, outer VLock
	inner.Init("uproc", 10, 1)
	outer.Init("proctable", 20, 1)
	var msg string
	eng.Go("saboteur", 0, func(tk *Task) {
		defer func() { msg = fmt.Sprint(recover()) }()
		outer.Lock(tk)
		inner.Lock(tk) // rank 10 after rank 20: inverted
	})
	eng.Run()
	for _, want := range []string{"lock order violation", "uproc", "proctable"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("sabotage panic %q missing %q", msg, want)
		}
	}
}

// TestLockOrderEqualRankSeq: equal-rank locks order by seq — the
// ascending-PID canonical pair order for μprocess locks. Ascending is
// legal; descending must panic.
func TestLockOrderEqualRankSeq(t *testing.T) {
	run := func(first, second *VLock) (msg string) {
		eng := NewEngine(1)
		eng.Go("t", 0, func(tk *Task) {
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprint(r)
				}
			}()
			first.Lock(tk)
			second.Lock(tk)
			second.Unlock(tk)
			first.Unlock(tk)
		})
		eng.Run()
		return msg
	}

	var lo, hi VLock
	lo.Init("uproc-3", 10, 3)
	hi.Init("uproc-5", 10, 5)
	if msg := run(&lo, &hi); msg != "" {
		t.Fatalf("ascending-seq pair acquisition panicked: %q", msg)
	}
	lo = VLock{}
	hi = VLock{}
	lo.Init("uproc-3", 10, 3)
	hi.Init("uproc-5", 10, 5)
	if msg := run(&hi, &lo); !strings.Contains(msg, "lock order violation") {
		t.Fatalf("descending-seq pair did not panic: %q", msg)
	}
}

// TestReleaseAllInnermostFirst: the syscall-exit safety net releases the
// whole held stack and leaves the locks grantable again.
func TestReleaseAllInnermostFirst(t *testing.T) {
	eng := NewEngine(1)
	var a, b VLock
	a.Init("a", 10, 0)
	b.Init("b", 20, 0)
	eng.Go("t", 0, func(tk *Task) {
		a.Lock(tk)
		b.Lock(tk)
		if n := len(tk.HeldLocks()); n != 2 {
			t.Errorf("held %d locks, want 2", n)
		}
		tk.ReleaseAll()
		if n := len(tk.HeldLocks()); n != 0 {
			t.Errorf("held %d locks after ReleaseAll, want 0", n)
		}
		if a.Holder() != nil || b.Holder() != nil {
			t.Error("locks still held after ReleaseAll")
		}
		// Idempotent.
		tk.ReleaseAll()
		// And re-acquirable.
		a.Lock(tk)
		a.Unlock(tk)
	})
	eng.Run()
}
