package kernel

import (
	"fmt"

	"ufork/internal/obs/causal"
)

// Signal numbers (the POSIX subset the workloads use).
type Signal int

// Supported signals.
const (
	// SIGTERM requests termination; catchable.
	SIGTERM Signal = 15
	// SIGKILL terminates unconditionally; never catchable.
	SIGKILL Signal = 9
	// SIGUSR1 is application-defined; catchable.
	SIGUSR1 Signal = 10
	// SIGCHLD notifies a parent of child termination; default ignored.
	SIGCHLD Signal = 17
)

// SigHandler is a registered signal handler. Handlers run on the target
// process's own task at its next kernel entry — the delivery point a
// kernel that only interrupts at the user/kernel boundary provides.
type SigHandler func(p *Proc, sig Signal)

// pendingSig is one queued signal plus the causal context it carries:
// the sender's trace and PID, so delivery can join the target to the
// sender's trace with a signal edge. Zero trace when untraced.
type pendingSig struct {
	sig   Signal
	trace causal.TraceID
	from  int32
}

// sigState is the per-process signal bookkeeping (§4.5 "per-process
// kernel state": signals are among the state unikernels must grow for
// multiprocessing).
type sigState struct {
	handlers map[Signal]SigHandler
	pending  []pendingSig
}

// Sigaction registers (or, with a nil handler, resets) the disposition of
// sig for the calling process. SIGKILL cannot be caught.
func (k *Kernel) Sigaction(p *Proc, sig Signal, h SigHandler) error {
	k.enter(p, SysSigaction, 0)
	defer k.leave(p)
	if sig == SIGKILL {
		return fmt.Errorf("kernel: SIGKILL cannot be caught")
	}
	if p.sig.handlers == nil {
		p.sig.handlers = make(map[Signal]SigHandler)
	}
	if h == nil {
		delete(p.sig.handlers, sig)
		return nil
	}
	p.sig.handlers[sig] = h
	return nil
}

// SignalPID queues sig for the target process. Permission model as Kill:
// self or descendants.
func (k *Kernel) SignalPID(p *Proc, pid PID, sig Signal) error {
	k.enter(p, SysSignalPID, 0)
	defer k.leave(p)
	target, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoProc, pid)
	}
	if target != p && !descendantOf(target, p) {
		return fmt.Errorf("kernel: pid %d is not a descendant of %d", pid, p.PID)
	}
	if target.exited {
		return nil
	}
	// Posting into another μprocess's signal state is a cross-process
	// mutation: on split machines take the target's lock in canonical
	// ascending-PID pair order (no-op for self-signal, where enter already
	// holds p.lk).
	k.lockRemote(p, target)
	if sig == SIGKILL {
		target.killed = true
	} else {
		ps := pendingSig{sig: sig}
		if s := k.causalSpan(p); s != nil {
			ps.trace, ps.from = s.Trace(), int32(p.PID)
		}
		target.sig.pending = append(target.sig.pending, ps)
	}
	k.unlockRemote(p, target)
	return nil
}

// deliverSignals runs pending handlers (or default actions) for p. Called
// at kernel entry, after the kill check.
func (k *Kernel) deliverSignals(p *Proc) {
	for len(p.sig.pending) > 0 {
		ps := p.sig.pending[0]
		p.sig.pending = p.sig.pending[1:]
		sig := ps.sig
		if ps.trace != 0 {
			// The signal carried its sender's causal context: a target with
			// no op in flight joins the sender's trace (no-op otherwise).
			k.causalAdopt(p, causal.EdgeSignal, ps.trace, ps.from)
		}
		if h, ok := p.sig.handlers[sig]; ok {
			// Handler runs on the process's own task context.
			p.Task.Advance(k.Machine.CtxSwitch) // signal frame setup/teardown
			h(p, sig)
			continue
		}
		// Default actions.
		switch sig {
		case SIGTERM:
			panic(exitPanic{128 + int(SIGTERM)})
		case SIGCHLD, SIGUSR1:
			// SIGCHLD default-ignores; uncaught SIGUSR1 terminates in
			// POSIX, but the workloads treat it as a notification — we
			// follow POSIX:
			if sig == SIGUSR1 {
				panic(exitPanic{128 + int(SIGUSR1)})
			}
		}
	}
}

// notifyChild queues SIGCHLD for a parent whose child terminated. The
// exiting child's span is already closed by this point, so SIGCHLD
// carries no causal context — the parent reaping a traced fork is
// already the trace's origin.
func (k *Kernel) notifyChild(parent *Proc) {
	if parent.sig.handlers[SIGCHLD] != nil {
		parent.sig.pending = append(parent.sig.pending, pendingSig{sig: SIGCHLD})
	}
}
