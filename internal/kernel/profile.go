package kernel

import (
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
)

// This file is the profiler plane's only kernel coupling, mirroring
// causal.go: ArmProfile installs the engine charge hook, and profCharge
// assembles the synthetic sample stack — cpu / proc / syscall / phase —
// from attribution state the kernel already maintains (curPID, the
// in-flight syscall, fork-phase and fault-window markers). Nothing here
// advances a virtual clock, so arming the profiler cannot change the
// simulated timeline, and the disabled path stays one atomic load.

// ArmProfile attaches a profiler plane and installs the engine charge
// hook feeding it. Like ArmCausal — and unlike ArmMemmap — arming does
// not reset the plane: one plane may aggregate samples across several
// kernel boots, which is how sweep-wide profiles and cross-run diffs
// are built. Passing nil detaches the hook.
func (k *Kernel) ArmProfile(pl *profile.Plane) {
	k.Profile = pl
	if k.Eng == nil {
		return
	}
	if pl == nil {
		k.Eng.OnCharge = nil
		return
	}
	k.Eng.OnCharge = k.profCharge
}

// profSample is one charge buffered while a fault window is open: the
// copy mode — and with it the stack's phase frame — is only known after
// the handler runs.
type profSample struct {
	st   profile.Stack
	kind profile.Kind
	cpu  int
	d    sim.Time
}

// profProc resolves the charged task to its μprocess. Tasks that are
// not processes (or already left the table during teardown) resolve nil
// and are still sampled under the task's name, keeping the per-CPU
// accounting identity exact.
func (k *Kernel) profProc(t *sim.Task) *Proc {
	pid := PID(t.Tag)
	k.procMu.RLock()
	p := k.procs[pid]
	k.procMu.RUnlock()
	return p
}

// profCharge is the engine charge hook: every on-core compute slot and
// off-core latency charge of a core-occupying task arrives here when
// the plane is armed.
func (k *Kernel) profCharge(t *sim.Task, core int, kind sim.DelayKind, d sim.Time) {
	pl := k.Profile
	if !pl.On() || d == 0 {
		return
	}
	var pk profile.Kind
	switch kind {
	case sim.DelayRun:
		pk = profile.KindRun
	case sim.DelayLatency:
		pk = profile.KindLatency
	default:
		return
	}
	st := profile.Stack{CPU: int32(core), PID: t.Tag}
	p := k.profProc(t)
	if p == nil {
		st.Proc = t.Name
		pl.Add(st, pk, core, d)
		return
	}
	st.Proc = p.Spec.Name
	if p.inSys {
		st.Sys = p.sysNo.String()
	}
	st.Phase = p.profPhase
	if p.profDepth > 0 {
		// Inside a fault-service window: park the sample until the
		// handler resolves the copy mode that names its phase frame.
		p.profBuf = append(p.profBuf, profSample{st: st, kind: pk, cpu: core, d: d})
		return
	}
	pl.Add(st, pk, core, d)
}

// profLockWait charges w nanoseconds of lock-wait to the contended
// site's stack. Called by lockWait, which knows both the site name and
// the exact wait delta; lock-wait samples keep their lock:<site> phase
// even inside a fault window — nested hooks keep their own labels, the
// same rule the causal plane applies.
func (k *Kernel) profLockWait(p *Proc, l *sim.VLock, w sim.Time) {
	pl := k.Profile
	if !pl.On() || w == 0 {
		return
	}
	core := p.Task.LastCore()
	st := profile.Stack{
		CPU:   int32(core),
		PID:   int32(p.PID),
		Proc:  p.Spec.Name,
		Phase: "lock:" + causalLockSite(l),
	}
	if p.inSys {
		st.Sys = p.sysNo.String()
	}
	pl.Add(st, profile.KindLockWait, core, w)
}

// profFaultBegin opens a fault-service deferral window on p, returning
// the buffer mark profFaultEnd flushes from. Windows nest (a handler
// that faults again): each End flushes only its own window's samples.
// Returns -1 — and costs one pointer check — when no plane is armed.
func (k *Kernel) profFaultBegin(p *Proc) int {
	if k.Profile == nil {
		return -1
	}
	p.profDepth++
	return len(p.profBuf)
}

// profFaultEnd closes the window opened at mark, stamping every sample
// buffered since with the resolved phase label and flushing them to the
// plane in charge order.
func (k *Kernel) profFaultEnd(p *Proc, mark int, label string) {
	if mark < 0 {
		return
	}
	p.profDepth--
	for i := mark; i < len(p.profBuf); i++ {
		s := p.profBuf[i]
		s.st.Phase = label
		k.Profile.Add(s.st, s.kind, s.cpu, s.d)
	}
	p.profBuf = p.profBuf[:mark]
}

// forkPhase is one labeled slice of a fork's latency charge.
type forkPhase struct {
	label string
	d     sim.Time
}

// phasedAdvance charges total nanoseconds of off-core latency to p as a
// sequence of labeled per-phase Advances. Consecutive Advances are
// arithmetically identical to one combined Advance — no scheduling
// point sits between them — so splitting the charge cannot move the
// simulated timeline; it only lets the profiler attribute each phase.
// Phases are clamped to the remaining budget and any remainder is
// charged to the fallback label, so the total advanced always equals
// total even if an engine's phase breakdown disagrees with its latency.
func (k *Kernel) phasedAdvance(p *Proc, total sim.Time, phases []forkPhase, fallback string) {
	rem := total
	for _, ph := range phases {
		d := ph.d
		if d > rem {
			d = rem
		}
		if d == 0 {
			continue
		}
		p.profPhase = ph.label
		p.Task.Advance(d)
		rem -= d
	}
	if rem > 0 {
		p.profPhase = fallback
		p.Task.Advance(rem)
	}
	p.profPhase = ""
}

// forkMemAdvance charges the memory-side fork latency (everything but
// the kernel FD fixup) to the parent. With the profiler armed the
// charge is split per engine phase so samples land under
// phase:fork:<phase> stacks; unarmed it stays the historical single
// Advance — the total is identical either way.
func (k *Kernel) forkMemAdvance(p *Proc, stats ForkStats) {
	total := stats.Latency - stats.FixupTime
	if !k.Profile.On() {
		p.Task.Advance(total)
		return
	}
	k.phasedAdvance(p, total, []forkPhase{
		{"fork:reserve", stats.ReserveTime},
		{"fork:ptecopy", stats.PTECopyTime},
		{"fork:eagercopy", stats.EagerCopyTime},
		{"fork:scan", stats.ScanTime},
		{"fork:reg", stats.RegTime},
	}, "fork:other")
}

// forkFixupAdvance charges the kernel-side FD duplication + fixed fork
// cost, labeled fork:fixup when the profiler is armed.
func (k *Kernel) forkFixupAdvance(p *Proc, stats ForkStats) {
	if !k.Profile.On() {
		p.Task.Advance(stats.FixupTime)
		return
	}
	k.phasedAdvance(p, stats.FixupTime,
		[]forkPhase{{"fork:fixup", stats.FixupTime}}, "fork:fixup")
}
