package kernel_test

import (
	"testing"

	"ufork/internal/baseline/posix"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// TestRegionReuseBoundsVASpace covers the §6 fragmentation mitigation: a
// long-running fork+exit loop must not consume virtual address space
// proportionally to the number of forks — exited leaf children return
// their regions to the size-class free list.
func TestRegionReuseBoundsVASpace(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	var before, after uint64
	var reused uint64
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		before = k.Regions.VASpaceUsed()
		for i := 0; i < 200; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				if err := c.Store(c.HeapCap, 0, []byte("leaf")); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		after = k.Regions.VASpaceUsed()
		reused = k.Regions.Reused
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// 200 forks at 256 MiB alignment would burn 50 GiB of VA without
	// reuse; with reuse only the first child's region is ever minted.
	if after-before > 1<<29 {
		t.Fatalf("VA space grew by %d bytes over 200 forks; reuse broken", after-before)
	}
	if reused < 190 {
		t.Fatalf("only %d regions reused", reused)
	}
}

// TestRegionNotReusedWhileReferenced: a child that itself forked may have
// leaked capabilities to its own descendants, so its region must NOT be
// recycled.
func TestRegionNotReusedWhileReferenced(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		reusedBefore := k.Regions.Reused
		_, err := k.Fork(p, func(c *kernel.Proc) {
			// The child forks a grandchild that outlives it, still holding
			// pending pages whose capabilities reference the child region.
			tgt, err := c.HeapCap.SetAddr(c.HeapCap.Base() + 4096).SetBounds(32)
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.Store(tgt, 0, []byte("deep")); err != nil {
				t.Error(err)
				return
			}
			if err := c.StoreCap(c.HeapCap, 0, tgt); err != nil {
				t.Error(err)
				return
			}
			if _, err := k.Fork(c, func(g *kernel.Proc) {
				// Touch the pointer only after the parent (the middle
				// generation) has exited: relocation must still resolve
				// against the (unrecycled) middle region.
				ptr, err := g.LoadCap(g.HeapCap, 0)
				if err != nil {
					t.Errorf("grandchild cap load: %v", err)
					return
				}
				if !g.Region.Contains(ptr.Addr()) {
					t.Errorf("grandchild pointer outside own region: %v", ptr)
					return
				}
				buf := make([]byte, 4)
				if err := g.Load(ptr, 0, buf); err != nil {
					t.Errorf("grandchild deref: %v", err)
					return
				}
				if string(buf) != "deep" {
					t.Errorf("grandchild read %q", buf)
				}
			}); err != nil {
				t.Error(err)
			}
			// Exit WITHOUT waiting: the grandchild is re-parented logic-
			// free (still in our children list), and we exit first.
		})
		if err != nil {
			t.Fatal(err)
		}
		// Reap the middle child; the grandchild keeps running.
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		// The middle child forked, so its region must not have been
		// recycled (Forked > 0).
		if k.Regions.Reused != reusedBefore {
			t.Fatalf("a forking child's region was recycled")
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

// TestPosixRegionsNeverReleased: the multi-AS baseline reuses the same
// virtual range for every process; releasing it would corrupt siblings.
func TestPosixRegionsNeverReleased(t *testing.T) {
	k := kernel.New(kernel.Config{
		Machine:   model.Posix(2),
		Engine:    posix.New(),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 14,
	})
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
		if k.Regions.Reused != 0 {
			t.Fatalf("posix recycled %d regions", k.Regions.Reused)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}
