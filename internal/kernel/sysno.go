package kernel

// SysNo is a syscall number. The kernel historically dispatched on names;
// numbers exist so the flight recorder can log a syscall in one word and
// the per-μprocess accounting can index a fixed counter array without a
// map. String() returns the historical name, so metric keys
// ("syscall.<name>") and chaos-injection site names are unchanged.
type SysNo uint8

const (
	SysGetpid SysNo = iota
	SysYield
	SysExit
	SysFork
	SysWait
	SysOpen
	SysClose
	SysRead
	SysWrite
	SysFsync
	SysPipe
	SysListen
	SysAccept
	SysSbrk
	SysDup
	SysDup2
	SysLseek
	SysUnlink
	SysStat
	SysSigaction
	SysSignalPID
	SysKill
	SysPosixSpawn
	SysShmOpen
	SysShmMap
	SysShmUnlink
	SysProcstat
	SysSmaps
	SysDelaystat
	// NumSysNos sizes per-syscall counter arrays.
	NumSysNos
)

var sysNames = [NumSysNos]string{
	SysGetpid:     "getpid",
	SysYield:      "yield",
	SysExit:       "exit",
	SysFork:       "fork",
	SysWait:       "wait",
	SysOpen:       "open",
	SysClose:      "close",
	SysRead:       "read",
	SysWrite:      "write",
	SysFsync:      "fsync",
	SysPipe:       "pipe",
	SysListen:     "listen",
	SysAccept:     "accept",
	SysSbrk:       "sbrk",
	SysDup:        "dup",
	SysDup2:       "dup2",
	SysLseek:      "lseek",
	SysUnlink:     "unlink",
	SysStat:       "stat",
	SysSigaction:  "sigaction",
	SysSignalPID:  "signal-p-i-d",
	SysKill:       "kill",
	SysPosixSpawn: "posix-spawn",
	SysShmOpen:    "shm-open",
	SysShmMap:     "shm-map",
	SysShmUnlink:  "shm-unlink",
	SysProcstat:   "procstat",
	SysSmaps:      "smaps",
	SysDelaystat:  "delaystat",
}

func (n SysNo) String() string {
	if n < NumSysNos {
		return sysNames[n]
	}
	return "sys-unknown"
}
