package kernel_test

import (
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
)

// profStorm boots a kernel on machine m with the profiler (and
// scheduler stats) armed and runs a fork-storm workload that exercises
// every sample source: syscall compute, fork-phase latency, CoW/CoPA
// fault service, and — on multicore machines — lock waits. Returns the
// plane and the kernel after Run.
func profStorm(t *testing.T, m *model.Machine, pl *profile.Plane) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   m,
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFault,
		Frames:    1 << 16,
	})
	k.Eng.ArmSched(sim.NewSchedStats(k.Eng.Cores()))
	k.ArmProfile(pl)
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				for j := 0; j < 40; j++ {
					k.Getpid(c)
					c.Compute(500)
					// Post-fork heap writes break sharing: CoW/CoPA
					// fault service lands in fault:<mode> stacks.
					if err := c.StoreU64(c.HeapCap, uint64(64+8*j), uint64(j)); err != nil {
						t.Errorf("store: %v", err)
						return
					}
				}
			}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 3; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return k
}

// TestProfileExactSumVsSched is the acceptance exactness proof: the
// profiler's charged run time per CPU must equal the scheduler's
// independently accumulated core-busy time to the nanosecond — two
// separate accumulators fed the same values — and the sampled time must
// match the charged time within one quantum (CheckExact's residual
// bound). Both lock regimes are covered.
func TestProfileExactSumVsSched(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *model.Machine
	}{
		{"bkl-4core", model.UFork(4)},
		{"smp-4core", model.UForkSMP(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl := profile.New(0)
			pl.Enable()
			k := profStorm(t, tc.m, pl)
			if err := pl.CheckExact(); err != nil {
				t.Fatal(err)
			}
			if pl.Samples() == 0 {
				t.Fatal("fork storm produced no samples")
			}
			snap := k.Eng.Sched().Snapshot()
			for core, pc := range snap.PerCore {
				charged := pl.ChargedNS(core, profile.KindRun)
				if charged != pc.BusyNS {
					t.Errorf("core %d: profiler charged %d ns run, scheduler busy %d ns",
						core, charged, pc.BusyNS)
				}
				if sampled := pl.SampledNS(core, profile.KindRun); charged-sampled >= uint64(pl.Quantum()) {
					t.Errorf("core %d: sampled %d ns off charged %d ns by ≥ one quantum",
						core, sampled, charged)
				}
			}
		})
	}
}

// TestProfileStacks checks the synthetic stacks carry the attribution
// frames the walkthroughs and the profile-smoke CI job grep for:
// fork-phase latency, syscall compute, fault-service copy modes, and
// (under the contended BKL) lock-wait sites.
func TestProfileStacks(t *testing.T) {
	pl := profile.New(100) // fine quantum so every source ticks
	pl.Enable()
	profStorm(t, model.UFork(4), pl)
	folded := pl.Folded()
	for _, frag := range []string{
		"phase:fork:",    // fork-phase latency split
		"syscall:fork",   // charged inside the fork syscall
		"syscall:getpid", // plain syscall compute
		"phase:fault:",   // deferred fault-window samples
		"phase:lock:bkl", // contended BKL waits
		"proc:hello[",    // proc frame carries name and pid
	} {
		if !strings.Contains(folded, frag) {
			t.Errorf("folded profile missing %q:\n%s", frag, folded)
		}
	}
	// Deferral must not leak: a sample emitted outside any window keeps
	// an empty phase, rendered without a phase frame.
	if !strings.Contains(folded, "proc:hello[1]\u0020") && !strings.Contains(folded, "proc:hello[1];syscall") {
		t.Errorf("no phase-less root stacks in:\n%s", folded)
	}
}

// TestProfileArmedTimelineInvariance: arming the profiler must not move
// the virtual timeline — the same workload finishes at the identical
// virtual time with and without the plane.
func TestProfileArmedTimelineInvariance(t *testing.T) {
	run := func(pl *profile.Plane) (end sim.Time, forks uint64) {
		k := kernel.New(kernel.Config{
			Machine:   model.UForkSMP(2),
			Engine:    core.New(core.CopyOnPointerAccess),
			Isolation: kernel.IsolationFault,
			Frames:    1 << 16,
		})
		if pl != nil {
			k.ArmProfile(pl)
		}
		if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
			for i := 0; i < 2; i++ {
				if _, err := k.Fork(p, func(c *kernel.Proc) {
					for j := 0; j < 25; j++ {
						k.Getpid(c)
						if err := c.StoreU64(c.HeapCap, uint64(64+8*j), 1); err != nil {
							t.Errorf("store: %v", err)
							return
						}
					}
				}); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < 2; i++ {
				if _, _, err := k.Wait(p); err != nil {
					t.Error(err)
					return
				}
			}
			end = p.Task.Now()
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return end, k.Stats.Forks.Value()
	}
	pl := profile.New(0)
	pl.Enable()
	bareEnd, bareForks := run(nil)
	armedEnd, armedForks := run(pl)
	if bareEnd != armedEnd || bareForks != armedForks {
		t.Fatalf("armed run diverged: end %v vs %v, forks %d vs %d",
			bareEnd, armedEnd, bareForks, armedForks)
	}
	if pl.Samples() == 0 {
		t.Fatal("armed run produced no samples")
	}
}
