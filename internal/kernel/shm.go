package kernel

import (
	"fmt"
	"sort"

	"ufork/internal/obs/memmap"
	"ufork/internal/vm"
)

// ShmObject is a named shared-memory object. Per §3.7, shm_open returns a
// descriptor representing an area of shared memory, and mapping it installs
// the same physical pages into the virtual address region of each
// participating μprocess.
type ShmObject struct {
	Name  string
	pages []*vm.Page
}

// shmRegistry lives on the kernel.
type shmRegistry struct {
	objects map[string]*ShmObject
}

// ShmOpen creates or opens a named shared-memory object of the given size
// (rounded up to whole pages on creation).
func (k *Kernel) ShmOpen(p *Proc, name string, pages int) (*ShmObject, error) {
	k.enter(p, SysShmOpen, len(name))
	defer k.leave(p)
	if k.shm.objects == nil {
		k.shm.objects = make(map[string]*ShmObject)
	}
	if obj, ok := k.shm.objects[name]; ok {
		return obj, nil
	}
	obj := &ShmObject{Name: name}
	phase0 := k.memPhase
	k.memPhase = memmap.OriginShm
	for i := 0; i < pages; i++ {
		pfn, err := k.Mem.AllocFrame()
		if err != nil {
			k.memPhase = phase0
			return nil, err
		}
		obj.pages = append(obj.pages, &vm.Page{PFN: pfn})
	}
	k.memPhase = phase0
	k.shm.objects[name] = obj
	return obj, nil
}

// ShmMap maps the object's pages read-write at byte offset off within the
// caller's heap segment, returning a capability over the mapping. The same
// physical frames become visible to every mapper — shared memory across
// μprocesses inside the single address space.
func (k *Kernel) ShmMap(p *Proc, obj *ShmObject, off uint64) (mapped uint64, err error) {
	k.enter(p, SysShmMap, 0)
	defer k.leave(p)
	base := p.Layout.SegBase(p.Region.Base, SegHeap) + off
	if base%PageSize != 0 {
		return 0, fmt.Errorf("kernel: shm map offset %#x not page aligned", off)
	}
	for i, page := range obj.pages {
		va := base + uint64(i)*PageSize
		vpn := vm.VPNOf(va)
		// Replace the heap page with the shared frame.
		if p.AS.Lookup(vpn) != nil {
			if err := p.AS.Unmap(vpn); err != nil {
				return 0, err
			}
		}
		if err := p.AS.Map(vpn, page, vm.ProtRW); err != nil {
			return 0, err
		}
		// Shared mappings are exempt from copy-on-fork bookkeeping.
		p.Pending.Remove(vpn)
	}
	return base, nil
}

// Pages returns the object's backing page descriptors (invariant checking:
// unmapped shm pages hold allocated frames with zero references, and the
// checker must treat the registry as their owner rather than report leaks).
func (o *ShmObject) Pages() []*vm.Page { return o.pages }

// ShmObjects returns the live named shared-memory objects in name order.
func (k *Kernel) ShmObjects() []*ShmObject {
	names := make([]string, 0, len(k.shm.objects))
	for name := range k.shm.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*ShmObject, len(names))
	for i, name := range names {
		out[i] = k.shm.objects[name]
	}
	return out
}

// ShmUnlink removes the name; frames die with the last mapping.
func (k *Kernel) ShmUnlink(p *Proc, name string) error {
	k.enter(p, SysShmUnlink, len(name))
	defer k.leave(p)
	if _, ok := k.shm.objects[name]; !ok {
		return fmt.Errorf("%w: shm %s", ErrNoEnt, name)
	}
	delete(k.shm.objects, name)
	return nil
}
