package kernel

import "fmt"

// Whence values for Lseek.
const (
	// SeekSet positions relative to the file start.
	SeekSet = 0
	// SeekCur positions relative to the current offset.
	SeekCur = 1
	// SeekEnd positions relative to the file end.
	SeekEnd = 2
)

// Dup duplicates a descriptor onto the lowest free slot, sharing the open
// file description (offset included).
func (k *Kernel) Dup(p *Proc, fd int) (int, error) {
	k.enter(p, SysDup, 0)
	defer k.leave(p)
	of, err := p.FDs.Get(fd)
	if err != nil {
		return -1, err
	}
	return p.FDs.Install(of), nil
}

// Dup2 duplicates oldfd onto newfd, closing whatever newfd held. Used by
// daemonizing servers to re-point stdio (§2.1 pattern U6).
func (k *Kernel) Dup2(p *Proc, oldfd, newfd int) (int, error) {
	k.enter(p, SysDup2, 0)
	defer k.leave(p)
	of, err := p.FDs.Get(oldfd)
	if err != nil {
		return -1, err
	}
	if oldfd == newfd {
		return newfd, nil
	}
	if newfd < 0 {
		return -1, fmt.Errorf("%w: %d", ErrBadFD, newfd)
	}
	// Close the target slot if occupied, then install at exactly newfd.
	if existing, err := p.FDs.Get(newfd); err == nil && existing != nil {
		if err := p.FDs.Close(k, p, newfd); err != nil {
			return -1, err
		}
	}
	p.FDs.installAt(of, newfd)
	return newfd, nil
}

// installAt places of at exactly the given slot, growing the table as
// needed. The slot must be free.
func (t *FDTable) installAt(of *OpenFile, fd int) {
	for len(t.slots) <= fd {
		t.slots = append(t.slots, nil)
	}
	of.refs++
	t.slots[fd] = of
}

// Lseek repositions a regular file's offset.
func (k *Kernel) Lseek(p *Proc, fd int, offset int64, whence int) (uint64, error) {
	k.enter(p, SysLseek, 0)
	defer k.leave(p)
	of, err := p.FDs.Get(fd)
	if err != nil {
		return 0, err
	}
	rf, ok := of.File.(*regularFile)
	if !ok {
		return 0, fmt.Errorf("%w: lseek on non-seekable fd %d", ErrBadFD, fd)
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(of.Offset)
	case SeekEnd:
		base = int64(len(rf.ino.Data))
	default:
		return 0, fmt.Errorf("kernel: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("kernel: seek before start")
	}
	of.Offset = uint64(pos)
	return of.Offset, nil
}

// Unlink removes a file from the ram disk. Open descriptions keep their
// inode alive (POSIX unlink semantics) since they hold it directly.
func (k *Kernel) Unlink(p *Proc, name string) error {
	k.enter(p, SysUnlink, len(name))
	defer k.leave(p)
	return k.vfs.Remove(name)
}

// Stat reports a file's size.
func (k *Kernel) Stat(p *Proc, name string) (size uint64, err error) {
	k.enter(p, SysStat, len(name))
	defer k.leave(p)
	ino, ok := k.vfs.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoEnt, name)
	}
	return uint64(len(ino.Data)), nil
}
