package kernel_test

import (
	"errors"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// TestProcstatSyscall drives the accounting plane end to end from inside
// a μprocess: fork a child that touches CoPA-deferred memory, then read
// both processes' stats through SYS_PROCSTAT and check the counters that
// the fork and fault paths must have charged.
func TestProcstatSyscall(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	var self, child kernel.ProcStat
	var childPID kernel.PID
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// Plant a capability on the heap page so the child's load is a
		// capability load — the access CoPA defers to fault time.
		if err := p.StoreCap(p.HeapCap, 0, p.HeapCap); err != nil {
			t.Errorf("store cap: %v", err)
		}
		pid, err := k.Fork(p, func(c *kernel.Proc) {
			// Capability load through the heap: under CoPA this is the
			// deferred copy+relocate fault.
			if _, err := c.LoadCap(c.HeapCap, 0); err != nil {
				t.Errorf("child loadcap: %v", err)
			}
			st, err := k.Procstat(c, 0)
			if err != nil {
				t.Errorf("child procstat: %v", err)
			}
			child = st
			k.Exit(c, 0)
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		childPID = pid
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		st, err := k.Procstat(p, 0)
		if err != nil {
			t.Errorf("self procstat: %v", err)
		}
		self = st
		if _, err := k.Procstat(p, kernel.PID(9999)); !errors.Is(err, kernel.ErrNoProc) {
			t.Errorf("procstat of missing pid: got %v, want ErrNoProc", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	if self.Forks != 1 {
		t.Errorf("parent forks = %d, want 1", self.Forks)
	}
	if self.Syscalls["fork"] != 1 || self.Syscalls["wait"] != 1 || self.Syscalls["procstat"] != 1 {
		t.Errorf("parent syscall mix wrong: %v", self.Syscalls)
	}
	if self.SyscallsTotal < 3 {
		t.Errorf("parent syscalls_total = %d, want >= 3", self.SyscallsTotal)
	}
	if self.FramesOwned <= 0 || self.FramesPeak < self.FramesOwned {
		t.Errorf("parent frames owned/peak = %d/%d", self.FramesOwned, self.FramesPeak)
	}
	if child.PID != int(childPID) || child.PPID != self.PID {
		t.Errorf("child pid/ppid = %d/%d, want %d/%d", child.PID, child.PPID, childPID, self.PID)
	}
	if child.FaultCoPA == 0 {
		t.Errorf("child CoPA faults = 0, want >0 (heap load under CoPA must fault)")
	}
	if child.FaultCapsRelocated == 0 {
		t.Errorf("child relocated no capabilities on its CoPA fault")
	}
	if child.FramesOwned == 0 {
		t.Errorf("child owns no frames after its copy fault")
	}
	if child.Exited {
		t.Errorf("self-reported stat marked exited")
	}
}

// TestProcStatsRetainsReaped: after the whole tree exits, ProcStats must
// still report every process — final snapshots, exited, frames released.
func TestProcStatsRetainsReaped(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) })
			if err != nil {
				t.Errorf("fork %d: %v", i, err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	stats := k.ProcStats()
	if len(stats) != 4 {
		t.Fatalf("ProcStats after exit has %d entries, want 4 (root + 3 children)", len(stats))
	}
	for i, st := range stats {
		if !st.Exited {
			t.Errorf("proc %d not marked exited: %+v", st.PID, st)
		}
		if st.FramesOwned != 0 {
			t.Errorf("exited proc %d still owns %d frames", st.PID, st.FramesOwned)
		}
		if i > 0 && stats[i-1].PID >= st.PID {
			t.Errorf("ProcStats not PID-sorted at %d", i)
		}
	}
	if stats[0].Forks != 3 {
		t.Errorf("root forks = %d, want 3", stats[0].Forks)
	}
}

// TestAccountingFullCopyCharges pins the eager path: under full-copy,
// fork itself moves the bytes, so the parent's fork_bytes_copied is
// non-zero and the child faults little.
func TestAccountingFullCopyCharges(t *testing.T) {
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(1),
		Engine:    core.New(core.CopyFull),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	var self kernel.ProcStat
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) })
		if err != nil {
			t.Errorf("fork: %v", err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		st, err := k.Procstat(p, 0)
		if err != nil {
			t.Errorf("procstat: %v", err)
		}
		self = st
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if self.ForkBytesCopied == 0 {
		t.Errorf("full-copy fork copied 0 bytes")
	}
	if self.ForkBytesCopied%kernel.PageSize != 0 {
		t.Errorf("fork_bytes_copied = %d, not page-aligned", self.ForkBytesCopied)
	}
}
