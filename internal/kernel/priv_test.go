package kernel_test

import (
	"errors"
	"testing"

	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// TestPrivilegedInstructionsGated covers §4.4 principle 2: μprocesses run
// at the kernel's exception level, but their PCC lacks the CHERI system
// permission, so system instructions are refused; kernel-minted
// capabilities with the permission pass.
func TestPrivilegedInstructionsGated(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := k.PrivilegedOp(p, "msr vbar_el1"); !errors.Is(err, kernel.ErrPrivileged) {
			t.Errorf("privileged op from user PCC: %v, want refusal", err)
		}
		// Even a forked child's relocated PCC must not gain the permission.
		_, err := k.Fork(p, func(c *kernel.Proc) {
			if err := k.PrivilegedOp(c, "mrs ttbr0_el1"); !errors.Is(err, kernel.ErrPrivileged) {
				t.Errorf("privileged op from child PCC: %v", err)
			}
			if c.PCC.HasPerm(cap.PermSystem) {
				t.Error("child PCC carries PermSystem")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestKillChild(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := k.Fork(p, func(c *kernel.Proc) {
			// Signal readiness, then loop making syscalls forever: the
			// kill lands at a kernel entry.
			if _, err := k.Write(c, wfd, []byte{1}); err != nil {
				return
			}
			for {
				k.Getpid(c)
				c.Compute(1000)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := k.Read(p, rfd, buf); err != nil {
			t.Fatal(err)
		}
		if err := k.Kill(p, pid); err != nil {
			t.Fatalf("kill: %v", err)
		}
		gotPID, status, err := k.Wait(p)
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		if gotPID != pid || status != 137 {
			t.Errorf("reaped pid=%d status=%d, want pid=%d status=137", gotPID, status, pid)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestKillRequiresDescendant(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := k.Kill(p, kernel.PID(9999)); !errors.Is(err, kernel.ErrNoProc) {
			t.Errorf("kill missing pid: %v", err)
		}
		// A child cannot kill its parent.
		_, err := k.Fork(p, func(c *kernel.Proc) {
			if err := k.Kill(c, p.PID); err == nil {
				t.Error("child killed its parent")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestPosixSpawn(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// Parent state that a *fork* child would inherit.
		if err := p.Store(p.HeapCap, 0, []byte("parent-data")); err != nil {
			t.Fatal(err)
		}
		fd, err := k.Open(p, "/spawn-shared", true)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := k.PosixSpawn(p, kernel.HelloWorldSpec(), func(c *kernel.Proc) {
			// A spawned image starts fresh: no copied parent memory.
			buf := make([]byte, 11)
			if err := c.Load(c.HeapCap, 0, buf); err != nil {
				t.Errorf("spawn child load: %v", err)
				return
			}
			if string(buf) == "parent-data" {
				t.Error("posix_spawn child inherited parent memory")
			}
			if c.Region.Base == p.Region.Base {
				t.Error("spawn child shares the parent's region")
			}
			// But it inherits descriptors.
			if _, err := k.Write(c, fd, []byte("from-spawned")); err != nil {
				t.Errorf("spawn child write: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		got, status, err := k.Wait(p)
		if err != nil || got != pid || status != 0 {
			t.Fatalf("wait: pid=%d status=%d err=%v", got, status, err)
		}
		ino, _ := k.VFS().Lookup("/spawn-shared")
		if string(ino.Data) != "from-spawned" {
			t.Errorf("file = %q", ino.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestFsyncCharges(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/f", true)
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		if err := k.Fsync(p, fd); err != nil {
			t.Fatal(err)
		}
		if p.Now()-t0 < k.Machine.FSSync {
			t.Errorf("fsync cost %v below FSSync %v", p.Now()-t0, k.Machine.FSSync)
		}
		if err := k.Fsync(p, 42); err == nil {
			t.Error("fsync of bad fd succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

// TestASLRRandomizesRegions covers the §3.7 extension: with ASLR enabled,
// region bases are displaced per kernel seed, and relocation still works.
func TestASLRRandomizesRegions(t *testing.T) {
	bases := func(seed int64) []uint64 {
		k := kernel.New(kernel.Config{
			Machine:   model.UFork(2),
			Engine:    core.New(core.CopyOnPointerAccess),
			Isolation: kernel.IsolationFull,
			Frames:    1 << 14,
			ASLRSeed:  seed,
		})
		var out []uint64
		if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
			out = append(out, p.Region.Base)
			if err := p.Store(p.HeapCap, 0, []byte("aslr")); err != nil {
				t.Error(err)
				return
			}
			_, err := k.Fork(p, func(c *kernel.Proc) {
				out = append(out, c.Region.Base)
				buf := make([]byte, 4)
				if err := c.Load(c.HeapCap, 0, buf); err != nil {
					t.Errorf("child load under ASLR: %v", err)
					return
				}
				if string(buf) != "aslr" {
					t.Errorf("child sees %q", buf)
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return out
	}
	a := bases(1)
	b := bases(2)
	c := bases(1)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("missing bases: %v %v", a, b)
	}
	if a[0] == b[0] && a[1] == b[1] {
		t.Error("different seeds produced identical layouts")
	}
	if a[0] != c[0] || a[1] != c[1] {
		t.Error("same seed not reproducible")
	}
	if a[0]%kernel.PageSize != 0 {
		t.Errorf("ASLR base %#x not page aligned", a[0])
	}
}
