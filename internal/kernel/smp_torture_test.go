package kernel_test

import (
	"fmt"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

// tortureRun boots the split-lock machine at 8 simulated cores and drives
// 8 concurrent μprocess workers through a mixed syscall storm: fork/wait
// trees, private and cross-process pipes, file I/O with fsync, heap
// grow/shrink, self-signals, and a SIGKILL. It returns the worker count
// and the global-lock contention, so callers can assert both that the
// storm ran and that the residual lock stayed narrow.
func tortureRun(t *testing.T) (forks uint64, residualContended uint64) {
	t.Helper()
	const workers = 8
	k := kernel.New(kernel.Config{
		Machine:   model.UForkSMP(8),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFault,
		Frames:    1 << 14,
	})
	locks := sim.NewLockTable()
	k.ArmLockstat(locks)

	worker := func(w *kernel.Proc, shared [2]int, writer bool) {
		const msgs, msgSize = 8, 64
		buf := make([]byte, msgSize)
		for round := 0; round < 4; round++ {
			k.Getpid(w)
			k.Yield(w)
			if err := k.Sbrk(w, 2); err != nil {
				t.Errorf("pid %d: sbrk grow: %v", w.PID, err)
			}
			if err := k.Sbrk(w, -2); err != nil {
				t.Errorf("pid %d: sbrk shrink: %v", w.PID, err)
			}

			// Private pipe round-trip.
			rfd, wfd, err := k.Pipe(w)
			if err != nil {
				t.Errorf("pid %d: pipe: %v", w.PID, err)
				return
			}
			if _, err := k.Write(w, wfd, buf); err != nil {
				t.Errorf("pid %d: pipe write: %v", w.PID, err)
			}
			if _, err := k.Read(w, rfd, buf); err != nil {
				t.Errorf("pid %d: pipe read: %v", w.PID, err)
			}
			k.Close(w, rfd)
			k.Close(w, wfd)

			// File I/O through the per-process FD table lock.
			fd, err := k.Open(w, fmt.Sprintf("t%d-%d", w.PID, round), true)
			if err != nil {
				t.Errorf("pid %d: open: %v", w.PID, err)
				return
			}
			if _, err := k.Write(w, fd, buf); err != nil {
				t.Errorf("pid %d: file write: %v", w.PID, err)
			}
			if err := k.Fsync(w, fd); err != nil {
				t.Errorf("pid %d: fsync: %v", w.PID, err)
			}
			k.Close(w, fd)

			// A grandchild per round: fork/exit churn across the proc-table
			// shards and the tmem allocator from every core.
			if _, err := k.Fork(w, func(c *kernel.Proc) {
				for i := 0; i < 25; i++ {
					k.Getpid(c)
				}
				k.Sbrk(c, 1)
			}); err != nil {
				t.Errorf("pid %d: fork: %v", w.PID, err)
				return
			}
			if _, _, err := k.Wait(w); err != nil {
				t.Errorf("pid %d: wait: %v", w.PID, err)
			}

			// Catchable self-signal: delivery runs on our own syscall path.
			k.Sigaction(w, kernel.SIGUSR1, func(*kernel.Proc, kernel.Signal) {})
			k.SignalPID(w, w.PID, kernel.SIGUSR1)
		}

		// Cross-process traffic on the pipe inherited from the root: half
		// the fleet writes, half reads, with exactly matched byte totals so
		// every sleeper is woken by a peer on another core.
		if writer {
			for i := 0; i < msgs; i++ {
				if _, err := k.Write(w, shared[1], buf); err != nil {
					t.Errorf("pid %d: shared write: %v", w.PID, err)
					return
				}
			}
		} else {
			want := msgs * msgSize
			for got := 0; got < want; {
				max := want - got
				if max > msgSize {
					max = msgSize
				}
				n, err := k.Read(w, shared[0], buf[:max])
				if err != nil {
					t.Errorf("pid %d: shared read: %v", w.PID, err)
					return
				}
				got += n
			}
		}
	}

	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Errorf("root pipe: %v", err)
			return
		}
		shared := [2]int{rfd, wfd}
		for i := 0; i < workers; i++ {
			writer := i%2 == 0
			if _, err := k.Fork(p, func(w *kernel.Proc) {
				worker(w, shared, writer)
			}); err != nil {
				t.Errorf("fork worker %d: %v", i, err)
				return
			}
		}
		// A victim for the kill path: a sibling the root SIGKILLs mid-loop.
		victim, err := k.Fork(p, func(v *kernel.Proc) {
			for i := 0; i < 5000; i++ {
				k.Getpid(v)
			}
		})
		if err != nil {
			t.Errorf("fork victim: %v", err)
			return
		}
		k.Kill(p, victim) // outcome depends on timing; Wait reaps either way
		for i := 0; i < workers+1; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}
		k.Close(p, rfd)
		k.Close(p, wfd)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()

	snap := locks.Snapshot()
	byName := map[string]sim.LockStat{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	for _, name := range []string{"residual", "proctable", "tmem", "uproc", "fdtable"} {
		if byName[name].Acquisitions == 0 {
			t.Errorf("lock class %q saw no acquisitions during the torture run", name)
		}
	}
	return k.Stats.Forks.Value(), k.BKLContended()
}

// TestSMPTortureMixedSyscalls is the -race torture test for the split-lock
// kernel: 8 μprocess workers on 8 simulated cores hammer every lock class
// at once. The race detector checks the host-side invariants; the
// assertions below check the virtual ones — every lock class exercised,
// all children reaped, and a replay produces identical totals
// (fine-grained locking must not cost determinism).
func TestSMPTortureMixedSyscalls(t *testing.T) {
	forks1, res1 := tortureRun(t)
	if forks1 < 40 {
		t.Errorf("torture run forked only %d times; the storm did not run", forks1)
	}
	forks2, res2 := tortureRun(t)
	if forks1 != forks2 || res1 != res2 {
		t.Errorf("torture run does not replay: forks %d/%d, residual contention %d/%d",
			forks1, forks2, res1, res2)
	}
}
