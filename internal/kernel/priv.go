package kernel

import (
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/sim"
)

// ErrPrivileged is returned when user code attempts a privileged operation
// without the CHERI system permission.
var ErrPrivileged = fmt.Errorf("kernel: privileged instruction from unprivileged capability")

// PrivilegedOp models executing a system instruction (MSR/MRS on Morello).
// The SASOS runs μprocesses and the kernel at the same exception level, so
// the only thing standing between user code and, say, rewriting the
// exception vector is the CHERI system-permission bit on the executing
// PCC: μprocess capabilities never carry it (§4.4, principle 2).
func (k *Kernel) PrivilegedOp(p *Proc, op string) error {
	if !p.PCC.HasPerm(cap.PermSystem) {
		return fmt.Errorf("%w: %s", ErrPrivileged, op)
	}
	return nil
}

// Kill terminates the process with the given PID (a minimal SIGKILL).
// POSIX permission checks reduce to: a μprocess may kill itself or its
// descendants.
func (k *Kernel) Kill(p *Proc, pid PID) error {
	k.enter(p, SysKill, 0)
	defer k.leave(p)
	target, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoProc, pid)
	}
	if target == p {
		k.leave(p)
		panic(exitPanic{137})
	}
	if !descendantOf(target, p) {
		return fmt.Errorf("kernel: pid %d is not a descendant of %d", pid, p.PID)
	}
	if target.exited {
		return nil
	}
	// Terminate the victim: mark it and let its next kernel entry unwind.
	// The simulation cannot interrupt a task asynchronously, so the kill
	// lands at the victim's next syscall — the same visibility a signal
	// has on a kernel that only delivers at the user/kernel boundary. On
	// split machines the mark is a cross-μprocess poke, taken under the
	// victim's lock in canonical pair order.
	k.lockRemote(p, target)
	target.killed = true
	k.unlockRemote(p, target)
	return nil
}

// descendantOf reports whether c is a (transitive) child of p.
func descendantOf(c, p *Proc) bool {
	for cur := c.Parent; cur != nil; cur = cur.Parent {
		if cur == p {
			return true
		}
	}
	return false
}

// checkKilled unwinds the calling process if a kill is pending; invoked on
// every kernel entry.
func (k *Kernel) checkKilled(p *Proc) {
	if p.killed {
		p.killed = false
		panic(exitPanic{137})
	}
}

// PosixSpawn implements the fork+exec pattern (U1) the way modern SASOSes
// do (§2.3): the new program image is loaded at a fresh location of the
// address space — no state duplication, no relocation. The child inherits
// the parent's descriptor table (as posix_spawn file actions default to).
func (k *Kernel) PosixSpawn(p *Proc, spec ProgramSpec, entry func(*Proc)) (PID, error) {
	k.enter(p, SysPosixSpawn, 0)
	defer k.leave(p)
	// Image load allocates a PID, reserves a region and inserts into the
	// process table — global work, bracketed by the residual lock on split
	// machines (load itself stays lock-free for the boot path, which has no
	// running task to park).
	if k.Machine.FineGrainedLocks {
		k.lockWait(p, &k.locks.global)
	}
	child, err := k.load(spec)
	if k.Machine.FineGrainedLocks {
		k.locks.global.Unlock(p.Task)
	}
	if err != nil {
		return 0, err
	}
	// Re-parent under the spawner and inherit descriptors.
	child.Parent = p
	p.children = append(p.children, child)
	child.FDs.CloseAll(k, child)
	child.FDs = p.FDs.Dup()
	// Spawn cost: image mapping dominates; no page copies, no relocation.
	latency := k.Machine.ForkFixed +
		sim.Time(child.Layout.Total)*k.Machine.PTECopy +
		sim.Time(child.FDs.Len())*k.Machine.FDDup
	p.Task.Advance(latency)
	k.startProc(child, p.Task.Now(), entry)
	return child.PID, nil
}
