package kernel_test

import (
	"errors"
	"testing"

	"ufork/internal/kernel"
)

// TestDelayTaxonomySums is the differential test for the per-μprocess
// delay accounting: a pipe ping-pong pair alternates running and blocking,
// and for every process — live parent and reaped child alike — the five
// engine buckets must sum exactly to the virtual lifetime, with the
// pipe-block refinement accounted inside the blocked bucket.
func TestDelayTaxonomySums(t *testing.T) {
	k := newKernel(2, kernel.IsolationFault)
	const rounds = 50
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		downR, downW, err := k.Pipe(p)
		if err != nil {
			t.Error(err)
			return
		}
		upR, upW, err := k.Pipe(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := k.Fork(p, func(c *kernel.Proc) {
			buf := make([]byte, 1)
			for i := 0; i < rounds; i++ {
				if _, err := k.Read(c, downR, buf); err != nil {
					k.Exit(c, 1)
					return
				}
				if _, err := k.Write(c, upW, buf); err != nil {
					k.Exit(c, 1)
					return
				}
			}
			k.Exit(c, 0)
		}); err != nil {
			t.Error(err)
			return
		}
		buf := []byte{7}
		for i := 0; i < rounds; i++ {
			if _, err := k.Write(p, downW, buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := k.Read(p, upR, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if _, status, err := k.Wait(p); err != nil || status != 0 {
			t.Errorf("wait: status %d, err %v", status, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	stats := k.ProcStats()
	if len(stats) != 2 {
		t.Fatalf("procs = %d, want parent + reaped child", len(stats))
	}
	var sawExited bool
	for _, st := range stats {
		sum := st.RunNS + st.RunnableWaitNS + st.BlockedNS + st.LatencyNS + st.LockWaitNS
		if sum != st.LifetimeNS {
			t.Errorf("pid %d: buckets sum %d != lifetime %d (%+v)", st.PID, sum, st.LifetimeNS, st)
		}
		if st.LifetimeNS == 0 || st.RunNS == 0 {
			t.Errorf("pid %d: empty accounting (lifetime %d, run %d)", st.PID, st.LifetimeNS, st.RunNS)
		}
		// Each side of the ping-pong spent part of its life parked on the
		// pipe, and that refinement can never exceed its parent bucket.
		if st.BlockPipeNS == 0 {
			t.Errorf("pid %d: no pipe-block time in a pipe ping-pong", st.PID)
		}
		if st.BlockPipeNS+st.BlockChildNS > st.BlockedNS {
			t.Errorf("pid %d: block causes %d+%d exceed blocked bucket %d",
				st.PID, st.BlockPipeNS, st.BlockChildNS, st.BlockedNS)
		}
		if st.BKLWaitNS > st.LockWaitNS {
			t.Errorf("pid %d: BKL wait %d exceeds lock-wait bucket %d", st.PID, st.BKLWaitNS, st.LockWaitNS)
		}
		sawExited = sawExited || st.Exited
	}
	if !sawExited {
		t.Error("no reaped-proc snapshot in ProcStats — delay fields not frozen at exit")
	}
}

// TestDelaystatSyscall exercises SYS_DELAYSTAT: self-query, cross-PID
// query, and the no-such-process error.
func TestDelaystatSyscall(t *testing.T) {
	k := newKernel(1, kernel.IsolationFault)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		cpid, err := k.Fork(p, func(c *kernel.Proc) {
			for i := 0; i < 10; i++ {
				k.Getpid(c)
			}
			st, err := k.Delaystat(c, 0)
			if err != nil {
				t.Errorf("child delaystat: %v", err)
			}
			if st.PID != int(c.PID) || st.LifetimeNS == 0 {
				t.Errorf("child delaystat = %+v", st)
			}
			k.Exit(c, 0)
		})
		if err != nil {
			t.Error(err)
			return
		}
		st, err := k.Delaystat(p, cpid)
		if err != nil {
			t.Errorf("cross-pid delaystat: %v", err)
		} else {
			if st.PID != int(cpid) {
				t.Errorf("cross-pid delaystat pid = %d, want %d", st.PID, cpid)
			}
			if sum := st.RunNS + st.RunnableWaitNS + st.BlockedNS + st.LatencyNS + st.LockWaitNS; sum != st.LifetimeNS {
				t.Errorf("delaystat buckets sum %d != lifetime %d", sum, st.LifetimeNS)
			}
		}
		if _, err := k.Delaystat(p, kernel.PID(9999)); !errors.Is(err, kernel.ErrNoProc) {
			t.Errorf("bogus pid: err = %v, want ErrNoProc", err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Error(err)
		}
		// The syscall shows up in its own accounting.
		self, err := k.Delaystat(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if self.PID != int(p.PID) || self.LifetimeNS == 0 {
			t.Errorf("self delaystat = %+v", self)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

// TestBKLContendedConcurrentRead is the data-race regression test for the
// VLock counters at the kernel surface: the telemetry goroutine reads
// BKLContended while the simulation hammers the lock. Run under -race
// this fails if the counters regress to plain ints. Full ProcStats of the
// finished tree is read only after Run returns — live snapshots are a
// quiesced-engine interface, not a mid-run one.
func TestBKLContendedConcurrentRead(t *testing.T) {
	k := newKernel(4, kernel.IsolationFault)
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				for j := 0; j < 300; j++ {
					k.Getpid(c)
				}
			}); err != nil {
				t.Error(err)
				return
			}
		}
		for i := 0; i < 3; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Error(err)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	finished := make(chan uint64, 1)
	go func() {
		var sink uint64
		for {
			select {
			case <-done:
				finished <- sink
				return
			default:
			}
			sink += k.BKLContended()
		}
	}()
	k.Run()
	close(done)
	<-finished
	if k.BKLContended() == 0 {
		t.Error("multicore syscall storm did not contend on the BKL")
	}
	var lockWait uint64
	for _, st := range k.ProcStats() {
		lockWait += st.BKLWaitNS + st.LockWaitNS
	}
	if lockWait == 0 {
		t.Error("contended storm recorded no per-proc lock-wait time")
	}
}
