package kernel_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
)

// TestSmapsSyscall drives SYS_SMAPS across a live fork pair under CoPA:
// the parent and child share almost the whole image, so RSS diverges from
// PSS and USS, the shared split lands clean for text and dirty for heap,
// and ΣPSS across the pair equals exactly the frames they occupy.
func TestSmapsSyscall(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	var parent, child kernel.SmapsReport
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			st, err := k.Smaps(c, 0)
			if err != nil {
				t.Errorf("child smaps: %v", err)
			}
			child = st
			pst, err := k.Smaps(c, p.PID)
			if err != nil {
				t.Errorf("child smaps of parent: %v", err)
			}
			parent = pst
			k.Exit(c, 0)
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		if _, err := k.Smaps(p, kernel.PID(9999)); !errors.Is(err, kernel.ErrNoProc) {
			t.Errorf("smaps of missing pid: got %v, want ErrNoProc", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	if child.Gen != 1 || parent.Gen != 0 {
		t.Errorf("generations = parent %d / child %d, want 0 / 1", parent.Gen, child.Gen)
	}
	for _, r := range []kernel.SmapsReport{parent, child} {
		tot := r.Total
		if tot.MappedPages == 0 || tot.RSSBytes != uint64(tot.MappedPages)*kernel.PageSize {
			t.Errorf("%s[%d]: mapped=%d rss=%d", r.Name, r.PID, tot.MappedPages, tot.RSSBytes)
		}
		if tot.SharedPages == 0 {
			t.Errorf("%s[%d]: no shared pages right after fork", r.Name, r.PID)
		}
		if tot.PSSBytes >= tot.RSSBytes || tot.PSSBytes < tot.USSBytes {
			t.Errorf("%s[%d]: PSS %d outside (USS %d, RSS %d)", r.Name, r.PID,
				tot.PSSBytes, tot.USSBytes, tot.RSSBytes)
		}
		if tot.SharedCleanBytes == 0 || tot.SharedDirtyBytes == 0 {
			t.Errorf("%s[%d]: shared clean/dirty = %d/%d, want both nonzero",
				r.Name, r.PID, tot.SharedCleanBytes, tot.SharedDirtyBytes)
		}
	}
	// Per-segment semantics: text can only share clean, heap only dirty.
	segs := make(map[string]kernel.SmapsRow)
	for _, row := range child.Rows {
		segs[row.Segment] = row
	}
	if text := segs["text"]; text.SharedDirtyBytes != 0 || text.SharedCleanBytes == 0 {
		t.Errorf("text row clean/dirty = %d/%d", text.SharedCleanBytes, text.SharedDirtyBytes)
	}
	if heap := segs["heap"]; heap.SharedCleanBytes != 0 || heap.SharedDirtyBytes == 0 {
		t.Errorf("heap row clean/dirty = %d/%d", heap.SharedCleanBytes, heap.SharedDirtyBytes)
	}
	// ΣPSS == live frames: both snapshots were taken at the same instant
	// (inside the child, before any further fault), every reference count
	// is 1 or 2, so the fixed-point division is exact.
	sum := parent.Total.PSSBytes + child.Total.PSSBytes
	want := uint64(parent.Total.MappedPages+child.Total.MappedPages-
		parent.Total.SharedPages) * kernel.PageSize
	if sum != want {
		t.Errorf("ΣPSS = %d bytes, want %d (distinct frames)", sum, want)
	}

	// The renderer mentions every populated segment and the totals line.
	text := kernel.RenderSmaps(child)
	for _, wantSub := range []string{"smaps for hello", "text", "heap", "total"} {
		if !strings.Contains(text, wantSub) {
			t.Errorf("RenderSmaps missing %q in:\n%s", wantSub, text)
		}
	}
}

// TestSmapsGaugesAndPlane arms the provenance plane on a kernel and checks
// the full pipeline: ProcStat carries the smaps gauges, exited snapshots
// freeze the final footprint, the plane's per-process aggregates agree
// with the page-table walk, and the sharing break emits FrameOwnerChange.
func TestSmapsGaugesAndPlane(t *testing.T) {
	fr := flight.New(2, 4096)
	fr.Enable()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(1),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
		Flight:    fr,
	})
	pl := memmap.New()
	pl.Enable()
	k.ArmMemmap(pl)

	var childStat kernel.ProcStat
	var planeMid memmap.Snapshot
	var midAllocated int
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			// Break sharing on one heap page, then snapshot everything
			// while both processes are alive.
			if err := c.Store(c.HeapCap, 0, []byte{1}); err != nil {
				t.Errorf("child store: %v", err)
			}
			if _, err := k.Smaps(c, 0); err != nil {
				t.Errorf("child smaps: %v", err)
			}
			st, err := k.Procstat(c, 0)
			if err != nil {
				t.Errorf("child procstat: %v", err)
			}
			childStat = st
			planeMid = pl.Snapshot(0)
			midAllocated = k.Mem.Allocated()
			k.Exit(c, 0)
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	if childStat.RSSBytes == 0 || childStat.PSSBytes == 0 || childStat.USSBytes == 0 {
		t.Fatalf("child stat gauges empty: %+v", childStat)
	}
	if childStat.PSSBytes >= childStat.RSSBytes {
		t.Errorf("child PSS %d >= RSS %d with live sharing", childStat.PSSBytes, childStat.RSSBytes)
	}

	// Plane vs walk, mid-run: the plane tracked every allocation and its
	// per-process nodes must agree with the syscall-walk gauges.
	if planeMid.LiveFrames != midAllocated {
		t.Errorf("plane tracked %d live frames, allocator had %d", planeMid.LiveFrames, midAllocated)
	}
	if planeMid.OwnerChanges == 0 {
		t.Errorf("plane saw no owner change after a CoW break")
	}
	if planeMid.LiveByOrigin["image"] == 0 {
		t.Errorf("plane origins missing image pages: %v", planeMid.LiveByOrigin)
	}
	var childNode *memmap.ProcNode
	for i := range planeMid.Procs {
		if planeMid.Procs[i].PID == int32(childStat.PID) {
			childNode = &planeMid.Procs[i]
		}
	}
	if childNode == nil {
		t.Fatalf("plane lost the child: %+v", planeMid.Procs)
	}
	if childNode.RSSBytes != uint64(childStat.RSSBytes) ||
		childNode.PSSBytes != uint64(childStat.PSSBytes) ||
		childNode.USSBytes != uint64(childStat.USSBytes) {
		t.Errorf("plane node %+v disagrees with walk gauges %+v", childNode, childStat)
	}
	if childNode.Gen != 1 {
		t.Errorf("plane child gen = %d, want 1", childNode.Gen)
	}

	// The reaped snapshot froze the pre-unmap footprint.
	final := k.ProcStats()
	for _, st := range final {
		if !st.Exited {
			t.Fatalf("proc %d not exited", st.PID)
		}
		if st.RSSBytes == 0 || st.USSBytes == 0 {
			t.Errorf("reaped proc %d lost its frozen footprint: %+v", st.PID, st)
		}
	}

	// The sharing break emitted a decodable FrameOwnerChange event.
	found := false
	for _, ev := range fr.Snapshot() {
		if ev.Kind == flight.KindFrameOwnerChange {
			found = true
			line := ev.Format()
			if !strings.Contains(line, "frame-owner") || !strings.Contains(line, "mode=") {
				t.Errorf("owner-change format: %q", line)
			}
		}
	}
	if !found {
		t.Errorf("no FrameOwnerChange event in the flight recorder")
	}
}

// TestProcStatRingEviction pins the reaped-snapshot ring: bounded at 128
// entries, evicting oldest-first.
func TestProcStatRingEviction(t *testing.T) {
	const children = 140 // deadStatsCap (128) + 12
	k := newKernel(1, kernel.IsolationFault)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < children; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) }); err != nil {
				t.Errorf("fork %d: %v", i, err)
				return
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	stats := k.ProcStats()
	dead, sawRoot := 0, false
	minPID, maxPID := int(1<<30), 0
	for _, st := range stats {
		if !st.Exited {
			t.Errorf("proc %d not exited after the run", st.PID)
		}
		dead++
		if st.PID == 1 {
			sawRoot = true
			continue
		}
		if st.PID < minPID {
			minPID = st.PID
		}
		if st.PID > maxPID {
			maxPID = st.PID
		}
	}
	if dead != 128 {
		t.Fatalf("dead ring holds %d snapshots, want exactly deadStatsCap (128)", dead)
	}
	// The root exits last, so its snapshot is the newest entry; the rest
	// are the newest 127 children. Eviction is oldest-first, so the
	// earliest children (lowest PIDs) are the ones that fell off.
	if !sawRoot {
		t.Errorf("root's own snapshot evicted, want it retained (reaped last)")
	}
	if wantMin := children + 1 - 127 + 1; minPID != wantMin {
		t.Errorf("oldest surviving child PID = %d, want %d (oldest evicted first)", minPID, wantMin)
	}
	if maxPID != children+1 {
		t.Errorf("newest surviving child PID = %d, want %d", maxPID, children+1)
	}
}

// TestProcStatRingImmutability: a reaped snapshot is final — later kernel
// activity, and mutation of a returned slice, must not alter it.
func TestProcStatRingImmutability(t *testing.T) {
	k := newKernel(1, kernel.IsolationFault)
	var afterFirst []kernel.ProcStat
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if _, err := k.Fork(p, func(c *kernel.Proc) {
			_, _ = k.Procstat(c, 0)
			k.Exit(c, 7)
		}); err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait: %v", err)
		}
		afterFirst = k.ProcStats()
		// Tamper with the returned copy; the ring must be unaffected.
		for i := range afterFirst {
			if afterFirst[i].Exited {
				afterFirst[i].Syscalls = map[string]uint64{"bogus": 99}
			}
		}
		afterFirst = k.ProcStats()
		// More activity after the reap: another child, more syscalls.
		if _, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) }); err != nil {
			t.Errorf("fork 2: %v", err)
			return
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Errorf("wait 2: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	var first, again *kernel.ProcStat
	for i := range afterFirst {
		if afterFirst[i].Exited {
			first = &afterFirst[i]
		}
	}
	for _, st := range k.ProcStats() {
		if st.Exited && st.PID == first.PID {
			cp := st
			again = &cp
		}
	}
	if first == nil || again == nil {
		t.Fatal("reaped snapshot missing")
	}
	if first.Syscalls["bogus"] != 0 {
		t.Errorf("tampering with a returned snapshot reached the ring")
	}
	if !reflect.DeepEqual(*first, *again) {
		t.Errorf("reaped snapshot changed after reap:\n first=%+v\n again=%+v", *first, *again)
	}
}
