package kernel

import (
	"fmt"
	"strings"

	"ufork/internal/sim"
	"ufork/internal/vm"
)

// SmapsRow aggregates the mapped pages of one segment (or the whole image,
// for the total row) the way Linux /proc/pid/smaps does:
//
//   - RSS counts every mapped page;
//   - PSS divides each shared page by its mapping count, so PSS summed
//     across live μprocesses equals the frames they collectively occupy;
//   - USS counts pages this process maps exclusively — the memory that
//     would be returned if the process exited right now;
//   - shared pages split clean/dirty by the segment's natural protection:
//     a segment that is never writable (text, rodata, GOT) can only share
//     pristine image pages, while sharing of naturally writable pages is
//     fork-inherited data neither side has privatised yet.
type SmapsRow struct {
	Segment      string `json:"segment"`
	MappedPages  int    `json:"mapped_pages"`
	SharedPages  int    `json:"shared_pages"`
	PrivatePages int    `json:"private_pages"`
	// PendingPages counts pages still awaiting capability relocation (the
	// μFork engine's deferred-relocation bitmap, §4.2).
	PendingPages     int    `json:"pending_pages"`
	RSSBytes         uint64 `json:"rss_bytes"`
	PSSBytes         uint64 `json:"pss_bytes"`
	USSBytes         uint64 `json:"uss_bytes"`
	SharedCleanBytes uint64 `json:"shared_clean_bytes"`
	SharedDirtyBytes uint64 `json:"shared_dirty_bytes"`

	// pssFP carries the PSS sum at fixed-point precision so per-row
	// rounding cannot drift the total row.
	pssFP uint64
}

// smapsPSSShift is the fixed-point precision of PSS accumulation.
const smapsPSSShift = 16

func (r *SmapsRow) addPage(refs int, naturallyWritable, pending bool) {
	r.MappedPages++
	r.RSSBytes += PageSize
	r.pssFP += (PageSize << smapsPSSShift) / uint64(refs)
	if refs == 1 {
		r.PrivatePages++
		r.USSBytes += PageSize
	} else {
		r.SharedPages++
		if naturallyWritable {
			r.SharedDirtyBytes += PageSize
		} else {
			r.SharedCleanBytes += PageSize
		}
	}
	if pending {
		r.PendingPages++
	}
}

// SmapsReport is one μprocess's memory map: per-segment rows plus a total,
// the result of the SYS_SMAPS page-table walk.
type SmapsReport struct {
	PID   PID        `json:"pid"`
	Name  string     `json:"name"`
	Gen   int        `json:"gen"`
	Rows  []SmapsRow `json:"rows"`
	Total SmapsRow   `json:"total"`
}

// smapsWalk computes p's memory map by walking its region's page tables.
// Simulation-goroutine only (or quiescent kernels): it reads live PTE
// state.
func (k *Kernel) smapsWalk(p *Proc) SmapsReport {
	r := SmapsReport{PID: p.PID, Name: p.Spec.Name, Gen: p.Gen}
	r.Total.Segment = "total"
	for s := Segment(0); s < numSegments; s++ {
		if p.Layout.Pages[s] == 0 {
			continue
		}
		row := SmapsRow{Segment: s.String()}
		base := p.Layout.SegBase(p.Region.Base, s)
		start, end := vm.VPNOf(base), vm.VPNOf(base)+vm.VPN(p.Layout.Pages[s])
		writable := s.NaturalProt()&vm.ProtWrite != 0
		p.AS.RangeVPNs(start, end, func(vpn vm.VPN, pte *vm.PTE) {
			pending := p.Pending != nil && p.Pending.Contains(vpn)
			row.addPage(pte.Page.Refs, writable, pending)
		})
		if row.MappedPages == 0 {
			continue
		}
		row.PSSBytes = row.pssFP >> smapsPSSShift
		r.Total.MappedPages += row.MappedPages
		r.Total.SharedPages += row.SharedPages
		r.Total.PrivatePages += row.PrivatePages
		r.Total.PendingPages += row.PendingPages
		r.Total.RSSBytes += row.RSSBytes
		r.Total.USSBytes += row.USSBytes
		r.Total.SharedCleanBytes += row.SharedCleanBytes
		r.Total.SharedDirtyBytes += row.SharedDirtyBytes
		r.Total.pssFP += row.pssFP
		r.Rows = append(r.Rows, row)
	}
	r.Total.PSSBytes = r.Total.pssFP >> smapsPSSShift
	return r
}

// refreshMemStats walks p's page tables and publishes the totals into its
// accounting gauges, where ProcStat snapshots (and the stress-soak sharing
// table) read them.
func (k *Kernel) refreshMemStats(p *Proc) {
	t := k.smapsWalk(p).Total
	a := &p.Acct
	a.RSSBytes.Set(int64(t.RSSBytes))
	a.PSSBytes.Set(int64(t.PSSBytes))
	a.USSBytes.Set(int64(t.USSBytes))
	a.SharedCleanBytes.Set(int64(t.SharedCleanBytes))
	a.SharedDirtyBytes.Set(int64(t.SharedDirtyBytes))
	a.PendingPages.Set(int64(t.PendingPages))
}

// SmapsOf computes the memory map of the process with the given PID
// without syscall accounting: kernel-side introspection for harnesses and
// experiments. Must run on the simulation goroutine or against a
// quiescent kernel.
func (k *Kernel) SmapsOf(pid PID) (SmapsReport, bool) {
	p, ok := k.procs[pid]
	if !ok || p.exited {
		return SmapsReport{}, false
	}
	return k.smapsWalk(p), true
}

// smapsBytes approximates the user-visible size of an smaps report for
// TOCTTOU copy-out accounting: one row per segment plus the total.
const smapsBytes = 512

// Smaps is the SYS_SMAPS syscall: /proc/pid/smaps without a procfs. pid 0
// queries the calling process; any live PID may be queried (read-only
// accounting, like SYS_PROCSTAT). The walk also refreshes the target's
// memory gauges, so a ProcStat taken after an Smaps call carries current
// RSS/PSS/USS numbers.
func (k *Kernel) Smaps(p *Proc, pid PID) (SmapsReport, error) {
	k.enter(p, SysSmaps, smapsBytes)
	defer k.leave(p)
	if err := k.chaosErr("smaps"); err != nil {
		return SmapsReport{}, err
	}
	q := p
	if pid != 0 && pid != p.PID {
		k.procMu.RLock()
		q2, ok := k.procs[pid]
		k.procMu.RUnlock()
		if !ok {
			return SmapsReport{}, ErrNoProc
		}
		q = q2
	}
	// The walk itself costs one page-table probe per mapped page.
	r := k.smapsWalk(q)
	p.Task.Advance(sim.Time(r.Total.MappedPages) * k.Machine.PTECopy)
	k.refreshMemStats(q)
	return r, nil
}

// RenderSmaps formats a report as the `ufork-run -smaps` text table.
func RenderSmaps(r SmapsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "smaps for %s[%d] (gen %d)\n", r.Name, r.PID, r.Gen)
	fmt.Fprintf(&b, "%-10s %7s %7s %7s %7s %9s %9s %9s %9s %9s\n",
		"segment", "mapped", "shared", "priv", "pend",
		"rss-kb", "pss-kb", "uss-kb", "shclean", "shdirty")
	rows := append(append([]SmapsRow{}, r.Rows...), r.Total)
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s %7d %7d %7d %7d %9d %9d %9d %9d %9d\n",
			row.Segment, row.MappedPages, row.SharedPages, row.PrivatePages,
			row.PendingPages, row.RSSBytes>>10, row.PSSBytes>>10,
			row.USSBytes>>10, row.SharedCleanBytes>>10, row.SharedDirtyBytes>>10)
	}
	return b.String()
}
