package kernel

import (
	"fmt"
	"sort"

	"ufork/internal/sim"
)

// Inode is one ram-disk file.
type Inode struct {
	Name string
	Data []byte
}

// VFS is a flat ram-disk file system: the experiments store Redis dumps
// and Nginx documents on a ram-disk "minimizing I/O latency" (§5.1).
type VFS struct {
	files map[string]*Inode
}

// NewVFS creates an empty file system.
func NewVFS() *VFS { return &VFS{files: make(map[string]*Inode)} }

// Create makes (or truncates) a file.
func (v *VFS) Create(name string) *Inode {
	ino := &Inode{Name: name}
	v.files[name] = ino
	return ino
}

// Lookup finds a file.
func (v *VFS) Lookup(name string) (*Inode, bool) {
	ino, ok := v.files[name]
	return ino, ok
}

// Remove deletes a file.
func (v *VFS) Remove(name string) error {
	if _, ok := v.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoEnt, name)
	}
	delete(v.files, name)
	return nil
}

// Names lists all files in sorted order.
func (v *VFS) Names() []string {
	out := make([]string, 0, len(v.files))
	for name := range v.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteFile installs content directly (test/driver convenience).
func (v *VFS) WriteFile(name string, data []byte) {
	v.Create(name).Data = append([]byte(nil), data...)
}

// regularFile adapts an Inode + offset to the File interface.
type regularFile struct {
	ino *Inode
}

// Read copies from the inode at the description's offset. The per-byte
// ram-disk cost is charged to the caller.
func (f *regularFile) Read(k *Kernel, p *Proc, buf []byte) (int, error) {
	return 0, fmt.Errorf("kernel: regularFile.Read must go through OpenFile")
}

func (f *regularFile) Write(k *Kernel, p *Proc, buf []byte) (int, error) {
	return 0, fmt.Errorf("kernel: regularFile.Write must go through OpenFile")
}

func (f *regularFile) Close(*Kernel, *Proc) error { return nil }

// readAt / writeAt implement offset-aware I/O; the syscall layer resolves
// the OpenFile offset.
func (f *regularFile) readAt(k *Kernel, p *Proc, off uint64, buf []byte) int {
	if off >= uint64(len(f.ino.Data)) {
		return 0
	}
	n := copy(buf, f.ino.Data[off:])
	p.Task.Book(sim.Time(n) * k.Machine.FSReadNsPerKB / 1024)
	return n
}

func (f *regularFile) writeAt(k *Kernel, p *Proc, off uint64, buf []byte) int {
	end := off + uint64(len(buf))
	if end > uint64(len(f.ino.Data)) {
		grown := make([]byte, end)
		copy(grown, f.ino.Data)
		f.ino.Data = grown
	}
	copy(f.ino.Data[off:], buf)
	p.Task.Book(sim.Time(len(buf)) * k.Machine.FSWriteNsPerKB / 1024)
	return len(buf)
}
