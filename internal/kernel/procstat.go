package kernel

import (
	"sort"

	"ufork/internal/obs"
	"ufork/internal/sim"
)

// Accounting is the per-μprocess cumulative counter block: where this
// process's time and memory went, attributable live. Every field is an
// atomic obs.Counter/obs.Gauge — mutation happens only on the owning
// kernel's simulation goroutine, but the telemetry server snapshots these
// from an HTTP goroutine mid-run, so plain ints would race.
type Accounting struct {
	// Syscalls counts completed kernel entries by syscall number.
	Syscalls [NumSysNos]obs.Counter

	// Faults counts page faults taken, and the outcome counters classify
	// how each resolution ended (the §3.8 copy-mode taxonomy):
	// CoW — a private physical copy, no capability relocation;
	// CoA — the last-referenced frame adopted in place, no copy;
	// CoPA — the resolution relocated capabilities (copy-and-relocate);
	// Mapped — neither copy, adopt nor relocation (demand map, spurious).
	Faults      obs.Counter
	FaultCoW    obs.Counter
	FaultCoA    obs.Counter
	FaultCoPA   obs.Counter
	FaultMapped obs.Counter

	// FramesOwned is the attribution gauge of physical frames charged to
	// this μprocess: image pages at load, eager copies at fork (charged to
	// the child), and private copies made by its faults. Shared CoW frames
	// stay charged to the process that first mapped them — attribution, not
	// a page-table walk, so it is safe to read live. FramesPeak is its
	// high-water mark.
	FramesOwned obs.Gauge
	FramesPeak  obs.Gauge

	// Fork cost attribution, charged to the forking parent: bytes
	// physically copied during fork calls (eager + proactive pages) and
	// capabilities relocated (tag-scan rewrites + register file). Forks
	// counts fork calls (the atomic twin of Proc.Forked).
	ForkBytesCopied   obs.Counter
	ForkCapsRelocated obs.Counter
	Forks             obs.Counter

	// FaultCapsRelocated counts capabilities rewritten by this process's
	// fault resolutions (the lazy half of CoPA relocation).
	FaultCapsRelocated obs.Counter

	// PeakBrkPages is the high-water heap watermark Sbrk ever reached.
	PeakBrkPages obs.Gauge

	// Memory-footprint gauges (the smaps plane): RSS is every mapped page,
	// PSS divides shared pages by their mapping count, USS is exclusively
	// mapped pages, and the shared split separates never-writable image
	// pages (clean) from fork-inherited writable pages (dirty).
	// PendingPages counts pages still awaiting capability relocation.
	// Refreshed by SYS_SMAPS walks, after forks while the provenance plane
	// is armed, and frozen at exit just before the image is unmapped.
	RSSBytes         obs.Gauge
	PSSBytes         obs.Gauge
	USSBytes         obs.Gauge
	SharedCleanBytes obs.Gauge
	SharedDirtyBytes obs.Gauge
	PendingPages     obs.Gauge

	// Kernel-side delay attribution, refining the sim task's taxonomy:
	// BKLWaitNS is the slice of lock-wait spent on the kernel's global
	// serializing lock — the big kernel lock, or the narrow residual lock
	// on machines with the split hierarchy (the counter keeps its name and
	// JSON field so pre/post-split sweeps compare directly); FaultServiceNS
	// is clock time inside the page-fault path (trap cost plus resolution);
	// the Block*NS counters split parked time by what the process slept on.
	BKLWaitNS      obs.Counter
	FaultServiceNS obs.Counter
	BlockPipeNS    obs.Counter
	BlockNetNS     obs.Counter
	BlockChildNS   obs.Counter
}

// chargeFrames adjusts the owned-frame attribution by d frames and tracks
// the peak. Single-writer (the sim goroutine), so the read-then-store peak
// update cannot lose races with itself.
func (a *Accounting) chargeFrames(d int64) {
	a.FramesOwned.Add(d)
	if v := a.FramesOwned.Value(); v > a.FramesPeak.Value() {
		a.FramesPeak.Set(v)
	}
}

// noteBrk records a new heap watermark candidate.
func (a *Accounting) noteBrk(pages int) {
	if int64(pages) > a.PeakBrkPages.Value() {
		a.PeakBrkPages.Set(int64(pages))
	}
}

// ProcStat is one μprocess's accounting snapshot: the procfs-style record
// returned by the ProcStats kernel API, the SYS_PROCSTAT syscall, and the
// telemetry server's /procs endpoint.
type ProcStat struct {
	PID           int               `json:"pid"`
	PPID          int               `json:"ppid"`
	Name          string            `json:"name"`
	SyscallsTotal uint64            `json:"syscalls_total"`
	Syscalls      map[string]uint64 `json:"syscalls,omitempty"`

	Faults      uint64 `json:"faults"`
	FaultCoW    uint64 `json:"fault_cow"`
	FaultCoA    uint64 `json:"fault_coa"`
	FaultCoPA   uint64 `json:"fault_copa"`
	FaultMapped uint64 `json:"fault_mapped"`

	FramesOwned int64 `json:"frames_owned"`
	FramesPeak  int64 `json:"frames_peak"`

	Forks             uint64 `json:"forks"`
	ForkBytesCopied   uint64 `json:"fork_bytes_copied"`
	ForkCapsRelocated uint64 `json:"fork_caps_relocated"`

	FaultCapsRelocated uint64 `json:"fault_caps_relocated"`

	PeakBrkPages int64 `json:"peak_brk_pages"`

	// smaps aggregates, as of the last SYS_SMAPS walk (or exit, for a
	// reaped snapshot — the footprint the process died with).
	RSSBytes         int64 `json:"rss_bytes"`
	PSSBytes         int64 `json:"pss_bytes"`
	USSBytes         int64 `json:"uss_bytes"`
	SharedCleanBytes int64 `json:"shared_clean_bytes"`
	SharedDirtyBytes int64 `json:"shared_dirty_bytes"`
	PendingPages     int64 `json:"pending_pages"`

	// Delay accounting: where this process's virtual lifetime went. The
	// sim engine attributes every clock advance to exactly one bucket, so
	// run + runnable-wait + blocked + latency + lock-wait == lifetime (the
	// identity TestDelayTaxonomySums pins). The remaining fields refine
	// those buckets with kernel-side causes.
	LifetimeNS     uint64 `json:"lifetime_ns"`
	RunNS          uint64 `json:"run_ns"`
	RunnableWaitNS uint64 `json:"runnable_wait_ns"`
	BlockedNS      uint64 `json:"blocked_ns"`
	LatencyNS      uint64 `json:"latency_ns"`
	LockWaitNS     uint64 `json:"lock_wait_ns"`
	BKLWaitNS      uint64 `json:"bkl_wait_ns"`
	FaultServiceNS uint64 `json:"fault_service_ns"`
	BlockPipeNS    uint64 `json:"block_pipe_ns"`
	BlockNetNS     uint64 `json:"block_net_ns"`
	BlockChildNS   uint64 `json:"block_child_ns"`

	// Exited marks a snapshot taken at reap time: the process is gone
	// from the live table and the stats are final.
	Exited bool `json:"exited,omitempty"`
}

// Stat snapshots the process's accounting. Safe to call from any
// goroutine: it reads only atomic counters and fields immutable after the
// process is published in the process table.
func (p *Proc) Stat() ProcStat {
	a := &p.Acct
	st := ProcStat{
		PID:  int(p.PID),
		Name: p.Spec.Name,

		Faults:      a.Faults.Value(),
		FaultCoW:    a.FaultCoW.Value(),
		FaultCoA:    a.FaultCoA.Value(),
		FaultCoPA:   a.FaultCoPA.Value(),
		FaultMapped: a.FaultMapped.Value(),

		FramesOwned: a.FramesOwned.Value(),
		FramesPeak:  a.FramesPeak.Value(),

		Forks:             a.Forks.Value(),
		ForkBytesCopied:   a.ForkBytesCopied.Value(),
		ForkCapsRelocated: a.ForkCapsRelocated.Value(),

		FaultCapsRelocated: a.FaultCapsRelocated.Value(),

		PeakBrkPages: a.PeakBrkPages.Value(),

		RSSBytes:         a.RSSBytes.Value(),
		PSSBytes:         a.PSSBytes.Value(),
		USSBytes:         a.USSBytes.Value(),
		SharedCleanBytes: a.SharedCleanBytes.Value(),
		SharedDirtyBytes: a.SharedDirtyBytes.Value(),
		PendingPages:     a.PendingPages.Value(),

		BKLWaitNS:      a.BKLWaitNS.Value(),
		FaultServiceNS: a.FaultServiceNS.Value(),
		BlockPipeNS:    a.BlockPipeNS.Value(),
		BlockNetNS:     a.BlockNetNS.Value(),
		BlockChildNS:   a.BlockChildNS.Value(),
	}
	if t := p.Task; t != nil {
		d := t.Delays()
		st.RunNS = uint64(d[sim.DelayRun])
		st.RunnableWaitNS = uint64(d[sim.DelayRunnable])
		st.BlockedNS = uint64(d[sim.DelayBlocked])
		st.LatencyNS = uint64(d[sim.DelayLatency])
		st.LockWaitNS = uint64(d[sim.DelayLockWait])
		st.LifetimeNS = st.RunNS + st.RunnableWaitNS + st.BlockedNS +
			st.LatencyNS + st.LockWaitNS
	}
	if p.Parent != nil {
		st.PPID = int(p.Parent.PID)
	}
	for no := SysNo(0); no < NumSysNos; no++ {
		v := a.Syscalls[no].Value()
		if v == 0 {
			continue
		}
		if st.Syscalls == nil {
			st.Syscalls = make(map[string]uint64)
		}
		st.Syscalls[no.String()] = v
		st.SyscallsTotal += v
	}
	return st
}

// blockAccounted runs wait (which parks the task) and returns the parked
// virtual time the sleep accrued, so blocking sites can attribute it to a
// cause counter (pipe, socket, child); label is the causal-segment name
// ("block:pipe", "block:net", "block:child") the sleep's blocked delta is
// flushed under when the process is traced — flushed before the lock
// re-acquisition below, whose own waits belong to their lock sites. On
// fine-grained machines a sleeping task first releases every strict
// kernel lock it holds — a parked holder would wedge the FIFO handoff
// queues exactly the way a sleeping lock holder wedges a real kernel —
// and re-acquires the same footprint in hierarchy order on wake. The
// legacy BKL is not on the held stack; its virtual-exclusion semantics
// tolerate a parked holder, so BKL-machine behavior is unchanged.
func blockAccounted(p *Proc, label string, wait func()) sim.Time {
	t := p.Task
	held := t.HeldLocks()
	for i := len(held) - 1; i >= 0; i-- {
		held[i].Unlock(t)
	}
	b0 := t.Delay(sim.DelayBlocked)
	wait()
	d := t.Delay(sim.DelayBlocked) - b0
	if s := p.k.causalSpan(p); s != nil {
		s.CheckpointAs(sim.DelayBlocked, label, t.Now(), t.Delays())
	}
	for _, l := range held {
		p.k.lockWait(p, l)
	}
	return d
}

// deadStatsCap bounds the reaped-process history: enough for a whole
// quick bench run, small enough that a fork-bomb soak cannot grow the
// kernel without bound.
const deadStatsCap = 128

// reap removes p from the live table and retires its final accounting
// snapshot into the bounded dead ring. PIDs are never reused, so a
// retired snapshot can never collide with a live row in ProcStats. The
// reaping process `by` (the waiting parent, or p itself on self-reap)
// supplies the running task that brackets the proc-table shard lock on
// fine-grained machines; BKL machines keep the shadow-meter credit.
func (k *Kernel) reap(p *Proc, by *Proc) {
	st := p.Stat()
	st.Exited = true
	if k.Machine.FineGrainedLocks {
		sh := k.shardFor(p.PID)
		k.lockWait(by, sh)
		defer sh.Unlock(by.Task)
	} else {
		k.lkProc.Acquire(p.Task.Now())
	}
	k.procMu.Lock()
	delete(k.procs, p.PID)
	k.dead = append(k.dead, st)
	if len(k.dead) > deadStatsCap {
		k.dead = k.dead[len(k.dead)-deadStatsCap:]
	}
	k.procMu.Unlock()
}

// ProcStats snapshots every live process's accounting plus the final
// snapshots of recently reaped processes, sorted by PID. Safe to call
// from the telemetry goroutine while the simulation runs.
func (k *Kernel) ProcStats() []ProcStat {
	k.procMu.RLock()
	stats := make([]ProcStat, 0, len(k.procs)+len(k.dead))
	stats = append(stats, k.dead...)
	for _, p := range k.procs {
		stats = append(stats, p.Stat())
	}
	k.procMu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].PID < stats[j].PID })
	return stats
}

// procStatBytes approximates the user-visible size of a ProcStat record
// for TOCTTOU copy-out accounting.
const procStatBytes = 256

// Procstat is the SYS_PROCSTAT syscall: a procfs read without a procfs.
// pid 0 queries the calling process; querying another live PID is
// permitted (the trust model's introspection surface is read-only
// accounting, never capabilities).
func (k *Kernel) Procstat(p *Proc, pid PID) (ProcStat, error) {
	k.enter(p, SysProcstat, procStatBytes)
	defer k.leave(p)
	if err := k.chaosErr("procstat"); err != nil {
		return ProcStat{}, err
	}
	if pid == 0 || pid == p.PID {
		return p.Stat(), nil
	}
	k.procMu.RLock()
	q, ok := k.procs[pid]
	k.procMu.RUnlock()
	if !ok {
		return ProcStat{}, ErrNoProc
	}
	return q.Stat(), nil
}
