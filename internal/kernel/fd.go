package kernel

import (
	"fmt"

	"ufork/internal/obs/causal"
	"ufork/internal/sim"
)

// File is the kernel-internal file interface. Read and Write may block the
// calling process in virtual time (pipes, sockets).
type File interface {
	Read(k *Kernel, p *Proc, buf []byte) (int, error)
	Write(k *Kernel, p *Proc, buf []byte) (int, error)
	Close(k *Kernel, p *Proc) error
}

// OpenFile is one open file description: shared by parent and child after
// fork, exactly as POSIX dictates (offset and flags are per-description,
// not per-descriptor).
type OpenFile struct {
	File   File
	Offset uint64
	refs   int
}

// FDTable maps descriptor numbers to open file descriptions.
type FDTable struct {
	slots []*OpenFile
}

// NewFDTable creates an empty descriptor table.
func NewFDTable() *FDTable { return &FDTable{} }

// Install places of in the lowest free slot and returns its descriptor.
func (t *FDTable) Install(of *OpenFile) int {
	of.refs++
	for i, s := range t.slots {
		if s == nil {
			t.slots[i] = of
			return i
		}
	}
	t.slots = append(t.slots, of)
	return len(t.slots) - 1
}

// Get returns the open file for fd.
func (t *FDTable) Get(fd int) (*OpenFile, error) {
	if fd < 0 || fd >= len(t.slots) || t.slots[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return t.slots[fd], nil
}

// Close removes fd, closing the description when the last reference drops.
func (t *FDTable) Close(k *Kernel, p *Proc, fd int) error {
	of, err := t.Get(fd)
	if err != nil {
		return err
	}
	t.slots[fd] = nil
	of.refs--
	if of.refs == 0 {
		return of.File.Close(k, p)
	}
	return nil
}

// CloseAll closes every descriptor (process exit).
func (t *FDTable) CloseAll(k *Kernel, p *Proc) {
	for fd := range t.slots {
		if t.slots[fd] != nil {
			_ = t.Close(k, p, fd)
		}
	}
}

// Dup duplicates the table for a forked child: descriptions are shared,
// reference counts bumped (POSIX fork semantics, §3.5 step 1).
func (t *FDTable) Dup() *FDTable {
	nt := &FDTable{slots: make([]*OpenFile, len(t.slots))}
	for i, of := range t.slots {
		if of != nil {
			of.refs++
			nt.slots[i] = of
		}
	}
	return nt
}

// Len returns the number of open descriptors.
func (t *FDTable) Len() int {
	n := 0
	for _, of := range t.slots {
		if of != nil {
			n++
		}
	}
	return n
}

// Console is the sink behind descriptors 0/1/2.
type Console struct {
	// Captured output, retained for tests.
	Out []byte
}

// Read always reports EOF-like zero bytes.
func (c *Console) Read(*Kernel, *Proc, []byte) (int, error) { return 0, nil }

// Write appends to the captured output.
func (c *Console) Write(_ *Kernel, _ *Proc, buf []byte) (int, error) {
	c.Out = append(c.Out, buf...)
	return len(buf), nil
}

// Close is a no-op.
func (c *Console) Close(*Kernel, *Proc) error { return nil }

// pipeCapacity matches the traditional 64 KiB pipe buffer.
const pipeCapacity = 64 * 1024

// sockBufBytes is the in-flight window of a simulated TCP connection: a
// writer with more data than this blocks until the remote side drains,
// which is the I/O yield that lets extra Nginx workers help even on a
// single core (§5.1, Fig. 7).
const sockBufBytes = 4 * 1024

// pipeCore is the shared buffer between the two pipe ends.
type pipeCore struct {
	buf     []byte
	cap     int
	readers int
	writers int
	rq, wq  sim.WaitQueue
	// stampTrace/stampPID carry the causal context of the most recent
	// traced writer, so a reader without its own op in flight joins the
	// writer's trace (httpd requests flow driver→worker this way). Zero
	// when tracing is off or the writer was untraced.
	stampTrace causal.TraceID
	stampPID   int32
}

// PipeReader is the read end of a pipe.
type PipeReader struct{ c *pipeCore }

// PipeWriter is the write end of a pipe.
type PipeWriter struct{ c *pipeCore }

// NewPipe creates a connected pipe pair with the classic 64 KiB buffer.
func NewPipe() (*PipeReader, *PipeWriter) { return newPipeCap(pipeCapacity) }

func newPipeCap(capacity int) (*PipeReader, *PipeWriter) {
	c := &pipeCore{cap: capacity, readers: 1, writers: 1}
	return &PipeReader{c}, &PipeWriter{c}
}

// Read blocks (in virtual time) until data is available or all writers
// have closed. A read that blocked pays the machine's context-switch cost
// when it resumes — on the multi-address-space baseline that includes the
// page-table switch and TLB flush, the cost Fig. 9's Context1 benchmark
// isolates.
func (r *PipeReader) Read(k *Kernel, p *Proc, buf []byte) (int, error) {
	c := r.c
	blocked := false
	for len(c.buf) == 0 {
		if c.writers == 0 {
			return 0, nil // EOF
		}
		p.Acct.BlockPipeNS.Add(uint64(blockAccounted(p, "block:pipe", func() {
			c.rq.Wait(p.Task)
		})))
		blocked = true
	}
	if blocked {
		k.chargeSwitch(p)
	}
	n := copy(buf, c.buf)
	c.buf = c.buf[n:]
	p.Task.Book(sim.Time(n) * k.Machine.PipeByte)
	c.wq.WakeAll(p.Task, p.Task.Now())
	if c.stampTrace != 0 {
		// Data carried a traced writer's context across the pipe: a reader
		// with no op of its own joins that trace (no-op otherwise).
		k.causalAdopt(p, causal.EdgePipe, c.stampTrace, c.stampPID)
	}
	return n, nil
}

// Write is not permitted on the read end.
func (r *PipeReader) Write(*Kernel, *Proc, []byte) (int, error) {
	return 0, fmt.Errorf("%w: write to pipe read end", ErrBadFD)
}

// Close drops the reader.
func (r *PipeReader) Close(_ *Kernel, p *Proc) error {
	r.c.readers--
	if r.c.readers == 0 && !r.c.wq.Empty() {
		r.c.wq.WakeAll(p.Task, p.Task.Now())
	}
	return nil
}

// Read is not permitted on the write end.
func (w *PipeWriter) Read(*Kernel, *Proc, []byte) (int, error) {
	return 0, fmt.Errorf("%w: read from pipe write end", ErrBadFD)
}

// Write blocks while the pipe is full and readers remain.
func (w *PipeWriter) Write(k *Kernel, p *Proc, buf []byte) (int, error) {
	c := w.c
	if s := k.causalSpan(p); s != nil {
		c.stampTrace, c.stampPID = s.Trace(), int32(p.PID)
	}
	total := 0
	for len(buf) > 0 {
		if c.readers == 0 {
			return total, ErrPipeClosed // EPIPE
		}
		space := c.cap - len(c.buf)
		if space == 0 {
			p.Acct.BlockPipeNS.Add(uint64(blockAccounted(p, "block:pipe", func() {
				c.wq.Wait(p.Task)
			})))
			k.chargeSwitch(p)
			continue
		}
		n := len(buf)
		if n > space {
			n = space
		}
		c.buf = append(c.buf, buf[:n]...)
		buf = buf[n:]
		total += n
		p.Task.Book(sim.Time(n) * k.Machine.PipeByte)
		c.rq.WakeAll(p.Task, p.Task.Now())
	}
	return total, nil
}

// Close drops the writer, waking blocked readers so they observe EOF.
func (w *PipeWriter) Close(_ *Kernel, p *Proc) error {
	w.c.writers--
	if w.c.writers == 0 && !w.c.rq.Empty() {
		w.c.rq.WakeAll(p.Task, p.Task.Now())
	}
	return nil
}

// Conn is one direction-pair simulated network connection (the accept side
// of the HTTP experiments). Internally it is two pipes.
type Conn struct {
	in  *PipeReader // data from the client
	out *PipeWriter // data to the client
}

// ClientConn is the client's half.
type ClientConn struct {
	out *PipeWriter // data to the server
	in  *PipeReader // data from the server
}

// NewConn builds a connected (server, client) socket pair. Both directions
// carry a TCP-window-sized buffer, so bulk responses block the server until
// the client drains.
func NewConn() (*Conn, *ClientConn) {
	sIn, cOut := newPipeCap(sockBufBytes)
	cIn, sOut := newPipeCap(sockBufBytes)
	return &Conn{in: sIn, out: sOut}, &ClientConn{out: cOut, in: cIn}
}

// Read receives from the client.
func (c *Conn) Read(k *Kernel, p *Proc, buf []byte) (int, error) {
	return c.in.Read(k, p, buf)
}

// Write sends to the client.
func (c *Conn) Write(k *Kernel, p *Proc, buf []byte) (int, error) {
	return c.out.Write(k, p, buf)
}

// Close tears down both directions.
func (c *Conn) Close(k *Kernel, p *Proc) error {
	_ = c.in.Close(k, p)
	return c.out.Close(k, p)
}

// Send writes request bytes from the (driver-side) client.
func (c *ClientConn) Send(k *Kernel, p *Proc, buf []byte) (int, error) {
	return c.out.Write(k, p, buf)
}

// Recv reads response bytes on the client.
func (c *ClientConn) Recv(k *Kernel, p *Proc, buf []byte) (int, error) {
	return c.in.Read(k, p, buf)
}

// CloseClient tears down the client half.
func (c *ClientConn) CloseClient(k *Kernel, p *Proc) error {
	_ = c.out.Close(k, p)
	return c.in.Close(k, p)
}

// Listener is a simulated listening socket with an accept queue.
type Listener struct {
	backlog []*Conn
	aq      sim.WaitQueue
	closed  bool
}

// NewListener creates a listening socket.
func NewListener() *Listener { return &Listener{} }

// Connect enqueues a new connection from the driver and returns the
// client half. Exactly one blocked acceptor is woken (no thundering
// herd), in FIFO order, so load rotates across workers.
func (l *Listener) Connect(p *Proc) *ClientConn {
	server, client := NewConn()
	l.backlog = append(l.backlog, server)
	l.aq.WakeOne(p.Task, p.Task.Now())
	return client
}

// Accept blocks until a connection arrives, then returns its server half.
func (l *Listener) Accept(p *Proc) (*Conn, error) {
	blocked := false
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrPipeClosed
		}
		p.Acct.BlockNetNS.Add(uint64(blockAccounted(p, "block:net", func() {
			l.aq.Wait(p.Task)
		})))
		blocked = true
	}
	if blocked {
		p.k.chargeSwitch(p)
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Shutdown closes the listener, waking blocked accepts.
func (l *Listener) Shutdown(p *Proc) {
	l.closed = true
	l.aq.WakeAll(p.Task, p.Task.Now())
}

// Read is not supported on listeners.
func (l *Listener) Read(*Kernel, *Proc, []byte) (int, error) { return 0, ErrNotSocket }

// Write is not supported on listeners.
func (l *Listener) Write(*Kernel, *Proc, []byte) (int, error) { return 0, ErrNotSocket }

// Close shuts the listener down.
func (l *Listener) Close(_ *Kernel, p *Proc) error {
	l.Shutdown(p)
	return nil
}
