package kernel_test

import (
	"bytes"
	"errors"
	"testing"

	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

func newKernel(cores int, iso kernel.IsolationLevel) *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.UFork(cores),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: iso,
		Frames:    1 << 16,
	})
}

func TestSpawnAndMemoryOps(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	var got []byte
	var u64 uint64
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 64, []byte("hello heap")); err != nil {
			t.Errorf("store: %v", err)
		}
		buf := make([]byte, 10)
		if err := p.Load(p.HeapCap, 64, buf); err != nil {
			t.Errorf("load: %v", err)
		}
		got = buf
		if err := p.StoreU64(p.StackCap, 8, 0xdeadbeef); err != nil {
			t.Errorf("storeU64: %v", err)
		}
		v, err := p.LoadU64(p.StackCap, 8)
		if err != nil {
			t.Errorf("loadU64: %v", err)
		}
		u64 = v
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if string(got) != "hello heap" {
		t.Fatalf("heap round trip = %q", got)
	}
	if u64 != 0xdeadbeef {
		t.Fatalf("u64 round trip = %#x", u64)
	}
}

func TestCapabilityIsolationEnforced(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// Out-of-bounds access through a segment capability fails.
		buf := make([]byte, 8)
		err := p.Load(p.HeapCap, p.HeapCap.Len(), buf)
		if !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("oob load: got %v, want cap fault", err)
		}
		// The DDC is bounded to the region: an address below the region is
		// unreachable even through the widest capability the process holds.
		below := p.DDC.SetAddr(p.Region.Base - 4096)
		if err := p.Load(below, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("below-region load: got %v, want cap fault", err)
		}
		// An untagged (forged) capability is useless.
		forged := cap.Null().SetAddr(p.Region.Base)
		if err := p.Load(forged, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("forged cap load: got %v, want cap fault", err)
		}
		// Store through a read-only capability fails.
		if err := p.Store(p.GOTCap, 0, buf); !errors.Is(err, kernel.ErrCapFault) {
			t.Errorf("store via RO cap: got %v, want cap fault", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestWriteToTextSegfaults(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// Derive a writable-looking cap over text via DDC and try to write:
		// the PTE protection must still refuse it.
		textVA := p.Layout.SegBase(p.Region.Base, kernel.SegText)
		c := p.DDC.SetAddr(textVA)
		err := p.Store(c, 0, []byte{1})
		if !errors.Is(err, kernel.ErrSegfault) {
			t.Errorf("text write: got %v, want segfault", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestGOTPopulated(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		for i := 0; i < p.Spec.GOTEntries; i++ {
			c, err := p.GOTLoad(i)
			if err != nil {
				t.Fatalf("GOT[%d]: %v", i, err)
			}
			if !c.Tag() {
				t.Fatalf("GOT[%d] untagged", i)
			}
			if !p.Region.Contains(c.Addr()) {
				t.Fatalf("GOT[%d] points outside region: %v", i, c)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestExecPermission(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := p.FetchCode(0); err != nil {
			t.Errorf("fetch from text: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestFilesReadWrite(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/tmp/dump.rdb", true)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := k.Write(p, fd, []byte("snapshot-data")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := k.Close(p, fd); err != nil {
			t.Fatalf("close: %v", err)
		}
		fd, err = k.Open(p, "/tmp/dump.rdb", false)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		buf := make([]byte, 64)
		n, err := k.Read(p, fd, buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if string(buf[:n]) != "snapshot-data" {
			t.Fatalf("read back %q", buf[:n])
		}
		// Missing file fails without create.
		if _, err := k.Open(p, "/nope", false); !errors.Is(err, kernel.ErrNoEnt) {
			t.Fatalf("open missing: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestWriteVMFlowsThroughSimulatedMemory(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		payload := []byte("user-memory-payload")
		if err := p.Store(p.HeapCap, 0, payload); err != nil {
			t.Fatal(err)
		}
		fd, err := k.Open(p, "/f", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.WriteVM(p, fd, p.HeapCap, 0, uint64(len(payload))); err != nil {
			t.Fatalf("WriteVM: %v", err)
		}
		ino, ok := k.VFS().Lookup("/f")
		if !ok || !bytes.Equal(ino.Data, payload) {
			t.Fatalf("file content = %q", ino.Data)
		}
		// And back into a different heap location.
		of, _ := p.FDs.Get(fd)
		of.Offset = 0
		if _, err := k.ReadVM(p, fd, p.HeapCap, 4096, uint64(len(payload))); err != nil {
			t.Fatalf("ReadVM: %v", err)
		}
		back := make([]byte, len(payload))
		if err := p.Load(p.HeapCap, 4096, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round trip = %q", back)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestPipeBetweenProcesses(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	var received []byte
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// Child: write then exit.
			if _, err := k.Write(c, wfd, []byte("ping")); err != nil {
				t.Errorf("child write: %v", err)
			}
		})
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		buf := make([]byte, 16)
		n, err := k.Read(p, rfd, buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		received = buf[:n]
		if _, _, err := k.Wait(p); err != nil {
			t.Fatalf("wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if string(received) != "ping" {
		t.Fatalf("received %q", received)
	}
}

func TestPipeEOFAndEPIPE(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Close(p, wfd); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		n, err := k.Read(p, rfd, buf)
		if err != nil || n != 0 {
			t.Fatalf("read after writer close: n=%d err=%v, want EOF", n, err)
		}
		// EPIPE: writing with no readers.
		rfd2, wfd2, _ := k.Pipe(p)
		if err := k.Close(p, rfd2); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, wfd2, []byte("x")); !errors.Is(err, kernel.ErrPipeClosed) {
			t.Fatalf("write after reader close: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestForkWaitExitStatus(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	var waitedPID kernel.PID
	var status int
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		childPID, err := k.Fork(p, func(c *kernel.Proc) {
			k.Exit(c, 42)
			t.Error("Exit returned") // unreachable
		})
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		pid, st, err := k.Wait(p)
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		waitedPID, status = pid, st
		if pid != childPID {
			t.Errorf("waited pid %d != forked pid %d", pid, childPID)
		}
		// Second wait has no children.
		if _, _, err := k.Wait(p); !errors.Is(err, kernel.ErrNoChildren) {
			t.Errorf("second wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if status != 42 {
		t.Fatalf("status = %d", status)
	}
	if waitedPID == 0 {
		t.Fatal("no child reaped")
	}
}

func TestGetpidDistinct(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	pids := map[kernel.PID]bool{}
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		pids[k.Getpid(p)] = true
		for i := 0; i < 3; i++ {
			_, err := k.Fork(p, func(c *kernel.Proc) {
				pids[k.Getpid(c)] = true
			})
			if err != nil {
				t.Fatalf("fork %d: %v", i, err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, _, err := k.Wait(p); err != nil {
				t.Fatalf("wait %d: %v", i, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(pids) != 4 {
		t.Fatalf("got %d distinct PIDs, want 4", len(pids))
	}
}

func TestFDsInheritedAndShared(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/shared", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, fd, []byte("AAAA")); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			// The child inherits the description, including its offset.
			if _, err := k.Write(c, fd, []byte("BBBB")); err != nil {
				t.Errorf("child write: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		// Parent's next write continues after the child's: shared offset.
		if _, err := k.Write(p, fd, []byte("CCCC")); err != nil {
			t.Fatal(err)
		}
		ino, _ := k.VFS().Lookup("/shared")
		if string(ino.Data) != "AAAABBBBCCCC" {
			t.Errorf("file = %q, want shared-offset interleaving", ino.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestShmSharedAcrossFork(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		obj, err := k.ShmOpen(p, "/shm0", 1)
		if err != nil {
			t.Fatal(err)
		}
		base, err := k.ShmMap(p, obj, 8*kernel.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		shmCap := p.DDC.SetAddr(base)
		_, err = k.Fork(p, func(c *kernel.Proc) {
			cobj, err := k.ShmOpen(c, "/shm0", 1)
			if err != nil {
				t.Errorf("child shm open: %v", err)
				return
			}
			cbase, err := k.ShmMap(c, cobj, 8*kernel.PageSize)
			if err != nil {
				t.Errorf("child shm map: %v", err)
				return
			}
			ccap := c.DDC.SetAddr(cbase)
			if err := c.Store(ccap, 0, []byte("from-child")); err != nil {
				t.Errorf("child shm store: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		if err := p.Load(shmCap, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "from-child" {
			t.Errorf("shared memory = %q: child writes must be visible", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestSyscallCostCharged(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	var t0, t1 sim.Time
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		t0 = p.Now()
		k.Getpid(p)
		t1 = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	m := model.UFork(1)
	min := m.SyscallEnter + m.SyscallExit + m.SyscallBase
	if t1-t0 < min {
		t.Fatalf("getpid cost %v < floor %v", t1-t0, min)
	}
}

func TestTrapCostsExceedSealedCosts(t *testing.T) {
	cost := func(m *model.Machine) sim.Time {
		k := kernel.New(kernel.Config{Machine: m, Engine: core.New(core.CopyOnPointerAccess), Isolation: kernel.IsolationFull, Frames: 1 << 14})
		var d sim.Time
		_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
			t0 := p.Now()
			for i := 0; i < 100; i++ {
				k.Getpid(p)
			}
			d = p.Now() - t0
		})
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		return d
	}
	ufork := cost(model.UFork(1))
	posixLike := model.UFork(1)
	posixLike.TrapSyscalls = true
	posixLike.SyscallEnter = model.Posix(1).SyscallEnter
	posixLike.SyscallExit = model.Posix(1).SyscallExit
	trap := cost(posixLike)
	if trap <= ufork {
		t.Fatalf("trap syscalls (%v) must cost more than sealed-cap syscalls (%v)", trap, ufork)
	}
}

func TestSbrkBounds(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := k.Sbrk(p, 8); err != nil {
			t.Errorf("sbrk: %v", err)
		}
		if err := k.Sbrk(p, 1<<20); err == nil {
			t.Error("sbrk beyond static heap must fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestConsoleCapturesOutput(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	var p0 *kernel.Proc
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		p0 = p
		if _, err := k.Write(p, 1, []byte("hello world\n")); err != nil {
			t.Errorf("write stdout: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	of, err := p0.FDs.Get(1)
	if err == nil {
		if c, ok := of.File.(*kernel.Console); ok && string(c.Out) == "hello world\n" {
			return
		}
	}
	// FDs are closed at exit; the console content check above is best
	// effort — the write not erroring is the real assertion.
}
