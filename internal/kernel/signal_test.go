package kernel_test

import (
	"testing"

	"ufork/internal/kernel"
)

func TestSignalHandlerRuns(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := k.Fork(p, func(c *kernel.Proc) {
			got := kernel.Signal(0)
			if err := k.Sigaction(c, kernel.SIGUSR1, func(cp *kernel.Proc, s kernel.Signal) {
				got = s
			}); err != nil {
				t.Errorf("sigaction: %v", err)
				return
			}
			// Ready; then loop on syscalls until the signal lands.
			if _, err := k.Write(c, wfd, []byte{1}); err != nil {
				return
			}
			for i := 0; i < 1000 && got == 0; i++ {
				k.Getpid(c)
				c.Compute(500)
			}
			if got != kernel.SIGUSR1 {
				k.Exit(c, 1)
			}
			k.Exit(c, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Read(p, rfd, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		if err := k.SignalPID(p, pid, kernel.SIGUSR1); err != nil {
			t.Fatalf("signal: %v", err)
		}
		_, status, err := k.Wait(p)
		if err != nil || status != 0 {
			t.Fatalf("child status %d err %v: handler did not run", status, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestDefaultSIGTERMTerminates(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := k.Fork(p, func(c *kernel.Proc) {
			if _, err := k.Write(c, wfd, []byte{1}); err != nil {
				return
			}
			for {
				k.Getpid(c)
				c.Compute(500)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Read(p, rfd, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		if err := k.SignalPID(p, pid, kernel.SIGTERM); err != nil {
			t.Fatal(err)
		}
		_, status, err := k.Wait(p)
		if err != nil {
			t.Fatal(err)
		}
		if status != 128+int(kernel.SIGTERM) {
			t.Fatalf("status = %d, want %d", status, 128+int(kernel.SIGTERM))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestSIGKILLUncatchable(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		if err := k.Sigaction(p, kernel.SIGKILL, func(*kernel.Proc, kernel.Signal) {}); err == nil {
			t.Error("SIGKILL handler registration should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestSIGCHLDDelivered(t *testing.T) {
	k := newKernel(2, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		gotChld := false
		if err := k.Sigaction(p, kernel.SIGCHLD, func(*kernel.Proc, kernel.Signal) {
			gotChld = true
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Fork(p, func(c *kernel.Proc) {}); err != nil {
			t.Fatal(err)
		}
		// Wait reaps; by then the SIGCHLD has been queued and is
		// delivered at the wait syscall's kernel entry (or the next one).
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		k.Getpid(p)
		if !gotChld {
			t.Error("SIGCHLD handler never ran")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}
