package kernel_test

// Table-driven error-path coverage: every scenario runs at every
// isolation level, because error paths take different code routes when
// capability confinement and TOCTTOU re-checks are on (a syscall that
// fails must fail identically — and leave identical state — at all
// three levels).

import (
	"errors"
	"strings"
	"testing"

	"ufork/internal/kernel"
)

var errIsos = []kernel.IsolationLevel{
	kernel.IsolationNone, kernel.IsolationFault, kernel.IsolationFull,
}

// errorPathCase is one error scenario. body returns the error the kernel
// produced; want is matched with errors.Is, or wantSub as a substring
// when no sentinel exists.
type errorPathCase struct {
	name    string
	want    error
	wantSub string
	body    func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error
}

var errorPathCases = []errorPathCase{
	{
		name: "read bad fd",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			_, err := k.Read(p, 98, make([]byte, 8))
			return err
		},
	},
	{
		name: "write bad fd",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			_, err := k.Write(p, 99, []byte("x"))
			return err
		},
	},
	{
		name: "negative fd",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			_, err := k.Read(p, -1, make([]byte, 8))
			return err
		},
	},
	{
		name: "double close",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			r, w, err := k.Pipe(p)
			if err != nil {
				t.Fatalf("pipe: %v", err)
			}
			if err := k.Close(p, r); err != nil {
				t.Fatalf("first close: %v", err)
			}
			if err := k.Close(p, w); err != nil {
				t.Fatalf("close write end: %v", err)
			}
			return k.Close(p, r)
		},
	},
	{
		name: "use after close",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			r, w, err := k.Pipe(p)
			if err != nil {
				t.Fatalf("pipe: %v", err)
			}
			if err := k.Close(p, r); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := k.Close(p, w); err != nil {
				t.Fatalf("close: %v", err)
			}
			_, err = k.Read(p, r, make([]byte, 8))
			return err
		},
	},
	{
		name: "write to pipe with reader closed",
		want: kernel.ErrPipeClosed,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			r, w, err := k.Pipe(p)
			if err != nil {
				t.Fatalf("pipe: %v", err)
			}
			if err := k.Close(p, r); err != nil {
				t.Fatalf("close read end: %v", err)
			}
			_, err = k.Write(p, w, []byte("into the void"))
			return err
		},
	},
	{
		name: "write to pipe read end",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			r, _, err := k.Pipe(p)
			if err != nil {
				t.Fatalf("pipe: %v", err)
			}
			_, err = k.Write(p, r, []byte("wrong end"))
			return err
		},
	},
	{
		name: "read from pipe write end",
		want: kernel.ErrBadFD,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			_, w, err := k.Pipe(p)
			if err != nil {
				t.Fatalf("pipe: %v", err)
			}
			_, err = k.Read(p, w, make([]byte, 8))
			return err
		},
	},
	{
		name:    "sbrk past region limit",
		wantSub: "sbrk",
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			limit := p.Layout.Pages[kernel.SegHeap]
			err := k.Sbrk(p, limit-p.BrkPages+1)
			if err == nil {
				t.Fatal("sbrk one page past the heap segment succeeded")
			}
			// The failed grow must not move the watermark.
			if err2 := k.Sbrk(p, limit-p.BrkPages); err2 != nil {
				t.Fatalf("exact-limit sbrk after failed grow: %v", err2)
			}
			return err
		},
	},
	{
		name: "wait with no children",
		want: kernel.ErrNoChildren,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			_, _, err := k.Wait(p)
			return err
		},
	},
	{
		name: "wait after all children reaped",
		want: kernel.ErrNoChildren,
		body: func(t *testing.T, k *kernel.Kernel, p *kernel.Proc) error {
			if _, err := k.Fork(p, func(c *kernel.Proc) {}); err != nil {
				t.Fatalf("fork: %v", err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatalf("first wait: %v", err)
			}
			_, _, err := k.Wait(p)
			return err
		},
	},
}

func TestErrorPaths(t *testing.T) {
	for _, iso := range errIsos {
		t.Run(iso.String(), func(t *testing.T) {
			for _, tc := range errorPathCases {
				t.Run(tc.name, func(t *testing.T) {
					k := newKernel(1, iso)
					if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
						err := tc.body(t, k, p)
						if err == nil {
							t.Fatalf("%s: no error", tc.name)
						}
						if tc.want != nil && !errors.Is(err, tc.want) {
							t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
						}
						if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
							t.Fatalf("%s: got %v, want substring %q", tc.name, err, tc.wantSub)
						}
						// Whatever failed must not have wedged the process:
						// normal syscalls still work afterwards.
						if got := k.Getpid(p); got != p.PID {
							t.Fatalf("%s: getpid after error returned %d", tc.name, got)
						}
					}); err != nil {
						t.Fatal(err)
					}
					k.Run()
				})
			}
		})
	}
}
