package kernel_test

import (
	"errors"
	"testing"

	"ufork/internal/kernel"
)

func TestDupSharesOffset(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/f", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, fd, []byte("abcdef")); err != nil {
			t.Fatal(err)
		}
		dup, err := k.Dup(p, fd)
		if err != nil {
			t.Fatal(err)
		}
		// Writing through the dup continues at the shared offset.
		if _, err := k.Write(p, dup, []byte("XYZ")); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, fd, []byte("!")); err != nil {
			t.Fatal(err)
		}
		ino, _ := k.VFS().Lookup("/f")
		if string(ino.Data) != "abcdefXYZ!" {
			t.Fatalf("file = %q", ino.Data)
		}
		// Closing the original leaves the dup usable.
		if err := k.Close(p, fd); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, dup, []byte("?")); err != nil {
			t.Fatalf("write after closing twin: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestDup2Daemonize(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		// The U6 pattern: re-point stdout (fd 1) at a log file.
		logfd, err := k.Open(p, "/daemon.log", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Dup2(p, logfd, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, 1, []byte("daemon says hi\n")); err != nil {
			t.Fatal(err)
		}
		ino, ok := k.VFS().Lookup("/daemon.log")
		if !ok || string(ino.Data) != "daemon says hi\n" {
			t.Fatalf("log = %q", ino.Data)
		}
		// dup2 onto itself is a no-op.
		if fd, err := k.Dup2(p, logfd, logfd); err != nil || fd != logfd {
			t.Fatalf("self dup2: %d %v", fd, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestLseek(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/s", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, fd, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		if pos, err := k.Lseek(p, fd, 2, kernel.SeekSet); err != nil || pos != 2 {
			t.Fatalf("seek set: %d %v", pos, err)
		}
		buf := make([]byte, 3)
		if _, err := k.Read(p, fd, buf); err != nil || string(buf) != "234" {
			t.Fatalf("read after seek: %q %v", buf, err)
		}
		if pos, err := k.Lseek(p, fd, -2, kernel.SeekEnd); err != nil || pos != 8 {
			t.Fatalf("seek end: %d %v", pos, err)
		}
		if pos, err := k.Lseek(p, fd, 1, kernel.SeekCur); err != nil || pos != 9 {
			t.Fatalf("seek cur: %d %v", pos, err)
		}
		if _, err := k.Lseek(p, fd, -100, kernel.SeekSet); err == nil {
			t.Fatal("negative seek allowed")
		}
		// Pipes are not seekable.
		rfd, _, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Lseek(p, rfd, 0, kernel.SeekSet); err == nil {
			t.Fatal("seek on pipe allowed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestUnlinkAndStat(t *testing.T) {
	k := newKernel(1, kernel.IsolationFull)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fd, err := k.Open(p, "/u", true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Write(p, fd, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if size, err := k.Stat(p, "/u"); err != nil || size != 7 {
			t.Fatalf("stat: %d %v", size, err)
		}
		if err := k.Unlink(p, "/u"); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Stat(p, "/u"); !errors.Is(err, kernel.ErrNoEnt) {
			t.Fatalf("stat after unlink: %v", err)
		}
		// POSIX semantics: the open description still works post-unlink.
		if _, err := k.Write(p, fd, []byte("!")); err != nil {
			t.Fatalf("write after unlink: %v", err)
		}
		if err := k.Unlink(p, "/u"); !errors.Is(err, kernel.ErrNoEnt) {
			t.Fatalf("double unlink: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
}
