package kernel_test

import (
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// TestBigKernelLockSerializes: on a multi-core μFork machine, concurrent
// syscall-heavy μprocesses contend on the big kernel lock (§4.5); the
// same workload on the CheriBSD model (fine-grained locking) does not.
func TestBigKernelLockSerializes(t *testing.T) {
	run := func(m *model.Machine, eng kernel.ForkEngine) (contended uint64) {
		k := kernel.New(kernel.Config{
			Machine:   m,
			Engine:    eng,
			Isolation: kernel.IsolationFull,
			Frames:    1 << 14,
		})
		if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
			for i := 0; i < 3; i++ {
				if _, err := k.Fork(p, func(c *kernel.Proc) {
					for j := 0; j < 200; j++ {
						k.Getpid(c)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				if _, _, err := k.Wait(p); err != nil {
					t.Fatal(err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return k.BKLContended()
	}
	ufork := run(model.UFork(4), core.New(core.CopyOnPointerAccess))
	if ufork == 0 {
		t.Error("μFork multicore syscall storm should contend on the BKL")
	}
}
