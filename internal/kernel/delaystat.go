package kernel

import "ufork/internal/sim"

// DelayStat is the per-μprocess delay taxonomy: where the process's
// virtual lifetime went, in the shape of Linux's taskstats delay
// accounting. The five engine buckets (run, runnable-wait, blocked,
// latency, lock-wait) partition the lifetime exactly; the remaining
// fields are kernel-side refinements of those buckets by cause.
type DelayStat struct {
	PID        int    `json:"pid"`
	LifetimeNS uint64 `json:"lifetime_ns"`

	RunNS          uint64 `json:"run_ns"`
	RunnableWaitNS uint64 `json:"runnable_wait_ns"`
	BlockedNS      uint64 `json:"blocked_ns"`
	LatencyNS      uint64 `json:"latency_ns"`
	LockWaitNS     uint64 `json:"lock_wait_ns"`

	BKLWaitNS      uint64 `json:"bkl_wait_ns"`
	FaultServiceNS uint64 `json:"fault_service_ns"`
	BlockPipeNS    uint64 `json:"block_pipe_ns"`
	BlockNetNS     uint64 `json:"block_net_ns"`
	BlockChildNS   uint64 `json:"block_child_ns"`
}

// delayStatOf snapshots p's delay taxonomy. Safe from any goroutine: it
// reads only atomic counters.
func delayStatOf(p *Proc) DelayStat {
	d := p.Task.Delays()
	st := DelayStat{
		PID:            int(p.PID),
		RunNS:          uint64(d[sim.DelayRun]),
		RunnableWaitNS: uint64(d[sim.DelayRunnable]),
		BlockedNS:      uint64(d[sim.DelayBlocked]),
		LatencyNS:      uint64(d[sim.DelayLatency]),
		LockWaitNS:     uint64(d[sim.DelayLockWait]),
		BKLWaitNS:      p.Acct.BKLWaitNS.Value(),
		FaultServiceNS: p.Acct.FaultServiceNS.Value(),
		BlockPipeNS:    p.Acct.BlockPipeNS.Value(),
		BlockNetNS:     p.Acct.BlockNetNS.Value(),
		BlockChildNS:   p.Acct.BlockChildNS.Value(),
	}
	st.LifetimeNS = st.RunNS + st.RunnableWaitNS + st.BlockedNS +
		st.LatencyNS + st.LockWaitNS
	return st
}

// delayStatBytes approximates the user-visible record size for TOCTTOU
// copy-out accounting.
const delayStatBytes = 96

// Delaystat is the SYS_DELAYSTAT syscall: the delay-accounting sibling of
// SYS_PROCSTAT. pid 0 queries the calling process; querying another live
// PID is permitted (read-only accounting, never capabilities). The call
// itself enters the kernel, so a contended BKL shows up in the very
// numbers it returns — same as reading /proc on a loaded box.
func (k *Kernel) Delaystat(p *Proc, pid PID) (DelayStat, error) {
	k.enter(p, SysDelaystat, delayStatBytes)
	defer k.leave(p)
	if err := k.chaosErr("delaystat"); err != nil {
		return DelayStat{}, err
	}
	if pid == 0 || pid == p.PID {
		return delayStatOf(p), nil
	}
	k.procMu.RLock()
	q, ok := k.procs[pid]
	k.procMu.RUnlock()
	if !ok {
		return DelayStat{}, ErrNoProc
	}
	return delayStatOf(q), nil
}
