package kernel

import (
	"encoding/binary"
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/obs"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
	"ufork/internal/sim"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// NumRegs is the size of the capability register file μFork relocates at
// fork (§3.5 step 2: "any absolute memory references contained in
// registers are relocated").
const NumRegs = 16

// Proc is one μprocess (or baseline process).
type Proc struct {
	k    *Kernel
	PID  PID
	Spec ProgramSpec
	// Layout is the image layout shared by parent and all descendants.
	Layout Layout
	// AS is the address space: the kernel-shared one on single-address-
	// space machines, private otherwise.
	AS *vm.AddressSpace
	// Region is the contiguous virtual range this μprocess owns (Fig. 1).
	Region Region
	// Task is the simulation thread running the process.
	Task *sim.Task

	// Capability register file. Regs are general-purpose capability
	// registers the program may stash pointers in across a fork; the named
	// capabilities are the ABI registers.
	Regs       [NumRegs]cap.Capability
	DDC        cap.Capability // default data capability (region bounds)
	PCC        cap.Capability // program counter capability (text)
	StackCap   cap.Capability
	HeapCap    cap.Capability
	GOTCap     cap.Capability
	MetaCap    cap.Capability // allocator metadata segment
	DataCap    cap.Capability
	TLSCap     cap.Capability
	SyscallCap cap.Capability // sealed kernel entry sentry

	FDs *FDTable

	Parent    *Proc
	children  []*Proc
	childExit sim.WaitQueue

	// OriginBase is the region base the process image's un-relocated
	// content refers to (the parent's region at fork time); equal to
	// Region.Base for a freshly loaded image.
	OriginBase uint64

	// Pending tracks region pages whose frames still hold ancestor-region
	// capabilities and need relocation when privatised: a region-offset
	// page bitmap maintained by the μFork engine. Nil for engines that
	// never defer relocation (the multi-address-space baselines).
	Pending *vm.PageSet

	exited     bool
	exitStatus int
	killed     bool
	sig        sigState

	// BrkPages tracks how many heap pages the program has asked for via
	// Sbrk; used by the demand-paged baseline heap accounting.
	BrkPages int

	// Acct is the per-μprocess accounting block (procfs-style counters the
	// ProcStat API, SYS_PROCSTAT, and the telemetry server snapshot live).
	Acct Accounting

	// Gen is the fork generation: 0 for a loaded root, parent's Gen+1 for
	// a forked child. The provenance plane stamps frame lineage with it.
	Gen int

	// Forked counts forks performed by this process.
	Forked int
	// LastFork holds the statistics of the most recent fork this process
	// performed; the benchmark harness reads it for latency accounting.
	LastFork ForkStats

	// sysSpan is the in-flight syscall trace span (kernel entry through
	// exit); syscalls do not nest within one μprocess, so one slot is
	// enough. sysEnter is its start time for latency accounting and sysNo
	// the in-flight syscall number for the flight recorder's return event.
	sysSpan  obs.Span
	sysEnter sim.Time
	sysNo    SysNo

	// cspan is the process's live causal-trace span (internal/obs/causal):
	// a root minted by TraceBegin, or a member joined via a fork, pipe, or
	// signal edge. Nil when untraced — the one check every causal hook
	// pays on the disabled path. Touched only on the simulation goroutine.
	cspan *causal.Span

	// Profiler attribution state (internal/obs/profile), maintained only
	// while a plane is armed and touched only on the simulation
	// goroutine. inSys marks the kernel-entry→exit window so samples get
	// their syscall frame (sysNo alone goes stale after leave); profPhase
	// is the current phase frame (fork:<phase> during the fork latency
	// charge); profDepth/profBuf defer samples taken inside a
	// fault-service window until the handler resolves the copy mode that
	// names their phase.
	inSys     bool
	profPhase string
	profDepth int
	profBuf   []profSample

	// lk is the μprocess lock — the per-process footprint every syscall
	// acquires on fine-grained machines (rank uproc, seq = PID) — and fdlk
	// guards the descriptor table (rank fdtable). Initialized strict by
	// initProcLocks for every Proc; on BKL machines they are never
	// acquired, the BKL serializing instead. See kernel.lockPlane.
	lk   sim.VLock
	fdlk sim.VLock
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool { return p.exited }

// ExitStatus returns the exit status (valid once Exited).
func (p *Proc) ExitStatus() int { return p.exitStatus }

// Children returns the live children (for tests).
func (p *Proc) Children() []*Proc { return p.children }

// permForAccess maps a VM access kind to the capability permissions it
// requires.
func permForAccess(acc vm.Access) cap.Perm {
	switch acc {
	case vm.AccRead:
		return cap.PermLoad
	case vm.AccWrite:
		return cap.PermStore
	case vm.AccCapRead:
		return cap.PermLoad | cap.PermLoadCap
	case vm.AccCapWrite:
		return cap.PermStore | cap.PermStoreCap
	case vm.AccExec:
		return cap.PermExecute
	default:
		return 0
	}
}

// faultModeNames decode the fault-resolution mode (the same encoding
// KindFrameOwnerChange uses) into causal-segment labels.
var faultModeNames = [...]string{"mapped", "cow", "coa", "copa"}

// translate resolves va for the access, invoking the fork engine's fault
// handler (CoW / CoA / CoPA resolution) as needed.
func (p *Proc) translate(va uint64, acc vm.Access) (tmem.PFN, uint64, error) {
	for attempt := 0; attempt < 8; attempt++ {
		pfn, off, fault := p.AS.Translate(va, acc)
		if fault == nil {
			return pfn, off, nil
		}
		p.k.Stats.PageFaults.Inc()
		p.Acct.Faults.Inc()
		p.k.curPID = p.PID
		if p.k.Flight.On() {
			p.k.Flight.Emit(uint64(p.Task.Now()), int32(p.PID), flight.KindFault,
				uint64(fault.Kind), fault.VA, 0)
		}
		var sp obs.Span
		if obs.On() {
			p.k.Obs.Reg.Counter("vm.fault." + fault.Kind.String()).Inc()
			sp = p.k.Obs.Tracer.Begin(int(p.PID), p.Task.ID,
				"fault:"+fault.Kind.String(), "vm", uint64(p.Task.Now()))
		}
		// Taking the fault costs a trap + handler dispatch. Everything
		// from here to the handler's return is fault-service time.
		fault0 := p.Task.Now()
		// Bracket the fault-service window in the causal trace: checkpoint
		// up to the fault, then mark. The copy mode is only known after the
		// handler runs, so the window's unattributed segments are relabeled
		// to fault:<mode> at the end — nested hooks (a contended tmem
		// acquisition) keep their own site labels inside the window.
		cmark := -1
		if cs := p.k.causalSpan(p); cs != nil {
			cs.Checkpoint(fault0, p.Task.Delays())
			cmark = cs.Mark()
		}
		// The profiler defers the window's samples the same way: their
		// fault:<mode> phase frame is only known once the handler returns.
		pmark := p.k.profFaultBegin(p)
		p.Task.Advance(p.k.Machine.PageFault)
		// Snapshot the faulting page's frame before the handler runs: if
		// the resolution breaks sharing, this is the ancestor frame the
		// owner-change event points back at.
		oldPFN := tmem.NoFrame
		if pte := p.AS.Lookup(vm.VPNOf(fault.VA)); pte != nil {
			oldPFN = pte.Page.PFN
		}
		// Snapshot the address-space copy counters around the handler: the
		// deltas classify the resolution outcome (CoW copy / CoA adopt /
		// CoPA relocation) without knowing which engine ran.
		st := &p.AS.Stats
		copied0, adopted0, relocs0 := st.PagesCopied.Value(), st.PagesAdopted.Value(), st.CapsRelocated.Value()
		// Fine-grained fault path: point the allocator at the faulting CPU's
		// frame cache, and take the shared tmem lock only when that cache
		// cannot cover the fault — the split allocator's lock-free fast
		// path. A fault that resolves from the cache (the common CoW case)
		// never serializes on the allocator at all.
		tmemHeld := false
		if p.k.Machine.FineGrainedLocks {
			p.k.Mem.SetCPU(p.Task.LastCore())
			if !p.k.Mem.CacheReady(1) {
				p.k.lockWait(p, &p.k.locks.tmem)
				p.k.Mem.RefillCache()
				tmemHeld = true
			}
		}
		phase0 := p.k.memPhase
		p.k.memPhase = memmap.OriginDemand
		err := p.k.Engine.HandleFault(p.k, p, fault, acc)
		p.k.memPhase = phase0
		if tmemHeld {
			p.k.locks.tmem.Unlock(p.Task)
		}
		sp.End(uint64(p.Task.Now()), obs.A("va", fault.VA))
		if err != nil {
			p.k.profFaultEnd(p, pmark, "fault:error")
			// Double-wrap so errors.Is sees both the segfault and the
			// handler's cause (e.g. an injected tmem.ErrOutOfMemory).
			return tmem.NoFrame, 0, fmt.Errorf("%w: %w", ErrSegfault, err)
		}
		service := p.Task.Now() - fault0
		p.Acct.FaultServiceNS.Add(uint64(service))
		copied := st.PagesCopied.Value() - copied0
		adopted := st.PagesAdopted.Value() - adopted0
		relocs := st.CapsRelocated.Value() - relocs0
		if copied > 0 {
			// Fault-path copies mutate tmem under BKL protection; credit
			// the shadow meter with the resolution's serialized cost.
			p.k.lkTmem.Acquire(p.Task.Now())
			p.k.lkTmem.ObserveHold(service)
		}
		mode := uint64(0) // KindFrameOwnerChange mode: 1=CoW 2=CoA 3=CoPA
		switch {
		case relocs > 0:
			p.Acct.FaultCoPA.Inc()
			mode = 3
		case copied > 0:
			p.Acct.FaultCoW.Inc()
			mode = 1
		case adopted > 0:
			p.Acct.FaultCoA.Inc()
			mode = 2
		default:
			p.Acct.FaultMapped.Inc()
			if fault.Kind == vm.FaultNotMapped {
				// Demand map: the handler mapped one fresh frame (the
				// monolithic baseline's demand-paged heap).
				p.Acct.chargeFrames(1)
			}
		}
		p.k.profFaultEnd(p, pmark, "fault:"+faultModeNames[mode])
		if mode != 0 {
			// The resolution broke sharing: the faulting page's frame is now
			// exclusively owned by p (a fresh copy for CoW/CoPA, the adopted
			// last reference for CoA). Record who broke sharing and why.
			newPFN := oldPFN
			if pte := p.AS.Lookup(vm.VPNOf(fault.VA)); pte != nil {
				newPFN = pte.Page.PFN
			}
			if pl := p.k.Memmap; pl.On() {
				if copied > 0 && newPFN != oldPFN {
					origin := memmap.OriginCoW
					if mode == 3 {
						origin = memmap.OriginCoPA
					}
					pl.Reclassify(newPFN, origin)
				}
				pl.OwnerChange(newPFN, int32(p.PID), p.Gen)
			}
			if p.k.Flight.On() {
				old := uint64(newPFN)
				if oldPFN != tmem.NoFrame {
					old = uint64(oldPFN)
				}
				p.k.Flight.Emit(uint64(p.Task.Now()), int32(p.PID),
					flight.KindFrameOwnerChange, uint64(newPFN), mode, old)
			}
		}
		p.Acct.FaultCapsRelocated.Add(relocs)
		if copied > 0 {
			p.Acct.chargeFrames(int64(copied))
		}
		if p.k.Flight.On() {
			p.k.Flight.Emit(uint64(p.Task.Now()), int32(p.PID), flight.KindFaultDone,
				uint64(fault.Kind), copied, relocs)
		}
		if cmark >= 0 {
			if cs := p.k.causalSpan(p); cs != nil {
				cs.Checkpoint(p.Task.Now(), p.Task.Delays())
				cs.RelabelWindow(cmark, "fault:"+faultModeNames[mode])
			}
		}
	}
	return tmem.NoFrame, 0, fmt.Errorf("%w: fault loop at %#x", ErrSegfault, va)
}

// checkCap performs the CHERI dereference check unless the capability
// system has been configured away.
func (p *Proc) checkCap(c cap.Capability, va, n uint64, acc vm.Access) error {
	if err := c.CheckDeref(va, n, permForAccess(acc)); err != nil {
		return fmt.Errorf("%w: %v", ErrCapFault, err)
	}
	return nil
}

// Load reads len(buf) bytes through capability c at byte offset off from
// the capability's cursor.
func (p *Proc) Load(c cap.Capability, off uint64, buf []byte) error {
	return p.rw(c, off, buf, vm.AccRead)
}

// Store writes buf through capability c at byte offset off.
func (p *Proc) Store(c cap.Capability, off uint64, buf []byte) error {
	return p.rw(c, off, buf, vm.AccWrite)
}

func (p *Proc) rw(c cap.Capability, off uint64, buf []byte, acc vm.Access) error {
	va := c.Addr() + off
	n := uint64(len(buf))
	if err := p.checkCap(c, va, n, acc); err != nil {
		return err
	}
	done := uint64(0)
	for done < n {
		cur := va + done
		chunk := PageSize - vm.PageOff(cur)
		if chunk > n-done {
			chunk = n - done
		}
		pfn, poff, err := p.translate(cur, acc)
		if err != nil {
			return err
		}
		if acc == vm.AccRead {
			if err := p.k.Mem.ReadBytes(pfn, poff, buf[done:done+chunk]); err != nil {
				return err
			}
		} else {
			if err := p.k.Mem.WriteBytes(pfn, poff, buf[done:done+chunk]); err != nil {
				return err
			}
		}
		done += chunk
	}
	return nil
}

// LoadU64 reads a 64-bit little-endian value.
func (p *Proc) LoadU64(c cap.Capability, off uint64) (uint64, error) {
	var b [8]byte
	if err := p.Load(c, off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// StoreU64 writes a 64-bit little-endian value.
func (p *Proc) StoreU64(c cap.Capability, off uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Store(c, off, b[:])
}

// LoadCap loads a capability through c at offset off. On CoPA pages this
// is the access that triggers the copy-and-relocate fault (§3.8).
func (p *Proc) LoadCap(c cap.Capability, off uint64) (cap.Capability, error) {
	va := c.Addr() + off
	if err := p.checkCap(c, va, cap.GranuleSize, vm.AccCapRead); err != nil {
		return cap.Null(), err
	}
	pfn, poff, err := p.translate(va, vm.AccCapRead)
	if err != nil {
		return cap.Null(), err
	}
	return p.k.Mem.LoadCap(pfn, poff)
}

// StoreCap stores capability v through c at offset off.
func (p *Proc) StoreCap(c cap.Capability, off uint64, v cap.Capability) error {
	va := c.Addr() + off
	if err := p.checkCap(c, va, cap.GranuleSize, vm.AccCapWrite); err != nil {
		return err
	}
	pfn, poff, err := p.translate(va, vm.AccCapWrite)
	if err != nil {
		return err
	}
	return p.k.Mem.StoreCap(pfn, poff, v)
}

// FetchCode models instruction fetch at the PCC cursor (used by tests to
// demonstrate execute permissions).
func (p *Proc) FetchCode(off uint64) error {
	va := p.PCC.Addr() + off
	if err := p.checkCap(p.PCC, va, 4, vm.AccExec); err != nil {
		return err
	}
	_, _, err := p.translate(va, vm.AccExec)
	return err
}

// Compute books d nanoseconds of CPU work for the process.
func (p *Proc) Compute(d sim.Time) { p.Task.Work(d) }

// Now returns the process's virtual clock.
func (p *Proc) Now() sim.Time { return p.Task.Now() }

// SegCap derives a fresh capability over one of the process's segments.
func (p *Proc) SegCap(s Segment) cap.Capability {
	switch s {
	case SegStack:
		return p.StackCap
	case SegHeap:
		return p.HeapCap
	case SegGOT:
		return p.GOTCap
	case SegAllocMeta:
		return p.MetaCap
	case SegData:
		return p.DataCap
	case SegTLS:
		return p.TLSCap
	default:
		return deriveSeg(p.DDC, p, s)
	}
}

// Usage returns the memory occupancy of the process's region.
func (p *Proc) Usage() vm.RegionUsage {
	return p.AS.Usage(p.Region.Base, p.Region.Size)
}

// GOTLoad reads GOT entry i the way PIC code does: a capability load from
// the table. After fork this must observe a child-region target.
func (p *Proc) GOTLoad(i int) (cap.Capability, error) {
	return p.LoadCap(p.GOTCap, uint64(i)*cap.GranuleSize)
}
