// Package kernel implements the single-address-space operating system
// μFork is built into, plus the machinery shared with the multi-address-
// space baselines.
//
// The kernel is a library OS in the Unikraft mould (§4): μprocesses and the
// kernel share one virtual address space and one privilege level, isolated
// by CHERI capabilities; system calls enter through sealed capability
// jumps instead of traps; SMP is serialized by a big kernel lock. The same
// kernel code, configured with a different model.Machine and ForkEngine,
// becomes the CheriBSD-like monolithic baseline (per-process address
// spaces, trap syscalls) or the Nephele-like VM-cloning baseline.
package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ufork/internal/cap"
	"ufork/internal/model"
	"ufork/internal/obs"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
	"ufork/internal/tmem"
	"ufork/internal/vm"
)

// IsolationLevel selects how much of the POSIX trust model the kernel
// enforces (§3.6, §4.4 — design requirement R4).
type IsolationLevel int

const (
	// IsolationNone trusts the entire system: capabilities span all memory
	// and the kernel skips argument validation and TOCTTOU copies. For
	// fully trusted deployments (e.g. Redis snapshotting).
	IsolationNone IsolationLevel = iota
	// IsolationFault provides non-adversarial fault isolation: μprocess
	// capabilities are bounded to their region and basic kernel checks run,
	// but TOCTTOU copy-in/out is skipped. For trusted-but-buggy software
	// (e.g. Nginx workers).
	IsolationFault
	// IsolationFull is the adversarial POSIX model: bounded capabilities,
	// argument validation, and TOCTTOU copies of all user buffers. For
	// privilege separation (e.g. qmail, OpenSSH).
	IsolationFull
)

func (l IsolationLevel) String() string {
	switch l {
	case IsolationNone:
		return "none"
	case IsolationFault:
		return "fault"
	case IsolationFull:
		return "full"
	default:
		return "unknown"
	}
}

// Errors returned by kernel operations.
var (
	ErrNoChildren = errors.New("kernel: no children to wait for")
	ErrBadFD      = errors.New("kernel: bad file descriptor")
	ErrNoEnt      = errors.New("kernel: no such file")
	ErrExist      = errors.New("kernel: file exists")
	ErrSegfault   = errors.New("kernel: segmentation fault")
	ErrCapFault   = errors.New("kernel: capability fault")
	ErrNoProc     = errors.New("kernel: no such process")
	ErrPipeClosed = errors.New("kernel: pipe closed")
	ErrNotSocket  = errors.New("kernel: not a socket")
	// ErrInterrupted is the EINTR analogue chaos testing injects at syscall
	// entry: the call performed no work and may be retried.
	ErrInterrupted = errors.New("kernel: interrupted system call")
)

// PID identifies a μprocess.
type PID int

// ForkStats reports the work a fork performed; the benchmark harness uses
// it for per-experiment accounting.
type ForkStats struct {
	Latency        sim.Time // virtual time the fork call consumed
	PTEsCopied     int
	PagesCopied    int // frames physically duplicated during the fork call
	CapsRelocated  int // capabilities rewritten during the fork call
	ProactivePages int // GOT + allocator-metadata pages copied eagerly

	// Phase breakdown of Latency (the §6-style accounting the tracer
	// exports): engines fill the phases that apply to them. The kernel
	// fills FixupTime (FD duplication + fixed fork cost). Phases sum to
	// Latency.
	ReserveTime   sim.Time // contiguous region reservation
	PTECopyTime   sim.Time // bulk page-table-entry copy
	EagerCopyTime sim.Time // frames physically copied during the call
	ScanTime      sim.Time // tag-plane scans + capability relocation
	RegTime       sim.Time // capability register-file relocation
	FixupTime     sim.Time // kernel-side FD dup + fixed cost
}

// ForkEngine is the strategy that implements fork: μFork (internal/core),
// classic CoW in a private address space (internal/baseline/posix), or
// whole-VM cloning (internal/baseline/vmclone).
type ForkEngine interface {
	// Name identifies the engine for reports.
	Name() string
	// Fork duplicates parent into a newly allocated child Proc. The child's
	// address space, region, registers, and pending-copy state must be
	// fully initialised; the kernel handles PID assignment, FD duplication
	// and task creation. Fork returns statistics including the virtual-time
	// latency to charge the parent.
	Fork(k *Kernel, parent, child *Proc) (ForkStats, error)
	// HandleFault resolves a page fault raised by proc p (CoW / CoA / CoPA
	// resolution). It returns an error when the fault is a genuine
	// violation (segfault).
	HandleFault(k *Kernel, p *Proc, f *vm.Fault, acc vm.Access) error
	// ChildStart runs as the first act of a forked child's task; the
	// monolithic baseline uses it to model child-side runtime fixups
	// (dynamic linker relocations, allocator arena bookkeeping).
	ChildStart(k *Kernel, child *Proc)
}

// Region is a contiguous virtual address range assigned to one μprocess
// (Fig. 1) or to the kernel.
type Region struct {
	Base uint64
	Size uint64
	Name string
}

// Top returns the exclusive end of the region.
func (r Region) Top() uint64 { return r.Base + r.Size }

// Contains reports whether va falls inside the region.
func (r Region) Contains(va uint64) bool { return va >= r.Base && va < r.Top() }

// regionAllocator hands out non-overlapping regions of the shared virtual
// address space. Virtual space is 64-bit and the simulations are short, so
// it is a pure bump allocator; records are retained so relocation can map
// any historical address back to its region (§4.2).
//
// With ASLR enabled (§3.7: "ASLR can be implemented by randomizing the
// base offset of the contiguous memory area dedicated to each μprocess"),
// each reservation is displaced by a random page-aligned offset inside an
// extra slack window, so region bases are unpredictable while regions stay
// contiguous and disjoint.
type regionAllocator struct {
	next    uint64
	regions []Region
	aslr    *rand.Rand
	// free holds released regions by size — the size-class reuse the
	// paper sketches as future work for fragmentation (§6). A region is
	// only released when no capability anywhere can still reference it
	// (see Kernel.terminate).
	free map[uint64][]Region
	// Reused counts reservations satisfied from the free list.
	Reused uint64
}

const (
	regionAlign = 1 << 28 // 256 MiB region granularity
	aslrWindow  = 1 << 24 // 16 MiB of base-offset entropy per region
	// aslrGrain keeps randomized bases aligned strongly enough that every
	// segment capability stays representable in the compressed encoding
	// (the largest segment alignment for 256 MiB regions is 16 KiB).
	aslrGrain = 1 << 16
)

func (ra *regionAllocator) reserve(size uint64, name string) Region {
	// Size-class reuse first: forked children all share their parent's
	// region size, so exact-size classes hit almost always.
	if rs := ra.free[size]; len(rs) > 0 {
		r := rs[len(rs)-1]
		ra.free[size] = rs[:len(rs)-1]
		r.Name = name
		ra.Reused++
		return r
	}
	slack := uint64(0)
	if ra.aslr != nil {
		slack = uint64(ra.aslr.Intn(aslrWindow/aslrGrain)) * aslrGrain
	}
	sz := (size + slack + regionAlign - 1) &^ uint64(regionAlign-1)
	r := Region{Base: ra.next + slack, Size: sz - slack, Name: name}
	ra.next += sz
	ra.regions = append(ra.regions, r)
	return r
}

// release returns a region to its size class for reuse.
func (ra *regionAllocator) release(r Region) {
	if ra.free == nil {
		ra.free = make(map[uint64][]Region)
	}
	ra.free[r.Size] = append(ra.free[r.Size], r)
}

// VASpaceUsed reports how much of the virtual address space the allocator
// has consumed (the §6 fragmentation metric).
func (ra *regionAllocator) VASpaceUsed() uint64 { return ra.next }

// find returns the region containing va, if any.
func (ra *regionAllocator) find(va uint64) (Region, bool) {
	i := sort.Search(len(ra.regions), func(i int) bool { return ra.regions[i].Top() > va })
	if i < len(ra.regions) && ra.regions[i].Contains(va) {
		return ra.regions[i], true
	}
	return Region{}, false
}

// Stats aggregates kernel-wide counters for the harness. The counters are
// atomic (obs.Counter) so `go test -race` passes even when several
// simulated kernels are driven from concurrent host goroutines, and so a
// Snapshot/Reset pair cannot tear.
type Stats struct {
	Forks       obs.Counter
	Syscalls    obs.Counter
	PageFaults  obs.Counter
	CtxSwitches obs.Counter
}

// Snapshot returns the counters as a name→value map (bench JSON emission).
func (s *Stats) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"forks":        s.Forks.Value(),
		"syscalls":     s.Syscalls.Value(),
		"page-faults":  s.PageFaults.Value(),
		"ctx-switches": s.CtxSwitches.Value(),
	}
}

// Reset zeroes every counter so counts cannot leak between benchmark
// iterations that reuse a kernel.
func (s *Stats) Reset() {
	s.Forks.Reset()
	s.Syscalls.Reset()
	s.PageFaults.Reset()
	s.CtxSwitches.Reset()
}

// Kernel is one simulated operating system instance.
type Kernel struct {
	Eng     *sim.Engine
	Machine *model.Machine
	Mem     *tmem.Memory
	Engine  ForkEngine
	Iso     IsolationLevel

	// SharedAS is the single address space (single-address-space machines
	// only); multi-AS machines give each Proc its own.
	SharedAS *vm.AddressSpace

	// Regions allocates μprocess regions within the shared address space.
	Regions regionAllocator

	// KernelRegion hosts the kernel image in the shared address space.
	KernelRegion Region

	// locks is the kernel lock plane. On BigKernelLock machines every
	// syscall serializes on locks.global — the §4.5 BKL, kept as a legacy
	// (zero-value) VLock so its virtual-exclusion semantics and every
	// pre-split golden are byte-identical. On FineGrainedLocks machines
	// the footprint splits: each μprocess carries its own lock and FD-table
	// lock (Proc.lk / Proc.fdlk), the proc table is sharded, the tmem
	// allocator has its own lock with per-CPU frame caches, and
	// locks.global shrinks to the narrow residual lock covering the few
	// genuinely global operations (PID allocation, region release/reuse,
	// exit reparenting). See DESIGN.md "Kernel locking".
	locks lockPlane

	// sentry is the sealed kernel entry capability handed to μprocesses
	// (§4.4, principle 1). There is no other way into the kernel.
	sentry cap.Capability

	vfs *VFS
	shm shmRegistry
	// procs is the live process table. procMu guards it because the
	// telemetry server snapshots per-process accounting from an HTTP
	// goroutine while the simulation mutates the table; the simulation
	// itself is single-threaded per kernel.
	procMu sync.RWMutex
	procs  map[PID]*Proc
	// dead holds the final accounting snapshots of the most recently
	// reaped processes (bounded ring), so /procs and the per-proc
	// /metrics families still show a run's processes after they exit.
	dead []ProcStat
	next PID
	// curPID is the process on whose behalf the kernel is currently
	// working, for attributing frame alloc/free flight events. Written
	// only from the simulation goroutine (syscall entry, fault handling).
	curPID PID

	Stats Stats

	// Obs is the observability handle (metrics registry + span tracer).
	// Never nil; defaults to obs.Default, and all span/histogram traffic
	// through it is gated on the global obs.On() switch.
	Obs *obs.Obs

	// Flight is the flight recorder kernel events stream into. Never nil;
	// defaults to flight.Default (disabled until armed), so every emit
	// point pays one atomic load when the recorder is off.
	Flight *flight.Recorder

	// Chaos, when non-nil, is consulted at the entry of fallible syscalls
	// and may fail them with an injected error (ENOMEM/EINTR storms). Set
	// by the chaos harness (internal/chaos); nil in production.
	Chaos SyscallFailer

	// Memmap, when non-nil, is the armed memory-provenance plane
	// (internal/obs/memmap): frame lineage, per-μprocess mapping sets, and
	// the fork-tree sharing view. Armed via ArmMemmap before the simulation
	// runs; nil in production.
	Memmap *memmap.Plane

	// Causal, when non-nil, is the armed causal trace-context plane
	// (internal/obs/causal): request origins mint trace IDs, the kernel
	// carries them across fork/pipe/signal boundaries, and the delay hooks
	// flush per-trace critical-path segments. Armed via ArmCausal; nil in
	// production, where every hook pays one nil check.
	Causal *causal.Plane
	// Profile, when non-nil, is the armed virtual-time sampling profiler
	// (internal/obs/profile): the engine charge hook feeds it stack-
	// attributed samples at a fixed virtual-time quantum. Armed via
	// ArmProfile; nil in production runs.
	Profile *profile.Plane
	// memPhase classifies the kernel activity frames allocated right now
	// should be attributed to (image load, eager fork copy, fault
	// resolution, shm). Written only from the simulation goroutine.
	memPhase memmap.Origin
	// forkChild is the child Proc under construction while a fork engine
	// runs — not yet in the process table, but already receiving region
	// mappings that the provenance plane must attribute to it.
	forkChild *Proc

	// Locks, when non-nil, is the armed lockstat table. On BKL machines the
	// BKL is a real metered lock and lkProc/lkFD/lkTmem are shadow meters
	// for the subsystems the BKL serializes on its behalf. On fine-grained
	// machines every lock in the hierarchy is a real metered lock: the
	// shadow trio stays nil and lkUproc/lkFDT are the shared per-class
	// meters the per-μprocess locks attach to. Armed via ArmLockstat; nil
	// in production, where every site pays one nil check.
	Locks   *sim.LockTable
	lkProc  *sim.LockMeter
	lkFD    *sim.LockMeter
	lkTmem  *sim.LockMeter
	lkUproc *sim.LockMeter
	lkFDT   *sim.LockMeter
}

// Lock-ordering ranks of the split kernel lock hierarchy. Acquisition must
// ascend: μprocess locks first (in ascending-PID order within the rank),
// then a proc-table shard, the owning FD table, the tmem allocator, and the
// residual global lock innermost. sim.VLock's ordering assertion enforces
// this against each task's held stack.
const (
	lockRankUProc     = 10
	lockRankProcTable = 20
	lockRankFDTable   = 30
	lockRankTmem      = 40
	lockRankGlobal    = 50
)

// procTableShards is the shard count of the split proc-table lock: enough
// that an 8-core fork storm rarely collides on one shard, small enough to
// stay readable in /locks.
const procTableShards = 8

// lockPlane is the kernel's lock inventory (see the Kernel.locks comment).
// Per-μprocess locks live on the Proc itself.
type lockPlane struct {
	global sim.VLock
	shards [procTableShards]sim.VLock
	tmem   sim.VLock
}

// shardFor returns the proc-table shard lock covering pid.
func (k *Kernel) shardFor(pid PID) *sim.VLock {
	return &k.locks.shards[int(pid)%procTableShards]
}

// initProcLocks places a new μprocess's locks in the ordering hierarchy —
// the PID is the intra-rank sequence, so parent/child and signal pairs are
// always taken in ascending-PID canonical order — and attaches the shared
// per-class meters when lockstat is armed. Called for every Proc; on BKL
// machines the locks are initialized but never acquired.
func (k *Kernel) initProcLocks(p *Proc) {
	p.lk.Init("uproc", lockRankUProc, int(p.PID))
	p.fdlk.Init("fdtable", lockRankFDTable, int(p.PID))
	if k.Locks != nil && k.Machine.FineGrainedLocks {
		p.lk.SetMeter(k.lkUproc)
		p.fdlk.SetMeter(k.lkFDT)
	}
}

// lockRemote takes target's μprocess lock from p's syscall context in the
// canonical ascending-PID pair order: a higher-PID target nests inside p's
// own lock, while a lower-PID target requires releasing p.lk and re-taking
// the pair in order. No-op outside fine-grained mode or for p itself.
func (k *Kernel) lockRemote(p, target *Proc) {
	if !k.Machine.FineGrainedLocks || target == p {
		return
	}
	if target.PID > p.PID {
		k.lockWait(p, &target.lk)
		return
	}
	p.lk.Unlock(p.Task)
	k.lockWait(p, &target.lk)
	k.lockWait(p, &p.lk)
}

// unlockRemote undoes lockRemote.
func (k *Kernel) unlockRemote(p, target *Proc) {
	if !k.Machine.FineGrainedLocks || target == p {
		return
	}
	target.lk.Unlock(p.Task)
}

// SyscallFailer is the syscall-level fault-injection hook: it returns a
// non-nil error to fail the named syscall before it performs any work.
type SyscallFailer interface {
	SyscallError(name string) error
}

// chaosErr consults the chaos hook for the named syscall. The non-nil
// error, if any, must be returned to the caller before the syscall mutates
// kernel state.
func (k *Kernel) chaosErr(name string) error {
	if k.Chaos == nil {
		return nil
	}
	return k.Chaos.SyscallError(name)
}

// Config bundles kernel construction parameters.
type Config struct {
	Machine   *model.Machine
	Engine    ForkEngine
	Isolation IsolationLevel
	// Frames is the physical memory size in 4 KiB frames. Zero selects a
	// default large enough for the biggest experiment.
	Frames int
	// ASLRSeed, when nonzero, randomizes μprocess region base offsets
	// (§3.7). The same seed reproduces the same layout.
	ASLRSeed int64
	// Obs overrides the observability handle (default: obs.Default, the
	// process-wide registry/tracer the bench harness aggregates into).
	Obs *obs.Obs
	// Flight overrides the flight recorder (default: flight.Default). The
	// chaos harness passes a private enabled recorder per run so dumps are
	// deterministic per seed.
	Flight *flight.Recorder
}

// TrackNew, when non-nil, observes every kernel New constructs. The
// telemetry server installs it to follow the currently live kernel across
// a bench run's many boots (so /procs always reflects the kernel running
// now). Install it before any kernel is constructed; it must be safe to
// call from whichever goroutine boots kernels.
var TrackNew func(*Kernel)

// New boots a kernel on a fresh simulation engine.
func New(cfg Config) *Kernel {
	frames := cfg.Frames
	if frames == 0 {
		frames = 1 << 19 // 2 GiB
	}
	o := cfg.Obs
	if o == nil {
		o = obs.Default
	}
	fr := cfg.Flight
	if fr == nil {
		fr = flight.Default
	}
	k := &Kernel{
		Eng:     sim.NewEngine(cfg.Machine.Cores),
		Machine: cfg.Machine,
		Mem:     tmem.New(frames),
		Engine:  cfg.Engine,
		Iso:     cfg.Isolation,
		vfs:     NewVFS(),
		procs:   make(map[PID]*Proc),
		next:    1,
		Obs:     o,
		Flight:  fr,
	}
	// Frame alloc/free flight events: timestamped from the running task's
	// virtual clock (zero during pre-Run setup) and attributed to the
	// process the kernel is currently serving. Allocation only ever happens
	// on the simulation goroutine — parallel fork workers copy into frames
	// allocated before the fan-out — so curPID is stable here.
	k.Mem.SetFrameObserver(func(alloc bool, pfn tmem.PFN) {
		if pl := k.Memmap; pl.On() {
			if alloc {
				pid, gen := k.curPID, 0
				if c := k.forkChild; c != nil {
					// Eager fork copies run on the parent's behalf but
					// materialize the child's image.
					pid, gen = c.PID, c.Gen
				} else if p, ok := k.procs[pid]; ok {
					gen = p.Gen
				}
				pl.OnAlloc(pfn, int32(pid), gen, k.memPhase)
			} else {
				pl.OnFree(pfn)
			}
		}
		if !k.Flight.On() {
			return
		}
		kind := flight.KindFrameAlloc
		if !alloc {
			kind = flight.KindFrameFree
		}
		k.Flight.Emit(uint64(k.Eng.Now()), int32(k.curPID), kind, uint64(pfn), 0, 0)
	})
	// Dispatch-queueing flight events: the engine consults this hook only
	// when scheduler stats are armed, and only for grants that waited.
	k.Eng.OnDispatch = func(t *sim.Task, wait sim.Time) {
		if k.Flight.On() {
			k.Flight.Emit(uint64(t.Now()), t.Tag, flight.KindDispatch, uint64(wait), 0, 0)
		}
	}
	if cfg.Machine.SingleAddressSpace {
		k.SharedAS = vm.NewAddressSpace(k.Mem)
	}
	if cfg.Machine.FineGrainedLocks {
		// Arm the split lock hierarchy. On BKL machines locks.global stays a
		// zero-value legacy VLock — its virtual-exclusion semantics (and
		// therefore every pre-split timeline) are untouched.
		k.locks.global.Init("residual", lockRankGlobal, 0)
		for i := range k.locks.shards {
			k.locks.shards[i].Init("proctable", lockRankProcTable, i)
		}
		k.locks.tmem.Init("tmem", lockRankTmem, 0)
		// Per-CPU frame caches give the fault path its allocator-lock-free
		// fast path; BKL/POSIX machines skip this so their PFN ordering (and
		// golden output) is bit-identical.
		k.Mem.EnableCPUCaches(cfg.Machine.Cores, 0)
	}
	if cfg.ASLRSeed != 0 {
		k.Regions.aslr = rand.New(rand.NewSource(cfg.ASLRSeed))
	}
	// Reserve the kernel's own region first (Fig. 1: kernel at the bottom
	// of the shared address space).
	k.KernelRegion = k.Regions.reserve(regionAlign, "kernel")
	// Mint the sealed syscall entry capability: an executable capability
	// into kernel text, sealed as a sentry. μprocesses can invoke it but
	// never inspect or retarget it.
	kcode := cap.Root(k.KernelRegion.Base, 1<<20).WithPerms(cap.PermCode)
	sentry, err := kcode.SealEntry()
	if err != nil {
		panic("kernel: cannot seal syscall entry: " + err.Error())
	}
	k.sentry = sentry
	if TrackNew != nil {
		TrackNew(k)
	}
	return k
}

// ArmMemmap attaches the memory-provenance plane to this kernel: the plane
// is reset (frame numbers restart per kernel), the shared address space's
// mutation stream is routed into it, and frame copies feed lineage. Must
// run before the simulation allocates frames — the invariant checker
// cross-checks the plane against the allocator, so a late arm would
// miscount. The telemetry server and the chaos harness both arm planes;
// production kernels leave Memmap nil and pay only nil checks.
func (k *Kernel) ArmMemmap(pl *memmap.Plane) {
	pl.Reset()
	k.Memmap = pl
	if k.SharedAS != nil {
		k.SharedAS.SetObserver(memObserver{k})
	}
	k.Mem.SetCopyObserver(func(dst, src tmem.PFN) { k.Memmap.OnCopy(dst, src) })
}

// ArmLockstat attaches a lockstat table. On BKL machines the BKL becomes a
// named metered lock and the BKL-serialized proc-table/FD-table/tmem sites
// get shadow meters that count entries and credited hold time (they have no
// lock of their own to bracket — the before yardstick). On fine-grained
// machines every real lock in the split hierarchy is metered, reusing the
// shadow meters' names ("proctable", "fdtable", "tmem") so pre-split
// baselines stay comparable in /locks and the ufork_lock_* families; the
// BKL's successor appears as the narrow "residual" lock and the new
// per-μprocess locks share a "uproc" class meter. Also arms scheduler
// statistics on the engine. Arm before the simulation runs; metering never
// mutates virtual clocks, so timelines are unchanged.
func (k *Kernel) ArmLockstat(lt *sim.LockTable) {
	lt.Reset()
	k.Locks = lt
	if k.Machine.FineGrainedLocks {
		k.locks.global.SetMeter(lt.Meter("residual", "kernel.lockPlane.global"))
		// Class meters are shared by every lock of the class (all the
		// proc-table shards; every Proc's lk/fdlk), so their waiters-high
		// watermark reads as a class-wide convoy estimate.
		shardMeter := lt.Meter("proctable", "kernel.lockPlane.shards")
		for i := range k.locks.shards {
			k.locks.shards[i].SetMeter(shardMeter)
		}
		k.locks.tmem.SetMeter(lt.Meter("tmem", "tmem.Memory"))
		k.lkUproc = lt.Meter("uproc", "kernel.Proc.lk")
		k.lkFDT = lt.Meter("fdtable", "kernel.Proc.fdlk")
		k.procMu.RLock()
		for _, p := range k.procs {
			p.lk.SetMeter(k.lkUproc)
			p.fdlk.SetMeter(k.lkFDT)
		}
		k.procMu.RUnlock()
	} else {
		k.locks.global.SetMeter(lt.Meter("bkl", "kernel.enter"))
		k.lkProc = lt.Meter("proctable", "kernel.procMu")
		k.lkFD = lt.Meter("fdtable", "kernel.FDTable")
		k.lkTmem = lt.Meter("tmem", "tmem.Memory")
	}
	if k.Eng.Sched() == nil {
		k.Eng.ArmSched(sim.NewSchedStats(k.Eng.Cores()))
	}
}

// Lockstat returns the per-lock statistics snapshot, or nil when lockstat
// was never armed.
func (k *Kernel) Lockstat() []sim.LockStat {
	if k.Locks == nil {
		return nil
	}
	return k.Locks.Snapshot()
}

// SchedSnapshot returns the scheduler telemetry snapshot, or nil when
// scheduler stats were never armed.
func (k *Kernel) SchedSnapshot() *sim.SchedSnapshot {
	s := k.Eng.Sched()
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	return &snap
}

// memObserver routes shared-address-space page-table mutations into the
// provenance plane, resolving each VPN to the μprocess whose region holds
// it. Runs on the simulation goroutine.
type memObserver struct{ k *Kernel }

// pidFor resolves a virtual page to its owning μprocess: the in-flight
// fork child first (its mappings appear before it joins the process
// table), then live processes, then zombies — a released region may be
// reused while its previous owner is still unreaped, so live wins and the
// newest zombie breaks ties.
func (o memObserver) pidFor(vpn vm.VPN) int32 {
	va := uint64(vpn) * PageSize
	k := o.k
	if c := k.forkChild; c != nil && c.Region.Contains(va) {
		return int32(c.PID)
	}
	zombie := int32(0)
	for _, p := range k.procs {
		if !p.Region.Contains(va) {
			continue
		}
		if !p.exited {
			return int32(p.PID)
		}
		if int32(p.PID) > zombie {
			zombie = int32(p.PID)
		}
	}
	return zombie
}

func (o memObserver) OnMap(vpn vm.VPN, page *vm.Page) {
	o.k.Memmap.OnMap(o.pidFor(vpn), page.PFN)
}

func (o memObserver) OnUnmap(vpn vm.VPN, page *vm.Page) {
	o.k.Memmap.OnUnmap(o.pidFor(vpn), page.PFN)
}

func (o memObserver) OnReplace(vpn vm.VPN, old, new *vm.Page) {
	pid := o.pidFor(vpn)
	o.k.Memmap.OnUnmap(pid, old.PFN)
	o.k.Memmap.OnMap(pid, new.PFN)
}

// VFS returns the kernel's file system.
func (k *Kernel) VFS() *VFS { return k.vfs }

// Procs returns the live process table (for tests and the harness, which
// inspect it only while the simulation is quiescent; live snapshots go
// through ProcStats).
func (k *Kernel) Procs() map[PID]*Proc { return k.procs }

// FindProc returns the process with the given PID.
func (k *Kernel) FindProc(pid PID) (*Proc, bool) {
	k.procMu.RLock()
	p, ok := k.procs[pid]
	k.procMu.RUnlock()
	return p, ok
}

// FindRegion maps a virtual address to its owning region, used by the
// relocation pass for capabilities that point into an ancestor μprocess.
func (k *Kernel) FindRegion(va uint64) (Region, bool) { return k.Regions.find(va) }

// ReserveRegion allocates a fresh contiguous region of the shared virtual
// address space (used by fork engines for child μprocesses).
func (k *Kernel) ReserveRegion(size uint64, name string) Region {
	return k.Regions.reserve(size, name)
}

// BKLContended reports how many acquisitions of the global serializing lock
// had to wait — the big kernel lock on BKL machines (the SMP serialization
// the paper discusses in §4.5), or the narrow residual lock once the
// hierarchy is split.
func (k *Kernel) BKLContended() uint64 { return k.locks.global.Contended() }

// Run drives the simulation to completion.
func (k *Kernel) Run() { k.Eng.Run() }

// Spawn loads a program and creates its initial μprocess, whose entry
// function starts at virtual time start.
func (k *Kernel) Spawn(spec ProgramSpec, start sim.Time, entry func(*Proc)) (*Proc, error) {
	p, err := k.load(spec)
	if err != nil {
		return nil, err
	}
	k.startProc(p, start, entry)
	return p, nil
}

// startProc attaches a sim task to a fully constructed Proc.
func (k *Kernel) startProc(p *Proc, start sim.Time, entry func(*Proc)) {
	parent := PID(0)
	if p.Parent != nil {
		parent = p.Parent.PID
	}
	if k.Flight.On() {
		k.Flight.Emit(uint64(start), int32(p.PID), flight.KindProcSpawn, uint64(parent), 0, 0)
	}
	k.Memmap.OnSpawn(int32(p.PID), int32(parent), p.Spec.Name, p.Gen)
	if obs.On() {
		k.Obs.Tracer.SetProcName(int(p.PID), fmt.Sprintf("%s[%d]", p.Spec.Name, p.PID))
	}
	p.Task = k.Eng.Go(fmt.Sprintf("%s[%d]", p.Spec.Name, p.PID), start, func(t *sim.Task) {
		defer k.reapOnReturn(p)
		if p.Parent != nil {
			k.Engine.ChildStart(k, p)
		}
		entry(p)
	})
	p.Task.SwitchCost = k.Machine.CtxSwitch
	p.Task.Tag = int32(p.PID)
	if obs.On() {
		k.Obs.Tracer.SetThreadName(int(p.PID), p.Task.ID, p.Task.Name)
	}
}

type exitPanic struct{ status int }

// reapOnReturn converts a returning (or Exit-panicking) entry function into
// process termination.
func (k *Kernel) reapOnReturn(p *Proc) {
	status := 0
	if r := recover(); r != nil {
		ep, ok := r.(exitPanic)
		if !ok {
			panic(r)
		}
		status = ep.status
	}
	k.terminate(p, status)
}

// terminate marks p as a zombie, releases its memory and descriptors, and
// wakes any waiting parent.
func (k *Kernel) terminate(p *Proc, status int) {
	if p.exited {
		return
	}
	fg := k.Machine.FineGrainedLocks
	t := p.Task
	// A traced process closes its span before teardown: the exit path's
	// lock footprint below belongs to kernel bookkeeping, not the op.
	k.causalExit(p)
	// Whether the region can be reclaimed is known before teardown starts,
	// so the residual lock can join the pre-acquired footprint below.
	releaseRegion := k.Machine.SingleAddressSpace && p.Parent != nil && p.Forked == 0
	if fg {
		// The whole exit footprint is taken before the first state change,
		// in hierarchy order: our own μprocess lock, the FD table, the tmem
		// allocator, and — when the region is reclaimable — the residual
		// global lock. Every park of the exit path therefore happens while
		// the process is still fully intact; once teardown begins (zombie
		// flag, descriptor drain, unmap, region release) it runs to
		// completion without yielding, so no concurrent audit or table
		// walker can observe the image half-gone.
		k.lockWait(p, &p.lk)
		k.lockWait(p, &p.fdlk)
		k.Mem.SetCPU(t.LastCore())
		k.lockWait(p, &k.locks.tmem)
		if releaseRegion {
			k.lockWait(p, &k.locks.global)
		}
	}
	p.exited = true
	p.exitStatus = status
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), int32(p.PID), flight.KindProcExit, uint64(status), 0, 0)
	}
	k.curPID = p.PID
	p.FDs.CloseAll(k, p)
	// Freeze the final memory footprint into the accounting gauges before
	// the image is unmapped: the reaped ProcStat snapshot then reports the
	// RSS/PSS/USS the process died with rather than zeros.
	k.refreshMemStats(p)
	// Release the μprocess memory image. Shared frames survive through
	// their reference counts; private frames are freed.
	if err := p.AS.UnmapRange(p.Region.Base, p.Region.Size); err != nil {
		panic("kernel: exit unmap: " + err.Error())
	}
	k.Memmap.OnExit(int32(p.PID))
	// Its image is gone: release the process's frame-ownership charge so
	// live /procs views and the stress-soak breakdown see exited processes
	// drop to zero instead of leaking attribution.
	p.Acct.FramesOwned.Set(0)
	// Virtual-address-space reclamation (§6 future work): the region can
	// be reused once nothing can reference it. Capabilities into a region
	// only ever flow to fork descendants (through shared pages pending
	// relocation), so a child that never forked leaves no references
	// behind; its region returns to the size-class free list. Only
	// meaningful in the single address space — the multi-AS baselines
	// give every process the same virtual range.
	if releaseRegion {
		k.Regions.release(p.Region)
	}
	if fg {
		// Teardown done: unwind the footprint innermost-first, down to our
		// own μprocess lock (released in the reparenting branches below).
		if releaseRegion {
			k.locks.global.Unlock(t)
		}
		k.locks.tmem.Unlock(t)
		p.fdlk.Unlock(t)
	}
	if p.Parent != nil && !p.Parent.exited {
		if fg {
			// Reparenting pokes the parent's state (SIGCHLD, waiter wake):
			// drop our own lock first — the parent's seq orders before ours —
			// and take the parent's.
			p.lk.Unlock(t)
			k.lockWait(p, &p.Parent.lk)
		}
		k.notifyChild(p.Parent)
		p.Parent.childExit.WakeAll(t, t.Now())
		if fg {
			p.Parent.lk.Unlock(t)
		}
	} else {
		if fg {
			p.lk.Unlock(t)
		}
		// No parent to reap us: self-reap.
		k.reap(p, p)
	}
}

// allocPID hands out the next process ID. The PID lives in kernel memory a
// μprocess cannot modify (§3.5 step 2).
func (k *Kernel) allocPID() PID {
	pid := k.next
	k.next++
	return pid
}
