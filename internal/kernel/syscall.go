package kernel

import (
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/memmap"
	"ufork/internal/sim"
)

// enter charges the user→kernel transition and the isolation-dependent
// checks, then serializes on the big kernel lock where the machine model
// requires it (§4.4, §4.5). no identifies the syscall for dispatch
// accounting, per-process counters, and tracing. bufBytes is the total
// size of user buffers the call passes by reference; under IsolationFull
// they are copied to kernel memory before use (TOCTTOU protection, §4.4
// principle 4).
func (k *Kernel) enter(p *Proc, no SysNo, bufBytes int) {
	t := p.Task
	k.Stats.Syscalls.Inc()
	p.Acct.Syscalls[no].Inc()
	p.sysNo = no
	p.sysEnter = t.Now()
	p.inSys = true
	k.curPID = p.PID
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), int32(p.PID), flight.KindSyscall, uint64(no), 0, 0)
	}
	if obs.On() {
		name := no.String()
		k.Obs.Reg.Counter("syscall." + name).Inc()
		p.sysSpan = k.Obs.Tracer.Begin(int(p.PID), p.Task.ID, name, "syscall", uint64(t.Now()))
	}
	// Pending kills and signals are delivered at kernel entry.
	k.checkKilled(p)
	k.deliverSignals(p)
	if k.Machine.TrapSyscalls {
		// Monolithic path: hardware trap into the kernel.
		t.Advance(k.Machine.SyscallEnter)
	} else {
		// SASOS path: invoke the sealed kernel entry capability. The
		// sentry check is the real mechanism, not just a cost (§4.4).
		if _, err := p.SyscallCap.InvokeSentry(); err != nil {
			panic("kernel: syscall without valid sentry: " + err.Error())
		}
		t.Advance(k.Machine.SyscallEnter)
	}
	if k.Iso >= IsolationFault {
		t.Advance(k.Machine.ArgValidate)
	}
	if k.Iso == IsolationFull && bufBytes > 0 {
		// Bounce-buffer setup plus copy-in/copy-out at memcpy bandwidth.
		// The copy is CPU work, so it occupies a core.
		t.Book(k.Machine.TocttouFixed + sim.Time(bufBytes/k.Machine.TocttouBytesPerNs) + 1)
	}
	switch {
	case k.Machine.BigKernelLock:
		// Whole-kernel serialization: every syscall takes the BKL (§4.5).
		k.lockWait(p, &k.locks.global)
	case k.Machine.FineGrainedLocks:
		// Split hierarchy: the baseline footprint is only the caller's own
		// μprocess lock — uncontended unless another process is poking this
		// one (signal, kill, exit reparenting). Syscalls that touch more
		// state bracket the wider locks themselves, in rank order.
		k.lockWait(p, &p.lk)
	default:
		t.Sync()
	}
	t.Advance(k.Machine.SyscallBase)
}

// lockWait acquires l for p, attributing any lock-wait delta the
// acquisition adds: waits on the global serializing lock (BKL or residual)
// land in Acct.BKLWaitNS, and any contended acquisition emits a
// KindLockWait flight event tagged with the in-flight syscall. On the BKL
// itself the delta is exact — it is the only lock a BKL-machine μprocess
// ever takes.
func (k *Kernel) lockWait(p *Proc, l *sim.VLock) {
	t := p.Task
	w0 := t.Delay(sim.DelayLockWait)
	l.Lock(t)
	w := t.Delay(sim.DelayLockWait) - w0
	if w == 0 {
		return
	}
	if l == &k.locks.global {
		p.Acct.BKLWaitNS.Add(uint64(w))
	}
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), int32(p.PID), flight.KindLockWait,
			uint64(w), uint64(p.sysNo), 0)
	}
	if s := k.causalSpan(p); s != nil {
		// Flush the wait into the trace under the contended site's name
		// before another lock's wait can blur into the same bucket.
		s.CheckpointAs(sim.DelayLockWait, "lock:"+causalLockSite(l), t.Now(), t.Delays())
	}
	k.profLockWait(p, l, w)
}

// chargeSwitch bills one scheduler context switch to p: register state,
// run-queue work, and — on multi-address-space machines — the page-table
// switch with its TLB/cache maintenance (§2.2). Switches occupy the CPU,
// so they are booked on a core rather than merely advancing the clock.
func (k *Kernel) chargeSwitch(p *Proc) {
	if k.Flight.On() {
		k.Flight.Emit(uint64(p.Task.Now()), int32(p.PID), flight.KindCtxSwitch,
			uint64(k.Machine.CtxSwitch), 0, 0)
	}
	if obs.On() {
		k.Obs.Tracer.Complete(int(p.PID), p.Task.ID, "ctx-switch", "sched",
			uint64(p.Task.Now()), uint64(k.Machine.CtxSwitch))
	}
	p.Task.Book(k.Machine.CtxSwitch)
	k.Stats.CtxSwitches.Inc()
}

// leave charges the kernel→user transition and releases the syscall's lock
// footprint: the BKL on BKL machines, or — on split machines — every strict
// lock the task still holds, innermost first. ReleaseAll doubles as a leak
// guard for early error returns and is idempotent, which the self-kill path
// (explicit leave, then a second via the deferred one) relies on; the legacy
// BKL Unlock tolerates the same double release, as it always has.
func (k *Kernel) leave(p *Proc) {
	if k.Machine.BigKernelLock {
		k.locks.global.Unlock(p.Task)
	} else if k.Machine.FineGrainedLocks {
		p.Task.ReleaseAll()
	}
	p.Task.Advance(k.Machine.SyscallExit)
	if k.Flight.On() {
		k.Flight.Emit(uint64(p.Task.Now()), int32(p.PID), flight.KindSysRet,
			uint64(p.sysNo), uint64(p.Task.Now()-p.sysEnter), 0)
	}
	if p.sysSpan.Active() {
		p.sysSpan.End(uint64(p.Task.Now()))
		p.sysSpan = obs.Span{}
		if obs.On() {
			k.Obs.Reg.Histogram("syscall.latency").Observe(uint64(p.Task.Now() - p.sysEnter))
		}
	}
	p.inSys = false
}

// Getpid returns the caller's process ID.
func (k *Kernel) Getpid(p *Proc) PID {
	k.enter(p, SysGetpid, 0)
	defer k.leave(p)
	return p.PID
}

// Yield gives up the CPU.
func (k *Kernel) Yield(p *Proc) {
	k.enter(p, SysYield, 0)
	k.leave(p)
	p.Task.Sync()
}

// Exit terminates the calling process with the given status. It does not
// return: the entry function unwinds via panic, recovered by the kernel.
func (k *Kernel) Exit(p *Proc, status int) {
	k.enter(p, SysExit, 0)
	k.leave(p)
	panic(exitPanic{status})
}

// Fork duplicates the calling process. childEntry runs as the child's
// continuation: Go cannot return twice from one call, so the child's
// post-fork control flow is expressed as a closure. The child observes
// only its own Proc — whose capability register file the fork engine has
// relocated (§3.5 step 2) — so transparency at the memory level is
// preserved.
func (k *Kernel) Fork(p *Proc, childEntry func(*Proc)) (PID, error) {
	k.enter(p, SysFork, 0)
	defer k.leave(p)
	if err := k.chaosErr("fork"); err != nil {
		return 0, err
	}
	k.Stats.Forks.Inc()
	p.Forked++
	p.Acct.Forks.Inc()
	forkStart := p.Task.Now()
	if k.Flight.On() {
		k.Flight.Emit(uint64(forkStart), int32(p.PID), flight.KindForkStart, 0, 0, 0)
	}

	child := &Proc{
		k:          k,
		Spec:       p.Spec,
		Layout:     p.Layout,
		Parent:     p,
		Gen:        p.Gen + 1,
		OriginBase: p.Region.Base,
		BrkPages:   p.BrkPages,
	}
	fg := k.Machine.FineGrainedLocks
	if fg {
		// PID allocation is one of the few genuinely global operations left
		// after the split: a narrow residual-lock bracket replaces the BKL.
		k.lockWait(p, &k.locks.global)
		child.PID = k.allocPID()
		k.locks.global.Unlock(p.Task)
		k.initProcLocks(child)
		// Hold the child's μprocess lock for the rest of the fork — parent
		// then child is the canonical ascending-PID pair order — so nothing
		// can poke the half-built child; leave releases it when fork
		// returns, at which point the child may run.
		k.lockWait(p, &child.lk)
		// The table shard is taken now, before the engine builds the child's
		// image, and held until the insert below. Parking between copy and
		// insert would expose a torn state — child mappings live in the
		// shared address space with their owner not yet in the table — to
		// any concurrently running audit or table walker. Every park point
		// must sit at a consistent kernel state; that contract is what makes
		// lock-free observers (and sleeps that release locks) legal.
		k.lockWait(p, k.shardFor(child.PID))
		// Route the engine's eager copies to the forking CPU's frame cache.
		k.Mem.SetCPU(p.Task.LastCore())
	} else {
		child.PID = k.allocPID()
		k.initProcLocks(child)
	}
	// While the engine runs, frames it allocates are eager fork copies
	// attributed to the child — which is not yet in the process table, so
	// the provenance plane resolves its region through forkChild.
	k.forkChild = child
	phase0 := k.memPhase
	k.memPhase = memmap.OriginEager
	stats, err := k.Engine.Fork(k, p, child)
	k.memPhase = phase0
	if err != nil {
		k.abortFork(p, child)
		k.forkChild = nil
		return 0, err
	}
	k.forkChild = nil
	// Kernel-side duplication common to every engine: descriptor table and
	// task struct (§4.5 "per-process kernel state").
	child.FDs = p.FDs.Dup()
	stats.FixupTime = sim.Time(child.FDs.Len())*k.Machine.FDDup + k.Machine.ForkFixed
	stats.Latency += stats.FixupTime
	if k.Locks != nil && !fg {
		// Shadow-lock accounting: fork walks the FD table and tmem under
		// BKL protection; credit those sections' virtual cost so lockstat
		// shows what a split lock would have to serialize. (Fine-grained
		// machines take the real locks below instead.)
		now := p.Task.Now()
		k.lkFD.Acquire(now)
		k.lkFD.ObserveHold(stats.FixupTime)
		k.lkTmem.Acquire(now)
		k.lkTmem.ObserveHold(stats.EagerCopyTime)
	}

	if fg {
		// Shard already held since before the engine copy (see above).
		k.procMu.Lock()
		k.procs[child.PID] = child
		k.procMu.Unlock()
		k.shardFor(child.PID).Unlock(p.Task)
	} else {
		k.lkProc.Acquire(p.Task.Now())
		k.procMu.Lock()
		k.procs[child.PID] = child
		k.procMu.Unlock()
	}
	p.children = append(p.children, child)

	// Fork cost attribution (§5.1): bytes physically copied and
	// capabilities relocated are charged to the forking parent; the
	// duplicated frames themselves are owned by the child.
	copiedPages := stats.PagesCopied + stats.ProactivePages
	p.Acct.ForkBytesCopied.Add(uint64(copiedPages) * PageSize)
	p.Acct.ForkCapsRelocated.Add(uint64(stats.CapsRelocated))
	child.Acct.chargeFrames(int64(copiedPages))
	child.Acct.noteBrk(child.BrkPages)
	if k.Memmap.On() {
		// The fork redrew both sides' sharing picture; refresh their smaps
		// gauges so live /procs views show the post-fork footprint.
		k.refreshMemStats(p)
		k.refreshMemStats(child)
	}

	if k.Flight.On() {
		k.Flight.Emit(uint64(forkStart+stats.Latency), int32(p.PID), flight.KindForkDone,
			uint64(child.PID), uint64(copiedPages), uint64(stats.CapsRelocated))
	}
	if obs.On() {
		// The fork span and its kernel-side fixup phase; the engine has
		// already emitted its own phase spans starting at forkStart.
		tr := k.Obs.Tracer
		pid, tid := int(p.PID), p.Task.ID
		tr.Complete(pid, tid, "fork:"+k.Engine.Name(), "fork",
			uint64(forkStart), uint64(stats.Latency),
			obs.A("child-pid", uint64(child.PID)),
			obs.A("ptes-copied", uint64(stats.PTEsCopied)),
			obs.A("pages-copied", uint64(stats.PagesCopied)),
			obs.A("caps-relocated", uint64(stats.CapsRelocated)))
		tr.Complete(pid, tid, "fd-dup+fixed", "fork",
			uint64(forkStart)+uint64(stats.Latency-stats.FixupTime), uint64(stats.FixupTime))
		k.Obs.Reg.Histogram("fork.latency." + k.Engine.Name()).Observe(uint64(stats.Latency))
		// Per-phase latency histograms: the §6-style breakdown the
		// telemetry server exports as fork_phase_* on /metrics.
		reg := k.Obs.Reg
		reg.Histogram("fork.phase.reserve").Observe(uint64(stats.ReserveTime))
		reg.Histogram("fork.phase.ptecopy").Observe(uint64(stats.PTECopyTime))
		reg.Histogram("fork.phase.eagercopy").Observe(uint64(stats.EagerCopyTime))
		reg.Histogram("fork.phase.scan").Observe(uint64(stats.ScanTime))
		reg.Histogram("fork.phase.reg").Observe(uint64(stats.RegTime))
		reg.Histogram("fork.phase.fixup").Observe(uint64(stats.FixupTime))
	}

	// The fork call's latency is charged to the parent; the child begins
	// at the moment fork completes, exactly like the paper's latency
	// metric ("time needed for the fork call to complete", §5.1). On split
	// machines the charge is bracketed by the locks that own each phase —
	// the memory-side work (reserve/PTE-copy/eager-copy/scan) under the
	// tmem allocator lock, descriptor duplication and the fixed fixup under
	// the parent's FD-table lock — so lockstat hold times show what each
	// subsystem actually serializes. The total advanced is identical.
	if fg {
		k.lockWait(p, &k.locks.tmem)
		k.forkMemAdvance(p, stats)
		k.locks.tmem.Unlock(p.Task)
		k.lockWait(p, &p.fdlk)
		k.forkFixupAdvance(p, stats)
		p.fdlk.Unlock(p.Task)
	} else {
		k.forkMemAdvance(p, stats)
		k.forkFixupAdvance(p, stats)
	}
	p.LastFork = stats
	k.startProc(child, p.Task.Now(), childEntry)
	k.causalFork(p, child, p.Task.Now())
	return child.PID, nil
}

// abortFork unwinds a half-constructed child after the fork engine failed
// partway (e.g. frame exhaustion mid-copy): every page the engine managed
// to map is unmapped — dropping references so shared frames return to the
// parent and fresh copies are freed — and an unused single-AS region goes
// back to the free list. A failed fork must leak neither frames nor
// address space; the invariant checker audits exactly this under injected
// allocation exhaustion.
func (k *Kernel) abortFork(p, child *Proc) {
	fg := k.Machine.FineGrainedLocks
	if child.AS != nil && child.Region.Size > 0 {
		// The unmap runs without the allocator lock even on split machines:
		// parking here would leave the half-built child's mappings visible
		// with no owner anywhere (it never reached the process table), a torn
		// state a concurrent audit would flag. The teardown is host-atomic,
		// and the freed frames return through the forking CPU's cache, which
		// needs no lock.
		if err := child.AS.UnmapRange(child.Region.Base, child.Region.Size); err != nil {
			panic("kernel: fork abort unmap: " + err.Error())
		}
	}
	if k.Machine.SingleAddressSpace && child.Region.Size > 0 && child.Region.Base != p.Region.Base {
		// Post-unmap the state is consistent again (the region is merely
		// still reserved), so the residual-lock park is safe.
		if fg {
			k.lockWait(p, &k.locks.global)
		}
		k.Regions.release(child.Region)
		if fg {
			k.locks.global.Unlock(p.Task)
		}
	}
	// The child never existed: no capability can reference its region, so
	// the parent's fork count (which gates region reuse at exit) rolls back.
	p.Forked--
}

// Wait blocks until one child has exited, reaps it, and returns its PID
// and exit status.
func (k *Kernel) Wait(p *Proc) (PID, int, error) {
	k.enter(p, SysWait, 0)
	defer k.leave(p)
	if err := k.chaosErr("wait"); err != nil {
		return 0, 0, err
	}
	for {
		if len(p.children) == 0 {
			return 0, 0, ErrNoChildren
		}
		for i, c := range p.children {
			if c.exited {
				p.children = append(p.children[:i], p.children[i+1:]...)
				k.reap(c, p)
				return c.PID, c.exitStatus, nil
			}
		}
		p.Acct.BlockChildNS.Add(uint64(blockAccounted(p, "block:child", func() {
			p.childExit.Wait(p.Task)
		})))
	}
}

// fdGet, fdInstall and fdClose are the descriptor-table access paths for
// syscalls: on fine-grained machines they bracket the owning process's
// FD-table lock (rank fdtable, above the μprocess lock enter already
// holds); on BKL machines they are plain table operations under the BKL.
// The brackets are narrow — lookup or slot assignment only — so the
// "fdtable" lockstat row measures real table serialization, not I/O.
func (k *Kernel) fdGet(p *Proc, fd int) (*OpenFile, error) {
	if !k.Machine.FineGrainedLocks {
		return p.FDs.Get(fd)
	}
	k.lockWait(p, &p.fdlk)
	of, err := p.FDs.Get(fd)
	p.fdlk.Unlock(p.Task)
	return of, err
}

func (k *Kernel) fdInstall(p *Proc, of *OpenFile) int {
	if !k.Machine.FineGrainedLocks {
		return p.FDs.Install(of)
	}
	k.lockWait(p, &p.fdlk)
	fd := p.FDs.Install(of)
	p.fdlk.Unlock(p.Task)
	return fd
}

func (k *Kernel) fdClose(p *Proc, fd int) error {
	if !k.Machine.FineGrainedLocks {
		return p.FDs.Close(k, p, fd)
	}
	k.lockWait(p, &p.fdlk)
	err := p.FDs.Close(k, p, fd)
	p.fdlk.Unlock(p.Task)
	return err
}

// Open opens (or with create, creates) a ram-disk file.
func (k *Kernel) Open(p *Proc, name string, create bool) (int, error) {
	k.enter(p, SysOpen, len(name))
	defer k.leave(p)
	if err := k.chaosErr("open"); err != nil {
		return -1, err
	}
	ino, ok := k.vfs.Lookup(name)
	if !ok {
		if !create {
			return -1, fmt.Errorf("%w: %s", ErrNoEnt, name)
		}
		ino = k.vfs.Create(name)
	} else if create {
		ino.Data = nil // truncate
	}
	return k.fdInstall(p, &OpenFile{File: &regularFile{ino: ino}}), nil
}

// Close closes a descriptor.
func (k *Kernel) Close(p *Proc, fd int) error {
	k.enter(p, SysClose, 0)
	defer k.leave(p)
	return k.fdClose(p, fd)
}

// Write writes buf to fd. The data crosses the user/kernel boundary, so
// under IsolationFull it is TOCTTOU-copied first (cost charged by enter).
func (k *Kernel) Write(p *Proc, fd int, buf []byte) (int, error) {
	k.enter(p, SysWrite, len(buf))
	defer k.leave(p)
	if err := k.chaosErr("write"); err != nil {
		return 0, err
	}
	of, err := k.fdGet(p, fd)
	if err != nil {
		return 0, err
	}
	if rf, ok := of.File.(*regularFile); ok {
		n := rf.writeAt(k, p, of.Offset, buf)
		of.Offset += uint64(n)
		return n, nil
	}
	return of.File.Write(k, p, buf)
}

// Read reads up to len(buf) bytes from fd.
func (k *Kernel) Read(p *Proc, fd int, buf []byte) (int, error) {
	k.enter(p, SysRead, len(buf))
	defer k.leave(p)
	if err := k.chaosErr("read"); err != nil {
		return 0, err
	}
	of, err := k.fdGet(p, fd)
	if err != nil {
		return 0, err
	}
	if rf, ok := of.File.(*regularFile); ok {
		n := rf.readAt(k, p, of.Offset, buf)
		of.Offset += uint64(n)
		return n, nil
	}
	return of.File.Read(k, p, buf)
}

// WriteVM writes n bytes from user memory (through capability c) to fd:
// the common write(fd, ptr, n) shape. The kernel performs the copy-in
// itself, so the data actually flows through simulated memory.
func (k *Kernel) WriteVM(p *Proc, fd int, c cap.Capability, off, n uint64) (int, error) {
	buf := make([]byte, n)
	if err := p.Load(c, off, buf); err != nil {
		return 0, err
	}
	return k.Write(p, fd, buf)
}

// ReadVM reads up to n bytes from fd into user memory at capability c.
func (k *Kernel) ReadVM(p *Proc, fd int, c cap.Capability, off, n uint64) (int, error) {
	buf := make([]byte, n)
	got, err := k.Read(p, fd, buf)
	if err != nil {
		return 0, err
	}
	if got > 0 {
		if err := p.Store(c, off, buf[:got]); err != nil {
			return 0, err
		}
	}
	return got, nil
}

// Fsync flushes a file to stable storage: the fixed finalisation cost of
// a snapshot (temp-file rename, metadata flush).
func (k *Kernel) Fsync(p *Proc, fd int) error {
	k.enter(p, SysFsync, 0)
	defer k.leave(p)
	if _, err := k.fdGet(p, fd); err != nil {
		return err
	}
	p.Task.Advance(k.Machine.FSSync)
	return nil
}

// Pipe creates a pipe and returns (readFD, writeFD).
func (k *Kernel) Pipe(p *Proc) (int, int, error) {
	k.enter(p, SysPipe, 0)
	defer k.leave(p)
	if err := k.chaosErr("pipe"); err != nil {
		return -1, -1, err
	}
	r, w := NewPipe()
	rfd := k.fdInstall(p, &OpenFile{File: r})
	wfd := k.fdInstall(p, &OpenFile{File: w})
	return rfd, wfd, nil
}

// Listen creates a listening socket and returns its descriptor plus the
// listener handle (the workload driver uses the handle to inject
// connections).
func (k *Kernel) Listen(p *Proc) (int, *Listener) {
	k.enter(p, SysListen, 0)
	defer k.leave(p)
	l := NewListener()
	fd := k.fdInstall(p, &OpenFile{File: l})
	return fd, l
}

// Accept blocks until a connection arrives on the listening descriptor.
func (k *Kernel) Accept(p *Proc, fd int) (int, error) {
	k.enter(p, SysAccept, 0)
	defer k.leave(p)
	of, err := k.fdGet(p, fd)
	if err != nil {
		return -1, err
	}
	l, ok := of.File.(*Listener)
	if !ok {
		return -1, ErrNotSocket
	}
	conn, err := l.Accept(p)
	if err != nil {
		return -1, err
	}
	return k.fdInstall(p, &OpenFile{File: conn}), nil
}

// Sbrk grows the heap watermark by n pages. On the statically heaped
// μprocess this only moves a bound; the monolithic baseline demand-pages,
// so the accounting matters there.
func (k *Kernel) Sbrk(p *Proc, pages int) error {
	k.enter(p, SysSbrk, 0)
	defer k.leave(p)
	if err := k.chaosErr("sbrk"); err != nil {
		return err
	}
	if p.BrkPages+pages > p.Layout.Pages[SegHeap] {
		return fmt.Errorf("kernel: sbrk beyond static heap (%d + %d > %d)",
			p.BrkPages, pages, p.Layout.Pages[SegHeap])
	}
	p.BrkPages += pages
	p.Acct.noteBrk(p.BrkPages)
	return nil
}
