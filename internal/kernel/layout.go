package kernel

import (
	"fmt"

	"ufork/internal/cap"
	"ufork/internal/obs/memmap"
	"ufork/internal/vm"
)

// PageSize re-exports the system page size.
const PageSize = vm.PageSize

// Segment names one part of a μprocess memory image (Fig. 1).
type Segment int

const (
	// SegText is position-independent code.
	SegText Segment = iota
	// SegRodata is read-only data.
	SegRodata
	// SegGOT is the global offset table: capabilities to globals and
	// functions, copied and rewritten proactively at fork (§3.7).
	SegGOT
	// SegData is initialised read-write data.
	SegData
	// SegAllocMeta holds memory-allocator metadata, also proactively
	// copied at fork (§3.5 step 1).
	SegAllocMeta
	// SegHeap is the statically sized private heap (§4.2).
	SegHeap
	// SegStack is the μprocess stack.
	SegStack
	// SegTLS is thread-local storage.
	SegTLS
	// SegRuntime models the per-process runtime footprint a monolithic OS
	// adds (dynamic linker, private shared-library pages, allocator
	// arenas); empty on μFork.
	SegRuntime
	// SegOSImage models the unikernel OS image cloned along with the
	// application by the VM-cloning baseline; empty elsewhere.
	SegOSImage
	numSegments
)

func (s Segment) String() string {
	names := [...]string{"text", "rodata", "got", "data", "allocmeta",
		"heap", "stack", "tls", "runtime", "osimage"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("seg(%d)", int(s))
}

// NaturalProt returns the protection a segment's pages carry when private.
func (s Segment) NaturalProt() vm.Prot {
	switch s {
	case SegText:
		return vm.ProtRX
	case SegRodata, SegGOT:
		return vm.ProtRead
	default:
		return vm.ProtRW
	}
}

// ProgramSpec describes a program image: how many pages each segment
// occupies and how many GOT entries the program uses. Sizes are chosen per
// workload and recorded with each experiment.
type ProgramSpec struct {
	Name string
	// Pages per segment.
	TextPages      int
	RodataPages    int
	GOTPages       int
	DataPages      int
	AllocMetaPages int
	HeapPages      int
	StackPages     int
	TLSPages       int

	// GOTEntries is the number of populated GOT capabilities.
	GOTEntries int
	// RodataCapsPerPage seeds read-only data pages with this many
	// capabilities each (static pointer tables); they exercise the
	// CoPA read-side relocation path.
	RodataCapsPerPage int
}

// HelloWorldSpec is the minimal C program used by the Fig. 8
// microbenchmark. Sizes follow a small static busybox-style binary.
func HelloWorldSpec() ProgramSpec {
	return ProgramSpec{
		Name:      "hello",
		TextPages: 16, RodataPages: 4, GOTPages: 4, DataPages: 8,
		AllocMetaPages: 8, HeapPages: 64, StackPages: 16, TLSPages: 1,
		GOTEntries: 96, RodataCapsPerPage: 0,
	}
}

// Layout is a resolved ProgramSpec: per-segment offsets within the
// μprocess region.
type Layout struct {
	Spec    ProgramSpec
	Offsets [numSegments]uint64 // byte offset of each segment in the region
	Pages   [numSegments]int
	Total   int // total pages
}

// BuildLayout resolves a spec into segment offsets. extraRuntime and
// osImage are machine-model additions (zero on μFork).
func BuildLayout(spec ProgramSpec, extraRuntimePages, osImagePages int) Layout {
	var l Layout
	l.Spec = spec
	l.Pages[SegText] = spec.TextPages
	l.Pages[SegRodata] = spec.RodataPages
	l.Pages[SegGOT] = spec.GOTPages
	l.Pages[SegData] = spec.DataPages
	l.Pages[SegAllocMeta] = spec.AllocMetaPages
	l.Pages[SegHeap] = spec.HeapPages
	l.Pages[SegStack] = spec.StackPages
	l.Pages[SegTLS] = spec.TLSPages
	l.Pages[SegRuntime] = extraRuntimePages
	l.Pages[SegOSImage] = osImagePages
	off := uint64(0)
	for s := Segment(0); s < numSegments; s++ {
		segLen := uint64(l.Pages[s]) * PageSize
		// Segment capabilities must be representable in the compressed
		// bounds encoding: align each segment's offset (region bases are
		// already strongly aligned) and pad its length.
		if segLen > 0 {
			align := cap.RepresentableAlign(segLen)
			if rem := off % align; rem != 0 {
				pad := align - rem
				off += pad
				l.Total += int(pad / PageSize)
			}
			rounded := cap.RepresentableLength(segLen)
			l.Pages[s] = int(rounded / PageSize)
		}
		l.Offsets[s] = off
		off += uint64(l.Pages[s]) * PageSize
		l.Total += l.Pages[s]
	}
	return l
}

// SegmentOf returns the segment containing the region offset, or false
// when the offset is past the image.
func (l Layout) SegmentOf(off uint64) (Segment, bool) {
	for s := numSegments - 1; s >= 0; s-- {
		if l.Pages[s] > 0 && off >= l.Offsets[s] {
			return s, off < l.Offsets[s]+uint64(l.Pages[s])*PageSize
		}
	}
	return 0, false
}

// Bytes returns the image size in bytes.
func (l Layout) Bytes() uint64 { return uint64(l.Total) * PageSize }

// SegBase returns the virtual address of a segment given the region base.
func (l Layout) SegBase(regionBase uint64, s Segment) uint64 {
	return regionBase + l.Offsets[s]
}

// SegLen returns the byte length of a segment.
func (l Layout) SegLen(s Segment) uint64 { return uint64(l.Pages[s]) * PageSize }

// load maps a fresh program image and returns its initial Proc.
func (k *Kernel) load(spec ProgramSpec) (*Proc, error) {
	layout := BuildLayout(spec, k.Machine.RuntimeImagePages, k.Machine.VMImagePages)
	region := k.Regions.reserve(layout.Bytes(), spec.Name)

	as := k.SharedAS
	if as == nil {
		as = vm.NewAddressSpace(k.Mem)
	}

	p := &Proc{
		k:      k,
		PID:    k.allocPID(),
		Spec:   spec,
		Layout: layout,
		AS:     as,
		Region: region,
		FDs:    NewFDTable(),
	}
	k.initProcLocks(p)
	k.procMu.Lock()
	k.procs[p.PID] = p
	k.procMu.Unlock()
	k.curPID = p.PID

	// Map every segment. The heap is mapped eagerly on unikernel machines
	// (μFork's build-time static heap, §4.2) and demand-paged on the
	// monolithic baseline, whose fault handler maps heap pages on first
	// touch.
	imagePages := 0
	phase0 := k.memPhase
	k.memPhase = memmap.OriginImage
	for s := Segment(0); s < numSegments; s++ {
		if s == SegHeap && k.Machine.DemandPagedHeap {
			continue
		}
		base := layout.SegBase(region.Base, s)
		for i := 0; i < layout.Pages[s]; i++ {
			va := base + uint64(i)*PageSize
			if _, err := as.MapNew(vm.VPNOf(va), s.NaturalProt()); err != nil {
				k.memPhase = phase0
				return nil, fmt.Errorf("kernel: load %s %v page %d: %w", spec.Name, s, i, err)
			}
			imagePages++
		}
	}
	k.memPhase = phase0
	p.Acct.chargeFrames(int64(imagePages))

	p.initCaps()
	if err := k.populateGOT(p); err != nil {
		return nil, err
	}
	if err := k.seedRodataCaps(p); err != nil {
		return nil, err
	}
	// Standard descriptors 0/1/2 on the console.
	for fd := 0; fd < 3; fd++ {
		p.FDs.Install(&OpenFile{File: &Console{}})
	}
	return p, nil
}

// initCaps builds the μprocess capability register file: DDC bounded to
// the region (the key security invariant of §4.2), PCC over text, stack
// and heap capabilities, and the sealed syscall entry capability.
func (p *Proc) initCaps() {
	k := p.k
	var ddc cap.Capability
	if k.Iso == IsolationNone {
		// Isolation disabled: capabilities span all of memory (R4).
		ddc = cap.Root(0, ^uint64(0)).WithPerms(cap.PermData)
	} else {
		ddc = cap.Root(p.Region.Base, p.Region.Size).WithPerms(cap.PermData)
	}
	p.DDC = ddc
	p.PCC = cap.Root(p.Layout.SegBase(p.Region.Base, SegText), p.Layout.SegLen(SegText)).
		WithPerms(cap.PermCode)
	p.StackCap = deriveSeg(ddc, p, SegStack)
	p.HeapCap = deriveSeg(ddc, p, SegHeap)
	p.GOTCap = deriveSeg(ddc, p, SegGOT).WithPerms(cap.PermRO)
	p.MetaCap = deriveSeg(ddc, p, SegAllocMeta)
	p.DataCap = deriveSeg(ddc, p, SegData)
	p.TLSCap = deriveSeg(ddc, p, SegTLS)
	p.SyscallCap = k.sentry
	p.Regs = [NumRegs]cap.Capability{}
}

// deriveSeg derives a data capability covering one segment from the DDC.
func deriveSeg(ddc cap.Capability, p *Proc, s Segment) cap.Capability {
	base := p.Layout.SegBase(p.Region.Base, s)
	c, err := ddc.SetAddr(base).SetBounds(p.Layout.SegLen(s))
	if err != nil {
		panic(fmt.Sprintf("kernel: derive %v cap: %v", s, err))
	}
	return c
}

// populateGOT writes the program's GOT: capabilities to globals (data
// segment) and functions (text segment). PIC loads globals through these
// entries, which is why fork must rewrite them eagerly (§3.7).
func (k *Kernel) populateGOT(p *Proc) error {
	dataBase := p.Layout.SegBase(p.Region.Base, SegData)
	textBase := p.Layout.SegBase(p.Region.Base, SegText)
	gotBase := p.Layout.SegBase(p.Region.Base, SegGOT)
	maxEntries := int(p.Layout.SegLen(SegGOT)) / cap.GranuleSize
	n := p.Spec.GOTEntries
	if n > maxEntries {
		n = maxEntries
	}
	for i := 0; i < n; i++ {
		var target cap.Capability
		if i%3 == 2 && p.Layout.Pages[SegText] > 0 {
			// Every third entry is a function pointer.
			off := uint64(i*64) % p.Layout.SegLen(SegText)
			target = p.PCC.SetAddr(textBase + off)
		} else {
			off := uint64(i*64) % p.Layout.SegLen(SegData)
			c, err := p.DataCap.SetAddr(dataBase + off).SetBounds(64)
			if err != nil {
				return err
			}
			target = c
		}
		va := gotBase + uint64(i)*cap.GranuleSize
		if err := k.storeCapPhys(p.AS, va, target); err != nil {
			return err
		}
	}
	return nil
}

// seedRodataCaps plants static pointer tables in read-only data.
func (k *Kernel) seedRodataCaps(p *Proc) error {
	per := p.Spec.RodataCapsPerPage
	if per == 0 {
		return nil
	}
	roBase := p.Layout.SegBase(p.Region.Base, SegRodata)
	dataBase := p.Layout.SegBase(p.Region.Base, SegData)
	for pg := 0; pg < p.Layout.Pages[SegRodata]; pg++ {
		for i := 0; i < per && i*cap.GranuleSize < PageSize; i++ {
			va := roBase + uint64(pg)*PageSize + uint64(i)*cap.GranuleSize
			tgt, err := p.DataCap.SetAddr(dataBase + uint64((pg*per+i)*32)%p.Layout.SegLen(SegData)).SetBounds(32)
			if err != nil {
				return err
			}
			if err := k.storeCapPhys(p.AS, va, tgt); err != nil {
				return err
			}
		}
	}
	return nil
}

// storeCapPhys writes a capability at va bypassing protection (kernel
// loader privilege).
func (k *Kernel) storeCapPhys(as *vm.AddressSpace, va uint64, c cap.Capability) error {
	pte := as.Lookup(vm.VPNOf(va))
	if pte == nil {
		return fmt.Errorf("kernel: storeCapPhys at unmapped %#x", va)
	}
	return k.Mem.StoreCap(pte.Page.PFN, vm.PageOff(va), c)
}
