package kernel

import (
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/sim"
)

// This file is the kernel side of the causal trace-context plane
// (internal/obs/causal): origins mint a trace on a μprocess, the kernel
// carries it across fork, pipe, and signal boundaries, and the delay
// hooks in the syscall/fault/block paths flush critical-path segments.
// Every hook is gated on a nil span check, so an untraced kernel pays
// one pointer compare per site; none of them ever advances a virtual
// clock, so arming the plane leaves timelines byte-identical.

// ArmCausal attaches the trace-context plane to this kernel. Unlike
// memmap, the plane is not reset per kernel: trace IDs are plane-global
// and exemplar groups deliberately accumulate across the many kernels a
// bench sweep boots, so /traces shows the whole run.
func (k *Kernel) ArmCausal(pl *causal.Plane) { k.Causal = pl }

// causalSpan returns p's live causal span, lazily clearing one whose
// trace already finished (an adopted span goes stale the moment its
// origin closes the trace). Nil when the process is untraced — the one
// check every disabled-path hook pays.
func (k *Kernel) causalSpan(p *Proc) *causal.Span {
	s := p.cspan
	if s == nil {
		return nil
	}
	if s.Dead() {
		p.cspan = nil
		return nil
	}
	return s
}

// TraceBegin mints a causal trace rooted at p for one op: the request
// origins (a YCSB op issue, an httpd driver request, a kvstore BGSAVE
// cycle, a chaos program step) call this at the instant they start
// measuring latency. group buckets the exemplar reservoir (one group
// per YCSB cell or stress window). A live adopted span is superseded —
// a fresh origin on this μprocess always wins.
func (k *Kernel) TraceBegin(p *Proc, group, name string) {
	if !k.Causal.On() {
		return
	}
	p.cspan = nil
	t := p.Task
	s := k.Causal.Begin(group, name, int32(p.PID), p.Spec.Name, t.Now(), t.Delays())
	if s == nil {
		return
	}
	p.cspan = s
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), int32(p.PID), flight.KindTraceStart, uint64(s.Trace()), 0, 0)
	}
}

// TraceEnd finishes the trace rooted at p at the instant the origin
// stops measuring: the root span's final checkpoint lands here, so its
// segments sum exactly to the op's recorded virtual-time latency. A
// non-root (adopted) span is left to its origin; calling TraceEnd on an
// untraced process is a no-op.
func (k *Kernel) TraceEnd(p *Proc) {
	s := k.causalSpan(p)
	if s == nil || !s.Root() {
		return
	}
	t := p.Task
	id, start := uint64(s.Trace()), s.Start
	s.Checkpoint(t.Now(), t.Delays())
	k.Causal.Close(s, t.Now())
	p.cspan = nil
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), int32(p.PID), flight.KindTraceEnd, id, uint64(t.Now()-start), 0)
	}
}

// causalExit closes p's span as the process terminates: a root dying
// here finishes its trace (the op ended with the process); a member
// span freezes where it stands, leaving the trace to its origin.
func (k *Kernel) causalExit(p *Proc) {
	s := k.causalSpan(p)
	if s == nil {
		return
	}
	t := p.Task
	s.Checkpoint(t.Now(), t.Delays())
	k.Causal.Close(s, t.Now())
	p.cspan = nil
}

// causalFork joins a newly forked child to the parent's live trace with
// a fork edge — the parent→child causality μFork's deferred-copy claim
// makes load-bearing: the child's fault-service segments are the fork
// cost the parent's op deferred.
func (k *Kernel) causalFork(p, child *Proc, at sim.Time) {
	s := k.causalSpan(p)
	if s == nil {
		return
	}
	cs := k.Causal.Join(s, causal.EdgeFork, int32(child.PID), child.Spec.Name, at, child.Task.Delays())
	if cs == nil {
		return
	}
	child.cspan = cs
	if k.Flight.On() {
		k.Flight.Emit(uint64(at), int32(p.PID), flight.KindTraceEdge,
			uint64(s.Trace()), uint64(causal.EdgeFork), uint64(child.PID))
	}
}

// causalAdopt joins p to the live trace a pipe stamp or signal carried,
// recording the writer→reader (or sender→target) edge. A process with a
// live span of its own never adopts — the op already in flight owns it.
func (k *Kernel) causalAdopt(p *Proc, kind causal.EdgeKind, id causal.TraceID, fromPID int32) {
	if id == 0 || !k.Causal.On() || k.causalSpan(p) != nil {
		return
	}
	t := p.Task
	s := k.Causal.Adopt(id, kind, fromPID, int32(p.PID), p.Spec.Name, t.Now(), t.Delays())
	if s == nil {
		return
	}
	p.cspan = s
	if k.Flight.On() {
		k.Flight.Emit(uint64(t.Now()), fromPID, flight.KindTraceEdge,
			uint64(id), uint64(kind), uint64(p.PID))
	}
}

// causalLockSite names a contended lock for its "lock:<site>" segment
// label: the lock's own name from the split hierarchy, or "bkl" for the
// legacy zero-value global lock BKL machines never Init.
func causalLockSite(l *sim.VLock) string {
	if n := l.Name(); n != "" {
		return n
	}
	return "bkl"
}
