package kernel_test

// Frame-leak regression guard: tmem keeps a process-wide live-frame
// counter (allocations minus frees, across every Memory instance the
// package's tests create). Every kernel test lets its simulation run to
// completion and every μprocess exit, so by the end of the package run
// the counter must balance to exactly zero — any residue is a leaked
// frame on some path (an aborted fork, an error-path unwind, a terminate
// that skipped a page).

import (
	"fmt"
	"os"
	"testing"

	"ufork/internal/tmem"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if n := tmem.LiveFrames(); code == 0 && n != 0 {
		fmt.Fprintf(os.Stderr, "FRAME LEAK: %d frames still allocated after all kernel tests\n", n)
		code = 1
	}
	os.Exit(code)
}
