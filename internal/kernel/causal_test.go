package kernel_test

import (
	"strings"
	"testing"

	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
)

// tracedKernel boots a kernel with an armed causal plane.
func tracedKernel(cores int) (*kernel.Kernel, *causal.Plane) {
	k := newKernel(cores, kernel.IsolationFull)
	pl := causal.New(0)
	pl.Enable()
	k.ArmCausal(pl)
	return k, pl
}

// rootOf returns the finished trace's root span JSON from a snapshot.
func rootOf(t *testing.T, tr causal.TraceJSON) causal.SpanJSON {
	t.Helper()
	for _, s := range tr.Spans {
		if s.Root {
			return s
		}
	}
	t.Fatal("trace has no root span")
	return causal.SpanJSON{}
}

// TestTraceSpansForkExactSum is the acceptance-shaped scenario: one traced
// op forks a child that dirties CoW memory, waits, and ends. The finished
// exemplar must carry the fork edge and a root span whose causal segments
// sum to the op's virtual-time latency exactly.
func TestTraceSpansForkExactSum(t *testing.T) {
	k, pl := tracedKernel(2)
	var opStart, opEnd uint64
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		k.TraceBegin(p, "kernel-test", "fork-op")
		opStart = uint64(p.Task.Now())
		p.Compute(2000)
		if _, err := k.Fork(p, func(c *kernel.Proc) {
			// Dirty heap pages so the child services deferred-copy faults
			// inside the trace window.
			for i := 0; i < 8; i++ {
				if err := c.StoreU64(c.HeapCap, uint64(i)*4096, uint64(i)); err != nil {
					t.Errorf("child store: %v", err)
				}
			}
			c.Compute(1000)
			k.Exit(c, 0)
		}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		opEnd = uint64(p.Task.Now())
		k.TraceEnd(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	snap := pl.Snapshot(0)
	if snap.Started != 1 || snap.Finished != 1 || snap.Exemplars != 1 {
		t.Fatalf("plane counters started=%d finished=%d exemplars=%d, want 1/1/1",
			snap.Started, snap.Finished, snap.Exemplars)
	}
	tr := snap.Groups[0].Traces[0]
	if tr.DurNS != opEnd-opStart {
		t.Fatalf("trace dur %d != measured op latency %d", tr.DurNS, opEnd-opStart)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want root + forked child", len(tr.Spans))
	}
	if len(tr.Edges) != 1 || tr.Edges[0].Kind != "fork" {
		t.Fatalf("edges = %+v, want one fork edge", tr.Edges)
	}

	root := rootOf(t, tr)
	var sum uint64
	labels := map[string]bool{}
	for _, seg := range root.Segs {
		sum += seg.DurNS
		labels[seg.Label] = true
	}
	if sum != tr.DurNS {
		t.Fatalf("root segments sum to %d, want exactly the op latency %d (segs %v)",
			sum, tr.DurNS, root.Segs)
	}
	if len(labels) < 2 {
		t.Fatalf("root span shows only %v — want distinct causal classes (run + block/wait)", labels)
	}
	if !labels["block:child"] {
		t.Fatalf("wait-for-child time not attributed as block:child: %v", root.Segs)
	}

	// The child span must show fault-service segments labelled with a copy
	// mode: the fork cost the parent's op deferred.
	var childFault bool
	for _, s := range tr.Spans {
		if s.Root {
			continue
		}
		for _, seg := range s.Segs {
			if strings.HasPrefix(seg.Label, "fault:") {
				childFault = true
			}
		}
	}
	if !childFault {
		t.Fatalf("child span has no fault:<mode> segment: %+v", tr.Spans)
	}
}

// TestTracePipeAdoption verifies a reader with no op of its own joins the
// writer's trace via the pipe stamp.
func TestTracePipeAdoption(t *testing.T) {
	k, pl := tracedKernel(2)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		// Fork before tracing: the child has no span and must adopt.
		if _, err := k.Fork(p, func(c *kernel.Proc) {
			if _, err := k.Read(c, rfd, make([]byte, 8)); err != nil {
				t.Errorf("child read: %v", err)
			}
			c.Compute(500)
			k.Exit(c, 0)
		}); err != nil {
			t.Fatal(err)
		}
		k.TraceBegin(p, "kernel-test", "pipe-op")
		if _, err := k.Write(p, wfd, []byte("payload!")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		k.TraceEnd(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	snap := pl.Snapshot(0)
	if snap.Finished != 1 {
		t.Fatalf("finished = %d, want 1", snap.Finished)
	}
	tr := snap.Groups[0].Traces[0]
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want writer + adopted reader", len(tr.Spans))
	}
	if len(tr.Edges) != 1 || tr.Edges[0].Kind != "pipe" {
		t.Fatalf("edges = %+v, want one pipe edge", tr.Edges)
	}
	if tr.Edges[0].FromPID == tr.Edges[0].ToPID {
		t.Fatalf("pipe edge is a self-loop: %+v", tr.Edges[0])
	}
}

// TestTraceSignalAdoption verifies signal delivery carries the sender's
// trace: a target with no op in flight joins with a signal edge.
func TestTraceSignalAdoption(t *testing.T) {
	k, pl := tracedKernel(2)
	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Fatal(err)
		}
		pid, err := k.Fork(p, func(c *kernel.Proc) {
			got := kernel.Signal(0)
			if err := k.Sigaction(c, kernel.SIGUSR1, func(cp *kernel.Proc, s kernel.Signal) {
				got = s
			}); err != nil {
				t.Errorf("sigaction: %v", err)
				return
			}
			if _, err := k.Write(c, wfd, []byte{1}); err != nil {
				return
			}
			for i := 0; i < 1000 && got == 0; i++ {
				k.Getpid(c)
				c.Compute(500)
			}
			k.Exit(c, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Read(p, rfd, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		k.TraceBegin(p, "kernel-test", "signal-op")
		if err := k.SignalPID(p, pid, kernel.SIGUSR1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		k.TraceEnd(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	snap := pl.Snapshot(0)
	if snap.Finished != 1 {
		t.Fatalf("finished = %d, want 1", snap.Finished)
	}
	tr := snap.Groups[0].Traces[0]
	var sig bool
	for _, e := range tr.Edges {
		if e.Kind == "signal" {
			sig = true
		}
	}
	if !sig {
		t.Fatalf("no signal edge in %+v", tr.Edges)
	}
}

// TestTraceFlightEvents verifies the flight recorder sees the new trace
// kinds with decodable payloads when both planes are armed.
func TestTraceFlightEvents(t *testing.T) {
	rec := flight.New(flight.DefaultShards, 4096)
	rec.Enable()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
		Flight:    rec,
	})
	pl := causal.New(0)
	pl.Enable()
	k.ArmCausal(pl)

	_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		k.TraceBegin(p, "kernel-test", "flight-op")
		if _, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) }); err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		k.TraceEnd(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()

	kinds := map[flight.Kind]int{}
	for _, ev := range rec.Snapshot() {
		kinds[ev.Kind]++
		// Format must render every trace kind without panicking.
		if ev.Kind == flight.KindTraceStart || ev.Kind == flight.KindTraceEdge || ev.Kind == flight.KindTraceEnd {
			if s := ev.Format(); !strings.Contains(s, "id=") {
				t.Errorf("unformatted trace event: %q", s)
			}
		}
	}
	if kinds[flight.KindTraceStart] != 1 || kinds[flight.KindTraceEdge] != 1 || kinds[flight.KindTraceEnd] != 1 {
		t.Fatalf("trace event kinds = %v, want one each of start/edge/end", kinds)
	}
}

// TestUntracedKernelUnaffected pins virtual-time invariance: the same
// workload with and without an armed plane finishes at the identical
// virtual instant — tracing never advances a clock.
func TestUntracedKernelUnaffected(t *testing.T) {
	run := func(arm bool) uint64 {
		k := newKernel(2, kernel.IsolationFull)
		if arm {
			pl := causal.New(0)
			pl.Enable()
			k.ArmCausal(pl)
		}
		var end uint64
		_, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
			k.TraceBegin(p, "inv", "op")
			p.Compute(1000)
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				if err := c.StoreU64(c.HeapCap, 0, 7); err != nil {
					t.Errorf("store: %v", err)
				}
				k.Exit(c, 0)
			}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
			k.TraceEnd(p)
			end = uint64(p.Task.Now())
		})
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		return end
	}
	if on, off := run(true), run(false); on != off {
		t.Fatalf("armed plane perturbed virtual time: %d != %d", on, off)
	}
}
