package tmem

import "sync/atomic"

// Per-CPU free-frame caches: the lock-free fast path of the fine-grained
// tmem allocator. Each simulated CPU keeps a small stack of free PFNs so
// the fault path can allocate and free pooled frames without taking the
// shared allocator lock; the kernel refills a CPU's stack (under the lock)
// only when it runs dry. The layer changes only WHICH pfn an allocation
// returns — allocation bookkeeping, observers and Allocated() are
// identical — so allocator invariants and leak checks are unaffected, and
// machines that never call EnableCPUCaches (the BKL and POSIX models) keep
// their exact historical PFN ordering.
//
// tmem itself is single-goroutined per the engine's cooperative schedule;
// "lock-free" here means free of the *virtual-time* allocator lock, which
// is what the contention experiment measures.

// DefaultCacheBatch is the refill size used when EnableCPUCaches is given
// a batch of 0: large enough that a CoW fault burst stays on the fast
// path, small enough that per-CPU hoarding cannot strand a meaningful
// slice of physical memory.
const DefaultCacheBatch = 32

type frameCaches struct {
	stacks [][]PFN
	batch  int
	cpu    int

	// Counters are atomic: the telemetry server samples them from an HTTP
	// goroutine while the simulation allocates.
	hits    atomic.Uint64
	refills atomic.Uint64
	spills  atomic.Uint64
	steals  atomic.Uint64
}

// EnableCPUCaches arms ncpu per-CPU free-frame caches holding up to
// 2×batch PFNs each (batch 0 selects DefaultCacheBatch). Call once, before
// any allocation traffic that should use the fast path.
func (m *Memory) EnableCPUCaches(ncpu, batch int) {
	if ncpu < 1 {
		ncpu = 1
	}
	if batch <= 0 {
		batch = DefaultCacheBatch
	}
	m.caches = &frameCaches{stacks: make([][]PFN, ncpu), batch: batch}
}

// CachesEnabled reports whether per-CPU frame caches are armed.
func (m *Memory) CachesEnabled() bool { return m.caches != nil }

// SetCPU selects the cache that subsequent alloc/free traffic is
// attributed to — the kernel calls it with the faulting task's last core.
// Out-of-range values clamp to cache 0. No-op when caches are disabled.
func (m *Memory) SetCPU(cpu int) {
	c := m.caches
	if c == nil {
		return
	}
	if cpu < 0 || cpu >= len(c.stacks) {
		cpu = 0
	}
	c.cpu = cpu
}

// CacheReady reports whether the current CPU's cache can serve n
// allocations without touching the shared free list — the fault path's
// lock-elision test. Always false when caches are disabled.
func (m *Memory) CacheReady(n int) bool {
	c := m.caches
	return c != nil && len(c.stacks[c.cpu]) >= n
}

// RefillCache tops the current CPU's cache up to batch PFNs from the
// shared free list. The kernel calls it with the tmem allocator lock held;
// a short free list refills partially, and exhaustion is left for alloc to
// report.
func (m *Memory) RefillCache() {
	c := m.caches
	if c == nil {
		return
	}
	moved := false
	for len(c.stacks[c.cpu]) < c.batch && len(m.freeList) > 0 {
		pfn := m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
		c.stacks[c.cpu] = append(c.stacks[c.cpu], pfn)
		moved = true
	}
	if moved {
		c.refills.Add(1)
	}
}

// CacheStats returns the fast-path counters: cache-hit allocations,
// refills from the shared free list, frees spilled past the per-CPU cap,
// and whole-cache steals taken to stave off ErrOutOfMemory.
func (m *Memory) CacheStats() (hits, refills, spills, steals uint64) {
	c := m.caches
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.hits.Load(), c.refills.Load(), c.spills.Load(), c.steals.Load()
}

// takeCached pops a PFN from the current CPU's cache, if one is there.
func (m *Memory) takeCached() (PFN, bool) {
	c := m.caches
	if c == nil {
		return NoFrame, false
	}
	s := c.stacks[c.cpu]
	n := len(s)
	if n == 0 {
		return NoFrame, false
	}
	pfn := s[n-1]
	c.stacks[c.cpu] = s[:n-1]
	c.hits.Add(1)
	return pfn, true
}

// stealCaches drains every per-CPU cache back into the shared free list —
// the last resort before declaring the bank out of memory, mirroring how a
// real allocator reclaims per-CPU magazines under pressure. Returns
// whether any frame was recovered.
func (m *Memory) stealCaches() bool {
	c := m.caches
	if c == nil {
		return false
	}
	moved := false
	for i := range c.stacks {
		for j := len(c.stacks[i]) - 1; j >= 0; j-- {
			m.freeList = append(m.freeList, c.stacks[i][j])
			moved = true
		}
		c.stacks[i] = c.stacks[i][:0]
	}
	if moved {
		c.steals.Add(1)
	}
	return moved
}

// cacheFree offers a just-freed PFN to the current CPU's cache. A cache
// past 2×batch spills to the shared free list instead, bounding hoarding.
func (m *Memory) cacheFree(pfn PFN) bool {
	c := m.caches
	if c == nil {
		return false
	}
	if len(c.stacks[c.cpu]) >= 2*c.batch {
		c.spills.Add(1)
		return false
	}
	c.stacks[c.cpu] = append(c.stacks[c.cpu], pfn)
	return true
}
