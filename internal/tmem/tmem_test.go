package tmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ufork/internal/cap"
)

func TestAllocFree(t *testing.T) {
	m := New(4)
	pfns := make([]PFN, 0, 4)
	for i := 0; i < 4; i++ {
		pfn, err := m.AllocFrame()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		pfns = append(pfns, pfn)
	}
	if m.Allocated() != 4 || m.PeakAllocated() != 4 {
		t.Fatalf("allocated=%d peak=%d", m.Allocated(), m.PeakAllocated())
	}
	if _, err := m.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	for _, pfn := range pfns {
		if err := m.FreeFrame(pfn); err != nil {
			t.Fatalf("free %d: %v", pfn, err)
		}
	}
	if m.Allocated() != 0 {
		t.Fatalf("allocated=%d after freeing all", m.Allocated())
	}
	if err := m.FreeFrame(pfns[0]); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New(2)
	pfn, _ := m.AllocFrame()
	msg := []byte("the quick brown fox")
	if err := m.WriteBytes(pfn, 100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m.ReadBytes(pfn, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// Cross-page access rejected.
	if err := m.WriteBytes(pfn, PageSize-4, msg); !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("expected overflow, got %v", err)
	}
	// Unallocated frame rejected.
	if err := m.ReadBytes(PFN(1), 0, got); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("expected bad frame, got %v", err)
	}
}

func TestCapStoreLoad(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	c := cap.Root(0x10000, 0x1000).SetAddr(0x10400).WithPerms(cap.PermData)
	if err := m.StoreCap(pfn, 64, c); err != nil {
		t.Fatal(err)
	}
	tag, err := m.TagAt(pfn, 64)
	if err != nil || !tag {
		t.Fatalf("tag=%v err=%v", tag, err)
	}
	got, err := m.LoadCap(pfn, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Fatalf("got %v want %v", got, c)
	}
	// Misaligned capability access rejected.
	if err := m.StoreCap(pfn, 65, c); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("expected unaligned, got %v", err)
	}
	if _, err := m.LoadCap(pfn, 65); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("expected unaligned load, got %v", err)
	}
}

func TestByteWriteClearsTag(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	c := cap.Root(0x10000, 0x1000).SetAddr(0x10420)
	if err := m.StoreCap(pfn, 32, c); err != nil {
		t.Fatal(err)
	}
	// Overwrite one byte in the middle of the granule.
	if err := m.WriteBytes(pfn, 40, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	tag, _ := m.TagAt(pfn, 32)
	if tag {
		t.Fatal("byte write must clear the granule tag")
	}
	got, err := m.LoadCap(pfn, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag() {
		t.Fatal("loading an overwritten granule must yield an untagged cap")
	}
	// The integer bytes remain readable: first 8 bytes hold the cursor.
	buf := make([]byte, 8)
	if err := m.ReadBytes(pfn, 32, buf); err != nil {
		t.Fatal(err)
	}
}

func TestUntaggedLoadSeesAddressBytes(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	c := cap.Root(0x2000, 0x100).SetAddr(0x2040)
	if err := m.StoreCap(pfn, 0, c); err != nil {
		t.Fatal(err)
	}
	// An integer read of the pointer sees its address.
	buf := make([]byte, 8)
	if err := m.ReadBytes(pfn, 0, buf); err != nil {
		t.Fatal(err)
	}
	var addr uint64
	for i := 7; i >= 0; i-- {
		addr = addr<<8 | uint64(buf[i])
	}
	if addr != 0x2040 {
		t.Fatalf("integer view of pointer = %#x, want 0x2040", addr)
	}
}

// taggedOffsets collects ForEachTagged's visit order (test helper standing
// in for the removed slice-returning TaggedGranules).
func taggedOffsets(t *testing.T, m *Memory, pfn PFN) []uint64 {
	t.Helper()
	var got []uint64
	if err := m.ForEachTagged(pfn, func(off uint64) error {
		got = append(got, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestTaggedGranulesScan(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	offs := []uint64{0, 256, 4080}
	for _, off := range offs {
		c := cap.Root(uint64(off)*16+0x1000, 64)
		if err := m.StoreCap(pfn, off, c); err != nil {
			t.Fatal(err)
		}
	}
	got := taggedOffsets(t, m, pfn)
	if len(got) != len(offs) {
		t.Fatalf("found %d tagged granules, want %d", len(got), len(offs))
	}
	for i := range offs {
		if got[i] != offs[i] {
			t.Fatalf("granule %d at %d, want %d", i, got[i], offs[i])
		}
	}
	n, _ := m.CountTags(pfn)
	if n != 3 {
		t.Fatalf("CountTags = %d", n)
	}
}

// TestLastGranuleRoundTrip pins the top-of-frame corner: a capability in
// the final granule (offset 4080, bit 63 of the last tag word) must
// round-trip, scan, and clear like any other.
func TestLastGranuleRoundTrip(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	c := cap.Root(0x9000, 0x100).SetAddr(0x9040)
	if err := m.StoreCap(pfn, PageSize-cap.GranuleSize, c); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadCap(pfn, 4080)
	if err != nil || !got.Equal(c) {
		t.Fatalf("last-granule load = %v, %v; want %v", got, err, c)
	}
	if offs := taggedOffsets(t, m, pfn); len(offs) != 1 || offs[0] != 4080 {
		t.Fatalf("scan found %v, want [4080]", offs)
	}
	if n, _ := m.CountTags(pfn); n != 1 {
		t.Fatalf("CountTags = %d, want 1", n)
	}
	// A write to the frame's final byte clears exactly that granule.
	if err := m.WriteBytes(pfn, PageSize-1, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if tag, _ := m.TagAt(pfn, 4080); tag {
		t.Fatal("write to last byte must clear last granule tag")
	}
	if n, _ := m.CountTags(pfn); n != 0 {
		t.Fatalf("CountTags = %d after clear, want 0", n)
	}
}

// TestWriteBytesSpanningGranules verifies a write straddling a granule
// boundary clears exactly the touched granules' tags — neighbours keep
// theirs and the cached count tracks the change.
func TestWriteBytesSpanningGranules(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	// Tag granules 1, 2, 3 and 4 (offsets 16, 32, 48, 64).
	for g := uint64(1); g <= 4; g++ {
		if err := m.StoreCap(pfn, g*cap.GranuleSize, cap.Root(0x4000, 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Write bytes [30, 50): touches granules 1 (tail), 2, and 3 (head).
	if err := m.WriteBytes(pfn, 30, make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{1: false, 2: false, 3: false, 4: true}
	for g, wantTag := range want {
		if tag, _ := m.TagAt(pfn, g*cap.GranuleSize); tag != wantTag {
			t.Fatalf("granule %d tag = %v, want %v", g, tag, wantTag)
		}
	}
	if n, _ := m.CountTags(pfn); n != 1 {
		t.Fatalf("CountTags = %d, want 1", n)
	}
}

// TestCopyFrameCountsBytesMoved is the regression test for the cost-
// accounting gap: CopyFrame moves 4 KiB of data plus the packed tag plane
// and must charge both to BytesMoved.
func TestCopyFrameCountsBytesMoved(t *testing.T) {
	m := New(2)
	src, _ := m.AllocFrame()
	dst, _ := m.AllocFrame()
	if err := m.StoreCap(src, 0, cap.Root(0x1000, 64)); err != nil {
		t.Fatal(err)
	}
	before := m.BytesMoved()
	if err := m.CopyFrame(dst, src); err != nil {
		t.Fatal(err)
	}
	if got := m.BytesMoved() - before; got != PageSize+TagPlaneBytes {
		t.Fatalf("CopyFrame moved %d bytes, want %d", got, PageSize+TagPlaneBytes)
	}
}

// TestDoubleFree verifies the double-free error actually fires, and that
// out-of-range frees stay ErrBadFrame.
func TestDoubleFree(t *testing.T) {
	m := New(2)
	pfn, _ := m.AllocFrame()
	if err := m.FreeFrame(pfn); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrame(pfn); !errors.Is(err, ErrFreeFree) {
		t.Fatalf("double free = %v, want ErrFreeFree", err)
	}
	// A never-allocated frame is equally not-allocated: double-free class.
	if err := m.FreeFrame(PFN(1)); !errors.Is(err, ErrFreeFree) {
		t.Fatalf("free of never-allocated frame = %v, want ErrFreeFree", err)
	}
	if err := m.FreeFrame(NoFrame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("free of NoFrame = %v, want ErrBadFrame", err)
	}
	if err := m.FreeFrame(PFN(99)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("out-of-range free = %v, want ErrBadFrame", err)
	}
}

// TestFramePoolReuse verifies a pooled frame comes back fully reset: no
// data, no tags, no cached count — even when the previous tenant held
// capabilities.
func TestFramePoolReuse(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if err := m.StoreCap(pfn, 128, cap.Root(0x2000, 64)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(pfn, 512, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrame(pfn); err != nil {
		t.Fatal(err)
	}
	pfn2, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if pfn2 != pfn {
		t.Fatalf("expected frame reuse, got pfn %d vs %d", pfn2, pfn)
	}
	if n, _ := m.CountTags(pfn2); n != 0 {
		t.Fatalf("pooled frame CountTags = %d, want 0", n)
	}
	buf := make([]byte, PageSize)
	if err := m.ReadBytes(pfn2, 0, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("pooled frame byte %d = %#x, want 0", i, b)
		}
	}
	if offs := taggedOffsets(t, m, pfn2); len(offs) != 0 {
		t.Fatalf("pooled frame has tagged granules %v", offs)
	}
}

func TestCopyFramePreservesTags(t *testing.T) {
	m := New(2)
	src, _ := m.AllocFrame()
	dst, _ := m.AllocFrame()
	c := cap.Root(0x8000, 0x800).SetAddr(0x8100)
	if err := m.StoreCap(src, 128, c); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(src, 512, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyFrame(dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadCap(dst, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Fatal("tag plane must travel with the copy")
	}
	buf := make([]byte, 7)
	if err := m.ReadBytes(dst, 512, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("data not copied: %q", buf)
	}
	// The copy is independent of the source.
	if err := m.WriteBytes(src, 512, []byte("XXXXXXX")); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadBytes(dst, 512, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatal("copy aliases source")
	}
}

func TestZeroFrame(t *testing.T) {
	m := New(1)
	pfn, _ := m.AllocFrame()
	if err := m.StoreCap(pfn, 0, cap.Root(0, 16)); err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(pfn); err != nil {
		t.Fatal(err)
	}
	tag, _ := m.TagAt(pfn, 0)
	if tag {
		t.Fatal("zeroing must clear tags")
	}
	if n, _ := m.CountTags(pfn); n != 0 {
		t.Fatalf("zeroing must clear the cached tag count, got %d", n)
	}
}

// Property: store/load round-trips for arbitrary offsets and payloads.
func TestRoundTripProperty(t *testing.T) {
	m := New(8)
	pfn, _ := m.AllocFrame()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		off := uint64(r.Intn(PageSize - 64))
		n := r.Intn(64) + 1
		buf := make([]byte, n)
		r.Read(buf)
		if err := m.WriteBytes(pfn, off, buf); err != nil {
			return false
		}
		got := make([]byte, n)
		if err := m.ReadBytes(pfn, off, got); err != nil {
			return false
		}
		return bytes.Equal(buf, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any interleaving of capability stores and byte writes,
// every tagged granule holds a tagged capability (no stale tags survive a
// byte overwrite). This is the soundness half of tag-directed pointer
// identification.
func TestTagSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(1)
		pfn, _ := m.AllocFrame()
		for i := 0; i < 100; i++ {
			if r.Intn(2) == 0 {
				g := uint64(r.Intn(GranulesPerPage)) * cap.GranuleSize
				_ = m.StoreCap(pfn, g, cap.Root(uint64(r.Intn(1<<20)), 64))
			} else {
				off := uint64(r.Intn(PageSize - 8))
				_ = m.WriteBytes(pfn, off, []byte{1, 2, 3})
			}
		}
		sound := true
		if err := m.ForEachTagged(pfn, func(off uint64) error {
			c, err := m.LoadCap(pfn, off)
			if err != nil || !c.Tag() {
				sound = false
			}
			return nil
		}); err != nil {
			return false
		}
		// The cached count must agree with the scan.
		n, visited := 0, 0
		_ = m.ForEachTagged(pfn, func(uint64) error { visited++; return nil })
		n, _ = m.CountTags(pfn)
		return sound && n == visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
