// Chaos-harness surface of the tagged-memory substrate: fault-injection
// hooks, a per-frame consistency audit, and process-wide live-frame
// accounting. Everything here is inert (one nil pointer compare on the hot
// paths) unless a harness arms it; internal/chaos drives these points from
// a seeded schedule so every failure replays from one seed.
package tmem

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"ufork/internal/cap"
)

// Hooks are the optional interception points a chaos harness arms on a
// Memory. All fields may be left zero; a nil hook is never called.
type Hooks struct {
	// FailAlloc, when non-nil, is consulted on every frame allocation
	// (zeroed and copy-destination alike); returning true fails the
	// allocation with an injected ErrOutOfMemory before any state changes,
	// modelling physical-memory exhaustion at arbitrary points.
	FailAlloc func() bool
	// PoisonFreed fills freed frames with a recognisable poison pattern and
	// revokes their tags, so any use-after-free surfaces as wild data (and
	// a lost capability) instead of silently reading stale-but-plausible
	// contents out of the frame pool.
	PoisonFreed bool
	// SkipTagCopy is a deliberate bug for harness self-tests: CopyFrame
	// moves the data bytes and capability plane but drops the packed tag
	// words, losing every capability in the copy. The invariant checker
	// must catch the resulting tag-plane inconsistency (cached count vs.
	// popcount); a harness that tolerates this mutation is broken.
	SkipTagCopy bool
}

// SetHooks installs (or, with nil, removes) the chaos interception points.
func (m *Memory) SetHooks(h *Hooks) { m.hooks = h }

// poisonByte fills freed frames under Hooks.PoisonFreed; 0xDB reads as
// "dead bytes" in hex dumps.
const poisonByte = 0xDB

func poisonFrame(f *Frame) {
	for i := range f.Data {
		f.Data[i] = poisonByte
	}
	f.tags = [TagWords]uint64{}
	f.ntags = 0
}

// liveFrames counts allocated-minus-freed frames across every Memory in
// the process. The frame-leak regression guard (TestMain in the kernel and
// bench test packages) asserts it returns to zero once all kernels have
// wound down. Atomic: independent of any single Memory's lifetime.
var liveFrames atomic.Int64

// LiveFrames returns the process-wide count of frames currently allocated
// across all Memory banks.
func LiveFrames() int64 { return liveFrames.Load() }

// FreeFrames returns the number of free frames in this bank: the shared
// free list plus any frames parked in per-CPU caches. Together with
// Allocated it must account for every physical frame:
// Allocated()+FreeFrames() == NumFrames() is the conservation law the
// invariant checker audits.
func (m *Memory) FreeFrames() int {
	n := len(m.freeList)
	if m.caches != nil {
		for _, s := range m.caches.stacks {
			n += len(s)
		}
	}
	return n
}

// ForEachAllocated calls fn with every currently allocated PFN in
// ascending order.
func (m *Memory) ForEachAllocated(fn func(pfn PFN)) {
	for i, f := range m.frames {
		if f != nil {
			fn(PFN(i))
		}
	}
}

// AuditFrame verifies the internal consistency of one allocated frame:
// the cached tag count matches the popcount of the packed tag words, every
// tagged granule has a tagged capability in the capability plane, and the
// granule's data bytes agree with the capability's cursor and base (the
// representation StoreCap maintains). Any mismatch means tag plane, data,
// and capability plane have come apart — the CHERI porting literature's
// classic silent-tag-loss failure mode.
func (m *Memory) AuditFrame(pfn PFN) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	n := 0
	for _, w := range f.tags {
		n += bits.OnesCount64(w)
	}
	if int(f.ntags) != n {
		return fmt.Errorf("tmem: frame %d cached tag count %d != tag-plane popcount %d", pfn, f.ntags, n)
	}
	if n == 0 {
		return nil
	}
	if f.caps == nil {
		return fmt.Errorf("tmem: frame %d has %d tagged granules but no capability plane", pfn, n)
	}
	for wi, w := range f.tags {
		for w != 0 {
			g := uint64(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			c := f.caps[g]
			if !c.Tag() {
				return fmt.Errorf("tmem: frame %d granule %d tagged but capability plane holds an untagged value", pfn, g)
			}
			off := g * cap.GranuleSize
			if got := binary.LittleEndian.Uint64(f.Data[off:]); got != c.Addr() {
				return fmt.Errorf("tmem: frame %d granule %d data cursor %#x != capability address %#x", pfn, g, got, c.Addr())
			}
			if got := binary.LittleEndian.Uint64(f.Data[off+8:]); got != c.Base() {
				return fmt.Errorf("tmem: frame %d granule %d data base %#x != capability base %#x", pfn, g, got, c.Base())
			}
		}
	}
	return nil
}

// InjectTagFlip flips the raw validity bit of granule g in frame pfn
// WITHOUT updating the cached tag count or capability plane — a simulated
// tag-plane bit flip (alpha particle, controller bug). It deliberately
// leaves the frame inconsistent; AuditFrame must detect it.
func (m *Memory) InjectTagFlip(pfn PFN, g uint64) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if g >= GranulesPerPage {
		return fmt.Errorf("%w: granule %d", ErrPageOverflow, g)
	}
	f.tags[g/64] ^= uint64(1) << (g % 64)
	return nil
}
