package tmem

import "testing"

// drain allocates every frame the bank will give and returns the PFNs in
// allocation order.
func drain(t *testing.T, m *Memory) []PFN {
	t.Helper()
	var got []PFN
	for {
		pfn, err := m.AllocFrame()
		if err != nil {
			return got
		}
		got = append(got, pfn)
	}
}

func freeAll(t *testing.T, m *Memory, pfns []PFN) {
	t.Helper()
	for _, pfn := range pfns {
		if err := m.FreeFrame(pfn); err != nil {
			t.Fatalf("free %d: %v", pfn, err)
		}
	}
}

// TestCacheHitRefillSpill exercises the per-CPU fast path: a free lands in
// the cache, the next allocation hits it LIFO, a dry cache refills from
// the shared free list, and a cache past its 2×batch cap spills frees back
// to the shared list.
func TestCacheHitRefillSpill(t *testing.T) {
	m := New(64)
	m.EnableCPUCaches(2, 4)
	if !m.CachesEnabled() {
		t.Fatal("caches not enabled")
	}
	if m.CacheReady(1) {
		t.Fatal("empty cache claims readiness")
	}

	// Refill moves batch=4 frames from the free list into CPU 0's cache.
	m.RefillCache()
	if !m.CacheReady(4) || m.CacheReady(5) {
		t.Fatalf("after refill, CacheReady(4)=%v CacheReady(5)=%v, want true/false",
			m.CacheReady(4), m.CacheReady(5))
	}
	// The refill takes the free list's tail (frames 60-63 of the
	// low-first ordering... the list is LIFO from the top), and the cache
	// hands them back LIFO.
	a, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	hits, refills, spills, steals := m.CacheStats()
	if hits != 1 || refills != 1 || spills != 0 || steals != 0 {
		t.Fatalf("stats after one refill+hit: hits=%d refills=%d spills=%d steals=%d", hits, refills, spills, steals)
	}
	// A free goes back to the cache and the next alloc returns the same
	// frame — LIFO reuse keeps the working set hot.
	if err := m.FreeFrame(a); err != nil {
		t.Fatal(err)
	}
	b, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("LIFO reuse: got %d, want %d", b, a)
	}
	if hits, _, _, _ := m.CacheStats(); hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}

	// Conservation holds with frames parked in the cache.
	if got := m.Allocated() + m.FreeFrames(); got != m.NumFrames() {
		t.Fatalf("conservation: allocated %d + free %d != %d", m.Allocated(), m.FreeFrames(), m.NumFrames())
	}

	// Spill: free more frames than the 2×batch=8 cap. Allocate 12 (3 cache
	// hits + 9 free-list), free them all; the cache holds 8, the rest spill.
	if err := m.FreeFrame(b); err != nil {
		t.Fatal(err)
	}
	var pfns []PFN
	for i := 0; i < 12; i++ {
		pfn, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, pfn)
	}
	freeAll(t, m, pfns)
	if _, _, spills, _ := m.CacheStats(); spills != 4 {
		t.Fatalf("spills = %d, want 4 (12 frees into an empty cache capped at 8)", spills)
	}
	if got := m.Allocated() + m.FreeFrames(); got != m.NumFrames() {
		t.Fatalf("conservation after spill: allocated %d + free %d != %d", m.Allocated(), m.FreeFrames(), m.NumFrames())
	}
}

// TestCacheSetCPUIsolation: each CPU has its own stack; SetCPU routes
// traffic, and out-of-range CPUs clamp to cache 0.
func TestCacheSetCPUIsolation(t *testing.T) {
	m := New(16)
	m.EnableCPUCaches(2, 4)
	m.SetCPU(0)
	m.RefillCache()
	if !m.CacheReady(1) {
		t.Fatal("CPU 0 cache empty after refill")
	}
	m.SetCPU(1)
	if m.CacheReady(1) {
		t.Fatal("CPU 1 cache sees CPU 0's frames")
	}
	// Out-of-range clamps to 0, which is stocked.
	m.SetCPU(99)
	if !m.CacheReady(1) {
		t.Fatal("out-of-range SetCPU did not clamp to cache 0")
	}
	m.SetCPU(-1)
	if !m.CacheReady(1) {
		t.Fatal("negative SetCPU did not clamp to cache 0")
	}
}

// TestCacheStealStavesOffOOM: when the shared free list is empty but
// another CPU's cache holds frames, allocation must steal them back
// rather than report ErrOutOfMemory; a bank is only exhausted when every
// frame is truly allocated.
func TestCacheStealStavesOffOOM(t *testing.T) {
	const n = 8
	m := New(n)
	m.EnableCPUCaches(2, 4)
	// Stock CPU 1's cache, then allocate from CPU 0 until the free list is
	// gone: the final allocations must come from stealing CPU 1's stack.
	m.SetCPU(1)
	m.RefillCache()
	m.SetCPU(0)
	got := drain(t, m)
	if len(got) != n {
		t.Fatalf("allocated %d frames of %d: cached frames were not reclaimed", len(got), n)
	}
	if _, _, _, steals := m.CacheStats(); steals != 1 {
		t.Fatalf("steals = %d, want 1", steals)
	}
	if m.Allocated() != n || m.FreeFrames() != 0 {
		t.Fatalf("allocated=%d free=%d after drain, want %d/0", m.Allocated(), m.FreeFrames(), n)
	}
	// Truly exhausted now.
	if _, err := m.AllocFrame(); err == nil {
		t.Fatal("allocation succeeded on an exhausted bank")
	}
	// Frees during exhaustion land in CPU 0's cache and are allocatable.
	freeAll(t, m, got[:3])
	if got := m.Allocated() + m.FreeFrames(); got != n {
		t.Fatalf("conservation after partial free: %d != %d", got, n)
	}
	again := drain(t, m)
	if len(again) != 3 {
		t.Fatalf("re-allocated %d frames, want 3", len(again))
	}
}

// TestCachesDisabledIdentical: a bank without EnableCPUCaches must keep
// the exact historical PFN ordering — the BKL and POSIX machines' goldens
// depend on it — and the cache entry points must be inert.
func TestCachesDisabledIdentical(t *testing.T) {
	plain := New(16)
	if plain.CachesEnabled() || plain.CacheReady(1) {
		t.Fatal("zero-value bank claims cache support")
	}
	plain.SetCPU(3)     // no-op
	plain.RefillCache() // no-op
	if h, r, s, st := plain.CacheStats(); h|r|s|st != 0 {
		t.Fatal("stats non-zero on cacheless bank")
	}
	got := drain(t, plain)
	for i, pfn := range got {
		if int(pfn) != i {
			t.Fatalf("PFN order diverged at %d: got %d (low-first ordering is pinned)", i, pfn)
		}
	}
}
