package tmem

import (
	"testing"

	"ufork/internal/cap"
)

// Tag-scan microbenchmarks: the 16-byte-stride scan runs once per copied
// page on the fork hot path, so it must be allocation-free and must skip
// capability-free pages via the cached tag count.

// benchFrame builds a frame with ncaps tagged granules spread evenly.
func benchFrame(tb testing.TB, m *Memory, ncaps int) PFN {
	tb.Helper()
	pfn, err := m.AllocFrame()
	if err != nil {
		tb.Fatal(err)
	}
	if ncaps > 0 {
		stride := GranulesPerPage / ncaps
		for i := 0; i < ncaps; i++ {
			off := uint64(i*stride) * cap.GranuleSize
			if err := m.StoreCap(pfn, off, cap.Root(0x10000+off, 64)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return pfn
}

var benchSink uint64

func benchTagScan(b *testing.B, ncaps int) {
	m := New(1)
	pfn := benchFrame(b, m, ncaps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ForEachTagged(pfn, visitSink); err != nil {
			b.Fatal(err)
		}
	}
}

// visitSink is a non-capturing visitor so the benchmark measures the scan,
// not closure construction.
func visitSink(off uint64) error {
	benchSink += off
	return nil
}

func BenchmarkTagScan(b *testing.B) {
	b.Run("empty", func(b *testing.B) { benchTagScan(b, 0) })
	b.Run("sparse-8caps", func(b *testing.B) { benchTagScan(b, 8) })
	b.Run("dense-256caps", func(b *testing.B) { benchTagScan(b, 256) })
}

func BenchmarkCountTags(b *testing.B) {
	m := New(1)
	pfn := benchFrame(b, m, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := m.CountTags(pfn)
		if err != nil {
			b.Fatal(err)
		}
		benchSink += uint64(n)
	}
}

func BenchmarkCopyFrame(b *testing.B) {
	m := New(2)
	src := benchFrame(b, m, 8)
	dst := benchFrame(b, m, 0)
	b.ReportAllocs()
	b.SetBytes(PageSize + TagPlaneBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CopyFrame(dst, src); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTagScanZeroAlloc pins the acceptance criterion: the fork hot path's
// tag scan performs zero heap allocations per page.
func TestTagScanZeroAlloc(t *testing.T) {
	m := New(1)
	pfn := benchFrame(t, m, 32)
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.ForEachTagged(pfn, visitSink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("tag scan allocates %.1f objects per page, want 0", allocs)
	}
}
