// Package tmem implements tagged physical memory: the DRAM + tag-plane
// substrate CHERI systems run on.
//
// Memory is organised in 4 KiB frames. Each frame carries, beside its data
// bytes, one validity-tag bit per 16-byte capability granule, plus the
// authoritative capability value for tagged granules. The tag plane is the
// mechanism μFork exploits for pointer identification: a granule whose tag
// is set is — by hardware guarantee — a genuine capability, so the
// relocation pass can find every absolute memory reference in a page by a
// 16-byte-stride tag scan with zero false positives (§3.4, block 3).
//
// Byte-granularity writes clear the tags of every granule they touch,
// modelling the hardware rule that partial overwrites destroy capability
// validity.
package tmem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ufork/internal/cap"
)

// PageSize is the frame/page size in bytes.
const PageSize = 4096

// GranulesPerPage is the number of capability granules in one frame.
const GranulesPerPage = PageSize / cap.GranuleSize

// PFN is a physical frame number.
type PFN uint64

// NoFrame is the sentinel invalid PFN.
const NoFrame PFN = ^PFN(0)

// Errors reported by the memory subsystem.
var (
	ErrOutOfMemory  = errors.New("tmem: out of physical frames")
	ErrBadFrame     = errors.New("tmem: access to unallocated frame")
	ErrUnaligned    = errors.New("tmem: capability access not granule aligned")
	ErrFreeFree     = errors.New("tmem: double free of frame")
	ErrPageOverflow = errors.New("tmem: access crosses frame boundary")
)

// Frame is one 4 KiB physical frame with its tag plane.
//
// For tagged granules the authoritative capability value lives in caps;
// the data bytes hold the capability's cursor (so integer reads of a
// pointer see its address, as on real hardware) followed by a descriptive
// pattern. Clearing the tag leaves the bytes behind but revokes authority.
type Frame struct {
	Data [PageSize]byte
	tags [GranulesPerPage]bool
	// caps is allocated lazily on the first capability store: most frames
	// hold plain data and never pay for a capability plane.
	caps *[GranulesPerPage]cap.Capability
}

// Memory is a bank of tagged physical frames with a free-list allocator.
type Memory struct {
	frames    []*Frame
	freeList  []PFN
	allocated int
	peak      int
	totalOps  uint64 // statistics: byte-level read/write volume
}

// New creates a memory bank with the given number of physical frames.
func New(nframes int) *Memory {
	m := &Memory{frames: make([]*Frame, nframes)}
	m.freeList = make([]PFN, 0, nframes)
	// Hand out low frames first for reproducibility.
	for i := nframes - 1; i >= 0; i-- {
		m.freeList = append(m.freeList, PFN(i))
	}
	return m
}

// NumFrames returns the total number of physical frames.
func (m *Memory) NumFrames() int { return len(m.frames) }

// Allocated returns the number of frames currently allocated.
func (m *Memory) Allocated() int { return m.allocated }

// PeakAllocated returns the high-water mark of allocated frames.
func (m *Memory) PeakAllocated() int { return m.peak }

// AllocFrame allocates a zeroed frame and returns its PFN.
func (m *Memory) AllocFrame() (PFN, error) {
	if len(m.freeList) == 0 {
		return NoFrame, ErrOutOfMemory
	}
	pfn := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	m.frames[pfn] = &Frame{}
	m.allocated++
	if m.allocated > m.peak {
		m.peak = m.allocated
	}
	return pfn, nil
}

// FreeFrame returns a frame to the allocator.
func (m *Memory) FreeFrame(pfn PFN) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	_ = f
	m.frames[pfn] = nil
	m.freeList = append(m.freeList, pfn)
	m.allocated--
	return nil
}

func (m *Memory) frame(pfn PFN) (*Frame, error) {
	if pfn == NoFrame || int(pfn) >= len(m.frames) || m.frames[pfn] == nil {
		return nil, fmt.Errorf("%w: pfn %d", ErrBadFrame, pfn)
	}
	return m.frames[pfn], nil
}

// checkRange validates that [off, off+n) lies within one frame.
func checkRange(off, n uint64) error {
	if off+n > PageSize || off+n < off {
		return fmt.Errorf("%w: off=%d n=%d", ErrPageOverflow, off, n)
	}
	return nil
}

// ReadBytes copies n bytes at offset off of frame pfn into buf.
func (m *Memory) ReadBytes(pfn PFN, off uint64, buf []byte) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if err := checkRange(off, uint64(len(buf))); err != nil {
		return err
	}
	copy(buf, f.Data[off:])
	m.totalOps += uint64(len(buf))
	return nil
}

// WriteBytes stores buf at offset off of frame pfn, clearing the tags of
// every granule the write touches.
func (m *Memory) WriteBytes(pfn PFN, off uint64, buf []byte) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if err := checkRange(off, uint64(len(buf))); err != nil {
		return err
	}
	copy(f.Data[off:], buf)
	first := off / cap.GranuleSize
	last := (off + uint64(len(buf)) - 1) / cap.GranuleSize
	for g := first; g <= last; g++ {
		f.tags[g] = false
	}
	m.totalOps += uint64(len(buf))
	return nil
}

// LoadCap loads the capability at granule-aligned offset off of frame pfn.
// If the granule's tag is clear the returned capability is untagged (its
// byte pattern reinterpreted as an invalid capability), exactly as on
// hardware.
func (m *Memory) LoadCap(pfn PFN, off uint64) (cap.Capability, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return cap.Null(), err
	}
	if off%cap.GranuleSize != 0 {
		return cap.Null(), ErrUnaligned
	}
	if err := checkRange(off, cap.GranuleSize); err != nil {
		return cap.Null(), err
	}
	g := off / cap.GranuleSize
	if !f.tags[g] || f.caps == nil {
		// Untagged load: reconstruct an invalid capability whose cursor is
		// whatever integer the bytes hold.
		addr := binary.LittleEndian.Uint64(f.Data[off:])
		return cap.Null().SetAddr(addr).Untag(), nil
	}
	return f.caps[g], nil
}

// StoreCap stores capability c at granule-aligned offset off of frame pfn.
// Tagged capabilities set the granule tag; untagged ones clear it. The
// data bytes receive the capability's cursor so that subsequent integer
// loads observe the pointer's address.
func (m *Memory) StoreCap(pfn PFN, off uint64, c cap.Capability) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if off%cap.GranuleSize != 0 {
		return ErrUnaligned
	}
	if err := checkRange(off, cap.GranuleSize); err != nil {
		return err
	}
	g := off / cap.GranuleSize
	binary.LittleEndian.PutUint64(f.Data[off:], c.Addr())
	binary.LittleEndian.PutUint64(f.Data[off+8:], c.Base())
	f.tags[g] = c.Tag()
	if c.Tag() {
		if f.caps == nil {
			f.caps = new([GranulesPerPage]cap.Capability)
		}
		f.caps[g] = c
	} else if f.caps != nil {
		f.caps[g] = cap.Null()
	}
	return nil
}

// TagAt reports the validity tag of the granule at offset off.
func (m *Memory) TagAt(pfn PFN, off uint64) (bool, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return false, err
	}
	if off%cap.GranuleSize != 0 {
		return false, ErrUnaligned
	}
	return f.tags[off/cap.GranuleSize], nil
}

// TaggedGranules returns the offsets of every tagged granule in frame pfn:
// the 16-byte-stride tag scan at the heart of μFork's relocation pass.
func (m *Memory) TaggedGranules(pfn PFN) ([]uint64, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for g, tag := range f.tags {
		if tag {
			out = append(out, uint64(g)*cap.GranuleSize)
		}
	}
	return out, nil
}

// CountTags returns the number of tagged granules in frame pfn.
func (m *Memory) CountTags(pfn PFN) (int, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, tag := range f.tags {
		if tag {
			n++
		}
	}
	return n, nil
}

// CopyFrame copies the full contents of frame src — data bytes AND the tag
// plane with its capabilities — into frame dst. This is the page-copy
// primitive used by every copy-on-* strategy; the tag plane travels with
// the data exactly as on Morello.
func (m *Memory) CopyFrame(dst, src PFN) error {
	fs, err := m.frame(src)
	if err != nil {
		return err
	}
	fd, err := m.frame(dst)
	if err != nil {
		return err
	}
	fd.Data = fs.Data
	fd.tags = fs.tags
	if fs.caps != nil {
		caps := *fs.caps
		fd.caps = &caps
	} else {
		fd.caps = nil
	}
	return nil
}

// ZeroFrame clears a frame's data and tags.
func (m *Memory) ZeroFrame(pfn PFN) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	*f = Frame{}
	return nil
}

// RewriteCap replaces the capability at offset off with c without touching
// neighbouring granules. It is the in-place relocation primitive.
func (m *Memory) RewriteCap(pfn PFN, off uint64, c cap.Capability) error {
	return m.StoreCap(pfn, off, c)
}

// BytesMoved returns the cumulative byte read/write volume, used by cost
// accounting.
func (m *Memory) BytesMoved() uint64 { return m.totalOps }
