// Package tmem implements tagged physical memory: the DRAM + tag-plane
// substrate CHERI systems run on.
//
// Memory is organised in 4 KiB frames. Each frame carries, beside its data
// bytes, one validity-tag bit per 16-byte capability granule, plus the
// authoritative capability value for tagged granules. The tag plane is the
// mechanism μFork exploits for pointer identification: a granule whose tag
// is set is — by hardware guarantee — a genuine capability, so the
// relocation pass can find every absolute memory reference in a page by a
// 16-byte-stride tag scan with zero false positives (§3.4, block 3).
//
// The tag plane is stored compressed, as on real Morello hardware (whose
// tag controller keeps tags in dedicated packed storage, not one byte per
// granule): 256 granule tags pack into four uint64 bitset words, the scan
// walks set bits with bits.TrailingZeros64, and a per-frame cached tag
// population count lets capability-free pages skip the scan entirely.
//
// Byte-granularity writes clear the tags of every granule they touch,
// modelling the hardware rule that partial overwrites destroy capability
// validity.
package tmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"ufork/internal/cap"
)

// PageSize is the frame/page size in bytes.
const PageSize = 4096

// GranulesPerPage is the number of capability granules in one frame.
const GranulesPerPage = PageSize / cap.GranuleSize

// TagWords is the number of uint64 bitset words holding one frame's tags.
const TagWords = GranulesPerPage / 64

// TagPlaneBytes is the size of one frame's packed tag plane: the extra
// bytes a frame copy moves beside its 4 KiB of data.
const TagPlaneBytes = GranulesPerPage / 8

// PFN is a physical frame number.
type PFN uint64

// NoFrame is the sentinel invalid PFN.
const NoFrame PFN = ^PFN(0)

// Errors reported by the memory subsystem.
var (
	ErrOutOfMemory  = errors.New("tmem: out of physical frames")
	ErrBadFrame     = errors.New("tmem: access to unallocated frame")
	ErrUnaligned    = errors.New("tmem: capability access not granule aligned")
	ErrFreeFree     = errors.New("tmem: double free of frame")
	ErrPageOverflow = errors.New("tmem: access crosses frame boundary")
)

// Frame is one 4 KiB physical frame with its tag plane.
//
// For tagged granules the authoritative capability value lives in caps;
// the data bytes hold the capability's cursor (so integer reads of a
// pointer see its address, as on real hardware) followed by a descriptive
// pattern. Clearing the tag leaves the bytes behind but revokes authority.
type Frame struct {
	Data [PageSize]byte
	// tags is the packed tag plane: bit g%64 of word g/64 is the validity
	// tag of granule g.
	tags [TagWords]uint64
	// ntags caches the population count of tags so capability-free frames
	// answer CountTags and ForEachTagged without touching the words.
	ntags int32
	// caps is allocated lazily on the first capability store: most frames
	// hold plain data and never pay for a capability plane. A pooled frame
	// keeps its caps array across reuse (stale entries are unobservable:
	// every read is gated on the tag bit).
	caps *[GranulesPerPage]cap.Capability
}

// tag reports granule g's validity bit.
func (f *Frame) tag(g uint64) bool { return f.tags[g/64]>>(g%64)&1 != 0 }

// setTag sets or clears granule g's validity bit, keeping ntags in step.
func (f *Frame) setTag(g uint64, v bool) {
	word, bit := g/64, uint64(1)<<(g%64)
	if v {
		if f.tags[word]&bit == 0 {
			f.tags[word] |= bit
			f.ntags++
		}
	} else if f.tags[word]&bit != 0 {
		f.tags[word] &^= bit
		f.ntags--
	}
}

// reset returns the frame to its freshly allocated state. The caps array
// is retained but inert: with every tag clear no stale capability is
// reachable.
func (f *Frame) reset() {
	f.Data = [PageSize]byte{}
	f.tags = [TagWords]uint64{}
	f.ntags = 0
}

// Memory is a bank of tagged physical frames with a free-list allocator.
// Freed Frames are pooled and reset on reuse rather than handed to the
// garbage collector: fork-heavy workloads recycle tens of thousands of
// frames per fork and the allocation churn dominated host wall-clock time.
type Memory struct {
	frames    []*Frame
	freeList  []PFN
	pool      []*Frame
	allocated int
	peak      int
	// totalOps counts byte-level read/write/copy volume. Atomic: frame
	// copies fan out across host goroutines on the fork hot path.
	totalOps atomic.Uint64
	// hooks holds the optional chaos-harness interception points; nil in
	// production so the hot paths pay a single pointer compare.
	hooks *Hooks
	// observer, when non-nil, is called after every successful frame
	// allocation and free (flight-recorder wiring). tmem has no clock or
	// process notion, so the kernel closure supplies both.
	observer func(alloc bool, pfn PFN)
	// copyObserver, when non-nil, is called after every CopyFrame
	// (provenance-plane lineage wiring). Unlike the alloc/free observer it
	// MUST be safe for concurrent use: fork eager copies fan out across
	// host worker goroutines.
	copyObserver func(dst, src PFN)
	// caches, when armed via EnableCPUCaches, holds the per-CPU free-frame
	// stacks of the fine-grained allocator's lock-free fast path; nil on
	// BKL/POSIX machines so their PFN ordering is untouched. See cache.go.
	caches *frameCaches
}

// New creates a memory bank with the given number of physical frames.
func New(nframes int) *Memory {
	m := &Memory{frames: make([]*Frame, nframes)}
	m.freeList = make([]PFN, 0, nframes)
	// Hand out low frames first for reproducibility.
	for i := nframes - 1; i >= 0; i-- {
		m.freeList = append(m.freeList, PFN(i))
	}
	return m
}

// NumFrames returns the total number of physical frames.
func (m *Memory) NumFrames() int { return len(m.frames) }

// Allocated returns the number of frames currently allocated.
func (m *Memory) Allocated() int { return m.allocated }

// PeakAllocated returns the high-water mark of allocated frames.
func (m *Memory) PeakAllocated() int { return m.peak }

// AllocFrame allocates a zeroed frame and returns its PFN.
func (m *Memory) AllocFrame() (PFN, error) { return m.alloc(true) }

// AllocFrameForCopy allocates a frame whose data bytes are UNSPECIFIED (a
// pooled frame keeps its previous contents); its tag plane is clear. The
// caller must fully overwrite it with CopyFrame before anything reads it.
// The fork eager-copy path uses this to skip zeroing 4 KiB per page that
// the copy is about to overwrite anyway.
func (m *Memory) AllocFrameForCopy() (PFN, error) { return m.alloc(false) }

func (m *Memory) alloc(zero bool) (PFN, error) {
	if m.hooks != nil && m.hooks.FailAlloc != nil && m.hooks.FailAlloc() {
		return NoFrame, fmt.Errorf("%w (injected)", ErrOutOfMemory)
	}
	pfn, cached := m.takeCached()
	if !cached {
		if len(m.freeList) == 0 && !m.stealCaches() {
			return NoFrame, ErrOutOfMemory
		}
		pfn = m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
	}
	if n := len(m.pool); n > 0 {
		f := m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		if zero {
			f.reset()
		} else {
			f.tags = [TagWords]uint64{}
			f.ntags = 0
		}
		m.frames[pfn] = f
	} else {
		m.frames[pfn] = &Frame{}
	}
	m.allocated++
	if m.allocated > m.peak {
		m.peak = m.allocated
	}
	liveFrames.Add(1)
	if m.observer != nil {
		m.observer(true, pfn)
	}
	return pfn, nil
}

// SetFrameObserver installs fn as the alloc/free observer; nil removes it.
// Allocation is confined to the simulation goroutine, so the observer need
// not be safe for concurrent use.
func (m *Memory) SetFrameObserver(fn func(alloc bool, pfn PFN)) { m.observer = fn }

// SetCopyObserver installs fn as the frame-copy observer; nil removes it.
// Install before the simulation runs: CopyFrame is invoked from parallel
// fork workers, so fn must be safe for concurrent use and the installation
// itself is not synchronized.
func (m *Memory) SetCopyObserver(fn func(dst, src PFN)) { m.copyObserver = fn }

// FreeFrame returns a frame to the allocator. Freeing a frame that is not
// currently allocated reports ErrFreeFree; the frame's storage is retained
// in the pool for the next AllocFrame.
func (m *Memory) FreeFrame(pfn PFN) error {
	if pfn == NoFrame || int(pfn) >= len(m.frames) {
		return fmt.Errorf("%w: pfn %d", ErrBadFrame, pfn)
	}
	f := m.frames[pfn]
	if f == nil {
		return fmt.Errorf("%w: pfn %d", ErrFreeFree, pfn)
	}
	if m.hooks != nil && m.hooks.PoisonFreed {
		poisonFrame(f)
	}
	m.frames[pfn] = nil
	m.pool = append(m.pool, f)
	if !m.cacheFree(pfn) {
		m.freeList = append(m.freeList, pfn)
	}
	m.allocated--
	liveFrames.Add(-1)
	if m.observer != nil {
		m.observer(false, pfn)
	}
	return nil
}

func (m *Memory) frame(pfn PFN) (*Frame, error) {
	if pfn == NoFrame || int(pfn) >= len(m.frames) || m.frames[pfn] == nil {
		return nil, fmt.Errorf("%w: pfn %d", ErrBadFrame, pfn)
	}
	return m.frames[pfn], nil
}

// checkRange validates that [off, off+n) lies within one frame.
func checkRange(off, n uint64) error {
	if off+n > PageSize || off+n < off {
		return fmt.Errorf("%w: off=%d n=%d", ErrPageOverflow, off, n)
	}
	return nil
}

// ReadBytes copies n bytes at offset off of frame pfn into buf.
func (m *Memory) ReadBytes(pfn PFN, off uint64, buf []byte) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if err := checkRange(off, uint64(len(buf))); err != nil {
		return err
	}
	copy(buf, f.Data[off:])
	m.totalOps.Add(uint64(len(buf)))
	return nil
}

// WriteBytes stores buf at offset off of frame pfn, clearing the tags of
// every granule the write touches.
func (m *Memory) WriteBytes(pfn PFN, off uint64, buf []byte) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if err := checkRange(off, uint64(len(buf))); err != nil {
		return err
	}
	copy(f.Data[off:], buf)
	if f.ntags > 0 {
		first := off / cap.GranuleSize
		last := (off + uint64(len(buf)) - 1) / cap.GranuleSize
		// Clear whole words at a time; the popcount of the cleared bits
		// keeps the cached tag count exact.
		for w := first / 64; w <= last/64; w++ {
			mask := ^uint64(0)
			if w == first/64 {
				mask &= ^uint64(0) << (first % 64)
			}
			if w == last/64 && last%64 != 63 {
				mask &= (uint64(1) << (last%64 + 1)) - 1
			}
			if cleared := f.tags[w] & mask; cleared != 0 {
				f.tags[w] &^= mask
				f.ntags -= int32(bits.OnesCount64(cleared))
			}
		}
	}
	m.totalOps.Add(uint64(len(buf)))
	return nil
}

// LoadCap loads the capability at granule-aligned offset off of frame pfn.
// If the granule's tag is clear the returned capability is untagged (its
// byte pattern reinterpreted as an invalid capability), exactly as on
// hardware.
func (m *Memory) LoadCap(pfn PFN, off uint64) (cap.Capability, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return cap.Null(), err
	}
	if off%cap.GranuleSize != 0 {
		return cap.Null(), ErrUnaligned
	}
	if err := checkRange(off, cap.GranuleSize); err != nil {
		return cap.Null(), err
	}
	g := off / cap.GranuleSize
	if !f.tag(g) || f.caps == nil {
		// Untagged load: reconstruct an invalid capability whose cursor is
		// whatever integer the bytes hold.
		addr := binary.LittleEndian.Uint64(f.Data[off:])
		return cap.Null().SetAddr(addr).Untag(), nil
	}
	return f.caps[g], nil
}

// StoreCap stores capability c at granule-aligned offset off of frame pfn.
// Tagged capabilities set the granule tag; untagged ones clear it. The
// data bytes receive the capability's cursor so that subsequent integer
// loads observe the pointer's address.
func (m *Memory) StoreCap(pfn PFN, off uint64, c cap.Capability) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if off%cap.GranuleSize != 0 {
		return ErrUnaligned
	}
	if err := checkRange(off, cap.GranuleSize); err != nil {
		return err
	}
	g := off / cap.GranuleSize
	binary.LittleEndian.PutUint64(f.Data[off:], c.Addr())
	binary.LittleEndian.PutUint64(f.Data[off+8:], c.Base())
	f.setTag(g, c.Tag())
	if c.Tag() {
		if f.caps == nil {
			f.caps = new([GranulesPerPage]cap.Capability)
		}
		f.caps[g] = c
	} else if f.caps != nil {
		f.caps[g] = cap.Null()
	}
	return nil
}

// TagAt reports the validity tag of the granule at offset off.
func (m *Memory) TagAt(pfn PFN, off uint64) (bool, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return false, err
	}
	if off%cap.GranuleSize != 0 {
		return false, ErrUnaligned
	}
	return f.tag(off / cap.GranuleSize), nil
}

// ForEachTagged calls fn with the byte offset of every tagged granule in
// frame pfn, in ascending order: the 16-byte-stride tag scan at the heart
// of μFork's relocation pass, allocation-free. A frame whose cached tag
// count is zero returns without touching the tag words. fn may rewrite the
// granule it is visiting (the word is snapshotted before its bits are
// walked); a non-nil error from fn aborts the scan.
func (m *Memory) ForEachTagged(pfn PFN, fn func(off uint64) error) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	if f.ntags == 0 {
		return nil
	}
	for wi := range f.tags {
		w := f.tags[wi]
		for w != 0 {
			g := uint64(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
			if err := fn(g * cap.GranuleSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// CountTags returns the number of tagged granules in frame pfn, from the
// per-frame cached population count.
func (m *Memory) CountTags(pfn PFN) (int, error) {
	f, err := m.frame(pfn)
	if err != nil {
		return 0, err
	}
	return int(f.ntags), nil
}

// CopyFrame copies the full contents of frame src — data bytes AND the tag
// plane with its capabilities — into frame dst. This is the page-copy
// primitive used by every copy-on-* strategy; the tag plane travels with
// the data exactly as on Morello. The moved volume (data + packed tag
// plane) is charged to the byte-accounting counter.
func (m *Memory) CopyFrame(dst, src PFN) error {
	fs, err := m.frame(src)
	if err != nil {
		return err
	}
	fd, err := m.frame(dst)
	if err != nil {
		return err
	}
	fd.Data = fs.Data
	fd.tags = fs.tags
	fd.ntags = fs.ntags
	if fs.caps != nil && fs.ntags > 0 {
		if fd.caps == nil {
			fd.caps = new([GranulesPerPage]cap.Capability)
		}
		if int(fs.ntags) >= GranulesPerPage/4 {
			*fd.caps = *fs.caps
		} else {
			// Sparse page: copy only the tagged entries. Stale dst entries
			// at untagged granules are unobservable — every capability read
			// is gated on the (just copied) tag bit.
			for wi := range fs.tags {
				w := fs.tags[wi]
				for w != 0 {
					g := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					fd.caps[g] = fs.caps[g]
				}
			}
		}
	}
	// A stale fd.caps from a pooled frame is likewise unobservable when fs
	// carried no tags: fd's tag plane is now all-clear.
	if m.hooks != nil && m.hooks.SkipTagCopy {
		fd.tags = [TagWords]uint64{}
	}
	m.totalOps.Add(PageSize + TagPlaneBytes)
	if m.copyObserver != nil {
		m.copyObserver(dst, src)
	}
	return nil
}

// ZeroFrame clears a frame's data, tags, and cached tag count.
func (m *Memory) ZeroFrame(pfn PFN) error {
	f, err := m.frame(pfn)
	if err != nil {
		return err
	}
	f.reset()
	return nil
}

// RewriteCap replaces the capability at offset off with c without touching
// neighbouring granules. It is the in-place relocation primitive.
func (m *Memory) RewriteCap(pfn PFN, off uint64, c cap.Capability) error {
	return m.StoreCap(pfn, off, c)
}

// BytesMoved returns the cumulative byte read/write/copy volume, used by
// cost accounting.
func (m *Memory) BytesMoved() uint64 { return m.totalOps.Load() }
