package bench

import (
	"ufork/internal/bench/ycsb"
	"ufork/internal/obs/profile"
)

// The profdiff experiment answers "where does the virtual CPU time move
// when the big kernel lock is split?" by profiling the identical seeded
// YCSB workload under both lock regimes and subtracting the two
// stack-attributed profiles. The top signed deltas name the winners
// (lock:bkl wait stacks that vanish) and the costs (smp residual-lock
// waits, extra dispatch latency) — the flame-graph version of the
// contention sweep's summary table.

// ProfDiffTop bounds the rendered delta table.
const ProfDiffTop = 10

// profDiffSweep is the restricted sweep one side of the diff profiles:
// one mix, the most parallel core count, one lock regime. Keeping the
// coordinate small makes the experiment a quick-mode citizen; both
// sides are fully seeded, so each snapshot — and the rendered diff —
// is byte-deterministic run to run.
func profDiffSweep(locks string, keys, ops int, pl *profile.Plane) error {
	rows, err := YCSBSweep(YCSBOpts{
		Mixes:   []ycsb.Mix{ycsb.MixA},
		Keys:    keys,
		Ops:     ops,
		Cores:   []int{4},
		Locks:   []string{locks},
		Profile: pl,
	})
	if err != nil {
		return err
	}
	return YCSBFailures(rows)
}

// ProfDiffSnapshots runs the profiled sweep under each lock regime and
// returns the two aggregate profiles (bkl first).
func ProfDiffSnapshots(keys, ops int) (bkl, smp profile.Snapshot, err error) {
	for _, side := range []struct {
		locks string
		out   *profile.Snapshot
	}{{LocksBKL, &bkl}, {LocksSMP, &smp}} {
		pl := profile.New(0)
		pl.Enable()
		if err = profDiffSweep(side.locks, keys, ops, pl); err != nil {
			return
		}
		*side.out = pl.Snapshot()
	}
	return
}

// ProfDiff runs the cross-lock-regime profile diff and renders the top
// signed per-stack deltas (negative = virtual time the split-lock
// kernel no longer spends there).
func ProfDiff(keys, ops int) (string, error) {
	bkl, smp, err := ProfDiffSnapshots(keys, ops)
	if err != nil {
		return "", err
	}
	return profile.RenderDiff(profile.Diff(bkl, smp), ProfDiffTop,
		"locks="+LocksBKL, "locks="+LocksSMP), nil
}
