// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) on the simulated systems and
// reports the same rows/series the paper plots. DESIGN.md carries the
// per-experiment index; EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"strings"

	"ufork/internal/baseline/posix"
	"ufork/internal/baseline/vmclone"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/obs"
	"ufork/internal/sim"
)

// SystemID names a benchmarked configuration.
type SystemID string

// The benchmarked systems and μFork copy-strategy variants.
const (
	SysUForkCoPA    SystemID = "uFork"         // CoPA, fault isolation
	SysUForkTocttou SystemID = "uFork+TOCTTOU" // CoPA, full adversarial isolation
	SysUForkCoA     SystemID = "uFork-CoA"
	SysUForkFull    SystemID = "uFork-FullCopy"
	SysUForkSMP     SystemID = "uFork-SMP" // CoPA with the split lock hierarchy
	SysPosix        SystemID = "CheriBSD"
	SysVMClone      SystemID = "Nephele"
)

// Parallelism bounds the host-side worker pool μFork engines fan eager
// fork copies across. 0 means one worker per available CPU; 1 forces
// serial execution. Virtual-time results are identical at every setting —
// only host wall-clock changes. Set from ufork-bench's -parallel flag.
var Parallelism int

// build creates a kernel for the given system with the given core count.
func build(id SystemID, cores int, frames int) *kernel.Kernel {
	if frames == 0 {
		frames = 1 << 17
	}
	ufork := func(mode core.CopyMode) *core.Engine {
		e := core.New(mode)
		e.Parallelism = Parallelism
		return e
	}
	var (
		m   *model.Machine
		eng kernel.ForkEngine
		iso kernel.IsolationLevel
	)
	switch id {
	case SysUForkCoPA:
		m, eng, iso = model.UFork(cores), ufork(core.CopyOnPointerAccess), kernel.IsolationFault
	case SysUForkTocttou:
		m, eng, iso = model.UFork(cores), ufork(core.CopyOnPointerAccess), kernel.IsolationFull
	case SysUForkCoA:
		m, eng, iso = model.UFork(cores), ufork(core.CopyOnAccess), kernel.IsolationFault
	case SysUForkFull:
		m, eng, iso = model.UFork(cores), ufork(core.CopyFull), kernel.IsolationFault
	case SysUForkSMP:
		m, eng, iso = model.UForkSMP(cores), ufork(core.CopyOnPointerAccess), kernel.IsolationFault
	case SysPosix:
		m, eng, iso = model.Posix(cores), posix.New(), kernel.IsolationFull
	case SysVMClone:
		m, eng, iso = model.VMClone(cores), vmclone.New(), kernel.IsolationFault
	default:
		panic("bench: unknown system " + string(id))
	}
	return kernel.New(kernel.Config{Machine: m, Engine: eng, Isolation: iso, Frames: frames})
}

// memMetric is the per-process memory of a forked child, reported the way
// the paper reports it: for the multi-address-space baseline it is the
// proportional resident set (§5.2 "We consider the proportional resident
// set"); for single-address-space systems it is the frames resident in the
// child's own region — shared frames stay attributed to the parent's
// region, which is how a SASOS kernel accounts region-owned memory.
func memMetric(p *kernel.Proc) uint64 {
	u := p.Usage()
	if p.Kernel().Machine.SingleAddressSpace {
		return u.PrivateBytes
	}
	return u.PRSSBytes
}

// runRoot spawns entry as the root process and drives the simulation,
// converting entry errors into Go errors.
func runRoot(k *kernel.Kernel, spec kernel.ProgramSpec, entry func(*kernel.Proc) error) error {
	var innerErr error
	if _, err := k.Spawn(spec, 0, func(p *kernel.Proc) {
		innerErr = entry(p)
	}); err != nil {
		return err
	}
	k.Run()
	return innerErr
}

// foldRun accumulates a finished run's kernel and address-space counters
// into the process-wide obs registry under prefix, so `-metrics` snapshots
// carry fault/copy/relocation counts alongside the rendered tables. The
// per-process address spaces of the multi-AS baselines die with their
// procs; for those only the kernel-level counters fold.
func foldRun(prefix string, k *kernel.Kernel) {
	reg := obs.Default.Reg
	for name, v := range k.Stats.Snapshot() {
		reg.Counter(prefix + "." + name).Add(v)
	}
	if k.SharedAS != nil {
		for name, v := range k.SharedAS.Stats.Snapshot() {
			reg.Counter(prefix + "." + name).Add(v)
		}
	}
}

// MB formats bytes as megabytes.
func MB(b uint64) string { return fmt.Sprintf("%.2f MB", float64(b)/(1024*1024)) }

// Ms formats a virtual duration as milliseconds.
func Ms(t sim.Time) string { return fmt.Sprintf("%.2f ms", float64(t)/float64(sim.Millisecond)) }

// Us formats a virtual duration as microseconds.
func Us(t sim.Time) string { return fmt.Sprintf("%.1f µs", float64(t)/float64(sim.Microsecond)) }

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
