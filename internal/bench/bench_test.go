package bench

import (
	"strings"
	"testing"

	"ufork/internal/sim"
)

// TestRedisSweepClaims checks the paper's Redis claims at reduced scale:
// μFork forks faster than the monolithic baseline at every size (Fig. 4),
// the full copy dwarfs CoPA (§5.2), CoA consumes far more child memory
// than CoPA (Fig. 5), and save times favour μFork (Fig. 3).
func TestRedisSweepClaims(t *testing.T) {
	sizes := []uint64{100 * 1024, 1 << 20}
	rows, err := RedisSweep(sizes)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(id SystemID, size uint64) RedisRow {
		for _, r := range rows {
			if r.System == id && r.DBBytes == size {
				return r
			}
		}
		t.Fatalf("missing %s/%d", id, size)
		return RedisRow{}
	}
	for _, size := range sizes {
		ufork := cell(SysUForkCoPA, size)
		posix := cell(SysPosix, size)
		full := cell(SysUForkFull, size)
		coa := cell(SysUForkCoA, size)

		if ufork.ForkLatency >= posix.ForkLatency {
			t.Errorf("size %d: μFork fork %v not faster than CheriBSD %v", size, ufork.ForkLatency, posix.ForkLatency)
		}
		ratio := float64(posix.ForkLatency) / float64(ufork.ForkLatency)
		if ratio < 2 || ratio > 12 {
			t.Errorf("size %d: fork latency ratio %.1f outside the paper's band", size, ratio)
		}
		if full.ForkLatency < 10*ufork.ForkLatency {
			t.Errorf("size %d: full copy %v should dwarf CoPA %v", size, full.ForkLatency, ufork.ForkLatency)
		}
		if coa.ForkLatency < ufork.ForkLatency {
			t.Errorf("size %d: CoA fork %v below CoPA %v", size, coa.ForkLatency, ufork.ForkLatency)
		}
		if coa.ChildMem < 2*ufork.ChildMem {
			t.Errorf("size %d: CoA child memory %d not well above CoPA %d", size, coa.ChildMem, ufork.ChildMem)
		}
		if ufork.SaveTime >= posix.SaveTime {
			t.Errorf("size %d: μFork save %v not faster than CheriBSD %v", size, ufork.SaveTime, posix.SaveTime)
		}
		if posix.ChildMem < 4*ufork.ChildMem {
			t.Errorf("size %d: CheriBSD child memory %d should far exceed μFork %d", size, posix.ChildMem, ufork.ChildMem)
		}
	}
	// Fork latency under CoPA barely grows with database size (Fig. 4).
	small := cell(SysUForkCoPA, sizes[0])
	large := cell(SysUForkCoPA, sizes[len(sizes)-1])
	if float64(large.ForkLatency) > 1.5*float64(small.ForkLatency) {
		t.Errorf("CoPA fork latency grew %v -> %v across sizes", small.ForkLatency, large.ForkLatency)
	}
}

func TestHelloWorldOrdering(t *testing.T) {
	rows, err := HelloWorld()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[SystemID]HelloRow{}
	for _, r := range rows {
		byID[r.System] = r
	}
	u, p, v := byID[SysUForkCoPA], byID[SysPosix], byID[SysVMClone]
	if !(u.ForkLatency < p.ForkLatency && p.ForkLatency < v.ForkLatency) {
		t.Errorf("fork latency ordering violated: %v / %v / %v", u.ForkLatency, p.ForkLatency, v.ForkLatency)
	}
	if !(u.ChildMem < p.ChildMem && p.ChildMem < v.ChildMem) {
		t.Errorf("memory ordering violated: %d / %d / %d", u.ChildMem, p.ChildMem, v.ChildMem)
	}
	// Fig. 8 bands: μFork ~54 µs, CheriBSD ~197 µs, Nephele ~10.7 ms.
	within := func(got sim.Time, lo, hi float64) bool {
		us := float64(got) / 1000
		return us >= lo && us <= hi
	}
	if !within(u.ForkLatency, 35, 80) {
		t.Errorf("μFork hello fork %v outside the 54 µs band", u.ForkLatency)
	}
	if !within(p.ForkLatency, 140, 260) {
		t.Errorf("CheriBSD hello fork %v outside the 197 µs band", p.ForkLatency)
	}
	if !within(v.ForkLatency, 8000, 13000) {
		t.Errorf("Nephele hello fork %v outside the 10.7 ms band", v.ForkLatency)
	}
}

func TestUnixbenchBands(t *testing.T) {
	rows, err := Unixbench(50, 2000)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[SystemID]UnixbenchRow{}
	for _, r := range rows {
		byID[r.System] = r
	}
	u, p := byID[SysUForkCoPA], byID[SysPosix]
	if u.Spawn >= p.Spawn {
		t.Errorf("spawn: μFork %v not faster than CheriBSD %v", u.Spawn, p.Spawn)
	}
	if u.Context1 >= p.Context1 {
		t.Errorf("context1: μFork %v not faster than CheriBSD %v", u.Context1, p.Context1)
	}
	// Fig. 9 ratios: spawn ≈ 3.5x, context1 ≈ 1.7x.
	sr := float64(p.Spawn) / float64(u.Spawn)
	cr := float64(p.Context1) / float64(u.Context1)
	if sr < 2 || sr > 6 {
		t.Errorf("spawn ratio %.2f outside band", sr)
	}
	if cr < 1.3 || cr > 2.3 {
		t.Errorf("context1 ratio %.2f outside band", cr)
	}
}

func TestFaaSClaims(t *testing.T) {
	rows, err := FaaSSweep(40 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	get := func(id SystemID, cores int) FaaSRow {
		for _, r := range rows {
			if r.System == id && r.WorkerCores == cores {
				return r
			}
		}
		t.Fatalf("missing %s/%d", id, cores)
		return FaaSRow{}
	}
	// μFork beats CheriBSD at every core count (Fig. 6, ~24%).
	for cores := 1; cores <= 3; cores++ {
		u := get(SysUForkCoPA, cores)
		p := get(SysPosix, cores)
		gain := u.ThroughputPerSec/p.ThroughputPerSec - 1
		if gain <= 0.05 {
			t.Errorf("%d cores: μFork gain %.1f%% too small", cores, 100*gain)
		}
		if gain > 0.6 {
			t.Errorf("%d cores: μFork gain %.1f%% implausibly large", cores, 100*gain)
		}
	}
	// Throughput scales with worker cores.
	if get(SysUForkCoPA, 3).Completed <= get(SysUForkCoPA, 1).Completed {
		t.Error("μFork FaaS throughput does not scale with cores")
	}
	// TOCTTOU is negligible for a syscall-free workload (§5.1).
	u3 := get(SysUForkCoPA, 3)
	t3 := get(SysUForkTocttou, 3)
	diff := u3.ThroughputPerSec/t3.ThroughputPerSec - 1
	if diff > 0.03 || diff < -0.03 {
		t.Errorf("TOCTTOU cost %.1f%% should be negligible here", 100*diff)
	}
}

func TestNginxClaims(t *testing.T) {
	rows, err := NginxSweep(20 * sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	get := func(id SystemID, workers, cores int) NginxRow {
		for _, r := range rows {
			if r.System == id && r.Workers == workers && r.Cores == cores {
				return r
			}
		}
		t.Fatalf("missing %s/%dw/%dc", id, workers, cores)
		return NginxRow{}
	}
	// More workers help μFork even on one core (§5.1: +15.6%).
	u1 := get(SysUForkCoPA, 1, 1)
	u3 := get(SysUForkCoPA, 3, 1)
	gain := u3.ThroughputPerSec/u1.ThroughputPerSec - 1
	if gain < 0.05 || gain > 0.45 {
		t.Errorf("μFork 1→3 worker gain %.1f%% outside band (paper: 15.6%%)", 100*gain)
	}
	// Restricted to one core, μFork beats CheriBSD (§5.1: +9%).
	p3 := get(SysPosix, 3, 1)
	if u3.ThroughputPerSec <= p3.ThroughputPerSec {
		t.Errorf("single core: μFork %f not above CheriBSD %f", u3.ThroughputPerSec, p3.ThroughputPerSec)
	}
	// Allowed to scale, CheriBSD wins (§5.1).
	pm := get(SysPosix, 3, 3)
	if pm.ThroughputPerSec <= u3.ThroughputPerSec {
		t.Errorf("multicore CheriBSD %f should beat single-core μFork %f", pm.ThroughputPerSec, u3.ThroughputPerSec)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	var ufork, nephele *Table1Row
	for i := range rows {
		if strings.HasPrefix(rows[i].System, "uFork") {
			ufork = &rows[i]
		}
		if strings.HasPrefix(rows[i].System, "Nephele") {
			nephele = &rows[i]
		}
	}
	if ufork == nil || nephele == nil {
		t.Fatal("measured rows missing")
	}
	if ufork.SAS != "Yes" || ufork.Isolation != "Yes" || ufork.SelfCont != "Yes" ||
		ufork.IPCs != "Fast" || ufork.SegRel != "No" || ufork.ForkExec != "No" {
		t.Errorf("μFork row wrong: %+v", *ufork)
	}
	if nephele.SAS != "No" || nephele.SelfCont != "No" {
		t.Errorf("Nephele row wrong: %+v", *nephele)
	}
}

func TestRenderers(t *testing.T) {
	rows, err := RedisSweep([]uint64{100 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRedis(rows)
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "uFork", "CheriBSD"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderRedis missing %q", want)
		}
	}
	if ab := RenderAblation(rows); !strings.Contains(ab, "TOCTTOU") {
		t.Errorf("RenderAblation output: %q", ab)
	}
	if tb := RenderTable1(Table1()); !strings.Contains(tb, "Table 1") {
		t.Error("RenderTable1 missing title")
	}
}
