package bench

import (
	"fmt"

	"ufork/internal/apps/forkserver"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// ForkServerRow compares fork-server fuzzing against the re-exec baseline
// (§2.1 pattern U5 — the fuzzing motivation for fork). This experiment is
// an extension of this repository: the paper motivates it but does not
// evaluate it.
type ForkServerRow struct {
	System     SystemID
	Mode       string // "fork-server" | "re-exec"
	Executions int
	Crashes    int
	PerExec    sim.Time
}

// ForkServerSweep runs both modes on μFork and the monolithic baseline.
func ForkServerSweep(nInputs int) ([]ForkServerRow, error) {
	var rows []ForkServerRow
	inputs := make([][]byte, 0, nInputs)
	for i := 0; i < nInputs; i++ {
		if i%10 == 9 {
			inputs = append(inputs, []byte(fmt.Sprintf("BUG!%06d", i)))
		} else {
			inputs = append(inputs, []byte(fmt.Sprintf("input-%06d", i)))
		}
	}
	spec := kernel.HelloWorldSpec()
	spec.Name = "fuzz-target"
	spec.HeapPages = 128

	for _, id := range []SystemID{SysUForkCoPA, SysPosix} {
		for _, mode := range []string{"fork-server", "re-exec"} {
			k := build(id, 2, 1<<16)
			row := ForkServerRow{System: id, Mode: mode}
			err := runRoot(k, spec, func(p *kernel.Proc) error {
				var res forkserver.Result
				var err error
				if mode == "fork-server" {
					res, err = forkserver.RunForkServer(p, inputs)
				} else {
					res, err = forkserver.RunReExec(p, inputs)
				}
				if err != nil {
					return err
				}
				row.Executions = res.Executions
				row.Crashes = res.Crashes
				row.PerExec = res.PerExec
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("bench: forkserver %s/%s: %w", id, mode, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderForkServer formats the fuzzing ablation.
func RenderForkServer(rows []ForkServerRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			string(r.System), r.Mode,
			fmt.Sprintf("%d", r.Executions), fmt.Sprintf("%d", r.Crashes),
			Us(r.PerExec),
		})
	}
	return "Extension — fork-server fuzzing (pattern U5) vs re-exec baseline\n" +
		Table([]string{"system", "mode", "execs", "crashes", "per exec"}, out)
}
