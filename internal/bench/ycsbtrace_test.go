package bench

import (
	"testing"

	"ufork/internal/bench/ycsb"
	"ufork/internal/kernel"
	"ufork/internal/obs/causal"
)

// TestYCSBTraceExemplarBGSave is the harness-level acceptance check for
// the causal plane: a kvstore cell's BGSAVE exemplar must span the
// snapshot fork — a fork flow edge to the child span — and its root
// critical path must decompose into at least three labeled segments that
// sum exactly to the trace's recorded duration. Exactly, because the
// checkpoint cursor tiles the delay taxonomy over the op window; any gap
// or overlap means attribution is inventing or losing time.
func TestYCSBTraceExemplarBGSave(t *testing.T) {
	// Arm a shared plane through the kernel-construction hook, the way the
	// live telemetry server does, so the cell's private-plane fallback is
	// bypassed and the test can read the reservoir afterwards.
	pl := causal.New(0)
	pl.Enable()
	prev := kernel.TrackNew
	kernel.TrackNew = func(k *kernel.Kernel) { k.ArmCausal(pl) }
	defer func() { kernel.TrackNew = prev }()

	c := ycsbCell{
		workload: "kvstore", mix: ycsb.MixA, locks: LocksBKL, cores: 2,
		keys: 512, ops: 800, seed: 11, slo: DefaultYCSBSLO("kvstore", false),
	}
	row, err := ycsbKV(c)
	if err != nil {
		t.Fatal(err)
	}
	if row.BGSaves == 0 {
		t.Fatal("cell completed no BGSAVE forks; nothing to trace")
	}

	snap := pl.Snapshot(0)
	if snap.Finished == 0 || snap.Exemplars == 0 {
		t.Fatalf("plane retained nothing: finished=%d exemplars=%d", snap.Finished, snap.Exemplars)
	}
	// Every retained bgsave exemplar must obey the tiling invariant; the
	// structural assertions below run against the exemplar whose root
	// decomposes into the most segments (steady-state cycles show the full
	// latency / lock:bkl / block:child path; the first cycle can start at
	// the block).
	var bg *causal.TraceJSON
	bgSegs := func(tr *causal.TraceJSON) int {
		for _, s := range tr.Spans {
			if s.Root {
				return len(s.Segs)
			}
		}
		return 0
	}
	for gi := range snap.Groups {
		if snap.Groups[gi].Group != ycsbGroup(c) {
			continue
		}
		for ti := range snap.Groups[gi].Traces {
			tr := &snap.Groups[gi].Traces[ti]
			if tr.Op != "bgsave" {
				continue
			}
			var sum uint64
			for _, s := range tr.Spans {
				if !s.Root {
					continue
				}
				for _, seg := range s.Segs {
					sum += seg.DurNS
				}
			}
			if sum != tr.DurNS {
				t.Errorf("bgsave exemplar #%d: root segments sum to %d ns, recorded latency %d ns", tr.ID, sum, tr.DurNS)
			}
			if bg == nil || bgSegs(tr) > bgSegs(bg) {
				bg = tr
			}
		}
	}
	if bg == nil {
		t.Fatalf("no bgsave exemplar in group %s reservoir (BGSAVE cycles are the cell's slowest ops)", ycsbGroup(c))
	}

	forkEdges := 0
	for _, e := range bg.Edges {
		if e.Kind == "fork" {
			forkEdges++
		}
	}
	if forkEdges == 0 {
		t.Errorf("bgsave exemplar #%d has no fork flow edge: %+v", bg.ID, bg.Edges)
	}
	if len(bg.Spans) < 2 {
		t.Errorf("bgsave exemplar #%d has %d spans, want parent + snapshot child", bg.ID, len(bg.Spans))
	}

	var root *causal.SpanJSON
	for si := range bg.Spans {
		if bg.Spans[si].Root {
			root = &bg.Spans[si]
		}
	}
	if root == nil {
		t.Fatalf("bgsave exemplar #%d has no root span", bg.ID)
	}
	if len(root.Segs) < 3 {
		t.Errorf("root critical path has %d segments, want >= 3: %+v", len(root.Segs), root.Segs)
	}
	var sum uint64
	labels := map[string]bool{}
	for _, s := range root.Segs {
		sum += s.DurNS
		labels[s.Label] = true
	}
	if sum != bg.DurNS {
		t.Errorf("root segments sum to %d ns, recorded latency %d ns — attribution must tile the op window exactly", sum, bg.DurNS)
	}
	if !labels["block:child"] {
		t.Errorf("bgsave root path never blocked on the snapshot child: labels %v", labels)
	}
	if bg.Cause == "" || bg.CauseFrac <= 0 {
		t.Errorf("classifier gave no verdict: cause=%q frac=%v", bg.Cause, bg.CauseFrac)
	}
}
