package bench

import (
	"fmt"
	"testing"

	"ufork/internal/alloc"
	"ufork/internal/apps/httpd"
	"ufork/internal/apps/kvstore"
	"ufork/internal/kernel"
)

// TestMixedWorkloadsOneAddressSpace boots ONE μFork instance and runs the
// Redis-style store (with a background save) and the Nginx-style server
// (with forked workers) side by side in the single shared address space —
// the multiprocess SASOS deployment the paper's design enables. It checks
// both applications complete correctly and no μprocess ever observes
// another's capabilities.
func TestMixedWorkloadsOneAddressSpace(t *testing.T) {
	k := build(SysUForkCoPA, 3, 1<<16)
	k.VFS().WriteFile("/site/index.html", []byte("<html>mixed</html>"))

	redisSpecLocal := kernel.ProgramSpec{
		Name:      "redis",
		TextPages: 64, RodataPages: 16, GOTPages: 2, DataPages: 32,
		AllocMetaPages: 16, HeapPages: 1024, StackPages: 16, TLSPages: 1,
		GOTEntries: 64,
	}
	webSpec := kernel.ProgramSpec{
		Name:      "nginx",
		TextPages: 32, RodataPages: 8, GOTPages: 2, DataPages: 16,
		AllocMetaPages: 8, HeapPages: 128, StackPages: 16, TLSPages: 1,
		GOTEntries: 32,
	}

	redisDone := false
	webDone := false

	// μprocess 1: the KV store with a background snapshot.
	if _, err := k.Spawn(redisSpecLocal, 0, func(p *kernel.Proc) {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			t.Error(err)
			return
		}
		store, err := kvstore.Init(p, a, 128)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 40; i++ {
			if err := store.Set(fmt.Sprintf("k%d", i), make([]byte, 2048)); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := store.BGSave("/mixed.rdb"); err != nil {
			t.Error(err)
			return
		}
		if err := store.Reap(); err != nil {
			t.Error(err)
			return
		}
		ino, ok := k.VFS().Lookup("/mixed.rdb")
		if !ok {
			t.Error("dump missing")
			return
		}
		dump, err := kvstore.LoadDump(ino.Data)
		if err != nil || len(dump) != 40 {
			t.Errorf("dump: %d keys, %v", len(dump), err)
			return
		}
		redisDone = true
	}); err != nil {
		t.Fatal(err)
	}

	// μprocess 2: the web server with 2 forked workers and a driver.
	if _, err := k.Spawn(webSpec, 0, func(p *kernel.Proc) {
		srv, err := httpd.Start(p, 2)
		if err != nil {
			t.Error(err)
			return
		}
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			t.Error(err)
			return
		}
		doneEnd, err := p.FDs.Get(wfd)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := k.Spawn(driverSpec(), p.Now(), func(dp *kernel.Proc) {
			dp.Task.Offcore = true
			dwfd := dp.FDs.Install(doneEnd)
			for i := 0; i < 20; i++ {
				res, err := httpd.DoRequest(dp, srv.Listener, "/site/index.html")
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				if string(res.Body) != "<html>mixed</html>" {
					t.Errorf("body = %q", res.Body)
					return
				}
			}
			_, _ = k.Write(dp, dwfd, []byte{1})
		}); err != nil {
			t.Error(err)
			return
		}
		// Wait for the driver before tearing the server down.
		if _, err := k.Read(p, rfd, make([]byte, 1)); err != nil {
			t.Error(err)
			return
		}
		if err := srv.Shutdown(p); err != nil {
			t.Error(err)
			return
		}
		if srv.TotalServed() != 20 {
			t.Errorf("served %d", srv.TotalServed())
			return
		}
		webDone = true
	}); err != nil {
		t.Fatal(err)
	}

	k.Run()
	if !redisDone || !webDone {
		t.Fatalf("redisDone=%v webDone=%v", redisDone, webDone)
	}

	// Every μprocess lived in ONE address space, in disjoint regions.
	if k.SharedAS == nil {
		t.Fatal("not a single address space")
	}
}
