package bench

import (
	"fmt"

	"ufork/internal/kernel"
)

// FootprintDepth is the fork-chain depth the footprint sweep drives: a
// root plus FootprintDepth generations, every ancestor kept alive in
// Wait while its descendants run, so the whole chain shares one image
// modulo the pages each generation dirties.
const FootprintDepth = 5

// footprintDirtyPages is how many heap pages each generation writes
// before sampling — the working set that must go private under any copy
// strategy. Small against the image so sharing has room to show.
const footprintDirtyPages = 8

// FootprintSample is the system-wide memory decomposition at one fork
// depth, summed over all live μprocesses from their smaps walks.
type FootprintSample struct {
	Depth  int    // generations forked so far (0 = root only)
	Live   int    // live μprocesses at the sample
	RSS    uint64 // Σ resident bytes (counts shared frames once per mapper)
	PSS    uint64 // Σ proportional bytes (ΣPSS ≈ distinct live frames)
	USS    uint64 // Σ bytes mapped by exactly one μprocess
	Shared uint64 // RSS − USS: bytes still shared with an ancestor
}

// FootprintRow is one system's sweep: a sample after each generation.
type FootprintRow struct {
	System  SystemID
	Samples []FootprintSample
}

// footprintSystems compares the three μFork copy strategies: the sweep
// exists to show CoPA/CoA retaining shared bytes that eager copy forfeits
// at the first fork.
var footprintSystems = []SystemID{SysUForkCoPA, SysUForkCoA, SysUForkFull}

// Footprint sweeps fork depth × copy mode and reports bytes shared over
// time: after each generation dirties its working set, every live
// μprocess is smaps-walked and the RSS/PSS/USS totals recorded. Lazy
// strategies keep ancestors' pages shared down the whole chain; eager
// copy privatizes everything at each fork.
func Footprint() ([]FootprintRow, error) {
	var rows []FootprintRow
	for _, id := range footprintSystems {
		row, err := footprintOnce(id)
		if err != nil {
			return nil, fmt.Errorf("bench: footprint %s: %w", id, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// footprintTotals smaps-walks every live μprocess and sums the
// decomposition.
func footprintTotals(k *kernel.Kernel, depth int) FootprintSample {
	s := FootprintSample{Depth: depth}
	for _, st := range k.ProcStats() {
		if st.Exited {
			continue
		}
		r, ok := k.SmapsOf(kernel.PID(st.PID))
		if !ok {
			continue
		}
		s.Live++
		s.RSS += r.Total.RSSBytes
		s.PSS += r.Total.PSSBytes
		s.USS += r.Total.USSBytes
	}
	s.Shared = s.RSS - s.USS
	return s
}

func footprintOnce(id SystemID) (FootprintRow, error) {
	k := build(id, 2, 1<<16)
	row := FootprintRow{System: id}
	var chainErr error
	spec := kernel.HelloWorldSpec()
	err := runRoot(k, spec, func(p *kernel.Proc) error {
		// Warm the root like a started program and plant heap capabilities
		// so CoPA's pointer-access path has relocation work down the chain.
		if err := touchPages(p, kernel.SegHeap, footprintDirtyPages); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if err := p.StoreCap(p.HeapCap, uint64(i*64), p.HeapCap); err != nil {
				return err
			}
		}
		row.Samples = append(row.Samples, footprintTotals(k, 0))

		var chain func(c *kernel.Proc, depth int)
		chain = func(c *kernel.Proc, depth int) {
			defer k.Exit(c, 0)
			if err := touchPages(c, kernel.SegHeap, footprintDirtyPages); err != nil {
				chainErr = fmt.Errorf("depth %d touch: %w", depth, err)
				return
			}
			// Sample with every ancestor alive: they are parked in Wait,
			// their mappings intact, so sharing with them is visible.
			row.Samples = append(row.Samples, footprintTotals(k, depth))
			if depth == FootprintDepth {
				return
			}
			if _, err := k.Fork(c, func(gc *kernel.Proc) { chain(gc, depth+1) }); err != nil {
				chainErr = fmt.Errorf("depth %d fork: %w", depth, err)
				return
			}
			if _, status, err := k.Wait(c); err != nil {
				chainErr = fmt.Errorf("depth %d wait: %w", depth, err)
			} else if status != 0 && chainErr == nil {
				chainErr = fmt.Errorf("depth %d child exited %d", depth, status)
			}
		}
		if _, err := k.Fork(p, func(c *kernel.Proc) { chain(c, 1) }); err != nil {
			return err
		}
		if _, status, err := k.Wait(p); err != nil {
			return err
		} else if status != 0 && chainErr == nil {
			return fmt.Errorf("chain exited %d", status)
		}
		return chainErr
	})
	if err != nil {
		return row, err
	}
	foldRun("footprint."+string(id), k)
	return row, nil
}

// RenderFootprint formats the sweep: one block per system plus the
// comparative shared-bytes-by-depth table the experiment exists for.
func RenderFootprint(rows []FootprintRow) string {
	out := "Footprint sweep — memory decomposition vs fork depth (ancestors kept alive)\n"
	for _, r := range rows {
		var t [][]string
		for _, s := range r.Samples {
			t = append(t, []string{
				fmt.Sprintf("%d", s.Depth), fmt.Sprintf("%d", s.Live),
				MB(s.RSS), MB(s.PSS), MB(s.USS), MB(s.Shared),
			})
		}
		out += fmt.Sprintf("\n%s\n", r.System) +
			Table([]string{"depth", "live", "rss", "pss", "uss", "shared"}, t)
	}
	var cmp [][]string
	for d := 0; d <= FootprintDepth; d++ {
		cells := []string{fmt.Sprintf("%d", d)}
		for _, r := range rows {
			if d < len(r.Samples) {
				cells = append(cells, MB(r.Samples[d].Shared))
			} else {
				cells = append(cells, "-")
			}
		}
		cmp = append(cmp, cells)
	}
	hdr := []string{"depth"}
	for _, r := range rows {
		hdr = append(hdr, string(r.System))
	}
	return out + "\nBytes still shared with ancestors, by fork depth\n" + Table(hdr, cmp)
}
