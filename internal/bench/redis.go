package bench

import (
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/apps/kvstore"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// Redis experiment parameters (§5.1 "Redis snapshots"): the database is
// populated with 100 KB entries and a background save is triggered.
const (
	redisValueBytes = 100 * 1024
	// posixArenaFloorPages is the allocator arena CheriBSD's Redis touches
	// regardless of database size. Calibration: Fig. 5's discussion — the
	// forked child's proportional set is ~56 MB at a 100 MB database and
	// the paper attributes the bulk to allocator memory consumption, i.e.
	// an arena of roughly 100 MB shared between the two processes plus a
	// floor that keeps small databases expensive to fork (Fig. 4 shows the
	// 5–10× fork-latency gap across the whole range, including 100 KB).
	posixArenaFloorPages = 12800 // 50 MB
)

// RedisSizesQuick are the database sizes exercised in quick runs.
var RedisSizesQuick = []uint64{100 * 1024, 1 << 20, 10 << 20}

// RedisSizesFull adds the paper's 100 MB end point.
var RedisSizesFull = []uint64{100 * 1024, 1 << 20, 10 << 20, 100 << 20}

// RedisRow is one (system, size) measurement feeding Figures 3, 4 and 5.
type RedisRow struct {
	System      SystemID
	DBBytes     uint64
	ForkLatency sim.Time // Fig. 4
	SaveTime    sim.Time // Fig. 3: BGSAVE trigger → parent reaps the child
	ChildMem    uint64   // Fig. 5: per-process memory of the snapshot child
	PagesCopied uint64   // snapshot child page copies (CoPA mechanics)
}

// redisSystems are the series of Figures 3–5.
var redisSystems = []SystemID{SysUForkCoPA, SysUForkTocttou, SysUForkCoA, SysUForkFull, SysPosix}

// redisSpec builds the μprocess image for a database of dbBytes.
func redisSpec(id SystemID, k *kernel.Kernel, dbBytes uint64) kernel.ProgramSpec {
	spec := kernel.ProgramSpec{
		Name:      "redis",
		TextPages: 256, RodataPages: 64, GOTPages: 4, DataPages: 256,
		AllocMetaPages: 32, StackPages: 64, TLSPages: 1,
		GOTEntries: 256,
	}
	dbPages := int(dbBytes/kernel.PageSize) + 1
	if k.Machine.StaticHeapPages > 0 {
		// μFork: the build-time static heap (136.7 MB, Fig. 4).
		spec.HeapPages = k.Machine.StaticHeapPages
	} else {
		// CheriBSD: demand-paged, sized to the data plus allocator slack.
		spec.HeapPages = dbPages + dbPages/4 + 2048 + posixArenaFloorPages
	}
	return spec
}

// RedisSweep runs the snapshot experiment for every system and size.
func RedisSweep(sizes []uint64) ([]RedisRow, error) {
	var rows []RedisRow
	for _, id := range redisSystems {
		for _, size := range sizes {
			row, err := redisOnce(id, size)
			if err != nil {
				return nil, fmt.Errorf("bench: redis %s/%d: %w", id, size, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// redisOnce runs one (system, size) cell.
func redisOnce(id SystemID, dbBytes uint64) (RedisRow, error) {
	// Frames: database + static heap + full-copy child, with headroom.
	frames := 2*int(dbBytes/kernel.PageSize) + 90000
	k := build(id, 2, frames)
	row := RedisRow{System: id, DBBytes: dbBytes}
	spec := redisSpec(id, k, dbBytes)

	err := runRoot(k, spec, func(p *kernel.Proc) error {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			return err
		}
		if !k.Machine.SingleAddressSpace {
			// jemalloc arena pre-touch on the monolithic baseline (see
			// posixArenaFloorPages).
			if err := touchHeapPages(p, posixArenaFloorPages); err != nil {
				return err
			}
		}
		nkeys := int(dbBytes / redisValueBytes)
		if nkeys < 1 {
			nkeys = 1
		}
		valBytes := int(dbBytes) / nkeys
		store, err := kvstore.Init(p, a, bucketCount(nkeys))
		if err != nil {
			return err
		}
		val := make([]byte, valBytes)
		for i := range val {
			val[i] = byte(i * 131)
		}
		for i := 0; i < nkeys; i++ {
			if err := store.Set(fmt.Sprintf("key:%06d", i), val); err != nil {
				return err
			}
		}

		// Trigger BGSAVE, then keep "serving": the parent rewrites a few
		// values while the child snapshots, exercising parent-side CoW.
		t0 := p.Now()
		var childMem uint64
		var childCopied uint64
		_, err = k.Fork(p, func(c *kernel.Proc) {
			cs, err := kvstore.Attach(c)
			if err != nil {
				k.Exit(c, 1)
			}
			if err := cs.Save("/dump.rdb"); err != nil {
				k.Exit(c, 1)
			}
			childMem = memMetric(c)
			childCopied = c.AS.Stats.PagesCopied.Value()
			k.Exit(c, 0)
		})
		if err != nil {
			return err
		}
		row.ForkLatency = p.LastFork.Latency
		// The parent keeps serving during the snapshot: ~5% of keys are
		// rewritten, so the child retains their fork-time value pages —
		// the bulk of the CoPA child's 6 MB in Fig. 5.
		for i := 0; i < nkeys/20+1; i++ {
			if err := store.Set(fmt.Sprintf("key:%06d", i), val); err != nil {
				return err
			}
		}
		if _, status, err := k.Wait(p); err != nil {
			return err
		} else if status != 0 {
			return fmt.Errorf("snapshot child failed: %d", status)
		}
		row.SaveTime = p.Now() - t0
		row.ChildMem = childMem
		row.PagesCopied = childCopied

		// Sanity: the dump must parse and carry every key.
		ino, ok := k.VFS().Lookup("/dump.rdb")
		if !ok {
			return fmt.Errorf("dump missing")
		}
		dump, err := kvstore.LoadDump(ino.Data)
		if err != nil {
			return err
		}
		if len(dump) != nkeys {
			return fmt.Errorf("dump has %d keys, want %d", len(dump), nkeys)
		}
		return nil
	})
	foldRun(fmt.Sprintf("redis.%s.%s", id, MB(dbBytes)), k)
	return row, err
}

// touchHeapPages dirties the first n heap pages (allocator arena warm-up).
func touchHeapPages(p *kernel.Proc, n int) error {
	one := []byte{1}
	for i := 0; i < n; i++ {
		if err := p.Store(p.HeapCap, uint64(i)*kernel.PageSize, one); err != nil {
			return err
		}
	}
	return nil
}

func bucketCount(nkeys int) int {
	n := 1024
	for n < nkeys*2 {
		n *= 2
	}
	return n
}

// RenderAblation summarises the §5.2 copy-strategy ablation and the
// TOCTTOU overhead from a Redis sweep: CoPA vs CoA vs full-copy fork
// latency factors at the largest database, and the TOCTTOU save-time cost.
func RenderAblation(rows []RedisRow) string {
	byKey := map[string]RedisRow{}
	var maxSize uint64
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.System, r.DBBytes)] = r
		if r.DBBytes > maxSize {
			maxSize = r.DBBytes
		}
	}
	get := func(id SystemID) (RedisRow, bool) {
		r, ok := byKey[fmt.Sprintf("%s/%d", id, maxSize)]
		return r, ok
	}
	copa, okA := get(SysUForkCoPA)
	coa, okB := get(SysUForkCoA)
	full, okC := get(SysUForkFull)
	toct, okD := get(SysUForkTocttou)
	if !okA || !okB || !okC || !okD {
		return ""
	}
	var out [][]string
	out = append(out, []string{"full-copy / CoPA fork latency",
		fmt.Sprintf("%.1fx (paper: up to 89x)", float64(full.ForkLatency)/float64(copa.ForkLatency))})
	out = append(out, []string{"CoA / CoPA fork latency",
		fmt.Sprintf("%.2fx (paper: up to 1.18x)", float64(coa.ForkLatency)/float64(copa.ForkLatency))})
	out = append(out, []string{"CoA / CoPA child memory",
		fmt.Sprintf("%.1fx", float64(coa.ChildMem)/float64(copa.ChildMem))})
	out = append(out, []string{"TOCTTOU save-time overhead",
		fmt.Sprintf("%.1f%% (paper: 2.6%% at 100 MB)",
			100*(float64(toct.SaveTime)/float64(copa.SaveTime)-1))})
	return fmt.Sprintf("Ablation at %s database (copy strategies, §5.2 + TOCTTOU §4.4)\n", MB(maxSize)) +
		Table([]string{"metric", "value"}, out)
}

// RenderRedis formats the sweep as the three figure tables.
func RenderRedis(rows []RedisRow) string {
	var fig3, fig4, fig5 [][]string
	for _, r := range rows {
		size := MB(r.DBBytes)
		fig3 = append(fig3, []string{string(r.System), size, Ms(r.SaveTime)})
		fig4 = append(fig4, []string{string(r.System), size, Us(r.ForkLatency)})
		fig5 = append(fig5, []string{string(r.System), size, MB(r.ChildMem)})
	}
	return "Figure 3 — Redis DB overall save times\n" +
		Table([]string{"system", "db size", "save time"}, fig3) +
		"\nFigure 4 — Redis fork latency\n" +
		Table([]string{"system", "db size", "fork latency"}, fig4) +
		"\nFigure 5 — Redis forked-process memory consumption\n" +
		Table([]string{"system", "db size", "child memory"}, fig5)
}
