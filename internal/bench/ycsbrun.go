package bench

import (
	"errors"
	"fmt"
	"strings"

	"ufork/internal/alloc"
	"ufork/internal/apps/httpd"
	"ufork/internal/apps/kvstore"
	"ufork/internal/bench/ycsb"
	"ufork/internal/chaos"
	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/causal"
	"ufork/internal/obs/flight"
	"ufork/internal/obs/profile"
	"ufork/internal/sim"
)

// YCSB load-harness parameters. The fleet shapes mirror the contention
// sweep (four servers, eight off-core drivers) so the two experiments
// read against each other; the full-mode record/op counts mirror
// SNIPPETS.md Snippet 3's YCSB run against Redis (recordcount=100000,
// operationcount in the millions).
const (
	ycsbWorkers    = 4   // kvstore worker fleet and httpd worker fleet
	ycsbDrivers    = 8   // httpd closed-loop client drivers
	ycsbValueBytes = 128 // value blob / document body size
	// ycsbThink is the kvstore workers' closed-loop client think time
	// between operations; it is virtual-time overhead only (excluded from
	// per-op latency) and lets the worker fleet interleave with the
	// BGSAVE snapshotter the way a real Redis box does.
	ycsbThink = 2 * sim.Microsecond
	// ycsbAOFBytes is the append-only-file record written per update.
	ycsbAOFBytes = 64
)

// Quick/full workload scales. Quick keeps the whole golden sweep in CI
// seconds; full is the paper-scale soak (10^5 keys, 10^6+ ops per cell).
const (
	YCSBKeysQuick = 4096
	YCSBOpsQuick  = 6000
	YCSBKeysFull  = 100_000
	YCSBOpsFull   = 1_000_000
)

// YCSBWorkloads are the driven applications.
var YCSBWorkloads = []string{"kvstore", "httpd"}

// YCSBOpts configures a sweep. Zero-valued fields take the quick-mode
// defaults.
type YCSBOpts struct {
	Mixes []ycsb.Mix
	Keys  int
	Ops   int // total ops per cell, split across the worker/driver fleet
	Cores []int
	Locks []string // LocksBKL / LocksSMP
	Seed  int64
	// Chaos arms seeded fault injection (EINTR storms + spurious write
	// faults) on every cell instead of appending the single dedicated
	// chaos cell per workload the default sweep carries.
	Chaos bool
	// SLO, when non-nil, replaces the built-in per-workload SLOs on every
	// cell.
	SLO *ycsb.SLO
	// Profile, when non-nil, is armed on every cell's kernel, aggregating
	// stack-attributed virtual-time samples across the whole sweep — the
	// input to ProfDiff and the -profile bench flag.
	Profile *profile.Plane
}

func (o YCSBOpts) withDefaults() YCSBOpts {
	if len(o.Mixes) == 0 {
		o.Mixes = ycsb.Mixes
	}
	if o.Keys == 0 {
		o.Keys = YCSBKeysQuick
	}
	if o.Ops == 0 {
		o.Ops = YCSBOpsQuick
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{1, 4}
	}
	if len(o.Locks) == 0 {
		o.Locks = []string{LocksBKL, LocksSMP}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ycsbChaosPlan is the fault plan of a chaos-armed cell: an EINTR storm
// over the syscall surface plus spurious write-protect faults. Alloc
// failures stay off — a load harness measures latency under recoverable
// faults, not OOM-kill behavior (the stress soak owns that).
func ycsbChaosPlan() chaos.Plan {
	return chaos.Plan{SyscallErrEvery: 97, SpuriousFaultEvery: 131}
}

// YCSBRow is one finished cell of the sweep.
type YCSBRow struct {
	Workload string
	Mix      ycsb.Mix
	Chooser  string
	Locks    string
	Cores    int
	Keys     int
	Chaos    bool

	Ops      int // completed ops (reads + updates, including errored ops)
	Reads    int
	Updates  int
	Errs     int
	BGSaves  int // background-save forks completed mid-run (kvstore)
	Injected int // chaos faults fired (chaos cells)

	WindowNS uint64 // virtual ns from fleet launch to last op retired
	Lat      obs.HistSummary

	SLO      ycsb.SLO
	Breaches []ycsb.Breach
	// flightDump is the flight-recorder tail captured when the cell
	// breached its SLO; YCSBFailures embeds it in the returned error.
	flightDump string
	// traceDump is the causal plane's top slow-op trace trees captured on
	// breach: each exemplar names its dominant critical-path segment, so
	// the failure report says where the tail went, not just that it blew.
	traceDump string
}

// Result folds the row into the summary shape the SLO evaluates.
func (r YCSBRow) Result() ycsb.Result {
	return ycsb.Result{Ops: r.Ops, Errs: r.Errs, WindowNS: r.WindowNS, Lat: r.Lat}
}

// Throughput is the cell's ops/s in virtual time.
func (r YCSBRow) Throughput() float64 { return r.Result().Throughput() }

// DefaultYCSBSLO is the per-workload latency contract the sweep asserts
// when no explicit SLO is given. Clean cells allow no errors; chaos
// cells trade an error budget (the EINTR storm surfaces as failed ops)
// for looser tails. Ceilings are set ~2-4x above the measured quick-mode
// envelope at 1 core under the BKL — the slowest clean configuration —
// so they catch collapse, not noise.
func DefaultYCSBSLO(workload string, chaosArmed bool) ycsb.SLO {
	switch workload {
	case "kvstore":
		if chaosArmed {
			return ycsb.SLO{MaxP99: 4_000_000, MaxP999: 20_000_000, MaxErrorRate: 0.05}
		}
		return ycsb.SLO{MinThroughput: 20_000, MaxP50: 400_000, MaxP99: 2_000_000, MaxP999: 10_000_000, MaxErrorRate: 0}
	case "httpd":
		if chaosArmed {
			return ycsb.SLO{MaxP99: 20_000_000, MaxP999: 50_000_000, MaxErrorRate: 0.05}
		}
		return ycsb.SLO{MinThroughput: 8_000, MaxP50: 2_000_000, MaxP99: 10_000_000, MaxP999: 25_000_000, MaxErrorRate: 0}
	}
	return ycsb.SLO{MaxErrorRate: -1}
}

// ycsbCell is one sweep coordinate.
type ycsbCell struct {
	workload string
	mix      ycsb.Mix
	locks    string
	cores    int
	keys     int
	ops      int
	seed     int64
	chaos    bool
	slo      ycsb.SLO
	prof     *profile.Plane
}

// cellSeed derives a per-cell seed: every (workload, mix, locks, cores)
// coordinate draws a distinct deterministic stream, and every client in
// the cell offsets further from this.
func (o YCSBOpts) cellSeed(workload string, mix ycsb.Mix, locks string, cores int) int64 {
	h := uint64(o.Seed)
	for _, s := range []string{workload, mix.Name, locks} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	h = (h ^ uint64(cores)) * 0x100000001b3
	return int64(h & 0x7fffffffffffffff)
}

// YCSBSweep runs the workload × mix × locks × cores matrix, then (unless
// Chaos already armed everything) one dedicated chaos cell per workload
// on the most parallel split-lock configuration — the run that proves
// the SLO plane stays honest under fault injection.
func YCSBSweep(opts YCSBOpts) ([]YCSBRow, error) {
	o := opts.withDefaults()
	var cells []ycsbCell
	for _, workload := range YCSBWorkloads {
		for _, locks := range o.Locks {
			for _, cores := range o.Cores {
				for _, mix := range o.Mixes {
					cells = append(cells, ycsbCell{
						workload: workload, mix: mix, locks: locks, cores: cores,
						keys: o.Keys, ops: o.Ops,
						seed:  o.cellSeed(workload, mix, locks, cores),
						chaos: o.Chaos,
					})
				}
			}
		}
	}
	if !o.Chaos {
		maxCores := o.Cores[len(o.Cores)-1]
		chaosLocks := o.Locks[len(o.Locks)-1]
		for _, workload := range YCSBWorkloads {
			cells = append(cells, ycsbCell{
				workload: workload, mix: ycsb.MixA, locks: chaosLocks, cores: maxCores,
				keys: o.Keys, ops: o.Ops,
				seed:  o.cellSeed(workload, ycsb.MixA, chaosLocks, maxCores) + 1,
				chaos: true,
			})
		}
	}
	rows := make([]YCSBRow, 0, len(cells))
	for _, c := range cells {
		if o.SLO != nil {
			c.slo = *o.SLO
		} else {
			c.slo = DefaultYCSBSLO(c.workload, c.chaos)
		}
		c.prof = o.Profile
		var (
			row YCSBRow
			err error
		)
		switch c.workload {
		case "kvstore":
			row, err = ycsbKV(c)
		case "httpd":
			row, err = ycsbHTTPD(c)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: ycsb %s/%s/%s/%dc: %w", c.workload, c.mix.Name, c.locks, c.cores, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ycsbFlight picks the cell's flight recorder: the live plane's default
// recorder when telemetry armed it, otherwise a private per-cell ring so
// a breach dump is always available.
func ycsbFlight(k *kernel.Kernel) *flight.Recorder {
	if flight.Default.On() {
		return flight.Default
	}
	fr := flight.New(flight.DefaultShards, flight.DefaultPerShard)
	fr.Enable()
	k.Flight = fr
	return fr
}

// ycsbCausal picks the cell's trace-context plane: the live telemetry
// plane when Track armed one, otherwise a private per-cell plane — so a
// breach report always has exemplar trace trees, and a served sweep
// accumulates every cell's exemplars on /traces.
func ycsbCausal(k *kernel.Kernel) *causal.Plane {
	if k.Causal.On() {
		return k.Causal
	}
	pl := causal.New(0)
	pl.Enable()
	k.ArmCausal(pl)
	return pl
}

// ycsbGroup names a cell's exemplar reservoir.
func ycsbGroup(c ycsbCell) string {
	return fmt.Sprintf("ycsb/%s/%s/%s/%dc", c.workload, c.mix.Name, c.locks, c.cores)
}

// ycsbTraceTop bounds the trace trees a breach report embeds.
const ycsbTraceTop = 3

// ycsbFinish computes the row's latency summary, evaluates the SLO, and
// captures the breach dumps. Called at window close, while the cell's
// kernel is still up: the recorder tail then shows the workload's last
// syscalls and faults instead of the teardown's frame frees, and the
// causal plane still holds the cell's slow-op exemplars.
func ycsbFinish(row *YCSBRow, hist *obs.Histogram, fr *flight.Recorder, pl *causal.Plane) {
	row.Lat = hist.Summary()
	row.Breaches = row.SLO.Evaluate(row.Result())
	if len(row.Breaches) > 0 {
		row.flightDump = fr.TextDump(flight.DumpTail)
		row.traceDump = pl.RenderTop(ycsbTraceTop)
	}
}

// ycsbObserve records one op latency into the cell histogram and the
// process-wide registry family the telemetry plane exposes
// (ufork_ycsb_<workload>_mix<x>_latency_ns in /metrics).
func ycsbObserve(hist *obs.Histogram, workload, mix string, lat sim.Time) {
	hist.Observe(uint64(lat))
	obs.Default.Reg.Histogram("ycsb." + workload + ".mix" + strings.ToLower(mix) + ".latency").Observe(uint64(lat))
}

// ycsbKVSpec is the kvstore server image: the machine's build-time
// static heap, as the Redis experiments use, so full-mode keyspaces fit,
// and a block-descriptor table scaled to the keyspace (each live key
// holds a handful of allocator blocks — entry, key string, value blob).
func ycsbKVSpec(k *kernel.Kernel, keys int) kernel.ProgramSpec {
	metaBytes := (8*keys + 4096) * 32 // 8 descriptors/key of 32 B, plus slack
	spec := kernel.ProgramSpec{
		Name:      "kvsrv",
		TextPages: 256, RodataPages: 64, GOTPages: 4, DataPages: 256,
		AllocMetaPages: metaBytes/int(kernel.PageSize) + 1,
		HeapPages:      8192, StackPages: 64, TLSPages: 1,
		GOTEntries: 256,
	}
	if k.Machine.StaticHeapPages > spec.HeapPages {
		spec.HeapPages = k.Machine.StaticHeapPages
	}
	return spec
}

func ycsbKeyName(i int) string { return fmt.Sprintf("key:%06d", i) }

// reapRetry waits out one child, retrying injected EINTR. Each retry
// counts one error against errs.
func reapRetry(k *kernel.Kernel, p *kernel.Proc, errs *int) (kernel.PID, int, error) {
	for {
		pid, status, err := k.Wait(p)
		if errors.Is(err, kernel.ErrInterrupted) {
			*errs++
			continue
		}
		return pid, status, err
	}
}

// ycsbKV drives the Redis-shaped cell: a fleet of forked workers runs
// the generated mix against the inherited store (updates also append an
// AOF record) while the parent cycles BGSAVE snapshot forks — so every
// latency sample competes with fork pauses, CoW faults, and (per lock
// mode) the big kernel lock or the split hierarchy.
func ycsbKV(c ycsbCell) (YCSBRow, error) {
	dataPages := c.keys * (ycsbValueBytes + 256) / int(kernel.PageSize)
	k := build(contentionSystem(c.locks), c.cores, 2*dataPages+1<<16)
	if c.prof != nil {
		k.ArmProfile(c.prof)
	}
	fr := ycsbFlight(k)
	pl := ycsbCausal(k)
	group := ycsbGroup(c)
	row := YCSBRow{
		Workload: "kvstore", Mix: c.mix, Chooser: "zipfian", Locks: c.locks,
		Cores: c.cores, Keys: c.keys, Chaos: c.chaos, SLO: c.slo,
	}
	hist := obs.NewHistogram(nil)
	var inj *chaos.Injector
	if c.chaos {
		inj = chaos.NewInjector(c.seed, ycsbChaosPlan())
	}

	err := runRoot(k, ycsbKVSpec(k, c.keys), func(p *kernel.Proc) error {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			return err
		}
		store, err := kvstore.Init(p, a, bucketCount(c.keys))
		if err != nil {
			return err
		}
		val := make([]byte, ycsbValueBytes)
		for i := range val {
			val[i] = byte(i * 131)
		}
		for i := 0; i < c.keys; i++ {
			if err := store.Set(ycsbKeyName(i), val); err != nil {
				return err
			}
		}
		// Arm fault injection only after the loader: the measured window
		// soaks under faults, the fixture load always succeeds.
		if inj != nil {
			inj.Arm(k)
		}

		opsPerWorker := c.ops / ycsbWorkers
		reads := make([]int, ycsbWorkers)
		updates := make([]int, ycsbWorkers)
		errs := make([]int, ycsbWorkers)
		finish := make([]sim.Time, ycsbWorkers)
		start := p.Now()
		workerPIDs := make(map[kernel.PID]bool, ycsbWorkers)
		for w := 0; w < ycsbWorkers; w++ {
			w := w
			pid, err := k.Fork(p, func(cp *kernel.Proc) {
				ws, err := kvstore.Attach(cp)
				if err != nil {
					k.Exit(cp, 1)
					return
				}
				var aofFD int
				for {
					if aofFD, err = k.Open(cp, fmt.Sprintf("/aof-%d", w), true); err == nil {
						break
					}
					errs[w]++
				}
				gen := ycsb.NewGenerator(c.mix, ycsb.NewZipfian(c.keys, c.seed+int64(w)*7919, true), c.seed^int64(w+1))
				rec := make([]byte, ycsbAOFBytes)
				for i := 0; i < opsPerWorker; i++ {
					cp.Task.Advance(ycsbThink)
					op, key := gen.Next()
					opName := "read"
					if op != ycsb.OpRead {
						opName = "update"
					}
					// Trace brackets exactly the latency measurement: the
					// root span's segments sum to the recorded latency.
					opStart := cp.Now()
					k.TraceBegin(cp, group, opName)
					var opErr error
					if op == ycsb.OpRead {
						_, opErr = ws.Get(ycsbKeyName(key))
						reads[w]++
					} else {
						opErr = ws.Set(ycsbKeyName(key), val)
						if opErr == nil {
							_, opErr = k.Write(cp, aofFD, rec)
						}
						updates[w]++
					}
					lat := cp.Now() - opStart
					k.TraceEnd(cp)
					ycsbObserve(hist, "kvstore", c.mix.Name, lat)
					if opErr != nil {
						errs[w]++
					}
				}
				finish[w] = cp.Now()
				k.Exit(cp, 0)
			})
			if err != nil {
				return err
			}
			workerPIDs[pid] = true
		}

		// The parent is the snapshotter: BGSAVE, reap one child (a
		// finished snapshot or a worker whose ops ran out), repeat until
		// the whole fleet has retired, then drain outstanding snapshots.
		workersLeft := ycsbWorkers
		outstanding := ycsbWorkers
		parentErrs := 0
		for workersLeft > 0 {
			// Each snapshot cycle is its own traced op: the BGSAVE fork
			// joins the child with a fork edge, so the exemplar shows the
			// snapshot's deferred-copy cost on the child row and the
			// parent's reap wait as block:child.
			k.TraceBegin(p, group, "bgsave")
			if _, err := store.BGSave("/dump.rdb"); err != nil {
				parentErrs++ // injected fork failure
			} else {
				outstanding++
				row.BGSaves++
			}
			pid, status, err := reapRetry(k, p, &parentErrs)
			k.TraceEnd(p)
			if err != nil {
				return err
			}
			outstanding--
			if workerPIDs[pid] {
				workersLeft--
				if status != 0 {
					return fmt.Errorf("worker %d failed with status %d", pid, status)
				}
			} else if status != 0 {
				parentErrs++ // snapshot child lost to an injected fault
			}
		}
		for outstanding > 0 {
			_, status, err := reapRetry(k, p, &parentErrs)
			if err != nil {
				return err
			}
			if status != 0 {
				parentErrs++
			}
			outstanding--
		}

		var end sim.Time
		for w := 0; w < ycsbWorkers; w++ {
			row.Reads += reads[w]
			row.Updates += updates[w]
			row.Errs += errs[w]
			if finish[w] > end {
				end = finish[w]
			}
		}
		row.Ops = row.Reads + row.Updates
		row.Errs += parentErrs
		row.WindowNS = uint64(end - start)
		ycsbFinish(&row, hist, fr, pl)
		return nil
	})
	if inj != nil {
		row.Injected = inj.Fired()
	}
	return row, err
}

func ycsbPath(i int) string { return fmt.Sprintf("/y/k%06d", i) }

// ycsbHTTPD drives the Nginx-shaped cell: the forked worker fleet serves
// the keyspace as files while off-core closed-loop drivers run the mix —
// GETs read a key's document, updates PUT a replacement body through the
// same workers.
func ycsbHTTPD(c ycsbCell) (YCSBRow, error) {
	k := build(contentionSystem(c.locks), c.cores, 1<<16)
	if c.prof != nil {
		k.ArmProfile(c.prof)
	}
	fr := ycsbFlight(k)
	pl := ycsbCausal(k)
	group := ycsbGroup(c)
	row := YCSBRow{
		Workload: "httpd", Mix: c.mix, Chooser: "zipfian", Locks: c.locks,
		Cores: c.cores, Keys: c.keys, Chaos: c.chaos, SLO: c.slo,
	}
	hist := obs.NewHistogram(nil)
	var inj *chaos.Injector
	if c.chaos {
		inj = chaos.NewInjector(c.seed, ycsbChaosPlan())
	}

	body := make([]byte, ycsbValueBytes)
	for i := range body {
		body[i] = byte(i * 67)
	}
	for i := 0; i < c.keys; i++ {
		k.VFS().WriteFile(ycsbPath(i), body)
	}

	err := runRoot(k, nginxSpec(), func(p *kernel.Proc) error {
		srv, err := httpd.Start(p, ycsbWorkers)
		if err != nil {
			return err
		}
		if inj != nil {
			inj.Arm(k)
		}
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			return err
		}
		doneEnd, err := p.FDs.Get(wfd)
		if err != nil {
			return err
		}
		opsPerDriver := c.ops / ycsbDrivers
		reads := make([]int, ycsbDrivers)
		updates := make([]int, ycsbDrivers)
		errs := make([]int, ycsbDrivers)
		start := p.Now()
		for d := 0; d < ycsbDrivers; d++ {
			d := d
			if _, err := k.Spawn(driverSpec(), p.Now(), func(dp *kernel.Proc) {
				dp.Task.Offcore = true
				dwfd := dp.FDs.Install(doneEnd)
				gen := ycsb.NewGenerator(c.mix, ycsb.NewZipfian(c.keys, c.seed+int64(d)*7919, true), c.seed^int64(d+1))
				for i := 0; i < opsPerDriver; i++ {
					op, key := gen.Next()
					opName := "GET"
					if op != ycsb.OpRead {
						opName = "PUT"
					}
					// The driver's request bytes carry the trace into the
					// serving worker through the connection pipes: the
					// exemplar shows a pipe edge driver→worker.
					opStart := dp.Now()
					k.TraceBegin(dp, group, opName)
					var (
						res   httpd.ClientResult
						opErr error
						want  string
					)
					if op == ycsb.OpRead {
						res, opErr = httpd.DoRequest(dp, srv.Listener, ycsbPath(key))
						want = "200"
						reads[d]++
					} else {
						res, opErr = httpd.DoPut(dp, srv.Listener, ycsbPath(key), body)
						want = "201"
						updates[d]++
					}
					lat := dp.Now() - opStart
					k.TraceEnd(dp)
					ycsbObserve(hist, "httpd", c.mix.Name, lat)
					if opErr != nil || !strings.Contains(res.Status, want) {
						errs[d]++
					}
				}
				_, _ = k.Write(dp, dwfd, []byte{1})
			}); err != nil {
				return err
			}
		}
		buf := make([]byte, 1)
		for d := 0; d < ycsbDrivers; d++ {
			for {
				if _, err := k.Read(p, rfd, buf); err == nil {
					break
				} else if !errors.Is(err, kernel.ErrInterrupted) {
					return err
				}
			}
		}
		// All drivers have retired their last op once every done byte is
		// in; the master's clock now bounds the measured window.
		row.WindowNS = uint64(p.Now() - start)
		if err := srv.Shutdown(p); err != nil {
			return err
		}
		for d := 0; d < ycsbDrivers; d++ {
			row.Reads += reads[d]
			row.Updates += updates[d]
			row.Errs += errs[d]
		}
		row.Ops = row.Reads + row.Updates
		ycsbFinish(&row, hist, fr, pl)
		return nil
	})
	if inj != nil {
		row.Injected = inj.Fired()
	}
	return row, err
}

// RenderYCSB formats the sweep summary: mix composition next to the
// virtual-time latency envelope and each cell's SLO verdict.
func RenderYCSB(rows []YCSBRow) string {
	var out [][]string
	for _, r := range rows {
		plan := "clean"
		if r.Chaos {
			plan = "faults"
		}
		verdict := "pass"
		if len(r.Breaches) > 0 {
			var gates []string
			for _, b := range r.Breaches {
				gates = append(gates, b.Gate)
			}
			verdict = "FAIL:" + strings.Join(gates, ",")
		}
		out = append(out, []string{
			r.Workload, r.Mix.Name, r.Chooser, r.Locks, fmt.Sprintf("%d", r.Cores), plan,
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%d/%d", r.Reads, r.Updates),
			fmt.Sprintf("%d", r.Errs),
			fmt.Sprintf("%d", r.BGSaves),
			fmt.Sprintf("%.0f op/s", r.Throughput()),
			ycsb.NS(r.Lat.P50), ycsb.NS(r.Lat.P99), ycsb.NS(r.Lat.P999),
			verdict,
		})
	}
	return "YCSB load harness — mixes A/B/C over zipfian keys, virtual-time latency vs. SLO\n" +
		Table([]string{"workload", "mix", "chooser", "locks", "cores", "plan", "ops", "r/u", "errs", "bgsaves", "throughput", "p50", "p99", "p99.9", "slo"}, out)
}

// YCSBFailures returns an error describing every breached cell — repro
// line, want-vs-got gates, the top-k classified slow-op trace trees, and
// the flight-recorder tail of the first breach — or nil when every cell
// held its SLO.
func YCSBFailures(rows []YCSBRow) error {
	var msgs []string
	dump, traces := "", ""
	for _, r := range rows {
		if len(r.Breaches) == 0 {
			continue
		}
		var gates []string
		for _, b := range r.Breaches {
			gates = append(gates, b.String())
		}
		msgs = append(msgs, fmt.Sprintf("%s/%s/%s/%dc (chaos=%v slo=%s): %s",
			r.Workload, r.Mix.Name, r.Locks, r.Cores, r.Chaos, r.SLO, strings.Join(gates, "; ")))
		if dump == "" {
			dump = r.flightDump
		}
		if traces == "" {
			traces = r.traceDump
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("bench: ycsb SLO breached:\n  %s\n%s%s", strings.Join(msgs, "\n  "), traces, dump)
}
