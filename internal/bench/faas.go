package bench

import (
	"fmt"

	"ufork/internal/apps/faas"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// FaaSRow is one bar of Figure 6: FaaS function throughput for a system at
// a worker-core count.
type FaaSRow struct {
	System           SystemID
	WorkerCores      int
	Completed        int
	ThroughputPerSec float64
	ForkLatency      sim.Time
}

// faasSystems are the Fig. 6 series. TOCTTOU is included to show its cost
// is negligible for a syscall-free workload (§5.1).
var faasSystems = []SystemID{SysUForkCoPA, SysUForkTocttou, SysPosix}

// FaaSSweep measures function throughput for 1–3 worker cores per system,
// with the coordinator (Zygote) on its own core — the Fig. 6 setup on the
// 4-core Morello.
func FaaSSweep(window sim.Time) ([]FaaSRow, error) {
	var rows []FaaSRow
	for _, id := range faasSystems {
		for workers := 1; workers <= 3; workers++ {
			row, err := faasOnce(id, workers, window)
			if err != nil {
				return nil, fmt.Errorf("bench: faas %s/%d: %w", id, workers, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func faasOnce(id SystemID, workers int, window sim.Time) (FaaSRow, error) {
	k := build(id, workers+1, 1<<17)
	row := FaaSRow{System: id, WorkerCores: workers}
	err := runRoot(k, faas.ZygoteSpec(k.Machine.StaticHeapPages/16), func(p *kernel.Proc) error {
		pr, _, err := faas.Warm(p)
		if err != nil {
			return err
		}
		res, err := faas.RunThroughput(p, pr, workers, faas.DefaultN, window)
		if err != nil {
			return err
		}
		row.Completed = res.Completed
		row.ThroughputPerSec = res.ThroughputPerSec
		row.ForkLatency = res.ForkLatency
		return nil
	})
	return row, err
}

// RenderFaaS formats Figure 6.
func RenderFaaS(rows []FaaSRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			string(r.System), fmt.Sprintf("%d", r.WorkerCores),
			fmt.Sprintf("%.0f func/s", r.ThroughputPerSec), Us(r.ForkLatency),
		})
	}
	return "Figure 6 — FaaS function throughput (Zygote fork-per-request)\n" +
		Table([]string{"system", "worker cores", "throughput", "fork latency"}, out)
}
