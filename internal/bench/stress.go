package bench

import (
	"fmt"
	"sort"
	"strings"

	"ufork/internal/bench/ycsb"
	"ufork/internal/chaos"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/obs/flight"
)

// StressRow is one soak cell: a copy mode × isolation level × seed run of
// the chaos harness under the aggressive fault plan.
type StressRow struct {
	Mode  core.CopyMode
	Iso   kernel.IsolationLevel
	Seed  int64
	Res   chaos.Result
	Err   error
	Clean bool // true when this cell ran without fault injection
	SMP   bool // true when this cell ran on the split-lock machine
}

// Stress soaks the kernel: for each round it runs every copy mode ×
// isolation level twice — once clean (pure differential fuzzing) and once
// under the aggressive fault plan — with a per-round seed derived from
// the base seed. The μFork copy mode additionally runs each cell on the
// split-lock SMP machine, so the fine-grained lock plane soaks under the
// same seeded schedules and fault plans as the big kernel lock. Every
// row's failure, if any, carries its own one-line repro, so a soak that
// dies overnight replays from the log.
func Stress(seed int64, rounds, maxOps int) []StressRow {
	modes := []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull}
	isos := []kernel.IsolationLevel{kernel.IsolationNone, kernel.IsolationFault, kernel.IsolationFull}
	var rows []StressRow
	for round := 0; round < rounds; round++ {
		// Distinct, reproducible per-round seeds: the round index stretched
		// by a prime so adjacent rounds share no low-bit structure.
		rseed := seed + int64(round)*7919
		for _, mode := range modes {
			for _, iso := range isos {
				for _, clean := range []bool{true, false} {
					for _, smp := range []bool{false, true} {
						// The SMP soak covers the lock plane, not the copy
						// engine; one copy mode keeps the matrix bounded.
						if smp && mode != core.CopyOnPointerAccess {
							continue
						}
						cfg := chaos.Config{Mode: mode, Iso: iso, Seed: rseed, SMP: smp, MaxOps: maxOps, ProgBytes: 4 * maxOps}
						// Label this cell's trace-exemplar reservoir so a
						// failure dump's trace trees name the soak window.
						cfg.TraceGroup = fmt.Sprintf("stress/r%d/%s/%s/smp=%v/clean=%v", round, mode, iso, smp, clean)
						if !clean {
							cfg.Plan = chaos.Aggressive()
						}
						res, err := chaos.Run(cfg, nil)
						rows = append(rows, StressRow{Mode: mode, Iso: iso, Seed: rseed, Res: res, Err: err, Clean: clean, SMP: smp})
					}
				}
			}
		}
	}
	return rows
}

// StressFailures returns the first failing row's error, or nil if the
// whole soak was clean.
func StressFailures(rows []StressRow) error {
	for _, r := range rows {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// DefaultStressSLO is the syscall-latency contract every soak cell must
// clear: a latency-only gate (throughput and error rate are the chaos
// harness's own business) with ceilings well above the measured envelope
// of the slowest cells — p50 ≤ 500ns and p99 ≤ 500µs across every mode ×
// isolation × plan at the default scale — so it trips on a latency
// collapse, not on seed-to-seed noise.
func DefaultStressSLO() ycsb.SLO {
	return ycsb.SLO{MaxP50: 100_000, MaxP99: 10_000_000, MaxP999: 50_000_000, MaxErrorRate: -1}
}

// StressLatency folds the row's flight-recorded per-syscall latencies
// (KindSysRet, Args[1]) into a histogram summary — the same virtual-time
// percentile plane the YCSB harness gates on, derived here from the
// recorder every chaos run already carries.
func StressLatency(r StressRow) obs.HistSummary {
	h := obs.NewHistogram(nil)
	if r.Res.Flight != nil {
		for _, e := range r.Res.Flight.Snapshot() {
			if e.Kind == flight.KindSysRet {
				h.Observe(e.Args[1])
			}
		}
	}
	return h.Summary()
}

// CheckStressSLO evaluates every soak cell's syscall-latency summary
// against the gate, returning an error naming each breaching cell or nil
// when the whole soak held. Cells that recorded no syscall returns (a
// seed whose program died instantly) are skipped — StressFailures owns
// hard failures.
func CheckStressSLO(rows []StressRow, slo ycsb.SLO) error {
	var msgs []string
	for _, r := range rows {
		sum := StressLatency(r)
		if sum.Count == 0 {
			continue
		}
		breaches := slo.Evaluate(ycsb.Result{Ops: int(sum.Count), Lat: sum})
		if len(breaches) == 0 {
			continue
		}
		var gates []string
		for _, b := range breaches {
			gates = append(gates, b.String())
		}
		plan := "clean"
		if !r.Clean {
			plan = "aggressive"
		}
		if r.SMP {
			plan += "+smp"
		}
		msgs = append(msgs, fmt.Sprintf("%s/%s/%s seed=%d: %s",
			r.Mode, r.Iso, plan, r.Seed, strings.Join(gates, "; ")))
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("bench: stress SLO (%s) breached:\n  %s", slo, strings.Join(msgs, "\n  "))
}

// RenderStress renders the soak summary table, including the per-cell
// peak μprocess frame footprint taken from the kernel's ProcStat
// accounting.
func RenderStress(rows []StressRow) string {
	header := []string{"mode", "isolation", "seed", "plan", "ops", "forks", "audits", "injected", "peak-frames", "sys-p50", "sys-p99", "status"}
	var out [][]string
	totalOps, totalInj, failed := 0, 0, 0
	for _, r := range rows {
		plan, inj := "clean", 0
		if !r.Clean {
			plan = "aggressive"
			for _, v := range r.Res.Injected {
				inj += v
			}
		}
		if r.SMP {
			plan += "+smp"
		}
		status := "ok"
		if r.Err != nil {
			status = "FAIL"
			failed++
		}
		var peak int64
		for _, ps := range r.Res.ProcStats {
			if ps.FramesPeak > peak {
				peak = ps.FramesPeak
			}
		}
		totalOps += r.Res.Ops
		totalInj += inj
		lat := StressLatency(r)
		out = append(out, []string{
			r.Mode.String(), r.Iso.String(), fmt.Sprint(r.Seed), plan,
			fmt.Sprint(r.Res.Ops), fmt.Sprint(r.Res.Forks), fmt.Sprint(r.Res.Checks),
			fmt.Sprint(inj), fmt.Sprint(peak),
			ycsb.NS(lat.P50), ycsb.NS(lat.P99), status,
		})
	}
	s := "Stress soak — seeded chaos runs (differential fuzzing + fault injection + invariant audits)\n" +
		Table(header, out) +
		fmt.Sprintf("total: %d cells, %d ops, %d injected faults, %d failures\n", len(rows), totalOps, totalInj, failed) +
		"\n" + renderStressProcs(rows)
	for _, r := range rows {
		if r.Err != nil {
			s += fmt.Sprintf("FAIL: %v\n", r.Err)
		}
	}
	return s
}

// stressProcCell pairs a μprocess accounting snapshot with the soak cell
// it came from, so the breakdown table can name its origin.
type stressProcCell struct {
	row  StressRow
	stat kernel.ProcStat
}

// renderStressProcs renders the frame-ownership breakdown: the soak's
// hungriest μprocesses by peak frames owned, with their fault-outcome
// mix. This is the ProcStat plane exercised at scale — a leak in frame
// attribution shows up here as owned≠0 for exited procs or peaks far
// beyond the working-set bound.
func renderStressProcs(rows []StressRow) string {
	var cells []stressProcCell
	for _, r := range rows {
		for _, ps := range r.Res.ProcStats {
			cells = append(cells, stressProcCell{r, ps})
		}
	}
	if len(cells) == 0 {
		return ""
	}
	// Deterministic order: peak frames desc, then cell identity, then pid.
	sort.SliceStable(cells, func(i, j int) bool {
		return cells[i].stat.FramesPeak > cells[j].stat.FramesPeak
	})
	const top = 10
	shown := cells
	if len(shown) > top {
		shown = shown[:top]
	}
	var out [][]string
	for _, c := range shown {
		plan := "clean"
		if !c.row.Clean {
			plan = "aggressive"
		}
		if c.row.SMP {
			plan += "+smp"
		}
		st := c.stat
		out = append(out, []string{
			fmt.Sprintf("%s/%s/%s", c.row.Mode, c.row.Iso, plan),
			fmt.Sprint(st.PID), st.Name,
			fmt.Sprint(st.SyscallsTotal), fmt.Sprint(st.Forks),
			fmt.Sprintf("%d/%d/%d/%d", st.FaultCoW, st.FaultCoA, st.FaultCoPA, st.FaultMapped),
			fmt.Sprint(st.FramesOwned), fmt.Sprint(st.FramesPeak),
			fmt.Sprint(st.ForkBytesCopied),
			// The smaps decomposition frozen at each μprocess's end of life:
			// how much of its final footprint was still shared with the tree.
			fmt.Sprintf("%d/%d/%d", st.RSSBytes>>10, st.PSSBytes>>10, st.USSBytes>>10),
		})
	}
	return fmt.Sprintf("Per-μprocess frame ownership — top %d of %d procs by peak frames\n", len(shown), len(cells)) +
		Table([]string{"cell", "pid", "proc", "syscalls", "forks", "cow/coa/copa/map", "owned", "peak", "fork-bytes", "rss/pss/uss-kb"}, out)
}
