package bench

import (
	"fmt"

	"ufork/internal/chaos"
	"ufork/internal/core"
	"ufork/internal/kernel"
)

// StressRow is one soak cell: a copy mode × isolation level × seed run of
// the chaos harness under the aggressive fault plan.
type StressRow struct {
	Mode  core.CopyMode
	Iso   kernel.IsolationLevel
	Seed  int64
	Res   chaos.Result
	Err   error
	Clean bool // true when this cell ran without fault injection
}

// Stress soaks the kernel: for each round it runs every copy mode ×
// isolation level twice — once clean (pure differential fuzzing) and once
// under the aggressive fault plan — with a per-round seed derived from
// the base seed. Every row's failure, if any, carries its own one-line
// repro, so a soak that dies overnight replays from the log.
func Stress(seed int64, rounds, maxOps int) []StressRow {
	modes := []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull}
	isos := []kernel.IsolationLevel{kernel.IsolationNone, kernel.IsolationFault, kernel.IsolationFull}
	var rows []StressRow
	for round := 0; round < rounds; round++ {
		// Distinct, reproducible per-round seeds: the round index stretched
		// by a prime so adjacent rounds share no low-bit structure.
		rseed := seed + int64(round)*7919
		for _, mode := range modes {
			for _, iso := range isos {
				for _, clean := range []bool{true, false} {
					cfg := chaos.Config{Mode: mode, Iso: iso, Seed: rseed, MaxOps: maxOps, ProgBytes: 4 * maxOps}
					if !clean {
						cfg.Plan = chaos.Aggressive()
					}
					res, err := chaos.Run(cfg, nil)
					rows = append(rows, StressRow{Mode: mode, Iso: iso, Seed: rseed, Res: res, Err: err, Clean: clean})
				}
			}
		}
	}
	return rows
}

// StressFailures returns the first failing row's error, or nil if the
// whole soak was clean.
func StressFailures(rows []StressRow) error {
	for _, r := range rows {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// RenderStress renders the soak summary table.
func RenderStress(rows []StressRow) string {
	header := []string{"mode", "isolation", "seed", "plan", "ops", "forks", "audits", "injected", "status"}
	var out [][]string
	totalOps, totalInj, failed := 0, 0, 0
	for _, r := range rows {
		plan, inj := "clean", 0
		if !r.Clean {
			plan = "aggressive"
			for _, v := range r.Res.Injected {
				inj += v
			}
		}
		status := "ok"
		if r.Err != nil {
			status = "FAIL"
			failed++
		}
		totalOps += r.Res.Ops
		totalInj += inj
		out = append(out, []string{
			r.Mode.String(), r.Iso.String(), fmt.Sprint(r.Seed), plan,
			fmt.Sprint(r.Res.Ops), fmt.Sprint(r.Res.Forks), fmt.Sprint(r.Res.Checks),
			fmt.Sprint(inj), status,
		})
	}
	s := "Stress soak — seeded chaos runs (differential fuzzing + fault injection + invariant audits)\n" +
		Table(header, out) +
		fmt.Sprintf("total: %d cells, %d ops, %d injected faults, %d failures\n", len(rows), totalOps, totalInj, failed)
	for _, r := range rows {
		if r.Err != nil {
			s += fmt.Sprintf("FAIL: %v\n", r.Err)
		}
	}
	return s
}
