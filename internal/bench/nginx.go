package bench

import (
	"fmt"

	"ufork/internal/apps/httpd"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// Nginx experiment parameters (§5.1 "Nginx multi-worker deployments"):
// drivers stand in for wrk's concurrent connections.
const (
	nginxDrivers  = 8
	nginxDocBytes = 16 * 1024
)

// NginxRow is one bar of Figure 7.
type NginxRow struct {
	System           SystemID
	Workers          int
	Cores            int
	Served           int
	ThroughputPerSec float64
}

// NginxSweep reproduces Figure 7's series:
//
//   - μFork pinned to one core (the big-kernel-lock SMP restriction, §4.5)
//     with 1–3 workers;
//   - μFork with TOCTTOU protections, same setup (the 6.5% cost);
//   - CheriBSD allowed to scale across cores (workers == cores);
//   - CheriBSD restricted to a single core.
func NginxSweep(window sim.Time) ([]NginxRow, error) {
	var rows []NginxRow
	type cfg struct {
		id      SystemID
		workers int
		cores   int
	}
	var cfgs []cfg
	for w := 1; w <= 3; w++ {
		cfgs = append(cfgs, cfg{SysUForkCoPA, w, 1})
	}
	cfgs = append(cfgs, cfg{SysUForkTocttou, 3, 1})
	for w := 1; w <= 3; w++ {
		cfgs = append(cfgs, cfg{SysPosix, w, w})
	}
	for w := 1; w <= 3; w++ {
		cfgs = append(cfgs, cfg{SysPosix, w, 1})
	}
	for _, c := range cfgs {
		row, err := nginxOnce(c.id, c.workers, c.cores, window)
		if err != nil {
			return nil, fmt.Errorf("bench: nginx %s/%dw/%dc: %w", c.id, c.workers, c.cores, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// nginxSpec is the server image.
func nginxSpec() kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "nginx",
		TextPages: 128, RodataPages: 32, GOTPages: 4, DataPages: 64,
		AllocMetaPages: 16, HeapPages: 512, StackPages: 32, TLSPages: 1,
		GOTEntries: 192,
	}
}

// driverSpec is the minimal image of a load-driver pseudo-process.
func driverSpec() kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "wrk",
		TextPages: 4, RodataPages: 1, GOTPages: 1, DataPages: 1,
		AllocMetaPages: 1, HeapPages: 8, StackPages: 4, TLSPages: 1,
		GOTEntries: 8,
	}
}

func nginxOnce(id SystemID, workers, cores int, window sim.Time) (NginxRow, error) {
	k := build(id, cores, 1<<16)
	k.VFS().WriteFile("/index.html", make([]byte, nginxDocBytes))
	row := NginxRow{System: id, Workers: workers, Cores: cores}

	err := runRoot(k, nginxSpec(), func(p *kernel.Proc) error {
		srv, err := httpd.Start(p, workers)
		if err != nil {
			return err
		}
		// Launch the wrk-like drivers: closed-loop clients hammering the
		// listener until the window closes. They signal completion over a
		// pipe the master reads.
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			return err
		}
		doneEnd, err := p.FDs.Get(wfd)
		if err != nil {
			return err
		}
		deadline := p.Now() + window
		for d := 0; d < nginxDrivers; d++ {
			if _, err := k.Spawn(driverSpec(), p.Now(), func(dp *kernel.Proc) {
				// The driver models wrk on a separate client machine: its
				// work never occupies the server's cores.
				dp.Task.Offcore = true
				// The driver receives the done-pipe's open file description
				// (SCM_RIGHTS-style descriptor passing).
				dwfd := dp.FDs.Install(doneEnd)
				for dp.Now() < deadline {
					if _, err := httpd.DoRequest(dp, srv.Listener, "/index.html"); err != nil {
						break
					}
				}
				_, _ = k.Write(dp, dwfd, []byte{1})
			}); err != nil {
				return err
			}
		}
		// Wait for all drivers.
		buf := make([]byte, 1)
		for d := 0; d < nginxDrivers; d++ {
			if _, err := k.Read(p, rfd, buf); err != nil {
				return err
			}
		}
		if err := srv.Shutdown(p); err != nil {
			return err
		}
		row.Served = srv.TotalServed()
		row.ThroughputPerSec = float64(row.Served) / (float64(window) / float64(sim.Second))
		return nil
	})
	return row, err
}

// RenderNginx formats Figure 7.
func RenderNginx(rows []NginxRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			string(r.System), fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.0f req/s", r.ThroughputPerSec),
		})
	}
	return "Figure 7 — Nginx throughput (wrk-style closed-loop drivers)\n" +
		Table([]string{"system", "workers", "cores", "throughput"}, out)
}
