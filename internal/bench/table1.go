package bench

import (
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// Table1Row is one row of the paper's Table 1: the design-space comparison
// of SASOS fork systems.
type Table1Row struct {
	System    string
	SAS       string // single address space preserved?
	Isolation string
	SelfCont  string // no infrastructure (host/hypervisor) changes needed
	IPCs      string
	SegRel    string // relies on segment-relative addressing
	ForkExec  string // supports only fork+exec patterns
	Source    string // literature row or measured on this repository
}

// Table1 regenerates the taxonomy. Literature rows are transcribed from
// the paper; the rows for the three systems this repository implements are
// *derived from the running code* — the harness inspects the machine
// models and fork engines rather than hard-coding the answers.
func Table1() []Table1Row {
	lit := func(name, sas, iso, sc, ipc, seg, fe string) Table1Row {
		return Table1Row{name, sas, iso, sc, ipc, seg, fe, "literature"}
	}
	rows := []Table1Row{
		lit("Angel", "Yes", "Yes", "Yes", "Fast", "Yes", "No"),
		lit("Mungi", "Yes", "Yes", "Yes", "Fast", "Yes", "No"),
		lit("KylinX", "No", "Yes", "No", "Med", "No", "No"),
		lit("Graphene", "No", "Yes", "No", "Med", "No", "No"),
		lit("Graphene SGX", "No", "Yes", "No", "Slow", "No", "No"),
		lit("Iso-Unik", "No", "Yes", "Yes", "Med", "No", "No"),
		lit("OSv", "Yes", "No", "Yes", "Fast", "No", "Yes"),
		lit("Junction", "Yes", "No", "No", "Med", "No", "Yes"),
	}
	rows = append(rows, measuredRow(SysVMClone, "Nephele (this repo: vmclone engine)"))
	rows = append(rows, measuredRow(SysUForkCoPA, "uFork (this repo: core engine)"))
	return rows
}

// measuredRow derives a row from the implemented system's properties.
func measuredRow(id SystemID, label string) Table1Row {
	k := build(id, 1, 1<<12)
	m := k.Machine
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	ipc := "Med"
	if m.SingleAddressSpace && !m.TrapSyscalls {
		ipc = "Fast"
	}
	iso := yn(k.Iso >= kernel.IsolationFault || m.Kind != model.KindUFork)
	selfContained := yn(m.DomainCreate == 0) // no hypervisor fork dependency
	return Table1Row{
		System:    label,
		SAS:       yn(m.SingleAddressSpace),
		Isolation: iso,
		SelfCont:  selfContained,
		IPCs:      ipc,
		SegRel:    "No",
		ForkExec:  "No", // full fork state duplication is implemented
		Source:    "measured",
	}
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.System, r.SAS, r.Isolation, r.SelfCont, r.IPCs, r.SegRel, r.ForkExec, r.Source})
	}
	return "Table 1 — SASOS fork design-space comparison\n" +
		Table([]string{"system", "SAS", "isolation", "self-contained", "IPCs", "seg-rel", "f+e only", "source"}, out)
}
