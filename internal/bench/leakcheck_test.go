package bench

// Frame-leak regression guard for the experiment harness: every
// benchmark scenario boots kernels, forks whole process trees, and runs
// them to completion — after the package's tests finish, tmem's
// process-wide live-frame counter must balance to zero or some workload
// leaked physical memory (see the matching guard in internal/kernel).

import (
	"fmt"
	"os"
	"testing"

	"ufork/internal/tmem"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if n := tmem.LiveFrames(); code == 0 && n != 0 {
		fmt.Fprintf(os.Stderr, "FRAME LEAK: %d frames still allocated after all bench tests\n", n)
		code = 1
	}
	os.Exit(code)
}
