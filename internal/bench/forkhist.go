package bench

import (
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/sim"
)

// Fork-latency distribution iteration counts.
const (
	ForkHistItersQuick = 60
	ForkHistItersFull  = 300
)

// ForkHistRow summarises the fork-latency distribution of one system: the
// percentile summary plus the mean per-phase breakdown (§6-style "where
// does fork time go" accounting).
type ForkHistRow struct {
	System SystemID
	Hist   obs.HistSummary

	// Mean per-fork phase times over all iterations.
	Reserve, PTECopy, EagerCopy, Scan, Reg, Fixup sim.Time
}

// forkHistSystems are the copy-strategy series: the three μFork modes the
// §3.8 ablation compares, plus the monolithic baseline for context.
var forkHistSystems = []SystemID{SysUForkCoPA, SysUForkCoA, SysUForkFull, SysPosix}

// forkHistBuckets are 1 µs linear bounds up to 2 ms: fork latencies of a
// hello-world image cluster within one decade, so the default 1-2-5
// buckets would collapse p50/p90/p99 into a single bucket bound.
var forkHistBuckets = func() []uint64 {
	var b []uint64
	for us := uint64(1); us <= 2000; us++ {
		b = append(b, us*uint64(sim.Microsecond))
	}
	return b
}()

// ForkHist measures the fork-latency distribution per copy mode: iters
// forks of a warmed hello-world-sized image, each latency observed into a
// fixed-bucket histogram. The histograms also land in the process-wide
// obs registry (bench.forkhist.<system>) so `-metrics` snapshots carry
// them.
func ForkHist(iters int) ([]ForkHistRow, error) {
	var rows []ForkHistRow
	for _, id := range forkHistSystems {
		row, err := forkHistOnce(id, iters)
		if err != nil {
			return nil, fmt.Errorf("bench: forkhist %s: %w", id, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func forkHistOnce(id SystemID, iters int) (ForkHistRow, error) {
	k := build(id, 2, 1<<16)
	row := ForkHistRow{System: id}
	// Registered in the process-wide registry so `-metrics` snapshots carry
	// the full summary, not just the rendered table.
	hist := obs.Default.Reg.HistogramWith("bench.forkhist."+string(id), forkHistBuckets)
	hist.Reset()
	var phases [6]sim.Time
	spec := kernel.HelloWorldSpec()
	spec.HeapPages = iters/2 + 64 // room for the growing live set below
	spec.AllocMetaPages = 16      // descriptor table for iters live blocks
	err := runRoot(k, spec, func(p *kernel.Proc) error {
		// Warm the parent like a started C program: data, stack, heap.
		if err := touchPages(p, kernel.SegData, 8); err != nil {
			return err
		}
		if err := touchPages(p, kernel.SegStack, 4); err != nil {
			return err
		}
		if err := touchPages(p, kernel.SegHeap, 8); err != nil {
			return err
		}
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			return err
		}
		one := []byte{0x42}
		for i := 0; i < iters; i++ {
			// The parent ages like a long-lived server between forks: one
			// more live allocation (a tagged capability in the allocator
			// metadata μFork must relocate at every fork) and one more open
			// descriptor (linear FD-dup cost), so successive forks get
			// progressively more expensive and the latency distribution has
			// a real spread.
			c, err := a.Alloc(1024)
			if err != nil {
				return err
			}
			if err := p.Store(c, 0, one); err != nil {
				return err
			}
			if _, err := k.Open(p, fmt.Sprintf("/conn-%04d", i), true); err != nil {
				return err
			}
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				if err := touchPages(c, kernel.SegStack, 1); err != nil {
					k.Exit(c, 1)
				}
				k.Exit(c, 0)
			}); err != nil {
				return err
			}
			fs := p.LastFork
			hist.Observe(uint64(fs.Latency))
			for j, d := range []sim.Time{fs.ReserveTime, fs.PTECopyTime,
				fs.EagerCopyTime, fs.ScanTime, fs.RegTime, fs.FixupTime} {
				phases[j] += d
			}
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("forkhist child failed: %d", status)
			}
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	row.Hist = hist.Summary()
	n := sim.Time(iters)
	row.Reserve, row.PTECopy, row.EagerCopy = phases[0]/n, phases[1]/n, phases[2]/n
	row.Scan, row.Reg, row.Fixup = phases[3]/n, phases[4]/n, phases[5]/n
	foldRun("forkhist."+string(id), k)
	return row, nil
}

// RenderForkHist formats the fork-latency distributions and mean phase
// breakdowns.
func RenderForkHist(rows []ForkHistRow) string {
	var dist, phase [][]string
	for _, r := range rows {
		dist = append(dist, []string{
			string(r.System),
			fmt.Sprintf("%d", r.Hist.Count),
			Us(sim.Time(r.Hist.P50)),
			Us(sim.Time(r.Hist.P90)),
			Us(sim.Time(r.Hist.P99)),
			Us(sim.Time(r.Hist.P999)),
			Us(sim.Time(r.Hist.Max)),
		})
		phase = append(phase, []string{
			string(r.System),
			Us(r.Reserve), Us(r.PTECopy), Us(r.EagerCopy), Us(r.Scan), Us(r.Reg), Us(r.Fixup),
		})
	}
	return "Fork latency distribution per copy mode (hello-world image)\n" +
		Table([]string{"system", "forks", "p50", "p90", "p99", "p99.9", "max"}, dist) +
		"\nMean fork phase breakdown (reserve / pte-copy / eager-copy / reloc-scan / reg-reloc / fd+fixed)\n" +
		Table([]string{"system", "reserve", "pte-copy", "eager-copy", "reloc-scan", "reg-reloc", "fd+fixed"}, phase)
}
