package bench

import (
	"testing"

	"ufork/internal/kernel"
	"ufork/internal/obs/profile"
)

// armProfileEverywhere chains kernel.TrackNew so every kernel the bench
// layer boots arms pl, restoring the previous hook at test end. This is
// the same wiring path the telemetry server and the -profile bench flag
// use, so the invariance tests exercise the real arming route.
func armProfileEverywhere(t *testing.T, pl *profile.Plane) {
	t.Helper()
	old := kernel.TrackNew
	kernel.TrackNew = func(k *kernel.Kernel) {
		if old != nil {
			old(k)
		}
		k.ArmProfile(pl)
	}
	t.Cleanup(func() { kernel.TrackNew = old })
}

// TestGoldenForkHistProfilerArmed is the observer-effect gate: the
// virtual-time goldens must stay byte-identical with the profiler armed
// on every kernel boot, while the plane itself fills with samples that
// pass the exact-sum audit. A profiler that nudged the timeline — an
// extra Advance, a reordered lock wait — fails the byte comparison.
func TestGoldenForkHistProfilerArmed(t *testing.T) {
	pl := profile.New(0)
	pl.Enable()
	armProfileEverywhere(t, pl)
	rows, err := ForkHist(ForkHistItersQuick)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, RenderForkHist(rows), "golden_forkhist.txt")
	if pl.Samples() == 0 {
		t.Fatal("armed sweep produced no samples")
	}
	if err := pl.CheckExact(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenContentionProfilerArmed pins the contention-sweep golden —
// the one whose cells exercise both lock regimes, so the profiler's
// lock-wait sampling runs hot on the exact workload the golden freezes.
func TestGoldenContentionProfilerArmed(t *testing.T) {
	pl := profile.New(0)
	pl.Enable()
	armProfileEverywhere(t, pl)
	rows, err := ContentionSweep(ContentionWindowQuick, ContentionCoresDefault)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, RenderContention(rows), "golden_contention.txt")
	if pl.Samples() == 0 {
		t.Fatal("armed contention sweep produced no samples")
	}
	if err := pl.CheckExact(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenProfDiff pins the cross-lock-regime profile diff: the
// quick-mode YCSB coordinate profiled under bkl and smp must subtract
// to the identical signed delta table every run.
func TestGoldenProfDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("profdiff sweep is quick-mode, not short-mode")
	}
	out, err := ProfDiff(YCSBKeysQuick, YCSBOpsQuick)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, out, "golden_profdiff.txt")
}

// TestProfDiffFoldedDeterministic is the byte-determinism acceptance:
// two identical seeded profiled sweeps fold to identical bytes.
func TestProfDiffFoldedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled sweep is quick-mode, not short-mode")
	}
	fold := func() string {
		pl := profile.New(0)
		pl.Enable()
		if err := profDiffSweep(LocksBKL, YCSBKeysQuick, YCSBOpsQuick, pl); err != nil {
			t.Fatal(err)
		}
		return pl.Folded()
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("identical seeded runs folded differently:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if a == "" {
		t.Fatal("profiled sweep folded to nothing")
	}
}
