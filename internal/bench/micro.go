package bench

import (
	"fmt"

	"ufork/internal/apps/unixbench"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// HelloRow is one bar pair of Figure 8: hello-world fork latency and
// per-process memory.
type HelloRow struct {
	System      SystemID
	ForkLatency sim.Time
	ChildMem    uint64
}

// helloSystems are the Fig. 8 series.
var helloSystems = []SystemID{SysUForkCoPA, SysPosix, SysVMClone}

// HelloWorld measures forking a minimal process on each system (Fig. 8).
func HelloWorld() ([]HelloRow, error) {
	var rows []HelloRow
	for _, id := range helloSystems {
		row, err := helloOnce(id)
		if err != nil {
			return nil, fmt.Errorf("bench: hello %s: %w", id, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func helloOnce(id SystemID) (HelloRow, error) {
	k := build(id, 2, 1<<15)
	row := HelloRow{System: id}
	err := runRoot(k, kernel.HelloWorldSpec(), func(p *kernel.Proc) error {
		// Warm the parent the way a started C program is warm: libc init
		// touches data, some stack, a bit of heap.
		if err := touchPages(p, kernel.SegData, 8); err != nil {
			return err
		}
		if err := touchPages(p, kernel.SegStack, 4); err != nil {
			return err
		}
		if err := touchPages(p, kernel.SegHeap, 8); err != nil {
			return err
		}
		var childMem uint64
		_, err := k.Fork(p, func(c *kernel.Proc) {
			// The child is "hello world": it dirties the same working set
			// and prints.
			if err := touchPages(c, kernel.SegData, 8); err != nil {
				k.Exit(c, 1)
			}
			if err := touchPages(c, kernel.SegStack, 4); err != nil {
				k.Exit(c, 1)
			}
			if err := touchPages(c, kernel.SegHeap, 8); err != nil {
				k.Exit(c, 1)
			}
			if _, err := k.Write(c, 1, []byte("hello world\n")); err != nil {
				k.Exit(c, 1)
			}
			childMem = memMetric(c)
			k.Exit(c, 0)
		})
		if err != nil {
			return err
		}
		row.ForkLatency = p.LastFork.Latency
		if _, status, err := k.Wait(p); err != nil {
			return err
		} else if status != 0 {
			return fmt.Errorf("hello child failed: %d", status)
		}
		row.ChildMem = childMem
		return nil
	})
	foldRun("hello."+string(id), k)
	return row, err
}

// touchPages writes one byte to each of the first n pages of a segment.
func touchPages(p *kernel.Proc, seg kernel.Segment, n int) error {
	c := p.SegCap(seg)
	one := []byte{0x42}
	for i := 0; i < n; i++ {
		if err := p.Store(c, uint64(i)*kernel.PageSize, one); err != nil {
			return err
		}
	}
	return nil
}

// RenderHello formats Figure 8.
func RenderHello(rows []HelloRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{string(r.System), Us(r.ForkLatency), MB(r.ChildMem)})
	}
	return "Figure 8 — hello-world fork latency and per-process memory\n" +
		Table([]string{"system", "fork latency", "memory/process"}, out)
}

// UnixbenchRow is one bar pair of Figure 9.
type UnixbenchRow struct {
	System   SystemID
	Spawn    sim.Time // time for SpawnIters fork+exit cycles
	Context1 sim.Time // time for Context1Target pipe exchanges
}

// The Fig. 9 workload sizes (paper: 1000 spawns, 100k exchanges).
const (
	SpawnItersFull     = 1000
	SpawnItersQuick    = 200
	Context1TargetFull = 100_000
	Context1TargetQuik = 10_000
)

// unixbenchSystems are the Fig. 9 series.
var unixbenchSystems = []SystemID{SysUForkCoPA, SysPosix}

// Unixbench runs Spawn and Context1 on each system (Fig. 9). Results for
// smaller iteration counts scale linearly; the renderer normalises to the
// paper's counts.
func Unixbench(spawnIters int, context1Target uint64) ([]UnixbenchRow, error) {
	var rows []UnixbenchRow
	for _, id := range unixbenchSystems {
		row := UnixbenchRow{System: id}
		k := build(id, 2, 1<<15)
		err := runRoot(k, kernel.HelloWorldSpec(), func(p *kernel.Proc) error {
			s, err := unixbench.Spawn(p, spawnIters)
			if err != nil {
				return err
			}
			row.Spawn = s.Elapsed * sim.Time(SpawnItersFull) / sim.Time(spawnIters)
			c, err := unixbench.Context1(p, context1Target)
			if err != nil {
				return err
			}
			row.Context1 = c.Elapsed * sim.Time(Context1TargetFull) / sim.Time(context1Target)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: unixbench %s: %w", id, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderUnixbench formats Figure 9.
func RenderUnixbench(rows []UnixbenchRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			string(r.System),
			Ms(r.Spawn) + fmt.Sprintf(" (per 1000 forks)"),
			Ms(r.Context1) + fmt.Sprintf(" (per 100k exchanges)"),
		})
	}
	return "Figure 9 — Unixbench Spawn and Context1\n" +
		Table([]string{"system", "spawn", "context1"}, out)
}
