package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// The virtual-time outputs are the simulator's ground truth: host-side
// optimisation of the fork path (bitset tag scans, frame pooling, the
// parallel eager-copy pool) must never change a single byte of them. These
// tests pin the quick-mode forkhist and table1 renderings against goldens
// captured before the optimisation work; `ufork-bench` prints each
// rendering with Println, hence the trailing newline.

func goldenCompare(t *testing.T, got, file string) {
	t.Helper()
	path := filepath.Join("testdata", file)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got+"\n" != string(want) {
		t.Fatalf("output differs from %s\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestGoldenForkHist(t *testing.T) {
	rows, err := ForkHist(ForkHistItersQuick)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, RenderForkHist(rows), "golden_forkhist.txt")
}

func TestGoldenTable1(t *testing.T) {
	goldenCompare(t, RenderTable1(Table1()), "golden_table1.txt")
}

// TestGoldenParallelInvariance re-runs forkhist at several worker-pool
// widths: the virtual-time distribution must be byte-identical whatever
// the host parallelism.
func TestGoldenParallelInvariance(t *testing.T) {
	defer func(old int) { Parallelism = old }(Parallelism)
	for _, par := range []int{1, 4} {
		Parallelism = par
		rows, err := ForkHist(ForkHistItersQuick)
		if err != nil {
			t.Fatal(err)
		}
		goldenCompare(t, RenderForkHist(rows), "golden_forkhist.txt")
	}
}
