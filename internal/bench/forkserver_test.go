package bench

import "testing"

// TestForkServerClaims: the U5 extension's qualitative results — the fork
// server amortizes setup (≫ re-exec), and μFork's cheaper fork makes its
// fork-server rounds faster than the monolithic baseline's.
func TestForkServerClaims(t *testing.T) {
	rows, err := ForkServerSweep(30)
	if err != nil {
		t.Fatal(err)
	}
	get := func(id SystemID, mode string) ForkServerRow {
		for _, r := range rows {
			if r.System == id && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing %s/%s", id, mode)
		return ForkServerRow{}
	}
	for _, id := range []SystemID{SysUForkCoPA, SysPosix} {
		fs := get(id, "fork-server")
		re := get(id, "re-exec")
		if fs.Executions != 30 || re.Executions != 30 {
			t.Fatalf("%s executions: %d/%d", id, fs.Executions, re.Executions)
		}
		if fs.Crashes != 3 || re.Crashes != 3 {
			t.Fatalf("%s crashes: %d/%d, want the planted 3", id, fs.Crashes, re.Crashes)
		}
		speedup := float64(re.PerExec) / float64(fs.PerExec)
		if speedup < 5 {
			t.Errorf("%s fork-server speedup %.1fx too small", id, speedup)
		}
	}
	u := get(SysUForkCoPA, "fork-server")
	p := get(SysPosix, "fork-server")
	if u.PerExec >= p.PerExec {
		t.Errorf("μFork fork-server per-exec %v not below CheriBSD %v", u.PerExec, p.PerExec)
	}
}
