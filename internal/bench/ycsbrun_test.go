package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ufork/internal/bench/ycsb"
)

// ycsbReport is the BENCH_8.json document: the quick-mode YCSB sweep's
// measured rows, checked in so the repo carries the load-harness numbers
// the README discusses. Virtual-time outputs are deterministic, so any
// host regenerates the file byte-identically (`go test ./internal/bench
// -run TestGoldenYCSB -update`).
type ycsbReport struct {
	Description string            `json:"description"`
	Window      string            `json:"window"`
	Units       map[string]string `json:"units"`
	Rows        []ycsbJSONRow     `json:"rows"`
}

type ycsbJSONRow struct {
	Workload     string  `json:"workload"`
	Mix          string  `json:"mix"`
	Chooser      string  `json:"chooser"`
	Locks        string  `json:"locks"`
	Cores        int     `json:"cores"`
	Keys         int     `json:"keys"`
	Chaos        bool    `json:"chaos"`
	Ops          int     `json:"ops"`
	Reads        int     `json:"reads"`
	Updates      int     `json:"updates"`
	Errs         int     `json:"errs"`
	BGSaves      int     `json:"bgsaves"`
	Injected     int     `json:"injected"`
	WindowNS     uint64  `json:"window_ns"`
	ThroughputPS float64 `json:"throughput_per_sec"`
	P50NS        uint64  `json:"p50_ns"`
	P99NS        uint64  `json:"p99_ns"`
	P999NS       uint64  `json:"p999_ns"`
	SLO          string  `json:"slo"`
	SLOPass      bool    `json:"slo_pass"`
}

func ycsbJSON(rows []YCSBRow) ([]byte, error) {
	rep := ycsbReport{
		Description: "YCSB-style load harness (PR 8): deterministic A/B/C mixes over scrambled-zipfian keys (theta=0.99) against the kvstore with BGSAVE snapshot forks firing mid-run and against the httpd worker fleet, under the big kernel lock (locks=bkl) and the split fine-grained hierarchy (locks=smp) at 1 and 4 simulated cores, plus one fault-injected cell per workload (EINTR storm + spurious write faults). Per-op latency is virtual-time ns; every row is gated by its SLO (slo_pass). Quick scale: 4096 keys, 6000 ops/cell; the paper-scale soak (100k keys, 1M ops) runs via `ufork-bench -exp ycsb -full`. Regenerate with: go test ./internal/bench -run TestGoldenYCSB -update",
		Window:      "per-cell virtual window, fleet launch to last op retired",
		Units: map[string]string{
			"throughput_per_sec": "ops/s, virtual time",
			"p50_ns":             "per-op latency percentile, virtual ns",
			"window_ns":          "virtual ns",
		},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, ycsbJSONRow{
			Workload: r.Workload, Mix: r.Mix.Name, Chooser: r.Chooser,
			Locks: r.Locks, Cores: r.Cores, Keys: r.Keys, Chaos: r.Chaos,
			Ops: r.Ops, Reads: r.Reads, Updates: r.Updates, Errs: r.Errs,
			BGSaves: r.BGSaves, Injected: r.Injected,
			WindowNS: r.WindowNS, ThroughputPS: r.Throughput(),
			P50NS: r.Lat.P50, P99NS: r.Lat.P99, P999NS: r.Lat.P999,
			SLO: r.SLO.String(), SLOPass: len(r.Breaches) == 0,
		})
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// TestGoldenYCSB pins the quick-mode sweep: the rendered table against
// its golden, the checked-in BENCH_8.json against a fresh marshal of the
// same rows, and the acceptance properties of the harness itself — every
// cell completed its op budget, every clean cell ran error-free under
// its SLO, every kvstore cell took BGSAVE forks mid-run, and both chaos
// cells actually injected faults yet still held their (looser) SLOs.
func TestGoldenYCSB(t *testing.T) {
	rows, err := YCSBSweep(YCSBOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got := RenderYCSB(rows)
	jsonBytes, err := ycsbJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	benchPath := filepath.Join("..", "..", "BENCH_8.json")
	if *update {
		if err := os.WriteFile(filepath.Join("testdata", "golden_ycsb.txt"), []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchPath, jsonBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	goldenCompare(t, got, "golden_ycsb.txt")

	chaosCells := 0
	for _, r := range rows {
		// 6000 splits evenly across both fleet widths (4 workers, 8
		// drivers), so every cell must retire its whole budget.
		if r.Ops != YCSBOpsQuick {
			t.Errorf("%s/%s/%s/%dc: completed %d ops, want %d", r.Workload, r.Mix.Name, r.Locks, r.Cores, r.Ops, YCSBOpsQuick)
		}
		if r.Workload == "kvstore" && r.BGSaves == 0 {
			t.Errorf("%s/%s/%s/%dc: no BGSAVE forks completed mid-run", r.Workload, r.Mix.Name, r.Locks, r.Cores)
		}
		if r.Chaos {
			chaosCells++
			if r.Injected == 0 {
				t.Errorf("%s/%s/%s/%dc: chaos cell injected no faults", r.Workload, r.Mix.Name, r.Locks, r.Cores)
			}
			if r.Errs == 0 {
				t.Errorf("%s/%s/%s/%dc: chaos cell saw no errored ops — injection not reaching the op path", r.Workload, r.Mix.Name, r.Locks, r.Cores)
			}
		} else if r.Errs != 0 {
			t.Errorf("%s/%s/%s/%dc: %d errors in a clean cell", r.Workload, r.Mix.Name, r.Locks, r.Cores, r.Errs)
		}
		if len(r.Breaches) > 0 {
			t.Errorf("%s/%s/%s/%dc: SLO %s breached: %v", r.Workload, r.Mix.Name, r.Locks, r.Cores, r.SLO, r.Breaches)
		}
	}
	if chaosCells != len(YCSBWorkloads) {
		t.Errorf("sweep carried %d chaos cells, want one per workload (%d)", chaosCells, len(YCSBWorkloads))
	}
	if err := YCSBFailures(rows); err != nil {
		t.Errorf("YCSBFailures on a passing sweep: %v", err)
	}

	want, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatalf("read BENCH_8.json: %v", err)
	}
	if !bytes.Equal(jsonBytes, want) {
		t.Fatalf("BENCH_8.json is stale; regenerate with -update\ngot:\n%s", jsonBytes)
	}
}

// TestYCSBRaceSMPReplay is the -race regression cell: a short mix-A run
// against the split-lock machine at 4 cores with BGSAVE forks firing
// mid-run — the configuration with the most concurrent lock traffic —
// executed twice with the same seed. Both runs must be structurally
// identical (ops, errors, window, every latency percentile): the replay
// determinism the golden tables and chaos repro lines rely on, checked
// under the race detector in CI.
func TestYCSBRaceSMPReplay(t *testing.T) {
	opts := YCSBOpts{
		Mixes: []ycsb.Mix{ycsb.MixA},
		Keys:  1024, Ops: 2000,
		Cores: []int{4},
		Locks: []string{LocksSMP},
		Seed:  42,
	}
	runs := make([][]YCSBRow, 2)
	for i := range runs {
		rows, err := YCSBSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = rows
	}
	kvSeen := false
	for _, r := range runs[0] {
		if r.Workload == "kvstore" && !r.Chaos {
			kvSeen = true
			if r.BGSaves == 0 {
				t.Error("kvstore cell took no BGSAVE forks mid-run")
			}
		}
	}
	if !kvSeen {
		t.Fatal("sweep produced no clean kvstore cell")
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("same-seed replay diverged:\nfirst:\n%s\nsecond:\n%s",
			RenderYCSB(runs[0]), RenderYCSB(runs[1]))
	}
}

// TestYCSBSLOBreachFires sabotages the gate: an impossible SLO (p99
// under 1 virtual ns, zero error budget) must fail every cell, and the
// failure error must carry the want-vs-got gate report and the
// flight-recorder tail of the breaching run.
func TestYCSBSLOBreachFires(t *testing.T) {
	impossible := ycsb.SLO{MaxP99: 1, MaxErrorRate: -1}
	rows, err := YCSBSweep(YCSBOpts{
		Mixes: []ycsb.Mix{ycsb.MixA},
		Keys:  512, Ops: 800,
		Cores: []int{1},
		Locks: []string{LocksBKL},
		Seed:  7,
		Chaos: true, // no extra chaos cells; every cell chaos-armed
		SLO:   &impossible,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Breaches) == 0 {
			t.Errorf("%s/%s: impossible SLO not breached (p99=%d)", r.Workload, r.Mix.Name, r.Lat.P99)
		}
		if r.flightDump == "" {
			t.Errorf("%s/%s: breach captured no flight dump", r.Workload, r.Mix.Name)
		}
		if r.traceDump == "" {
			t.Errorf("%s/%s: breach captured no causal trace trees", r.Workload, r.Mix.Name)
		}
	}
	ferr := YCSBFailures(rows)
	if ferr == nil {
		t.Fatal("YCSBFailures nil on a breached sweep")
	}
	msg := ferr.Error()
	// The breach report must carry the gate verdicts, the top-k classified
	// slow-op trace trees (with the classifier's cause line), and the
	// flight-recorder tail — where the tail went, not just that it blew.
	for _, want := range []string{
		"p99", "want <= 1ns",
		"causal exemplars — top", "cause=", "trace #",
		"flight recorder: last", "sysret",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("breach error missing %q:\n%s", want, msg)
		}
	}
}

// TestStressSLOGate covers the stress-side gate both ways on one small
// soak: the measured rows clear the default SLO, and a sabotaged
// one-virtual-ns p99 ceiling makes the gate fire with the offending
// cells named.
func TestStressSLOGate(t *testing.T) {
	rows := Stress(1, 1, 600)
	if err := StressFailures(rows); err != nil {
		t.Fatal(err)
	}
	if err := CheckStressSLO(rows, DefaultStressSLO()); err != nil {
		t.Errorf("default stress SLO breached on a clean soak: %v", err)
	}
	sampled := false
	for _, r := range rows {
		if StressLatency(r).Count > 0 {
			sampled = true
			break
		}
	}
	if !sampled {
		t.Fatal("no stress cell recorded syscall latencies — flight plane not feeding the gate")
	}
	err := CheckStressSLO(rows, ycsb.SLO{MaxP99: 1, MaxErrorRate: -1})
	if err == nil {
		t.Fatal("sabotaged stress SLO did not fire")
	}
	for _, want := range []string{"stress SLO", "p99", "seed=1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("stress gate error missing %q:\n%v", want, err)
		}
	}
}
