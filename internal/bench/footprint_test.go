package bench

import (
	"strings"
	"testing"
)

// TestFootprintSharingRetention is the experiment's acceptance criterion:
// the lazy strategies must retain measurably more shared bytes than eager
// copy at fork depth ≥ 3, and the decomposition must be internally
// consistent at every sample.
func TestFootprintSharingRetention(t *testing.T) {
	rows, err := Footprint()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[SystemID]FootprintRow{}
	for _, r := range rows {
		byID[r.System] = r
		if len(r.Samples) != FootprintDepth+1 {
			t.Fatalf("%s: %d samples, want %d", r.System, len(r.Samples), FootprintDepth+1)
		}
		for _, s := range r.Samples {
			if s.Live != s.Depth+1 {
				t.Errorf("%s depth %d: %d live procs, want %d (chain keeps ancestors alive)",
					r.System, s.Depth, s.Live, s.Depth+1)
			}
			if s.USS > s.PSS || s.PSS > s.RSS {
				t.Errorf("%s depth %d: ordering violated uss=%d pss=%d rss=%d",
					r.System, s.Depth, s.USS, s.PSS, s.RSS)
			}
			if s.Shared != s.RSS-s.USS {
				t.Errorf("%s depth %d: shared %d != rss-uss %d", r.System, s.Depth, s.Shared, s.RSS-s.USS)
			}
		}
	}
	for d := 3; d <= FootprintDepth; d++ {
		full := byID[SysUForkFull].Samples[d].Shared
		for _, lazy := range []SystemID{SysUForkCoPA, SysUForkCoA} {
			got := byID[lazy].Samples[d].Shared
			if got < 2*full+1<<20 {
				t.Errorf("depth %d: %s retains %d shared bytes vs eager %d — lazy copy shows no retention",
					d, lazy, got, full)
			}
		}
	}
	// Eager copy forfeits sharing: its PSS must track RSS closely, while
	// CoPA's PSS stays well below RSS at depth.
	last := byID[SysUForkCoPA].Samples[FootprintDepth]
	if last.PSS*2 > last.RSS {
		t.Errorf("CoPA at depth %d: PSS %d not well below RSS %d", FootprintDepth, last.PSS, last.RSS)
	}

	text := RenderFootprint(rows)
	for _, want := range []string{"Footprint sweep", "shared", string(SysUForkCoPA), "by fork depth"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderFootprint missing %q:\n%s", want, text)
		}
	}
}
