package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The repo's BENCH_N.json trajectory is non-contiguous by design: each
// file is numbered by the PR that produced it, and not every PR ships a
// measurement document (the current set is BENCH_2, 6, 7, 8). The CI
// freshness checks used to assume whichever single file the last PR
// wrote; this test validates every checked-in document individually —
// gaps allowed, duplicates and malformed documents not — so a PR that
// renumbers, truncates, or clobbers an earlier result fails loudly.

// benchDoc is the shape every BENCH_N.json shares. Older documents carry
// their measurements under "benchmarks" (BENCH_2: a go-bench-style
// name-keyed object); the experiment documents carry a "rows" array.
// Either must be present and non-empty.
type benchDoc struct {
	Description string            `json:"description"`
	Rows        []json.RawMessage `json:"rows"`
	Benchmarks  json.RawMessage   `json:"benchmarks"`
}

// measurementCount counts entries in a raw measurements value that may
// be an array (rows-era) or a name-keyed object (benchmarks-era).
func measurementCount(raw json.RawMessage) int {
	var arr []json.RawMessage
	if json.Unmarshal(raw, &arr) == nil {
		return len(arr)
	}
	var obj map[string]json.RawMessage
	if json.Unmarshal(raw, &obj) == nil {
		return len(obj)
	}
	return 0
}

// benchTrajectory globs the checked-in BENCH_*.json files and returns
// them keyed by index, sorted ascending.
func benchTrajectory(t *testing.T) (indices []int, paths map[int]string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	paths = make(map[int]string)
	for _, p := range matches {
		name := filepath.Base(p)
		num := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		idx, err := strconv.Atoi(num)
		if err != nil {
			t.Errorf("%s: index %q is not a number", name, num)
			continue
		}
		if prev, dup := paths[idx]; dup {
			t.Errorf("duplicate trajectory index %d: %s and %s", idx, prev, p)
			continue
		}
		paths[idx] = p
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	return indices, paths
}

// TestBenchTrajectory validates each BENCH_N.json in the gapped
// trajectory: parseable, described, and carrying a non-empty measurement
// array under whichever key its era used.
func TestBenchTrajectory(t *testing.T) {
	indices, paths := benchTrajectory(t)
	if len(indices) == 0 {
		t.Fatal("no BENCH_*.json files found at the repo root")
	}
	for _, idx := range indices {
		p := paths[idx]
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		var doc benchDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("%s: not valid JSON: %v", p, err)
			continue
		}
		if strings.TrimSpace(doc.Description) == "" {
			t.Errorf("%s: empty description", p)
		}
		nBench := measurementCount(doc.Benchmarks)
		if len(doc.Rows) == 0 && nBench == 0 {
			t.Errorf("%s: no measurements: both \"rows\" and \"benchmarks\" are empty", p)
		}
		if len(doc.Rows) > 0 && nBench > 0 {
			t.Errorf("%s: carries both \"rows\" and \"benchmarks\" — pick one shape", p)
		}
	}
	// The documents with live regeneration gates must be present: a gap is
	// an unwritten PR, but losing a file the golden tests freshness-check
	// means the gate silently stopped gating.
	for _, must := range []int{7, 8} {
		if _, ok := paths[must]; !ok {
			t.Errorf("BENCH_%d.json missing: its golden test freshness-checks this file", must)
		}
	}
}
