package bench

import (
	"fmt"
	"testing"

	"ufork/internal/cap"
	"ufork/internal/kernel"
)

// Fork hot-path microbenchmarks: host wall-clock cost of the simulator's
// fork path (page copy + tag scan + relocation) at 1/10/100 MB images per
// copy strategy, plus the CoPA/CoA fault path. Virtual-time results are
// deterministic and identical across runs; these benchmarks measure the
// host-side cost of producing them. BENCH_2.json records the baseline.
//
// Run with: go test ./internal/bench -bench BenchmarkFork -benchmem

// benchForkSpec builds an image dominated by a heap of mb megabytes.
func benchForkSpec(mb int) kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "bench-fork",
		TextPages: 64, RodataPages: 16, GOTPages: 2, DataPages: 32,
		AllocMetaPages: 8, StackPages: 16, TLSPages: 1,
		GOTEntries: 64,
		HeapPages:  mb * 256, // mb MB of 4 KiB pages
	}
}

// populateCaps stores one in-region capability every capStride pages of the
// heap, so eager copies and fault-path privatisations have real relocation
// work to do (sparse, like a real heap's pointer density per page).
func populateCaps(p *kernel.Proc, pages, capStride int) error {
	for i := 0; i < pages; i += capStride {
		off := uint64(i) * kernel.PageSize
		c := p.HeapCap.SetAddr(p.HeapCap.Base() + off)
		if err := p.StoreCap(p.HeapCap, off, c); err != nil {
			return err
		}
	}
	return nil
}

// benchFork measures b.N forks of a warmed image on system id.
func benchFork(b *testing.B, id SystemID, mb int) {
	pages := mb * 256
	frames := 3*pages + 1<<15
	k := build(id, 2, frames)
	err := runRoot(k, benchForkSpec(mb), func(p *kernel.Proc) error {
		if err := populateCaps(p, pages, 8); err != nil {
			return err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) { k.Exit(c, 0) }); err != nil {
				return err
			}
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("child failed: %d", status)
			}
		}
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFork(b *testing.B) {
	modes := []struct {
		name string
		id   SystemID
	}{
		{"CoPA", SysUForkCoPA},
		{"CoA", SysUForkCoA},
		{"CopyFull", SysUForkFull},
	}
	for _, m := range modes {
		for _, mb := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s-%dMB", m.name, mb), func(b *testing.B) {
				benchFork(b, m.id, mb)
			})
		}
	}
}

// BenchmarkFaultPath measures the lazy copy+relocate path: each iteration
// forks and the child capability-loads one granule per page over
// faultPages pages — every load privatises and relocates one page (CoPA
// cap-load faults; CoA no-access faults).
const faultPages = 256

func BenchmarkFaultPath(b *testing.B) {
	for _, m := range []struct {
		name string
		id   SystemID
	}{
		{"CoPA", SysUForkCoPA},
		{"CoA", SysUForkCoA},
	} {
		b.Run(m.name, func(b *testing.B) {
			k := build(m.id, 2, 1<<16)
			err := runRoot(k, benchForkSpec(1), func(p *kernel.Proc) error {
				if err := populateCaps(p, faultPages, 1); err != nil {
					return err
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.Fork(p, func(c *kernel.Proc) {
						for pg := 0; pg < faultPages; pg++ {
							if _, err := c.LoadCap(c.HeapCap, uint64(pg)*kernel.PageSize); err != nil {
								k.Exit(c, 1)
							}
						}
						k.Exit(c, 0)
					}); err != nil {
						return err
					}
					if _, status, err := k.Wait(p); err != nil {
						return err
					} else if status != 0 {
						return fmt.Errorf("fault child failed: %d", status)
					}
				}
				b.StopTimer()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// sinkCap keeps capability loads from being optimised away.
var sinkCap cap.Capability
