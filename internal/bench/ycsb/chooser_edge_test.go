package ycsb

import "testing"

// TestZipfianTinyKeyspaces pins the degenerate keyspaces the rejection-free
// construction is most fragile on: n=1 (zeta normalizer 1, eta's 2/n term
// above 1) and n=2 (the whole mass split across the two closed-form rank
// branches). Both must draw without panicking and stay in [0, n) under
// the scrambled and ranked variants — the scrambler's modulo must not
// escape the keyspace even when ranks hash far above it.
func TestZipfianTinyKeyspaces(t *testing.T) {
	for _, n := range []int{1, 2} {
		for _, scramble := range []bool{false, true} {
			z := NewZipfian(n, 42, scramble)
			seen := map[int]bool{}
			for i := 0; i < 10_000; i++ {
				k := z.Next()
				if k < 0 || k >= n {
					t.Fatalf("n=%d scramble=%v: draw %d out of range [0,%d)", n, scramble, k, n)
				}
				seen[k] = true
			}
			if n == 1 && (len(seen) != 1 || !seen[0]) {
				t.Errorf("n=1 scramble=%v: draws %v, want only key 0", scramble, seen)
			}
			// Ranked n=2 must exercise both branches: rank 0 carries ~75%
			// of the mass at theta=0.99, rank 1 the rest. (Scrambled draws
			// may legitimately collapse to one key if both ranks hash to
			// the same residue, so coverage is only asserted ranked.)
			if n == 2 && !scramble && len(seen) != 2 {
				t.Errorf("n=2 ranked: draws %v, want both ranks hit over 10k draws", seen)
			}
		}
	}
}

// TestUniformSingleKey: the uniform chooser's modulo path at n=1.
func TestUniformSingleKey(t *testing.T) {
	u := NewUniform(1, 7)
	for i := 0; i < 1000; i++ {
		if k := u.Next(); k != 0 {
			t.Fatalf("n=1 uniform drew %d", k)
		}
	}
}
