package ycsb

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ufork/internal/obs"
)

// SLO is a declarative service-level objective over one finished load
// run: a throughput floor, latency ceilings on the virtual-time
// percentiles, and an error-rate ceiling. Zero-valued latency/throughput
// gates are disabled; the error-rate gate is disabled when negative (so
// MaxErrorRate: 0 is the strict "no errors allowed" contract). A run
// that evaluates to any breach has failed its latency contract — the
// harness exits non-zero and dumps the flight recorder.
type SLO struct {
	// MinThroughput is the ops/s floor in virtual time (0 disables).
	MinThroughput float64
	// MaxP50/MaxP99/MaxP999 are virtual-ns ceilings on the latency
	// percentiles (0 disables each).
	MaxP50  uint64
	MaxP99  uint64
	MaxP999 uint64
	// MaxErrorRate is the ceiling on failed ops as a fraction of all ops
	// (negative disables; 0 allows none).
	MaxErrorRate float64
}

// Result is the run summary an SLO evaluates: op and error counts, the
// virtual window the ops completed in, and the latency percentile
// summary from the run's obs histogram.
type Result struct {
	Ops      int
	Errs     int
	WindowNS uint64
	Lat      obs.HistSummary
}

// Throughput is the run's ops/s in virtual time.
func (r Result) Throughput() float64 {
	if r.WindowNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.WindowNS) / 1e9)
}

// ErrorRate is the failed-op fraction.
func (r Result) ErrorRate() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Errs) / float64(r.Ops)
}

// Breach is one violated gate, rendered want-vs-got.
type Breach struct {
	Gate string
	Want string
	Got  string
}

func (b Breach) String() string {
	return fmt.Sprintf("%s: want %s, got %s", b.Gate, b.Want, b.Got)
}

// Evaluate checks every armed gate against the run summary and returns
// the breaches in gate order (empty means the SLO held).
func (s SLO) Evaluate(r Result) []Breach {
	var breaches []Breach
	if s.MinThroughput > 0 && r.Throughput() < s.MinThroughput {
		breaches = append(breaches, Breach{
			Gate: "throughput",
			Want: fmt.Sprintf(">= %.0f op/s", s.MinThroughput),
			Got:  fmt.Sprintf("%.0f op/s", r.Throughput()),
		})
	}
	type pctGate struct {
		name string
		max  uint64
		got  uint64
	}
	for _, g := range []pctGate{
		{"p50", s.MaxP50, r.Lat.P50},
		{"p99", s.MaxP99, r.Lat.P99},
		{"p99.9", s.MaxP999, r.Lat.P999},
	} {
		if g.max > 0 && g.got > g.max {
			breaches = append(breaches, Breach{
				Gate: g.name,
				Want: "<= " + NS(g.max),
				Got:  NS(g.got),
			})
		}
	}
	if s.MaxErrorRate >= 0 && r.ErrorRate() > s.MaxErrorRate {
		breaches = append(breaches, Breach{
			Gate: "error-rate",
			Want: fmt.Sprintf("<= %.3f%%", 100*s.MaxErrorRate),
			Got:  fmt.Sprintf("%.3f%% (%d/%d)", 100*r.ErrorRate(), r.Errs, r.Ops),
		})
	}
	return breaches
}

// String renders the armed gates the way ParseSLO accepts them.
func (s SLO) String() string {
	var parts []string
	if s.MinThroughput > 0 {
		parts = append(parts, fmt.Sprintf("tput=%.0f", s.MinThroughput))
	}
	if s.MaxP50 > 0 {
		parts = append(parts, "p50="+NS(s.MaxP50))
	}
	if s.MaxP99 > 0 {
		parts = append(parts, "p99="+NS(s.MaxP99))
	}
	if s.MaxP999 > 0 {
		parts = append(parts, "p999="+NS(s.MaxP999))
	}
	if s.MaxErrorRate >= 0 {
		parts = append(parts, fmt.Sprintf("err=%g%%", 100*s.MaxErrorRate))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// NS renders a virtual-ns quantity compactly (1.50ms, 200µs, 750ns).
func NS(ns uint64) string {
	switch {
	case ns >= 1_000_000_000:
		return trimZeros(fmt.Sprintf("%.2f", float64(ns)/1e9)) + "s"
	case ns >= 1_000_000:
		return trimZeros(fmt.Sprintf("%.2f", float64(ns)/1e6)) + "ms"
	case ns >= 1_000:
		return trimZeros(fmt.Sprintf("%.2f", float64(ns)/1e3)) + "µs"
	}
	return fmt.Sprintf("%dns", ns)
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// ParseSLO parses a comma-separated gate spec:
//
//	tput=50000,p50=200us,p99=2ms,p999=10ms,err=1%
//
// Durations take any time.ParseDuration unit and are read as virtual
// time; err takes a percentage (the % sign optional). Gates left out are
// disabled — an empty spec is the always-passing SLO.
func ParseSLO(spec string) (SLO, error) {
	s := SLO{MaxErrorRate: -1}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("ycsb: bad SLO field %q (want key=value)", field)
		}
		switch key {
		case "tput":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return s, fmt.Errorf("ycsb: bad SLO throughput %q", val)
			}
			s.MinThroughput = f
		case "p50", "p99", "p999":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return s, fmt.Errorf("ycsb: bad SLO duration %q for %s", val, key)
			}
			ns := uint64(d.Nanoseconds())
			switch key {
			case "p50":
				s.MaxP50 = ns
			case "p99":
				s.MaxP99 = ns
			case "p999":
				s.MaxP999 = ns
			}
		case "err":
			f, err := strconv.ParseFloat(strings.TrimSuffix(val, "%"), 64)
			if err != nil || f < 0 {
				return s, fmt.Errorf("ycsb: bad SLO error rate %q", val)
			}
			s.MaxErrorRate = f / 100
		default:
			return s, fmt.Errorf("ycsb: unknown SLO gate %q", key)
		}
	}
	return s, nil
}
