// Package ycsb is the YCSB-style workload plane of the load harness: the
// classic A/B/C read/write mixes (Cooper et al., SoCC '10) over uniform
// and zipfian key choosers, generated from one seed so a million-op soak
// replays bit-for-bit, plus the declarative SLO spec the harness asserts
// against a finished run's virtual-time latency summary.
//
// The package is pure workload description — no kernels, no clocks. The
// bench package drives the generated op stream against the kvstore and
// httpd apps (see bench.YCSBSweep); EXPERIMENTS.md documents the
// measured mixes against SNIPPETS.md Snippet 3's recordcount=100000 /
// operationcount=5000000 tcache-vs-Redis loadtest, whose parameters the
// full-mode defaults mirror.
package ycsb

// Op is one generated operation kind.
type Op int

// The YCSB core operation kinds the A/B/C mixes draw from.
const (
	OpRead Op = iota
	OpUpdate
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "update"
}

// Mix is one YCSB workload mix: the read share of the op stream, with the
// remainder updates. The classic core mixes are predeclared; a Mix is
// plain data so callers can define bespoke blends.
type Mix struct {
	Name    string
	ReadPct int // 0..100; updates are the remainder
}

// The classic YCSB core mixes (Snippet 3 runs exactly these three
// against Redis).
var (
	MixA = Mix{Name: "A", ReadPct: 50}  // update heavy: 50/50 read/update
	MixB = Mix{Name: "B", ReadPct: 95}  // read mostly: 95/5
	MixC = Mix{Name: "C", ReadPct: 100} // read only
)

// Mixes is the standard sweep order.
var Mixes = []Mix{MixA, MixB, MixC}

// MixByName resolves "a"/"b"/"c" (any case) to the core mix.
func MixByName(name string) (Mix, bool) {
	switch name {
	case "a", "A":
		return MixA, true
	case "b", "B":
		return MixB, true
	case "c", "C":
		return MixC, true
	}
	return Mix{}, false
}

// Generator yields the deterministic op stream of one load client: an op
// kind drawn from the mix and a key index drawn from the chooser. Two
// generators built with the same (mix, chooser parameters, seed) yield
// identical streams on any host.
type Generator struct {
	mix     Mix
	chooser KeyChooser
	rng     rng
}

// NewGenerator builds a generator over the given mix and chooser. The
// seed drives only the read/update coin; the chooser carries its own.
func NewGenerator(mix Mix, chooser KeyChooser, seed int64) *Generator {
	return &Generator{mix: mix, chooser: chooser, rng: newRNG(seed)}
}

// Next returns the next operation and its key index.
func (g *Generator) Next() (Op, int) {
	op := OpUpdate
	if int(g.rng.next()%100) < g.mix.ReadPct {
		op = OpRead
	}
	return op, g.chooser.Next()
}
