package ycsb

import (
	"strings"
	"testing"

	"ufork/internal/obs"
)

func sampleResult() Result {
	return Result{
		Ops:      10_000,
		Errs:     5,
		WindowNS: 1_000_000_000, // 1 virtual second → 10000 op/s
		Lat:      obs.HistSummary{P50: 200_000, P99: 2_000_000, P999: 8_000_000},
	}
}

func TestSLOEvaluate(t *testing.T) {
	r := sampleResult()
	pass := SLO{
		MinThroughput: 9_000,
		MaxP50:        500_000,
		MaxP99:        5_000_000,
		MaxP999:       10_000_000,
		MaxErrorRate:  0.001,
	}
	if br := pass.Evaluate(r); len(br) != 0 {
		t.Fatalf("passing SLO breached: %v", br)
	}

	for _, tc := range []struct {
		name string
		slo  SLO
		gate string
	}{
		{"throughput floor", SLO{MinThroughput: 20_000, MaxErrorRate: -1}, "throughput"},
		{"p50 ceiling", SLO{MaxP50: 100_000, MaxErrorRate: -1}, "p50"},
		{"p99 ceiling", SLO{MaxP99: 1_000_000, MaxErrorRate: -1}, "p99"},
		{"p99.9 ceiling", SLO{MaxP999: 1_000_000, MaxErrorRate: -1}, "p99.9"},
		{"error rate", SLO{MaxErrorRate: 0}, "error-rate"},
	} {
		br := tc.slo.Evaluate(r)
		if len(br) != 1 || br[0].Gate != tc.gate {
			t.Errorf("%s: breaches %v, want exactly [%s]", tc.name, br, tc.gate)
		}
	}

	// Disabled gates never fire: the zero SLO with error gate off passes
	// anything.
	if br := (SLO{MaxErrorRate: -1}).Evaluate(r); len(br) != 0 {
		t.Errorf("all-disabled SLO breached: %v", br)
	}
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("tput=50000,p50=200us,p99=2ms,p999=10ms,err=1%")
	if err != nil {
		t.Fatal(err)
	}
	want := SLO{
		MinThroughput: 50_000,
		MaxP50:        200_000,
		MaxP99:        2_000_000,
		MaxP999:       10_000_000,
		MaxErrorRate:  0.01,
	}
	if s != want {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}

	// Omitted gates are disabled; empty spec always passes.
	s, err = ParseSLO("p99=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.MinThroughput != 0 || s.MaxErrorRate >= 0 || s.MaxP50 != 0 {
		t.Fatalf("omitted gates not disabled: %+v", s)
	}
	if s, err = ParseSLO(""); err != nil || len(s.Evaluate(sampleResult())) != 0 {
		t.Fatalf("empty spec must always pass (err=%v)", err)
	}

	for _, bad := range []string{"p99", "p99=fast", "err=-3", "tput=0", "warp=9"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestSLOStringRoundTrip(t *testing.T) {
	s, err := ParseSLO("tput=50000,p99=2ms,err=0.5%")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSLO(s.String())
	if err != nil {
		t.Fatalf("String() %q does not reparse: %v", s.String(), err)
	}
	if back != s {
		t.Fatalf("round trip %+v != %+v", back, s)
	}
}

func TestNSRendering(t *testing.T) {
	for _, tc := range []struct {
		ns   uint64
		want string
	}{
		{750, "750ns"},
		{200_000, "200µs"},
		{1_500_000, "1.5ms"},
		{2_000_000_000, "2s"},
	} {
		if got := NS(tc.ns); got != tc.want {
			t.Errorf("NS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
	if !strings.Contains((Breach{Gate: "p99", Want: "<= 1ms", Got: "2ms"}).String(), "p99: want <= 1ms, got 2ms") {
		t.Error("breach rendering changed")
	}
}
