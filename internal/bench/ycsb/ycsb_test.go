package ycsb

import (
	"math"
	"testing"
)

// TestZipfianHeadMass checks the ranked zipfian chooser against the
// analytic law: the head ranks must draw their zipf share of requests
// within sampling tolerance. Table-driven over keyspace sizes.
func TestZipfianHeadMass(t *testing.T) {
	const draws = 400_000
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{1_000, 1},
		{100_000, 7},
	} {
		z := NewZipfian(tc.n, tc.seed, false)
		counts := make(map[int]int)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		zetan := zeta(tc.n, ZipfianTheta)
		// Single hottest rank.
		wantHead := 1 / zetan
		gotHead := float64(counts[0]) / draws
		if math.Abs(gotHead-wantHead) > 0.15*wantHead {
			t.Errorf("n=%d: rank-0 mass %.4f, want %.4f ±15%%", tc.n, gotHead, wantHead)
		}
		// Top-10 cumulative mass.
		wantTop := zeta(10, ZipfianTheta) / zetan
		var top int
		for r := 0; r < 10; r++ {
			top += counts[r]
		}
		gotTop := float64(top) / draws
		if math.Abs(gotTop-wantTop) > 0.05*wantTop {
			t.Errorf("n=%d: top-10 mass %.4f, want %.4f ±5%%", tc.n, gotTop, wantTop)
		}
		// The tail must still be reachable: far more distinct keys than the
		// head, none out of range.
		for k := range counts {
			if k < 0 || k >= tc.n {
				t.Fatalf("n=%d: drew out-of-range key %d", tc.n, k)
			}
		}
	}
}

// TestZipfianScrambleSpreads checks that scrambled mode moves the head
// heat off the low indices without changing the mass distribution: the
// hottest key still owns ~1/zeta(n) of draws, but is not key 0, and the
// ten hottest keys are scattered across the keyspace.
func TestZipfianScrambleSpreads(t *testing.T) {
	const n, draws = 100_000, 200_000
	z := NewZipfian(n, 3, true)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	hotKey, hotCount := -1, 0
	for k, c := range counts {
		if c > hotCount {
			hotKey, hotCount = k, c
		}
	}
	wantHead := 1 / zeta(n, ZipfianTheta)
	gotHead := float64(hotCount) / draws
	if math.Abs(gotHead-wantHead) > 0.15*wantHead {
		t.Errorf("hottest key mass %.4f, want %.4f ±15%%", gotHead, wantHead)
	}
	if hotKey < 100 {
		t.Errorf("hottest key %d still clustered at the low indices", hotKey)
	}
}

// TestUniformUnbiased checks the uniform chooser: every key's draw share
// within 5%% of 1/n (3σ at this sample size is ~3%%), covering the whole
// keyspace.
func TestUniformUnbiased(t *testing.T) {
	const n, draws = 16, 320_000
	u := NewUniform(n, 11)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := u.Next()
		if k < 0 || k >= n {
			t.Fatalf("out-of-range key %d", k)
		}
		counts[k]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("key %d drawn %d times, want %.0f ±5%%", k, c, want)
		}
	}
}

// TestChooserDeterminism: both choosers and the full generator are
// byte-deterministic for a fixed seed across two independent runs —
// the property the golden tables and BENCH_8.json replay relies on.
func TestChooserDeterminism(t *testing.T) {
	const n, draws = 4096, 20_000
	for _, tc := range []struct {
		name string
		mk   func() KeyChooser
	}{
		{"uniform", func() KeyChooser { return NewUniform(n, 42) }},
		{"zipfian", func() KeyChooser { return NewZipfian(n, 42, true) }},
		{"zipfian-ranked", func() KeyChooser { return NewZipfian(n, 42, false) }},
	} {
		a, b := tc.mk(), tc.mk()
		for i := 0; i < draws; i++ {
			if ka, kb := a.Next(), b.Next(); ka != kb {
				t.Fatalf("%s: draw %d differs between same-seed runs: %d vs %d", tc.name, i, ka, kb)
			}
		}
	}
	ga := NewGenerator(MixA, NewZipfian(n, 9, true), 9)
	gb := NewGenerator(MixA, NewZipfian(n, 9, true), 9)
	for i := 0; i < draws; i++ {
		oa, ka := ga.Next()
		ob, kb := gb.Next()
		if oa != ob || ka != kb {
			t.Fatalf("generator: op %d differs between same-seed runs: %v/%d vs %v/%d", i, oa, ka, ob, kb)
		}
	}
}

// TestChooserPinnedPrefix pins the exact first draws of each seeded
// stream: splitmix64 and the Gray construction are part of the package
// contract, and silently changing either would invalidate every golden.
func TestChooserPinnedPrefix(t *testing.T) {
	u := NewUniform(1000, 1)
	z := NewZipfian(1000, 1, false)
	wantU := []int{465, 519, 590, 235, 761, 48, 45, 533}
	wantZ := []int{37, 146, 804, 14, 14, 167, 397, 26}
	for i := range wantU {
		if got := u.Next(); got != wantU[i] {
			t.Fatalf("uniform draw %d = %d, want %d (splitmix64 stream changed?)", i, got, wantU[i])
		}
	}
	for i := range wantZ {
		if got := z.Next(); got != wantZ[i] {
			t.Fatalf("zipfian draw %d = %d, want %d (zipf construction changed?)", i, got, wantZ[i])
		}
	}
}

// TestMixComposition checks the generated read share of each core mix.
func TestMixComposition(t *testing.T) {
	const draws = 200_000
	for _, tc := range []struct {
		mix  Mix
		want float64
	}{
		{MixA, 0.50},
		{MixB, 0.95},
		{MixC, 1.00},
	} {
		g := NewGenerator(tc.mix, NewUniform(1024, 5), 5)
		reads := 0
		for i := 0; i < draws; i++ {
			if op, _ := g.Next(); op == OpRead {
				reads++
			}
		}
		got := float64(reads) / draws
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("mix %s: read share %.4f, want %.2f ±0.01", tc.mix.Name, got, tc.want)
		}
		if tc.mix.ReadPct == 100 && reads != draws {
			t.Errorf("mix %s: %d updates generated in a read-only mix", tc.mix.Name, draws-reads)
		}
	}
}
