package ycsb

import "math"

// rng is a splitmix64 stream: tiny, fast, and — unlike math/rand — an
// explicit part of this package's contract, so the generated workloads
// are byte-stable across Go releases (the golden tables and BENCH_8.json
// depend on that).
type rng struct{ s uint64 }

func newRNG(seed int64) rng { return rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// KeyChooser draws key indices in [0, n) under some popularity
// distribution.
type KeyChooser interface {
	// Next returns the next key index.
	Next() int
	// Name names the distribution for tables and repro lines.
	Name() string
}

// Uniform chooses keys uniformly: every key equally hot. The YCSB
// "uniform" request distribution.
type Uniform struct {
	n   int
	rng rng
}

// NewUniform builds a uniform chooser over n keys.
func NewUniform(n int, seed int64) *Uniform {
	if n <= 0 {
		panic("ycsb: uniform chooser needs n > 0")
	}
	return &Uniform{n: n, rng: newRNG(seed)}
}

// Next returns a uniform key index. The modulo bias over 2^64 is below
// one part in 10^13 for any realistic keyspace — invisible next to the
// statistical tolerance of any test or SLO.
func (u *Uniform) Next() int { return int(u.rng.next() % uint64(u.n)) }

// Name implements KeyChooser.
func (u *Uniform) Name() string { return "uniform" }

// ZipfianTheta is the YCSB-standard skew constant.
const ZipfianTheta = 0.99

// Zipfian chooses keys under a zipfian popularity law — the YCSB
// default request distribution, Gray et al.'s "Quickly generating
// billion-record synthetic databases" rejection-free construction. With
// theta=0.99 the head is hot the way real caches see it: over 10^5 keys
// the single hottest key draws ~8% of requests and the top ten ~25%.
//
// Scrambled mode hashes the popularity rank before use (YCSB's
// ScrambledZipfianGenerator): rank-0 heat lands on an arbitrary stable
// key instead of key 0, so hot keys scatter across the keyspace — and
// across the kvstore's hash buckets and value pages — rather than
// clustering at the low indices the loader allocated together.
type Zipfian struct {
	n        int
	scramble bool
	rng      rng
	alpha    float64
	zetan    float64
	eta      float64
	thetaPow float64 // 0.5^theta, the rank-1 threshold
}

// NewZipfian builds a zipfian chooser over n keys with the standard
// theta. The zeta normalizer is an O(n) precompute — microseconds for
// 10^6 keys, done once per generator.
func NewZipfian(n int, seed int64, scramble bool) *Zipfian {
	if n <= 0 {
		panic("ycsb: zipfian chooser needs n > 0")
	}
	theta := ZipfianTheta
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	z := &Zipfian{
		n:        n,
		scramble: scramble,
		rng:      newRNG(seed),
		alpha:    1 / (1 - theta),
		zetan:    zetan,
		eta:      (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		thetaPow: math.Pow(0.5, theta),
	}
	return z
}

// zeta is the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next key index. Ranks are popularity order (rank 0
// hottest); scrambled mode spreads the ranks over the keyspace with an
// FNV-style mix.
func (z *Zipfian) Next() int {
	u := z.rng.float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+z.thetaPow:
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scramble {
		return rank
	}
	// Offset before mixing so rank 0 (the hottest) lands on an arbitrary
	// key too — the finalizer alone maps 0 to 0.
	return int(mix64(uint64(rank)+0x9e3779b97f4a7c15) % uint64(z.n))
}

// Name implements KeyChooser.
func (z *Zipfian) Name() string {
	if z.scramble {
		return "zipfian"
	}
	return "zipfian-ranked"
}

// mix64 is a stateless 64-bit finalizer (splitmix64's) used to scramble
// popularity ranks into stable arbitrary key indices.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
