package bench

import (
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/apps/httpd"
	"ufork/internal/apps/kvstore"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// Contention experiment parameters (§4.5 "SMP support"): the paper pins
// μFork's Nginx to one core because every syscall serializes on the big
// kernel lock; this sweep quantifies the ceiling that restriction encodes
// by running the same worker fleets at growing core counts and splitting
// each server's wait time into core starvation (runnable-wait) vs. BKL
// queueing (bkl-wait). More cores convert the former into the latter —
// throughput plateaus while the BKL share of wait climbs.
const (
	contentionWorkers    = 4
	contentionDrivers    = 8
	contentionKeys       = 64
	contentionValueBytes = 2048
)

// contentionThink is the kvstore workers' closed-loop client think time:
// the virtual gap between operations (request parse, client turnaround).
// It bounds each worker's op count per window — without it the split-lock
// configuration, whose per-op kernel time is tiny once nothing serializes,
// runs millions of simulated ops per cell and the sweep's host cost
// explodes. Identical in both lock configurations, so it cancels out of
// the pre/post comparison.
const contentionThink = 10 * sim.Microsecond

// ContentionCoresDefault is the paper-style sweep axis.
var ContentionCoresDefault = []int{1, 2, 4, 8}

// Contention sweep windows (quick vs. -full).
const (
	ContentionWindowQuick = 20 * sim.Millisecond
	ContentionWindowFull  = 200 * sim.Millisecond
)

// Lock-configuration labels for the pre/post-split comparison.
const (
	LocksBKL = "bkl" // everything serializes on the big kernel lock
	LocksSMP = "smp" // split hierarchy, narrow residual lock
)

// contentionSystem maps a lock configuration to the benchmarked system.
func contentionSystem(locks string) SystemID {
	if locks == LocksSMP {
		return SysUForkSMP
	}
	return SysUForkCoPA
}

// globalLockName is the lockstat row of the global serializing lock under
// each configuration.
func globalLockName(locks string) string {
	if locks == LocksSMP {
		return "residual"
	}
	return "bkl"
}

// ContentionRow is one (workload, locks, cores) cell of the scaling table.
// The Global* fields describe the global serializing lock — the BKL on the
// pre-split configuration, the residual lock on the split one — so the same
// columns read as the before/after of breaking the big lock.
type ContentionRow struct {
	Workload         string
	Locks            string // LocksBKL or LocksSMP
	Cores            int
	Ops              int
	ThroughputPerSec float64
	// Wait decomposition, summed over the server-side μprocesses (load
	// drivers are off-core client machines and excluded): global-lock wait,
	// wait on all kernel locks (== global wait when everything is the BKL),
	// and runnable-wait (had work, no core free).
	BKLWaitNS  uint64
	LockWaitNS uint64
	CoreWaitNS uint64
	BKLShare   float64 // global-lock wait / (all lock wait + core wait)
	// Global-lock lockstat for the run: total acquisitions and the deepest
	// convoy the waiters-high-water window saw.
	BKLAcquisitions uint64
	BKLWaitersHigh  int64
}

// ContentionSweep runs both workloads under both lock configurations at
// each core count: the BKL rows reproduce the §4.5 single-core ceiling, the
// SMP rows show what breaking the lock buys at the same core counts.
func ContentionSweep(window sim.Time, cores []int) ([]ContentionRow, error) {
	var rows []ContentionRow
	for _, locks := range []string{LocksBKL, LocksSMP} {
		for _, c := range cores {
			row, err := httpdContention(locks, c, window)
			if err != nil {
				return nil, fmt.Errorf("bench: contention httpd/%s/%dc: %w", locks, c, err)
			}
			rows = append(rows, row)
		}
	}
	for _, locks := range []string{LocksBKL, LocksSMP} {
		for _, c := range cores {
			row, err := kvContention(locks, c, window)
			if err != nil {
				return nil, fmt.Errorf("bench: contention kvstore/%s/%dc: %w", locks, c, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// contentionWaits folds the wait decomposition and global-lock lockstat of
// a finished run into row. Off-core driver pseudo-processes never compete
// for server cores or the server locks in a way the paper's ceiling is
// about, so they are excluded by image name.
func contentionWaits(k *kernel.Kernel, lt *sim.LockTable, row *ContentionRow, exclude string) {
	for _, st := range k.ProcStats() {
		if st.Name == exclude {
			continue
		}
		row.BKLWaitNS += st.BKLWaitNS
		row.LockWaitNS += st.LockWaitNS
		row.CoreWaitNS += st.RunnableWaitNS
	}
	if total := row.LockWaitNS + row.CoreWaitNS; total > 0 {
		row.BKLShare = float64(row.BKLWaitNS) / float64(total)
	}
	global := globalLockName(row.Locks)
	for _, st := range lt.Snapshot() {
		if st.Name == global {
			row.BKLAcquisitions = st.Acquisitions
			row.BKLWaitersHigh = st.WaitersHighWater
		}
	}
}

// httpdContention is the Nginx-shaped cell: a fixed four-worker fleet
// (forked, sharing the listener) hammered by eight closed-loop drivers,
// at the given core count.
func httpdContention(locks string, cores int, window sim.Time) (ContentionRow, error) {
	k := build(contentionSystem(locks), cores, 1<<16)
	lt := sim.NewLockTable()
	k.ArmLockstat(lt)
	k.VFS().WriteFile("/index.html", make([]byte, nginxDocBytes))
	row := ContentionRow{Workload: "httpd", Locks: locks, Cores: cores}

	err := runRoot(k, nginxSpec(), func(p *kernel.Proc) error {
		srv, err := httpd.Start(p, contentionWorkers)
		if err != nil {
			return err
		}
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			return err
		}
		doneEnd, err := p.FDs.Get(wfd)
		if err != nil {
			return err
		}
		deadline := p.Now() + window
		for d := 0; d < contentionDrivers; d++ {
			if _, err := k.Spawn(driverSpec(), p.Now(), func(dp *kernel.Proc) {
				dp.Task.Offcore = true
				dwfd := dp.FDs.Install(doneEnd)
				for dp.Now() < deadline {
					if _, err := httpd.DoRequest(dp, srv.Listener, "/index.html"); err != nil {
						break
					}
				}
				_, _ = k.Write(dp, dwfd, []byte{1})
			}); err != nil {
				return err
			}
		}
		buf := make([]byte, 1)
		for d := 0; d < contentionDrivers; d++ {
			if _, err := k.Read(p, rfd, buf); err != nil {
				return err
			}
		}
		if err := srv.Shutdown(p); err != nil {
			return err
		}
		row.Ops = srv.TotalServed()
		row.ThroughputPerSec = float64(row.Ops) / (float64(window) / float64(sim.Second))
		return nil
	})
	contentionWaits(k, lt, &row, "wrk")
	return row, err
}

// kvContentionSpec is the kvstore server image: a modest static heap
// holding the shared store plus per-worker CoW copies.
func kvContentionSpec() kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "kvsrv",
		TextPages: 256, RodataPages: 64, GOTPages: 4, DataPages: 256,
		AllocMetaPages: 32, HeapPages: 4096, StackPages: 64, TLSPages: 1,
		GOTEntries: 256,
	}
}

// kvContention is the Redis-shaped cell: four forked workers rewrite keys
// and append AOF records in a closed loop while the parent cycles BGSAVE
// snapshots — every Set, Write, fork and reap crossing the BKL.
func kvContention(locks string, cores int, window sim.Time) (ContentionRow, error) {
	k := build(contentionSystem(locks), cores, 1<<16)
	lt := sim.NewLockTable()
	k.ArmLockstat(lt)
	row := ContentionRow{Workload: "kvstore", Locks: locks, Cores: cores}

	err := runRoot(k, kvContentionSpec(), func(p *kernel.Proc) error {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			return err
		}
		store, err := kvstore.Init(p, a, bucketCount(contentionKeys))
		if err != nil {
			return err
		}
		val := make([]byte, contentionValueBytes)
		for i := range val {
			val[i] = byte(i * 131)
		}
		for i := 0; i < contentionKeys; i++ {
			if err := store.Set(fmt.Sprintf("key:%06d", i), val); err != nil {
				return err
			}
		}

		deadline := p.Now() + window
		ops := make([]int, contentionWorkers)
		var workerErr error
		for w := 0; w < contentionWorkers; w++ {
			w := w
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				ws, err := kvstore.Attach(c)
				if err != nil {
					workerErr = err
					k.Exit(c, 1)
					return
				}
				fd, err := k.Open(c, fmt.Sprintf("/aof-%d", w), true)
				if err != nil {
					workerErr = err
					k.Exit(c, 1)
					return
				}
				rec := make([]byte, 128)
				for i := 0; c.Now() < deadline; i++ {
					c.Task.Advance(contentionThink)
					key := fmt.Sprintf("key:%06d", (w*17+i)%contentionKeys)
					if err := ws.Set(key, val); err != nil {
						workerErr = err
						k.Exit(c, 1)
						return
					}
					if _, err := k.Write(c, fd, rec); err != nil {
						workerErr = err
						k.Exit(c, 1)
						return
					}
					ops[w]++
				}
				k.Exit(c, 0)
			}); err != nil {
				return err
			}
		}

		// The parent is the snapshotter: BGSAVE, wait out one child (the
		// snapshot — or a worker whose window closed; the books balance
		// either way), repeat until the window ends.
		snaps := 0
		for p.Now() < deadline {
			if _, err := store.BGSave("/dump.rdb"); err != nil {
				return err
			}
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("child failed with status %d", status)
			}
			snaps++
		}
		for i := 0; i < contentionWorkers; i++ {
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("worker failed with status %d", status)
			}
		}
		if workerErr != nil {
			return workerErr
		}
		for _, n := range ops {
			row.Ops += n
		}
		row.Ops += snaps
		row.ThroughputPerSec = float64(row.Ops) / (float64(window) / float64(sim.Second))
		return nil
	})
	contentionWaits(k, lt, &row, "")
	return row, err
}

// RenderContention formats the sweep: throughput next to the wait split,
// so the one-core ceiling reads directly off the bkl rows — added cores
// stop buying throughput once glock-share owns the wait — and the smp rows
// show the split hierarchy converting that share into scaling.
func RenderContention(rows []ContentionRow) string {
	var out [][]string
	for _, r := range rows {
		unit := "req/s"
		if r.Workload == "kvstore" {
			unit = "op/s"
		}
		out = append(out, []string{
			r.Workload, r.Locks, fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.0f %s", r.ThroughputPerSec, unit),
			Ms(sim.Time(r.BKLWaitNS)), Ms(sim.Time(r.LockWaitNS)), Ms(sim.Time(r.CoreWaitNS)),
			fmt.Sprintf("%.1f%%", 100*r.BKLShare),
			fmt.Sprintf("%d", r.BKLAcquisitions),
			fmt.Sprintf("%d", r.BKLWaitersHigh),
		})
	}
	return "Contention sweep — throughput vs. global-lock wait share (§4.5 ceiling, pre/post lock split)\n" +
		Table([]string{"workload", "locks", "cores", "throughput", "glock-wait", "lock-wait", "core-wait", "glock-share", "glock-acq", "waiters-hw"}, out)
}

// CheckContentionScaling asserts the headline gates of the lock split on a
// finished sweep: the split-lock httpd fleet at 4 cores must clear twice
// its 1-core throughput, and no split-lock row at 4+ cores may spend more
// than 40% of its wait on the residual lock (the BKL rows sit near 100%).
// Used by CI's scaling-smoke job via ufork-bench -check-scaling.
func CheckContentionScaling(rows []ContentionRow) error {
	var base1, base4 float64
	for _, r := range rows {
		if r.Workload == "httpd" && r.Locks == LocksSMP {
			switch r.Cores {
			case 1:
				base1 = r.ThroughputPerSec
			case 4:
				base4 = r.ThroughputPerSec
			}
		}
		if r.Locks == LocksSMP && r.Cores >= 4 && r.BKLShare >= 0.4 {
			return fmt.Errorf("bench: %s/%dc residual-lock share %.1f%% >= 40%%",
				r.Workload, r.Cores, 100*r.BKLShare)
		}
	}
	if base1 == 0 || base4 == 0 {
		return fmt.Errorf("bench: scaling check needs smp httpd rows at 1 and 4 cores")
	}
	if base4 < 2*base1 {
		return fmt.Errorf("bench: smp httpd 4-core throughput %.0f < 2x 1-core %.0f",
			base4, base1)
	}
	return nil
}
