package bench

import (
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/apps/httpd"
	"ufork/internal/apps/kvstore"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// Contention experiment parameters (§4.5 "SMP support"): the paper pins
// μFork's Nginx to one core because every syscall serializes on the big
// kernel lock; this sweep quantifies the ceiling that restriction encodes
// by running the same worker fleets at growing core counts and splitting
// each server's wait time into core starvation (runnable-wait) vs. BKL
// queueing (bkl-wait). More cores convert the former into the latter —
// throughput plateaus while the BKL share of wait climbs.
const (
	contentionWorkers    = 4
	contentionDrivers    = 8
	contentionKeys       = 64
	contentionValueBytes = 2048
)

// ContentionCoresDefault is the paper-style sweep axis.
var ContentionCoresDefault = []int{1, 2, 4, 8}

// Contention sweep windows (quick vs. -full).
const (
	ContentionWindowQuick = 20 * sim.Millisecond
	ContentionWindowFull  = 200 * sim.Millisecond
)

// ContentionRow is one (workload, cores) cell of the scaling table.
type ContentionRow struct {
	Workload         string
	Cores            int
	Ops              int
	ThroughputPerSec float64
	// Wait decomposition, summed over the server-side μprocesses (load
	// drivers are off-core client machines and excluded).
	BKLWaitNS  uint64
	CoreWaitNS uint64 // runnable-wait: had work, no core free
	BKLShare   float64
	// BKL lockstat for the run: total acquisitions and the deepest
	// convoy the waiters-high-water window saw.
	BKLAcquisitions uint64
	BKLWaitersHigh  int64
}

// ContentionSweep runs both workloads at each core count.
func ContentionSweep(window sim.Time, cores []int) ([]ContentionRow, error) {
	var rows []ContentionRow
	for _, c := range cores {
		row, err := httpdContention(c, window)
		if err != nil {
			return nil, fmt.Errorf("bench: contention httpd/%dc: %w", c, err)
		}
		rows = append(rows, row)
	}
	for _, c := range cores {
		row, err := kvContention(c, window)
		if err != nil {
			return nil, fmt.Errorf("bench: contention kvstore/%dc: %w", c, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// contentionWaits folds the wait decomposition and BKL lockstat of a
// finished run into row. Off-core driver pseudo-processes never compete
// for server cores or the server BKL in a way the paper's ceiling is
// about, so they are excluded by image name.
func contentionWaits(k *kernel.Kernel, lt *sim.LockTable, row *ContentionRow, exclude string) {
	for _, st := range k.ProcStats() {
		if st.Name == exclude {
			continue
		}
		row.BKLWaitNS += st.BKLWaitNS
		row.CoreWaitNS += st.RunnableWaitNS
	}
	if total := row.BKLWaitNS + row.CoreWaitNS; total > 0 {
		row.BKLShare = float64(row.BKLWaitNS) / float64(total)
	}
	for _, st := range lt.Snapshot() {
		if st.Name == "bkl" {
			row.BKLAcquisitions = st.Acquisitions
			row.BKLWaitersHigh = st.WaitersHighWater
		}
	}
}

// httpdContention is the Nginx-shaped cell: a fixed four-worker fleet
// (forked, sharing the listener) hammered by eight closed-loop drivers,
// at the given core count.
func httpdContention(cores int, window sim.Time) (ContentionRow, error) {
	k := build(SysUForkCoPA, cores, 1<<16)
	lt := sim.NewLockTable()
	k.ArmLockstat(lt)
	k.VFS().WriteFile("/index.html", make([]byte, nginxDocBytes))
	row := ContentionRow{Workload: "httpd", Cores: cores}

	err := runRoot(k, nginxSpec(), func(p *kernel.Proc) error {
		srv, err := httpd.Start(p, contentionWorkers)
		if err != nil {
			return err
		}
		rfd, wfd, err := k.Pipe(p)
		if err != nil {
			return err
		}
		doneEnd, err := p.FDs.Get(wfd)
		if err != nil {
			return err
		}
		deadline := p.Now() + window
		for d := 0; d < contentionDrivers; d++ {
			if _, err := k.Spawn(driverSpec(), p.Now(), func(dp *kernel.Proc) {
				dp.Task.Offcore = true
				dwfd := dp.FDs.Install(doneEnd)
				for dp.Now() < deadline {
					if _, err := httpd.DoRequest(dp, srv.Listener, "/index.html"); err != nil {
						break
					}
				}
				_, _ = k.Write(dp, dwfd, []byte{1})
			}); err != nil {
				return err
			}
		}
		buf := make([]byte, 1)
		for d := 0; d < contentionDrivers; d++ {
			if _, err := k.Read(p, rfd, buf); err != nil {
				return err
			}
		}
		if err := srv.Shutdown(p); err != nil {
			return err
		}
		row.Ops = srv.TotalServed()
		row.ThroughputPerSec = float64(row.Ops) / (float64(window) / float64(sim.Second))
		return nil
	})
	contentionWaits(k, lt, &row, "wrk")
	return row, err
}

// kvContentionSpec is the kvstore server image: a modest static heap
// holding the shared store plus per-worker CoW copies.
func kvContentionSpec() kernel.ProgramSpec {
	return kernel.ProgramSpec{
		Name:      "kvsrv",
		TextPages: 256, RodataPages: 64, GOTPages: 4, DataPages: 256,
		AllocMetaPages: 32, HeapPages: 4096, StackPages: 64, TLSPages: 1,
		GOTEntries: 256,
	}
}

// kvContention is the Redis-shaped cell: four forked workers rewrite keys
// and append AOF records in a closed loop while the parent cycles BGSAVE
// snapshots — every Set, Write, fork and reap crossing the BKL.
func kvContention(cores int, window sim.Time) (ContentionRow, error) {
	k := build(SysUForkCoPA, cores, 1<<16)
	lt := sim.NewLockTable()
	k.ArmLockstat(lt)
	row := ContentionRow{Workload: "kvstore", Cores: cores}

	err := runRoot(k, kvContentionSpec(), func(p *kernel.Proc) error {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			return err
		}
		store, err := kvstore.Init(p, a, bucketCount(contentionKeys))
		if err != nil {
			return err
		}
		val := make([]byte, contentionValueBytes)
		for i := range val {
			val[i] = byte(i * 131)
		}
		for i := 0; i < contentionKeys; i++ {
			if err := store.Set(fmt.Sprintf("key:%06d", i), val); err != nil {
				return err
			}
		}

		deadline := p.Now() + window
		ops := make([]int, contentionWorkers)
		var workerErr error
		for w := 0; w < contentionWorkers; w++ {
			w := w
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				ws, err := kvstore.Attach(c)
				if err != nil {
					workerErr = err
					k.Exit(c, 1)
					return
				}
				fd, err := k.Open(c, fmt.Sprintf("/aof-%d", w), true)
				if err != nil {
					workerErr = err
					k.Exit(c, 1)
					return
				}
				rec := make([]byte, 128)
				for i := 0; c.Now() < deadline; i++ {
					key := fmt.Sprintf("key:%06d", (w*17+i)%contentionKeys)
					if err := ws.Set(key, val); err != nil {
						workerErr = err
						k.Exit(c, 1)
						return
					}
					if _, err := k.Write(c, fd, rec); err != nil {
						workerErr = err
						k.Exit(c, 1)
						return
					}
					ops[w]++
				}
				k.Exit(c, 0)
			}); err != nil {
				return err
			}
		}

		// The parent is the snapshotter: BGSAVE, wait out one child (the
		// snapshot — or a worker whose window closed; the books balance
		// either way), repeat until the window ends.
		snaps := 0
		for p.Now() < deadline {
			if _, err := store.BGSave("/dump.rdb"); err != nil {
				return err
			}
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("child failed with status %d", status)
			}
			snaps++
		}
		for i := 0; i < contentionWorkers; i++ {
			if _, status, err := k.Wait(p); err != nil {
				return err
			} else if status != 0 {
				return fmt.Errorf("worker failed with status %d", status)
			}
		}
		if workerErr != nil {
			return workerErr
		}
		for _, n := range ops {
			row.Ops += n
		}
		row.Ops += snaps
		row.ThroughputPerSec = float64(row.Ops) / (float64(window) / float64(sim.Second))
		return nil
	})
	contentionWaits(k, lt, &row, "")
	return row, err
}

// RenderContention formats the sweep: throughput next to the wait split,
// so the one-core ceiling reads directly off the table — added cores stop
// buying throughput once bkl-share owns the wait.
func RenderContention(rows []ContentionRow) string {
	var out [][]string
	for _, r := range rows {
		unit := "req/s"
		if r.Workload == "kvstore" {
			unit = "op/s"
		}
		out = append(out, []string{
			r.Workload, fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.0f %s", r.ThroughputPerSec, unit),
			Ms(sim.Time(r.BKLWaitNS)), Ms(sim.Time(r.CoreWaitNS)),
			fmt.Sprintf("%.1f%%", 100*r.BKLShare),
			fmt.Sprintf("%d", r.BKLAcquisitions),
			fmt.Sprintf("%d", r.BKLWaitersHigh),
		})
	}
	return "Contention sweep — throughput vs. BKL wait share (§4.5 single-core ceiling)\n" +
		Table([]string{"workload", "cores", "throughput", "bkl-wait", "core-wait", "bkl-share", "bkl-acq", "waiters-hw"}, out)
}
