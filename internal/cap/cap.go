// Package cap implements a software model of CHERI hardware capabilities.
//
// A capability is an unforgeable, bounds-carrying pointer. The model follows
// the CHERI ISA (UCAM-CL-TR-987) semantics that μFork depends on:
//
//   - every capability carries base, length, cursor (address), permissions
//     and an object type (otype) used for sealing;
//   - a one-bit validity tag marks genuine capabilities; any illegitimate
//     modification clears the tag and later dereferences fail;
//   - monotonicity: bounds and permissions can only shrink, never grow;
//   - sealed capabilities are immutable and non-dereferenceable until
//     unsealed, and sealed entry ("sentry") capabilities provide trapless,
//     unforgeable jumps into the kernel.
//
// Capabilities occupy one 16-byte granule in tagged memory (package tmem).
package cap

import (
	"errors"
	"fmt"
)

// GranuleSize is the in-memory footprint of one capability: CHERI-128
// capabilities occupy a 16-byte, 16-byte-aligned granule, and the memory
// tag plane holds one validity bit per granule.
const GranuleSize = 16

// Perm is a capability permission bit set. Permissions are monotonic: they
// can be cleared but never set on a derived capability.
type Perm uint16

const (
	// PermLoad allows data loads through the capability.
	PermLoad Perm = 1 << iota
	// PermStore allows data stores through the capability.
	PermStore
	// PermExecute allows instruction fetch through the capability.
	PermExecute
	// PermLoadCap allows loading capabilities (tagged granules).
	PermLoadCap
	// PermStoreCap allows storing capabilities (tagged granules).
	PermStoreCap
	// PermSeal allows sealing other capabilities with otypes in bounds.
	PermSeal
	// PermUnseal allows unsealing capabilities with otypes in bounds.
	PermUnseal
	// PermInvoke allows invoking sealed (sentry) capabilities.
	PermInvoke
	// PermSystem gates access to privileged system registers and
	// instructions (MSR/MRS on Morello). User capabilities never carry it;
	// this is how μFork prevents same-EL user code from executing
	// privileged instructions (§4.4, principle 2).
	PermSystem
	// PermGlobal marks a capability as storable anywhere (vs. local).
	PermGlobal
)

// PermAll is every permission bit; only root capabilities carry it.
const PermAll = PermLoad | PermStore | PermExecute | PermLoadCap |
	PermStoreCap | PermSeal | PermUnseal | PermInvoke | PermSystem | PermGlobal

// PermData is the permission set for ordinary read-write data capabilities.
const PermData = PermLoad | PermStore | PermLoadCap | PermStoreCap | PermGlobal

// PermRO is the permission set for read-only data capabilities.
const PermRO = PermLoad | PermLoadCap | PermGlobal

// PermCode is the permission set for executable (PCC-style) capabilities.
const PermCode = PermLoad | PermExecute | PermGlobal

// String returns a compact textual form such as "rwRW" for debugging.
func (p Perm) String() string {
	flags := []struct {
		bit Perm
		c   byte
	}{
		{PermLoad, 'r'}, {PermStore, 'w'}, {PermExecute, 'x'},
		{PermLoadCap, 'R'}, {PermStoreCap, 'W'}, {PermSeal, 's'},
		{PermUnseal, 'u'}, {PermInvoke, 'i'}, {PermSystem, 'S'},
		{PermGlobal, 'g'},
	}
	out := make([]byte, 0, len(flags))
	for _, f := range flags {
		if p&f.bit != 0 {
			out = append(out, f.c)
		}
	}
	if len(out) == 0 {
		return "-"
	}
	return string(out)
}

// OType is a capability object type. OTypeUnsealed marks ordinary,
// dereferenceable capabilities; any other value marks a sealed capability.
type OType uint32

// OTypeUnsealed is the otype of ordinary (non-sealed) capabilities.
const OTypeUnsealed OType = 0

// OTypeSentry seals kernel entry capabilities. Invoking a sentry capability
// transfers control to its (fixed) target: the system call handler. This is
// the trapless domain-switch mechanism μFork uses for user→kernel
// transitions (§4.4, principle 1).
const OTypeSentry OType = 1

// Errors reported by capability operations.
var (
	ErrTagCleared    = errors.New("cap: capability tag cleared")
	ErrSealed        = errors.New("cap: operation on sealed capability")
	ErrNotSealed     = errors.New("cap: capability is not sealed")
	ErrBounds        = errors.New("cap: bounds violation")
	ErrPerm          = errors.New("cap: permission violation")
	ErrMonotonic     = errors.New("cap: monotonicity violation")
	ErrBadOType      = errors.New("cap: object type mismatch")
	ErrMisaligned    = errors.New("cap: address not 16-byte aligned")
	ErrLengthOverlow = errors.New("cap: bounds overflow")
	// ErrNotRepresentable is returned by SetBounds when the requested
	// bounds cannot be encoded by the compressed capability format.
	ErrNotRepresentable = errors.New("cap: bounds not representable")
)

// mantissaBits models the precision of the compressed (CHERI-128 /
// "CHERI Concentrate") bounds encoding: bounds of objects up to
// 2^mantissaBits bytes are exact; larger objects require base and length
// aligned to RepresentableAlign. This is why CHERI allocators — including
// the tinyalloc port in the paper's §4.1 — must round and align large
// allocations.
const mantissaBits = 14

// RepresentableAlign returns the alignment the compressed encoding
// requires for base and length of an object of the given length.
func RepresentableAlign(length uint64) uint64 {
	if length < 1<<mantissaBits {
		return 1
	}
	// ceil(log2(length)) - mantissaBits
	e := 0
	for l := length - 1; l != 0; l >>= 1 {
		e++
	}
	shift := e - mantissaBits
	if shift <= 0 {
		return 1
	}
	return 1 << shift
}

// RepresentableLength rounds length up to the next representable value.
func RepresentableLength(length uint64) uint64 {
	a := RepresentableAlign(length)
	return (length + a - 1) &^ (a - 1)
}

// Representable reports whether [base, base+length) is encodable exactly.
func Representable(base, length uint64) bool {
	a := RepresentableAlign(length)
	return base%a == 0 && length%a == 0
}

// Capability is a 129-bit CHERI capability: 128 bits of bounds, address,
// permissions and otype, plus the out-of-band validity tag.
//
// The zero value is an untagged (invalid) null capability, matching the
// CHERI null capability.
type Capability struct {
	base   uint64
	length uint64
	cursor uint64
	perms  Perm
	otype  OType
	tag    bool
}

// Root returns the almighty capability over [base, base+length): full
// permissions, unsealed, tagged. Only the machine reset sequence (kernel
// boot) may mint roots; everything else derives from them monotonically.
func Root(base, length uint64) Capability {
	return Capability{base: base, length: length, cursor: base, perms: PermAll, tag: true}
}

// Null returns the untagged null capability.
func Null() Capability { return Capability{} }

// Tag reports whether the validity tag is set.
func (c Capability) Tag() bool { return c.tag }

// Base returns the lower bound.
func (c Capability) Base() uint64 { return c.base }

// Len returns the length of the bounds region.
func (c Capability) Len() uint64 { return c.length }

// Top returns the exclusive upper bound (base+length).
func (c Capability) Top() uint64 { return c.base + c.length }

// Addr returns the cursor (the address the capability points at).
func (c Capability) Addr() uint64 { return c.cursor }

// Perms returns the permission bit set.
func (c Capability) Perms() Perm { return c.perms }

// OType returns the object type; OTypeUnsealed for ordinary capabilities.
func (c Capability) OType() OType { return c.otype }

// IsSealed reports whether the capability is sealed.
func (c Capability) IsSealed() bool { return c.otype != OTypeUnsealed }

// HasPerm reports whether every permission in p is present.
func (c Capability) HasPerm(p Perm) bool { return c.perms&p == p }

// InBounds reports whether an access of size n at addr lies fully within
// the capability's bounds.
func (c Capability) InBounds(addr, n uint64) bool {
	if n == 0 {
		return addr >= c.base && addr <= c.Top()
	}
	end := addr + n
	if end < addr { // overflow
		return false
	}
	return addr >= c.base && end <= c.Top()
}

// Untag returns a copy with the validity tag cleared. This models any
// illegitimate manipulation: the bit pattern survives, the authority does
// not.
func (c Capability) Untag() Capability {
	c.tag = false
	return c
}

// CheckDeref validates a dereference of size n at address addr requiring
// permissions need. It enforces the three CHERI runtime checks: tag set,
// not sealed, bounds and permissions.
func (c Capability) CheckDeref(addr, n uint64, need Perm) error {
	if !c.tag {
		return ErrTagCleared
	}
	if c.IsSealed() {
		return ErrSealed
	}
	if !c.HasPerm(need) {
		return fmt.Errorf("%w: have %v need %v", ErrPerm, c.perms, need)
	}
	if !c.InBounds(addr, n) {
		return fmt.Errorf("%w: access [%#x,+%d) outside [%#x,%#x)", ErrBounds, addr, n, c.base, c.Top())
	}
	return nil
}

// SetAddr returns a copy with the cursor set to addr. The cursor may move
// out of bounds (CHERI permits out-of-bounds cursors as long as the value
// remains representable); dereference checks catch any actual violation.
func (c Capability) SetAddr(addr uint64) Capability {
	if c.IsSealed() {
		// Mutating a sealed capability clears the tag.
		c.tag = false
	}
	c.cursor = addr
	return c
}

// Add returns a copy with the cursor advanced by delta (pointer
// arithmetic). Sealed capabilities lose their tag.
func (c Capability) Add(delta int64) Capability {
	return c.SetAddr(uint64(int64(c.cursor) + delta))
}

// SetBounds derives a capability whose bounds are [addr, addr+length) where
// addr is the current cursor. Deriving bounds outside the existing bounds is
// a monotonicity violation and fails; bounds the compressed encoding cannot
// represent exactly fail with ErrNotRepresentable (the CSetBoundsExact
// discipline — callers such as the allocator align and round instead of
// silently widening authority).
func (c Capability) SetBounds(length uint64) (Capability, error) {
	if !c.tag {
		return c.Untag(), ErrTagCleared
	}
	if c.IsSealed() {
		return c.Untag(), ErrSealed
	}
	newBase := c.cursor
	newTop := newBase + length
	if newTop < newBase {
		return c.Untag(), ErrLengthOverlow
	}
	if newBase < c.base || newTop > c.Top() {
		return c.Untag(), fmt.Errorf("%w: [%#x,%#x) not within [%#x,%#x)",
			ErrMonotonic, newBase, newTop, c.base, c.Top())
	}
	if !Representable(newBase, length) {
		return c.Untag(), fmt.Errorf("%w: [%#x,+%#x) needs %d-byte alignment",
			ErrNotRepresentable, newBase, length, RepresentableAlign(length))
	}
	c.base = newBase
	c.length = length
	c.cursor = newBase
	return c, nil
}

// WithPerms derives a capability whose permissions are the intersection of
// the current permissions and p (CAndPerm). Monotonic by construction.
func (c Capability) WithPerms(p Perm) Capability {
	if c.IsSealed() {
		c.tag = false
	}
	c.perms &= p
	return c
}

// Seal seals c with the otype designated by the sealing capability's
// cursor. The sealer must be tagged, unsealed, hold PermSeal, and its
// cursor must be in bounds.
func (c Capability) Seal(sealer Capability) (Capability, error) {
	if !c.tag || !sealer.tag {
		return c.Untag(), ErrTagCleared
	}
	if c.IsSealed() {
		return c.Untag(), ErrSealed
	}
	if !sealer.HasPerm(PermSeal) {
		return c.Untag(), ErrPerm
	}
	if !sealer.InBounds(sealer.cursor, 1) {
		return c.Untag(), ErrBounds
	}
	ot := OType(sealer.cursor)
	if ot == OTypeUnsealed {
		return c.Untag(), ErrBadOType
	}
	c.otype = ot
	return c, nil
}

// Unseal unseals c using an unsealing capability whose cursor designates
// the matching otype.
func (c Capability) Unseal(unsealer Capability) (Capability, error) {
	if !c.tag || !unsealer.tag {
		return c.Untag(), ErrTagCleared
	}
	if !c.IsSealed() {
		return c.Untag(), ErrNotSealed
	}
	if !unsealer.HasPerm(PermUnseal) {
		return c.Untag(), ErrPerm
	}
	if OType(unsealer.cursor) != c.otype {
		return c.Untag(), ErrBadOType
	}
	c.otype = OTypeUnsealed
	return c, nil
}

// SealEntry seals c as a sentry (sealed entry) capability. Sentries can be
// invoked but not inspected or modified; they are the kernel's trapless
// syscall entry tokens.
func (c Capability) SealEntry() (Capability, error) {
	if !c.tag {
		return c.Untag(), ErrTagCleared
	}
	if c.IsSealed() {
		return c.Untag(), ErrSealed
	}
	if !c.HasPerm(PermExecute) {
		return c.Untag(), ErrPerm
	}
	c.otype = OTypeSentry
	return c, nil
}

// InvokeSentry validates invocation of a sentry capability and returns the
// unsealed target. It models the CInvoke/branch-to-sentry instruction: the
// only way for user code to enter kernel code.
func (c Capability) InvokeSentry() (Capability, error) {
	if !c.tag {
		return Null(), ErrTagCleared
	}
	if c.otype != OTypeSentry {
		return Null(), ErrBadOType
	}
	c.otype = OTypeUnsealed
	return c, nil
}

// Rebase relocates the capability by delta bytes: base and cursor both
// move. This is the primitive μFork's relocation pass applies to
// capabilities found (via their tags) in copied pages. It is a privileged
// operation — only the kernel's relocation pass may use it, since it is
// not monotonic in general.
func (c Capability) Rebase(delta int64) Capability {
	c.base = uint64(int64(c.base) + delta)
	c.cursor = uint64(int64(c.cursor) + delta)
	return c
}

// ClampBounds restricts the capability's bounds to the intersection with
// [lo, hi). Used by μFork to guarantee relocated capabilities cannot reach
// outside the child μprocess region. The cursor is preserved.
func (c Capability) ClampBounds(lo, hi uint64) Capability {
	base := c.base
	top := c.Top()
	if base < lo {
		base = lo
	}
	if top > hi {
		top = hi
	}
	if top < base {
		top = base
	}
	c.base = base
	c.length = top - base
	return c
}

// Equal reports full structural equality including the tag.
func (c Capability) Equal(o Capability) bool { return c == o }

// String implements fmt.Stringer.
func (c Capability) String() string {
	t := "v"
	if !c.tag {
		t = "-"
	}
	s := ""
	if c.IsSealed() {
		s = fmt.Sprintf(" sealed(%d)", c.otype)
	}
	return fmt.Sprintf("cap{%s %s addr=%#x bounds=[%#x,%#x)%s}", t, c.perms, c.cursor, c.base, c.Top(), s)
}
