package cap

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRepresentableAlign(t *testing.T) {
	cases := []struct {
		length uint64
		align  uint64
	}{
		{1, 1},
		{16, 1},
		{1 << 13, 1},
		{1<<14 - 1, 1},
		{1 << 14, 1},         // exactly 2^14: ceil(log2) == 14 → exact
		{1<<14 + 1, 2},       // 15-bit length → 2-byte alignment
		{100 * 1024, 8},      // 17-bit
		{1 << 20, 64},        // 21-bit... ceil(log2)=20 → 2^6
		{137 << 20, 1 << 14}, // the paper's static heap scale
	}
	for _, tc := range cases {
		if got := RepresentableAlign(tc.length); got != tc.align {
			t.Errorf("RepresentableAlign(%d) = %d, want %d", tc.length, got, tc.align)
		}
	}
}

func TestSetBoundsRepresentability(t *testing.T) {
	root := Root(0, 1<<40)
	// A large object at an unaligned base is refused.
	if _, err := root.SetAddr(16).SetBounds(1 << 20); !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("unaligned large bounds: %v", err)
	}
	// The same object aligned works.
	c, err := root.SetAddr(1 << 20).SetBounds(1 << 20)
	if err != nil {
		t.Fatalf("aligned large bounds: %v", err)
	}
	if c.Len() != 1<<20 {
		t.Fatalf("len = %d", c.Len())
	}
	// Small objects are exact at any 1-byte base.
	if _, err := root.SetAddr(12345).SetBounds(100); err != nil {
		t.Fatalf("small bounds: %v", err)
	}
}

// Property: RepresentableLength always yields a representable length at an
// aligned base, and never shrinks.
func TestRepresentableLengthProperty(t *testing.T) {
	f := func(raw uint32) bool {
		length := uint64(raw)
		if length == 0 {
			length = 1
		}
		r := RepresentableLength(length)
		if r < length {
			return false
		}
		a := RepresentableAlign(r)
		return Representable(a*8, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
