package cap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	c := Root(0x1000, 0x4000)
	if !c.Tag() {
		t.Fatal("root capability must be tagged")
	}
	if c.Base() != 0x1000 || c.Len() != 0x4000 || c.Top() != 0x5000 {
		t.Fatalf("bad bounds: %v", c)
	}
	if c.Addr() != c.Base() {
		t.Fatalf("root cursor should start at base, got %#x", c.Addr())
	}
	if !c.HasPerm(PermAll) {
		t.Fatal("root must carry all permissions")
	}
	if c.IsSealed() {
		t.Fatal("root must be unsealed")
	}
}

func TestNullCapability(t *testing.T) {
	n := Null()
	if n.Tag() {
		t.Fatal("null capability must be untagged")
	}
	if err := n.CheckDeref(0, 1, PermLoad); !errors.Is(err, ErrTagCleared) {
		t.Fatalf("deref of null: got %v, want ErrTagCleared", err)
	}
	var zero Capability
	if !zero.Equal(n) {
		t.Fatal("zero value must equal Null()")
	}
}

func TestCheckDeref(t *testing.T) {
	c := Root(0x1000, 0x100).WithPerms(PermData)
	cases := []struct {
		name string
		addr uint64
		n    uint64
		need Perm
		err  error
	}{
		{"ok-load", 0x1000, 16, PermLoad, nil},
		{"ok-store-end", 0x10f0, 16, PermStore, nil},
		{"below", 0xfff, 1, PermLoad, ErrBounds},
		{"beyond", 0x10f1, 16, PermLoad, ErrBounds},
		{"exec-denied", 0x1000, 4, PermExecute, ErrPerm},
		{"overflow", ^uint64(0) - 3, 8, PermLoad, ErrBounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.CheckDeref(tc.addr, tc.n, tc.need)
			if tc.err == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.err != nil && !errors.Is(err, tc.err) {
				t.Fatalf("got %v, want %v", err, tc.err)
			}
		})
	}
}

func TestSetBoundsMonotonic(t *testing.T) {
	c := Root(0x1000, 0x1000)
	sub, err := c.SetAddr(0x1800).SetBounds(0x100)
	if err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	if sub.Base() != 0x1800 || sub.Len() != 0x100 {
		t.Fatalf("bad derived bounds: %v", sub)
	}
	if !sub.Tag() {
		t.Fatal("derived capability must keep tag")
	}
	// Growing back is a monotonicity violation.
	if _, err := sub.SetAddr(0x1000).SetBounds(0x1000); !errors.Is(err, ErrMonotonic) {
		t.Fatalf("expected ErrMonotonic, got %v", err)
	}
	// Even growing by one byte past the top fails.
	if _, err := sub.SetAddr(0x1800).SetBounds(0x101); !errors.Is(err, ErrMonotonic) {
		t.Fatalf("expected ErrMonotonic, got %v", err)
	}
}

func TestSetBoundsOverflow(t *testing.T) {
	c := Root(0, ^uint64(0))
	if _, err := c.SetAddr(^uint64(0) - 10).SetBounds(100); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestWithPermsMonotonic(t *testing.T) {
	c := Root(0, 0x1000)
	ro := c.WithPerms(PermRO)
	if ro.HasPerm(PermStore) {
		t.Fatal("WithPerms must drop PermStore")
	}
	// Attempting to re-add permissions via WithPerms keeps intersection only.
	rw := ro.WithPerms(PermAll)
	if rw.Perms() != PermRO {
		t.Fatalf("permissions grew: %v", rw.Perms())
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	c := Root(0x1000, 0x100).WithPerms(PermData)
	sealer := Root(0, 0x1000).SetAddr(42)
	sealed, err := c.Seal(sealer)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !sealed.IsSealed() || sealed.OType() != 42 {
		t.Fatalf("bad sealed cap: %v", sealed)
	}
	// Sealed caps cannot be dereferenced.
	if err := sealed.CheckDeref(0x1000, 1, PermLoad); !errors.Is(err, ErrSealed) {
		t.Fatalf("deref of sealed: got %v", err)
	}
	// Mutation of a sealed cap clears the tag.
	if sealed.Add(8).Tag() {
		t.Fatal("arithmetic on sealed cap must clear tag")
	}
	if sealed.WithPerms(PermRO).Tag() {
		t.Fatal("perm change on sealed cap must clear tag")
	}
	// Unseal with wrong otype fails.
	badUnsealer := Root(0, 0x1000).SetAddr(43)
	if _, err := sealed.Unseal(badUnsealer); !errors.Is(err, ErrBadOType) {
		t.Fatalf("unseal with wrong otype: got %v", err)
	}
	// Correct unseal restores the original.
	unsealed, err := sealed.Unseal(sealer)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !unsealed.Equal(c) {
		t.Fatalf("round trip mismatch: %v vs %v", unsealed, c)
	}
}

func TestSealRequiresPermission(t *testing.T) {
	c := Root(0x1000, 0x100)
	noSeal := Root(0, 0x1000).WithPerms(PermData).SetAddr(42)
	if _, err := c.Seal(noSeal); !errors.Is(err, ErrPerm) {
		t.Fatalf("seal without PermSeal: got %v", err)
	}
}

func TestSentry(t *testing.T) {
	code := Root(0x4000, 0x1000).WithPerms(PermCode)
	sentry, err := code.SealEntry()
	if err != nil {
		t.Fatalf("SealEntry: %v", err)
	}
	if sentry.OType() != OTypeSentry {
		t.Fatalf("otype = %d, want sentry", sentry.OType())
	}
	// Sentries cannot be dereferenced or rebounded.
	if err := sentry.CheckDeref(0x4000, 4, PermLoad); !errors.Is(err, ErrSealed) {
		t.Fatalf("deref sentry: %v", err)
	}
	if _, err := sentry.SetBounds(16); !errors.Is(err, ErrSealed) {
		t.Fatalf("SetBounds sentry: %v", err)
	}
	target, err := sentry.InvokeSentry()
	if err != nil {
		t.Fatalf("InvokeSentry: %v", err)
	}
	if target.IsSealed() || !target.Equal(code) {
		t.Fatalf("invoke should yield the original code cap, got %v", target)
	}
	// A data capability without PermExecute cannot become a sentry.
	data := Root(0, 0x100).WithPerms(PermData)
	if _, err := data.SealEntry(); !errors.Is(err, ErrPerm) {
		t.Fatalf("SealEntry on data cap: %v", err)
	}
	// Invoking a non-sentry fails.
	if _, err := code.InvokeSentry(); !errors.Is(err, ErrBadOType) {
		t.Fatalf("InvokeSentry on unsealed: %v", err)
	}
}

func TestRebaseAndClamp(t *testing.T) {
	// A parent-region capability relocated into the child region.
	parent := Root(0x10000, 0x1000).SetAddr(0x10420)
	delta := int64(0x90000)
	child := parent.Rebase(delta)
	if child.Base() != 0xa0000 || child.Addr() != 0xa0420 {
		t.Fatalf("bad rebase: %v", child)
	}
	if child.Len() != parent.Len() {
		t.Fatal("rebase must preserve length")
	}
	// Clamping restricts over-wide bounds to the child region.
	wide := Root(0, 1<<40).SetAddr(0xa0000)
	clamped := wide.ClampBounds(0xa0000, 0xb0000)
	if clamped.Base() != 0xa0000 || clamped.Top() != 0xb0000 {
		t.Fatalf("bad clamp: %v", clamped)
	}
	// Degenerate clamp yields an empty, harmless capability.
	empty := Root(0, 0x1000).ClampBounds(0x5000, 0x4000)
	if empty.Len() != 0 {
		t.Fatalf("degenerate clamp should be empty, got %v", empty)
	}
}

func TestUntag(t *testing.T) {
	c := Root(0, 0x1000).Untag()
	if c.Tag() {
		t.Fatal("Untag failed")
	}
	if _, err := c.SetBounds(16); !errors.Is(err, ErrTagCleared) {
		t.Fatalf("SetBounds on untagged: %v", err)
	}
}

func TestPermString(t *testing.T) {
	if got := PermData.String(); got != "rwRWg" {
		t.Fatalf("PermData.String() = %q", got)
	}
	if got := Perm(0).String(); got != "-" {
		t.Fatalf("empty perms = %q", got)
	}
}

// randomCap builds an arbitrary valid derived capability for property tests.
func randomCap(r *rand.Rand) Capability {
	base := uint64(r.Intn(1 << 20))
	length := uint64(r.Intn(1<<20) + 1)
	c := Root(base, length)
	c = c.SetAddr(base + uint64(r.Intn(int(length))))
	return c
}

// Property: any chain of SetBounds/WithPerms derivations never escapes the
// original bounds or gains permissions (the monotonicity invariant μFork's
// isolation argument rests on, §4.3).
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomCap(r)
		c := orig
		for i := 0; i < int(steps%16)+1; i++ {
			switch r.Intn(3) {
			case 0:
				if c.Len() == 0 {
					continue
				}
				off := uint64(r.Intn(int(c.Len())))
				n := uint64(r.Intn(int(c.Len()-off)) + 1)
				d, err := c.SetAddr(c.Base() + off).SetBounds(n)
				if errors.Is(err, ErrNotRepresentable) {
					continue // legal refusal: compressed encoding limits
				}
				if err != nil {
					return false
				}
				c = d
			case 1:
				c = c.WithPerms(Perm(r.Intn(1 << 10)))
			case 2:
				c = c.SetAddr(c.Base())
			}
			if c.Base() < orig.Base() || c.Top() > orig.Top() {
				return false
			}
			if c.Perms()&^orig.Perms() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rebase preserves length and relative cursor offset exactly.
func TestRebaseProperty(t *testing.T) {
	f := func(seed int64, rawDelta int32) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCap(r)
		delta := int64(rawDelta)
		d := c.Rebase(delta)
		return d.Len() == c.Len() &&
			d.Addr()-d.Base() == c.Addr()-c.Base() &&
			int64(d.Base())-int64(c.Base()) == delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
