package posix_test

import (
	"testing"

	"ufork/internal/baseline/posix"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/vm"
)

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.Posix(2),
		Engine:    posix.New(),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
}

func run(t *testing.T, k *kernel.Kernel, entry func(*kernel.Proc)) {
	t.Helper()
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, entry); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestForkSameAddressesNewSpace(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			if c.Region.Base != p.Region.Base {
				t.Error("posix child must reuse the parent's virtual addresses")
			}
			if c.AS == p.AS {
				t.Error("posix child must have its own address space")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCoWSnapshotSemantics(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 0, []byte("snapshot")); err != nil {
			t.Fatal(err)
		}
		_, err := k.Fork(p, func(c *kernel.Proc) {
			buf := make([]byte, 8)
			if err := c.Load(c.HeapCap, 0, buf); err != nil {
				t.Errorf("child load: %v", err)
				return
			}
			if string(buf) != "snapshot" {
				t.Errorf("child sees %q", buf)
			}
			if err := c.Store(c.HeapCap, 0, []byte("CHILDWRT")); err != nil {
				t.Errorf("child store: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if err := p.Load(p.HeapCap, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "snapshot" {
			t.Errorf("parent sees %q: child write leaked", buf)
		}
	})
}

func TestNoRelocationNeeded(t *testing.T) {
	// Pointers stored before fork remain valid unchanged in the child —
	// the whole point of same-VA CoW fork.
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		tgt, err := p.HeapCap.SetAddr(p.HeapCap.Base() + 4096).SetBounds(32)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Store(tgt, 0, []byte("pointee")); err != nil {
			t.Fatal(err)
		}
		if err := p.StoreCap(p.HeapCap, 0, tgt); err != nil {
			t.Fatal(err)
		}
		_, err = k.Fork(p, func(c *kernel.Proc) {
			ptr, err := c.LoadCap(c.HeapCap, 0)
			if err != nil {
				t.Errorf("child cap load: %v", err)
				return
			}
			if ptr.Addr() != tgt.Addr() {
				t.Errorf("pointer changed across posix fork: %v vs %v", ptr, tgt)
			}
			buf := make([]byte, 7)
			if err := c.Load(ptr, 0, buf); err != nil {
				t.Errorf("deref: %v", err)
				return
			}
			if string(buf) != "pointee" {
				t.Errorf("deref = %q", buf)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRuntimeImageInPRSS(t *testing.T) {
	// The monolithic per-process runtime image (rtld, libc) is part of the
	// image and shows up in the child's proportional set (Fig. 8's
	// per-process memory gap); a freshly forked child shares it CoW.
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		var childPRSS uint64
		_, err := k.Fork(p, func(c *kernel.Proc) {
			childPRSS = c.Usage().PRSSBytes
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		// At minimum half the runtime image is attributed to the child.
		min := uint64(k.Machine.RuntimeImagePages) * vm.PageSize / 2
		if childPRSS < min {
			t.Errorf("child PRSS = %d, want >= %d (shared runtime image)", childPRSS, min)
		}
	})
}

func TestForkLatencyIncludesVMSpace(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {})
		if err != nil {
			t.Fatal(err)
		}
		if p.LastFork.Latency < k.Machine.VMSpaceSetup {
			t.Errorf("fork latency %v below vmspace setup cost %v",
				p.LastFork.Latency, k.Machine.VMSpaceSetup)
		}
		if p.LastFork.PTEsCopied == 0 {
			t.Error("no PTEs copied")
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWriteToTextRejected(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {
			textVA := c.Layout.SegBase(c.Region.Base, kernel.SegText)
			err := c.Store(c.DDC.SetAddr(textVA), 0, []byte{0x90})
			if err == nil {
				t.Error("write to CoW text must still fail")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSharedPagesAccounting(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		blob := make([]byte, 4*vm.PageSize)
		if err := p.Store(p.HeapCap, 0, blob); err != nil {
			t.Fatal(err)
		}
		_, err := k.Fork(p, func(c *kernel.Proc) {
			u := c.Usage()
			if u.SharedPages == 0 {
				t.Error("freshly forked posix child should share pages CoW")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}
