// Package posix implements the monolithic-kernel baseline: classic POSIX
// fork in a multi-address-space OS, modelled on CheriBSD 23.11 as used in
// the paper's evaluation (§5).
//
// fork creates a new address space whose page-table entries alias the
// parent's frames copy-on-write; because the child occupies the same
// virtual addresses, no relocation is ever needed — the cost shows up
// elsewhere: per-process page tables, trap-based system calls, TLB/cache
// flushes on context switches, and a fixed vmspace-creation charge.
package posix

import (
	"fmt"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/vm"
)

// Engine is the CheriBSD-like fork engine.
type Engine struct{}

// New returns the baseline engine.
func New() *Engine { return &Engine{} }

// Name implements kernel.ForkEngine.
func (e *Engine) Name() string { return "posix-cow" }

// Fork implements kernel.ForkEngine: classic CoW fork.
func (e *Engine) Fork(k *kernel.Kernel, parent, child *kernel.Proc) (kernel.ForkStats, error) {
	var stats kernel.ForkStats
	m := k.Machine
	t0 := parent.Task.Now()

	// A brand-new address space: pmap + vm_map creation dominates the
	// fixed cost of a small fork (Fig. 8).
	child.AS = vm.NewAddressSpace(k.Mem)
	child.Region = parent.Region // same virtual addresses
	stats.Latency += m.VMSpaceSetup
	stats.ReserveTime = m.VMSpaceSetup

	startVPN := vm.VPNOf(parent.Region.Base)
	endVPN := vm.VPNOf(parent.Region.Top()-1) + 1
	var copyErr error
	parent.AS.RangeVPNs(startVPN, endVPN, func(vpn vm.VPN, pte *vm.PTE) {
		if copyErr != nil {
			return
		}
		stats.PTEsCopied++
		stats.Latency += m.PTECopy
		stats.PTECopyTime += m.PTECopy
		// Both sides lose write permission; the first writer copies.
		shared := pte.Prot &^ vm.ProtWrite
		if err := parent.AS.Protect(vpn, shared); err != nil {
			copyErr = err
			return
		}
		if err := child.AS.Map(vpn, pte.Page, shared); err != nil {
			copyErr = err
			return
		}
	})
	if copyErr != nil {
		return stats, copyErr
	}

	// Registers and ambient capabilities transfer unchanged: the child's
	// address space is an exact alias of the parent's.
	child.Regs = parent.Regs
	child.DDC = parent.DDC
	child.PCC = parent.PCC
	child.StackCap = parent.StackCap
	child.HeapCap = parent.HeapCap
	child.GOTCap = parent.GOTCap
	child.MetaCap = parent.MetaCap
	child.DataCap = parent.DataCap
	child.TLSCap = parent.TLSCap
	child.SyscallCap = parent.SyscallCap

	if obs.On() {
		tr := k.Obs.Tracer
		pid, tid := int(parent.PID), parent.Task.ID
		tr.Complete(pid, tid, "vmspace-setup", "fork", uint64(t0), uint64(stats.ReserveTime))
		tr.Complete(pid, tid, "pte-copy", "fork",
			uint64(t0)+uint64(stats.ReserveTime), uint64(stats.PTECopyTime),
			obs.A("ptes", uint64(stats.PTEsCopied)))
	}

	return stats, nil
}

// HandleFault implements kernel.ForkEngine: demand heap paging plus plain
// copy-on-write.
func (e *Engine) HandleFault(k *kernel.Kernel, p *kernel.Proc, f *vm.Fault, acc vm.Access) error {
	if !p.Region.Contains(f.VA) {
		return fmt.Errorf("posix: access outside process image: %v", f)
	}
	off := f.VA - p.Region.Base
	seg, ok := p.Layout.SegmentOf(off)
	if !ok {
		return fmt.Errorf("posix: fault outside image: %v", f)
	}
	if f.Kind == vm.FaultNotMapped {
		if seg != kernel.SegHeap || !k.Machine.DemandPagedHeap {
			return fmt.Errorf("posix: unresolvable fault: %v", f)
		}
		// First touch of a demand-paged heap page: map a fresh zero frame.
		if _, err := p.AS.MapNew(vm.VPNOf(f.VA), seg.NaturalProt()); err != nil {
			return err
		}
		return nil
	}
	if f.Kind != vm.FaultWriteProtect {
		return fmt.Errorf("posix: unresolvable fault: %v", f)
	}
	natural := seg.NaturalProt()
	if natural&vm.ProtWrite == 0 {
		return fmt.Errorf("posix: write to read-only %v segment: %v", seg, f)
	}
	_, copied, err := p.AS.MakePrivate(vm.VPNOf(f.VA), natural)
	if err != nil {
		return err
	}
	if copied {
		t0 := p.Task.Now()
		p.Task.Advance(k.Machine.PageCopy)
		if obs.On() {
			k.Obs.Tracer.Complete(int(p.PID), p.Task.ID, "cow-copy", "fault",
				uint64(t0), uint64(k.Machine.PageCopy))
		}
	}
	return nil
}

// ChildStart implements kernel.ForkEngine. Plain fork does not re-run the
// dynamic linker, so the monolithic child needs no eager fixups; the
// per-process memory the paper attributes to the runtime image and the
// allocator arena (Fig. 5, Fig. 8) is the proportional-set attribution of
// the CoW-shared pages, which vm.Usage's accounting reproduces without
// touching anything.
func (e *Engine) ChildStart(k *kernel.Kernel, child *kernel.Proc) {}
