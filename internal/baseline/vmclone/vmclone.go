// Package vmclone implements the Nephele-like baseline: fork by cloning
// the entire unikernel VM through the hypervisor (§2.3 "the OS as a
// process").
//
// The clone pays a fixed hypervisor domain-creation cost and physically
// copies the whole VM image — OS pages included — so both fork latency and
// per-process memory are orders of magnitude above μFork's (Fig. 8:
// 10.7 ms and 1.6 MB per hello-world process).
package vmclone

import (
	"fmt"

	"ufork/internal/kernel"
	"ufork/internal/obs"
	"ufork/internal/vm"
)

// Engine is the VM-cloning fork engine.
type Engine struct{}

// New returns the baseline engine.
func New() *Engine { return &Engine{} }

// Name implements kernel.ForkEngine.
func (e *Engine) Name() string { return "vm-clone" }

// Fork implements kernel.ForkEngine: duplicate the whole VM.
func (e *Engine) Fork(k *kernel.Kernel, parent, child *kernel.Proc) (kernel.ForkStats, error) {
	var stats kernel.ForkStats
	m := k.Machine
	t0 := parent.Task.Now()

	child.AS = vm.NewAddressSpace(k.Mem)
	child.Region = parent.Region // the clone sees identical guest-virtual addresses
	stats.Latency += m.DomainCreate
	stats.ReserveTime = m.DomainCreate

	startVPN := vm.VPNOf(parent.Region.Base)
	endVPN := vm.VPNOf(parent.Region.Top()-1) + 1
	var copyErr error
	parent.AS.RangeVPNs(startVPN, endVPN, func(vpn vm.VPN, pte *vm.PTE) {
		if copyErr != nil {
			return
		}
		stats.PTEsCopied++
		stats.Latency += m.PTECopy
		stats.PTECopyTime += m.PTECopy
		pfn, err := k.Mem.AllocFrame()
		if err != nil {
			copyErr = err
			return
		}
		if err := k.Mem.CopyFrame(pfn, pte.Page.PFN); err != nil {
			_ = k.Mem.FreeFrame(pfn)
			copyErr = err
			return
		}
		off := uint64(vpn)*vm.PageSize - parent.Region.Base
		seg, ok := parent.Layout.SegmentOf(off)
		if !ok {
			_ = k.Mem.FreeFrame(pfn)
			copyErr = fmt.Errorf("vmclone: page %#x outside image", uint64(vpn)*vm.PageSize)
			return
		}
		if err := child.AS.Map(vpn, &vm.Page{PFN: pfn}, seg.NaturalProt()); err != nil {
			// Allocated but never mapped: free here or the abort path's
			// page-table walk will never find it.
			_ = k.Mem.FreeFrame(pfn)
			copyErr = err
			return
		}
		stats.PagesCopied++
		stats.Latency += m.PageCopy
		stats.EagerCopyTime += m.PageCopy
	})
	if copyErr != nil {
		return stats, copyErr
	}

	// Guest-virtual layout is identical, so register state transfers
	// unchanged (the hypervisor copies vCPU state wholesale).
	child.Regs = parent.Regs
	child.DDC = parent.DDC
	child.PCC = parent.PCC
	child.StackCap = parent.StackCap
	child.HeapCap = parent.HeapCap
	child.GOTCap = parent.GOTCap
	child.MetaCap = parent.MetaCap
	child.DataCap = parent.DataCap
	child.TLSCap = parent.TLSCap
	child.SyscallCap = parent.SyscallCap

	if obs.On() {
		tr := k.Obs.Tracer
		pid, tid := int(parent.PID), parent.Task.ID
		cur := uint64(t0)
		tr.Complete(pid, tid, "domain-create", "fork", cur, uint64(stats.ReserveTime))
		cur += uint64(stats.ReserveTime)
		tr.Complete(pid, tid, "pte-copy", "fork", cur, uint64(stats.PTECopyTime),
			obs.A("ptes", uint64(stats.PTEsCopied)))
		cur += uint64(stats.PTECopyTime)
		tr.Complete(pid, tid, "full-copy", "fork", cur, uint64(stats.EagerCopyTime),
			obs.A("pages", uint64(stats.PagesCopied)))
	}

	return stats, nil
}

// HandleFault implements kernel.ForkEngine. Nothing is shared after a full
// clone, so any fault is a genuine violation.
func (e *Engine) HandleFault(k *kernel.Kernel, p *kernel.Proc, f *vm.Fault, acc vm.Access) error {
	return fmt.Errorf("vmclone: unresolvable fault: %v", f)
}

// ChildStart implements kernel.ForkEngine; clones need no fixups.
func (e *Engine) ChildStart(k *kernel.Kernel, child *kernel.Proc) {}
