package vmclone_test

import (
	"testing"

	"ufork/internal/baseline/vmclone"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.VMClone(2),
		Engine:    vmclone.New(),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
}

func run(t *testing.T, k *kernel.Kernel, entry func(*kernel.Proc)) {
	t.Helper()
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, entry); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestCloneIsFullyPrivate(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		if err := p.Store(p.HeapCap, 0, []byte("vm-state")); err != nil {
			t.Fatal(err)
		}
		_, err := k.Fork(p, func(c *kernel.Proc) {
			u := c.Usage()
			if u.SharedPages != 0 {
				t.Errorf("VM clone shares %d pages; a cloned domain shares nothing", u.SharedPages)
			}
			// The OS image travelled with the clone.
			if u.MappedPages < k.Machine.VMImagePages {
				t.Errorf("clone maps %d pages, want at least the %d-page OS image",
					u.MappedPages, k.Machine.VMImagePages)
			}
			buf := make([]byte, 8)
			if err := c.Load(c.HeapCap, 0, buf); err != nil {
				t.Errorf("child load: %v", err)
				return
			}
			if string(buf) != "vm-state" {
				t.Errorf("child sees %q", buf)
			}
			// Writes are trivially private.
			if err := c.Store(c.HeapCap, 0, []byte("child-vm")); err != nil {
				t.Errorf("child store: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if err := p.Load(p.HeapCap, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "vm-state" {
			t.Errorf("parent sees %q", buf)
		}
	})
}

func TestDomainCreationDominatesLatency(t *testing.T) {
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {})
		if err != nil {
			t.Fatal(err)
		}
		if p.LastFork.Latency < k.Machine.DomainCreate {
			t.Errorf("clone latency %v below domain-creation cost %v",
				p.LastFork.Latency, k.Machine.DomainCreate)
		}
		if p.LastFork.PagesCopied == 0 {
			t.Error("clone copied no pages")
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCloneLatencyFarExceedsUFork(t *testing.T) {
	// Order-of-magnitude sanity: 10.7 ms vs 54 µs in Fig. 8.
	k := newKernel()
	run(t, k, func(p *kernel.Proc) {
		_, err := k.Fork(p, func(c *kernel.Proc) {})
		if err != nil {
			t.Fatal(err)
		}
		if p.LastFork.Latency < 100*model.UFork(1).ForkFixed {
			t.Errorf("VM clone latency %v should be orders of magnitude above μFork's fixed cost",
				p.LastFork.Latency)
		}
		if _, _, err := k.Wait(p); err != nil {
			t.Fatal(err)
		}
	})
}
