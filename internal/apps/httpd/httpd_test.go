package httpd_test

import (
	"bytes"
	"strings"
	"testing"

	"ufork/internal/apps/httpd"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

func serverSpec() kernel.ProgramSpec {
	s := kernel.HelloWorldSpec()
	s.Name = "httpd"
	s.HeapPages = 512
	return s
}

func newKernel(cores int) *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.UFork(cores),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFault, // the Nginx trust model (§3.6)
		Frames:    1 << 16,
	})
}

func TestServeStaticFile(t *testing.T) {
	k := newKernel(2)
	doc := bytes.Repeat([]byte("nginx-doc "), 100)
	k.VFS().WriteFile("/index.html", doc)
	if _, err := k.Spawn(serverSpec(), 0, func(p *kernel.Proc) {
		srv, err := httpd.Start(p, 2)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		res, err := httpd.DoRequest(p, srv.Listener, "/index.html")
		if err != nil {
			t.Errorf("request: %v", err)
			return
		}
		if !strings.Contains(res.Status, "200") {
			t.Errorf("status = %q", res.Status)
		}
		if !bytes.Equal(res.Body, doc) {
			t.Errorf("body mismatch: %d bytes vs %d", len(res.Body), len(doc))
		}
		// 404 for a missing file.
		res, err = httpd.DoRequest(p, srv.Listener, "/missing")
		if err != nil {
			t.Errorf("request: %v", err)
			return
		}
		if !strings.Contains(res.Status, "404") {
			t.Errorf("missing file status = %q", res.Status)
		}
		if err := srv.Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if srv.TotalServed() < 1 {
			t.Errorf("served = %d", srv.TotalServed())
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestWorkersShareLoad(t *testing.T) {
	k := newKernel(4)
	k.VFS().WriteFile("/f", []byte("payload"))
	if _, err := k.Spawn(serverSpec(), 0, func(p *kernel.Proc) {
		srv, err := httpd.Start(p, 3)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if _, err := httpd.DoRequest(p, srv.Listener, "/f"); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
		}
		if err := srv.Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
			return
		}
		if srv.TotalServed() != 30 {
			t.Errorf("served = %d, want 30", srv.TotalServed())
		}
		busy := 0
		for _, n := range srv.Served {
			if n > 0 {
				busy++
			}
		}
		if busy < 2 {
			t.Errorf("only %d workers served requests; want load spread", busy)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestPutReplacesFile(t *testing.T) {
	k := newKernel(2)
	k.VFS().WriteFile("/k1", []byte("old"))
	if _, err := k.Spawn(serverSpec(), 0, func(p *kernel.Proc) {
		srv, err := httpd.Start(p, 2)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		body := bytes.Repeat([]byte("v"), 128)
		res, err := httpd.DoPut(p, srv.Listener, "/k1", body)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		if !strings.Contains(res.Status, "201") {
			t.Errorf("put status = %q", res.Status)
		}
		// A PUT may also create a fresh key.
		if res, err = httpd.DoPut(p, srv.Listener, "/k-new", body); err != nil || !strings.Contains(res.Status, "201") {
			t.Errorf("create put: status %q, err %v", res.Status, err)
		}
		for _, path := range []string{"/k1", "/k-new"} {
			res, err = httpd.DoRequest(p, srv.Listener, path)
			if err != nil {
				t.Errorf("get %s: %v", path, err)
				return
			}
			if !bytes.Equal(res.Body, body) {
				t.Errorf("get %s after put: %d bytes, want %d", path, len(res.Body), len(body))
			}
		}
		if err := srv.Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestBadRequest(t *testing.T) {
	k := newKernel(2)
	if _, err := k.Spawn(serverSpec(), 0, func(p *kernel.Proc) {
		srv, err := httpd.Start(p, 1)
		if err != nil {
			t.Errorf("start: %v", err)
			return
		}
		conn := srv.Listener.Connect(p)
		if _, err := conn.Send(k, p, []byte("BOGUS nonsense\r\n\r\n")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		buf := make([]byte, 256)
		n, err := conn.Recv(k, p, buf)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if !strings.Contains(string(buf[:n]), "400") {
			t.Errorf("response = %q, want 400", buf[:n])
		}
		_ = conn.CloseClient(k, p)
		if err := srv.Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}
