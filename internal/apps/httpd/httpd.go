// Package httpd is the Nginx-stand-in workload: a master process forks
// long-lived worker processes that accept connections from a shared
// listening socket and serve static files from the ram-disk (§2.1 pattern
// U2, evaluated in §5.1 "Nginx multi-worker deployments").
//
// Workers block in accept and in socket reads, yielding the CPU — which is
// why even on a single core more workers raise throughput (the paper's
// 15.6% observation): one worker's I/O wait overlaps another's parsing.
// Every server-side operation goes through the kernel syscall layer, so
// the trap-vs-sealed-capability entry cost separates the systems (§4.4).
package httpd

import (
	"errors"
	"fmt"
	"strings"

	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// parseCost is the CPU time a worker spends parsing a request and building
// response headers (calibrated so single-core request service is dominated
// by CPU with small I/O gaps, Fig. 7).
const parseCost = 18 * sim.Microsecond

// Server is the master process state.
type Server struct {
	Listener *kernel.Listener
	ListenFD int
	// Workers holds the PIDs of forked workers.
	Workers []kernel.PID
	// Served counts responses per worker index (written by workers; safe
	// because the simulation serializes task execution).
	Served []int
}

// Start forks n workers off the master process. Each worker loops
// accepting and serving until the listener shuts down. Workers inherit
// the listening descriptor through fork, as Nginx workers do.
func Start(p *kernel.Proc, n int) (*Server, error) {
	k := p.Kernel()
	lfd, l := k.Listen(p)
	s := &Server{Listener: l, ListenFD: lfd, Served: make([]int, n)}
	for i := 0; i < n; i++ {
		idx := i
		pid, err := k.Fork(p, func(w *kernel.Proc) {
			s.Served[idx] = workerLoop(w, lfd)
		})
		if err != nil {
			return nil, err
		}
		s.Workers = append(s.Workers, pid)
	}
	return s, nil
}

// workerLoop accepts and serves connections until the listener closes.
// Returns the number of requests served. Injected EINTR on the accept
// path is retried — a worker dropping out of the fleet on a chaos-
// interrupted accept would silently shrink capacity for the rest of the
// run, which is not how a real pre-fork server treats EINTR.
func workerLoop(w *kernel.Proc, lfd int) int {
	k := w.Kernel()
	served := 0
	for {
		cfd, err := k.Accept(w, lfd)
		if err != nil {
			if errors.Is(err, kernel.ErrInterrupted) {
				continue
			}
			return served // listener shut down
		}
		if err := serveConn(w, cfd); err == nil {
			served++
		}
		_ = k.Close(w, cfd)
	}
}

// serveConn reads one request from the connection descriptor, resolves
// the path and writes the response. GET serves the file; PUT replaces
// it (the write-op half of the YCSB mixes the load harness drives).
func serveConn(w *kernel.Proc, cfd int) error {
	k := w.Kernel()
	buf := make([]byte, 1024)
	n, err := k.Read(w, cfd, buf)
	if err != nil || n == 0 {
		return fmt.Errorf("httpd: empty request")
	}
	w.Compute(parseCost)
	method, path, ok := parseRequest(string(buf[:n]))
	if !ok {
		_, err = k.Write(w, cfd, []byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
		return err
	}
	if method == "PUT" {
		return servePut(w, cfd, path, buf[:n])
	}
	ffd, err := k.Open(w, path, false)
	if err != nil {
		_, err = k.Write(w, cfd, []byte("HTTP/1.0 404 Not Found\r\n\r\n"))
		return err
	}
	defer func() { _ = k.Close(w, ffd) }()
	// Read the file through the ram-disk path, then stream it out.
	var body []byte
	chunk := make([]byte, 16*1024)
	for {
		rn, err := k.Read(w, ffd, chunk)
		if err != nil {
			return err
		}
		if rn == 0 {
			break
		}
		body = append(body, chunk[:rn]...)
	}
	head := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
	if _, err := k.Write(w, cfd, []byte(head)); err != nil {
		return err
	}
	_, err = k.Write(w, cfd, body)
	return err
}

// servePut stores the request body as the file at path. The already-read
// bytes carry the headers and (for the small bodies the load harness
// sends) the whole body; any remainder announced by Content-Length is
// drained from the connection first.
func servePut(w *kernel.Proc, cfd int, path string, req []byte) error {
	k := w.Kernel()
	headEnd := strings.Index(string(req), "\r\n\r\n")
	if headEnd < 0 {
		_, err := k.Write(w, cfd, []byte("HTTP/1.0 400 Bad Request\r\n\r\n"))
		return err
	}
	body := append([]byte(nil), req[headEnd+4:]...)
	want := 0
	for _, line := range strings.Split(string(req[:headEnd]), "\r\n") {
		if n, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			fmt.Sscanf(n, "%d", &want)
		}
	}
	chunk := make([]byte, 1024)
	for len(body) < want {
		rn, err := k.Read(w, cfd, chunk)
		if err != nil || rn == 0 {
			return fmt.Errorf("httpd: truncated PUT body")
		}
		body = append(body, chunk[:rn]...)
	}
	ffd, err := k.Open(w, path, true)
	if err != nil {
		_, err = k.Write(w, cfd, []byte("HTTP/1.0 500 Internal Server Error\r\n\r\n"))
		return err
	}
	if _, err := k.Write(w, ffd, body); err != nil {
		_ = k.Close(w, ffd)
		return err
	}
	if err := k.Close(w, ffd); err != nil {
		return err
	}
	_, err = k.Write(w, cfd, []byte("HTTP/1.0 201 Created\r\nContent-Length: 0\r\n\r\n"))
	return err
}

// parseRequest extracts the method and path from
// "GET|PUT /path HTTP/1.x".
func parseRequest(req string) (method, path string, ok bool) {
	line, _, _ := strings.Cut(req, "\r\n")
	parts := strings.Split(line, " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return "", "", false
	}
	if parts[0] != "GET" && parts[0] != "PUT" {
		return "", "", false
	}
	if !strings.HasPrefix(parts[1], "/") {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// Shutdown closes the listener and reaps all workers.
func (s *Server) Shutdown(p *kernel.Proc) error {
	k := p.Kernel()
	s.Listener.Shutdown(p)
	for range s.Workers {
		if _, _, err := k.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// TotalServed sums per-worker counts.
func (s *Server) TotalServed() int {
	total := 0
	for _, n := range s.Served {
		total += n
	}
	return total
}

// ClientResult is what one driver request observed.
type ClientResult struct {
	Status string
	Body   []byte
}

// DoRequest runs one synchronous client request from the driver process
// against the listener. The driver stands in for the external wrk client:
// its socket operations bypass the server kernel's syscall layer and book
// no server CPU.
func DoRequest(p *kernel.Proc, l *kernel.Listener, path string) (ClientResult, error) {
	k := p.Kernel()
	conn := l.Connect(p)
	defer func() { _ = conn.CloseClient(k, p) }()
	// Network latency before the request bytes reach the server: an
	// accepted connection is briefly unreadable, the I/O gap that lets
	// extra workers help even on one core (Fig. 7).
	p.Task.Advance(k.Machine.NetRTT)
	req := fmt.Sprintf("GET %s HTTP/1.0\r\n\r\n", path)
	if _, err := conn.Send(k, p, []byte(req)); err != nil {
		return ClientResult{}, err
	}
	var resp []byte
	buf := make([]byte, 4096)
	for {
		n, err := conn.Recv(k, p, buf)
		if err != nil {
			return ClientResult{}, err
		}
		if n == 0 {
			break
		}
		resp = append(resp, buf[:n]...)
		if done, _ := responseComplete(resp); done {
			break
		}
	}
	status, body := splitResponse(resp)
	return ClientResult{Status: status, Body: body}, nil
}

// DoPut runs one synchronous client PUT from the driver process,
// replacing the file at path with body. Same cost model as DoRequest.
func DoPut(p *kernel.Proc, l *kernel.Listener, path string, body []byte) (ClientResult, error) {
	k := p.Kernel()
	conn := l.Connect(p)
	defer func() { _ = conn.CloseClient(k, p) }()
	p.Task.Advance(k.Machine.NetRTT)
	req := fmt.Sprintf("PUT %s HTTP/1.0\r\nContent-Length: %d\r\n\r\n", path, len(body))
	if _, err := conn.Send(k, p, append([]byte(req), body...)); err != nil {
		return ClientResult{}, err
	}
	var resp []byte
	buf := make([]byte, 4096)
	for {
		n, err := conn.Recv(k, p, buf)
		if err != nil {
			return ClientResult{}, err
		}
		if n == 0 {
			break
		}
		resp = append(resp, buf[:n]...)
		if done, _ := responseComplete(resp); done {
			break
		}
	}
	status, rb := splitResponse(resp)
	return ClientResult{Status: status, Body: rb}, nil
}

// responseComplete checks Content-Length against the received body.
func responseComplete(resp []byte) (bool, int) {
	s := string(resp)
	headEnd := strings.Index(s, "\r\n\r\n")
	if headEnd < 0 {
		return false, 0
	}
	bodyLen := len(s) - headEnd - 4
	want := 0
	for _, line := range strings.Split(s[:headEnd], "\r\n") {
		if n, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			fmt.Sscanf(n, "%d", &want)
		}
	}
	return bodyLen >= want, want
}

func splitResponse(resp []byte) (status string, body []byte) {
	s := string(resp)
	line, _, _ := strings.Cut(s, "\r\n")
	headEnd := strings.Index(s, "\r\n\r\n")
	if headEnd >= 0 {
		body = resp[headEnd+4:]
	}
	return line, body
}
