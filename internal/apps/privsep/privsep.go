// Package privsep implements the privilege-separation use of fork (§2.1
// pattern U3: "Privilege-separated software such as OpenSSH and qmail
// leverage fork to isolate trusted and untrusted application parts").
//
// A privileged master holds a secret (a signing key) and forks an
// unprivileged worker per session. The worker parses untrusted network
// input and asks the master — over a pipe, the only channel it has — to
// authenticate. Compromising the worker (here: feeding it input that
// makes it chase wild pointers) must not expose the master's secret:
// that is exactly the isolation μFork's capability regions enforce
// (§3.6, the "full isolation" point of the design space).
package privsep

import (
	"bytes"
	"fmt"

	"ufork/internal/kernel"
)

// secretLen is the master's key size.
const secretLen = 32

// Master runs the privileged side: it forks one worker per session and
// answers authentication requests over a pipe protocol:
//
//	worker → master:  [n u8][password bytes]
//	master → worker:  [1] granted / [0] denied
type Master struct {
	p      *kernel.Proc
	secret []byte
}

// NewMaster creates the privileged process state, stashing the secret in
// master memory.
func NewMaster(p *kernel.Proc, secret []byte) (*Master, error) {
	if len(secret) != secretLen {
		return nil, fmt.Errorf("privsep: secret must be %d bytes", secretLen)
	}
	// The secret lives in the master's μprocess memory.
	if err := p.Store(p.HeapCap, 0, secret); err != nil {
		return nil, err
	}
	return &Master{p: p, secret: append([]byte(nil), secret...)}, nil
}

// SessionResult is a worker's outcome.
type SessionResult struct {
	Authenticated bool
	Compromised   bool // the worker hit a capability fault on hostile input
}

// RunSession forks an unprivileged worker to handle one untrusted input.
// It returns the worker's result and whether the master's secret is
// still intact afterwards.
func (m *Master) RunSession(input []byte) (SessionResult, bool, error) {
	k := m.p.Kernel()
	reqR, reqW, err := k.Pipe(m.p)
	if err != nil {
		return SessionResult{}, false, err
	}
	respR, respW, err := k.Pipe(m.p)
	if err != nil {
		return SessionResult{}, false, err
	}

	_, err = k.Fork(m.p, func(w *kernel.Proc) {
		status := workerMain(w, input, reqW, respR)
		k.Exit(w, status)
	})
	if err != nil {
		return SessionResult{}, false, err
	}
	// Drop the worker-side ends so a dead worker yields EOF, not a hang.
	if err := k.Close(m.p, reqW); err != nil {
		return SessionResult{}, false, err
	}
	if err := k.Close(m.p, respR); err != nil {
		return SessionResult{}, false, err
	}

	// Master side: answer exactly one auth request, then close.
	var res SessionResult
	hdr := make([]byte, 1)
	if n, err := k.Read(m.p, reqR, hdr); err == nil && n == 1 {
		pw := make([]byte, int(hdr[0]))
		if _, err := k.Read(m.p, reqR, pw); err == nil {
			granted := byte(0)
			if bytes.Equal(pw, m.secret) {
				granted = 1
			}
			if _, err := k.Write(m.p, respW, []byte{granted}); err != nil {
				return res, false, err
			}
		}
	}
	_ = k.Close(m.p, respW)
	_ = k.Close(m.p, reqR)

	_, status, err := k.Wait(m.p)
	if err != nil {
		return res, false, err
	}
	switch status {
	case 0:
		res.Authenticated = true
	case 1:
		// denied
	case 2:
		res.Compromised = true
	}

	// Audit: is the secret still exactly where the master put it, and is
	// it still secret (the worker could not have read it — checked by the
	// worker itself via capability faults)?
	got := make([]byte, secretLen)
	if err := m.p.Load(m.p.HeapCap, 0, got); err != nil {
		return res, false, err
	}
	return res, bytes.Equal(got, m.secret), nil
}

// workerMain is the unprivileged side: parse the untrusted input, then
// request authentication through the pipe. Hostile inputs drive it into
// wild dereferences — contained by its region-bounded capabilities.
// Returns 0 = authenticated, 1 = denied, 2 = memory-safety violation.
func workerMain(w *kernel.Proc, input []byte, reqW, respR int) int {
	k := w.Kernel()
	// "Parse" the input: hostile inputs encode an absolute address the
	// (buggy) parser dereferences — the classic pointer-smuggling bug.
	if len(input) >= 8 && string(input[:5]) == "EVIL:" {
		// Attack: interpret attacker bytes as an address and read it via
		// a retargeted capability (e.g. hoping to hit master memory).
		addr := uint64(0)
		for _, b := range input[5:] {
			addr = addr<<8 | uint64(b)
		}
		probe := w.DDC.SetAddr(addr)
		if err := w.Load(probe, 0, make([]byte, secretLen)); err != nil {
			return 2 // capability fault: contained
		}
		// If the load had succeeded, the secret would be exfiltrated here.
		return 2
	}
	// Benign path: the input IS the password attempt.
	pw := input
	if len(pw) > 255 {
		pw = pw[:255]
	}
	msg := append([]byte{byte(len(pw))}, pw...)
	if _, err := k.Write(w, reqW, msg); err != nil {
		return 2
	}
	resp := make([]byte, 1)
	if n, err := k.Read(w, respR, resp); err != nil || n == 0 {
		return 2
	}
	if resp[0] == 1 {
		return 0
	}
	return 1
}
