package privsep_test

import (
	"bytes"
	"testing"

	"ufork/internal/apps/privsep"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull, // adversarial model: U3 requires it
		Frames:    1 << 14,
	})
}

func secret() []byte {
	return bytes.Repeat([]byte{0x5a}, 32)
}

func withMaster(t *testing.T, fn func(k *kernel.Kernel, m *privsep.Master)) {
	t.Helper()
	k := newKernel()
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		m, err := privsep.NewMaster(p, secret())
		if err != nil {
			t.Errorf("master: %v", err)
			return
		}
		fn(k, m)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestAuthenticationGranted(t *testing.T) {
	withMaster(t, func(k *kernel.Kernel, m *privsep.Master) {
		res, intact, err := m.RunSession(secret())
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		if !res.Authenticated || res.Compromised {
			t.Errorf("correct password: %+v", res)
		}
		if !intact {
			t.Error("secret corrupted by a benign session")
		}
	})
}

func TestAuthenticationDenied(t *testing.T) {
	withMaster(t, func(k *kernel.Kernel, m *privsep.Master) {
		res, intact, err := m.RunSession([]byte("wrong-password"))
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		if res.Authenticated {
			t.Error("wrong password authenticated")
		}
		if !intact {
			t.Error("secret corrupted")
		}
	})
}

// TestCompromisedWorkerContained is the U3 property: a worker driven into
// arbitrary-pointer dereferences by hostile input neither reads the
// master's secret nor corrupts it, and the master keeps serving.
func TestCompromisedWorkerContained(t *testing.T) {
	withMaster(t, func(k *kernel.Kernel, m *privsep.Master) {
		// Hostile input encoding an absolute address (the master's heap is
		// a plausible guess for an attacker who knows the layout).
		evil := append([]byte("EVIL:"), 0, 0, 0, 0, 0, 1, 0, 0)
		res, intact, err := m.RunSession(evil)
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		if !res.Compromised {
			t.Error("hostile input did not trip the capability system")
		}
		if res.Authenticated {
			t.Error("hostile session authenticated")
		}
		if !intact {
			t.Error("master secret damaged by compromised worker")
		}
		// The master survives and still authenticates correctly afterwards.
		res, intact, err = m.RunSession(secret())
		if err != nil {
			t.Fatalf("follow-up session: %v", err)
		}
		if !res.Authenticated || !intact {
			t.Errorf("master degraded after attack: %+v intact=%v", res, intact)
		}
	})
}

func TestManySessions(t *testing.T) {
	withMaster(t, func(k *kernel.Kernel, m *privsep.Master) {
		for i := 0; i < 10; i++ {
			var input []byte
			switch i % 3 {
			case 0:
				input = secret()
			case 1:
				input = []byte("nope")
			case 2:
				input = append([]byte("EVIL:"), byte(i), 0xff, 0x10, 0)
			}
			res, intact, err := m.RunSession(input)
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if !intact {
				t.Fatalf("session %d corrupted the secret", i)
			}
			if i%3 == 0 && !res.Authenticated {
				t.Errorf("session %d: valid login denied", i)
			}
			if i%3 != 0 && res.Authenticated {
				t.Errorf("session %d: invalid login granted", i)
			}
		}
	})
}
