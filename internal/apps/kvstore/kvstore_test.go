package kvstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ufork/internal/alloc"
	"ufork/internal/apps/kvstore"
	"ufork/internal/cap"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
)

// redisSpec sizes a μprocess image for a small test database.
func redisSpec(heapPages int) kernel.ProgramSpec {
	s := kernel.HelloWorldSpec()
	s.Name = "kvstore"
	s.HeapPages = heapPages
	s.AllocMetaPages = 64
	return s
}

func withStore(t *testing.T, mode core.CopyMode, fn func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store)) {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(mode),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	if _, err := k.Spawn(redisSpec(4096), 0, func(p *kernel.Proc) {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			t.Errorf("alloc init: %v", err)
			return
		}
		s, err := kvstore.Init(p, a, 256)
		if err != nil {
			t.Errorf("store init: %v", err)
			return
		}
		fn(k, p, s)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestSetGetDelete(t *testing.T) {
	withStore(t, core.CopyOnPointerAccess, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
		if err := s.Set("alpha", []byte("one")); err != nil {
			t.Fatalf("set: %v", err)
		}
		if err := s.Set("beta", []byte("two")); err != nil {
			t.Fatalf("set: %v", err)
		}
		v, err := s.Get("alpha")
		if err != nil || string(v) != "one" {
			t.Fatalf("get alpha = %q, %v", v, err)
		}
		// Replace.
		if err := s.Set("alpha", []byte("uno!")); err != nil {
			t.Fatalf("replace: %v", err)
		}
		v, err = s.Get("alpha")
		if err != nil || string(v) != "uno!" {
			t.Fatalf("get alpha after replace = %q, %v", v, err)
		}
		n, err := s.Count()
		if err != nil || n != 2 {
			t.Fatalf("count = %d, %v", n, err)
		}
		if err := s.Delete("alpha"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, err := s.Get("alpha"); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("get deleted: %v", err)
		}
		if _, err := s.Get("gamma"); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("get missing: %v", err)
		}
		if err := s.Delete("gamma"); !errors.Is(err, kvstore.ErrNotFound) {
			t.Fatalf("delete missing: %v", err)
		}
		n, _ = s.Count()
		if n != 1 {
			t.Fatalf("count after delete = %d", n)
		}
	})
}

func TestManyKeysCollisions(t *testing.T) {
	withStore(t, core.CopyOnPointerAccess, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
		// 256 buckets, 600 keys: plenty of chaining.
		for i := 0; i < 600; i++ {
			if err := s.Set(fmt.Sprintf("key:%04d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Fatalf("set %d: %v", i, err)
			}
		}
		for i := 0; i < 600; i++ {
			v, err := s.Get(fmt.Sprintf("key:%04d", i))
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if string(v) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("key %d = %q", i, v)
			}
		}
		n, _ := s.Count()
		if n != 600 {
			t.Fatalf("count = %d", n)
		}
	})
}

func TestForEachVisitsAll(t *testing.T) {
	withStore(t, core.CopyOnPointerAccess, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
		want := map[string]bool{}
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("k%d", i)
			want[key] = true
			if err := s.Set(key, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
				t.Fatal(err)
			}
		}
		seen := map[string]bool{}
		err := s.ForEach(func(key []byte, _ capability) error {
			seen[string(key)] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(want) {
			t.Fatalf("visited %d keys, want %d", len(seen), len(want))
		}
	})
}

func TestSaveAndParse(t *testing.T) {
	withStore(t, core.CopyOnPointerAccess, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
		vals := map[string][]byte{}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("key-%d", i)
			val := bytes.Repeat([]byte{byte(i + 1)}, 300+i)
			vals[key] = val
			if err := s.Set(key, val); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Save("/dump.rdb"); err != nil {
			t.Fatalf("save: %v", err)
		}
		ino, ok := k.VFS().Lookup("/dump.rdb")
		if !ok {
			t.Fatal("dump file missing")
		}
		got, err := kvstore.LoadDump(ino.Data)
		if err != nil {
			t.Fatalf("parse dump: %v", err)
		}
		if len(got) != len(vals) {
			t.Fatalf("dump has %d keys, want %d", len(got), len(vals))
		}
		for key, val := range vals {
			if !bytes.Equal(got[key], val) {
				t.Fatalf("dump[%s] mismatch", key)
			}
		}
	})
}

// TestBGSaveSnapshotConsistency is the Redis headline property: the dump
// reflects the database at fork time even though the parent keeps
// mutating concurrently.
func TestBGSaveSnapshotConsistency(t *testing.T) {
	for _, mode := range []core.CopyMode{core.CopyOnPointerAccess, core.CopyOnAccess, core.CopyFull} {
		t.Run(mode.String(), func(t *testing.T) {
			withStore(t, mode, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
				for i := 0; i < 30; i++ {
					if err := s.Set(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("orig-%d", i))); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := s.BGSave("/bg.rdb"); err != nil {
					t.Fatalf("bgsave: %v", err)
				}
				// Parent mutates immediately after fork: overwrites and new keys.
				for i := 0; i < 30; i++ {
					if err := s.Set(fmt.Sprintf("k%d", i), []byte("MUTATED")); err != nil {
						t.Fatal(err)
					}
				}
				for i := 30; i < 40; i++ {
					if err := s.Set(fmt.Sprintf("k%d", i), []byte("NEW")); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Reap(); err != nil {
					t.Fatalf("reap: %v", err)
				}
				ino, ok := k.VFS().Lookup("/bg.rdb")
				if !ok {
					t.Fatal("dump missing")
				}
				got, err := kvstore.LoadDump(ino.Data)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if len(got) != 30 {
					t.Fatalf("snapshot has %d keys, want 30 (fork-time state)", len(got))
				}
				for i := 0; i < 30; i++ {
					if string(got[fmt.Sprintf("k%d", i)]) != fmt.Sprintf("orig-%d", i) {
						t.Fatalf("snapshot k%d = %q: parent mutation leaked", i, got[fmt.Sprintf("k%d", i)])
					}
				}
				// The live store has the mutations.
				v, err := s.Get("k0")
				if err != nil || string(v) != "MUTATED" {
					t.Fatalf("live k0 = %q, %v", v, err)
				}
			})
		})
	}
}

// TestCoPAChildMemoryFarBelowCoA reproduces the Fig. 5 mechanism at test
// scale: the snapshot child under CoPA copies only pointer-bearing pages,
// under CoA every page it reads.
func TestCoPAChildMemoryFarBelowCoA(t *testing.T) {
	childPrivate := func(mode core.CopyMode) (pages int) {
		withStore(t, mode, func(k *kernel.Kernel, p *kernel.Proc, s *kvstore.Store) {
			// 64 keys × 16 KiB values = 1 MiB of value pages.
			val := bytes.Repeat([]byte{0xab}, 16*1024)
			for i := 0; i < 64; i++ {
				if err := s.Set(fmt.Sprintf("key%d", i), val); err != nil {
					t.Fatal(err)
				}
			}
			_, err := k.Fork(p, func(c *kernel.Proc) {
				cs, err := kvstore.Attach(c)
				if err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				if err := cs.Save("/m.rdb"); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				pages = c.Usage().PrivatePages
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		})
		return pages
	}
	copa := childPrivate(core.CopyOnPointerAccess)
	coa := childPrivate(core.CopyOnAccess)
	if copa*3 > coa {
		t.Fatalf("CoPA child private pages (%d) should be far below CoA (%d)", copa, coa)
	}
}

// capability aliases the capability type for the ForEach callback.
type capability = cap.Capability
