// Package kvstore is the Redis-stand-in workload: an in-memory key-value
// store whose entire data structure lives in simulated μprocess memory,
// with a background-save (BGSAVE) feature implemented exactly the way
// Redis does it — fork, then serialize the snapshot from the child while
// the parent keeps serving (§2.1 pattern U4, evaluated in §5.1).
//
// Memory layout is deliberately Redis-like and is what makes the CoPA
// result emerge: hash-table buckets and entry headers are pages dense with
// capabilities (copied when the snapshot child walks them), while the
// values are large capability-free blobs (shared read-only under CoPA, but
// copied wholesale under CoA).
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"ufork/internal/alloc"
	"ufork/internal/cap"
	"ufork/internal/kernel"
)

// tlsRootOff is the TLS slot holding the store root capability (slot 1;
// slot 0 belongs to the minipy runtime so both can coexist).
const tlsRootOff = cap.GranuleSize

// Root block layout (capability slots are granule aligned):
// buckets cap | nbuckets u64 | count u64 | entry-arena cap | arenaOff u64 |
// pad | free-entry-list cap.
const (
	rootBucketsOff  = 0
	rootNBucketsOff = cap.GranuleSize
	rootCountOff    = cap.GranuleSize + 8
	rootArenaOff    = 2 * cap.GranuleSize
	rootArenaPosOff = 3 * cap.GranuleSize
	rootFreeEntOff  = 4 * cap.GranuleSize
	rootSize        = 5 * cap.GranuleSize
)

// Entries are fixed-size blocks carved from dedicated arena pages —
// mirroring how Redis's dict entries come from one jemalloc size class.
// The clustering matters: entry pages are capability-dense and get copied
// by the snapshot child, while value pages stay capability-free and
// shared (the Fig. 5 mechanism).
//
// Entry layout: next cap | value cap | keylen u64 | pad | key bytes.
const (
	entNextOff   = 0
	entValOff    = cap.GranuleSize
	entKeyLenOff = 2 * cap.GranuleSize
	entKeyOff    = 2*cap.GranuleSize + 16
	entSize      = 96 // entKeyOff + maxKeyLen, granule aligned
	maxKeyLen    = entSize - entKeyOff
	arenaBytes   = kernel.PageSize
)

// Errors returned by the store.
var (
	ErrNoStore  = errors.New("kvstore: no store installed in this process")
	ErrCorrupt  = errors.New("kvstore: corrupt dump")
	ErrNotFound = errors.New("kvstore: key not found")
)

// Store is a per-process view of the key-value store. Like the allocator,
// it keeps no host-side state beyond the process handle: a forked child
// attaches to its inherited, relocated copy.
type Store struct {
	p *kernel.Proc
	a *alloc.Allocator
}

// Init creates an empty store with the given bucket count and plants its
// root in TLS.
func Init(p *kernel.Proc, a *alloc.Allocator, nbuckets int) (*Store, error) {
	if nbuckets <= 0 {
		nbuckets = 1024
	}
	table, err := a.Alloc(uint64(nbuckets) * cap.GranuleSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nbuckets; i++ {
		if err := p.StoreCap(table, uint64(i)*cap.GranuleSize, cap.Null()); err != nil {
			return nil, err
		}
	}
	root, err := a.Alloc(rootSize)
	if err != nil {
		return nil, err
	}
	if err := p.StoreCap(root, rootBucketsOff, table); err != nil {
		return nil, err
	}
	if err := p.StoreU64(root, rootNBucketsOff, uint64(nbuckets)); err != nil {
		return nil, err
	}
	if err := p.StoreU64(root, rootCountOff, 0); err != nil {
		return nil, err
	}
	if err := p.StoreCap(root, rootArenaOff, cap.Null()); err != nil {
		return nil, err
	}
	if err := p.StoreU64(root, rootArenaPosOff, arenaBytes); err != nil {
		return nil, err
	}
	if err := p.StoreCap(root, rootFreeEntOff, cap.Null()); err != nil {
		return nil, err
	}
	if err := p.StoreCap(p.TLSCap, tlsRootOff, root); err != nil {
		return nil, err
	}
	return &Store{p: p, a: a}, nil
}

// Attach binds to the store a process inherited (through fork) or
// installed earlier.
func Attach(p *kernel.Proc) (*Store, error) {
	root, err := p.LoadCap(p.TLSCap, tlsRootOff)
	if err != nil {
		return nil, err
	}
	if !root.Tag() {
		return nil, ErrNoStore
	}
	return &Store{p: p, a: alloc.Attach(p)}, nil
}

func (s *Store) root() (cap.Capability, error) {
	root, err := s.p.LoadCap(s.p.TLSCap, tlsRootOff)
	if err != nil {
		return cap.Null(), err
	}
	if !root.Tag() {
		return cap.Null(), ErrNoStore
	}
	return root, nil
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// bucketOf returns (root, table, bucket byte offset).
func (s *Store) bucketOf(key string) (root, table cap.Capability, off uint64, err error) {
	if root, err = s.root(); err != nil {
		return
	}
	if table, err = s.p.LoadCap(root, rootBucketsOff); err != nil {
		return
	}
	n, err2 := s.p.LoadU64(root, rootNBucketsOff)
	if err2 != nil {
		err = err2
		return
	}
	off = (hashKey(key) % n) * cap.GranuleSize
	return
}

// findEntry walks the chain for key, returning the entry capability (or
// untagged) and the previous entry (untagged when the head matches).
func (s *Store) findEntry(table cap.Capability, bucketOff uint64, key string) (entry, prev cap.Capability, err error) {
	cur, err := s.p.LoadCap(table, bucketOff)
	if err != nil {
		return
	}
	prev = cap.Null()
	kb := []byte(key)
	for cur.Tag() {
		klen, err2 := s.p.LoadU64(cur, entKeyLenOff)
		if err2 != nil {
			err = err2
			return
		}
		if int(klen) == len(kb) {
			buf := make([]byte, klen)
			if err = s.p.Load(cur, entKeyOff, buf); err != nil {
				return
			}
			if string(buf) == key {
				entry = cur
				return
			}
		}
		next, err2 := s.p.LoadCap(cur, entNextOff)
		if err2 != nil {
			err = err2
			return
		}
		prev, cur = cur, next
	}
	return cap.Null(), prev, nil
}

// entryAlloc hands out one fixed-size entry block, reusing freed entries
// first and carving fresh ones from dedicated arena pages otherwise.
func (s *Store) entryAlloc(root cap.Capability) (cap.Capability, error) {
	free, err := s.p.LoadCap(root, rootFreeEntOff)
	if err != nil {
		return cap.Null(), err
	}
	if free.Tag() {
		next, err := s.p.LoadCap(free, entNextOff)
		if err != nil {
			return cap.Null(), err
		}
		if err := s.p.StoreCap(root, rootFreeEntOff, next); err != nil {
			return cap.Null(), err
		}
		return free, nil
	}
	arena, err := s.p.LoadCap(root, rootArenaOff)
	if err != nil {
		return cap.Null(), err
	}
	pos, err := s.p.LoadU64(root, rootArenaPosOff)
	if err != nil {
		return cap.Null(), err
	}
	if !arena.Tag() || pos+entSize > arenaBytes {
		if arena, err = s.a.Alloc(arenaBytes); err != nil {
			return cap.Null(), err
		}
		pos = 0
		if err := s.p.StoreCap(root, rootArenaOff, arena); err != nil {
			return cap.Null(), err
		}
	}
	ent, err := arena.SetAddr(arena.Base() + pos).SetBounds(entSize)
	if err != nil {
		return cap.Null(), err
	}
	if err := s.p.StoreU64(root, rootArenaPosOff, pos+entSize); err != nil {
		return cap.Null(), err
	}
	return ent, nil
}

// entryFree chains an unlinked entry onto the reuse list.
func (s *Store) entryFree(root, ent cap.Capability) error {
	free, err := s.p.LoadCap(root, rootFreeEntOff)
	if err != nil {
		return err
	}
	if err := s.p.StoreCap(ent, entNextOff, free); err != nil {
		return err
	}
	return s.p.StoreCap(root, rootFreeEntOff, ent)
}

// Set inserts or replaces key with value.
func (s *Store) Set(key string, value []byte) error {
	if len(key) > maxKeyLen {
		return fmt.Errorf("kvstore: key longer than %d bytes", maxKeyLen)
	}
	root, table, bucketOff, err := s.bucketOf(key)
	if err != nil {
		return err
	}
	entry, _, err := s.findEntry(table, bucketOff, key)
	if err != nil {
		return err
	}
	// Value blob: a dedicated capability-free block.
	valCap, err := s.a.Alloc(uint64(len(value)))
	if err != nil {
		return err
	}
	if err := s.p.Store(valCap, 0, value); err != nil {
		return err
	}
	bounded, err := valCap.SetBounds(uint64(len(value)))
	if err != nil {
		// Zero-length value: keep the granule-rounded block.
		bounded = valCap
	}
	if entry.Tag() {
		// Replace: free the old value blob.
		old, err := s.p.LoadCap(entry, entValOff)
		if err != nil {
			return err
		}
		if old.Tag() {
			// Free by block address: the allocator tracks the full block.
			if err := s.a.Free(old.SetAddr(old.Base())); err != nil {
				return err
			}
		}
		return s.p.StoreCap(entry, entValOff, bounded)
	}
	// Insert at chain head.
	ent, err := s.entryAlloc(root)
	if err != nil {
		return err
	}
	head, err := s.p.LoadCap(table, bucketOff)
	if err != nil {
		return err
	}
	if err := s.p.StoreCap(ent, entNextOff, head); err != nil {
		return err
	}
	if err := s.p.StoreCap(ent, entValOff, bounded); err != nil {
		return err
	}
	if err := s.p.StoreU64(ent, entKeyLenOff, uint64(len(key))); err != nil {
		return err
	}
	if err := s.p.Store(ent, entKeyOff, []byte(key)); err != nil {
		return err
	}
	if err := s.p.StoreCap(table, bucketOff, ent); err != nil {
		return err
	}
	count, err := s.p.LoadU64(root, rootCountOff)
	if err != nil {
		return err
	}
	return s.p.StoreU64(root, rootCountOff, count+1)
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, error) {
	_, table, bucketOff, err := s.bucketOf(key)
	if err != nil {
		return nil, err
	}
	entry, _, err := s.findEntry(table, bucketOff, key)
	if err != nil {
		return nil, err
	}
	if !entry.Tag() {
		return nil, ErrNotFound
	}
	val, err := s.p.LoadCap(entry, entValOff)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, val.Len()-(val.Addr()-val.Base()))
	if err := s.p.Load(val, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Delete removes key.
func (s *Store) Delete(key string) error {
	root, table, bucketOff, err := s.bucketOf(key)
	if err != nil {
		return err
	}
	entry, prev, err := s.findEntry(table, bucketOff, key)
	if err != nil {
		return err
	}
	if !entry.Tag() {
		return ErrNotFound
	}
	next, err := s.p.LoadCap(entry, entNextOff)
	if err != nil {
		return err
	}
	if prev.Tag() {
		if err := s.p.StoreCap(prev, entNextOff, next); err != nil {
			return err
		}
	} else {
		if err := s.p.StoreCap(table, bucketOff, next); err != nil {
			return err
		}
	}
	val, err := s.p.LoadCap(entry, entValOff)
	if err != nil {
		return err
	}
	if val.Tag() {
		if err := s.a.Free(val.SetAddr(val.Base())); err != nil {
			return err
		}
	}
	if err := s.entryFree(root, entry); err != nil {
		return err
	}
	count, err := s.p.LoadU64(root, rootCountOff)
	if err != nil {
		return err
	}
	return s.p.StoreU64(root, rootCountOff, count-1)
}

// Count returns the number of keys.
func (s *Store) Count() (uint64, error) {
	root, err := s.root()
	if err != nil {
		return 0, err
	}
	return s.p.LoadU64(root, rootCountOff)
}

// ForEach visits every entry: the snapshot walk. Each visit performs the
// capability loads (bucket, entry, value pointer) that CoPA turns into
// page copies in a forked child.
func (s *Store) ForEach(fn func(key []byte, val cap.Capability) error) error {
	root, err := s.root()
	if err != nil {
		return err
	}
	table, err := s.p.LoadCap(root, rootBucketsOff)
	if err != nil {
		return err
	}
	n, err := s.p.LoadU64(root, rootNBucketsOff)
	if err != nil {
		return err
	}
	for b := uint64(0); b < n; b++ {
		cur, err := s.p.LoadCap(table, b*cap.GranuleSize)
		if err != nil {
			return err
		}
		for cur.Tag() {
			klen, err := s.p.LoadU64(cur, entKeyLenOff)
			if err != nil {
				return err
			}
			key := make([]byte, klen)
			if err := s.p.Load(cur, entKeyOff, key); err != nil {
				return err
			}
			val, err := s.p.LoadCap(cur, entValOff)
			if err != nil {
				return err
			}
			if err := fn(key, val); err != nil {
				return err
			}
			if cur, err = s.p.LoadCap(cur, entNextOff); err != nil {
				return err
			}
		}
	}
	return nil
}

// saveChunk is the write(2) granularity of the serializer.
const saveChunk = 64 * 1024

// Save serializes the store RDB-style to a ram-disk file:
// "KVD1" | count u64 | per entry: keylen u64, key, vallen u64, value.
func (s *Store) Save(path string) error {
	k := s.p.Kernel()
	fd, err := k.Open(s.p, path, true)
	if err != nil {
		return err
	}
	defer func() { _ = k.Close(s.p, fd) }()
	buf := make([]byte, 0, saveChunk+8)
	flush := func(force bool) error {
		for len(buf) >= saveChunk || (force && len(buf) > 0) {
			n := len(buf)
			if n > saveChunk {
				n = saveChunk
			}
			if _, err := k.Write(s.p, fd, buf[:n]); err != nil {
				return err
			}
			buf = buf[:copy(buf, buf[n:])]
		}
		return nil
	}
	count, err := s.Count()
	if err != nil {
		return err
	}
	var hdr [12]byte
	copy(hdr[:4], "KVD1")
	binary.LittleEndian.PutUint64(hdr[4:], count)
	buf = append(buf, hdr[:]...)

	err = s.ForEach(func(key []byte, val cap.Capability) error {
		var lens [16]byte
		vlen := val.Len() - (val.Addr() - val.Base())
		binary.LittleEndian.PutUint64(lens[:8], uint64(len(key)))
		binary.LittleEndian.PutUint64(lens[8:], vlen)
		buf = append(buf, lens[:]...)
		buf = append(buf, key...)
		vb := make([]byte, vlen)
		if err := s.p.Load(val, 0, vb); err != nil {
			return err
		}
		buf = append(buf, vb...)
		return flush(false)
	})
	if err != nil {
		return err
	}
	if err := flush(true); err != nil {
		return err
	}
	// Like Redis, finish with an fsync + rename of the temp dump.
	return k.Fsync(s.p, fd)
}

// BGSave forks a snapshot child that serializes the store to path and
// exits — the Redis background-save pattern. It returns the fork
// statistics (the latency Redis cares about: the pause of the main
// process) without waiting for the child; call Reap to collect it.
func (s *Store) BGSave(path string) (kernel.ForkStats, error) {
	k := s.p.Kernel()
	_, err := k.Fork(s.p, func(c *kernel.Proc) {
		cs, err := Attach(c)
		if err != nil {
			k.Exit(c, 1)
		}
		if err := cs.Save(path); err != nil {
			k.Exit(c, 1)
		}
		k.Exit(c, 0)
	})
	if err != nil {
		return kernel.ForkStats{}, err
	}
	return s.p.LastFork, nil
}

// Reap waits for the snapshot child and returns an error if it failed.
func (s *Store) Reap() error {
	_, status, err := s.p.Kernel().Wait(s.p)
	if err != nil {
		return err
	}
	if status != 0 {
		return fmt.Errorf("kvstore: background save failed with status %d", status)
	}
	return nil
}

// LoadDump parses a dump previously produced by Save (host-side check
// utility for tests and examples).
func LoadDump(data []byte) (map[string][]byte, error) {
	if len(data) < 12 || string(data[:4]) != "KVD1" {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(data[4:12])
	out := make(map[string][]byte, count)
	pos := uint64(12)
	for i := uint64(0); i < count; i++ {
		if pos+16 > uint64(len(data)) {
			return nil, ErrCorrupt
		}
		klen := binary.LittleEndian.Uint64(data[pos:])
		vlen := binary.LittleEndian.Uint64(data[pos+8:])
		pos += 16
		if pos+klen+vlen > uint64(len(data)) {
			return nil, ErrCorrupt
		}
		key := string(data[pos : pos+klen])
		pos += klen
		out[key] = append([]byte(nil), data[pos:pos+vlen]...)
		pos += vlen
	}
	return out, nil
}
