// Package forkserver implements the fuzzing use of fork (§2.1 pattern U5:
// "Testing frameworks such as fuzzers use fork to avoid the cost of setup
// for each exploration"): an AFL-style fork server.
//
// The target program performs its expensive setup once (loading
// dictionaries, building lookup structures in μprocess memory); then every
// test case is executed in a forked child, so crashes — wild capability
// dereferences included — are contained and the warm setup is never paid
// again. The package also provides the re-exec baseline (full setup per
// input) the fork server is measured against.
package forkserver

import (
	"encoding/binary"
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/cap"
	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// setupCost is the target's one-time initialisation CPU time (parsing
// config, building tables) — the cost the fork server amortises.
const setupCost = 2 * sim.Millisecond

// tlsRootOff is the TLS slot of the target's state (slot 2; 0 and 1 are
// taken by minipy and kvstore so the substrates can coexist).
const tlsRootOff = 2 * cap.GranuleSize

// Target is the program under test: a parser with a deliberately planted
// bug, plus a lookup table built during setup.
type Target struct {
	p *kernel.Proc
	a *alloc.Allocator
}

// Verdict classifies one execution.
type Verdict int

// Execution outcomes.
const (
	// VerdictOK: the input parsed cleanly.
	VerdictOK Verdict = iota
	// VerdictReject: the input was rejected by validation.
	VerdictReject
	// VerdictCrash: the input drove the target into a memory-safety
	// violation (caught by the capability system).
	VerdictCrash
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictReject:
		return "reject"
	case VerdictCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// Setup performs the expensive one-time initialisation: a 64 KiB lookup
// table in μprocess memory, referenced from TLS.
func Setup(p *kernel.Proc, a *alloc.Allocator) (*Target, error) {
	table, err := a.Alloc(64 * 1024)
	if err != nil {
		return nil, err
	}
	// Build the table (charged as CPU).
	chunk := make([]byte, 4096)
	for off := uint64(0); off < 64*1024; off += 4096 {
		for i := range chunk {
			chunk[i] = byte(int(off) + i*7)
		}
		if err := p.Store(table, off, chunk); err != nil {
			return nil, err
		}
	}
	p.Compute(setupCost)
	if err := p.StoreCap(p.TLSCap, tlsRootOff, table); err != nil {
		return nil, err
	}
	return &Target{p: p, a: alloc.Attach(p)}, nil
}

// Attach binds to the (relocated) target state in a forked child.
func Attach(p *kernel.Proc) (*Target, error) {
	table, err := p.LoadCap(p.TLSCap, tlsRootOff)
	if err != nil {
		return nil, err
	}
	if !table.Tag() {
		return nil, fmt.Errorf("forkserver: target not set up")
	}
	return &Target{p: p, a: alloc.Attach(p)}, nil
}

// Execute parses one input. The planted bug: an input starting with
// "BUG!" makes the parser compute an out-of-table offset from attacker
// bytes and dereference it — the capability system turns that into a
// contained crash.
func (tg *Target) Execute(input []byte) (Verdict, error) {
	p := tg.p
	table, err := p.LoadCap(p.TLSCap, tlsRootOff)
	if err != nil {
		return VerdictCrash, err
	}
	if len(input) == 0 {
		return VerdictReject, nil
	}
	// Per-input work: hash the input against the table.
	p.Compute(sim.Time(len(input)) * 20)
	var acc byte
	buf := make([]byte, 1)
	for i, b := range input {
		off := (uint64(b) * 251) % table.Len()
		if len(input) >= 4 && string(input[:4]) == "BUG!" && i >= 4 {
			// The bug: offset escapes the table. The dereference faults on
			// the capability bounds check.
			off = table.Len() + uint64(binary.LittleEndian.Uint16([]byte{b, b}))
		}
		if err := p.Load(table, off, buf); err != nil {
			return VerdictCrash, nil // contained by CHERI bounds
		}
		acc ^= buf[0]
	}
	if acc%7 == 0 {
		return VerdictReject, nil
	}
	return VerdictOK, nil
}

// Result aggregates a fuzzing campaign.
type Result struct {
	Executions int
	Crashes    int
	Rejects    int
	Elapsed    sim.Time
	PerExec    sim.Time
}

// RunForkServer executes the inputs AFL-style: one warm setup, one fork
// per input, verdicts collected through exit statuses.
func RunForkServer(p *kernel.Proc, inputs [][]byte) (Result, error) {
	k := p.Kernel()
	a := alloc.Attach(p)
	if err := a.Init(); err != nil {
		return Result{}, err
	}
	if _, err := Setup(p, a); err != nil {
		return Result{}, err
	}
	start := p.Now()
	res := Result{}
	for _, input := range inputs {
		in := input
		_, err := k.Fork(p, func(c *kernel.Proc) {
			tg, err := Attach(c)
			if err != nil {
				k.Exit(c, 99)
			}
			v, err := tg.Execute(in)
			if err != nil {
				k.Exit(c, 99)
			}
			k.Exit(c, int(v))
		})
		if err != nil {
			return res, err
		}
		_, status, err := k.Wait(p)
		if err != nil {
			return res, err
		}
		res.Executions++
		switch Verdict(status) {
		case VerdictCrash:
			res.Crashes++
		case VerdictReject:
			res.Rejects++
		}
	}
	res.Elapsed = p.Now() - start
	if res.Executions > 0 {
		res.PerExec = res.Elapsed / sim.Time(res.Executions)
	}
	return res, nil
}

// RunReExec is the baseline without a fork server: every input pays the
// full setup in a freshly spawned target (fork+exec style).
func RunReExec(p *kernel.Proc, inputs [][]byte) (Result, error) {
	k := p.Kernel()
	start := p.Now()
	res := Result{}
	for _, input := range inputs {
		in := input
		_, err := k.PosixSpawn(p, p.Spec, func(c *kernel.Proc) {
			ca := alloc.Attach(c)
			if err := ca.Init(); err != nil {
				k.Exit(c, 99)
			}
			tg, err := Setup(c, ca)
			if err != nil {
				k.Exit(c, 99)
			}
			v, err := tg.Execute(in)
			if err != nil {
				k.Exit(c, 99)
			}
			k.Exit(c, int(v))
		})
		if err != nil {
			return res, err
		}
		_, status, err := k.Wait(p)
		if err != nil {
			return res, err
		}
		res.Executions++
		switch Verdict(status) {
		case VerdictCrash:
			res.Crashes++
		case VerdictReject:
			res.Rejects++
		}
	}
	res.Elapsed = p.Now() - start
	if res.Executions > 0 {
		res.PerExec = res.Elapsed / sim.Time(res.Executions)
	}
	return res, nil
}
