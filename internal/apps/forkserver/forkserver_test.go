package forkserver_test

import (
	"fmt"
	"testing"

	"ufork/internal/apps/forkserver"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

func fuzzSpec() kernel.ProgramSpec {
	s := kernel.HelloWorldSpec()
	s.Name = "fuzz-target"
	s.HeapPages = 128
	return s
}

func newKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 15,
	})
}

func inputs(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			out = append(out, []byte(fmt.Sprintf("BUG!%04d", i)))
		} else {
			out = append(out, []byte(fmt.Sprintf("case-%04d", i)))
		}
	}
	return out
}

func TestForkServerFindsCrashes(t *testing.T) {
	k := newKernel()
	var res forkserver.Result
	if _, err := k.Spawn(fuzzSpec(), 0, func(p *kernel.Proc) {
		var err error
		res, err = forkserver.RunForkServer(p, inputs(25))
		if err != nil {
			t.Errorf("run: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Executions != 25 {
		t.Fatalf("executions = %d", res.Executions)
	}
	if res.Crashes != 5 {
		t.Fatalf("crashes = %d, want the 5 planted bugs", res.Crashes)
	}
}

// TestCrashContainment: a crashing test case must not damage the fork
// server — subsequent executions still work and the parent's table is
// intact.
func TestCrashContainment(t *testing.T) {
	k := newKernel()
	if _, err := k.Spawn(fuzzSpec(), 0, func(p *kernel.Proc) {
		res, err := forkserver.RunForkServer(p, [][]byte{
			[]byte("good-input-1"),
			[]byte("BUG!kaboom"),
			[]byte("good-input-2"),
		})
		if err != nil {
			t.Errorf("run: %v", err)
			return
		}
		if res.Crashes != 1 {
			t.Errorf("crashes = %d", res.Crashes)
		}
		if res.Executions != 3 {
			t.Errorf("executions = %d: campaign must survive the crash", res.Executions)
		}
		// The parent's own state still works post-crash.
		tg, err := forkserver.Attach(p)
		if err != nil {
			t.Errorf("parent attach after crash: %v", err)
			return
		}
		if v, err := tg.Execute([]byte("post-crash")); err != nil || v == forkserver.VerdictCrash {
			t.Errorf("parent state damaged: %v %v", v, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

// TestForkServerBeatsReExec: the point of pattern U5 — amortizing setup
// through fork is far faster than re-spawning with full setup per input.
func TestForkServerBeatsReExec(t *testing.T) {
	var forkPer, execPer sim.Time
	k := newKernel()
	if _, err := k.Spawn(fuzzSpec(), 0, func(p *kernel.Proc) {
		res, err := forkserver.RunForkServer(p, inputs(15))
		if err != nil {
			t.Errorf("fork server: %v", err)
			return
		}
		forkPer = res.PerExec
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()

	k2 := newKernel()
	if _, err := k2.Spawn(fuzzSpec(), 0, func(p *kernel.Proc) {
		res, err := forkserver.RunReExec(p, inputs(15))
		if err != nil {
			t.Errorf("re-exec: %v", err)
			return
		}
		execPer = res.PerExec
	}); err != nil {
		t.Fatal(err)
	}
	k2.Run()

	if forkPer >= execPer {
		t.Fatalf("fork server per-exec %v not faster than re-exec %v", forkPer, execPer)
	}
	ratio := float64(execPer) / float64(forkPer)
	if ratio < 3 {
		t.Fatalf("fork server speedup %.1fx too small (setup is 2 ms)", ratio)
	}
}
