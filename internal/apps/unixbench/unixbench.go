// Package unixbench reimplements the two Unixbench microbenchmarks the
// paper replays in §5.2 (Fig. 9): Spawn (fork+exit in a tight loop) and
// Context1 (two processes bouncing a counter through a pipe pair).
package unixbench

import (
	"encoding/binary"

	"ufork/internal/kernel"
	"ufork/internal/sim"
)

// SpawnResult reports a Spawn run.
type SpawnResult struct {
	Iterations int
	Elapsed    sim.Time
	PerFork    sim.Time
}

// Spawn forks and reaps n children as fast as possible, the Unixbench
// "Process Creation" loop. Must be called from a running process.
func Spawn(p *kernel.Proc, n int) (SpawnResult, error) {
	k := p.Kernel()
	start := p.Now()
	for i := 0; i < n; i++ {
		if _, err := k.Fork(p, func(c *kernel.Proc) {
			k.Exit(c, 0)
		}); err != nil {
			return SpawnResult{}, err
		}
		if _, _, err := k.Wait(p); err != nil {
			return SpawnResult{}, err
		}
	}
	elapsed := p.Now() - start
	return SpawnResult{
		Iterations: n,
		Elapsed:    elapsed,
		PerFork:    elapsed / sim.Time(n),
	}, nil
}

// Context1Result reports a Context1 run.
type Context1Result struct {
	Exchanges int
	Elapsed   sim.Time
	PerSwitch sim.Time
	Final     uint64
}

// Context1 opens two pipes between parent and child and passes an
// incrementing counter back and forth until it reaches target — the
// Unixbench "Pipe-based Context Switching" benchmark. Each exchange
// forces two context switches and four syscalls, which is where the
// trap-vs-sealed-capability and TLB-flush costs separate the systems.
func Context1(p *kernel.Proc, target uint64) (Context1Result, error) {
	k := p.Kernel()
	// parent -> child pipe and child -> parent pipe.
	p2cR, p2cW, err := k.Pipe(p)
	if err != nil {
		return Context1Result{}, err
	}
	c2pR, c2pW, err := k.Pipe(p)
	if err != nil {
		return Context1Result{}, err
	}
	start := p.Now()
	_, err = k.Fork(p, func(c *kernel.Proc) {
		// Close the ends this side does not use, as context1.c does —
		// otherwise nobody ever observes EOF.
		if err := k.Close(c, p2cW); err != nil {
			k.Exit(c, 1)
		}
		if err := k.Close(c, c2pR); err != nil {
			k.Exit(c, 1)
		}
		var buf [8]byte
		for {
			n, err := k.Read(c, p2cR, buf[:])
			if err != nil || n == 0 {
				k.Exit(c, 0)
			}
			v := binary.LittleEndian.Uint64(buf[:])
			if v >= target {
				k.Exit(c, 0)
			}
			binary.LittleEndian.PutUint64(buf[:], v+1)
			if _, err := k.Write(c, c2pW, buf[:]); err != nil {
				k.Exit(c, 1)
			}
		}
	})
	if err != nil {
		return Context1Result{}, err
	}
	if err := k.Close(p, p2cR); err != nil {
		return Context1Result{}, err
	}
	if err := k.Close(p, c2pW); err != nil {
		return Context1Result{}, err
	}

	var buf [8]byte
	v := uint64(0)
	exchanges := 0
	for v < target {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := k.Write(p, p2cW, buf[:]); err != nil {
			return Context1Result{}, err
		}
		exchanges++
		n, err := k.Read(p, c2pR, buf[:])
		if err != nil {
			return Context1Result{}, err
		}
		if n == 0 {
			// The child saw the terminal value and hung up.
			v = target
			break
		}
		v = binary.LittleEndian.Uint64(buf[:]) + 1
	}
	// Tear down: closing the write end makes the child observe EOF if it
	// is still reading.
	if err := k.Close(p, p2cW); err != nil {
		return Context1Result{}, err
	}
	if _, _, err := k.Wait(p); err != nil {
		return Context1Result{}, err
	}
	elapsed := p.Now() - start
	res := Context1Result{Exchanges: exchanges, Elapsed: elapsed, Final: v}
	if exchanges > 0 {
		res.PerSwitch = elapsed / sim.Time(exchanges*2)
	}
	return res, nil
}
