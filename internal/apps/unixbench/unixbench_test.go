package unixbench_test

import (
	"testing"

	"ufork/internal/apps/unixbench"
	"ufork/internal/baseline/posix"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

func runOn(t *testing.T, m *model.Machine, eng kernel.ForkEngine, fn func(k *kernel.Kernel, p *kernel.Proc)) {
	t.Helper()
	k := kernel.New(kernel.Config{
		Machine:   m,
		Engine:    eng,
		Isolation: kernel.IsolationFull,
		Frames:    1 << 15,
	})
	if _, err := k.Spawn(kernel.HelloWorldSpec(), 0, func(p *kernel.Proc) {
		fn(k, p)
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestSpawnCompletes(t *testing.T) {
	runOn(t, model.UFork(2), core.New(core.CopyOnPointerAccess), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Spawn(p, 50)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		if res.Iterations != 50 || res.Elapsed == 0 || res.PerFork == 0 {
			t.Fatalf("bad result: %+v", res)
		}
		// No zombie children remain.
		if len(p.Children()) != 0 {
			t.Fatalf("%d children unreaped", len(p.Children()))
		}
	})
}

func TestSpawnUForkFasterThanPosix(t *testing.T) {
	var ufork, cheri sim.Time
	runOn(t, model.UFork(2), core.New(core.CopyOnPointerAccess), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Spawn(p, 30)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		ufork = res.PerFork
	})
	runOn(t, model.Posix(2), posix.New(), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Spawn(p, 30)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		cheri = res.PerFork
	})
	if ufork >= cheri {
		t.Fatalf("μFork per-fork %v should beat CheriBSD %v", ufork, cheri)
	}
	// Fig. 8 band: roughly 54 µs vs 197 µs — assert the 2–6× window.
	ratio := float64(cheri) / float64(ufork)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("fork latency ratio %.1f outside the paper's band", ratio)
	}
}

func TestContext1Correctness(t *testing.T) {
	runOn(t, model.UFork(2), core.New(core.CopyOnPointerAccess), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Context1(p, 500)
		if err != nil {
			t.Fatalf("context1: %v", err)
		}
		if res.Final < 499 {
			t.Fatalf("counter stopped at %d", res.Final)
		}
		if res.Exchanges == 0 || res.Elapsed == 0 {
			t.Fatalf("bad result: %+v", res)
		}
	})
}

func TestContext1UForkFasterThanPosix(t *testing.T) {
	var ufork, cheri sim.Time
	runOn(t, model.UFork(2), core.New(core.CopyOnPointerAccess), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Context1(p, 2000)
		if err != nil {
			t.Fatalf("context1: %v", err)
		}
		ufork = res.Elapsed
	})
	runOn(t, model.Posix(2), posix.New(), func(k *kernel.Kernel, p *kernel.Proc) {
		res, err := unixbench.Context1(p, 2000)
		if err != nil {
			t.Fatalf("context1: %v", err)
		}
		cheri = res.Elapsed
	})
	if ufork >= cheri {
		t.Fatalf("μFork Context1 %v should beat CheriBSD %v", ufork, cheri)
	}
	// Fig. 9 band: 245 ms vs 419 ms → ratio ≈ 1.7.
	ratio := float64(cheri) / float64(ufork)
	if ratio < 1.2 || ratio > 3 {
		t.Fatalf("Context1 ratio %.2f outside the paper's band", ratio)
	}
}
