// Package faas is the serverless workload of §5.1: a MicroPython-style
// Zygote process warms a language runtime once, then serves each request
// by forking itself — the child executes the function and exits (§2.1
// patterns U2 + U5).
//
// The coordinating thread occupies one core; forked function instances
// execute on the remaining cores, exactly the setup of Fig. 6 ("The
// Morello CPU has 4 cores, 1 is used for the coordinating thread, and the
// rest for function execution").
package faas

import (
	"fmt"

	"ufork/internal/alloc"
	"ufork/internal/kernel"
	"ufork/internal/minipy"
	"ufork/internal/sim"
)

// FunctionSource is the FunctionBench float_operation workload ported to
// the minipy subset: "to reduce the effect of I/O and system calls, it
// performs a series of calculations before returning" (§5.1).
const FunctionSource = `
import math

def float_operation(n):
    x = 0.0
    for i in range(n):
        x += math.sin(i) * math.cos(i) + math.sqrt(i)
    return x
`

// DefaultN is the loop count. Calibration (Fig. 6): with minipy's op cost
// one function execution lands near 450 µs, which makes the per-request
// fork-latency gap between μFork and the monolithic baseline surface as
// the paper's ~24% throughput difference.
const DefaultN = 1400

// ZygoteSpec is the μprocess image of the warmed runtime.
func ZygoteSpec(staticHeapPages int) kernel.ProgramSpec {
	heap := 1536
	if staticHeapPages > heap {
		heap = staticHeapPages
	}
	return kernel.ProgramSpec{
		Name:      "zygote",
		TextPages: 96, RodataPages: 24, GOTPages: 4, DataPages: 16,
		AllocMetaPages: 16, HeapPages: heap, StackPages: 16, TLSPages: 1,
		GOTEntries: 256,
	}
}

// Result is the outcome of one throughput run.
type Result struct {
	Completed int
	Window    sim.Time
	// ThroughputPerSec is completed functions per virtual second.
	ThroughputPerSec float64
	// ForkLatency is the last observed fork latency.
	ForkLatency sim.Time
}

// Warm compiles and installs the function runtime into proc p — the
// Zygote warm-up that fork then amortizes over every request.
func Warm(p *kernel.Proc) (*minipy.Program, *minipy.Runtime, error) {
	pr, err := minipy.Compile(FunctionSource)
	if err != nil {
		return nil, nil, err
	}
	a := alloc.Attach(p)
	if err := a.Init(); err != nil {
		return nil, nil, err
	}
	rt, err := minipy.Install(p, a, pr)
	if err != nil {
		return nil, nil, err
	}
	if _, err := rt.RunMain(); err != nil {
		return nil, nil, err
	}
	return pr, rt, nil
}

// RunThroughput forks function instances as fast as possible for the given
// virtual-time window, keeping at most workers children in flight. It must
// be called from the warmed zygote process.
func RunThroughput(p *kernel.Proc, pr *minipy.Program, workers int, n int, window sim.Time) (Result, error) {
	k := p.Kernel()
	fnIdx, ok := pr.FuncIndex("float_operation")
	if !ok {
		return Result{}, fmt.Errorf("faas: float_operation missing")
	}
	deadline := p.Now() + window
	completed := 0
	inflight := 0
	var lastFork sim.Time
	for p.Now() < deadline {
		if inflight >= workers {
			if _, status, err := k.Wait(p); err != nil {
				return Result{}, err
			} else if status == 0 {
				completed++
			}
			inflight--
			continue
		}
		_, err := k.Fork(p, func(c *kernel.Proc) {
			crt, err := minipy.Attach(c)
			if err != nil {
				k.Exit(c, 1)
			}
			if _, err := crt.CallIndex(fnIdx, float64(n)); err != nil {
				k.Exit(c, 1)
			}
			k.Exit(c, 0)
		})
		if err != nil {
			return Result{}, err
		}
		lastFork = p.LastFork.Latency
		inflight++
	}
	// Drain.
	for inflight > 0 {
		if _, status, err := k.Wait(p); err != nil {
			return Result{}, err
		} else if status == 0 {
			completed++
		}
		inflight--
	}
	res := Result{
		Completed:   completed,
		Window:      window,
		ForkLatency: lastFork,
	}
	res.ThroughputPerSec = float64(completed) / (float64(window) / float64(sim.Second))
	return res, nil
}
