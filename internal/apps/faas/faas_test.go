package faas_test

import (
	"testing"

	"ufork/internal/apps/faas"
	"ufork/internal/baseline/posix"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/model"
	"ufork/internal/sim"
)

func TestWarmAndRunOnce(t *testing.T) {
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(2),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	if _, err := k.Spawn(faas.ZygoteSpec(0), 0, func(p *kernel.Proc) {
		pr, rt, err := faas.Warm(p)
		if err != nil {
			t.Errorf("warm: %v", err)
			return
		}
		// The zygote itself can run the function.
		v, err := rt.Call(pr, "float_operation", 10)
		if err != nil {
			t.Errorf("direct call: %v", err)
			return
		}
		if v == 0 {
			t.Error("float_operation(10) returned 0")
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}

func TestThroughputWindow(t *testing.T) {
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(3), // coordinator + 2 workers
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 17,
	})
	var res faas.Result
	if _, err := k.Spawn(faas.ZygoteSpec(0), 0, func(p *kernel.Proc) {
		pr, _, err := faas.Warm(p)
		if err != nil {
			t.Errorf("warm: %v", err)
			return
		}
		res, err = faas.RunThroughput(p, pr, 2, 200, 20*sim.Millisecond)
		if err != nil {
			t.Errorf("run: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if res.Completed < 2 {
		t.Fatalf("completed %d functions in window", res.Completed)
	}
	if res.ThroughputPerSec <= 0 {
		t.Fatal("zero throughput")
	}
	if res.ForkLatency == 0 {
		t.Fatal("no fork latency recorded")
	}
}

// TestMoreWorkersMoreThroughput: with more function-execution cores, the
// same window completes more functions (the Fig. 6 scaling property).
func TestMoreWorkersMoreThroughput(t *testing.T) {
	runWith := func(workers int) int {
		k := kernel.New(kernel.Config{
			Machine:   model.UFork(workers + 1),
			Engine:    core.New(core.CopyOnPointerAccess),
			Isolation: kernel.IsolationFull,
			Frames:    1 << 17,
		})
		var res faas.Result
		if _, err := k.Spawn(faas.ZygoteSpec(0), 0, func(p *kernel.Proc) {
			pr, _, err := faas.Warm(p)
			if err != nil {
				t.Errorf("warm: %v", err)
				return
			}
			res, err = faas.RunThroughput(p, pr, workers, 400, 30*sim.Millisecond)
			if err != nil {
				t.Errorf("run: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Completed
	}
	one := runWith(1)
	three := runWith(3)
	if three <= one {
		t.Fatalf("3 workers (%d) should beat 1 worker (%d)", three, one)
	}
}

// TestUForkBeatsPosixThroughput: the fork-bound FaaS workload favours the
// lower μFork fork latency (the paper's 24% result; here we assert the
// direction).
func TestUForkBeatsPosixThroughput(t *testing.T) {
	run := func(m *model.Machine, eng kernel.ForkEngine) int {
		k := kernel.New(kernel.Config{
			Machine:   m,
			Engine:    eng,
			Isolation: kernel.IsolationFull,
			Frames:    1 << 17,
		})
		var res faas.Result
		if _, err := k.Spawn(faas.ZygoteSpec(0), 0, func(p *kernel.Proc) {
			pr, _, err := faas.Warm(p)
			if err != nil {
				t.Errorf("warm: %v", err)
				return
			}
			res, err = faas.RunThroughput(p, pr, 2, 400, 30*sim.Millisecond)
			if err != nil {
				t.Errorf("run: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		k.Run()
		return res.Completed
	}
	ufork := run(model.UFork(3), core.New(core.CopyOnPointerAccess))
	cheri := run(model.Posix(3), posix.New())
	if ufork <= cheri {
		t.Fatalf("μFork throughput (%d) should exceed CheriBSD (%d)", ufork, cheri)
	}
}
