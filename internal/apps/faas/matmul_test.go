package faas_test

import (
	"testing"

	"ufork/internal/alloc"
	"ufork/internal/apps/faas"
	"ufork/internal/core"
	"ufork/internal/kernel"
	"ufork/internal/minipy"
	"ufork/internal/model"
)

// matmulSource is FunctionBench's matmul workload ported to the subset:
// unlike float_operation it is object-heavy — the matrices are lists of
// lists living in simulated memory, so forked instances exercise
// relocation over real object graphs.
const matmulSource = `
def make_matrix(n, seed):
    m = []
    for i in range(n):
        row = []
        for j in range(n):
            row.append((i * 31 + j * 17 + seed) % 10)
        m.append(row)
    return m

def matmul(n):
    a = make_matrix(n, 1)
    b = make_matrix(n, 2)
    total = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc += a[i][k] * b[k][j]
            total += acc
    return total
`

// hostMatmul mirrors the computation for verification.
func hostMatmul(n int) float64 {
	mk := func(seed int) [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = float64((i*31 + j*17 + seed) % 10)
			}
		}
		return m
	}
	a, b := mk(1), mk(2)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += a[i][k] * b[k][j]
			}
			total += acc
		}
	}
	return total
}

// TestMatmulInForkedInstances runs the object-heavy FaaS function in
// forked children off a warm zygote and verifies the results.
func TestMatmulInForkedInstances(t *testing.T) {
	pr, err := minipy.Compile(matmulSource)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{
		Machine:   model.UFork(3),
		Engine:    core.New(core.CopyOnPointerAccess),
		Isolation: kernel.IsolationFull,
		Frames:    1 << 16,
	})
	const n = 8
	want := hostMatmul(n)
	if _, err := k.Spawn(faas.ZygoteSpec(0), 0, func(p *kernel.Proc) {
		a := alloc.Attach(p)
		if err := a.Init(); err != nil {
			t.Error(err)
			return
		}
		rt, err := minipy.Install(p, a, pr)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := rt.RunMain(); err != nil {
			t.Error(err)
			return
		}
		// Warm check in the zygote itself.
		if got, err := rt.Call(pr, "matmul", n); err != nil || got != want {
			t.Errorf("zygote matmul = %v, %v (want %v)", got, err, want)
			return
		}
		for i := 0; i < 3; i++ {
			if _, err := k.Fork(p, func(c *kernel.Proc) {
				crt, err := minipy.Attach(c)
				if err != nil {
					t.Errorf("child attach: %v", err)
					return
				}
				got, err := crt.Call(pr, "matmul", n)
				if err != nil {
					t.Errorf("child matmul: %v", err)
					return
				}
				if got != want {
					t.Errorf("child matmul = %v, want %v", got, want)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := k.Wait(p); err != nil {
				t.Fatal(err)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
}
