// Package model holds the machine cost models: every virtual-time constant
// used by the simulation, in one place, with its calibration source.
//
// The reproduction's *shapes* — who wins, by what factor, where crossovers
// fall — come from counted work (pages copied, faults taken, capabilities
// relocated, syscalls issued). The constants below only anchor those counts
// to nanoseconds. Each constant is calibrated against a number reported in
// the paper (§5) or a documented property of the Morello platform, and is
// annotated with its derivation.
package model

import "ufork/internal/sim"

// Kind names a machine model.
type Kind int

const (
	// KindUFork is the μFork prototype: Unikraft SASOS on CHERI, sealed-cap
	// trapless syscalls, single address space, big kernel lock.
	KindUFork Kind = iota
	// KindPosix is the CheriBSD 23.11 baseline: monolithic multi-address-
	// space kernel, trap-based syscalls, per-process page tables.
	KindPosix
	// KindVMClone is the Nephele baseline: fork by cloning the whole
	// unikernel VM through the hypervisor.
	KindVMClone
)

func (k Kind) String() string {
	switch k {
	case KindUFork:
		return "uFork"
	case KindPosix:
		return "CheriBSD"
	case KindVMClone:
		return "Nephele"
	default:
		return "unknown"
	}
}

// Machine is a full cost/feature model for one of the three systems.
type Machine struct {
	Kind  Kind
	Name  string
	Cores int

	// --- address-space / feature knobs ---

	// SingleAddressSpace: kernel + all processes share one page table
	// (μFork); otherwise each process gets its own (CheriBSD baseline).
	SingleAddressSpace bool
	// TrapSyscalls: syscalls enter the kernel through a hardware trap
	// (CheriBSD); otherwise through a sealed-capability jump (μFork §4.4).
	TrapSyscalls bool
	// BigKernelLock serializes kernel execution across cores (Unikraft's
	// current SMP story, §4.5). CheriBSD has fine-grained locking.
	BigKernelLock bool
	// FineGrainedLocks replaces the big kernel lock with the split lock
	// hierarchy (per-μprocess lock, sharded proc table, per-process FD
	// table, tmem allocator with per-CPU frame caches, and a narrow
	// residual global lock) — the SMP configuration this repo grows beyond
	// the paper's prototype to lift the §4.5 ceiling. Mutually exclusive
	// with BigKernelLock.
	FineGrainedLocks bool
	// DemandPagedHeap maps heap pages on first touch (the monolithic
	// baseline); unikernel machines map the whole static heap at load
	// (§4.2 "private, statically-allocated heap").
	DemandPagedHeap bool

	// --- syscall path costs ---

	// SyscallEnter/SyscallExit: domain-switch cost per direction.
	// Calibration: Unixbench Context1 (Fig. 9) — 100k pipe token passes in
	// 245 ms (μFork) vs 419 ms (CheriBSD). Each pass is ~4 syscalls plus 2
	// context switches; the sealed-cap path is tens of ns (no exception, no
	// EL change) while the trap path on Morello is several hundred ns.
	SyscallEnter sim.Time
	SyscallExit  sim.Time
	// SyscallBase is kernel-side bookkeeping common to all syscalls.
	SyscallBase sim.Time
	// ArgValidate is the per-syscall argument sanitization cost (§4.4,
	// principle 3). Charged only when the isolation level requests it.
	ArgValidate sim.Time
	// TocttouBytesPerNs is the copy-in/copy-out bandwidth for TOCTTOU
	// buffer copies (§4.4, principle 4), in bytes per nanosecond (≈ GB/s).
	// Calibration: "the cost of TOCTTOU protection is relatively minor
	// (2.6% at 100 MB)" for Redis saves (§5.1) → ~30 GB/s memcpy, i.e.
	// ~3 ms of copies against a 109 ms save.
	TocttouBytesPerNs int
	// TocttouFixed is the per-syscall setup cost of the TOCTTOU machinery
	// (allocating the bounce buffer, double-fetch bookkeeping), charged on
	// every syscall that passes user buffers. Calibration: the Nginx
	// TOCTTOU overhead of 6.5% (§5.1) on a syscall-dense request path.
	TocttouFixed sim.Time

	// --- context switch ---

	// CtxSwitch is the scheduler cost of switching a core between tasks.
	// On the multi-AS baseline it includes the page-table switch and the
	// TLB/cache flush the paper's lightweightness argument centres on
	// (§2.2); in a SASOS there is no address-space switch.
	// Calibration: Context1 (Fig. 9), see SyscallEnter.
	CtxSwitch sim.Time

	// --- fork costs ---

	// ForkFixed is the flat per-fork cost: allocating and initialising the
	// task struct, PID, scheduler entries, and (for μFork) reserving the
	// child's virtual region.
	// Calibration: Fig. 8 — hello-world fork is 54 µs on μFork and 197 µs
	// on CheriBSD (dominated by vmspace creation), 10.7 ms on Nephele
	// (dominated by Xen domain creation, see DomainCreate).
	ForkFixed sim.Time
	// PTECopy is the per-page cost of duplicating one page-table entry.
	// μFork copies PTE arrays with a bulk memcpy (~7 ns/page keeps the
	// 100 MB-database Redis fork at ~260 µs, Fig. 4); the CheriBSD CoW path
	// walks VM objects and adjusts refcounts per page (~50 ns/page puts the
	// same fork at ~2 ms, the paper's 5–10× gap).
	PTECopy sim.Time
	// PageCopy is the cost of copying one 4 KiB frame.
	// Calibration: Fig. 4 full-copy fork: 144 MB in 23.2 ms → ~630 ns per
	// page for copy + scan; we split that as 440 copy + 190 scan.
	PageCopy sim.Time
	// CapScanPage is the cost of the 16-byte-stride tag scan of one page
	// (256 granule tag reads), charged whenever μFork copies a page.
	CapScanPage sim.Time
	// CapRelocate is the per-capability rewrite cost during relocation.
	CapRelocate sim.Time
	// FDDup is the per-descriptor cost of duplicating the FD table.
	FDDup sim.Time
	// RegRelocate is the cost of relocating the capability register file
	// (§3.5 step 2).
	RegRelocate sim.Time
	// VMSpaceSetup is the fixed cost of creating a new address space
	// (CheriBSD only): pmap allocation, vm_map init.
	// Calibration: Fig. 8 — 197 µs hello-world fork minus per-page terms.
	VMSpaceSetup sim.Time
	// DomainCreate is the hypervisor domain-creation cost (Nephele only).
	// Calibration: Fig. 8 — 10.7 ms hello-world fork; the paper attributes
	// almost all of it to creating a new Xen domain.
	DomainCreate sim.Time
	// PageFault is the cost of taking and dispatching one page fault
	// (trap, handler entry, PTE fixup), charged on CoW/CoA/CoPA faults.
	PageFault sim.Time

	// --- I/O path costs ---

	// FSWriteNsPerKB / FSReadNsPerKB: ram-disk filesystem cost per KiB.
	// Calibration: Fig. 3 — Redis saving a 100 MB database takes 109 ms on
	// μFork (≈1 GB/s write path → 1024 ns/KiB) vs 158 ms on CheriBSD,
	// whose pure-capability FS path carries the documented Morello
	// overheads ([64]/[117] in the paper), modelled as ~1.3 ns/B.
	FSWriteNsPerKB sim.Time
	FSReadNsPerKB  sim.Time
	// FSSync is the fixed snapshot-finalisation cost (temp-file rename,
	// metadata flush, and the parent observing child completion).
	// Calibration: Fig. 3's small-database floor — 1.8 ms total save time
	// at 100 KB on μFork of which fork is only ~0.3 ms.
	FSSync sim.Time
	// PipeByte is the per-byte pipe transfer cost.
	PipeByte sim.Time
	// NetRTT is the simulated client round-trip latency for the HTTP
	// workload (request arrival to socket readable).
	NetRTT sim.Time

	// --- process image defaults (pages) ---

	// ImageTextPages etc. describe the process image layout used when a
	// program is loaded; see kernel.Layout. StaticHeapPages is μFork's
	// build-time static heap (§4.2): "each μprocess owns a private,
	// statically-allocated heap with a build-time-configurable size".
	// Calibration: Fig. 4/5 — "136.7 MB is the large static heap".
	StaticHeapPages int
	// RuntimeImagePages models the per-process runtime footprint a
	// monolithic OS adds (dynamic linker, shared-library private pages,
	// allocator arenas). Calibration: Fig. 8 — hello-world per-process
	// memory is 0.29 MB on CheriBSD vs 0.13 MB on μFork; and §5.1 notes the
	// "higher allocator memory consumption" of CheriBSD. The child's
	// dynamic linker re-dirties these pages after fork (ChildStart).
	RuntimeImagePages int
	// VMImagePages is the whole-VM image Nephele duplicates per fork.
	// Calibration: Fig. 8 — 1.6 MB per hello-world process on Nephele
	// (≈280 OS-image pages plus the ~120-page application image).
	VMImagePages int
}

// UFork returns the μFork machine model (Unikraft + CHERI on Morello,
// running over bhyve as in §5).
func UFork(cores int) *Machine {
	return &Machine{
		Kind:               KindUFork,
		Name:               "uFork",
		Cores:              cores,
		SingleAddressSpace: true,
		TrapSyscalls:       false,
		BigKernelLock:      true,

		SyscallEnter:      25, // sealed-cap jump, no exception (§4.4)
		SyscallExit:       25, //
		SyscallBase:       50, //
		ArgValidate:       10, //
		TocttouBytesPerNs: 30, // ~30 GB/s kernel memcpy
		TocttouFixed:      150,

		// Context1 calibration (Fig. 9): the counter reaches 100k in 245 ms
		// and advances by 2 per pipe round trip → ~4.9 µs per round trip =
		// ~2 blocking wake-ups + 4 sealed-capability syscalls.
		CtxSwitch: 2330, // same-AS switch: registers + scheduler (no TLB work)

		ForkFixed:    40 * sim.Microsecond, // region reserve + task/PID setup
		PTECopy:      6,                    // bulk PTE-array memcpy
		PageCopy:     440,
		CapScanPage:  190,
		CapRelocate:  25,
		FDDup:        120,
		RegRelocate:  600,
		VMSpaceSetup: 0,
		DomainCreate: 0,
		PageFault:    800,

		FSWriteNsPerKB: 1024, // ≈1 GB/s ram-disk path
		FSReadNsPerKB:  1024,
		FSSync:         1300 * sim.Microsecond,
		PipeByte:       1,
		NetRTT:         4 * sim.Microsecond,

		StaticHeapPages:   35000, // 136.7 MB static heap (Fig. 4)
		RuntimeImagePages: 0,
		VMImagePages:      0,
	}
}

// UForkSMP returns the μFork machine with the big kernel lock broken into
// the fine-grained hierarchy. Every cost constant is identical to UFork —
// the two models differ only in what serializes kernel execution — so a
// pre/post contention sweep isolates the locking change.
func UForkSMP(cores int) *Machine {
	m := UFork(cores)
	m.Name = "uFork-SMP"
	m.BigKernelLock = false
	m.FineGrainedLocks = true
	return m
}

// Posix returns the CheriBSD 23.11 baseline model.
func Posix(cores int) *Machine {
	return &Machine{
		Kind:               KindPosix,
		Name:               "CheriBSD",
		Cores:              cores,
		SingleAddressSpace: false,
		TrapSyscalls:       true,
		BigKernelLock:      false,
		DemandPagedHeap:    true,

		SyscallEnter:      150, // trap, exception entry, register save
		SyscallExit:       150,
		SyscallBase:       50,
		ArgValidate:       10,
		TocttouBytesPerNs: 30,
		TocttouFixed:      150,

		// Context1 calibration (Fig. 9): the counter reaches 100k in 419 ms
		// → ~8.4 µs per round trip = ~2 blocking wake-ups + 4 trap
		// syscalls; the switch includes the page-table change and TLB/
		// cache maintenance (§2.2).
		CtxSwitch: 3800,

		ForkFixed:    20 * sim.Microsecond, // proc struct, PID, scheduler
		PTECopy:      80,                   // per-page VM-object CoW walk
		PageCopy:     440,
		CapScanPage:  0, // no relocation scan: same VA in the child
		CapRelocate:  0,
		FDDup:        120,
		RegRelocate:  0,
		VMSpaceSetup: 160 * sim.Microsecond, // pmap + vm_map creation (Fig. 8)
		DomainCreate: 0,
		PageFault:    1400, // trap-based fault path

		FSWriteNsPerKB: 1330, // pure-capability FS path slowdown (Fig. 3)
		FSReadNsPerKB:  1330,
		FSSync:         1300 * sim.Microsecond,
		PipeByte:       1,
		NetRTT:         4 * sim.Microsecond,

		StaticHeapPages:   0,  // demand-paged heap
		RuntimeImagePages: 70, // rtld + libc + jemalloc bootstrap pages (Fig. 8)
		VMImagePages:      0,
	}
}

// VMClone returns the Nephele baseline model (x86-64 Xen, numbers replayed
// from the Nephele paper as in §5.2).
func VMClone(cores int) *Machine {
	return &Machine{
		Kind:               KindVMClone,
		Name:               "Nephele",
		Cores:              cores,
		SingleAddressSpace: false, // every clone is its own VM/address space
		TrapSyscalls:       false, // unikernel-internal syscalls are calls
		BigKernelLock:      true,

		SyscallEnter:      30,
		SyscallExit:       30,
		SyscallBase:       150,
		ArgValidate:       40,
		TocttouBytesPerNs: 30,
		TocttouFixed:      150,

		CtxSwitch: 1750, // VM switch through the hypervisor

		ForkFixed:    200 * sim.Microsecond, // hypercall path + P2M setup
		PTECopy:      50,
		PageCopy:     440,
		CapScanPage:  0,
		CapRelocate:  0,
		FDDup:        120,
		RegRelocate:  0,
		VMSpaceSetup: 0,
		DomainCreate: 10 * sim.Millisecond, // Xen domain creation (Fig. 8)
		PageFault:    1400,

		FSWriteNsPerKB: 1024,
		FSReadNsPerKB:  1024,
		FSSync:         1300 * sim.Microsecond,
		PipeByte:       1,
		NetRTT:         4 * sim.Microsecond,

		StaticHeapPages:   0,
		RuntimeImagePages: 0,
		VMImagePages:      280, // with the app image ≈ 1.6 MB per clone (Fig. 8)
	}
}
